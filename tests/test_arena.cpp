// Memory-subsystem tests: the decision arena (scope reset, marker rewind,
// alignment, chunk reuse), the arena-aware allocator (heap fallback, copy
// vs move semantics), the SoA/SBO segment store underneath StepProfile, and
// the FreeProfile frame pool. The steady-state legs pin the PR's core
// claim -- a warm commit/rollback cycle performs zero heap allocations --
// via the process-wide resched::alloc_count() counter (operator-new hook
// plus the library's instrumented malloc sites).
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/arena.hpp"
#include "core/profile_allocator.hpp"
#include "core/seg_store.hpp"
#include "core/step_profile.hpp"

namespace resched {
namespace {

// ---- Arena -----------------------------------------------------------------

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  void* a = arena.allocate(1, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(32, alignof(std::max_align_t));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) %
                alignof(std::max_align_t),
            0u);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  // Writes must not overlap: fill each block and check a sentinel.
  auto* bytes = static_cast<unsigned char*>(b);
  for (int i = 0; i < 8; ++i) bytes[i] = 0xAB;
  EXPECT_EQ(static_cast<unsigned char*>(b)[0], 0xAB);
}

TEST(Arena, ResetKeepsChunksSoSteadyStateIsAllocationFree) {
  Arena arena;
  // Warm: force at least one chunk into existence.
  for (int i = 0; i < 100; ++i) arena.allocate(64, 8);
  const std::size_t chunks = arena.chunk_count();
  const std::uint64_t warm = alloc_count();
  for (int cycle = 0; cycle < 50; ++cycle) {
    arena.reset();
    for (int i = 0; i < 100; ++i) arena.allocate(64, 8);
  }
  EXPECT_EQ(alloc_count(), warm) << "reset+refill must reuse warm chunks";
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Arena, MarkerRewindReleasesLifoScopes) {
  Arena arena;
  arena.allocate(128, 8);
  const Arena::Marker frame = arena.mark();
  void* inner_first = arena.allocate(64, 8);
  arena.allocate(256, 8);
  arena.rewind(frame);
  // The next allocation after rewind lands where the frame started.
  void* replay = arena.allocate(64, 8);
  EXPECT_EQ(replay, inner_first);
}

TEST(Arena, LargeRequestsGetTheirOwnChunk) {
  Arena arena;
  // Bigger than the first (4 KiB) chunk: must still succeed, via growth.
  void* big = arena.allocate(64 * 1024, 8);
  ASSERT_NE(big, nullptr);
  static_cast<unsigned char*>(big)[64 * 1024 - 1] = 1;  // touch the end
  EXPECT_GE(arena.capacity_bytes(), 64u * 1024u);
}

// ---- ArenaAlloc ------------------------------------------------------------

TEST(ArenaAlloc, NullArenaFallsBackToHeap) {
  const std::uint64_t before = alloc_count();
  {
    ScratchVec<int> v{ArenaAlloc<int>(nullptr)};
    v.resize(1000);
    std::iota(v.begin(), v.end(), 0);
    EXPECT_EQ(v[999], 999);
  }
  EXPECT_GT(alloc_count(), before) << "null-arena allocations are heap";
}

TEST(ArenaAlloc, ArenaBackedVectorDoesNotTouchTheHeapWhenWarm) {
  Arena arena;
  {  // warm the chunks with the same growth pattern the probe will use
    ScratchVec<int> v{ArenaAlloc<int>(&arena)};
    for (int i = 0; i < 1000; ++i) v.push_back(i);
  }
  arena.reset();
  const std::uint64_t warm = alloc_count();
  ScratchVec<int> v{ArenaAlloc<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(alloc_count(), warm);
  EXPECT_EQ(v[999], 999);
}

TEST(ArenaAlloc, CopyLandsOnHeapButMoveKeepsArena) {
  Arena arena;
  ScratchVec<int> v{ArenaAlloc<int>(&arena)};
  v.assign({1, 2, 3});
  // select_on_container_copy_construction: the copy must outlive any
  // decision-scoped arena reset, so it gets the heap allocator.
  ScratchVec<int> copy(v);
  EXPECT_EQ(copy.get_allocator(), ArenaAlloc<int>(nullptr));
  EXPECT_EQ(copy, v);
  ScratchVec<int> moved(std::move(v));
  EXPECT_EQ(moved.get_allocator(), ArenaAlloc<int>(&arena));
  EXPECT_EQ(moved, copy);
}

// ---- SegStore --------------------------------------------------------------

TEST(SegStore, StaysInlineUpToCapacityThenSpills) {
  SegStore store;
  for (std::size_t i = 0; i < SegStore::kInlineSegments; ++i)
    store.push_back(static_cast<Time>(i), static_cast<std::int64_t>(i * 10));
  EXPECT_EQ(store.alloc_count(), 0u) << "inline storage must not allocate";
  store.push_back(100, 1000);
  EXPECT_EQ(store.alloc_count(), 1u) << "first spill is one block";
  ASSERT_EQ(store.size(), SegStore::kInlineSegments + 1);
  for (std::size_t i = 0; i < SegStore::kInlineSegments; ++i) {
    EXPECT_EQ(store.start(i), static_cast<Time>(i));
    EXPECT_EQ(store.value(i), static_cast<std::int64_t>(i * 10));
  }
  EXPECT_EQ(store.back_value(), 1000);
}

TEST(SegStore, InsertEraseAndBounds) {
  SegStore store;
  store.push_back(0, 5);
  store.push_back(10, 3);
  store.push_back(20, 7);
  store.insert(1, 5, 4);  // 0,5,10,20
  ASSERT_EQ(store.size(), 4u);
  EXPECT_EQ(store.start(1), 5);
  EXPECT_EQ(store.value(1), 4);
  EXPECT_EQ(store.upper_bound_start(5), 2u);
  EXPECT_EQ(store.lower_bound_start(5), 1u);
  store.erase(1);
  EXPECT_EQ(store.start(1), 10);
  store.erase(0, 2);  // drop [0, 2): only t=20 remains
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.start(0), 20);
}

TEST(SegStore, ReplaceRangeSplicesLikeEraseInsert) {
  SegStore store;
  for (Time t = 0; t < 10; ++t)
    store.push_back(t * 10, static_cast<std::int64_t>(t));
  SegStore patch;
  patch.push_back(25, 100);
  patch.push_back(26, 101);
  patch.push_back(27, 102);
  // Replace segments [2, 5) with the 3-segment patch.
  store.replace_range(2, 5, patch);
  ASSERT_EQ(store.size(), 10u);
  EXPECT_EQ(store.start(2), 25);
  EXPECT_EQ(store.value(4), 102);
  EXPECT_EQ(store.start(5), 50);  // suffix intact
  EXPECT_EQ(store.value(9), 9);
}

TEST(SegStore, CopyAndMoveSemantics) {
  SegStore store;
  for (Time t = 0; t < 20; ++t) store.push_back(t, t * 2);
  SegStore copy(store);
  EXPECT_TRUE(copy == store);
  const std::size_t n = store.size();
  SegStore moved(std::move(store));
  EXPECT_EQ(moved.size(), n);
  EXPECT_TRUE(moved == copy);
  copy.set_value(0, -1);
  EXPECT_FALSE(moved == copy) << "copy must be deep";
}

// ---- FreeProfile frame pool ------------------------------------------------

TEST(FramePool, SteadyStateCommitRollbackIsAllocationFree) {
  FreeProfile free{StepProfile(64)};
  // Warm-up: grow the profile store, the frame pool and every undo buffer
  // to its high-water capacity.
  for (int cycle = 0; cycle < 4; ++cycle) {
    std::vector<FreeProfile::CommitToken> tokens;
    for (Time t = 0; t < 16; ++t)
      tokens.push_back(free.commit_tentative(t * 3, 2, 5));
    while (!tokens.empty()) {
      free.rollback(std::move(tokens.back()));
      tokens.pop_back();
    }
  }
  std::vector<FreeProfile::CommitToken> tokens;
  tokens.reserve(16);  // the probe's own buffer must not pollute the count
  const std::uint64_t warm = alloc_count();
  const std::uint64_t warm_misses = free.frame_misses();
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (Time t = 0; t < 16; ++t)
      tokens.push_back(free.commit_tentative(t * 3, 2, 5));
    while (!tokens.empty()) {
      free.rollback(std::move(tokens.back()));
      tokens.pop_back();
    }
  }
  EXPECT_EQ(free.frame_misses(), warm_misses)
      << "warm frame pool must recycle every frame";
  EXPECT_EQ(alloc_count(), warm)
      << "steady-state commit/rollback must be zero-allocation";
}

TEST(FramePool, RecyclesAcrossCommitRollbackInterleavings) {
  FreeProfile free{StepProfile(32)};
  // Interleave accepts and rollbacks so recycled frames carry undos from
  // both resolutions; the profile must stay consistent throughout.
  for (int round = 0; round < 50; ++round) {
    FreeProfile::CommitToken a = free.commit_tentative(round * 7, 4, 10);
    FreeProfile::CommitToken b =
        free.commit_tentative(round * 7 + 2, 8, 5);
    free.rollback(std::move(b));
    FreeProfile::CommitToken c =
        free.commit_tentative(round * 7 + 1, 2, 3);
    free.rollback(std::move(c));
    free.rollback(std::move(a));
  }
  EXPECT_EQ(free.open_commits(), 0u);
  // Fully rolled back: the profile is flat free capacity again.
  EXPECT_EQ(free.profile().min_in(0, 1000), 32);
  EXPECT_EQ(free.profile().max_in(0, 1000), 32);
}

TEST(FramePool, AllocCountDiagnosticCombinesProfileAndMisses) {
  FreeProfile free{StepProfile(16)};
  EXPECT_EQ(free.alloc_count(), free.profile().alloc_count() +
                                    free.frame_misses());
  FreeProfile::CommitToken t = free.commit_tentative(0, 4, 4);
  free.accept(std::move(t));
  EXPECT_GE(free.frame_misses(), 1u) << "cold pool counts its misses";
  EXPECT_EQ(free.alloc_count(), free.profile().alloc_count() +
                                    free.frame_misses());
}

}  // namespace
}  // namespace resched
