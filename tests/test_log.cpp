#include "util/log.hpp"

#include <gtest/gtest.h>

namespace resched {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  // The library must stay quiet in tests by default.
  EXPECT_EQ(static_cast<int>(log_level()),
            static_cast<int>(LogLevel::kWarn));
}

TEST(Log, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(static_cast<int>(log_level()),
            static_cast<int>(LogLevel::kDebug));
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(static_cast<int>(log_level()),
            static_cast<int>(LogLevel::kOff));
}

TEST(Log, SuppressedBelowThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  RESCHED_INFO("should not appear");
  RESCHED_WARN("also hidden");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(Log, EmittedAtOrAboveThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  RESCHED_INFO("visible message " << 42);
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("visible message 42"), std::string::npos);
  EXPECT_NE(out.find("[resched:INFO]"), std::string::npos);
}

TEST(Log, StreamExpressionNotEvaluatedWhenSuppressed) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  RESCHED_ERROR("side effect " << ++evaluations);
  EXPECT_EQ(evaluations, 0);
}

TEST(Log, OffSilencesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  RESCHED_ERROR("even errors");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace resched
