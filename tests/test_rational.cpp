#include "util/rational.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

namespace resched {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalizesSign) {
  const Rational r(3, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
  const Rational s(-3, -4);
  EXPECT_EQ(s.num(), 3);
  EXPECT_EQ(s.den(), 4);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, ZeroHasCanonicalForm) {
  const Rational r(0, 7);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), std::invalid_argument);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 4) <=> Rational(1, 2), std::strong_ordering::equal);
}

TEST(Rational, UsableAsMapKey) {
  std::map<Rational, int> m;
  m[Rational(1, 2)] = 1;
  m[Rational(2, 4)] = 2;  // same key
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m[Rational(1, 2)], 2);
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, Abs) {
  EXPECT_EQ(Rational(-3, 4).abs(), Rational(3, 4));
  EXPECT_EQ(Rational(3, 4).abs(), Rational(3, 4));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-1, 4).to_double(), -0.25);
}

TEST(Rational, ToStringAndStream) {
  EXPECT_EQ(Rational(31, 6).to_string(), "31/6");
  EXPECT_EQ(Rational(4).to_string(), "4");
  std::ostringstream os;
  os << Rational(2, 3);
  EXPECT_EQ(os.str(), "2/3");
}

TEST(Rational, ParseFraction) {
  EXPECT_EQ(Rational::parse("31/6"), Rational(31, 6));
  EXPECT_EQ(Rational::parse("-3/9"), Rational(-1, 3));
}

TEST(Rational, ParseInteger) { EXPECT_EQ(Rational::parse("42"), Rational(42)); }

TEST(Rational, ParseDecimal) {
  EXPECT_EQ(Rational::parse("0.25"), Rational(1, 4));
  EXPECT_EQ(Rational::parse("1.5"), Rational(3, 2));
}

TEST(Rational, ParseMalformedThrows) {
  EXPECT_THROW(Rational::parse(""), std::invalid_argument);
  EXPECT_THROW(Rational::parse("abc"), std::invalid_argument);
  EXPECT_THROW(Rational::parse("1/0"), std::invalid_argument);
  EXPECT_THROW(Rational::parse("1."), std::invalid_argument);
}

TEST(Rational, CrossCancellationAvoidsOverflow) {
  // (2^40 / 3) * (3 / 2^40) = 1 without overflowing intermediates.
  const Rational big(std::int64_t{1} << 40, 3);
  const Rational inv(3, std::int64_t{1} << 40);
  EXPECT_EQ(big * inv, Rational(1));
}

TEST(Rational, AdditionReducesCrossTerms) {
  // 1/(2^40) + 1/(2^40) = 2^-39 -- naive a*d + c*b would overflow at 2^80.
  const Rational tiny(1, std::int64_t{1} << 40);
  EXPECT_EQ(tiny + tiny, Rational(1, std::int64_t{1} << 39));
}

// The paper's key constants round-trip exactly.
TEST(Rational, PaperConstants) {
  // Figure 3 ratio: 31/6 = 2/alpha - 1 + alpha/2 at alpha = 1/3.
  const Rational alpha(1, 3);
  const Rational ratio = Rational(2) / alpha - Rational(1) + alpha / Rational(2);
  EXPECT_EQ(ratio, Rational(31, 6));
}

class RationalFieldAxioms : public ::testing::TestWithParam<int> {};

TEST_P(RationalFieldAxioms, AssociativityCommutativityDistributivity) {
  // Pseudo-exhaustive sweep over small fractions keyed by the parameter.
  const int i = GetParam();
  const Rational a(i % 7 - 3, (i % 5) + 1);
  const Rational b((i / 7) % 9 - 4, (i % 3) + 1);
  const Rational c(i % 11 - 5, (i % 4) + 1);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, Rational(0));
  if (a != Rational(0)) {
    EXPECT_EQ(a / a, Rational(1));
  }
}

INSTANTIATE_TEST_SUITE_P(SmallFractions, RationalFieldAxioms,
                         ::testing::Range(0, 120));

}  // namespace
}  // namespace resched
