#include "algorithms/fcfs.hpp"

#include <gtest/gtest.h>

#include "generators/adversarial.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

TEST(Fcfs, SequentialWhenNothingFitsTogether) {
  const Instance instance(2, {Job{0, 2, 3, 0, ""}, Job{1, 2, 2, 0, ""}});
  const Schedule schedule = FcfsScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(0), 0);
  EXPECT_EQ(schedule.start(1), 3);
}

TEST(Fcfs, ParallelWhenRoomAllows) {
  const Instance instance(4, {Job{0, 2, 3, 0, ""}, Job{1, 2, 2, 0, ""}});
  const Schedule schedule = FcfsScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(0), 0);
  EXPECT_EQ(schedule.start(1), 0);
}

TEST(Fcfs, NeverOvertakes) {
  // Narrow job behind a wide blocked job must wait (the FCFS pathology).
  const Instance instance(
      2, {Job{0, 1, 10, 0, "running"}, Job{1, 2, 1, 0, "wide"},
          Job{2, 1, 1, 0, "narrow"}});
  const Schedule schedule = FcfsScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(0), 0);
  EXPECT_EQ(schedule.start(1), 10);  // waits for the narrow runner
  // Strict FCFS: job2 cannot start before job1 even though room exists.
  EXPECT_GE(schedule.start(2), schedule.start(1));
}

TEST(Fcfs, StartsAreMonotoneInQueueOrder) {
  WorkloadConfig config;
  config.n = 40;
  config.m = 8;
  const Instance instance = random_workload(config, 5);
  const Schedule schedule = FcfsScheduler().schedule(instance).value();
  ASSERT_TRUE(schedule.validate(instance).ok);
  for (JobId id = 1; id < static_cast<JobId>(instance.n()); ++id)
    EXPECT_GE(schedule.start(id), schedule.start(id - 1));
}

TEST(Fcfs, RespectsReservations) {
  const Instance instance(2, {Job{0, 2, 4, 0, ""}},
                          {Reservation{0, 1, 5, 2, ""}});
  const Schedule schedule = FcfsScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(0), 7);  // q=2 needs both machines for 4 ticks
  EXPECT_TRUE(schedule.validate(instance).ok);
}

TEST(Fcfs, RespectsReleases) {
  const Instance instance(4, {Job{0, 1, 2, 6, ""}, Job{1, 1, 2, 0, ""}});
  const Schedule schedule = FcfsScheduler().schedule(instance).value();
  // Queue order is by release: job1 first.
  EXPECT_EQ(schedule.start(1), 0);
  EXPECT_EQ(schedule.start(0), 6);
}

TEST(Fcfs, BadFamilyReachesRatioM) {
  // Section 2.2's claim realised: FCFS makespan = m (m^2 + 1) vs optimal
  // m^2 + m.
  for (const ProcCount m : {2, 4, 8}) {
    const FcfsBadFamily family = fcfs_bad_instance(m);
    const Schedule schedule = FcfsScheduler().schedule(family.instance).value();
    ASSERT_TRUE(schedule.validate(family.instance).ok);
    EXPECT_EQ(schedule.makespan(family.instance), family.fcfs_makespan);
  }
}

TEST(Fcfs, FeasibleOnRandomReservedInstances) {
  WorkloadConfig config;
  config.n = 30;
  config.m = 10;
  config.alpha = Rational(1, 2);
  Instance base = random_workload(config, 17);
  const Instance instance(base.m(), base.jobs(),
                          {Reservation{0, 5, 30, 10, ""}});
  const Schedule schedule = FcfsScheduler().schedule(instance).value();
  EXPECT_TRUE(schedule.validate(instance).ok);
}

}  // namespace
}  // namespace resched
