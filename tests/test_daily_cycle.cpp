#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algorithms/scheduler.hpp"
#include "generators/workload.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scn_format.hpp"

namespace resched {
namespace {

TEST(DailyCycle, ShapeAndDeterminism) {
  DailyCycleConfig config;
  config.n = 150;
  const Instance a = daily_cycle_workload(config, 3);
  const Instance b = daily_cycle_workload(config, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.n(), 150u);
  EXPECT_NE(a, daily_cycle_workload(config, 4));
}

TEST(DailyCycle, ArrivalsSortedWithinHorizon) {
  DailyCycleConfig config;
  config.n = 200;
  config.days = 2;
  config.ticks_per_day = 1440;
  const Instance instance = daily_cycle_workload(config, 7);
  Time previous = 0;
  for (const Job& job : instance.jobs()) {
    EXPECT_GE(job.release, previous);
    EXPECT_LT(job.release, 2 * 1440);
    previous = job.release;
  }
}

TEST(DailyCycle, DaytimeBusierThanNight) {
  DailyCycleConfig config;
  config.n = 2000;
  config.days = 4;
  const Instance instance = daily_cycle_workload(config, 11);
  int day_arrivals = 0;   // 08h-18h
  int night_arrivals = 0; // 00h-06h
  for (const Job& job : instance.jobs()) {
    const Time tod = job.release % config.ticks_per_day;
    const Time hour = tod * 24 / config.ticks_per_day;
    if (hour >= 8 && hour < 18) ++day_arrivals;
    if (hour < 6) ++night_arrivals;
  }
  // 10 daytime hours vs 6 night hours, but the intensity gap dominates:
  // expect several times more daytime arrivals.
  EXPECT_GT(day_arrivals, 3 * night_arrivals);
}

TEST(DailyCycle, RespectsWidthCapAndDurations) {
  DailyCycleConfig config;
  config.n = 300;
  config.m = 32;
  config.alpha = Rational(1, 4);
  config.p_min = 5;
  config.p_max = 50;
  const Instance instance = daily_cycle_workload(config, 13);
  for (const Job& job : instance.jobs()) {
    EXPECT_LE(job.q, 8);
    EXPECT_GE(job.p, 5);
    EXPECT_LE(job.p, 50);
  }
}

TEST(DailyCycle, SchedulableByEveryOnlineAlgorithm) {
  DailyCycleConfig config;
  config.n = 120;
  config.m = 32;
  const Instance instance = daily_cycle_workload(config, 17);
  for (const char* name : {"fcfs", "conservative", "easy", "lsrc"}) {
    const Schedule schedule = make_scheduler(name)->schedule(instance).value();
    EXPECT_TRUE(schedule.validate(instance).ok) << name;
  }
}

TEST(DailyCycle, CommittedScnProgramReproducesTheGeneratorBitForBit) {
  // The intensity curve is not a code-shaped knob: the committed
  // tests/data/daily_intensity.scn compiles to the exact built-in diurnal
  // profile, so installing it via DailyCycleConfig::intensity regenerates
  // identical workloads (same seed, same jobs, byte for byte).
  const ScenarioProgram program =
      load_scn(std::string(RESCHED_TEST_DATA_DIR) + "/daily_intensity.scn");
  DailyCycleConfig from_scn;
  from_scn.n = 150;
  from_scn.intensity = compile_scenario(program).curve;
  DailyCycleConfig builtin;
  builtin.n = 150;
  for (const std::uint64_t seed : {3ull, 17ull, 31ull})
    EXPECT_EQ(daily_cycle_workload(from_scn, seed),
              daily_cycle_workload(builtin, seed))
        << "seed " << seed;
}

TEST(DailyCycle, RejectsBadConfig) {
  DailyCycleConfig config;
  config.days = 0;
  EXPECT_THROW(daily_cycle_workload(config, 1), std::invalid_argument);
}

}  // namespace
}  // namespace resched
