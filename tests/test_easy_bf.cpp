#include "algorithms/easy_bf.hpp"

#include <gtest/gtest.h>

#include "algorithms/conservative_bf.hpp"
#include "algorithms/fcfs.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

TEST(EasyBf, BackfillsWhenHeadUnharmed) {
  // Head (job 1, q=2) reserved at t=10; job 2 (p <= 10) backfills at 0.
  const Instance instance(
      2, {Job{0, 1, 10, 0, ""}, Job{1, 2, 5, 0, ""}, Job{2, 1, 10, 0, ""}});
  const Schedule schedule = EasyBackfillScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(0), 0);
  EXPECT_EQ(schedule.start(2), 0);   // ends at 10 = head's reservation
  EXPECT_EQ(schedule.start(1), 10);  // head unharmed
}

TEST(EasyBf, RefusesBackfillThatDelaysHead) {
  // Job 2 (p = 11) would push the head's start from 10 to 11: denied.
  const Instance instance(
      2, {Job{0, 1, 10, 0, ""}, Job{1, 2, 5, 0, ""}, Job{2, 1, 11, 0, ""}});
  const Schedule schedule = EasyBackfillScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(0), 0);
  EXPECT_EQ(schedule.start(1), 10);
  EXPECT_GE(schedule.start(2), 10);  // had to wait
}

TEST(EasyBf, HeadChainsStartImmediately) {
  const Instance instance(
      4, {Job{0, 2, 3, 0, ""}, Job{1, 2, 3, 0, ""}, Job{2, 4, 2, 0, ""}});
  const Schedule schedule = EasyBackfillScheduler().schedule(instance).value();
  // Jobs 0 and 1 start at 0 (heads in succession); job 2 needs all 4.
  EXPECT_EQ(schedule.start(0), 0);
  EXPECT_EQ(schedule.start(1), 0);
  EXPECT_EQ(schedule.start(2), 3);
}

TEST(EasyBf, RespectsReservations) {
  const Instance instance(2, {Job{0, 2, 4, 0, ""}, Job{1, 1, 2, 0, ""}},
                          {Reservation{0, 2, 2, 3, ""}});
  const Schedule schedule = EasyBackfillScheduler().schedule(instance).value();
  ASSERT_TRUE(schedule.validate(instance).ok);
  EXPECT_EQ(schedule.start(0), 5);  // q=2 for 4 ticks only fits after [3,5)
  EXPECT_EQ(schedule.start(1), 0);  // narrow short one backfills before
}

TEST(EasyBf, RespectsReleases) {
  const Instance instance(2, {Job{0, 1, 3, 4, ""}, Job{1, 1, 3, 0, ""}});
  const Schedule schedule = EasyBackfillScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(1), 0);
  EXPECT_EQ(schedule.start(0), 4);
}

TEST(EasyBf, MoreAggressiveThanConservativeOnStarvationFamily) {
  // A stream of narrow jobs behind a wide head: EASY backfills them all,
  // conservative does too here; both must beat strict FCFS.
  std::vector<Job> jobs;
  jobs.push_back(Job{0, 1, 10, 0, "runner"});
  jobs.push_back(Job{1, 4, 2, 0, "wide-head"});
  for (int i = 0; i < 6; ++i)
    jobs.push_back(Job{static_cast<JobId>(2 + i), 1, 10, 0, ""});
  const Instance instance(4, std::move(jobs));
  const Time easy = EasyBackfillScheduler().schedule(instance).value()
                        .makespan(instance);
  const Time fcfs = FcfsScheduler().schedule(instance).value().makespan(instance);
  EXPECT_LT(easy, fcfs);
}

TEST(EasyBf, FeasibleAcrossRandomInstances) {
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    WorkloadConfig config;
    config.n = 40;
    config.m = 16;
    config.mean_interarrival = 3.0;  // online arrivals
    const Instance instance = random_workload(config, seed);
    const Schedule schedule = EasyBackfillScheduler().schedule(instance).value();
    const ValidationResult result = schedule.validate(instance);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.error;
  }
}

TEST(EasyBf, EmptyInstance) {
  const Instance instance(2, {});
  EXPECT_EQ(EasyBackfillScheduler().schedule(instance).value().makespan(instance), 0);
}

}  // namespace
}  // namespace resched
