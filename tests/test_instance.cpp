#include "core/instance.hpp"

#include <gtest/gtest.h>

namespace resched {
namespace {

Instance small_instance() {
  return Instance(4,
                  {Job{0, 2, 10, 0, "a"}, Job{1, 4, 5, 0, "b"},
                   Job{2, 1, 7, 3, "c"}},
                  {Reservation{0, 2, 6, 2, "r"}});
}

TEST(Instance, DefaultIsTrivial) {
  const Instance instance;
  EXPECT_EQ(instance.m(), 1);
  EXPECT_EQ(instance.n(), 0u);
  EXPECT_TRUE(instance.is_rigid_only());
}

TEST(Instance, BasicAccessors) {
  const Instance instance = small_instance();
  EXPECT_EQ(instance.m(), 4);
  EXPECT_EQ(instance.n(), 3u);
  EXPECT_EQ(instance.n_reservations(), 1u);
  EXPECT_EQ(instance.job(1).q, 4);
  EXPECT_EQ(instance.reservation(0).start, 2);
  EXPECT_FALSE(instance.is_rigid_only());
}

TEST(Instance, DerivedQuantities) {
  const Instance instance = small_instance();
  EXPECT_EQ(instance.total_work(), 2 * 10 + 4 * 5 + 1 * 7);
  EXPECT_EQ(instance.p_max(), 10);
  EXPECT_EQ(instance.q_max(), 4);
  EXPECT_EQ(instance.reservation_horizon(), 8);
  EXPECT_TRUE(instance.has_release_times());
}

TEST(Instance, RejectsBadMachineCount) {
  EXPECT_THROW(Instance(0, {}), std::invalid_argument);
}

TEST(Instance, RejectsNonDenseJobIds) {
  EXPECT_THROW(Instance(2, {Job{1, 1, 1, 0, ""}}), std::invalid_argument);
}

TEST(Instance, RejectsJobWiderThanMachine) {
  EXPECT_THROW(Instance(2, {Job{0, 3, 1, 0, ""}}), std::invalid_argument);
}

TEST(Instance, RejectsZeroWidthJob) {
  EXPECT_THROW(Instance(2, {Job{0, 0, 1, 0, ""}}), std::invalid_argument);
}

TEST(Instance, RejectsNonPositiveDuration) {
  EXPECT_THROW(Instance(2, {Job{0, 1, 0, 0, ""}}), std::invalid_argument);
}

TEST(Instance, RejectsNegativeRelease) {
  EXPECT_THROW(Instance(2, {Job{0, 1, 1, -1, ""}}), std::invalid_argument);
}

TEST(Instance, RejectsBadReservation) {
  EXPECT_THROW(Instance(2, {}, {Reservation{0, 3, 1, 0, ""}}),
               std::invalid_argument);
  EXPECT_THROW(Instance(2, {}, {Reservation{0, 1, 0, 0, ""}}),
               std::invalid_argument);
  EXPECT_THROW(Instance(2, {}, {Reservation{0, 1, 1, -1, ""}}),
               std::invalid_argument);
  EXPECT_THROW(Instance(2, {}, {Reservation{1, 1, 1, 0, ""}}),
               std::invalid_argument);
}

TEST(Instance, RejectsOverlappingReservationsExceedingCapacity) {
  // Two reservations of 2 machines each overlap on [3, 5) on a 3-machine
  // cluster: U = 4 > 3 there.
  EXPECT_THROW(Instance(3, {},
                        {Reservation{0, 2, 5, 0, ""},
                         Reservation{1, 2, 4, 3, ""}}),
               std::invalid_argument);
}

TEST(Instance, AcceptsTouchingReservationsAtFullCapacity) {
  // Back-to-back full-machine reservations are feasible (half-open windows).
  const Instance instance(2, {},
                          {Reservation{0, 2, 5, 0, ""},
                           Reservation{1, 2, 4, 5, ""}});
  EXPECT_EQ(instance.n_reservations(), 2u);
}

TEST(Instance, WithJobAppends) {
  const Instance base = small_instance();
  const Instance extended = base.with_job(2, 3, 1, "extra");
  EXPECT_EQ(extended.n(), 4u);
  EXPECT_EQ(extended.job(3).name, "extra");
  EXPECT_EQ(extended.job(3).id, 3);
  // Base unchanged (value semantics).
  EXPECT_EQ(base.n(), 3u);
}

TEST(Instance, JobAccessorBoundsChecked) {
  const Instance instance = small_instance();
  EXPECT_THROW((void)instance.job(3), std::invalid_argument);
  EXPECT_THROW((void)instance.job(-1), std::invalid_argument);
  EXPECT_THROW((void)instance.reservation(1), std::invalid_argument);
}

TEST(Instance, EqualityIsStructural) {
  EXPECT_EQ(small_instance(), small_instance());
  EXPECT_NE(small_instance(), small_instance().with_job(1, 1));
}

TEST(Instance, JobAreaOverflowChecked) {
  // q * p overflows int64.
  const Instance instance(std::int64_t{1} << 32,
                          {Job{0, std::int64_t{1} << 32,
                               std::int64_t{1} << 33, 0, ""}});
  EXPECT_THROW((void)instance.total_work(), std::overflow_error);
}

}  // namespace
}  // namespace resched
