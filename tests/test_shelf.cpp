#include "algorithms/shelf.hpp"

#include <gtest/gtest.h>

#include "bounds/lower_bounds.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

TEST(Shelf, SingleShelfWhenAllFit) {
  const Instance instance(
      4, {Job{0, 2, 5, 0, ""}, Job{1, 1, 3, 0, ""}, Job{2, 1, 2, 0, ""}});
  const Schedule schedule = ShelfScheduler().schedule(instance).value();
  for (JobId id = 0; id < 3; ++id) EXPECT_EQ(schedule.start(id), 0);
  EXPECT_EQ(schedule.makespan(instance), 5);
}

TEST(Shelf, OpensNewShelfWhenFull) {
  const Instance instance(
      2, {Job{0, 2, 5, 0, ""}, Job{1, 2, 3, 0, ""}});
  const Schedule schedule = ShelfScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(0), 0);
  EXPECT_EQ(schedule.start(1), 5);  // second shelf after the first's height
}

TEST(Shelf, ShelfHeightIsTallestJob) {
  // Sorted by decreasing p: job1 (p=6) opens shelf 0; job0 (p=4) joins it;
  // job2 (p=3, q=2) needs shelf 1 at t=6.
  const Instance instance(
      2, {Job{0, 1, 4, 0, ""}, Job{1, 1, 6, 0, ""}, Job{2, 2, 3, 0, ""}});
  const Schedule schedule = ShelfScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(1), 0);
  EXPECT_EQ(schedule.start(0), 0);
  EXPECT_EQ(schedule.start(2), 6);
}

TEST(Shelf, FirstFitReusesEarlierShelves) {
  // FFDH can tuck a narrow job into shelf 0 after shelf 1 opened; NFDH
  // cannot.
  const Instance instance(4, {
                                 Job{0, 3, 10, 0, ""},  // shelf 0
                                 Job{1, 3, 8, 0, ""},   // shelf 1 (3+3 > 4)
                                 Job{2, 1, 5, 0, ""},   // FF: shelf 0; NF: shelf 1
                             });
  const Schedule ff =
      ShelfScheduler(ShelfPolicy::kFirstFit).schedule(instance).value();
  EXPECT_EQ(ff.start(2), 0);
  const Schedule nf =
      ShelfScheduler(ShelfPolicy::kNextFit).schedule(instance).value();
  EXPECT_EQ(nf.start(2), 10);
}

TEST(Shelf, RejectsReservationsWithTypedDomainError) {
  const Instance instance(2, {Job{0, 1, 1, 0, ""}},
                          {Reservation{0, 1, 1, 0, ""}});
  const ScheduleOutcome outcome = ShelfScheduler().schedule(instance);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().reason, DomainReason::kReservations);
  EXPECT_NE(outcome.error().message.find("reservations"), std::string::npos);
  // supports() agrees with the outcome up front.
  EXPECT_FALSE(ShelfScheduler().supports(instance));
}

TEST(Shelf, RejectsReleaseTimesWithTypedDomainError) {
  const Instance instance(2, {Job{0, 1, 1, 5, ""}});
  const ScheduleOutcome outcome = ShelfScheduler().schedule(instance);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().reason, DomainReason::kReleaseTimes);
  EXPECT_FALSE(ShelfScheduler().supports(instance));
}

TEST(Shelf, CapabilitiesDeclareTheRestrictedDomain) {
  const Capabilities caps = ShelfScheduler().capabilities();
  EXPECT_FALSE(caps.release_times);
  EXPECT_FALSE(caps.reservations);
  EXPECT_TRUE(caps.deterministic);
}

TEST(Shelf, NfdhGuaranteeHolds) {
  // NFDH <= 2 OPT + p_max on strip packing; against the certified lower
  // bound: C_shelf <= 2 LB + p_max.
  for (const std::uint64_t seed : {41u, 42u, 43u, 44u, 45u}) {
    WorkloadConfig config;
    config.n = 60;
    config.m = 16;
    const Instance instance = random_workload(config, seed);
    const Schedule schedule =
        ShelfScheduler(ShelfPolicy::kNextFit).schedule(instance).value();
    ASSERT_TRUE(schedule.validate(instance).ok);
    const Time lb = makespan_lower_bound(instance);
    EXPECT_LE(schedule.makespan(instance), 2 * lb + instance.p_max())
        << "seed " << seed;
  }
}

TEST(Shelf, FirstFitNeverWorseThanNextFit) {
  for (const std::uint64_t seed : {51u, 52u, 53u, 54u}) {
    WorkloadConfig config;
    config.n = 50;
    config.m = 12;
    const Instance instance = random_workload(config, seed);
    const Time ff = ShelfScheduler(ShelfPolicy::kFirstFit)
                        .schedule(instance)
                        .value()
                        .makespan(instance);
    const Time nf = ShelfScheduler(ShelfPolicy::kNextFit)
                        .schedule(instance)
                        .value()
                        .makespan(instance);
    EXPECT_LE(ff, nf) << "seed " << seed;
  }
}

TEST(Shelf, Names) {
  EXPECT_EQ(ShelfScheduler(ShelfPolicy::kFirstFit).name(), "shelf-ff");
  EXPECT_EQ(ShelfScheduler(ShelfPolicy::kNextFit).name(), "shelf-nf");
}

}  // namespace
}  // namespace resched
