// Scenario x scheduler matrix: verdict derivation (held / VIOLATED /
// out-of-domain), thread-count invariance of the whole matrix, the blocking
// workload witness, scenario windows in the service harness, and the CSV /
// survival-table report shapes.
#include "scenario/matrix.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "algorithms/scheduler.hpp"

namespace resched {
namespace {

[[nodiscard]] std::vector<ScenarioSpec> small_stock(ProcCount m) {
  // The held / VIOLATED / out-of-domain contrast at test size: soak's
  // blocking workload defeats fcfs, maintenance carries reservations that
  // shelf algorithms reject.
  std::vector<ScenarioSpec> specs;
  for (ScenarioSpec& spec : stock_scenarios(m))
    if (spec.program.name == "soak" || spec.program.name == "maintenance")
      specs.push_back(std::move(spec));
  return specs;
}

TEST(ScenarioMatrix, BlockingWorkloadShape) {
  const std::vector<Job> jobs = blocking_workload(8, 3, 5);
  ASSERT_EQ(jobs.size(), 6u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, static_cast<JobId>(i));
    EXPECT_EQ(jobs[i].release, 0);
    if (i % 2 == 0) {
      EXPECT_EQ(jobs[i].q, 1);  // narrow-long
      EXPECT_EQ(jobs[i].p, 5);
    } else {
      EXPECT_EQ(jobs[i].q, 8);  // full-width blocker
      EXPECT_EQ(jobs[i].p, 1);
    }
  }
}

TEST(ScenarioMatrix, StockMatrixCoversEveryVerdictClass) {
  ScenarioMatrixConfig config;
  config.instances = 3;
  config.seed = 7;
  const ScenarioMatrixResult result =
      run_scenario_matrix(stock_scenarios(16), config);
  ASSERT_EQ(result.scenarios.size(), 6u);
  ASSERT_EQ(result.schedulers.size(), registered_schedulers().size());
  ASSERT_EQ(result.cells.size(),
            result.scenarios.size() * result.schedulers.size());
  EXPECT_EQ(result.instances, 3u);

  const auto row_of = [&](const std::string& name) {
    return static_cast<std::size_t>(
        std::find(result.scenarios.begin(), result.scenarios.end(), name) -
        result.scenarios.begin());
  };
  const auto col_of = [&](const std::string& name) {
    return static_cast<std::size_t>(
        std::find(result.schedulers.begin(), result.schedulers.end(), name) -
        result.schedulers.begin());
  };

  // soak (no reservations, blocking workload): fcfs exceeds Graham's
  // 2 - 1/m against the exact B&B reference, lsrc packs it optimally.
  const ScenarioCell& soak_fcfs = result.cell(row_of("soak"), col_of("fcfs"));
  EXPECT_EQ(soak_fcfs.verdict, CellVerdict::kViolated);
  EXPECT_GT(soak_fcfs.campaign.guarantee_violated, 0u);
  EXPECT_EQ(result.cell(row_of("soak"), col_of("lsrc")).verdict,
            CellVerdict::kHeld);

  // Reservation-bearing scenarios are outside the shelf algorithms' domain.
  const ScenarioCell& shelf =
      result.cell(row_of("daily_cycle"), col_of("shelf-ff"));
  EXPECT_EQ(shelf.verdict, CellVerdict::kOutOfDomain);
  EXPECT_EQ(shelf.campaign.scheduled, 0u);
  EXPECT_GT(shelf.campaign.skipped, 0u);

  // Every verdict string renders (the table never prints "?").
  for (const ScenarioCell& cell : result.cells)
    EXPECT_NE(to_string(cell.verdict), "?");
}

TEST(ScenarioMatrix, ResultIsIndependentOfThreadCount) {
  ScenarioMatrixConfig config;
  config.instances = 3;
  config.seed = 11;
  config.schedulers = {"fcfs", "lsrc", "easy"};
  std::string reference_csv;
  for (const std::size_t threads : {1u, 2u, 8u, 16u}) {
    config.threads = threads;
    const ScenarioMatrixResult result =
        run_scenario_matrix(small_stock(16), config);
    const std::string csv = result.to_csv();
    if (reference_csv.empty()) {
      reference_csv = csv;
    } else {
      EXPECT_EQ(csv, reference_csv) << "threads=" << threads;
    }
  }
}

TEST(ScenarioMatrix, CsvIsLongFormOnePerCell) {
  ScenarioMatrixConfig config;
  config.instances = 2;
  config.seed = 3;
  config.schedulers = {"fcfs", "lsrc"};
  const ScenarioMatrixResult result =
      run_scenario_matrix(small_stock(8), config);
  const std::string csv = result.to_csv();
  EXPECT_EQ(csv.rfind("scenario,scheduler,verdict,", 0), 0u);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            1 + result.cells.size());
  // The survival table has one row per scenario plus the header.
  EXPECT_EQ(result.survival_table().rows(), result.scenarios.size());
}

TEST(ScenarioMatrix, TraceWorkloadMakesEveryInstanceIdentical) {
  ScenarioSpec spec;
  spec.name = "trace";
  spec.program = soak_program(8);
  spec.workload = ScenarioWorkload::kTrace;
  spec.m = 8;
  spec.trace_jobs = {Job{0, 2, 5, 0, "a"}, Job{1, 8, 1, 3, "b"}};
  ScenarioMatrixConfig config;
  config.instances = 3;
  config.schedulers = {"easy"};
  const ScenarioMatrixResult result = run_scenario_matrix({spec}, config);
  const CampaignCell& cell = result.cell(0, 0).campaign;
  EXPECT_EQ(cell.scheduled, 3u);
  // Identical instances -> zero spread in the makespan aggregate.
  EXPECT_EQ(cell.makespan.min(), cell.makespan.max());
}

TEST(ScenarioMatrix, CommittedPwaSampleDrivesTheTraceRow) {
  // The committed synthetic PWA-style sample parses cleanly and becomes
  // the matrix's fixed-workload row via trace_scenario().
  const SwfTrace trace =
      load_swf_trace(std::string(RESCHED_TEST_DATA_DIR) + "/pwa_sample.swf");
  EXPECT_EQ(trace.max_procs, 32);
  EXPECT_EQ(trace.parsed, 48u);
  EXPECT_EQ(trace.skipped, 0u);
  EXPECT_EQ(trace.clamped_procs, 0u);
  EXPECT_EQ(trace.clamped_times, 0u);
  ASSERT_EQ(trace.jobs.size(), 48u);
  for (const Job& job : trace.jobs) {
    EXPECT_GT(job.p, 0);
    EXPECT_GE(job.q, 1);
    EXPECT_LE(job.q, trace.max_procs);
    EXPECT_GE(job.release, 0);
  }

  const ScenarioSpec spec = trace_scenario(trace);
  EXPECT_EQ(spec.name, "trace");
  EXPECT_EQ(spec.m, 32);
  EXPECT_EQ(spec.workload, ScenarioWorkload::kTrace);
  EXPECT_EQ(spec.trace_jobs.size(), trace.jobs.size());

  // The stock-plus-trace overload appends exactly one row.
  const std::vector<ScenarioSpec> with_trace = stock_scenarios(16, trace);
  ASSERT_EQ(with_trace.size(), stock_scenarios(16).size() + 1);
  EXPECT_EQ(with_trace.back().name, "trace");
}

TEST(ScenarioMatrix, TraceRowIsIndependentOfThreadCount) {
  const SwfTrace trace =
      load_swf_trace(std::string(RESCHED_TEST_DATA_DIR) + "/pwa_sample.swf");
  ScenarioMatrixConfig config;
  config.instances = 2;
  config.seed = 5;
  config.schedulers = {"fcfs", "easy"};
  std::string reference_csv;
  for (const std::size_t threads : {1u, 4u}) {
    config.threads = threads;
    const ScenarioMatrixResult result =
        run_scenario_matrix({trace_scenario(trace)}, config);
    ASSERT_EQ(result.scenarios.size(), 1u);
    EXPECT_EQ(result.scenarios[0], "trace");
    // Identical fixed workload per instance: zero makespan spread.
    const CampaignCell& cell = result.cell(0, 0).campaign;
    EXPECT_EQ(cell.scheduled, 2u);
    EXPECT_EQ(cell.makespan.min(), cell.makespan.max());
    const std::string csv = result.to_csv();
    if (reference_csv.empty()) {
      reference_csv = csv;
    } else {
      EXPECT_EQ(csv, reference_csv) << "threads=" << threads;
    }
  }
}

TEST(ScenarioMatrix, ScenarioWindowsMirrorTheUnavailabilityRectangles) {
  const CompiledScenario compiled = compile_scenario(maintenance_program(8));
  const std::vector<AvailabilityWindow> windows =
      scenario_windows(compiled, 8);
  ASSERT_EQ(windows.size(), 1u);  // one half-machine rectangle
  EXPECT_EQ(windows.front(), (AvailabilityWindow{400, 600, 4}));

  // flash_crowd: four bursts -> four windows, one per repeat round.
  const std::vector<AvailabilityWindow> storm = scenario_windows(
      compile_scenario(flash_crowd_program(8)), 8);
  ASSERT_EQ(storm.size(), 4u);
  for (std::size_t i = 0; i < storm.size(); ++i) {
    EXPECT_EQ(storm[i].start, 250 * static_cast<Time>(i) + 200);
    EXPECT_EQ(storm[i].end, 250 * static_cast<Time>(i) + 250);
    EXPECT_EQ(storm[i].width, 6);
  }
}

TEST(ScenarioMatrix, ServiceStepAppliesWindowsDeterministically) {
  const auto scheduler = make_scheduler("easy");
  LoadGenConfig load;
  load.m = 32;
  load.p_min = 1;
  load.p_max = 20;
  ServiceConfig config;
  config.phases = ServicePhases{100, 600, 100};
  const ServiceStepResult a = run_scenario_service_step(
      *scheduler, maintenance_program(32), std::nullopt, load, 42, 150.0,
      config);
  const ServiceStepResult b = run_scenario_service_step(
      *scheduler, maintenance_program(32), std::nullopt, load, 42, 150.0,
      config);
  EXPECT_EQ(a.scenario_windows, 1u);
  EXPECT_GT(a.completed, 0u);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.sim_end, b.sim_end);

  // The window bites: the same load with the whole machine finishes no
  // later and completes at least as many jobs.
  const ServiceStepResult whole = run_scenario_service_step(
      *scheduler, soak_program(32), std::nullopt, load, 42, 150.0, config);
  EXPECT_EQ(whole.scenario_windows, 0u);
  EXPECT_GE(a.peak_queue_depth, whole.peak_queue_depth);
}

TEST(ScenarioMatrix, InfeasibleWindowIsAConfigError) {
  const auto scheduler = make_scheduler("easy");
  LoadGenConfig load;
  load.m = 4;
  ServiceConfig config;
  // maintenance_program(32) wants to withdraw 16 of 4 processors.
  EXPECT_THROW((void)run_scenario_service_step(*scheduler,
                                               maintenance_program(32),
                                               std::nullopt, load, 1, 50.0,
                                               config),
               std::exception);
}

}  // namespace
}  // namespace resched
