#include "sim/des.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace resched {
namespace {

TEST(Des, RunsHandlersInTimeOrder) {
  Simulation sim;
  std::vector<Time> fired;
  sim.at(5, [&](Simulation& s) { fired.push_back(s.now()); });
  sim.at(2, [&](Simulation& s) { fired.push_back(s.now()); });
  sim.at(9, [&](Simulation& s) { fired.push_back(s.now()); });
  const Time end = sim.run();
  EXPECT_EQ(fired, (std::vector<Time>{2, 5, 9}));
  EXPECT_EQ(end, 9);
}

TEST(Des, HandlersMayScheduleMore) {
  Simulation sim;
  std::vector<Time> fired;
  sim.at(1, [&](Simulation& s) {
    fired.push_back(s.now());
    s.after(3, [&](Simulation& s2) { fired.push_back(s2.now()); });
  });
  sim.run();
  EXPECT_EQ(fired, (std::vector<Time>{1, 4}));
}

TEST(Des, HorizonStopsEarly) {
  Simulation sim;
  int count = 0;
  sim.at(1, [&](Simulation&) { ++count; });
  sim.at(100, [&](Simulation&) { ++count; });
  sim.run(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();  // drain the rest
  EXPECT_EQ(count, 2);
}

TEST(Des, BoundedRunAdvancesClockToHorizon) {
  // A bounded run means "simulate up to the horizon": even when no event
  // sits at the bound, the clock must land there, not at the last event
  // fired -- otherwise phase-stepped drivers (run(100), run(200), ...)
  // observe time standing still across empty windows.
  Simulation sim;
  sim.at(3, [](Simulation&) {});
  const Time end = sim.run(50);
  EXPECT_EQ(end, 50);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Des, BoundedRunWithNoEventsStillAdvances) {
  Simulation sim;
  EXPECT_EQ(sim.run(25), 25);
  EXPECT_EQ(sim.now(), 25);
  // A later bound keeps advancing; an earlier one never rewinds.
  EXPECT_EQ(sim.run(40), 40);
  EXPECT_EQ(sim.run(10), 40);
}

TEST(Des, UnboundedRunKeepsLastEventTime) {
  // Draining without a horizon reports when the system went quiet, not an
  // arbitrary bound.
  Simulation sim;
  sim.at(7, [](Simulation&) {});
  EXPECT_EQ(sim.run(), 7);
  EXPECT_EQ(sim.now(), 7);
}

TEST(Des, EventExactlyAtHorizonFires) {
  Simulation sim;
  int count = 0;
  sim.at(50, [&](Simulation&) { ++count; });
  sim.at(51, [&](Simulation&) { ++count; });
  EXPECT_EQ(sim.run(50), 50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Des, PhaseSteppedRunsResumeFromHorizon) {
  // run(h1), run(h2) must behave like one run(h2): events land in order and
  // `after` offsets anchor at the advanced clock, not the last event.
  Simulation sim;
  std::vector<Time> fired;
  sim.at(5, [&](Simulation& s) { fired.push_back(s.now()); });
  sim.at(95, [&](Simulation& s) { fired.push_back(s.now()); });
  sim.run(60);
  EXPECT_EQ(sim.now(), 60);
  sim.after(10, [&](Simulation& s) { fired.push_back(s.now()); });
  sim.run(100);
  EXPECT_EQ(fired, (std::vector<Time>{5, 70, 95}));
  EXPECT_EQ(sim.now(), 100);
}

TEST(Des, RejectsPastEvents) {
  Simulation sim;
  sim.at(10, [](Simulation& s) {
    EXPECT_THROW(s.at(5, [](Simulation&) {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Des, EqualTimesFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.at(3, [&order, i](Simulation&) { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Des, NowAdvancesMonotonically) {
  Simulation sim;
  Time last = -1;
  for (const Time t : {Time{4}, Time{1}, Time{8}, Time{8}, Time{2}})
    sim.at(t, [&last](Simulation& s) {
      EXPECT_GE(s.now(), last);
      last = s.now();
    });
  sim.run();
  EXPECT_EQ(last, 8);
}

}  // namespace
}  // namespace resched
