#include "sim/des.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace resched {
namespace {

TEST(Des, RunsHandlersInTimeOrder) {
  Simulation sim;
  std::vector<Time> fired;
  sim.at(5, [&](Simulation& s) { fired.push_back(s.now()); });
  sim.at(2, [&](Simulation& s) { fired.push_back(s.now()); });
  sim.at(9, [&](Simulation& s) { fired.push_back(s.now()); });
  const Time end = sim.run();
  EXPECT_EQ(fired, (std::vector<Time>{2, 5, 9}));
  EXPECT_EQ(end, 9);
}

TEST(Des, HandlersMayScheduleMore) {
  Simulation sim;
  std::vector<Time> fired;
  sim.at(1, [&](Simulation& s) {
    fired.push_back(s.now());
    s.after(3, [&](Simulation& s2) { fired.push_back(s2.now()); });
  });
  sim.run();
  EXPECT_EQ(fired, (std::vector<Time>{1, 4}));
}

TEST(Des, HorizonStopsEarly) {
  Simulation sim;
  int count = 0;
  sim.at(1, [&](Simulation&) { ++count; });
  sim.at(100, [&](Simulation&) { ++count; });
  sim.run(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();  // drain the rest
  EXPECT_EQ(count, 2);
}

TEST(Des, RejectsPastEvents) {
  Simulation sim;
  sim.at(10, [](Simulation& s) {
    EXPECT_THROW(s.at(5, [](Simulation&) {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Des, EqualTimesFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.at(3, [&order, i](Simulation&) { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Des, NowAdvancesMonotonically) {
  Simulation sim;
  Time last = -1;
  for (const Time t : {Time{4}, Time{1}, Time{8}, Time{8}, Time{2}})
    sim.at(t, [&last](Simulation& s) {
      EXPECT_GE(s.now(), last);
      last = s.now();
    });
  sim.run();
  EXPECT_EQ(last, 8);
}

}  // namespace
}  // namespace resched
