#include "generators/workload.hpp"

#include <gtest/gtest.h>

#include <array>
#include <limits>
#include <set>

#include "util/prng.hpp"

namespace resched {
namespace {

TEST(Workload, DeterministicGivenSeed) {
  WorkloadConfig config;
  config.n = 30;
  EXPECT_EQ(random_workload(config, 9), random_workload(config, 9));
  EXPECT_NE(random_workload(config, 9), random_workload(config, 10));
}

TEST(Workload, RespectsJobCountAndMachine) {
  WorkloadConfig config;
  config.n = 17;
  config.m = 5;
  const Instance instance = random_workload(config, 1);
  EXPECT_EQ(instance.n(), 17u);
  EXPECT_EQ(instance.m(), 5);
  EXPECT_TRUE(instance.is_rigid_only());
}

TEST(Workload, DurationsWithinBounds) {
  WorkloadConfig config;
  config.n = 200;
  config.p_min = 3;
  config.p_max = 11;
  const Instance instance = random_workload(config, 2);
  for (const Job& job : instance.jobs()) {
    EXPECT_GE(job.p, 3);
    EXPECT_LE(job.p, 11);
  }
}

TEST(Workload, AlphaCapsWidth) {
  WorkloadConfig config;
  config.n = 200;
  config.m = 16;
  config.alpha = Rational(1, 4);
  config.width = WidthDistribution::kUniform;
  const Instance instance = random_workload(config, 3);
  for (const Job& job : instance.jobs()) EXPECT_LE(job.q, 4);
}

TEST(Workload, PowersOfTwoWidths) {
  WorkloadConfig config;
  config.n = 200;
  config.m = 64;
  config.width = WidthDistribution::kPowersOfTwo;
  const Instance instance = random_workload(config, 4);
  for (const Job& job : instance.jobs()) {
    const ProcCount q = job.q;
    EXPECT_EQ(q & (q - 1), 0) << q << " is not a power of two";
  }
}

TEST(Workload, MostlyNarrowSkewsSmall) {
  WorkloadConfig config;
  config.n = 500;
  config.m = 64;
  config.width = WidthDistribution::kMostlyNarrow;
  const Instance instance = random_workload(config, 5);
  int narrow = 0;
  for (const Job& job : instance.jobs())
    if (job.q <= 8) ++narrow;
  EXPECT_GT(narrow, 350);  // ~80% plus narrow draws from the wide branch
}

TEST(Workload, OfflineByDefault) {
  WorkloadConfig config;
  config.n = 50;
  const Instance instance = random_workload(config, 6);
  EXPECT_FALSE(instance.has_release_times());
}

TEST(Workload, ArrivalsAreMonotoneAndPresent) {
  WorkloadConfig config;
  config.n = 50;
  config.mean_interarrival = 5.0;
  const Instance instance = random_workload(config, 7);
  EXPECT_TRUE(instance.has_release_times());
  for (std::size_t i = 1; i < instance.n(); ++i)
    EXPECT_GE(instance.jobs()[i].release, instance.jobs()[i - 1].release);
}

TEST(Workload, UniformWidthsCoverRange) {
  WorkloadConfig config;
  config.n = 500;
  config.m = 8;
  config.width = WidthDistribution::kUniform;
  const Instance instance = random_workload(config, 8);
  std::set<ProcCount> widths;
  for (const Job& job : instance.jobs()) widths.insert(job.q);
  EXPECT_EQ(widths.size(), 8u);
}

TEST(Workload, RejectsBadConfig) {
  WorkloadConfig config;
  config.p_min = 0;
  EXPECT_THROW(random_workload(config, 1), std::invalid_argument);
  config.p_min = 5;
  config.p_max = 4;
  EXPECT_THROW(random_workload(config, 1), std::invalid_argument);
}

TEST(Workload, PoissonClockSaturatesInsteadOfOverflowing) {
  // An enormous mean inter-arrival pushes the accumulated double clock past
  // anything llround can represent within one draw; releases must clamp to
  // kTimeInfinity (and stay monotone) instead of llround-UB.
  WorkloadConfig config;
  config.n = 5;
  config.m = 4;
  config.mean_interarrival = 1e300;
  const Instance instance = random_workload(config, 1);
  for (const Job& job : instance.jobs()) EXPECT_EQ(job.release, kTimeInfinity);
}

TEST(Workload, SaturatingTicksClampsAndRounds) {
  EXPECT_EQ(saturating_ticks(0.0), 0);
  EXPECT_EQ(saturating_ticks(-3.7), 0);
  EXPECT_EQ(saturating_ticks(41.5), 42);  // llround: half away from zero
  EXPECT_EQ(saturating_ticks(static_cast<double>(kTimeInfinity)),
            kTimeInfinity);
  EXPECT_EQ(saturating_ticks(1e300), kTimeInfinity);
  EXPECT_EQ(saturating_ticks(std::numeric_limits<double>::infinity()),
            kTimeInfinity);
  EXPECT_EQ(saturating_ticks(std::numeric_limits<double>::quiet_NaN()),
            kTimeInfinity);
}

TEST(Workload, DrawWidthRespectsCapAndDistribution) {
  Prng prng(2);
  for (int i = 0; i < 200; ++i) {
    const ProcCount u = draw_width(prng, WidthDistribution::kUniform, 13);
    EXPECT_GE(u, 1);
    EXPECT_LE(u, 13);
    const ProcCount pow2 =
        draw_width(prng, WidthDistribution::kPowersOfTwo, 13);
    EXPECT_LE(pow2, 8);  // largest power of two under the cap
    EXPECT_EQ(pow2 & (pow2 - 1), 0);
    EXPECT_LE(draw_width(prng, WidthDistribution::kMostlyNarrow, 13), 13);
  }
  EXPECT_EQ(draw_width(prng, WidthDistribution::kPowersOfTwo, 1), 1);
  EXPECT_THROW((void)draw_width(prng, WidthDistribution::kUniform, 0),
               std::invalid_argument);
}

// Fixed-seed draw pins: the width switch moved into the shared draw_width
// helper and releases now route through saturating_ticks; these goldens
// assert the Prng stream consumption is byte-for-byte what the inlined code
// produced, so every seed-pinned experiment upstream still regenerates the
// same instances.
TEST(Workload, GoldenDrawsPowersOfTwoWithArrivals) {
  WorkloadConfig config;
  config.n = 6;
  config.m = 64;
  config.alpha = Rational(1, 2);
  config.mean_interarrival = 50.0;
  const Instance instance = random_workload(config, 17);
  const std::vector<std::array<Time, 3>> expected = {
      {32, 20, 140}, {1, 86, 282}, {4, 55, 321},
      {8, 21, 472},  {1, 6, 493},  {4, 1, 503},
  };
  ASSERT_EQ(instance.n(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const Job& job = instance.job(static_cast<JobId>(i));
    EXPECT_EQ(job.q, expected[i][0]) << "job " << i;
    EXPECT_EQ(job.p, expected[i][1]) << "job " << i;
    EXPECT_EQ(job.release, expected[i][2]) << "job " << i;
  }
}

TEST(Workload, GoldenDrawsMostlyNarrowOffline) {
  WorkloadConfig config;
  config.n = 6;
  config.m = 32;
  config.width = WidthDistribution::kMostlyNarrow;
  const Instance instance = random_workload(config, 23);
  const std::vector<std::array<Time, 2>> expected = {
      {2, 7}, {1, 2}, {1, 49}, {3, 71}, {29, 38}, {1, 2},
  };
  ASSERT_EQ(instance.n(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const Job& job = instance.job(static_cast<JobId>(i));
    EXPECT_EQ(job.q, expected[i][0]) << "job " << i;
    EXPECT_EQ(job.p, expected[i][1]) << "job " << i;
  }
}

TEST(Workload, GoldenDrawsDailyCycle) {
  DailyCycleConfig config;
  config.n = 5;
  config.m = 16;
  config.days = 1;
  config.ticks_per_day = 1440;
  const Instance instance = daily_cycle_workload(config, 31);
  const std::vector<std::array<Time, 3>> expected = {
      {1, 4, 504},  {1, 3, 698},  {8, 13, 758},
      {8, 10, 773}, {4, 87, 879},
  };
  ASSERT_EQ(instance.n(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const Job& job = instance.job(static_cast<JobId>(i));
    EXPECT_EQ(job.q, expected[i][0]) << "job " << i;
    EXPECT_EQ(job.p, expected[i][1]) << "job " << i;
    EXPECT_EQ(job.release, expected[i][2]) << "job " << i;
  }
}

TEST(Workload, TinyAlphaStillYieldsValidJobs) {
  WorkloadConfig config;
  config.n = 20;
  config.m = 4;
  config.alpha = Rational(1, 100);  // q_cap floors to 0 -> clamped to 1
  const Instance instance = random_workload(config, 9);
  for (const Job& job : instance.jobs()) EXPECT_EQ(job.q, 1);
}

}  // namespace
}  // namespace resched
