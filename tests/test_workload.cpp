#include "generators/workload.hpp"

#include <gtest/gtest.h>

#include <set>

namespace resched {
namespace {

TEST(Workload, DeterministicGivenSeed) {
  WorkloadConfig config;
  config.n = 30;
  EXPECT_EQ(random_workload(config, 9), random_workload(config, 9));
  EXPECT_NE(random_workload(config, 9), random_workload(config, 10));
}

TEST(Workload, RespectsJobCountAndMachine) {
  WorkloadConfig config;
  config.n = 17;
  config.m = 5;
  const Instance instance = random_workload(config, 1);
  EXPECT_EQ(instance.n(), 17u);
  EXPECT_EQ(instance.m(), 5);
  EXPECT_TRUE(instance.is_rigid_only());
}

TEST(Workload, DurationsWithinBounds) {
  WorkloadConfig config;
  config.n = 200;
  config.p_min = 3;
  config.p_max = 11;
  const Instance instance = random_workload(config, 2);
  for (const Job& job : instance.jobs()) {
    EXPECT_GE(job.p, 3);
    EXPECT_LE(job.p, 11);
  }
}

TEST(Workload, AlphaCapsWidth) {
  WorkloadConfig config;
  config.n = 200;
  config.m = 16;
  config.alpha = Rational(1, 4);
  config.width = WidthDistribution::kUniform;
  const Instance instance = random_workload(config, 3);
  for (const Job& job : instance.jobs()) EXPECT_LE(job.q, 4);
}

TEST(Workload, PowersOfTwoWidths) {
  WorkloadConfig config;
  config.n = 200;
  config.m = 64;
  config.width = WidthDistribution::kPowersOfTwo;
  const Instance instance = random_workload(config, 4);
  for (const Job& job : instance.jobs()) {
    const ProcCount q = job.q;
    EXPECT_EQ(q & (q - 1), 0) << q << " is not a power of two";
  }
}

TEST(Workload, MostlyNarrowSkewsSmall) {
  WorkloadConfig config;
  config.n = 500;
  config.m = 64;
  config.width = WidthDistribution::kMostlyNarrow;
  const Instance instance = random_workload(config, 5);
  int narrow = 0;
  for (const Job& job : instance.jobs())
    if (job.q <= 8) ++narrow;
  EXPECT_GT(narrow, 350);  // ~80% plus narrow draws from the wide branch
}

TEST(Workload, OfflineByDefault) {
  WorkloadConfig config;
  config.n = 50;
  const Instance instance = random_workload(config, 6);
  EXPECT_FALSE(instance.has_release_times());
}

TEST(Workload, ArrivalsAreMonotoneAndPresent) {
  WorkloadConfig config;
  config.n = 50;
  config.mean_interarrival = 5.0;
  const Instance instance = random_workload(config, 7);
  EXPECT_TRUE(instance.has_release_times());
  for (std::size_t i = 1; i < instance.n(); ++i)
    EXPECT_GE(instance.jobs()[i].release, instance.jobs()[i - 1].release);
}

TEST(Workload, UniformWidthsCoverRange) {
  WorkloadConfig config;
  config.n = 500;
  config.m = 8;
  config.width = WidthDistribution::kUniform;
  const Instance instance = random_workload(config, 8);
  std::set<ProcCount> widths;
  for (const Job& job : instance.jobs()) widths.insert(job.q);
  EXPECT_EQ(widths.size(), 8u);
}

TEST(Workload, RejectsBadConfig) {
  WorkloadConfig config;
  config.p_min = 0;
  EXPECT_THROW(random_workload(config, 1), std::invalid_argument);
  config.p_min = 5;
  config.p_max = 4;
  EXPECT_THROW(random_workload(config, 1), std::invalid_argument);
}

TEST(Workload, TinyAlphaStillYieldsValidJobs) {
  WorkloadConfig config;
  config.n = 20;
  config.m = 4;
  config.alpha = Rational(1, 100);  // q_cap floors to 0 -> clamped to 1
  const Instance instance = random_workload(config, 9);
  for (const Job& job : instance.jobs()) EXPECT_EQ(job.q, 1);
}

}  // namespace
}  // namespace resched
