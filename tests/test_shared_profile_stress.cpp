// Shared-const-read stress: invariant I5 of core/step_profile.hpp.
//
// Many threads hammer ONE const StepProfile (and one const Instance through
// the whole scheduler stack) at index scale. Before the atomic-snapshot
// index this was undefined behavior -- every windowed query could race on
// the lazily built cache -- and CampaignRunner had to regenerate instances
// per task to sidestep it. These tests are the ThreadSanitizer targets of
// the CI tsan job: correctness is asserted here (every thread must see the
// single-threaded reference answers), and TSan asserts the absence of data
// races in the same run.
//
// Query mix: min_in / max_in / first_below / first_at_least / integral /
// time_to_accumulate -- every public read that can touch the segment-tree
// snapshot, with windows wide enough (> kIndexedLeafCutoff segments) that
// the indexed descent, not the bounded scan, answers them. The profile is
// left index-less before the threads start, so all of them race to build
// and install the first snapshot (the compare-exchange path).
#include "core/step_profile.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "algorithms/scheduler.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"
#include "util/prng.hpp"

namespace resched {
namespace {

constexpr std::size_t kThreads = 8;

StepProfile fragmented_profile() {
  StepProfile profile(64);
  Prng prng(20260726);
  // ~2000 windowed adds produce thousands of segments over [0, 200k) --
  // far past kMinIndexedSegments, with plenty of room for windows spanning
  // more than kIndexedLeafCutoff (256) segments.
  for (int i = 0; i < 2000; ++i) {
    const Time from = prng.uniform_int(0, 200000);
    const Time to = from + prng.uniform_int(1, 800);
    profile.add(from, to, prng.uniform_int(-2, 3));
  }
  return profile;
}

struct Query {
  Time from;
  Time to;
  std::int64_t threshold;
  std::int64_t target;
};

struct Expected {
  std::int64_t min;
  std::int64_t max;
  Time first_below;
  Time first_at_least;
  std::int64_t integral;
  Time accumulate;
};

TEST(SharedProfileStress, EightThreadsHammerOneConstProfile) {
  const StepProfile profile = fragmented_profile();

  std::vector<Query> queries;
  Prng prng(99);
  for (int i = 0; i < 64; ++i) {
    Query q{};
    q.from = prng.uniform_int(0, 150000);
    q.to = q.from + prng.uniform_int(50000, 120000);  // wide: indexed path
    q.threshold = prng.uniform_int(58, 70);
    q.target = prng.uniform_int(1, 1 << 20);
    queries.push_back(q);
  }

  // Reference answers from a private copy (copies drop the index cache, so
  // this neither builds nor reuses the shared object's snapshot).
  const StepProfile reference = profile;
  std::vector<Expected> expected;
  expected.reserve(queries.size());
  for (const Query& q : queries)
    expected.push_back(Expected{
        reference.min_in(q.from, q.to), reference.max_in(q.from, q.to),
        reference.first_below(q.from, q.to, q.threshold),
        reference.first_at_least(q.from, q.threshold),
        reference.integral(q.from, q.to),
        reference.time_to_accumulate(q.from, q.target)});

  // The shared object still has no index: all threads race to build and
  // install the first snapshot, then keep reading it concurrently.
  std::atomic<int> mismatches{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {}
      for (int round = 0; round < 3; ++round) {
        // Distinct per-thread phase so threads disagree about which query
        // triggers the first descent.
        for (std::size_t k = 0; k < queries.size(); ++k) {
          const std::size_t idx = (k + t * 7 + static_cast<std::size_t>(
                                                   round)) % queries.size();
          const Query& q = queries[idx];
          const Expected& e = expected[idx];
          if (profile.min_in(q.from, q.to) != e.min ||
              profile.max_in(q.from, q.to) != e.max ||
              profile.first_below(q.from, q.to, q.threshold) !=
                  e.first_below ||
              profile.first_at_least(q.from, q.threshold) !=
                  e.first_at_least ||
              profile.integral(q.from, q.to) != e.integral ||
              profile.time_to_accumulate(q.from, q.target) != e.accumulate)
            mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (std::thread& thread : pool) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SharedProfileStress, MutationAfterSharedReadsStaysCoherent) {
  StepProfile profile = fragmented_profile();
  // Concurrent const reads build + install the snapshot...
  {
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t)
      pool.emplace_back(
          [&] { (void)profile.min_in(0, 180000); });
    for (std::thread& thread : pool) thread.join();
  }
  // ...then exclusive mutation patches or drops it, and subsequent queries
  // must see the new function exactly.
  profile.add(1000, 90000, 5);
  const StepProfile reference = profile;  // index-less copy
  EXPECT_EQ(profile.min_in(500, 175000), reference.min_in(500, 175000));
  EXPECT_EQ(profile.integral(500, 175000), reference.integral(500, 175000));
}

TEST(SharedInstanceStress, ConcurrentSchedulersAgreeOnOneSharedInstance) {
  // The campaign share_instances mode in miniature: one generated instance,
  // every scheduler task reading it concurrently, results identical to the
  // single-threaded reference run.
  WorkloadConfig config;
  config.n = 120;
  config.m = 32;
  config.alpha = Rational(1, 2);
  Instance instance = random_workload(config, 4242);
  AlphaReservationConfig resa;
  resa.alpha = Rational(1, 2);
  resa.count = 8;
  resa.horizon = 800;
  resa.max_duration = 100;
  instance = with_alpha_restricted_reservations(instance, resa, 17);

  const std::vector<std::string> names = {"lsrc", "conservative", "easy",
                                          "fcfs"};
  std::vector<Schedule> reference;
  reference.reserve(names.size());
  for (const std::string& name : names)
    reference.push_back(make_scheduler(name)->schedule(instance).value());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t round = 0; round < 2; ++round) {
        const std::size_t s = (t + round) % names.size();
        const Schedule schedule =
            make_scheduler(names[s])->schedule(instance).value();
        if (!(schedule == reference[s]))
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace resched
