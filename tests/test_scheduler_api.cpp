// Scheduler API v2: ScheduleOutcome semantics, capability introspection,
// registry metadata, and capability-aware composition (portfolio,
// online-batch).
//
// Contract under test (algorithms/scheduler.hpp): out-of-domain is a NORMAL
// result carried by the typed DomainError arm, produced only at scheduler
// entry points; consulting the wrong side of an outcome is an invariant
// violation (logic_error); capabilities() and supports() agree with what
// schedule() actually does.
#include "algorithms/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>

#include "algorithms/online_batch.hpp"
#include "algorithms/portfolio.hpp"
#include "algorithms/shelf.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

Instance open_instance() {
  return Instance(4, {Job{0, 2, 3, 0, ""}, Job{1, 2, 2, 0, ""},
                      Job{2, 1, 4, 0, ""}});
}

Instance reserved_instance() {
  return Instance(4, {Job{0, 2, 3, 0, ""}, Job{1, 2, 2, 0, ""}},
                  {Reservation{0, 1, 2, 1, ""}});
}

Instance online_instance() {
  return Instance(4, {Job{0, 2, 3, 0, ""}, Job{1, 2, 2, 5, ""}});
}

TEST(ScheduleOutcome, SuccessArmExposesTheScheduleOnly) {
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 3);
  const ScheduleOutcome outcome(std::move(schedule));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(static_cast<bool>(outcome));
  EXPECT_EQ(outcome.value().start(1), 3);
  // Consulting the wrong side is a caller bug, not a recoverable state.
  EXPECT_THROW((void)outcome.error(), std::logic_error);
}

TEST(ScheduleOutcome, ErrorArmExposesTheDomainErrorOnly) {
  const ScheduleOutcome outcome(
      DomainError{DomainReason::kReleaseTimes, "strictly offline"});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().reason, DomainReason::kReleaseTimes);
  EXPECT_EQ(outcome.error().message, "strictly offline");
  EXPECT_THROW((void)outcome.value(), std::logic_error);
}

TEST(ScheduleOutcome, RvalueValueMovesTheScheduleOut) {
  Schedule schedule(1);
  schedule.set_start(0, 7);
  ScheduleOutcome outcome(std::move(schedule));
  const Schedule moved = std::move(outcome).value();
  EXPECT_EQ(moved.start(0), 7);
}

TEST(DomainReason, NamesAreStable) {
  // skip_reasons() strings and driver output key off these.
  EXPECT_EQ(to_string(DomainReason::kReservations), "reservations");
  EXPECT_EQ(to_string(DomainReason::kReleaseTimes), "release-times");
  EXPECT_EQ(to_string(DomainReason::kOther), "other");
}

TEST(Capabilities, DefaultIsUnrestricted) {
  const Capabilities caps;
  EXPECT_TRUE(caps.release_times);
  EXPECT_TRUE(caps.reservations);
  EXPECT_TRUE(caps.deterministic);
}

TEST(Registry, InfoCoversEverySchedulerWithDescriptions) {
  const auto names = registered_schedulers();
  const auto info = registered_scheduler_info();
  ASSERT_EQ(info.size(), names.size());
  for (std::size_t i = 0; i < info.size(); ++i) {
    EXPECT_EQ(info[i].name, names[i]);  // same (sorted) order
    EXPECT_FALSE(info[i].description.empty()) << info[i].name;
    EXPECT_TRUE(info[i].capabilities.deterministic) << info[i].name;
  }
}

namespace {
// Counts constructions so the metadata-caching contract is observable.
class CountingScheduler final : public Scheduler {
 public:
  explicit CountingScheduler(std::atomic<int>* constructions) {
    constructions->fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] ScheduleOutcome schedule(
      const Instance& instance) const override {
    return Schedule(instance.n());
  }
  [[nodiscard]] std::string name() const override { return "counting"; }
};
}  // namespace

TEST(Registry, MetadataIsCachedAtRegistrationTime) {
  // register_scheduler probes capabilities through one factory call at
  // registration; registered_scheduler_info() afterwards is a pure
  // metadata read -- it used to instantiate every scheduler per call.
  // NOTE: pollutes the global registry for the rest of the binary, like
  // the other registration tests here; registered once per process.
  static std::atomic<int> constructions{0};
  static const bool registered = [] {
    register_scheduler(
        "counting",
        [] { return std::make_unique<CountingScheduler>(&constructions); },
        "test-only: counts factory constructions");
    return true;
  }();
  (void)registered;
  EXPECT_EQ(constructions.load(), 1) << "exactly one registration-time probe";

  for (int call = 0; call < 3; ++call) {
    const auto info = registered_scheduler_info();
    const auto it = std::find_if(
        info.begin(), info.end(),
        [](const SchedulerInfo& i) { return i.name == "counting"; });
    ASSERT_NE(it, info.end());
    EXPECT_TRUE(it->capabilities.reservations);
  }
  EXPECT_EQ(constructions.load(), 1)
      << "registered_scheduler_info must not instantiate schedulers";

  // make_scheduler still constructs fresh instances.
  (void)make_scheduler("counting");
  EXPECT_EQ(constructions.load(), 2);
}

TEST(Registry, CapabilityMatrixMatchesTheDocumentedDomains) {
  for (const SchedulerInfo& info : registered_scheduler_info()) {
    const bool shelf =
        info.name == "shelf-ff" || info.name == "shelf-nf";
    EXPECT_EQ(info.capabilities.reservations, !shelf) << info.name;
    EXPECT_EQ(info.capabilities.release_times, !shelf) << info.name;
  }
}

TEST(Scheduler, SupportsAgreesWithScheduleAcrossTheRegistry) {
  for (const Instance& instance :
       {open_instance(), reserved_instance(), online_instance()}) {
    for (const auto& name : registered_schedulers()) {
      const auto scheduler = make_scheduler(name);
      const bool supported = scheduler->supports(instance);
      const ScheduleOutcome outcome = scheduler->schedule(instance);
      EXPECT_EQ(outcome.ok(), supported) << name;
      if (!supported) {
        const auto violation = scheduler->out_of_domain(instance);
        ASSERT_TRUE(violation.has_value()) << name;
        EXPECT_EQ(violation->reason, outcome.error().reason) << name;
      }
    }
  }
}

TEST(Portfolio, OutOfDomainExtraMembersAreSkippedUpFront) {
  // A shelf member cannot take a reserved instance; the portfolio filters
  // it via supports() instead of catching exceptions, so the result equals
  // the plain LSRC-family portfolio's.
  const Instance instance = reserved_instance();
  const Schedule plain =
      PortfolioScheduler(2, 1).schedule(instance).value();
  const Schedule with_shelf =
      PortfolioScheduler(2, 1, {"shelf-ff"}).schedule(instance).value();
  EXPECT_EQ(plain, with_shelf);
}

TEST(Portfolio, InDomainExtraMembersCompete) {
  // On an open offline instance the shelf member participates; the
  // portfolio can only improve (or match) by considering more candidates.
  const Instance instance = open_instance();
  const Time plain =
      PortfolioScheduler(2, 1).schedule(instance).value().makespan(instance);
  const Schedule mixed =
      PortfolioScheduler(2, 1, {"shelf-ff", "shelf-nf"})
          .schedule(instance)
          .value();
  EXPECT_TRUE(mixed.validate(instance).ok);
  EXPECT_LE(mixed.makespan(instance), plain);
}

TEST(OnlineBatch, InheritsBaseCapabilities) {
  const OnlineBatchScheduler wrapper(make_scheduler("lsrc"));
  const Capabilities caps = wrapper.capabilities();
  EXPECT_TRUE(caps.release_times);
  EXPECT_TRUE(caps.reservations);
}

TEST(OnlineBatch, RejectsOfflineOnlyBaseAtConstruction) {
  // A base that cannot take release times cannot schedule epoch-pinned
  // batches; surfacing that at wrap time beats failing mid-campaign.
  EXPECT_THROW(OnlineBatchScheduler(make_scheduler("shelf-ff")),
               std::invalid_argument);
}

}  // namespace
}  // namespace resched
