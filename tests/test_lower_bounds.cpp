#include "bounds/lower_bounds.hpp"

#include <gtest/gtest.h>

#include "algorithms/lsrc.hpp"
#include "exact/bnb.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

TEST(LowerBounds, EmptyInstanceIsZero) {
  const Instance instance(4, {});
  EXPECT_EQ(makespan_lower_bound(instance), 0);
}

TEST(LowerBounds, JobBoundIsPmaxWithoutReservations) {
  const Instance instance(4, {Job{0, 1, 7, 0, ""}, Job{1, 2, 3, 0, ""}});
  EXPECT_EQ(job_lower_bound(instance), 7);
}

TEST(LowerBounds, JobBoundSeesReservationDelays) {
  // Full-machine reservation on [0, 10): no job can finish before 10 + p.
  const Instance instance(2, {Job{0, 2, 3, 0, ""}},
                          {Reservation{0, 2, 10, 0, ""}});
  EXPECT_EQ(job_lower_bound(instance), 13);
}

TEST(LowerBounds, JobBoundIncludesRelease) {
  const Instance instance(2, {Job{0, 1, 3, 5, ""}});
  EXPECT_EQ(job_lower_bound(instance), 8);
}

TEST(LowerBounds, AreaBoundWithoutReservations) {
  // Work 14 on m = 4: ceil(14/4) = 4.
  const Instance instance(4, {Job{0, 2, 3, 0, ""}, Job{1, 4, 2, 0, ""}});
  EXPECT_EQ(area_lower_bound(instance), 4);
}

TEST(LowerBounds, AreaBoundAccountsForReservedArea) {
  // m = 2, work = 8. Reservation removes 1 machine on [0, 4): free area
  // reaches 8 at t = 6.
  const Instance instance(
      2, {Job{0, 1, 8, 0, ""}}, {Reservation{0, 1, 4, 0, ""}});
  EXPECT_EQ(area_lower_bound(instance), 6);
}

TEST(LowerBounds, ReleaseAreaBoundTightensLateWork) {
  // Two unit-area jobs released at 10 on m = 1: everything before 10 is
  // irrelevant; bound = 12.
  const Instance instance(1, {Job{0, 1, 1, 10, ""}, Job{1, 1, 1, 10, ""}});
  EXPECT_EQ(release_area_lower_bound(instance), 12);
  EXPECT_EQ(makespan_lower_bound(instance), 12);
}

TEST(LowerBounds, CombinedIsMaxOfParts) {
  const Instance instance(
      2, {Job{0, 1, 8, 0, ""}, Job{1, 2, 1, 0, ""}},
      {Reservation{0, 1, 4, 0, ""}});
  const Time combined = makespan_lower_bound(instance);
  EXPECT_GE(combined, job_lower_bound(instance));
  EXPECT_GE(combined, area_lower_bound(instance));
  EXPECT_GE(combined, release_area_lower_bound(instance));
}

TEST(LowerBounds, RatioHelper) {
  EXPECT_EQ(makespan_ratio(31, 6), Rational(31, 6));
  EXPECT_THROW((void)makespan_ratio(1, 0), std::invalid_argument);
}

// Soundness: the certified bound never exceeds the exact optimum computed by
// branch and bound (small random instances, with and without reservations).
class LowerBoundSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LowerBoundSoundness, NeverExceedsExactOptimum) {
  WorkloadConfig config;
  config.n = 6;
  config.m = 4;
  config.p_max = 8;
  const Instance base = random_workload(config, GetParam());
  const Instance with_resa(base.m(), base.jobs(),
                           {Reservation{0, 2, 5, 3, ""}});
  for (const Instance& instance : {base, with_resa}) {
    const Time lb = makespan_lower_bound(instance);
    const Time opt = optimal_makespan(instance);
    EXPECT_LE(lb, opt);
    EXPECT_GE(lb, 1);  // non-empty job set
    // And the bound is not absurdly loose on these tiny instances.
    EXPECT_GE(2 * lb, opt);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerBoundSoundness,
                         ::testing::Values(61, 62, 63, 64, 65, 66, 67, 68));

}  // namespace
}  // namespace resched
