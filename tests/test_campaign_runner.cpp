// CampaignRunner: determinism across thread counts, domain handling, and
// the validation oracle.
//
// The contract under test (sim/campaign.hpp): the aggregated result is a
// pure function of (generator, config.seed, config.instances,
// config.schedulers) -- the thread count may only change wall-clock, never a
// metric. Per-index seed derivation plus single-threaded fixed-order
// aggregation make the numbers bit-identical, so the comparisons below are
// exact, not approximate.
#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/step_profile.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

Instance sweep_instance(std::uint64_t seed, bool reserved) {
  WorkloadConfig config;
  config.n = 40;
  config.m = 32;
  config.alpha = Rational(1, 2);
  Instance instance = random_workload(config, seed);
  if (!reserved) return instance;
  AlphaReservationConfig resa;
  resa.alpha = Rational(1, 2);
  resa.count = 6;
  resa.horizon = 400;
  resa.max_duration = 60;
  return with_alpha_restricted_reservations(instance, resa,
                                            seed ^ 0x9e3779b97f4a7c15ull);
}

void ExpectBitIdentical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.instances, b.instances);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const CampaignCell& x = a.cells[i];
    const CampaignCell& y = b.cells[i];
    EXPECT_EQ(x.scheduler, y.scheduler);
    EXPECT_EQ(x.scheduled, y.scheduled);
    EXPECT_EQ(x.skipped, y.skipped);
    // Fixed-order aggregation makes these bit-identical doubles.
    EXPECT_EQ(x.makespan.mean(), y.makespan.mean());
    EXPECT_EQ(x.makespan.max(), y.makespan.max());
    EXPECT_EQ(x.makespan.stddev(), y.makespan.stddev());
    EXPECT_EQ(x.utilization.mean(), y.utilization.mean());
    EXPECT_EQ(x.mean_wait.mean(), y.mean_wait.mean());
    EXPECT_EQ(x.max_wait.max(), y.max_wait.max());
    EXPECT_EQ(x.mean_bounded_slowdown.mean(), y.mean_bounded_slowdown.mean());
  }
  // The timing-free table is the user-facing determinism artifact.
  EXPECT_EQ(a.to_table(false).to_string(), b.to_table(false).to_string());
}

TEST(CampaignRunner, SameSeedAnyThreadCountSameAggregatedMetrics) {
  CampaignConfig config;
  config.instances = 10;
  config.seed = 31337;
  config.schedulers = {"lsrc", "conservative", "easy", "fcfs"};
  const InstanceGenerator generator = [](std::size_t, std::uint64_t seed) {
    return sweep_instance(seed, true);
  };

  config.threads = 1;
  const CampaignResult baseline = run_campaign(generator, config);
  EXPECT_EQ(baseline.cells.size(), 4u);
  EXPECT_EQ(baseline.cells.front().scheduled, 10u);
  EXPECT_GT(baseline.cells.front().makespan.mean(), 0.0);

  for (const std::size_t threads : {2u, 3u, 8u, 16u}) {
    config.threads = threads;
    const CampaignResult run = run_campaign(generator, config);
    ASSERT_NO_FATAL_FAILURE(ExpectBitIdentical(baseline, run))
        << "threads=" << threads;
  }

  // And a different seed genuinely changes the data (the test has teeth).
  config.seed = 31338;
  config.threads = 4;
  const CampaignResult other = run_campaign(generator, config);
  EXPECT_NE(baseline.cells.front().makespan.mean(),
            other.cells.front().makespan.mean());
}

TEST(CampaignRunner, OutOfDomainSchedulersAreCountedAsSkipped) {
  CampaignConfig config;
  config.instances = 4;
  config.seed = 5;
  config.threads = 2;
  // Shelf packers reject instances with reservations.
  config.schedulers = {"shelf-ff", "lsrc"};
  const InstanceGenerator generator = [](std::size_t, std::uint64_t seed) {
    return sweep_instance(seed, true);
  };
  const CampaignResult result = run_campaign(generator, config);
  EXPECT_EQ(result.cells[0].scheduler, "shelf-ff");
  EXPECT_EQ(result.cells[0].scheduled, 0u);
  EXPECT_EQ(result.cells[0].skipped, 4u);
  // The skip is typed: every rejection names the reservations capability.
  EXPECT_EQ(result.cells[0].skipped_by_reason[static_cast<std::size_t>(
                DomainReason::kReservations)],
            4u);
  EXPECT_EQ(result.cells[0].skip_reasons(), "reservations=4");
  EXPECT_EQ(result.cells[1].scheduled, 4u);
  EXPECT_EQ(result.cells[1].skipped, 0u);
  EXPECT_EQ(result.cells[1].skip_reasons(), "");

  // On reservation-free instances the shelf packers participate.
  const InstanceGenerator open_generator =
      [](std::size_t, std::uint64_t seed) {
        return sweep_instance(seed, false);
      };
  const CampaignResult open_result = run_campaign(open_generator, config);
  EXPECT_EQ(open_result.cells[0].scheduled, 4u);
}

TEST(CampaignRunner, SharedInstancesMatchRegeneratedBitForBit) {
  // share_instances generates each instance once -- on first touch, under
  // a per-instance std::call_once that overlaps generation with the task
  // phase (no pregeneration barrier) -- and every scheduler task reads it
  // concurrently; the aggregated result must be bit-identical to the
  // regenerate mode for every thread count, and the generator must run
  // exactly once per index regardless of how many tasks race to it.
  CampaignConfig config;
  config.instances = 8;
  config.seed = 777;
  config.schedulers = {"lsrc", "conservative", "easy", "fcfs", "shelf-ff"};
  std::array<std::atomic<int>, 8> generated{};
  const InstanceGenerator generator = [&generated](std::size_t index,
                                                   std::uint64_t seed) {
    generated[index].fetch_add(1, std::memory_order_relaxed);
    return sweep_instance(seed, true);
  };

  config.share_instances = false;
  config.threads = 1;
  const CampaignResult baseline = run_campaign(generator, config);

  config.share_instances = true;
  for (const std::size_t threads : {1u, 2u, 8u, 16u}) {
    for (auto& count : generated) count.store(0, std::memory_order_relaxed);
    config.threads = threads;
    const CampaignResult shared = run_campaign(generator, config);
    ASSERT_NO_FATAL_FAILURE(ExpectBitIdentical(baseline, shared))
        << "share_instances threads=" << threads;
    for (std::size_t i = 0; i < generated.size(); ++i)
      EXPECT_EQ(generated[i].load(), 1)
          << "instance " << i << " generated more than once (threads="
          << threads << ")";
  }
}

TEST(CampaignRunner, SharedModeGeneratorExceptionsStillAbortTheCampaign) {
  // call_once's turns semantics must not swallow or double-run a throwing
  // generator: the failure propagates and aborts, same as regenerate mode.
  CampaignConfig config;
  config.instances = 6;
  config.threads = 3;
  config.share_instances = true;
  config.schedulers = {"fcfs"};
  const InstanceGenerator generator = [](std::size_t index, std::uint64_t) {
    if (index == 3) throw std::runtime_error("generator failure");
    return sweep_instance(index + 1, false);
  };
  EXPECT_THROW((void)run_campaign(generator, config), std::runtime_error);
}

namespace {
// A scheduler that trips a precondition three layers down (an empty window
// handed to StepProfile::min_in) -- exactly the failure mode the old
// catch(invalid_argument) skip handling used to misread as out-of-domain.
class BrokenPreconditionScheduler final : public Scheduler {
 public:
  [[nodiscard]] ScheduleOutcome schedule(
      const Instance& instance) const override {
    StepProfile profile(static_cast<std::int64_t>(instance.m()));
    (void)profile.min_in(5, 5);  // RESCHED_REQUIRE(from < to) fails
    return Schedule(instance.n());
  }
  [[nodiscard]] std::string name() const override {
    return "broken-precondition";
  }
};
}  // namespace

TEST(CampaignRunner, PreconditionViolationInsideSchedulerAbortsTheCampaign) {
  // Once per process (registration is not idempotent, and --gtest_repeat
  // would otherwise re-register). NOTE: this pollutes the global registry
  // for the rest of the binary -- every campaign test here must pass an
  // explicit scheduler list, never rely on the "empty = all" default.
  static const bool registered = [] {
    register_scheduler(
        "broken-precondition",
        [] { return std::make_unique<BrokenPreconditionScheduler>(); },
        "test-only: trips a profile precondition deep in the stack");
    return true;
  }();
  (void)registered;
  CampaignConfig config;
  config.instances = 3;
  config.threads = 2;
  config.schedulers = {"fcfs", "broken-precondition"};
  const InstanceGenerator generator = [](std::size_t, std::uint64_t seed) {
    return sweep_instance(seed, false);
  };
  // Not a skip: the campaign must abort with the underlying error.
  EXPECT_THROW((void)run_campaign(generator, config), std::invalid_argument);
}

TEST(CampaignRunner, UnknownSchedulerThrowsBeforeAnyWork) {
  CampaignConfig config;
  config.instances = 2;
  config.schedulers = {"no-such-algorithm"};
  const InstanceGenerator generator = [](std::size_t, std::uint64_t seed) {
    return sweep_instance(seed, false);
  };
  EXPECT_THROW((void)run_campaign(generator, config), std::invalid_argument);
}

TEST(CampaignRunner, GeneratorExceptionsPropagateToTheCaller) {
  CampaignConfig config;
  config.instances = 6;
  config.threads = 3;
  config.schedulers = {"fcfs"};
  const InstanceGenerator generator = [](std::size_t index, std::uint64_t) {
    if (index == 3) throw std::runtime_error("generator failure");
    return sweep_instance(index + 1, false);
  };
  EXPECT_THROW((void)run_campaign(generator, config), std::runtime_error);
}

TEST(CampaignRunner, EmptyCampaignProducesEmptyCells) {
  CampaignConfig config;
  config.instances = 0;
  config.schedulers = {"fcfs"};
  const InstanceGenerator generator = [](std::size_t, std::uint64_t seed) {
    return sweep_instance(seed, false);
  };
  const CampaignResult result = run_campaign(generator, config);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].scheduled, 0u);
  EXPECT_EQ(result.cells[0].skipped, 0u);
  EXPECT_EQ(result.to_table().rows(), 1u);
}

}  // namespace
}  // namespace resched
