#include "core/schedule.hpp"

#include <gtest/gtest.h>

namespace resched {
namespace {

Instance two_job_instance() {
  return Instance(3, {Job{0, 2, 4, 0, ""}, Job{1, 2, 2, 0, ""}});
}

TEST(Schedule, StartsUnscheduled) {
  const Schedule schedule(3);
  EXPECT_EQ(schedule.size(), 3u);
  EXPECT_FALSE(schedule.is_scheduled(0));
  EXPECT_FALSE(schedule.all_scheduled());
}

TEST(Schedule, SetAndQueryStart) {
  Schedule schedule(2);
  schedule.set_start(0, 5);
  EXPECT_TRUE(schedule.is_scheduled(0));
  EXPECT_EQ(schedule.start(0), 5);
  EXPECT_THROW((void)schedule.start(1), std::invalid_argument);
  EXPECT_THROW(schedule.set_start(2, 0), std::invalid_argument);
  EXPECT_THROW(schedule.set_start(0, -1), std::invalid_argument);
}

TEST(Schedule, MakespanAndCompletion) {
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.set_start(0, 0);  // ends 4
  schedule.set_start(1, 4);  // ends 6
  EXPECT_EQ(schedule.completion(instance, 0), 4);
  EXPECT_EQ(schedule.completion(instance, 1), 6);
  EXPECT_EQ(schedule.makespan(instance), 6);
}

TEST(Schedule, MakespanIgnoresReservations) {
  // A reservation ending later than every job does not extend C_max.
  const Instance instance(3, {Job{0, 1, 2, 0, ""}},
                          {Reservation{0, 1, 50, 10, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 0);
  EXPECT_EQ(schedule.makespan(instance), 2);
}

TEST(Schedule, UsageProfile) {
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 1);
  const StepProfile usage = schedule.usage_profile(instance);
  EXPECT_EQ(usage.value_at(0), 2);
  EXPECT_EQ(usage.value_at(1), 4);  // both running on [1,3)
  EXPECT_EQ(usage.value_at(3), 2);
  EXPECT_EQ(usage.value_at(4), 0);
}

TEST(Schedule, ValidateAcceptsFeasible) {
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 4);
  EXPECT_TRUE(schedule.validate(instance).ok);
}

TEST(Schedule, ValidateRejectsOverload) {
  const Instance instance = two_job_instance();  // m = 3, both jobs q = 2
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 0);  // 4 > 3 processors on [0,2)
  const ValidationResult result = schedule.validate(instance);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("capacity exceeded"), std::string::npos);
}

TEST(Schedule, ValidateRejectsReservationConflict) {
  const Instance instance(3, {Job{0, 2, 4, 0, ""}},
                          {Reservation{0, 2, 4, 2, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 0);  // runs [0,4) but [2,4) has only 1 free
  EXPECT_FALSE(schedule.validate(instance).ok);
}

TEST(Schedule, ValidateRejectsUnscheduled) {
  const Instance instance = two_job_instance();
  Schedule schedule(2);
  schedule.set_start(0, 0);
  const ValidationResult result = schedule.validate(instance);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("not scheduled"), std::string::npos);
}

TEST(Schedule, ValidateRejectsEarlyStart) {
  const Instance instance(2, {Job{0, 1, 1, 5, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 3);  // before release 5
  EXPECT_FALSE(schedule.validate(instance).ok);
}

TEST(Schedule, ValidateRejectsSizeMismatch) {
  const Instance instance = two_job_instance();
  const Schedule schedule(1);
  EXPECT_FALSE(schedule.validate(instance).ok);
}

TEST(Schedule, IdleAreaZeroWhenPacked) {
  // Two q=2 jobs back to back on m=2: no idle area.
  const Instance instance(2, {Job{0, 2, 3, 0, ""}, Job{1, 2, 2, 0, ""}});
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 3);
  EXPECT_EQ(schedule.idle_area(instance), 0);
  EXPECT_DOUBLE_EQ(schedule.utilization(instance), 1.0);
}

TEST(Schedule, IdleAreaCountsHoles) {
  const Instance instance(2, {Job{0, 1, 4, 0, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 0);
  // Available 2*4 = 8, work 4 -> idle 4, utilization 0.5.
  EXPECT_EQ(schedule.idle_area(instance), 4);
  EXPECT_DOUBLE_EQ(schedule.utilization(instance), 0.5);
}

TEST(Schedule, IdleAreaExcludesReservedArea) {
  // Reservation blocks 1 machine over the whole horizon [0,4): available
  // area is (2-1)*4 = 4 = work -> idle 0.
  const Instance instance(2, {Job{0, 1, 4, 0, ""}},
                          {Reservation{0, 1, 4, 0, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 0);
  EXPECT_EQ(schedule.idle_area(instance), 0);
}

TEST(Schedule, EqualityIsStructural) {
  Schedule a(2);
  Schedule b(2);
  EXPECT_EQ(a, b);
  a.set_start(0, 1);
  EXPECT_NE(a, b);
  b.set_start(0, 1);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace resched
