#include "sim/latency_recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/prng.hpp"
#include "util/stats.hpp"

namespace resched {
namespace {

TEST(LatencyRecorder, EmptyDefaults) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.mean(), 0.0);
  EXPECT_THROW((void)rec.min(), std::invalid_argument);
  EXPECT_THROW((void)rec.percentile(0.5), std::invalid_argument);
}

TEST(LatencyRecorder, SmallValuesAreExact) {
  // Values below 2^kSubBits land in width-1 buckets: every quantile of a
  // small-valued stream is exact, not just bounded-error.
  LatencyRecorder rec;
  for (std::int64_t v = 0; v < 64; ++v) rec.record(v);
  EXPECT_EQ(rec.count(), 64u);
  EXPECT_EQ(rec.min(), 0);
  EXPECT_EQ(rec.max(), 63);
  EXPECT_EQ(rec.percentile(0.0), 0);
  EXPECT_EQ(rec.percentile(0.5), 31);  // closest rank: ceil(0.5*64) = 32nd
  EXPECT_EQ(rec.percentile(1.0), 63);
}

TEST(LatencyRecorder, NegativeClampsToZero) {
  LatencyRecorder rec;
  rec.record(-17);
  EXPECT_EQ(rec.min(), 0);
  EXPECT_EQ(rec.percentile(0.5), 0);
}

TEST(LatencyRecorder, BoundedRelativeError) {
  // Log-bucketing guarantee: every reported quantile is within
  // 2^-(kSubBits+1) of the true closest-rank sample.
  Prng prng(3);
  std::vector<std::int64_t> values;
  LatencyRecorder rec;
  for (int i = 0; i < 5000; ++i) {
    // Heavy-tailed: spread over ~9 decades like real latency data.
    const std::int64_t v = prng.log_uniform_int(1, 1'000'000'000);
    values.push_back(v);
    rec.record(v);
  }
  std::sort(values.begin(), values.end());
  const double tolerance =
      1.0 / static_cast<double>(std::int64_t{1}
                                << (LatencyRecorder::kSubBits + 1));
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double truth = static_cast<double>(values[rank - 1]);
    const double reported = static_cast<double>(rec.percentile(q));
    EXPECT_NEAR(reported, truth, truth * tolerance)
        << "q = " << q;
  }
}

TEST(LatencyRecorder, PercentilesMatchRepeatedSingleQueries) {
  Prng prng(4);
  LatencyRecorder rec;
  for (int i = 0; i < 1000; ++i) rec.record(prng.uniform_int(0, 100000));
  const double qs[] = {0.999, 0.5, 0.0, 0.99, 1.0};  // deliberately unsorted
  const std::vector<std::int64_t> batch = rec.percentiles(qs);
  ASSERT_EQ(batch.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(batch[i], rec.percentile(qs[i])) << "q = " << qs[i];
  // Monotone in q once re-sorted.
  EXPECT_LE(batch[2], batch[1]);
  EXPECT_LE(batch[1], batch[3]);
  EXPECT_LE(batch[3], batch[0]);
  EXPECT_LE(batch[0], batch[4]);
}

TEST(LatencyRecorder, MergeMatchesCombinedStream) {
  Prng prng(5);
  LatencyRecorder combined;
  LatencyRecorder left;
  LatencyRecorder right;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = prng.log_uniform_int(1, 10'000'000);
    combined.record(v);
    (i % 3 == 0 ? left : right).record(v);
  }
  left.merge(right);
  EXPECT_EQ(left, combined);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_EQ(left.min(), combined.min());
  EXPECT_EQ(left.max(), combined.max());
  EXPECT_DOUBLE_EQ(left.mean(), combined.mean());
  for (const double q : {0.5, 0.99, 0.999})
    EXPECT_EQ(left.percentile(q), combined.percentile(q));
}

TEST(LatencyRecorder, MergeWithEmptyIsIdentity) {
  LatencyRecorder rec;
  rec.record(42);
  LatencyRecorder empty;
  rec.merge(empty);
  EXPECT_EQ(rec.count(), 1u);
  EXPECT_EQ(rec.percentile(1.0), 42);
  empty.merge(rec);
  EXPECT_EQ(empty, rec);
}

TEST(LatencyRecorder, MeanIsExactNotBucketed) {
  LatencyRecorder rec;
  rec.record(1'000'000'007);  // lands mid-bucket
  rec.record(3);
  EXPECT_DOUBLE_EQ(rec.mean(), (1'000'000'007.0 + 3.0) / 2.0);
  EXPECT_EQ(rec.max(), 1'000'000'007);
}

TEST(LatencyRecorder, ExtremeValuesDoNotOverflow) {
  LatencyRecorder rec;
  rec.record(std::numeric_limits<std::int64_t>::max());
  rec.record(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(rec.count(), 2u);
  // Clamped into [min, max], so the representative stays exact here.
  EXPECT_EQ(rec.percentile(0.5), std::numeric_limits<std::int64_t>::max());
  EXPECT_GT(rec.mean(), 0.0);
}

TEST(LatencyRecorder, ResetClears) {
  LatencyRecorder rec;
  rec.record(5);
  rec.reset();
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec, LatencyRecorder{});
}

TEST(LatencyRecorder, AgreesWithSortBasedPercentileOnUniformData) {
  // Cross-check against util/stats percentiles() (sort-based ground truth)
  // within the bucket resolution.
  Prng prng(6);
  LatencyRecorder rec;
  std::vector<double> values;
  for (int i = 0; i < 4000; ++i) {
    const std::int64_t v = prng.uniform_int(1000, 2000);
    rec.record(v);
    values.push_back(static_cast<double>(v));
  }
  const double qs[] = {0.5, 0.99};
  const std::vector<double> truth = percentiles(values, qs);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(static_cast<double>(rec.percentiles(qs)[i]), truth[i],
                truth[i] / 64.0);
}

}  // namespace
}  // namespace resched
