// Differential / property fuzz suite for StepProfile.
//
// Drives random operation sequences against a naive dense-array reference
// model over a bounded horizon, and checks the canonical-form invariants
// (first breakpoint at 0, strictly increasing starts, adjacent values
// distinct) after every mutation. Directed cases cover the overflow edges
// near kTimeInfinity that random draws cannot reach.
#include "core/step_profile.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "util/prng.hpp"

namespace resched {
namespace {

// All fuzzed breakpoints live in [0, kHorizon]; values for t >= kHorizon are
// tracked separately as the tail.
constexpr Time kHorizon = 96;

// Naive O(horizon) reference: one value per integer tick plus an unbounded
// tail. Deliberately dumb -- every query is a linear scan.
class DenseRef {
 public:
  explicit DenseRef(std::int64_t initial) : ticks_(kHorizon, initial), tail_(initial) {}

  void add(Time from, Time to, std::int64_t delta) {
    if (from >= to) return;
    for (Time t = from; t < std::min<Time>(to, kHorizon); ++t)
      ticks_[static_cast<std::size_t>(t)] += delta;
    if (to >= kTimeInfinity) tail_ += delta;
  }

  [[nodiscard]] std::int64_t value_at(Time t) const {
    return t < kHorizon ? ticks_[static_cast<std::size_t>(t)] : tail_;
  }

  [[nodiscard]] std::int64_t min_in(Time from, Time to) const {
    std::int64_t result = value_at(from);
    for (Time t = from; t < std::min<Time>(to, kHorizon); ++t)
      result = std::min(result, value_at(t));
    if (to > kHorizon) result = std::min(result, tail_);
    return result;
  }

  [[nodiscard]] std::int64_t max_in(Time from, Time to) const {
    std::int64_t result = value_at(from);
    for (Time t = from; t < std::min<Time>(to, kHorizon); ++t)
      result = std::max(result, value_at(t));
    if (to > kHorizon) result = std::max(result, tail_);
    return result;
  }

  [[nodiscard]] Time first_below(Time from, Time to,
                                 std::int64_t threshold) const {
    for (Time t = from; t < std::min<Time>(to, kHorizon); ++t)
      if (value_at(t) < threshold) return t;
    if (to > kHorizon && tail_ < threshold) return std::max<Time>(from, kHorizon);
    return kTimeInfinity;
  }

  [[nodiscard]] std::int64_t integral(Time from, Time to) const {
    std::int64_t area = 0;
    for (Time t = from; t < to; ++t) area += value_at(t);
    return area;
  }

  // Mirrors the documented contract: earliest T with integral(from, T) >=
  // target, where non-positive-rate stretches contribute nothing (capacity
  // profiles are non-negative; the suite only queries those).
  [[nodiscard]] Time time_to_accumulate(Time from, std::int64_t target) const {
    if (target == 0) return from;
    std::int64_t acc = 0;
    for (Time t = from; t < 4 * kHorizon; ++t) {
      acc += std::max<std::int64_t>(value_at(t), 0);
      if (acc >= target) return t + 1;
    }
    return kTimeInfinity;  // unreachable within any bounded probe horizon
  }

  [[nodiscard]] std::int64_t min_value() const { return min_in(0, kHorizon + 1); }

 private:
  std::vector<std::int64_t> ticks_;
  std::int64_t tail_;
};

void ExpectCanonical(const StepProfile& profile) {
  const auto segments = profile.segments();
  ASSERT_FALSE(segments.empty());
  EXPECT_EQ(segments.front().start, 0) << "first breakpoint must be time 0";
  EXPECT_EQ(segments.back().end, kTimeInfinity);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_LT(segments[i].start, segments[i].end);
    if (i + 1 < segments.size()) {
      EXPECT_EQ(segments[i].end, segments[i + 1].start);
      EXPECT_NE(segments[i].value, segments[i + 1].value)
          << "adjacent segments must have distinct values (canonical form)";
    }
  }
  EXPECT_EQ(profile.segment_count(), segments.size());
}

void ExpectMatchesReference(const StepProfile& profile, const DenseRef& ref) {
  for (Time t = 0; t <= kHorizon + 2; ++t)
    ASSERT_EQ(profile.value_at(t), ref.value_at(t)) << "at t=" << t;
}

TEST(PropStepProfile, RandomAddSequencesMatchDenseReference) {
  Prng prng(20260726);
  for (int round = 0; round < 150; ++round) {
    const std::int64_t initial = prng.uniform_int(-4, 8);
    StepProfile profile(initial);
    DenseRef ref(initial);
    for (int op = 0; op < 48; ++op) {
      const Time a = prng.uniform_int(0, kHorizon);
      const Time b = prng.chance(0.15)
                         ? kTimeInfinity
                         : prng.uniform_int(0, kHorizon);
      const std::int64_t delta = prng.uniform_int(-3, 3);
      profile.add(a, b, delta);
      ref.add(a, b, delta);
      ASSERT_NO_FATAL_FAILURE(ExpectCanonical(profile));

      // Interleave queries so they see every intermediate shape.
      const Time f = prng.uniform_int(0, kHorizon - 1);
      const Time w = prng.uniform_int(f + 1, kHorizon + 4);
      ASSERT_EQ(profile.min_in(f, w), ref.min_in(f, w));
      ASSERT_EQ(profile.max_in(f, w), ref.max_in(f, w));
      ASSERT_EQ(profile.integral(f, w), ref.integral(f, w));
      const std::int64_t threshold = prng.uniform_int(-4, 9);
      ASSERT_EQ(profile.first_below(f, w, threshold),
                ref.first_below(f, w, threshold));
    }
    ASSERT_NO_FATAL_FAILURE(ExpectMatchesReference(profile, ref));
  }
}

TEST(PropStepProfile, TimeToAccumulateMatchesDenseReferenceOnCapacityProfiles) {
  Prng prng(424242);
  for (int round = 0; round < 150; ++round) {
    StepProfile profile(prng.uniform_int(1, 6));
    DenseRef ref(profile.value_at(0));
    for (int op = 0; op < 32; ++op) {
      Time a = prng.uniform_int(0, kHorizon - 1);
      Time b = prng.uniform_int(0, kHorizon);
      if (a > b) std::swap(a, b);
      if (a == b) b = a + 1;
      // Keep the profile a valid capacity function (non-negative, positive
      // tail): only subtract what the window can afford.
      std::int64_t delta = prng.uniform_int(-3, 3);
      if (delta < 0) {
        const std::int64_t room = ref.min_in(a, b);
        delta = -std::min<std::int64_t>(-delta, std::max<std::int64_t>(room, 0));
      }
      profile.add(a, b, delta);
      ref.add(a, b, delta);

      const Time from = prng.uniform_int(0, kHorizon);
      const std::int64_t target = prng.uniform_int(0, 64);
      ASSERT_EQ(profile.time_to_accumulate(from, target),
                ref.time_to_accumulate(from, target))
          << "from=" << from << " target=" << target;
    }
  }
}

TEST(PropStepProfile, PlusMinusMatchDenseReferenceAndRoundTrip) {
  Prng prng(7);
  for (int round = 0; round < 60; ++round) {
    StepProfile a(prng.uniform_int(-3, 3));
    StepProfile b(prng.uniform_int(-3, 3));
    DenseRef ra(a.value_at(0));
    DenseRef rb(b.value_at(0));
    for (int op = 0; op < 24; ++op) {
      const Time lo = prng.uniform_int(0, kHorizon);
      const Time hi = prng.chance(0.2) ? kTimeInfinity : prng.uniform_int(0, kHorizon);
      const std::int64_t delta = prng.uniform_int(-2, 2);
      if (prng.chance(0.5)) {
        a.add(lo, hi, delta);
        ra.add(lo, hi, delta);
      } else {
        b.add(lo, hi, delta);
        rb.add(lo, hi, delta);
      }
    }
    const StepProfile sum = a.plus(b);
    const StepProfile diff = a.minus(b);
    ASSERT_NO_FATAL_FAILURE(ExpectCanonical(sum));
    ASSERT_NO_FATAL_FAILURE(ExpectCanonical(diff));
    for (Time t = 0; t <= kHorizon + 2; ++t) {
      ASSERT_EQ(sum.value_at(t), ra.value_at(t) + rb.value_at(t));
      ASSERT_EQ(diff.value_at(t), ra.value_at(t) - rb.value_at(t));
    }
    // (a + b) - b == a pointwise, and canonical form makes that operator==.
    ASSERT_EQ(sum.minus(b), a);
  }
}

TEST(PropStepProfile, EqualityIsPointwiseViaCanonicalForm) {
  // Two different construction orders of the same function compare equal.
  StepProfile lhs(2);
  lhs.add(3, 9, 4);
  lhs.add(5, 7, -1);
  StepProfile rhs(2);
  rhs.add(5, 7, -1);
  rhs.add(3, 9, 4);
  EXPECT_EQ(lhs, rhs);
  // Undoing an add coalesces back to a single segment.
  StepProfile undone(2);
  undone.add(10, 20, 5);
  undone.add(10, 20, -5);
  EXPECT_EQ(undone, StepProfile(2));
  EXPECT_EQ(undone.segment_count(), 1u);
}

// ---------------------------------------------------------------------------
// Directed overflow edges near kTimeInfinity.
// ---------------------------------------------------------------------------

TEST(PropStepProfile, TimeToAccumulateClampsInsteadOfOverflowingNearInfinity) {
  // needed = target with rate 1; cursor + needed would exceed INT64_MAX.
  const StepProfile ones(1);
  EXPECT_EQ(ones.time_to_accumulate(kTimeInfinity - 1,
                                    std::numeric_limits<std::int64_t>::max()),
            kTimeInfinity);
  // Exactly reaching the horizon is also "never".
  EXPECT_EQ(ones.time_to_accumulate(0, kTimeInfinity), kTimeInfinity);
  // Just below the horizon is still a finite answer.
  EXPECT_EQ(ones.time_to_accumulate(0, kTimeInfinity - 1), kTimeInfinity - 1);
}

TEST(PropStepProfile, TimeToAccumulateZeroRatePrefixThenPositiveTail) {
  StepProfile profile(0);
  profile.add(10, kTimeInfinity, 3);
  EXPECT_EQ(profile.time_to_accumulate(0, 7), 13);  // ceil(7/3) past t=10
  EXPECT_EQ(profile.time_to_accumulate(12, 1), 13);
  // All-zero profile never accumulates.
  EXPECT_EQ(StepProfile(0).time_to_accumulate(0, 1), kTimeInfinity);
}

TEST(PropStepProfile, IntegralOverflowIsCheckedNotSilent) {
  // kTimeInfinity is INT64_MAX / 4, so a rate of 5 over the full horizon
  // overflows while a rate of 2 still fits.
  const StepProfile two(2);
  EXPECT_THROW((void)StepProfile(5).integral(0, kTimeInfinity - 1),
               std::overflow_error);
  EXPECT_EQ(two.integral(0, kTimeInfinity - 1), 2 * (kTimeInfinity - 1));
  // A huge window of zeros is exact and fine.
  EXPECT_EQ(StepProfile(0).integral(0, kTimeInfinity - 1), 0);
  // One-tick windows near the horizon stay exact.
  EXPECT_EQ(two.integral(kTimeInfinity - 2, kTimeInfinity - 1), 2);
}

TEST(PropStepProfile, AddTreatsWindowsReachingInfinityAsUnbounded) {
  StepProfile profile(5);
  profile.add(100, kTimeInfinity, -5);
  EXPECT_EQ(profile.value_at(kTimeInfinity - 1), 0);
  EXPECT_EQ(profile.final_value(), 0);
  EXPECT_EQ(profile.segment_count(), 2u);
  // Breakpoints close to the horizon are representable.
  profile.add(kTimeInfinity - 2, kTimeInfinity, 7);
  EXPECT_EQ(profile.value_at(kTimeInfinity - 3), 0);
  EXPECT_EQ(profile.value_at(kTimeInfinity - 2), 7);
  EXPECT_EQ(profile.final_value(), 7);
}

TEST(PropStepProfile, AddOverflowInSegmentValuesThrows) {
  StepProfile profile(std::numeric_limits<std::int64_t>::max() - 1);
  EXPECT_THROW(profile.add(0, 10, 2), std::overflow_error);
}

}  // namespace
}  // namespace resched
