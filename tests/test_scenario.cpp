// Scenario DSL: model validation, compile semantics (ramp staircase,
// repeat, wait_to_cross), skyline decomposition, the .scn text format
// (round-trip, error positions), and the committed fixture pins that keep
// tests/data/*.scn byte-identical to the stock program builders.
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "algorithms/scheduler.hpp"
#include "generators/workload.hpp"
#include "scenario/scn_format.hpp"

namespace resched {
namespace {

[[nodiscard]] std::string fixture_path(const std::string& name) {
  return std::string(RESCHED_TEST_DATA_DIR) + "/" + name;
}

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// Model validation
// ---------------------------------------------------------------------------

TEST(Scenario, ValidateRejectsMalformedPrograms) {
  ScenarioProgram program;
  program.name = "ok";
  program.steps = {soak_at(4, 10)};
  EXPECT_NO_THROW(validate_program(program));

  ScenarioProgram unnamed = program;
  unnamed.name = "";
  EXPECT_THROW(validate_program(unnamed), std::invalid_argument);

  ScenarioProgram bad_name = program;
  bad_name.name = "has space";
  EXPECT_THROW(validate_program(bad_name), std::invalid_argument);

  ScenarioProgram bad_repeat = program;
  bad_repeat.repeat = 0;
  EXPECT_THROW(validate_program(bad_repeat), std::invalid_argument);

  ScenarioProgram zero_ramp = program;
  zero_ramp.steps = {ramp_to(8, 0)};
  EXPECT_THROW(validate_program(zero_ramp), std::invalid_argument);

  ScenarioProgram timed_jump = program;
  timed_jump.steps = {ScenarioStep{ScenarioStepKind::kJumpTo, 3, 5}};
  EXPECT_THROW(validate_program(timed_jump), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Compile semantics
// ---------------------------------------------------------------------------

TEST(Scenario, SoakAndJumpCompileToTheObviousStaircase) {
  ScenarioProgram program;
  program.name = "stair";
  program.initial = 12;
  program.steps = {soak_at(12, 20), jump_to(4), soak_at(4, 10), jump_to(12)};
  const CompiledScenario compiled = compile_scenario(program);
  EXPECT_EQ(compiled.horizon, 30);
  EXPECT_EQ(compiled.curve.value_at(0), 12);
  EXPECT_EQ(compiled.curve.value_at(19), 12);
  EXPECT_EQ(compiled.curve.value_at(20), 4);
  EXPECT_EQ(compiled.curve.value_at(29), 4);
  EXPECT_EQ(compiled.curve.value_at(30), 12);
  EXPECT_EQ(compiled.curve.final_value(), 12);
}

TEST(Scenario, RampIsTheExactIntegerStaircase) {
  // 0 -> 10 over 25 ticks: level(o) = floor(10 * o / 25).
  ScenarioProgram up;
  up.name = "up";
  up.initial = 0;
  up.steps = {ramp_to(10, 25)};
  const StepProfile curve = compile_scenario(up).curve;
  for (Time o = 0; o <= 25; ++o)
    EXPECT_EQ(curve.value_at(o), 10 * o / 25) << "offset " << o;
  // Starts at the old level, lands exactly on the target at t0 + d.
  EXPECT_EQ(curve.value_at(0), 0);
  EXPECT_EQ(curve.value_at(24), 9);
  EXPECT_EQ(curve.value_at(25), 10);
  EXPECT_EQ(curve.final_value(), 10);

  // Downward ramp mirrors it: 32 -> 24 over 120 (the daily_cycle shape).
  ScenarioProgram down;
  down.name = "down";
  down.initial = 32;
  down.steps = {ramp_to(24, 120)};
  const StepProfile fall = compile_scenario(down).curve;
  for (Time o = 0; o <= 120; ++o)
    EXPECT_EQ(fall.value_at(o), 32 - 8 * o / 120) << "offset " << o;
}

TEST(Scenario, RampToTheCurrentLevelOnlyAdvancesTime) {
  ScenarioProgram program;
  program.name = "flat";
  program.initial = 7;
  program.steps = {ramp_to(7, 50)};
  const CompiledScenario compiled = compile_scenario(program);
  EXPECT_EQ(compiled.horizon, 50);
  EXPECT_EQ(compiled.curve, StepProfile(7));
}

TEST(Scenario, RepeatConcatenatesRounds) {
  const ScenarioProgram program = flash_crowd_program(32);  // repeat 4
  const CompiledScenario compiled = compile_scenario(program);
  EXPECT_EQ(compiled.horizon, 4 * 250);
  for (int round = 0; round < 4; ++round) {
    const Time base = 250 * round;
    EXPECT_EQ(compiled.curve.value_at(base), 32);
    EXPECT_EQ(compiled.curve.value_at(base + 200), 8);
    EXPECT_EQ(compiled.curve.value_at(base + 249), 8);
  }
  EXPECT_EQ(compiled.curve.final_value(), 32);
}

TEST(Scenario, WaitToCrossAdvancesToTheCrossingInBothDirections) {
  // Reference: 0 until 100, then 50 until 300, then back to 0.
  StepProfile reference(0);
  reference.add(100, 300, 50);
  ScenarioProgram program;
  program.name = "sync";
  program.initial = 10;
  program.steps = {
      wait_to_cross(40),  // below 40 now -> first t with ref >= 40: t=100
      jump_to(5),
      wait_to_cross(40),  // at-or-above now -> first t with ref < 40: t=300
      jump_to(10),
  };
  const CompiledScenario compiled =
      compile_scenario(program, &reference);
  EXPECT_EQ(compiled.horizon, 300);
  EXPECT_EQ(compiled.curve.value_at(99), 10);
  EXPECT_EQ(compiled.curve.value_at(100), 5);
  EXPECT_EQ(compiled.curve.value_at(299), 5);
  EXPECT_EQ(compiled.curve.value_at(300), 10);
}

TEST(Scenario, WaitToCrossWithoutReferenceOrCrossingThrows) {
  ScenarioProgram program;
  program.name = "w";
  program.steps = {wait_to_cross(5)};
  EXPECT_THROW((void)compile_scenario(program), std::invalid_argument);
  const StepProfile flat(1);  // never reaches 5
  EXPECT_THROW((void)compile_scenario(program, &flat), std::invalid_argument);
}

TEST(Scenario, CompilationIsDeterministic) {
  for (const ScenarioProgram& program :
       {daily_availability_program(32), flash_crowd_program(32),
        daily_intensity_program(1440)}) {
    EXPECT_EQ(compile_scenario(program), compile_scenario(program));
  }
}

TEST(Scenario, DailyIntensityProgramMatchesGeneratorProfileBitForBit) {
  // The committed intensity program and the generator's built-in curve are
  // the same function -- the .scn file can drive daily_cycle_workload.
  for (const Time tpd : {24L, 100L, 1440L}) {
    EXPECT_EQ(compile_scenario(daily_intensity_program(tpd)).curve,
              daily_intensity_profile(tpd))
        << "ticks_per_day " << tpd;
  }
}

TEST(Scenario, MinProfileIsPointwiseMinimum) {
  StepProfile a(10);
  a.add(5, 15, -6);
  StepProfile b(8);
  b.add(10, 20, -3);
  const StepProfile lo = min_profile(a, b);
  for (Time t = 0; t <= 25; ++t)
    EXPECT_EQ(lo.value_at(t), std::min(a.value_at(t), b.value_at(t)))
        << "t=" << t;
}

// ---------------------------------------------------------------------------
// Skyline decomposition
// ---------------------------------------------------------------------------

TEST(Scenario, DecompositionRebuildsTheStaircaseExactly) {
  // Rises and partial falls force block splits in the skyline stack.
  StepProfile u(0);
  u.add(10, 50, 3);
  u.add(20, 40, 2);
  u.add(25, 30, 4);
  const std::vector<Reservation> rectangles = unavailability_to_reservations(u);
  StepProfile rebuilt(0);
  for (const Reservation& r : rectangles)
    rebuilt.add(r.start, r.start + r.p, r.q);
  EXPECT_EQ(rebuilt, u);
  // Dense ids, sorted by (start, p, q), named scn<i>.
  for (std::size_t i = 0; i < rectangles.size(); ++i) {
    EXPECT_EQ(rectangles[i].id, static_cast<ReservationId>(i));
    EXPECT_EQ(rectangles[i].name, "scn" + std::to_string(i));
    if (i > 0)
      EXPECT_LE(rectangles[i - 1].start, rectangles[i].start);
  }
}

TEST(Scenario, DecompositionRejectsNegativeAndUnboundedProfiles) {
  StepProfile dips(0);
  dips.add(5, 10, -1);
  EXPECT_THROW((void)unavailability_to_reservations(dips),
               std::invalid_argument);
  StepProfile open(0);
  open.add(5, kTimeInfinity, 2);  // never returns to 0
  EXPECT_THROW((void)unavailability_to_reservations(open),
               std::invalid_argument);
}

TEST(Scenario, ScenarioUnavailabilityIsMMinusCurveThenZero) {
  const CompiledScenario compiled = compile_scenario(maintenance_program(8));
  const StepProfile u = scenario_unavailability(compiled, 8);
  for (Time t = 0; t < compiled.horizon; ++t)
    ASSERT_EQ(u.value_at(t), 8 - compiled.curve.value_at(t)) << "t=" << t;
  EXPECT_EQ(u.value_at(compiled.horizon), 0);
  EXPECT_EQ(u.final_value(), 0);

  // Out-of-range curves are rejected: a 4-processor machine cannot host an
  // 8-processor availability program.
  EXPECT_THROW((void)scenario_unavailability(compiled, 4),
               std::invalid_argument);
}

TEST(Scenario, DemoDayFixtureCompilesToTheSingleDemoRectangle) {
  const ScenarioProgram program = load_scn(fixture_path("demo_day.scn"));
  const Instance instance =
      scenario_instance(12, {Job{0, 4, 18, 0, "cfd"}},
                        compile_scenario(program));
  ASSERT_EQ(instance.n_reservations(), 1u);
  const Reservation& demo = instance.reservations().front();
  EXPECT_EQ(demo.q, 8);
  EXPECT_EQ(demo.p, 10);
  EXPECT_EQ(demo.start, 20);
}

TEST(Scenario, ScenarioInstancesAreSchedulable) {
  const Instance instance = scenario_instance(
      16,
      {Job{0, 4, 18, 0, ""}, Job{1, 2, 30, 0, ""}, Job{2, 8, 6, 0, ""}},
      compile_scenario(daily_availability_program(16)));
  for (const char* name : {"fcfs", "conservative", "easy", "lsrc"}) {
    const Schedule schedule = make_scheduler(name)->schedule(instance).value();
    EXPECT_TRUE(schedule.validate(instance).ok) << name;
  }
}

// ---------------------------------------------------------------------------
// .scn format: round-trip, canonical form, error positions
// ---------------------------------------------------------------------------

TEST(ScnFormat, ParsesCommentsBlanksAndRepeat) {
  const ScenarioProgram program = parse_scn(
      "# availability for the demo\n"
      "\n"
      "scenario demo  # trailing comment\n"
      "initial 12\n"
      "repeat 2\n"
      "  soak_at 12 20\n"
      "  jump_to 4\n"
      "end\n");
  EXPECT_EQ(program.name, "demo");
  EXPECT_EQ(program.initial, 12);
  EXPECT_EQ(program.repeat, 2);
  ASSERT_EQ(program.steps.size(), 2u);
  EXPECT_EQ(program.steps[0], soak_at(12, 20));
  EXPECT_EQ(program.steps[1], jump_to(4));
}

TEST(ScnFormat, SerializeIsCanonicalAndRoundTrips) {
  const ScenarioProgram program = daily_availability_program(32);
  const std::string text = serialize_scn(program);
  EXPECT_EQ(parse_scn(text), program);
  // Canonical: serialize(parse(file)) reproduces the text byte for byte.
  EXPECT_EQ(serialize_scn(parse_scn(text)), text);
  // repeat 1 is omitted from the canonical form.
  EXPECT_EQ(serialize_scn(soak_program(8)).find("repeat"), std::string::npos);
}

struct ScnErrorCase {
  const char* text;
  std::size_t line;
  std::size_t column;
};

TEST(ScnFormat, ErrorsCarryTheOffendingPosition) {
  const ScnErrorCase cases[] = {
      // Bad integer: column of the literal.
      {"scenario s\ninitial x\nend\n", 2, 9},
      {"scenario s\n  soak_at 4 abc\nend\n", 2, 13},
      // Unknown directive at its own column (indented two spaces).
      {"scenario s\n  hover 3\nend\n", 2, 3},
      // Trailing token.
      {"scenario s\n  jump_to 3 9\nend\n", 2, 13},
      // Missing argument: column of the directive itself.
      {"scenario s\n  ramp_to 5\nend\n", 2, 3},
      // Duplicate / misplaced headers.
      {"scenario s\nscenario t\nend\n", 2, 1},
      {"scenario s\n  jump_to 1\ninitial 4\nend\n", 3, 1},
      // Content after end.
      {"scenario s\nend\njump_to 2\n", 3, 1},
      // Structural validation surfaces at the end line.
      {"scenario s\n  ramp_to 5 0\nend\n", 3, 1},
  };
  for (const ScnErrorCase& c : cases) {
    try {
      (void)parse_scn(c.text);
      FAIL() << "expected ScnParseError for: " << c.text;
    } catch (const ScnParseError& error) {
      EXPECT_EQ(error.line(), c.line) << c.text << " -> " << error.what();
      EXPECT_EQ(error.column(), c.column) << c.text << " -> " << error.what();
    }
  }
  // Missing pieces report past the last line.
  EXPECT_THROW((void)parse_scn("# nothing\n"), ScnParseError);
  EXPECT_THROW((void)parse_scn("scenario s\n  jump_to 1\n"), ScnParseError);
}

// ---------------------------------------------------------------------------
// Fixture pins: tests/data/*.scn are exactly the stock builders
// ---------------------------------------------------------------------------

TEST(ScnFormat, CommittedFixturesSerializeTheStockBuilders) {
  const ProcCount m = 32;
  const std::pair<const char*, ScenarioProgram> pins[] = {
      {"daily_cycle.scn", daily_availability_program(m)},
      {"maintenance.scn", maintenance_program(m)},
      {"brownout.scn", brownout_program(m)},
      {"flash_crowd.scn", flash_crowd_program(m)},
      {"ramp.scn", ramp_program(m)},
      {"soak.scn", soak_program(m)},
      {"daily_intensity.scn", daily_intensity_program(1440)},
  };
  for (const auto& [file, program] : pins) {
    EXPECT_EQ(read_file(fixture_path(file)), serialize_scn(program))
        << file << " drifted from its builder";
    EXPECT_EQ(load_scn(fixture_path(file)), program) << file;
  }
}

TEST(ScnFormat, DemoDayFixtureIsTheHandWrittenProgram) {
  ScenarioProgram expected;
  expected.name = "demo_day";
  expected.initial = 12;
  expected.steps = {soak_at(12, 20), jump_to(4), soak_at(4, 10), jump_to(12)};
  EXPECT_EQ(load_scn(fixture_path("demo_day.scn")), expected);
  // The committed file is already canonical.
  EXPECT_EQ(read_file(fixture_path("demo_day.scn")),
            serialize_scn(expected));
}

}  // namespace
}  // namespace resched
