#include "bounds/anomalies.hpp"

#include <gtest/gtest.h>

#include "algorithms/easy_bf.hpp"
#include "algorithms/fcfs.hpp"
#include "algorithms/lsrc.hpp"
#include "bounds/guarantees.hpp"
#include "bounds/lower_bounds.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

TEST(AnomalyPerturbations, WithoutJobReindexes) {
  const Instance instance(4, {Job{0, 1, 2, 0, "a"}, Job{1, 2, 3, 0, "b"},
                              Job{2, 3, 4, 0, "c"}});
  const Instance reduced = without_job(instance, 1);
  ASSERT_EQ(reduced.n(), 2u);
  EXPECT_EQ(reduced.job(0).name, "a");
  EXPECT_EQ(reduced.job(1).name, "c");
  EXPECT_EQ(reduced.job(1).id, 1);  // dense ids restored
}

TEST(AnomalyPerturbations, ShorterJobValidated) {
  const Instance instance(2, {Job{0, 1, 4, 0, ""}});
  EXPECT_EQ(with_shorter_job(instance, 0, 2).job(0).p, 2);
  EXPECT_THROW(with_shorter_job(instance, 0, 5), std::invalid_argument);
  EXPECT_THROW(with_shorter_job(instance, 0, 0), std::invalid_argument);
}

TEST(AnomalyPerturbations, ExtraMachine) {
  const Instance instance(3, {Job{0, 1, 1, 0, ""}});
  EXPECT_EQ(with_extra_machine(instance).m(), 4);
}

TEST(AnomalyScanner, EmptyInstanceCleans) {
  const AnomalyScan scan = find_anomalies(Instance(2, {}), LsrcScheduler());
  EXPECT_FALSE(scan.any());
}

TEST(AnomalyScanner, ReportsConsistentMakespans) {
  WorkloadConfig config;
  config.n = 15;
  config.m = 6;
  const Instance instance = random_workload(config, 5);
  const LsrcScheduler scheduler;
  const AnomalyScan scan = find_anomalies(instance, scheduler);
  EXPECT_EQ(scan.baseline,
            scheduler.schedule(instance).value().makespan(instance));
  for (const Anomaly& anomaly : scan.anomalies) {
    EXPECT_GT(anomaly.makespan_after, anomaly.makespan_before);
    EXPECT_EQ(anomaly.makespan_before, scan.baseline);
  }
}

// The headline finding: LSRC on INDEPENDENT rigid jobs exhibits Graham-style
// anomalies -- no precedence constraints needed, rigidity (q > 1) suffices.
// The hard-coded witness: removing job 1 frees processors so the wide-short
// job starts at t = 0, which lets the wide-long job start at t = 1, which
// delays the narrow 5-tick job to [3, 8): makespan 7 -> 8.
TEST(LsrcAnomaly, RemovalWitnessVerifiedStepByStep) {
  const Instance full = removal_anomaly_example();
  const LsrcScheduler lsrc;
  const Schedule before = lsrc.schedule(full).value();
  ASSERT_TRUE(before.validate(full).ok);
  EXPECT_EQ(before.makespan(full), 7);

  const Instance reduced = without_job(full, 1);
  const Schedule after = lsrc.schedule(reduced).value();
  ASSERT_TRUE(after.validate(reduced).ok);
  EXPECT_EQ(after.makespan(reduced), 8);

  // The cascade (reduced ids: 0=narrow3, 1=wide-short, 2=wide-long,
  // 3=long-tail).
  EXPECT_EQ(after.start(0), 0);
  EXPECT_EQ(after.start(1), 0);  // wide-short now fits at t = 0
  EXPECT_EQ(after.start(2), 1);  // wide-long slides in behind it
  EXPECT_EQ(after.start(3), 3);  // long-tail pushed from 0 to 3

  // And the scanner reports exactly this.
  const AnomalyScan scan = find_anomalies(full, lsrc);
  bool found = false;
  for (const Anomaly& anomaly : scan.anomalies)
    found |= anomaly.kind == AnomalyKind::kJobRemoval && anomaly.job == 1 &&
             anomaly.makespan_after == 8;
  EXPECT_TRUE(found);
}

// Anomalies exist but Theorem 2 caps them: any perturbed makespan is at
// most (2 - 1/m') times the unperturbed one, because "improvements" never
// raise the optimum and the perturbed run is itself a list schedule.
class LsrcAnomalyEnvelope : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LsrcAnomalyEnvelope, GrowthBoundedByGrahamFactor) {
  WorkloadConfig config;
  config.n = 18;
  config.m = 6;
  config.p_max = 15;
  const Instance instance = random_workload(config, GetParam());
  const AnomalyScan scan = find_anomalies(instance, LsrcScheduler());
  for (const Anomaly& anomaly : scan.anomalies) {
    const ProcCount m_after = anomaly.kind == AnomalyKind::kExtraMachine
                                  ? instance.m() + 1
                                  : instance.m();
    EXPECT_LE(makespan_ratio(anomaly.makespan_after,
                             anomaly.makespan_before),
              graham_bound(m_after))
        << to_string(anomaly.kind) << " job " << anomaly.job;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsrcAnomalyEnvelope,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

// Even when a scheduler misbehaves under perturbation, the perturbed run is
// still covered by its own instance's guarantee -- anomalies never escape
// the Theorem 2 envelope.
TEST(AnomalyEnvelope, PerturbedRunsStayWithinGuarantee) {
  WorkloadConfig config;
  config.n = 16;
  config.m = 5;
  const Instance instance = random_workload(config, 77);
  const LsrcScheduler scheduler;
  for (const Job& job : instance.jobs()) {
    const Instance reduced = without_job(instance, job.id);
    const Schedule schedule = scheduler.schedule(reduced).value();
    const Time lb = makespan_lower_bound(reduced);
    // Sound check: within (2 - 1/m) of the certified lower bound is a
    // sufficient condition; on these seeds it holds for every perturbation.
    EXPECT_LE(makespan_ratio(schedule.makespan(reduced), lb),
              graham_bound(reduced.m()) * Rational(2))
        << "perturbation removing job " << job.id;
  }
}

// FCFS is trivially anomaly-prone in the removal direction? Strict
// non-overtaking FCFS is monotone under removal on many instances; rather
// than assert either way, document the scanner on a known case: removing
// the head blocker of fcfs-like congestion strictly helps.
TEST(AnomalyScanner, FcfsRemovalOfBlockerHelps) {
  const Instance instance(2, {Job{0, 1, 10, 0, "runner"},
                              Job{1, 2, 1, 0, "blocker"},
                              Job{2, 1, 1, 0, "tail"}});
  const FcfsScheduler fcfs;
  const Time baseline = fcfs.schedule(instance).value().makespan(instance);
  const Instance reduced = without_job(instance, 1);
  const Time after = fcfs.schedule(reduced).value().makespan(reduced);
  EXPECT_LT(after, baseline);
}

}  // namespace
}  // namespace resched
