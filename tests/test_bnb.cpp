#include "exact/bnb.hpp"

#include <gtest/gtest.h>

#include "algorithms/lsrc.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

TEST(Bnb, EmptyInstance) {
  const BnbResult result = branch_and_bound(Instance(4, {}));
  EXPECT_TRUE(result.proven);
  EXPECT_EQ(result.optimal, 0);
}

TEST(Bnb, SingleJob) {
  const Instance instance(4, {Job{0, 2, 7, 0, ""}});
  EXPECT_EQ(optimal_makespan(instance), 7);
}

TEST(Bnb, PartitionLikeInstance) {
  // Two machines, sequential durations {3,3,2,2,2}: optimum splits 3+3 / 2+2+2
  // for makespan 6.
  const Instance instance(2, {Job{0, 1, 3, 0, ""}, Job{1, 1, 3, 0, ""},
                              Job{2, 1, 2, 0, ""}, Job{3, 1, 2, 0, ""},
                              Job{4, 1, 2, 0, ""}});
  EXPECT_EQ(optimal_makespan(instance), 6);
}

TEST(Bnb, RigidPackingNeedsInterleaving) {
  // m=4: jobs (q=3,p=2), (q=1,p=2), (q=2,p=2), (q=2,p=2). Optimum 4 packs
  // (3,2)||(1,2) on [0,2) and the two (2,2) jobs on [2,4): the area bound
  // 16/4 = 4 is met with zero idle, so 4 is optimal.
  const Instance instance(4, {Job{0, 3, 2, 0, ""}, Job{1, 1, 2, 0, ""},
                              Job{2, 2, 2, 0, ""}, Job{3, 2, 2, 0, ""}});
  EXPECT_EQ(optimal_makespan(instance), 4);
}

TEST(Bnb, RespectsReservations) {
  // m=2, full reservation [2,4): a (q=2,p=2) job fits [0,2); a second one
  // must wait -> 6.
  const Instance instance(2, {Job{0, 2, 2, 0, ""}, Job{1, 2, 2, 0, ""}},
                          {Reservation{0, 2, 2, 2, ""}});
  const BnbResult result = branch_and_bound(instance);
  EXPECT_TRUE(result.proven);
  EXPECT_EQ(result.optimal, 6);
  EXPECT_TRUE(result.schedule.validate(instance).ok);
}

TEST(Bnb, GapInstanceForcesExactPacking) {
  // m=1, jobs {2,1,3} and reservations leaving gaps of exactly 3 at [0,3)
  // and [4,7): only a perfect split (2+1 | 3) achieves 7.
  const Instance instance(1,
                          {Job{0, 1, 2, 0, ""}, Job{1, 1, 1, 0, ""},
                           Job{2, 1, 3, 0, ""}},
                          {Reservation{0, 1, 1, 3, ""}});
  EXPECT_EQ(optimal_makespan(instance), 7);
}

TEST(Bnb, ReleaseTimesRespected) {
  const Instance instance(1, {Job{0, 1, 2, 5, ""}, Job{1, 1, 2, 0, ""}});
  const BnbResult result = branch_and_bound(instance);
  EXPECT_EQ(result.optimal, 7);
  EXPECT_GE(result.schedule.start(0), 5);
}

TEST(Bnb, ScheduleAchievesReportedOptimum) {
  WorkloadConfig config;
  config.n = 6;
  config.m = 3;
  config.p_max = 9;
  const Instance instance = random_workload(config, 7);
  const BnbResult result = branch_and_bound(instance);
  ASSERT_TRUE(result.proven);
  ASSERT_TRUE(result.schedule.validate(instance).ok);
  EXPECT_EQ(result.schedule.makespan(instance), result.optimal);
}

TEST(Bnb, NodeLimitReportsUnproven) {
  WorkloadConfig config;
  config.n = 10;
  config.m = 4;
  const Instance instance = random_workload(config, 9);
  BnbOptions options;
  options.node_limit = 3;
  const BnbResult result = branch_and_bound(instance, options);
  EXPECT_FALSE(result.proven);
  EXPECT_THROW((void)optimal_makespan(instance, options),
               std::invalid_argument);
}

TEST(Bnb, UpperBoundHintDoesNotChangeResult) {
  WorkloadConfig config;
  config.n = 6;
  config.m = 3;
  const Instance instance = random_workload(config, 11);
  const Time plain = optimal_makespan(instance);
  BnbOptions options;
  options.upper_bound_hint =
      LsrcScheduler().schedule(instance).value().makespan(instance);
  EXPECT_EQ(optimal_makespan(instance, options), plain);
}

// Exactness cross-check: on tiny instances, compare against exhaustive
// enumeration of all start-time combinations up to a safe horizon.
class BnbExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

Time exhaustive_optimum(const Instance& instance) {
  // All jobs start in [0, H]; H = sum of durations + max reservation end
  // is always enough.
  Time horizon = instance.reservation_horizon();
  for (const Job& job : instance.jobs()) horizon += job.p;
  std::vector<Time> starts(instance.n(), 0);
  Time best = kTimeInfinity;
  while (true) {
    Schedule schedule(instance.n());
    for (std::size_t i = 0; i < instance.n(); ++i)
      schedule.set_start(static_cast<JobId>(i), starts[i]);
    if (schedule.validate(instance).ok)
      best = std::min(best, schedule.makespan(instance));
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < starts.size()) {
      if (++starts[pos] <= horizon) break;
      starts[pos] = 0;
      ++pos;
    }
    if (pos == starts.size()) break;
  }
  return best;
}

TEST_P(BnbExhaustive, MatchesBruteForce) {
  WorkloadConfig config;
  config.n = 3;
  config.m = 2;
  config.p_max = 3;
  const Instance base = random_workload(config, GetParam());
  const Instance with_resa(base.m(), base.jobs(),
                           {Reservation{0, 1, 2, 1, ""}});
  for (const Instance& instance : {base, with_resa}) {
    const Time expected = exhaustive_optimum(instance);
    EXPECT_EQ(optimal_makespan(instance), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbExhaustive,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

}  // namespace
}  // namespace resched
