#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <string>

namespace resched {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue<int> queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_THROW((void)queue.pop(), std::invalid_argument);
  EXPECT_THROW((void)queue.next_time(), std::invalid_argument);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue<std::string> queue;
  queue.push(5, "b");
  queue.push(2, "a");
  queue.push(9, "c");
  EXPECT_EQ(queue.next_time(), 2);
  EXPECT_EQ(queue.pop().second, "a");
  EXPECT_EQ(queue.pop().second, "b");
  EXPECT_EQ(queue.pop().second, "c");
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue<int> queue;
  for (int i = 0; i < 10; ++i) queue.push(7, i);
  for (int i = 0; i < 10; ++i) {
    const auto [time, payload] = queue.pop();
    EXPECT_EQ(time, 7);
    EXPECT_EQ(payload, i);
  }
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue<int> queue;
  queue.push(3, 30);
  queue.push(1, 10);
  EXPECT_EQ(queue.pop().second, 10);
  queue.push(2, 20);
  EXPECT_EQ(queue.pop().second, 20);
  EXPECT_EQ(queue.pop().second, 30);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, RejectsNegativeTime) {
  EventQueue<int> queue;
  EXPECT_THROW(queue.push(-1, 0), std::invalid_argument);
}

TEST(EventQueue, BoundedDrainStopsAtHorizon) {
  // The pop-while-next_time()-fits pattern Simulation::run uses for bounded
  // runs: everything at or before the horizon drains in (time, FIFO) order,
  // later events stay queued untouched.
  EventQueue<int> queue;
  queue.push(5, 50);
  queue.push(30, 300);
  queue.push(10, 100);
  queue.push(10, 101);
  queue.push(20, 200);
  constexpr Time kHorizon = 10;
  std::vector<int> drained;
  while (!queue.empty() && queue.next_time() <= kHorizon)
    drained.push_back(queue.pop().second);
  EXPECT_EQ(drained, (std::vector<int>{50, 100, 101}));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.next_time(), 20);
}

TEST(EventQueue, MovesPayloads) {
  EventQueue<std::unique_ptr<int>> queue;
  queue.push(1, std::make_unique<int>(42));
  auto [time, payload] = queue.pop();
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(*payload, 42);
}

}  // namespace
}  // namespace resched
