#include "sim/cluster_sim.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "algorithms/lsrc.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

Instance demo_instance() {
  return Instance(3, {Job{0, 2, 4, 0, ""}, Job{1, 3, 2, 0, ""}},
                  {Reservation{0, 1, 3, 0, ""}});
}

Schedule demo_schedule() {
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 4);
  return schedule;
}

TEST(ClusterSim, TraceIsTimeOrderedAndComplete) {
  const SimulationResult result =
      simulate_cluster(demo_instance(), demo_schedule());
  // 2 jobs + 1 reservation => 6 events.
  EXPECT_EQ(result.trace.size(), 6u);
  for (std::size_t i = 1; i < result.trace.size(); ++i)
    EXPECT_GE(result.trace[i].time, result.trace[i - 1].time);
}

TEST(ClusterSim, PeakBusyMatchesLoad) {
  const SimulationResult result =
      simulate_cluster(demo_instance(), demo_schedule());
  // At t in [0,3): job0 (2) + reservation (1) = 3 busy.
  EXPECT_EQ(result.peak_busy, 3);
}

TEST(ClusterSim, MetricsMatchDirectComputation) {
  const SimulationResult result =
      simulate_cluster(demo_instance(), demo_schedule());
  const ScheduleMetrics direct =
      compute_metrics(demo_instance(), demo_schedule());
  EXPECT_EQ(result.metrics.makespan, direct.makespan);
  EXPECT_DOUBLE_EQ(result.metrics.utilization, direct.utilization);
}

TEST(ClusterSim, BackToBackReuseIsClean) {
  // Two full-width jobs back to back: release at t=1 must precede the next
  // acquisition at t=1 (no "machine acquired twice").
  const Instance instance(2, {Job{0, 2, 1, 0, ""}, Job{1, 2, 1, 0, ""}});
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 1);
  const SimulationResult result = simulate_cluster(instance, schedule);
  EXPECT_EQ(result.peak_busy, 2);
}

TEST(ClusterSim, RejectsInfeasible) {
  const Instance instance(1, {Job{0, 1, 2, 0, ""}, Job{1, 1, 2, 0, ""}});
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 1);  // overlap on one machine
  EXPECT_THROW(simulate_cluster(instance, schedule), std::invalid_argument);
}

TEST(ClusterSim, CsvFormat) {
  const SimulationResult result =
      simulate_cluster(demo_instance(), demo_schedule());
  std::ostringstream os;
  write_trace_csv(result.trace, os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.find("time,event,id"), 0u);
  EXPECT_NE(csv.find("job_start"), std::string::npos);
  EXPECT_NE(csv.find("resa_end"), std::string::npos);
}

TEST(ClusterSim, RandomLsrcSchedulesSimulateCleanly) {
  for (const std::uint64_t seed : {91u, 92u, 93u}) {
    WorkloadConfig config;
    config.n = 30;
    config.m = 12;
    config.alpha = Rational(1, 2);
    const Instance base = random_workload(config, seed);
    AlphaReservationConfig resa;
    resa.alpha = Rational(1, 2);
    const Instance instance =
        with_alpha_restricted_reservations(base, resa, seed);
    const Schedule schedule = LsrcScheduler().schedule(instance).value();
    const SimulationResult result = simulate_cluster(instance, schedule);
    EXPECT_LE(result.peak_busy, instance.m());
    EXPECT_EQ(result.trace.size(),
              2 * (instance.n() + instance.n_reservations()));
  }
}

}  // namespace
}  // namespace resched
