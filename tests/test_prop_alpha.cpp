// Property suite for section 4.2: on alpha-RESASCHEDULING instances LSRC is
// at most 2/alpha from optimal (Proposition 3), the constructive lower bound
// reaches 2/alpha - 1 + alpha/2 (Proposition 2), and the analytic sandwich
// B2 <= B1 <= 2/alpha holds where both are defined.
#include <gtest/gtest.h>

#include "algorithms/lsrc.hpp"
#include "bounds/checker.hpp"
#include "bounds/guarantees.hpp"
#include "bounds/lower_bounds.hpp"
#include "core/availability.hpp"
#include "exact/bnb.hpp"
#include "generators/adversarial.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

Instance alpha_instance(std::uint64_t seed, std::size_t n, ProcCount m,
                        const Rational& alpha) {
  WorkloadConfig config;
  config.n = n;
  config.m = m;
  config.alpha = alpha;
  config.p_max = 12;
  const Instance base = random_workload(config, seed);
  AlphaReservationConfig resa;
  resa.alpha = alpha;
  resa.count = 4;
  resa.horizon = 60;
  resa.max_duration = 20;
  return with_alpha_restricted_reservations(base, resa, seed + 1000);
}

// Exact: small instances, all orders, ratio vs B&B optimum <= 2/alpha.
struct AlphaCase {
  std::uint64_t seed;
  ProcCount m;
  int alpha_num;
  int alpha_den;
};

class AlphaExact : public ::testing::TestWithParam<AlphaCase> {};

TEST_P(AlphaExact, AllOrdersWithinTwoOverAlphaOfOptimum) {
  const AlphaCase param = GetParam();
  const Rational alpha(param.alpha_num, param.alpha_den);
  const Instance instance = alpha_instance(param.seed, 6, param.m, alpha);
  ASSERT_TRUE(is_alpha_restricted(instance, alpha));
  const Time optimum = optimal_makespan(instance);
  const Rational bound = alpha_upper_bound(alpha);
  for (const ListOrder order : all_list_orders()) {
    const Schedule schedule = LsrcScheduler(order, 9).schedule(instance).value();
    ASSERT_TRUE(schedule.validate(instance).ok);
    EXPECT_LE(makespan_ratio(schedule.makespan(instance), optimum), bound)
        << to_string(order) << " on seed " << param.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, AlphaExact,
    ::testing::Values(AlphaCase{1, 4, 1, 2}, AlphaCase{2, 4, 1, 2},
                      AlphaCase{3, 8, 1, 2}, AlphaCase{4, 8, 1, 4},
                      AlphaCase{5, 6, 1, 3}, AlphaCase{6, 6, 2, 3},
                      AlphaCase{7, 8, 3, 4}, AlphaCase{8, 9, 1, 3}));

// Larger instances: sound check via the certified lower bound.
class AlphaLarge : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlphaLarge, NoViolationAgainstLowerBound) {
  const Rational alpha(1, 2);
  const Instance instance = alpha_instance(GetParam(), 80, 16, alpha);
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  const GuaranteeReport report = check_guarantee(instance, schedule);
  EXPECT_NE(report.compliance, Compliance::kViolated) << report.detail;
  // The checker must have recognised a finite guarantee for this class.
  EXPECT_TRUE(report.has_guarantee);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlphaLarge,
                         ::testing::Values(601, 602, 603, 604, 605, 606));

// Proposition 2: the adversarial ratio k - 1 + 1/k is realised exactly and
// stays sandwiched between the analytic bounds.
class Prop2Sandwich : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(Prop2Sandwich, AchievedRatioMatchesB1B2AtConstructivePoints) {
  const std::int64_t k = GetParam();
  const Prop2Family family = prop2_instance(k);
  const Schedule bad =
      LsrcScheduler(family.bad_order).schedule(family.instance).value();
  const Rational achieved = makespan_ratio(bad.makespan(family.instance),
                                           family.optimal_makespan);
  const Rational alpha(2, k);
  // At alpha = 2/k both analytic lower bounds coincide with the achieved
  // constructive ratio, and Prop. 3's upper bound dominates.
  EXPECT_EQ(achieved, lsrc_lower_bound_b1(alpha));
  EXPECT_EQ(achieved, lsrc_lower_bound_b2(alpha));
  EXPECT_LT(achieved, alpha_upper_bound(alpha));
}

INSTANTIATE_TEST_SUITE_P(Ks, Prop2Sandwich,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12));

// A good list order defuses the adversarial family: LPT schedules the wide
// jobs first and lands on the optimum.
TEST(Prop2Defused, LptIsOptimalOnTheFamily) {
  for (const std::int64_t k : {3, 4, 6}) {
    const Prop2Family family = prop2_instance(k);
    const Schedule lpt =
        LsrcScheduler(ListOrder::kLpt).schedule(family.instance).value();
    ASSERT_TRUE(lpt.validate(family.instance).ok);
    EXPECT_EQ(lpt.makespan(family.instance), family.optimal_makespan)
        << "k=" << k;
  }
}

// Guarantee degradation as alpha shrinks: with everything else fixed, the
// certified worst-case bound 2/alpha doubles when alpha halves; the measured
// ratios (vs lower bound) must stay below each bound.
TEST(AlphaDegradation, MeasuredRatiosRespectTheirBounds) {
  for (const auto& [num, den] : std::vector<std::pair<int, int>>{
           {1, 1}, {1, 2}, {1, 3}, {1, 4}}) {
    const Rational alpha(num, den);
    const Instance instance = alpha_instance(777, 50, 24, alpha);
    const Schedule schedule = LsrcScheduler().schedule(instance).value();
    const Time lb = makespan_lower_bound(instance);
    EXPECT_LE(makespan_ratio(schedule.makespan(instance), lb),
              alpha_upper_bound(alpha))
        << "alpha = " << alpha.to_string();
  }
}

}  // namespace
}  // namespace resched
