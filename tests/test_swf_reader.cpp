// Tolerant SWF reader: field mapping, every skip reason with exact counts,
// saturating clamps, header directives, options, and the committed
// tests/data/tiny.swf fixture (one record per skip reason by design).
#include "scenario/swf_reader.hpp"

#include <gtest/gtest.h>

#include <string>

#include "algorithms/scheduler.hpp"
#include "scenario/scenario.hpp"

namespace resched {
namespace {

[[nodiscard]] std::string fixture_path(const std::string& name) {
  return std::string(RESCHED_TEST_DATA_DIR) + "/" + name;
}

// One clean 18-field record: job 1, submit 10, run 30, 4 procs, status 1.
constexpr const char* kCleanRecord =
    "1 10 0 30 4 -1 -1 -1 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n";

TEST(SwfReader, MapsTheCleanRecordFields) {
  const SwfTrace trace =
      parse_swf_trace(std::string("; MaxProcs: 64\n") + kCleanRecord);
  EXPECT_EQ(trace.max_procs, 64);
  ASSERT_EQ(trace.jobs.size(), 1u);
  const Job& job = trace.jobs.front();
  EXPECT_EQ(job.name, "swf1");
  EXPECT_EQ(job.release, 10);
  EXPECT_EQ(job.p, 30);
  EXPECT_EQ(job.q, 4);
  EXPECT_EQ(trace.parsed, 1u);
  EXPECT_EQ(trace.skipped, 0u);
}

TEST(SwfReader, EachSkipReasonIsCountedExactly) {
  const std::string text =
      "; MaxProcs: 16\n"
      "1 0 0 5\n"                                             // truncated
      "2 0 0 oops 4 -1 -1 -1 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n"   // bad integer
      "3 0 0 -5 4 -1 -1 -1 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n"     // runtime <= 0
      "4 0 0 5 0 -1 -1 0 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n"       // procs <= 0
      "5 0 0 5 4 -1 -1 -1 -1 -1 5 1 -1 -1 -1 -1 -1 -1\n"      // cancelled
      "6 0 0 5 4 -1 -1 -1 -1 -1 0 1 -1 -1 -1 -1 -1 -1\n"      // failed
      "7 0 0 5 4 -1 -1 -1 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n";     // kept
  const SwfTrace trace = parse_swf_trace(text);
  EXPECT_EQ(trace.parsed, 1u);
  EXPECT_EQ(trace.skipped, 6u);
  using enum SwfSkipReason;
  EXPECT_EQ(trace.skipped_by_reason[static_cast<std::size_t>(kTruncated)], 1u);
  EXPECT_EQ(trace.skipped_by_reason[static_cast<std::size_t>(kBadInteger)], 1u);
  EXPECT_EQ(
      trace.skipped_by_reason[static_cast<std::size_t>(kNonPositiveRuntime)],
      1u);
  EXPECT_EQ(
      trace.skipped_by_reason[static_cast<std::size_t>(kNonPositiveProcs)], 1u);
  EXPECT_EQ(trace.skipped_by_reason[static_cast<std::size_t>(kCancelled)], 2u);
  EXPECT_EQ(trace.parsed + trace.skipped, 7u);
}

TEST(SwfReader, FallbackFieldsRescueMissingRuntimeAndProcs) {
  // Run time -1 but requested time 42; allocated procs -1 but requested 3.
  const SwfTrace trace = parse_swf_trace(
      "; MaxProcs: 8\n"
      "1 0 0 -1 -1 -1 -1 3 42 -1 1 1 -1 -1 -1 -1 -1 -1\n");
  ASSERT_EQ(trace.parsed, 1u);
  EXPECT_EQ(trace.jobs.front().p, 42);
  EXPECT_EQ(trace.jobs.front().q, 3);
}

TEST(SwfReader, ClampsWideJobsAndNegativeSubmitTimes) {
  const SwfTrace trace = parse_swf_trace(
      "; MaxProcs: 8\n"
      "1 -20 0 5 32 -1 -1 -1 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n");
  ASSERT_EQ(trace.parsed, 1u);
  EXPECT_EQ(trace.jobs.front().q, 8);       // clamped to MaxProcs
  EXPECT_EQ(trace.jobs.front().release, 0); // clamped up to 0
  EXPECT_EQ(trace.clamped_procs, 1u);
  EXPECT_EQ(trace.clamped_times, 1u);
}

TEST(SwfReader, MaxProcsFallsBackToOptionsThenWidestJob) {
  const std::string record =
      "1 0 0 5 6 -1 -1 -1 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n";
  // No header: options win.
  SwfReadOptions options;
  options.default_max_procs = 12;
  EXPECT_EQ(parse_swf_trace(record, options).max_procs, 12);
  // No header, no option: the widest parsed job.
  EXPECT_EQ(parse_swf_trace(record).max_procs, 6);
  // The header beats both.
  EXPECT_EQ(parse_swf_trace("; MaxProcs: 64\n" + record, options).max_procs,
            64);
}

TEST(SwfReader, HeaderOnlyFileParsesToZeroJobs) {
  const SwfTrace trace = parse_swf_trace(
      "; Version: 2.2\n"
      "; MaxProcs: 128\n"
      "; Note: no data lines at all\n");
  EXPECT_EQ(trace.parsed, 0u);
  EXPECT_EQ(trace.skipped, 0u);
  EXPECT_EQ(trace.max_procs, 128);
  EXPECT_EQ(trace.directives.size(), 3u);
  EXPECT_EQ(trace.directives.at("Version"), "2.2");
  // Empty input is also fine (max_procs falls back to 1).
  EXPECT_EQ(parse_swf_trace("").parsed, 0u);
}

TEST(SwfReader, IncludeCancelledAndMaxJobsOptions) {
  const std::string text =
      "1 0 0 5 2 -1 -1 -1 -1 -1 5 1 -1 -1 -1 -1 -1 -1\n"  // cancelled
      "2 0 0 5 2 -1 -1 -1 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n"
      "3 0 0 5 2 -1 -1 -1 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n";
  SwfReadOptions keep;
  keep.include_cancelled = true;
  EXPECT_EQ(parse_swf_trace(text, keep).parsed, 3u);
  SwfReadOptions capped;
  capped.include_cancelled = true;
  capped.max_jobs = 2;
  const SwfTrace trace = parse_swf_trace(text, capped);
  EXPECT_EQ(trace.parsed, 2u);
  EXPECT_EQ(trace.jobs.size(), 2u);
}

TEST(SwfReader, ParsingIsDeterministicAndInstanceIsSchedulable) {
  const SwfTrace trace = load_swf_trace(fixture_path("tiny.swf"));
  const SwfTrace again = load_swf_trace(fixture_path("tiny.swf"));
  EXPECT_EQ(trace.jobs, again.jobs);
  const Instance instance = trace.to_instance();
  EXPECT_EQ(instance.m(), 16);
  EXPECT_EQ(instance.n(), trace.jobs.size());
  const Schedule a = make_scheduler("easy")->schedule(instance).value();
  const Schedule b = make_scheduler("easy")->schedule(instance).value();
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.validate(instance).ok);
}

TEST(SwfReader, TinyFixtureHasThePinnedCounts) {
  // tiny.swf is authored to exercise every path once: 10 data lines, five
  // kept, one skip per reason, one proc clamp, one time clamp.
  const SwfTrace trace = load_swf_trace(fixture_path("tiny.swf"));
  EXPECT_EQ(trace.max_procs, 16);
  EXPECT_EQ(trace.parsed, 5u);
  EXPECT_EQ(trace.skipped, 5u);
  for (std::size_t reason = 0; reason < kSwfSkipReasonCount; ++reason)
    EXPECT_EQ(trace.skipped_by_reason[reason], 1u) << "reason " << reason;
  EXPECT_EQ(trace.clamped_procs, 1u);
  EXPECT_EQ(trace.clamped_times, 1u);
  EXPECT_EQ(trace.directives.size(), 3u);
  EXPECT_EQ(
      trace.skip_summary(),
      "parsed=5 skipped=5 (truncated=1 bad-integer=1 nonpositive-runtime=1 "
      "nonpositive-procs=1 cancelled=1)");
}

}  // namespace
}  // namespace resched
