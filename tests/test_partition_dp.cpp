#include "exact/partition_dp.hpp"

#include <gtest/gtest.h>

#include "exact/bnb.hpp"
#include "generators/workload.hpp"
#include "util/prng.hpp"

namespace resched {
namespace {

TEST(SubsetSums, EmptySetReachesOnlyZero) {
  const auto reachable = subset_sums({}, 5);
  ASSERT_EQ(reachable.size(), 6u);
  EXPECT_TRUE(reachable[0]);
  for (std::size_t s = 1; s <= 5; ++s) EXPECT_FALSE(reachable[s]);
}

TEST(SubsetSums, SmallKnownSet) {
  // {2, 3}: reachable sums 0, 2, 3, 5.
  const auto reachable = subset_sums({2, 3}, 6);
  EXPECT_TRUE(reachable[0]);
  EXPECT_FALSE(reachable[1]);
  EXPECT_TRUE(reachable[2]);
  EXPECT_TRUE(reachable[3]);
  EXPECT_FALSE(reachable[4]);
  EXPECT_TRUE(reachable[5]);
  EXPECT_FALSE(reachable[6]);
}

TEST(SubsetSums, ValuesAboveCapIgnored) {
  const auto reachable = subset_sums({10, 1}, 5);
  EXPECT_TRUE(reachable[1]);
  EXPECT_FALSE(reachable[5]);
}

TEST(SubsetSums, CrossesWordBoundaries) {
  // Values that force shifts across the 64-bit word boundary.
  const auto reachable = subset_sums({63, 2, 70}, 140);
  EXPECT_TRUE(reachable[63]);
  EXPECT_TRUE(reachable[65]);   // 63 + 2
  EXPECT_TRUE(reachable[70]);
  EXPECT_TRUE(reachable[135]);  // 63 + 2 + 70
  EXPECT_FALSE(reachable[64]);
  EXPECT_FALSE(reachable[1]);
}

TEST(SubsetSums, RejectsNonPositive) {
  EXPECT_THROW(subset_sums({0}, 4), std::invalid_argument);
  EXPECT_THROW(subset_sums({-3}, 4), std::invalid_argument);
}

// Differential check against naive enumeration.
class SubsetSumsRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SubsetSumsRandom, MatchesEnumeration) {
  Prng prng(GetParam());
  std::vector<std::int64_t> values;
  for (int i = 0; i < 10; ++i) values.push_back(prng.uniform_int(1, 20));
  std::int64_t cap = 0;
  for (const std::int64_t v : values) cap += v;
  const auto fast = subset_sums(values, cap);
  std::vector<bool> slow(static_cast<std::size_t>(cap) + 1, false);
  for (std::uint32_t mask = 0; mask < (1u << values.size()); ++mask) {
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < values.size(); ++i)
      if (mask & (1u << i)) sum += values[i];
    slow[static_cast<std::size_t>(sum)] = true;
  }
  EXPECT_EQ(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsetSumsRandom,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(TwoMachineOptimal, PartitionInstance) {
  // {3,3,2,2,2}: total 12, best split 6|6.
  const Instance instance(2, {Job{0, 1, 3, 0, ""}, Job{1, 1, 3, 0, ""},
                              Job{2, 1, 2, 0, ""}, Job{3, 1, 2, 0, ""},
                              Job{4, 1, 2, 0, ""}});
  EXPECT_EQ(two_machine_optimal(instance), 6);
}

TEST(TwoMachineOptimal, UnbalancedInstance) {
  // {7, 1, 1}: best split 7 | 2 -> C* = 7.
  const Instance instance(2, {Job{0, 1, 7, 0, ""}, Job{1, 1, 1, 0, ""},
                              Job{2, 1, 1, 0, ""}});
  EXPECT_EQ(two_machine_optimal(instance), 7);
}

TEST(TwoMachineOptimal, EmptyAndSingle) {
  EXPECT_EQ(two_machine_optimal(Instance(2, {})), 0);
  EXPECT_EQ(two_machine_optimal(Instance(2, {Job{0, 1, 9, 0, ""}})), 9);
}

TEST(TwoMachineOptimal, DomainEnforced) {
  EXPECT_THROW((void)two_machine_optimal(Instance(3, {Job{0, 1, 1, 0, ""}})),
               std::invalid_argument);
  EXPECT_THROW((void)two_machine_optimal(Instance(2, {Job{0, 2, 1, 0, ""}})),
               std::invalid_argument);
  EXPECT_THROW((void)two_machine_optimal(Instance(2, {Job{0, 1, 1, 5, ""}})),
               std::invalid_argument);
  EXPECT_THROW((void)two_machine_optimal(Instance(
                   2, {Job{0, 1, 1, 0, ""}}, {Reservation{0, 1, 1, 0, ""}})),
               std::invalid_argument);
}

// The DP must agree with branch and bound on its whole domain -- this is
// the paper's footnote 1 ("exactly PARTITION, optimally solvable in
// pseudo-polynomial time") made executable.
class TwoMachineVsBnb : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoMachineVsBnb, AgreesWithBranchAndBound) {
  WorkloadConfig config;
  config.n = 8;
  config.m = 2;
  config.alpha = Rational(1, 2);  // forces q = 1
  config.p_max = 12;
  const Instance instance = random_workload(config, GetParam());
  EXPECT_EQ(two_machine_optimal(instance), optimal_makespan(instance));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoMachineVsBnb,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

}  // namespace
}  // namespace resched
