#include "generators/reservations.hpp"

#include <gtest/gtest.h>

#include "core/availability.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

Instance base_instance(std::uint64_t seed = 1) {
  WorkloadConfig config;
  config.n = 15;
  config.m = 16;
  config.alpha = Rational(1, 2);
  return random_workload(config, seed);
}

TEST(AlphaReservations, NeverExceedCap) {
  AlphaReservationConfig config;
  config.alpha = Rational(1, 2);
  config.count = 20;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Instance instance =
        with_alpha_restricted_reservations(base_instance(), config, seed);
    // U(t) <= (1 - alpha) m = 8 everywhere.
    EXPECT_LE(unavailability_profile(instance).max_value(), 8) << seed;
    // Combined with alpha-capped jobs, the instance is alpha-restricted.
    EXPECT_TRUE(is_alpha_restricted(instance, Rational(1, 2))) << seed;
  }
}

TEST(AlphaReservations, Deterministic) {
  AlphaReservationConfig config;
  EXPECT_EQ(with_alpha_restricted_reservations(base_instance(), config, 7),
            with_alpha_restricted_reservations(base_instance(), config, 7));
}

TEST(AlphaReservations, AlphaOneAddsNothing) {
  AlphaReservationConfig config;
  config.alpha = Rational(1);  // cap (1-1)m = 0: no reservations possible
  const Instance instance =
      with_alpha_restricted_reservations(base_instance(), config, 3);
  EXPECT_EQ(instance.n_reservations(), 0u);
}

TEST(AlphaReservations, KeepsJobsIntact) {
  AlphaReservationConfig config;
  const Instance base = base_instance();
  const Instance instance =
      with_alpha_restricted_reservations(base, config, 5);
  EXPECT_EQ(instance.jobs(), base.jobs());
  EXPECT_EQ(instance.m(), base.m());
}

TEST(AlphaReservations, StartsWithinHorizon) {
  AlphaReservationConfig config;
  config.horizon = 50;
  config.count = 10;
  const Instance instance =
      with_alpha_restricted_reservations(base_instance(), config, 9);
  for (const Reservation& resa : instance.reservations())
    EXPECT_LT(resa.start, 50);
}

TEST(Staircase, ProducesNonIncreasingUnavailability) {
  StaircaseConfig config;
  config.steps = 5;
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const Instance instance =
        with_nonincreasing_reservations(base_instance(), config, seed);
    EXPECT_TRUE(has_non_increasing_unavailability(instance)) << seed;
    EXPECT_GT(instance.n_reservations(), 0u);
    // At least one machine always remains.
    EXPECT_GE(min_availability(instance), 1);
  }
}

TEST(Staircase, RespectsPeakCap) {
  StaircaseConfig config;
  config.max_initial = 5;
  const Instance instance =
      with_nonincreasing_reservations(base_instance(), config, 21);
  EXPECT_LE(unavailability_profile(instance).max_value(), 5);
}

TEST(Staircase, RejectsFullPeak) {
  StaircaseConfig config;
  config.max_initial = 16;  // = m: would block the whole machine
  EXPECT_THROW(with_nonincreasing_reservations(base_instance(), config, 1),
               std::invalid_argument);
}

TEST(Maintenance, PeriodicPattern) {
  const Instance instance =
      with_periodic_maintenance(base_instance(), 4, 10, 100, 8, 3);
  ASSERT_EQ(instance.n_reservations(), 3u);
  EXPECT_EQ(instance.reservation(0).start, 10);
  EXPECT_EQ(instance.reservation(1).start, 110);
  EXPECT_EQ(instance.reservation(2).start, 210);
  for (const Reservation& resa : instance.reservations()) {
    EXPECT_EQ(resa.q, 4);
    EXPECT_EQ(resa.p, 8);
  }
}

TEST(Maintenance, RejectsOverlongWindow) {
  EXPECT_THROW(with_periodic_maintenance(base_instance(), 4, 0, 10, 11, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace resched
