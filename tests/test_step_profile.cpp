#include "core/step_profile.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/prng.hpp"

namespace resched {
namespace {

TEST(StepProfile, ConstantFunction) {
  const StepProfile profile(5);
  EXPECT_EQ(profile.value_at(0), 5);
  EXPECT_EQ(profile.value_at(1'000'000), 5);
  EXPECT_EQ(profile.segment_count(), 1u);
  EXPECT_EQ(profile.final_value(), 5);
}

TEST(StepProfile, NegativeQueryThrows) {
  const StepProfile profile(0);
  EXPECT_THROW((void)profile.value_at(-1), std::invalid_argument);
}

TEST(StepProfile, AddCreatesSegments) {
  StepProfile profile(10);
  profile.add(2, 5, -3);
  EXPECT_EQ(profile.value_at(0), 10);
  EXPECT_EQ(profile.value_at(1), 10);
  EXPECT_EQ(profile.value_at(2), 7);
  EXPECT_EQ(profile.value_at(4), 7);
  EXPECT_EQ(profile.value_at(5), 10);
  EXPECT_EQ(profile.segment_count(), 3u);
}

TEST(StepProfile, AddEmptyWindowIsNoop) {
  StepProfile profile(1);
  profile.add(5, 5, 7);
  profile.add(6, 5, 7);
  EXPECT_EQ(profile, StepProfile(1));
}

TEST(StepProfile, AddZeroDeltaIsNoop) {
  StepProfile profile(1);
  profile.add(0, 10, 0);
  EXPECT_EQ(profile.segment_count(), 1u);
}

TEST(StepProfile, AdjacentEqualSegmentsCoalesce) {
  StepProfile profile(0);
  profile.add(0, 5, 2);
  profile.add(5, 10, 2);  // same value as the left neighbour
  EXPECT_EQ(profile.segment_count(), 2u);  // [0,10)=2, [10,inf)=0
  profile.add(0, 10, -2);                  // back to constant 0
  EXPECT_EQ(profile, StepProfile(0));
}

TEST(StepProfile, AddUnboundedWindow) {
  StepProfile profile(4);
  profile.add(3, kTimeInfinity, -4);
  EXPECT_EQ(profile.value_at(2), 4);
  EXPECT_EQ(profile.value_at(3), 0);
  EXPECT_EQ(profile.final_value(), 0);
}

TEST(StepProfile, OverlappingAdds) {
  StepProfile profile(0);
  profile.add(0, 10, 1);
  profile.add(5, 15, 1);
  EXPECT_EQ(profile.value_at(0), 1);
  EXPECT_EQ(profile.value_at(5), 2);
  EXPECT_EQ(profile.value_at(9), 2);
  EXPECT_EQ(profile.value_at(10), 1);
  EXPECT_EQ(profile.value_at(14), 1);
  EXPECT_EQ(profile.value_at(15), 0);
}

TEST(StepProfile, MinMaxInWindow) {
  StepProfile profile(10);
  profile.add(2, 4, -7);   // dip to 3
  profile.add(6, 8, +5);   // bump to 15
  EXPECT_EQ(profile.min_in(0, 10), 3);
  EXPECT_EQ(profile.max_in(0, 10), 15);
  EXPECT_EQ(profile.min_in(4, 6), 10);
  EXPECT_EQ(profile.min_in(0, 2), 10);
  EXPECT_EQ(profile.min_in(3, 4), 3);   // window inside the dip
  EXPECT_EQ(profile.max_in(8, 100), 10);
}

TEST(StepProfile, MinInEmptyWindowThrows) {
  const StepProfile profile(0);
  EXPECT_THROW((void)profile.min_in(5, 5), std::invalid_argument);
  EXPECT_THROW((void)profile.min_in(6, 5), std::invalid_argument);
}

TEST(StepProfile, FirstBelow) {
  StepProfile profile(10);
  profile.add(4, 7, -8);  // value 2 on [4,7)
  EXPECT_EQ(profile.first_below(0, 20, 5), 4);
  EXPECT_EQ(profile.first_below(5, 20, 5), 5);   // already inside the dip
  EXPECT_EQ(profile.first_below(7, 20, 5), kTimeInfinity);
  EXPECT_EQ(profile.first_below(0, 4, 5), kTimeInfinity);  // dip outside
  EXPECT_EQ(profile.first_below(0, 20, 2), kTimeInfinity); // never below 2
  EXPECT_EQ(profile.first_below(0, 20, 3), 4);
}

TEST(StepProfile, NextChangeAfter) {
  StepProfile profile(0);
  profile.add(3, 8, 1);
  EXPECT_EQ(profile.next_change_after(0), 3);
  EXPECT_EQ(profile.next_change_after(3), 8);
  EXPECT_EQ(profile.next_change_after(7), 8);
  EXPECT_EQ(profile.next_change_after(8), kTimeInfinity);
}

TEST(StepProfile, Integral) {
  StepProfile profile(2);
  profile.add(1, 3, 3);  // value 5 on [1,3)
  // [0,1): 2, [1,3): 5, [3,6): 2 -> 2 + 10 + 6 = 18.
  EXPECT_EQ(profile.integral(0, 6), 18);
  EXPECT_EQ(profile.integral(0, 0), 0);
  EXPECT_EQ(profile.integral(1, 3), 10);
  EXPECT_EQ(profile.integral(2, 4), 5 + 2);
}

TEST(StepProfile, IntegralRejectsUnbounded) {
  const StepProfile profile(1);
  EXPECT_THROW((void)profile.integral(0, kTimeInfinity), std::invalid_argument);
}

TEST(StepProfile, TimeToAccumulate) {
  StepProfile profile(2);         // rate 2 everywhere
  EXPECT_EQ(profile.time_to_accumulate(0, 10), 5);
  EXPECT_EQ(profile.time_to_accumulate(0, 9), 5);   // ceil
  EXPECT_EQ(profile.time_to_accumulate(3, 4), 5);
  EXPECT_EQ(profile.time_to_accumulate(0, 0), 0);
}

TEST(StepProfile, TimeToAccumulateAcrossZeroRate) {
  StepProfile profile(1);
  profile.add(2, 5, -1);  // rate 0 on [2,5)
  // Need 4 units from 0: 2 by t=2, stall to 5, 2 more by 7.
  EXPECT_EQ(profile.time_to_accumulate(0, 4), 7);
}

TEST(StepProfile, TimeToAccumulateUnreachable) {
  StepProfile profile(0);
  profile.add(0, 10, 3);  // positive only on [0,10): total 30
  EXPECT_EQ(profile.time_to_accumulate(0, 31), kTimeInfinity);
  EXPECT_EQ(profile.time_to_accumulate(0, 30), 10);
}

TEST(StepProfile, Monotonicity) {
  StepProfile rising(0);
  rising.add(5, kTimeInfinity, 2);
  EXPECT_TRUE(rising.is_non_decreasing());
  EXPECT_FALSE(rising.is_non_increasing());

  StepProfile falling(7);
  falling.add(0, 4, 3);  // 10 then 7
  EXPECT_TRUE(falling.is_non_increasing());
  EXPECT_FALSE(falling.is_non_decreasing());

  EXPECT_TRUE(StepProfile(3).is_non_increasing());
  EXPECT_TRUE(StepProfile(3).is_non_decreasing());
}

TEST(StepProfile, MinMaxValue) {
  StepProfile profile(5);
  profile.add(1, 2, -5);
  profile.add(3, 4, 10);
  EXPECT_EQ(profile.min_value(), 0);
  EXPECT_EQ(profile.max_value(), 15);
}

TEST(StepProfile, Segments) {
  StepProfile profile(1);
  profile.add(2, 4, 1);
  const auto segments = profile.segments();
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0], (StepProfile::Segment{0, 2, 1}));
  EXPECT_EQ(segments[1], (StepProfile::Segment{2, 4, 2}));
  EXPECT_EQ(segments[2], (StepProfile::Segment{4, kTimeInfinity, 1}));
}

TEST(StepProfile, SegmentsInClips) {
  StepProfile profile(1);
  profile.add(2, 4, 1);
  const auto segments = profile.segments_in(3, 10);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0], (StepProfile::Segment{3, 4, 2}));
  EXPECT_EQ(segments[1], (StepProfile::Segment{4, 10, 1}));
}

TEST(StepProfile, PlusMinus) {
  StepProfile a(1);
  a.add(0, 5, 2);  // 3 on [0,5), 1 after
  StepProfile b(2);
  b.add(3, 8, 4);  // 6 on [3,8), 2 elsewhere
  const StepProfile sum = a.plus(b);
  EXPECT_EQ(sum.value_at(0), 5);
  EXPECT_EQ(sum.value_at(3), 9);
  EXPECT_EQ(sum.value_at(5), 7);
  EXPECT_EQ(sum.value_at(8), 3);
  const StepProfile diff = sum.minus(b);
  EXPECT_EQ(diff, a);
}

// Randomised differential test: StepProfile must agree with a dense array
// under arbitrary interleavings of add / point / window queries.
class StepProfileRandomized : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(StepProfileRandomized, MatchesDenseReference) {
  constexpr Time kHorizon = 64;
  Prng prng(GetParam());
  StepProfile profile(0);
  std::vector<std::int64_t> dense(kHorizon, 0);

  for (int step = 0; step < 200; ++step) {
    const Time a = prng.uniform_int(0, kHorizon - 1);
    const Time b = prng.uniform_int(0, kHorizon);
    const Time from = std::min(a, b);
    const Time to = std::max(a, b);
    const std::int64_t delta = prng.uniform_int(-3, 3);
    profile.add(from, to, delta);
    for (Time t = from; t < to; ++t)
      dense[static_cast<std::size_t>(t)] += delta;

    // Point queries.
    const Time q = prng.uniform_int(0, kHorizon - 1);
    ASSERT_EQ(profile.value_at(q), dense[static_cast<std::size_t>(q)]);

    // Window min / max / integral / first_below.
    const Time w1 = prng.uniform_int(0, kHorizon - 2);
    const Time w2 = prng.uniform_int(w1 + 1, kHorizon - 1);
    std::int64_t expect_min = dense[static_cast<std::size_t>(w1)];
    std::int64_t expect_max = expect_min;
    std::int64_t expect_sum = 0;
    for (Time t = w1; t < w2; ++t) {
      expect_min = std::min(expect_min, dense[static_cast<std::size_t>(t)]);
      expect_max = std::max(expect_max, dense[static_cast<std::size_t>(t)]);
      expect_sum += dense[static_cast<std::size_t>(t)];
    }
    ASSERT_EQ(profile.min_in(w1, w2), expect_min);
    ASSERT_EQ(profile.max_in(w1, w2), expect_max);
    ASSERT_EQ(profile.integral(w1, w2), expect_sum);

    const std::int64_t threshold = prng.uniform_int(-2, 2);
    Time expect_first = kTimeInfinity;
    for (Time t = w1; t < w2; ++t) {
      if (dense[static_cast<std::size_t>(t)] < threshold) {
        expect_first = t;
        break;
      }
    }
    ASSERT_EQ(profile.first_below(w1, w2, threshold), expect_first);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepProfileRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace resched
