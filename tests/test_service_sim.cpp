#include "sim/service_sim.hpp"

#include <gtest/gtest.h>

#include "algorithms/scheduler.hpp"

namespace resched {
namespace {

LoadGenConfig small_load() {
  LoadGenConfig load;
  load.m = 16;
  load.p_min = 1;
  load.p_max = 20;
  load.alpha = Rational(1, 2);
  return load;
}

ServiceConfig small_config() {
  ServiceConfig config;
  config.phases = ServicePhases{20, 100, 20};
  config.dispatch_window = 32;
  config.bail_queue_depth = 1000;
  config.queue_sample_interval = 100;
  config.record_wall_latency = false;  // deterministic results
  return config;
}

TEST(ServiceSim, StepIsDeterministicForFixedSeed) {
  const auto scheduler = make_scheduler("easy");
  const ServiceStepResult a =
      run_service_step(*scheduler, small_load(), 42, 50.0, small_config());
  const ServiceStepResult b =
      run_service_step(*scheduler, small_load(), 42, 50.0, small_config());
  EXPECT_EQ(a, b);  // every field incl. all histogram buckets
  const ServiceStepResult c =
      run_service_step(*scheduler, small_load(), 43, 50.0, small_config());
  EXPECT_NE(a, c);
}

TEST(ServiceSim, SteadyStateDecisionsAreNearlyAllocationFree) {
  // The memory-subsystem claim: a steady-state incremental decision runs
  // entirely on the decision arena, the frame pool and capacity-reusing
  // member buffers. decision_allocs counts every heap event inside the
  // timed measure-window decisions (operator-new hook + instrumented
  // malloc sites); the residue is rare amortized capacity growth, far
  // below one allocation per decision on average.
  for (const char* name : {"easy", "conservative", "fcfs"}) {
    ServiceConfig config = small_config();
    config.phases = ServicePhases{100, 400, 50};  // long warm steady state
    const ServiceStepResult step = run_service_step(
        *make_scheduler(name), small_load(), 42, 50.0, config);
    ASSERT_GT(step.decisions_measured, 100u) << name;
    EXPECT_LT(static_cast<double>(step.decision_allocs),
              0.5 * static_cast<double>(step.decisions_measured))
        << name << ": decision_allocs=" << step.decision_allocs
        << " over " << step.decisions_measured << " decisions";
  }
}

TEST(ServiceSim, SubSaturationStepServesEverything) {
  const auto scheduler = make_scheduler("conservative");
  const ServiceStepResult step =
      run_service_step(*scheduler, small_load(), 7, 10.0, small_config());
  EXPECT_EQ(step.arrivals, small_config().phases.total());
  EXPECT_EQ(step.completed, step.arrivals);
  EXPECT_EQ(step.measured, small_config().phases.measure);
  EXPECT_EQ(step.end_queue_depth, 0u);
  EXPECT_FALSE(step.saturated);
  // Every measured job contributes exactly one wait and one response sample.
  EXPECT_EQ(step.wait_ticks.count(), small_config().phases.measure);
  EXPECT_EQ(step.response_ticks.count(), small_config().phases.measure);
  // Response = wait + service, so response dominates wait pointwise.
  EXPECT_GE(step.response_ticks.percentile(0.5),
            step.wait_ticks.percentile(0.5));
  EXPECT_GT(step.decisions, 0u);
  // Wall clock off => no decision samples, by construction.
  EXPECT_EQ(step.decision_ns.count(), 0u);
  EXPECT_GT(step.sustained_rate, 0.0);
}

TEST(ServiceSim, OverloadSaturatesAndBails) {
  // Offered rate far past capacity (m = 16, mean work >> 16/tick): the
  // backlog must trip the bail depth, stop the arrival chain, and mark the
  // step saturated -- with every started job still drained (no machine
  // leaks, checked inside run_service_step).
  const auto scheduler = make_scheduler("easy");
  ServiceConfig config = small_config();
  config.phases = ServicePhases{10, 200, 10};
  config.bail_queue_depth = 50;
  const ServiceStepResult step =
      run_service_step(*scheduler, small_load(), 3, 5000.0, config);
  EXPECT_TRUE(step.saturated);
  EXPECT_LT(step.arrivals, config.phases.total());
  EXPECT_GT(step.end_queue_depth, config.bail_queue_depth / 2);
  EXPECT_LT(step.completed, step.arrivals);
}

TEST(ServiceSim, SweepFindsAKnee) {
  const auto scheduler = make_scheduler("easy");
  ServiceConfig config = small_config();
  config.phases = ServicePhases{10, 80, 10};
  const ServiceSweepResult sweep = run_service_sweep(
      *scheduler, small_load(), 42, 100.0, 1000.0, config);
  ASSERT_EQ(sweep.steps.size(), 10u);
  for (std::size_t i = 0; i < sweep.steps.size(); ++i)
    EXPECT_DOUBLE_EQ(sweep.steps[i].offered_rate,
                     100.0 * static_cast<double>(i + 1));
  // m = 16 with mean work ~ up to a hundred proc-ticks/job cannot sustain
  // 1000 jobs/kilotick: a knee must exist, and by construction it is the
  // first saturated step.
  ASSERT_TRUE(sweep.has_knee());
  EXPECT_GT(sweep.knee_rate(), 0.0);
  for (int i = 0; i < sweep.knee_index; ++i)
    EXPECT_FALSE(sweep.steps[static_cast<std::size_t>(i)].saturated);
  EXPECT_TRUE(
      sweep.steps[static_cast<std::size_t>(sweep.knee_index)].saturated);
}

TEST(ServiceSim, SweepIsDeterministicForFixedSeed) {
  const auto scheduler = make_scheduler("fcfs");
  ServiceConfig config = small_config();
  config.phases = ServicePhases{10, 50, 10};
  const ServiceSweepResult a = run_service_sweep(
      *scheduler, small_load(), 9, 50.0, 250.0, config);
  const ServiceSweepResult b = run_service_sweep(
      *scheduler, small_load(), 9, 50.0, 250.0, config);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  EXPECT_EQ(a.knee_index, b.knee_index);
  for (std::size_t i = 0; i < a.steps.size(); ++i)
    EXPECT_EQ(a.steps[i], b.steps[i]);
}

TEST(ServiceSim, SchedulersFaceIdenticalArrivalsPerStep) {
  // The per-step seed derives from the root seed alone, so two schedulers
  // swept with identical parameters see the same offered stream: arrival
  // counts and rates line up step for step.
  ServiceConfig config = small_config();
  config.phases = ServicePhases{10, 50, 10};
  const ServiceSweepResult easy = run_service_sweep(
      *make_scheduler("easy"), small_load(), 11, 100.0, 300.0, config);
  const ServiceSweepResult fcfs = run_service_sweep(
      *make_scheduler("fcfs"), small_load(), 11, 100.0, 300.0, config);
  ASSERT_EQ(easy.steps.size(), fcfs.steps.size());
  for (std::size_t i = 0; i < easy.steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(easy.steps[i].offered_rate,
                     fcfs.steps[i].offered_rate);
    EXPECT_EQ(easy.steps[i].arrivals, fcfs.steps[i].arrivals);
  }
}

TEST(ServiceSim, DispatchWindowBoundsDecisionSize) {
  // A window of 1 degrades to strict FCFS head-dispatch but must still
  // serve the whole stream at a modest rate.
  const auto scheduler = make_scheduler("conservative");
  ServiceConfig config = small_config();
  config.dispatch_window = 1;
  const ServiceStepResult step =
      run_service_step(*scheduler, small_load(), 5, 20.0, config);
  EXPECT_EQ(step.completed, config.phases.total());
}

TEST(ServiceSim, QueueDepthIsSampledDuringMeasureWindow) {
  const auto scheduler = make_scheduler("easy");
  ServiceConfig config = small_config();
  config.queue_sample_interval = 50;
  const ServiceStepResult step =
      run_service_step(*scheduler, small_load(), 13, 100.0, config);
  // At least the measure-start sample plus periodic ones.
  EXPECT_GE(step.queue_depth.count(), 2u);
  EXPECT_LE(static_cast<std::size_t>(step.queue_depth.max()),
            step.peak_queue_depth);
}

TEST(ServiceSim, RejectsReservationIncapableScheduler) {
  // Running jobs are modeled as reservations; shelf packers cannot consume
  // them and must be rejected up front with a typed error, not fail deep
  // inside a dispatch.
  const auto shelf = make_scheduler("shelf-ff");
  EXPECT_THROW(run_service_step(*shelf, small_load(), 1, 10.0,
                                small_config()),
               std::invalid_argument);
}

TEST(ServiceSim, RejectsBadParameters) {
  const auto scheduler = make_scheduler("easy");
  EXPECT_THROW(run_service_step(*scheduler, small_load(), 1, 0.0,
                                small_config()),
               std::invalid_argument);
  ServiceConfig config = small_config();
  config.dispatch_window = 0;
  EXPECT_THROW(run_service_step(*scheduler, small_load(), 1, 1.0, config),
               std::invalid_argument);
  EXPECT_THROW(run_service_sweep(*scheduler, small_load(), 1, 0.0, 10.0,
                                 small_config()),
               std::invalid_argument);
}

TEST(ServiceSim, BoundaryTickCapacityIsExact) {
  // Regression (phantom one-tick reservation): when an arrival fired at the
  // same tick as a pending completion, the old dispatcher presented the
  // finishing job as a one-tick reservation, sliding starts a tick late.
  // Pin the boundary exactly: m = 1 with fixed p = 10 under heavy backlog
  // must run jobs back to back -- the step ends exactly first_arrival +
  // 10 * total, with zero idle ticks between consecutive jobs.
  LoadGenConfig load;
  load.m = 1;
  load.p_min = 5;
  load.p_max = 5;
  load.log_uniform_p = false;
  load.alpha = Rational(1);
  ServiceConfig config = small_config();
  config.phases = ServicePhases{20, 60, 20};

  LoadGen reference(load, 31);
  reference.set_rate(400.0);
  const Time first_arrival = reference.next().time;

  const ServiceStepResult step =
      run_service_step(*make_scheduler("easy"), load, 31, 400.0, config);
  EXPECT_EQ(step.completed, config.phases.total());
  EXPECT_EQ(step.sim_end,
            first_arrival + 5 * static_cast<Time>(config.phases.total()));
  // The drain actually fired: an arrival whose inter-arrival gap exceeds
  // the service time is enqueued before the same-tick completion, so its
  // dispatch must defer to that completion instead of planning around a
  // phantom one-tick reservation.
  EXPECT_GT(step.deferred_dispatches, 0u);
}

TEST(ServiceSim, QueueDepthIsNeverSilentlyEmpty) {
  // Regression (sampler lifecycle): a backlog bail during *warmup* used to
  // abort the step before the first measure arrival ever scheduled the
  // sampling chain, leaving queue_depth empty for a perfectly valid phase
  // config. The chain is now anchored at simulation start and the bail
  // records a final sample as divergence evidence.
  const auto scheduler = make_scheduler("easy");
  ServiceConfig config = small_config();
  config.phases = ServicePhases{100, 100, 10};
  config.bail_queue_depth = 20;  // trips well inside warmup
  const ServiceStepResult step =
      run_service_step(*scheduler, small_load(), 3, 5000.0, config);
  EXPECT_TRUE(step.saturated);
  EXPECT_LT(step.arrivals, config.phases.warmup);  // bailed during warmup
  EXPECT_GE(step.queue_depth.count(), 1u);
  EXPECT_GT(step.queue_depth.max(),
            static_cast<std::int64_t>(config.bail_queue_depth / 2));
}

TEST(ServiceSim, SweepStepCountIsExact) {
  // Regression (float step enumeration): the old per-iteration
  // `step_size * (i + 1) > step_stop * (1 + 1e-9)` accumulated rounding
  // error; 0.1 steps to 0.3 must be exactly {0.1, 0.2, 0.3} and a stop
  // between steps truncates.
  EXPECT_EQ(service_sweep_step_count(0.1, 0.3), 3u);
  EXPECT_EQ(service_sweep_step_count(0.1, 0.7), 7u);
  EXPECT_EQ(service_sweep_step_count(100.0, 250.0), 2u);
  EXPECT_EQ(service_sweep_step_count(100.0, 100.0), 1u);
  EXPECT_EQ(service_sweep_step_count(0.2, 1.0), 5u);
  EXPECT_THROW((void)service_sweep_step_count(0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)service_sweep_step_count(2.0, 1.0),
               std::invalid_argument);

  const auto scheduler = make_scheduler("fcfs");
  ServiceConfig config = small_config();
  config.phases = ServicePhases{1, 2, 1};
  const ServiceSweepResult sweep = run_service_sweep(
      *scheduler, small_load(), 17, 0.1, 0.3, config);
  ASSERT_EQ(sweep.steps.size(), 3u);
  EXPECT_DOUBLE_EQ(sweep.steps.back().offered_rate, 0.1 * 3.0);
}

TEST(ServiceSim, DecisionCountersAreConsistent) {
  // Regression (decisions vs decision_ns): `decisions` counts every phase
  // while the wall recorder only samples the measure window; the split
  // decisions_measured counter makes the relationship exact.
  const auto scheduler = make_scheduler("easy");
  ServiceConfig config = small_config();
  config.record_wall_latency = true;
  const ServiceStepResult timed =
      run_service_step(*scheduler, small_load(), 42, 50.0, config);
  EXPECT_EQ(timed.decision_ns.count(), timed.decisions_measured);
  EXPECT_GT(timed.decisions_measured, 0u);
  EXPECT_GE(timed.decisions, timed.decisions_measured);

  config.record_wall_latency = false;
  const ServiceStepResult untimed =
      run_service_step(*scheduler, small_load(), 42, 50.0, config);
  EXPECT_EQ(untimed.decision_ns.count(), 0u);
  EXPECT_EQ(untimed.decisions_measured, timed.decisions_measured);
}

TEST(ServiceSim, IncrementalPathIsUsedAndAccounted) {
  const auto scheduler = make_scheduler("easy");
  ServiceConfig config = small_config();
  const ServiceStepResult inc =
      run_service_step(*scheduler, small_load(), 42, 80.0, config);
  EXPECT_EQ(inc.decisions_incremental, inc.decisions);
  EXPECT_EQ(inc.decisions_scratch, 0u);
  EXPECT_GE(inc.suffix_jobs_replanned, inc.decisions);
  EXPECT_EQ(inc.snapshots_reused + 1, inc.decisions_incremental);

  config.incremental = false;
  const ServiceStepResult scratch =
      run_service_step(*scheduler, small_load(), 42, 80.0, config);
  EXPECT_EQ(scratch.decisions_scratch, scratch.decisions);
  EXPECT_EQ(scratch.decisions_incremental, 0u);
  EXPECT_EQ(scratch.snapshots_reused, 0u);
  // Same service either way (schedules are bit-identical by construction).
  EXPECT_EQ(inc.completed, scratch.completed);
  EXPECT_EQ(inc.wait_ticks, scratch.wait_ticks);
  EXPECT_EQ(inc.response_ticks, scratch.response_ticks);
  EXPECT_EQ(inc.sim_end, scratch.sim_end);
}

TEST(ServiceSim, HistoryCompactionKeepsTheProfileBounded) {
  const auto scheduler = make_scheduler("conservative");
  ServiceConfig config = small_config();
  config.phases = ServicePhases{50, 300, 50};
  config.compact_interval = 64;
  const ServiceStepResult step =
      run_service_step(*scheduler, small_load(), 5, 60.0, config);
  EXPECT_EQ(step.completed, config.phases.total());
  EXPECT_GT(step.history_compactions, 0u);
  EXPECT_GT(step.compacted_segments, 0u);
}

TEST(ServiceSim, VerifyModeRequiresIncrementalCapability) {
  // lsrc accepts reservations but does not implement replan(); asking for
  // the oracle mode must be rejected up front.
  const auto lsrc = make_scheduler("lsrc");
  ServiceConfig config = small_config();
  config.verify_incremental = true;
  EXPECT_THROW(run_service_step(*lsrc, small_load(), 1, 10.0, config),
               std::invalid_argument);
  // Without verify it degrades gracefully to the scratch path.
  config.verify_incremental = false;
  const ServiceStepResult step =
      run_service_step(*lsrc, small_load(), 1, 10.0, config);
  EXPECT_EQ(step.decisions_incremental, 0u);
  EXPECT_EQ(step.decisions_scratch, step.decisions);
}

TEST(ServiceSim, EmptyPhasesAreANoOp) {
  const auto scheduler = make_scheduler("easy");
  ServiceConfig config = small_config();
  config.phases = ServicePhases{0, 0, 0};
  const ServiceStepResult step =
      run_service_step(*scheduler, small_load(), 1, 10.0, config);
  EXPECT_EQ(step.arrivals, 0u);
  EXPECT_EQ(step.completed, 0u);
  EXPECT_FALSE(step.saturated);
}

}  // namespace
}  // namespace resched
