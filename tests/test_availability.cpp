#include "core/availability.hpp"

#include <gtest/gtest.h>

namespace resched {
namespace {

Instance reserved_instance() {
  // m = 10; U: [0,5)=3, [5,8)=3+2=5 ... build: r0 = 3 procs on [0,8),
  // r1 = 2 procs on [5, 8). U = 3 on [0,5), 5 on [5,8), 0 after.
  return Instance(10, {Job{0, 4, 3, 0, ""}},
                  {Reservation{0, 3, 8, 0, ""}, Reservation{1, 2, 3, 5, ""}});
}

TEST(Availability, UnavailabilityProfile) {
  const StepProfile u = unavailability_profile(reserved_instance());
  EXPECT_EQ(u.value_at(0), 3);
  EXPECT_EQ(u.value_at(4), 3);
  EXPECT_EQ(u.value_at(5), 5);
  EXPECT_EQ(u.value_at(7), 5);
  EXPECT_EQ(u.value_at(8), 0);
}

TEST(Availability, AvailabilityIsComplement) {
  const Instance instance = reserved_instance();
  const StepProfile m_t = availability_profile(instance);
  const StepProfile u = unavailability_profile(instance);
  for (const Time t : {Time{0}, Time{4}, Time{5}, Time{7}, Time{8}, Time{20}})
    EXPECT_EQ(m_t.value_at(t) + u.value_at(t), instance.m());
}

TEST(Availability, NoReservationsIsConstant) {
  const Instance instance(6, {Job{0, 1, 1, 0, ""}});
  EXPECT_EQ(availability_profile(instance), StepProfile(6));
  EXPECT_TRUE(has_non_increasing_unavailability(instance));
}

TEST(Availability, NonIncreasingDetection) {
  // Nested blocks starting at 0: U = 5 on [0,3), 2 on [3,7), 0 after.
  const Instance staircase(8, {},
                           {Reservation{0, 3, 3, 0, ""},
                            Reservation{1, 2, 7, 0, ""}});
  EXPECT_TRUE(has_non_increasing_unavailability(staircase));
  // A reservation starting later breaks monotonicity.
  const Instance bump(8, {}, {Reservation{0, 3, 3, 5, ""}});
  EXPECT_FALSE(has_non_increasing_unavailability(bump));
}

TEST(Availability, MinAvailabilityAndAt) {
  const Instance instance = reserved_instance();
  EXPECT_EQ(min_availability(instance), 5);  // during [5,8)
  EXPECT_EQ(availability_at(instance, 0), 7);
  EXPECT_EQ(availability_at(instance, 6), 5);
  EXPECT_EQ(availability_at(instance, 100), 10);
}

TEST(Availability, Fractions) {
  const Instance instance = reserved_instance();
  EXPECT_EQ(max_reserved_fraction(instance), Rational(1, 2));  // 5/10
  EXPECT_EQ(max_job_fraction(instance), Rational(2, 5));       // 4/10
}

TEST(Availability, AlphaRestriction) {
  const Instance instance = reserved_instance();
  // alpha = 1/2: U <= (1-alpha)m = 5 (holds, max U = 5); q <= alpha m = 5
  // (holds, q_max = 4).
  EXPECT_TRUE(is_alpha_restricted(instance, Rational(1, 2)));
  // alpha = 2/5: q <= 4 holds, but U <= 6 also holds -> check fails on U?
  // (1-2/5)*10 = 6 >= 5 holds, so alpha = 2/5 is also valid.
  EXPECT_TRUE(is_alpha_restricted(instance, Rational(2, 5)));
  // alpha = 3/5: U cap (1-3/5)*10 = 4 < 5 -> violated.
  EXPECT_FALSE(is_alpha_restricted(instance, Rational(3, 5)));
  // alpha = 1/5: job cap 2 < 4 -> violated.
  EXPECT_FALSE(is_alpha_restricted(instance, Rational(1, 5)));
  EXPECT_THROW((void)is_alpha_restricted(instance, Rational(0)),
               std::invalid_argument);
}

TEST(Availability, BestAlpha) {
  const Instance instance = reserved_instance();
  const auto alpha = best_alpha(instance);
  ASSERT_TRUE(alpha.has_value());
  EXPECT_EQ(*alpha, Rational(1, 2));
  EXPECT_TRUE(is_alpha_restricted(instance, *alpha));
}

TEST(Availability, BestAlphaNoneWhenJobTooWide) {
  // Peak reservation leaves 2 processors but a job needs 5.
  const Instance instance(8, {Job{0, 5, 1, 0, ""}},
                          {Reservation{0, 6, 4, 0, ""}});
  EXPECT_FALSE(best_alpha(instance).has_value());
}

TEST(Availability, BestAlphaNoneWhenFullyReserved) {
  const Instance instance(4, {Job{0, 1, 1, 0, ""}},
                          {Reservation{0, 4, 2, 0, ""}});
  EXPECT_FALSE(best_alpha(instance).has_value());
}

TEST(Availability, BestAlphaOneForRigidOnly) {
  const Instance instance(4, {Job{0, 4, 1, 0, ""}});
  const auto alpha = best_alpha(instance);
  ASSERT_TRUE(alpha.has_value());
  EXPECT_EQ(*alpha, Rational(1));
}

}  // namespace
}  // namespace resched
