#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace resched {
namespace {

TEST(Prng, DeterministicForEqualSeeds) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1);
  Prng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Prng, UniformIntStaysInRange) {
  Prng prng(7);
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = prng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Prng, UniformIntDegenerateRange) {
  Prng prng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(prng.uniform_int(3, 3), 3);
}

TEST(Prng, UniformIntInvalidRangeThrows) {
  Prng prng(7);
  EXPECT_THROW(prng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Prng, UniformIntCoversWholeSmallRange) {
  Prng prng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(prng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, UniformIntRoughlyUniform) {
  Prng prng(13);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i)
    counts[static_cast<std::size_t>(prng.uniform_int(0, kBuckets - 1))]++;
  for (const int count : counts) {
    EXPECT_GT(count, kDraws / kBuckets * 0.9);
    EXPECT_LT(count, kDraws / kBuckets * 1.1);
  }
}

TEST(Prng, UniformRealInUnitInterval) {
  Prng prng(17);
  for (int i = 0; i < 10'000; ++i) {
    const double v = prng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, UniformRealRange) {
  Prng prng(19);
  for (int i = 0; i < 1000; ++i) {
    const double v = prng.uniform_real(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Prng, LogUniformRespectsBounds) {
  Prng prng(23);
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = prng.log_uniform_int(1, 1000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 1000);
  }
}

TEST(Prng, LogUniformFavoursSmallValues) {
  Prng prng(29);
  int small = 0;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i)
    if (prng.log_uniform_int(1, 1024) <= 32) ++small;
  // log-uniform: P(v <= 32) = log(32)/log(1024) = 1/2; uniform would be 3%.
  EXPECT_GT(small, kDraws / 3);
}

TEST(Prng, ChanceExtremes) {
  Prng prng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(prng.chance(0.0));
    EXPECT_TRUE(prng.chance(1.0));
  }
  EXPECT_THROW(prng.chance(1.5), std::invalid_argument);
}

TEST(Prng, ShuffleIsPermutation) {
  Prng prng(37);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = values;
  prng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(values.begin(), values.end(),
                                  shuffled.begin()));
}

TEST(Prng, ShuffleDeterministic) {
  std::vector<int> a{1, 2, 3, 4, 5};
  std::vector<int> b{1, 2, 3, 4, 5};
  Prng pa(41);
  Prng pb(41);
  pa.shuffle(a);
  pb.shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(Prng, ForkSeedsDiffer) {
  Prng prng(43);
  const std::uint64_t s1 = prng.fork_seed();
  const std::uint64_t s2 = prng.fork_seed();
  EXPECT_NE(s1, s2);
}

// Known-answer test: the xoshiro256** stream for a fixed seed must never
// change across refactorings (experiment reproducibility hinges on it).
TEST(Prng, StableStreamRegression) {
  Prng a(123456789);
  Prng b(123456789);
  std::vector<std::uint64_t> reference;
  for (int i = 0; i < 8; ++i) reference.push_back(a.next_u64());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(b.next_u64(), reference[i]);
  // And draws differ across positions (no fixed point).
  EXPECT_NE(reference[0], reference[1]);
}

}  // namespace
}  // namespace resched
