// Cross-scheduler metamorphic suite: golden schedules + feasibility oracles.
//
// Every registered scheduler is a deterministic function Instance ->
// Schedule, so its output on a fixed seeded instance family is a behavioral
// fingerprint of the whole stack underneath it (StepProfile, FreeProfile,
// list orders, backfilling logic). The FNV-1a hashes below were recorded
// from the implementation BEFORE the segment-tree index rewrite of
// StepProfile; this suite asserts the rewrite (and any future profile
// optimization) is byte-identical on every scheduler's output -- an
// end-to-end differential oracle that a microbenchmark-driven change cannot
// silently pass while altering schedules.
//
// Independently of the goldens, every schedule is re-validated from scratch
// (core/schedule.hpp) and checked against the paper's guarantee for its
// instance class (bounds/checker.hpp): kViolated would falsify the
// implementation even on a hash match.
//
// Regenerating goldens (only after an INTENDED behavioral change): set the
// RESCHED_PRINT_GOLDENS environment variable and run this binary; it prints
// the replacement table and fails, so a stale table cannot slip through CI.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "algorithms/scheduler.hpp"
#include "bounds/checker.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t schedule_hash(const Instance& instance,
                            const Schedule& schedule) {
  std::uint64_t h = 1469598103934665603ull;
  for (JobId id = 0; id < static_cast<JobId>(instance.n()); ++id)
    h = fnv1a(h, static_cast<std::uint64_t>(schedule.start(id)));
  return h;
}

// Must stay in lock-step with the recorded goldens: any change here is a
// golden regeneration.
Instance golden_instance(std::uint64_t seed, bool reserved, bool online) {
  WorkloadConfig config;
  config.n = 60;
  config.m = 48;
  config.alpha = Rational(1, 2);
  config.p_max = 120;
  if (online) config.mean_interarrival = 3.0;
  Instance instance = random_workload(config, seed);
  if (reserved) {
    AlphaReservationConfig resa;
    resa.alpha = Rational(1, 2);
    resa.count = 10;
    resa.horizon = 600;
    resa.max_duration = 80;
    instance = with_alpha_restricted_reservations(
        instance, resa, seed ^ 0x9e3779b97f4a7c15ull);
  }
  return instance;
}

struct Golden {
  std::uint64_t seed;
  bool reserved;
  bool online;
  const char* scheduler;
  std::uint64_t hash;
};

// Recorded from the pre-index-rewrite implementation (PR 1 state). 90
// entries: 3 seeds x {offline, online} x {open, reserved} x every scheduler
// whose domain admits the instance.
constexpr Golden kGoldens[] = {
    {101ull, 0, 0, "conservative", 0x8baee2ebf4521ecfull},
    {101ull, 0, 0, "easy", 0xf3b7b50ea5d89dbfull},
    {101ull, 0, 0, "fcfs", 0xa1547fc863ecaa07ull},
    {101ull, 0, 0, "local-search", 0x3e1e5c3437748345ull},
    {101ull, 0, 0, "lsrc", 0x85d0db0ace48c9aaull},
    {101ull, 0, 0, "lsrc-lpt", 0x3e1e5c3437748345ull},
    {101ull, 0, 0, "portfolio", 0x3e1e5c3437748345ull},
    {101ull, 0, 0, "shelf-ff", 0xe05d8542377ec726ull},
    {101ull, 0, 0, "shelf-nf", 0xa27d12fb592b06ebull},
    {101ull, 0, 1, "conservative", 0xf7646e6bc7cba359ull},
    {101ull, 0, 1, "easy", 0xa3fa2ebbc6b7c252ull},
    {101ull, 0, 1, "fcfs", 0x5a813b636f01a710ull},
    {101ull, 0, 1, "local-search", 0x9861139a9d8c7424ull},
    {101ull, 0, 1, "lsrc", 0x21eca10164b0f3abull},
    {101ull, 0, 1, "lsrc-lpt", 0x7edb7012229f8cb8ull},
    {101ull, 0, 1, "portfolio", 0x7edb7012229f8cb8ull},
    {101ull, 1, 0, "conservative", 0xafd536f44bcd564dull},
    {101ull, 1, 0, "easy", 0x780eec923927695bull},
    {101ull, 1, 0, "fcfs", 0x0951fc21f66646bfull},
    {101ull, 1, 0, "local-search", 0x36cec27ed12faec6ull},
    {101ull, 1, 0, "lsrc", 0xde5ccbaedc08c7eaull},
    {101ull, 1, 0, "lsrc-lpt", 0x69bf20fb43932d04ull},
    {101ull, 1, 0, "portfolio", 0x69bf20fb43932d04ull},
    {101ull, 1, 1, "conservative", 0x162fc3226d8f57eaull},
    {101ull, 1, 1, "easy", 0x0783991244cac46bull},
    {101ull, 1, 1, "fcfs", 0x561a5d7a965a03ffull},
    {101ull, 1, 1, "local-search", 0x8bea6d8260d84a6bull},
    {101ull, 1, 1, "lsrc", 0x527b8e931ddc1f27ull},
    {101ull, 1, 1, "lsrc-lpt", 0x8bea6d8260d84a6bull},
    {101ull, 1, 1, "portfolio", 0x8bea6d8260d84a6bull},
    {202ull, 0, 0, "conservative", 0xd8617cd16b5900e6ull},
    {202ull, 0, 0, "easy", 0x1521d6e5e3244b1cull},
    {202ull, 0, 0, "fcfs", 0xe3639404cc94ca3dull},
    {202ull, 0, 0, "local-search", 0x5ff98a7ea91bbf11ull},
    {202ull, 0, 0, "lsrc", 0x1c6c28b0ba3e7fd2ull},
    {202ull, 0, 0, "lsrc-lpt", 0x363793306d7d1587ull},
    {202ull, 0, 0, "portfolio", 0x363793306d7d1587ull},
    {202ull, 0, 0, "shelf-ff", 0xbbc8b2a3c659d6b8ull},
    {202ull, 0, 0, "shelf-nf", 0xce8574c68fe4a687ull},
    {202ull, 0, 1, "conservative", 0xd557029714678ae9ull},
    {202ull, 0, 1, "easy", 0xd557029714678ae9ull},
    {202ull, 0, 1, "fcfs", 0x05c67b4d1336e2f7ull},
    {202ull, 0, 1, "local-search", 0x4b93ad9b01e2cd3eull},
    {202ull, 0, 1, "lsrc", 0x7e7181ff07f0949cull},
    {202ull, 0, 1, "lsrc-lpt", 0x8306d9f919eaee82ull},
    {202ull, 0, 1, "portfolio", 0x8306d9f919eaee82ull},
    {202ull, 1, 0, "conservative", 0x37d2224d316b101dull},
    {202ull, 1, 0, "easy", 0x4aa4d4e262dc36ebull},
    {202ull, 1, 0, "fcfs", 0x1a4b233d0ec33c62ull},
    {202ull, 1, 0, "local-search", 0xa6db1e846c232532ull},
    {202ull, 1, 0, "lsrc", 0xfe6601792716557eull},
    {202ull, 1, 0, "lsrc-lpt", 0x49c9113950442918ull},
    {202ull, 1, 0, "portfolio", 0xb861240ab9d5710cull},
    {202ull, 1, 1, "conservative", 0x41ff8c62314c2df7ull},
    {202ull, 1, 1, "easy", 0xdb61390c823ce35cull},
    {202ull, 1, 1, "fcfs", 0xc272448460daf8ceull},
    {202ull, 1, 1, "local-search", 0xc140351c016a1660ull},
    {202ull, 1, 1, "lsrc", 0x917791712f56047aull},
    {202ull, 1, 1, "lsrc-lpt", 0xc140351c016a1660ull},
    {202ull, 1, 1, "portfolio", 0xc140351c016a1660ull},
    {303ull, 0, 0, "conservative", 0x84dc86716ac90f6cull},
    {303ull, 0, 0, "easy", 0x339ef4f2de424399ull},
    {303ull, 0, 0, "fcfs", 0x0d8ade42144d7e6dull},
    {303ull, 0, 0, "local-search", 0x48127197b5862dc9ull},
    {303ull, 0, 0, "lsrc", 0x013f3beaad018ec7ull},
    {303ull, 0, 0, "lsrc-lpt", 0x48127197b5862dc9ull},
    {303ull, 0, 0, "portfolio", 0x48127197b5862dc9ull},
    {303ull, 0, 0, "shelf-ff", 0x3e5065f88da72561ull},
    {303ull, 0, 0, "shelf-nf", 0xce52d56bebc2a590ull},
    {303ull, 0, 1, "conservative", 0xec0dac501f2d53b8ull},
    {303ull, 0, 1, "easy", 0xec0dac501f2d53b8ull},
    {303ull, 0, 1, "fcfs", 0x40a814b6ecba1bdaull},
    {303ull, 0, 1, "local-search", 0x0bcbb4b2b07bf4baull},
    {303ull, 0, 1, "lsrc", 0x6f9fe52da7e001adull},
    {303ull, 0, 1, "lsrc-lpt", 0x0bcbb4b2b07bf4baull},
    {303ull, 0, 1, "portfolio", 0x0bcbb4b2b07bf4baull},
    {303ull, 1, 0, "conservative", 0x202f13109a248f2bull},
    {303ull, 1, 0, "easy", 0x56bddd188e09bf65ull},
    {303ull, 1, 0, "fcfs", 0x576c14938a94a101ull},
    {303ull, 1, 0, "local-search", 0xf0d7661d8e81ee33ull},
    {303ull, 1, 0, "lsrc", 0x9f1b37969ea30dc4ull},
    {303ull, 1, 0, "lsrc-lpt", 0x6d33b5f2dcf33189ull},
    {303ull, 1, 0, "portfolio", 0xbbaf5b63c6fa11a2ull},
    {303ull, 1, 1, "conservative", 0x28b4efc57623bf1full},
    {303ull, 1, 1, "easy", 0x35b795cc9685ab15ull},
    {303ull, 1, 1, "fcfs", 0xb3f2cf1a8c39f131ull},
    {303ull, 1, 1, "local-search", 0x22cfbdb44da5444bull},
    {303ull, 1, 1, "lsrc", 0xc5871991ea643174ull},
    {303ull, 1, 1, "lsrc-lpt", 0x22cfbdb44da5444bull},
    {303ull, 1, 1, "portfolio", 0x22cfbdb44da5444bull},
};

TEST(PropSchedulerEquiv, GoldenSchedulesAndOraclesAcrossTheRegistry) {
  const bool print_goldens = std::getenv("RESCHED_PRINT_GOLDENS") != nullptr;
  std::size_t checked = 0;
  for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
    for (const bool reserved : {false, true}) {
      for (const bool online : {false, true}) {
        const Instance instance = golden_instance(seed, reserved, online);
        for (const std::string& name : registered_schedulers()) {
          const auto scheduler = make_scheduler(name);
          ScheduleOutcome outcome = scheduler->schedule(instance);
          if (!outcome.ok()) {
            // Outside the algorithm's domain, as when recording -- and the
            // capability introspection must agree with the outcome.
            EXPECT_FALSE(scheduler->supports(instance))
                << name << " returned a DomainError but supports() says yes";
            continue;
          }
          EXPECT_TRUE(scheduler->supports(instance))
              << name << " produced a schedule but supports() says no";
          const Schedule schedule = std::move(outcome).value();
          const std::uint64_t hash = schedule_hash(instance, schedule);
          if (print_goldens) {
            std::printf("{%lluull, %d, %d, \"%s\", 0x%016llxull},\n",
                        static_cast<unsigned long long>(seed),
                        static_cast<int>(reserved), static_cast<int>(online),
                        name.c_str(),
                        static_cast<unsigned long long>(hash));
            continue;
          }

          // Feasibility oracle: independent re-validation from scratch.
          const ValidationResult validation = schedule.validate(instance);
          ASSERT_TRUE(validation.ok)
              << name << " on seed " << seed << ": " << validation.error;
          // Theorem oracle: the paper's guarantee must never be violated.
          const GuaranteeReport report = check_guarantee(instance, schedule);
          ASSERT_NE(report.compliance, Compliance::kViolated)
              << name << " on seed " << seed << ": " << report.detail;

          // Golden oracle: byte-identical to the pre-rewrite schedule.
          bool found = false;
          for (const Golden& golden : kGoldens) {
            if (golden.seed != seed || golden.reserved != reserved ||
                golden.online != online || name != golden.scheduler)
              continue;
            found = true;
            ASSERT_EQ(hash, golden.hash)
                << name << " diverged on seed " << seed
                << " reserved=" << reserved << " online=" << online;
          }
          ASSERT_TRUE(found)
              << "no golden recorded for " << name << " on seed " << seed
              << " reserved=" << reserved << " online=" << online
              << " -- a newly registered scheduler needs a golden entry";
          ++checked;
        }
      }
    }
  }
  ASSERT_FALSE(print_goldens)
      << "RESCHED_PRINT_GOLDENS is set: table printed, refusing to pass";
  ASSERT_EQ(checked, sizeof(kGoldens) / sizeof(kGoldens[0]));
}

TEST(PropSchedulerEquiv, SchedulersAreDeterministicAcrossRepeatedRuns) {
  const Instance instance = golden_instance(101, true, true);
  for (const SchedulerInfo& info : registered_scheduler_info()) {
    EXPECT_TRUE(info.capabilities.deterministic)
        << info.name << " is registered as non-deterministic";
    ScheduleOutcome first = make_scheduler(info.name)->schedule(instance);
    if (!first.ok()) continue;
    const Schedule second =
        make_scheduler(info.name)->schedule(instance).value();
    ASSERT_EQ(first.value(), second)
        << info.name << " is not run-to-run deterministic";
  }
}

}  // namespace
}  // namespace resched
