#include "algorithms/lsrc.hpp"

#include <gtest/gtest.h>

#include "bounds/checker.hpp"
#include "core/availability.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

TEST(Lsrc, EmptyInstance) {
  const Instance instance(4, {});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.makespan(instance), 0);
}

TEST(Lsrc, SingleJobStartsImmediately) {
  const Instance instance(4, {Job{0, 2, 5, 0, ""}});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(0), 0);
  EXPECT_EQ(schedule.makespan(instance), 5);
}

TEST(Lsrc, PacksParallelJobs) {
  // Three q=1 jobs on m=3: all at t=0.
  const Instance instance(
      3, {Job{0, 1, 4, 0, ""}, Job{1, 1, 4, 0, ""}, Job{2, 1, 4, 0, ""}});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  for (JobId id = 0; id < 3; ++id) EXPECT_EQ(schedule.start(id), 0);
}

TEST(Lsrc, GreedyStartsLowerPriorityJobWhenHeadBlocked) {
  // Head job needs the whole machine after a running job; the narrow job
  // overtakes (the "most aggressive backfilling" behaviour).
  const Instance instance(
      2, {Job{0, 2, 2, 0, "first"}, Job{1, 2, 2, 0, "wide"},
          Job{2, 1, 2, 0, "narrow"}});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  // At t=0 job0 (q=2) starts; job1 (q=2) does not fit, job2 (q=1) does not
  // fit either (0 free). At t=2 all free: job1 starts, then job2 cannot
  // (2+1 > 2). At t=4 job2 starts.
  EXPECT_EQ(schedule.start(0), 0);
  EXPECT_EQ(schedule.start(1), 2);
  EXPECT_EQ(schedule.start(2), 4);
}

TEST(Lsrc, BackfillsAroundWideJob) {
  // m=3: job0 q=2 runs [0,4); job1 q=2 can't fit at 0, but job2 q=1 can.
  const Instance instance(
      3, {Job{0, 2, 4, 0, ""}, Job{1, 2, 4, 0, ""}, Job{2, 1, 2, 0, ""}});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(0), 0);
  EXPECT_EQ(schedule.start(2), 0);  // overtakes job1
  EXPECT_EQ(schedule.start(1), 4);
}

TEST(Lsrc, RespectsReservationWithLookahead) {
  // m=2, full reservation on [3,5). A p=4 job cannot start at 0 (would
  // overlap), must wait until 5.
  const Instance instance(2, {Job{0, 2, 4, 0, ""}},
                          {Reservation{0, 2, 2, 3, ""}});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(0), 5);
  EXPECT_TRUE(schedule.validate(instance).ok);
}

TEST(Lsrc, SlipsShortJobBeforeReservation) {
  // Same reservation, but a p=3 job fits exactly in [0,3).
  const Instance instance(2, {Job{0, 2, 3, 0, ""}},
                          {Reservation{0, 2, 2, 3, ""}});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(0), 0);
}

TEST(Lsrc, StartsAtReservationEndEvent) {
  // Partial reservation: 1 of 2 machines on [0,10). q=2 job must wait for
  // the reservation end even though nothing else runs.
  const Instance instance(2, {Job{0, 2, 1, 0, ""}},
                          {Reservation{0, 1, 10, 0, ""}});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(0), 10);
}

TEST(Lsrc, HonoursReleaseTimes) {
  const Instance instance(2, {Job{0, 1, 2, 5, ""}, Job{1, 1, 2, 0, ""}});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(1), 0);
  EXPECT_EQ(schedule.start(0), 5);
}

TEST(Lsrc, ExplicitListOrderIsRespected) {
  // Two jobs both fit at 0 only one at a time; explicit order decides.
  const Instance instance(2, {Job{0, 2, 2, 0, ""}, Job{1, 2, 1, 0, ""}});
  const Schedule a = LsrcScheduler(std::vector<JobId>{0, 1}).schedule(instance).value();
  EXPECT_EQ(a.start(0), 0);
  EXPECT_EQ(a.start(1), 2);
  const Schedule b = LsrcScheduler(std::vector<JobId>{1, 0}).schedule(instance).value();
  EXPECT_EQ(b.start(1), 0);
  EXPECT_EQ(b.start(0), 1);
}

TEST(Lsrc, ExplicitListValidated) {
  const Instance instance(2, {Job{0, 1, 1, 0, ""}, Job{1, 1, 1, 0, ""}});
  EXPECT_THROW(LsrcScheduler(std::vector<JobId>{0, 0}).schedule(instance).value(),
               std::invalid_argument);
  EXPECT_THROW(LsrcScheduler(std::vector<JobId>{0}).schedule(instance).value(),
               std::invalid_argument);
  EXPECT_THROW(LsrcScheduler(std::vector<JobId>{0, 5}).schedule(instance).value(),
               std::invalid_argument);
}

TEST(Lsrc, NameReflectsOrder) {
  EXPECT_EQ(LsrcScheduler().name(), "lsrc[submission]");
  EXPECT_EQ(LsrcScheduler(ListOrder::kLpt).name(), "lsrc[lpt]");
  EXPECT_EQ(LsrcScheduler(std::vector<JobId>{}).name(), "lsrc[explicit]");
}

// The defining greedy property of a list schedule (used in Lemma 1's proof):
// at any time t < sigma_i, job i does not fit together with the jobs then
// running. Checked directly on random instances: for every job i and every
// usage-profile breakpoint t in [0, sigma_i), the job must not fit at t
// against availability minus the usage of jobs with sigma_j <= t < C_j.
class LsrcGreedyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LsrcGreedyProperty, NoFeasibleEarlierStartAtAnyEvent) {
  WorkloadConfig config;
  config.n = 25;
  config.m = 12;
  config.p_max = 30;
  const Instance instance = random_workload(config, GetParam());
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  ASSERT_TRUE(schedule.validate(instance).ok);

  const StepProfile usage = schedule.usage_profile(instance);
  const StepProfile availability = availability_profile(instance);
  const StepProfile free = availability.minus(usage);

  for (const Job& job : instance.jobs()) {
    const Time sigma = schedule.start(job.id);
    // Candidate earlier starts: 0 and every capacity-change breakpoint.
    Time t = 0;
    while (t < sigma) {
      // The job would need q free processors during [t, t+p) *excluding its
      // own usage* -- but its own usage only exists from sigma onwards, and
      // [t, t+p) may overlap it for t > sigma - p. Add its own usage back in
      // the overlap.
      StepProfile hypothetical = free;
      const Time own_end = sigma + job.p;
      const Time overlap_from = std::max(t, sigma);
      const Time overlap_to = std::min(t + job.p, own_end);
      if (overlap_from < overlap_to)
        hypothetical.add(overlap_from, overlap_to, job.q);
      EXPECT_LT(hypothetical.min_in(t, t + job.p), job.q)
          << "job " << job.id << " could have started at " << t
          << " but LSRC chose " << sigma;
      const Time next = free.next_change_after(t);
      if (next >= sigma) break;
      t = next;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsrcGreedyProperty,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

// Feasibility on instances with reservations, across all priority orders.
class LsrcFeasibility : public ::testing::TestWithParam<int> {};

TEST_P(LsrcFeasibility, AllOrdersFeasible) {
  const auto order = all_list_orders()[static_cast<std::size_t>(GetParam())];
  WorkloadConfig config;
  config.n = 30;
  config.m = 16;
  config.alpha = Rational(1, 2);
  Instance base = random_workload(config, 99);
  // Put a hefty (but alpha-legal) reservation in the middle.
  std::vector<Reservation> reservations{Reservation{0, 8, 40, 20, ""}};
  const Instance instance(base.m(), base.jobs(), reservations);

  const Schedule schedule = LsrcScheduler(order, 5).schedule(instance).value();
  const ValidationResult result = schedule.validate(instance);
  EXPECT_TRUE(result.ok) << to_string(order) << ": " << result.error;
}

INSTANTIATE_TEST_SUITE_P(AllOrders, LsrcFeasibility,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace resched
