#include "generators/adversarial.hpp"

#include <gtest/gtest.h>

#include "algorithms/fcfs.hpp"
#include "algorithms/lsrc.hpp"
#include "bounds/guarantees.hpp"
#include "bounds/lower_bounds.hpp"
#include "core/availability.hpp"

namespace resched {
namespace {

TEST(Prop2Family, Figure3InstanceExactly) {
  // The paper's printed example: alpha = 1/3 (k = 6), m = 180, C* = 6,
  // C_LSRC = 5 * 6 + 1 = 31.
  const Prop2Family family = prop2_instance(6);
  EXPECT_EQ(family.instance.m(), 180);
  EXPECT_EQ(family.optimal_makespan, 6);
  EXPECT_EQ(family.lsrc_makespan, 31);
  EXPECT_EQ(family.instance.n(), 11u);  // k shorts + k-1 wides
}

TEST(Prop2Family, OptimalScheduleIsFeasibleAndTight) {
  for (const std::int64_t k : {2, 3, 4, 6, 8}) {
    const Prop2Family family = prop2_instance(k);
    const ValidationResult valid =
        family.optimal_schedule.validate(family.instance);
    ASSERT_TRUE(valid.ok) << "k=" << k << ": " << valid.error;
    EXPECT_EQ(family.optimal_schedule.makespan(family.instance),
              family.optimal_makespan);
    // It matches the certified lower bound, so it is exactly optimal.
    EXPECT_EQ(makespan_lower_bound(family.instance),
              family.optimal_makespan);
  }
}

TEST(Prop2Family, LsrcWithBadOrderRealisesTheLowerBound) {
  for (const std::int64_t k : {2, 3, 4, 5, 6, 8, 10}) {
    const Prop2Family family = prop2_instance(k);
    const Schedule schedule =
        LsrcScheduler(family.bad_order).schedule(family.instance).value();
    ASSERT_TRUE(schedule.validate(family.instance).ok) << "k=" << k;
    EXPECT_EQ(schedule.makespan(family.instance), family.lsrc_makespan)
        << "k=" << k;
    // Ratio is exactly 2/alpha - 1 + alpha/2 = k - 1 + 1/k.
    EXPECT_EQ(makespan_ratio(schedule.makespan(family.instance),
                             family.optimal_makespan),
              prop2_ratio_for_k(k))
        << "k=" << k;
  }
}

TEST(Prop2Family, InstanceIsAlphaRestricted) {
  for (const std::int64_t k : {3, 4, 6}) {
    const Prop2Family family = prop2_instance(k);
    EXPECT_TRUE(is_alpha_restricted(family.instance, Rational(2, k)))
        << "k=" << k;
  }
}

TEST(Prop2Family, RatioStaysBelowProp3UpperBound) {
  // Sanity of the whole theory: lower-bound instances never exceed 2/alpha.
  for (const std::int64_t k : {2, 3, 4, 6, 8}) {
    EXPECT_LT(prop2_ratio_for_k(k),
              alpha_upper_bound(Rational(2, k)));
  }
}

TEST(Prop2Family, RejectsDegenerate) {
  EXPECT_THROW(prop2_instance(1), std::invalid_argument);
}

TEST(GrahamTight, RealisesTwoMinusOneOverM) {
  for (const ProcCount m : {2, 3, 4, 8}) {
    const GrahamTightFamily family = graham_tight_instance(m);
    const Schedule bad =
        LsrcScheduler(family.bad_order).schedule(family.instance).value();
    ASSERT_TRUE(bad.validate(family.instance).ok);
    EXPECT_EQ(bad.makespan(family.instance), 2 * m - 1);
    EXPECT_EQ(makespan_lower_bound(family.instance), m);
    // Ratio (2m-1)/m = 2 - 1/m = the Theorem 2 bound, exactly.
    EXPECT_EQ(makespan_ratio(bad.makespan(family.instance),
                             family.optimal_makespan),
              graham_bound(m));
  }
}

TEST(GrahamTight, LptOrderIsOptimal) {
  const GrahamTightFamily family = graham_tight_instance(5);
  const Schedule lpt =
      LsrcScheduler(ListOrder::kLpt).schedule(family.instance).value();
  EXPECT_EQ(lpt.makespan(family.instance), family.optimal_makespan);
}

TEST(FcfsBad, ExactMakespans) {
  for (const ProcCount m : {2, 3, 4, 6}) {
    const FcfsBadFamily family = fcfs_bad_instance(m);
    const Schedule schedule = FcfsScheduler().schedule(family.instance).value();
    ASSERT_TRUE(schedule.validate(family.instance).ok);
    EXPECT_EQ(schedule.makespan(family.instance), family.fcfs_makespan);
    EXPECT_EQ(makespan_lower_bound(family.instance),
              family.optimal_makespan);
    // LSRC stays within its guarantee on the same family.
    const Schedule lsrc = LsrcScheduler().schedule(family.instance).value();
    EXPECT_LE(makespan_ratio(lsrc.makespan(family.instance),
                             family.optimal_makespan),
              graham_bound(m));
  }
}

TEST(FcfsBad, RatioGrowsLinearly) {
  // (m^3 + m) / (m^2 + m) -> m - 1 + o(1): strictly increasing in m.
  Rational previous(0);
  for (const ProcCount m : {2, 4, 8, 16}) {
    const FcfsBadFamily family = fcfs_bad_instance(m);
    const Rational ratio(family.fcfs_makespan, family.optimal_makespan);
    EXPECT_GT(ratio, previous);
    previous = ratio;
  }
  EXPECT_GT(previous, Rational(13));  // m = 16: ratio ~ 15.1
}

TEST(CbfTrap, WellFormedOnlineInstance) {
  const Instance instance = cbf_trap_instance(5, 8, 20);
  EXPECT_EQ(instance.n(), 10u);
  EXPECT_TRUE(instance.has_release_times());
  EXPECT_TRUE(instance.is_rigid_only());
}

TEST(Theorem1Reduction, StructureMatchesFigure1) {
  Prng prng(3);
  const ThreePartitionInstance partition = random_strict_yes_instance(3, 20, prng);
  const Theorem1Reduction reduction = theorem1_reduction(partition, 2);
  const Instance& instance = reduction.instance;
  EXPECT_EQ(instance.m(), 1);
  EXPECT_EQ(instance.n(), 9u);
  ASSERT_EQ(instance.n_reservations(), 3u);
  // r_j = j(B+1) - 1.
  EXPECT_EQ(instance.reservation(0).start, 20);       // 1*21 - 1
  EXPECT_EQ(instance.reservation(1).start, 41);       // 2*21 - 1
  EXPECT_EQ(instance.reservation(2).start, 62);       // 3*21 - 1
  EXPECT_EQ(instance.reservation(0).p, 1);
  EXPECT_EQ(instance.reservation(2).p, 2 * 3 * 21 + 1);
  EXPECT_EQ(reduction.opt_if_solvable, 3 * 21 - 1);
  EXPECT_EQ(reduction.gap_threshold, 2 * 3 * 21);
}

TEST(Theorem1Reduction, PartitionYieldsOptimalSchedule) {
  Prng prng(5);
  const ThreePartitionInstance partition = random_strict_yes_instance(4, 24, prng);
  const ThreePartitionSolution solution = solve_three_partition(partition);
  ASSERT_TRUE(solution.solvable);
  const Theorem1Reduction reduction = theorem1_reduction(partition, 3);
  const Schedule schedule = schedule_from_partition(reduction, solution.groups);
  ASSERT_TRUE(schedule.validate(reduction.instance).ok);
  EXPECT_EQ(schedule.makespan(reduction.instance), reduction.opt_if_solvable);
}

TEST(Theorem1Reduction, ScheduleBelowThresholdYieldsPartition) {
  Prng prng(7);
  const ThreePartitionInstance partition = random_strict_yes_instance(3, 16, prng);
  const ThreePartitionSolution solution = solve_three_partition(partition);
  ASSERT_TRUE(solution.solvable);
  const Theorem1Reduction reduction = theorem1_reduction(partition, 2);
  const Schedule schedule = schedule_from_partition(reduction, solution.groups);
  const auto recovered =
      partition_from_schedule(reduction, partition, schedule);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(is_valid_three_partition(partition, *recovered));
}

TEST(Theorem1Reduction, LateScheduleYieldsNoPartition) {
  Prng prng(9);
  const ThreePartitionInstance partition = random_strict_yes_instance(3, 16, prng);
  const Theorem1Reduction reduction = theorem1_reduction(partition, 2);
  // Schedule everything after the giant reservation: feasible but useless.
  Schedule late(reduction.instance.n());
  Time cursor = reduction.instance.reservation(2).end();
  for (const Job& job : reduction.instance.jobs()) {
    late.set_start(job.id, cursor);
    cursor += job.p;
  }
  ASSERT_TRUE(late.validate(reduction.instance).ok);
  EXPECT_FALSE(
      partition_from_schedule(reduction, partition, late).has_value());
}

TEST(StrictYesInstance, ItemsWithinOpenQuarterHalf) {
  Prng prng(11);
  const ThreePartitionInstance instance = random_strict_yes_instance(5, 40, prng);
  EXPECT_TRUE(instance.well_formed());
  for (const std::int64_t item : instance.items) {
    EXPECT_GT(item * 4, 40);  // item > B/4
    EXPECT_LT(item * 2, 40);  // item < B/2
  }
}

TEST(GapReservation, AppendsFullWidthBlock) {
  const Instance base(4, {Job{0, 2, 5, 0, ""}});
  const Instance gapped = add_gap_reservation(base, 10, 100);
  ASSERT_EQ(gapped.n_reservations(), 1u);
  EXPECT_EQ(gapped.reservation(0).q, 4);
  EXPECT_EQ(gapped.reservation(0).start, 10);
  EXPECT_EQ(availability_at(gapped, 10), 0);
}

TEST(GapReservation, RejectsOverlap) {
  const Instance base(4, {Job{0, 2, 5, 0, ""}},
                      {Reservation{0, 1, 20, 0, ""}});
  EXPECT_THROW(add_gap_reservation(base, 10, 5), std::invalid_argument);
}

}  // namespace
}  // namespace resched
