#include "exact/three_partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace resched {
namespace {

TEST(ThreePartition, WellFormedChecks) {
  EXPECT_TRUE((ThreePartitionInstance{{1, 2, 3}, 6}).well_formed());
  EXPECT_FALSE((ThreePartitionInstance{{1, 2}, 3}).well_formed());     // not 3k
  EXPECT_FALSE((ThreePartitionInstance{{1, 2, 4}, 6}).well_formed());  // sum
  EXPECT_FALSE((ThreePartitionInstance{{0, 3, 3}, 6}).well_formed());  // <= 0
  EXPECT_FALSE((ThreePartitionInstance{{}, 0}).well_formed());
}

TEST(ThreePartition, SolvesTrivialYes) {
  const ThreePartitionInstance instance{{1, 2, 3}, 6};
  const ThreePartitionSolution solution = solve_three_partition(instance);
  ASSERT_TRUE(solution.solvable);
  EXPECT_TRUE(is_valid_three_partition(instance, solution.groups));
}

TEST(ThreePartition, SolvesTwoGroupYes) {
  // {4,4,4} and {5,5,2}: target 12.
  const ThreePartitionInstance instance{{4, 5, 4, 5, 4, 2}, 12};
  const ThreePartitionSolution solution = solve_three_partition(instance);
  ASSERT_TRUE(solution.solvable);
  EXPECT_TRUE(is_valid_three_partition(instance, solution.groups));
}

TEST(ThreePartition, DetectsNo) {
  // Sum is 2*9 = 18 but no triple sums to 9: items {1,1,1,5,5,5}:
  // triples: 1+1+1=3, 1+1+5=7, 1+5+5=11, 5+5+5=15 -- no 9.
  const ThreePartitionInstance instance{{1, 1, 1, 5, 5, 5}, 9};
  EXPECT_FALSE(solve_three_partition(instance).solvable);
}

TEST(ThreePartition, ValidatorRejectsBadGroupings) {
  const ThreePartitionInstance instance{{1, 2, 3, 1, 2, 3}, 6};
  // Wrong count.
  EXPECT_FALSE(is_valid_three_partition(instance, {{0, 1, 2}}));
  // Reused index.
  EXPECT_FALSE(
      is_valid_three_partition(instance, {{0, 1, 2}, {0, 4, 5}}));
  // Wrong sum.
  EXPECT_FALSE(
      is_valid_three_partition(instance, {{0, 1, 3}, {2, 4, 5}}));
  // Correct one accepted.
  EXPECT_TRUE(
      is_valid_three_partition(instance, {{0, 1, 2}, {3, 4, 5}}));
}

TEST(ThreePartition, RandomYesInstancesAreSolvable) {
  Prng prng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const ThreePartitionInstance instance = random_yes_instance(4, 20, prng);
    EXPECT_TRUE(instance.well_formed());
    const ThreePartitionSolution solution = solve_three_partition(instance);
    EXPECT_TRUE(solution.solvable);
    EXPECT_TRUE(is_valid_three_partition(instance, solution.groups));
  }
}

TEST(ThreePartition, RandomNoInstancesAreUnsolvable) {
  Prng prng(6);
  const auto instance = random_no_instance(3, 6, prng);
  if (instance.has_value()) {
    EXPECT_TRUE(instance->well_formed());
    EXPECT_FALSE(solve_three_partition(*instance).solvable);
  }
}

TEST(ThreePartition, NodeLimitThrows) {
  Prng prng(7);
  const ThreePartitionInstance instance = random_yes_instance(8, 100, prng);
  EXPECT_THROW(solve_three_partition(instance, 2), std::invalid_argument);
}

TEST(ThreePartition, MalformedInstanceThrows) {
  EXPECT_THROW(solve_three_partition(ThreePartitionInstance{{1, 2}, 3}),
               std::invalid_argument);
}

TEST(ThreePartition, LargerYesInstanceSolvedQuickly) {
  Prng prng(8);
  const ThreePartitionInstance instance = random_yes_instance(10, 50, prng);
  const ThreePartitionSolution solution = solve_three_partition(instance);
  EXPECT_TRUE(solution.solvable);
  EXPECT_TRUE(is_valid_three_partition(instance, solution.groups));
}

TEST(ThreePartition, GroupCount) {
  EXPECT_EQ((ThreePartitionInstance{{1, 2, 3, 1, 2, 3}, 6}).groups(), 2u);
}

}  // namespace
}  // namespace resched
