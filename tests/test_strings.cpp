#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace resched {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(Strings, SplitSingleField) {
  const auto fields = split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(Strings, SplitEmptyInput) {
  const auto fields = split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(Strings, SplitWsDropsRuns) {
  const auto fields = split_ws("  a \t b\n  c  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Strings, SplitWsEmpty) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t\n").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace resched
