// Property suite for Theorem 2 (the Graham / Garey-Graham bound revisited in
// the paper's appendix): for ANY list order, C_LSRC <= (2 - 1/m) C* on
// RIGIDSCHEDULING instances.
#include <gtest/gtest.h>

#include "algorithms/lsrc.hpp"
#include "bounds/checker.hpp"
#include "bounds/guarantees.hpp"
#include "bounds/lower_bounds.hpp"
#include "exact/bnb.hpp"
#include "generators/adversarial.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

// Exact check on small instances: every order, every seed, against B&B.
struct GrahamCase {
  std::uint64_t seed;
  std::size_t n;
  ProcCount m;
};

class GrahamExact : public ::testing::TestWithParam<GrahamCase> {};

TEST_P(GrahamExact, AllOrdersWithinBoundOfExactOptimum) {
  const GrahamCase param = GetParam();
  WorkloadConfig config;
  config.n = param.n;
  config.m = param.m;
  config.p_max = 10;
  const Instance instance = random_workload(config, param.seed);
  const Time optimum = optimal_makespan(instance);
  const Rational bound = graham_bound(instance.m());
  for (const ListOrder order : all_list_orders()) {
    const Schedule schedule = LsrcScheduler(order, 3).schedule(instance).value();
    ASSERT_TRUE(schedule.validate(instance).ok);
    const Rational ratio =
        makespan_ratio(schedule.makespan(instance), optimum);
    EXPECT_LE(ratio, bound)
        << to_string(order) << " ratio " << ratio.to_string() << " vs bound "
        << bound.to_string() << " (seed " << param.seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, GrahamExact,
    ::testing::Values(GrahamCase{1, 5, 2}, GrahamCase{2, 5, 3},
                      GrahamCase{3, 6, 2}, GrahamCase{4, 6, 4},
                      GrahamCase{5, 7, 3}, GrahamCase{6, 7, 2},
                      GrahamCase{7, 6, 3}, GrahamCase{8, 5, 4},
                      GrahamCase{9, 7, 4}, GrahamCase{10, 6, 5}));

// Larger instances: sound check against the certified lower bound via the
// guarantee checker (must never report kViolated; kProven expected in the
// overwhelming majority, but kInconclusive is acceptable since LB < C*).
class GrahamLarge : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GrahamLarge, CheckerNeverReportsViolation) {
  WorkloadConfig config;
  config.n = 120;
  config.m = 32;
  config.p_max = 50;
  const Instance instance = random_workload(config, GetParam());
  for (const ListOrder order :
       {ListOrder::kSubmission, ListOrder::kLpt, ListOrder::kRandom}) {
    const Schedule schedule = LsrcScheduler(order, 11).schedule(instance).value();
    const GuaranteeReport report = check_guarantee(instance, schedule);
    EXPECT_NE(report.compliance, Compliance::kViolated)
        << to_string(order) << ": " << report.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrahamLarge,
                         ::testing::Values(401, 402, 403, 404, 405, 406));

// Tightness: the adversarial family attains the bound exactly, so the bound
// constant cannot be improved.
TEST(GrahamTightness, FamilyAttainsBoundExactly) {
  for (const ProcCount m : {2, 3, 5, 8, 13}) {
    const GrahamTightFamily family = graham_tight_instance(m);
    const Schedule bad =
        LsrcScheduler(family.bad_order).schedule(family.instance).value();
    EXPECT_EQ(makespan_ratio(bad.makespan(family.instance),
                             family.optimal_makespan),
              graham_bound(m));
  }
}

// A structural consequence of Lemma 1: integrating
// r(t) + r(t + p_max) >= m + 1 over t in [0, C - p_max) bounds the makespan
// by C_LSRC <= p_max + 2 W / (m + 1) -- checked directly on every order.
class GrahamStructural : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GrahamStructural, LemmaOneIntegralForm) {
  WorkloadConfig config;
  config.n = 60;
  config.m = 16;
  const Instance instance = random_workload(config, GetParam());
  for (const ListOrder order :
       {ListOrder::kSubmission, ListOrder::kWidest, ListOrder::kRandom}) {
    const Schedule schedule = LsrcScheduler(order, 13).schedule(instance).value();
    const double lhs = static_cast<double>(schedule.makespan(instance));
    const double rhs =
        static_cast<double>(instance.p_max()) +
        2.0 * static_cast<double>(instance.total_work()) /
            static_cast<double>(instance.m() + 1);
    EXPECT_LE(lhs, rhs + 1e-9) << to_string(order);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrahamStructural,
                         ::testing::Values(501, 502, 503, 504, 505));

}  // namespace
}  // namespace resched
