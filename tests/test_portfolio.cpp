#include "algorithms/portfolio.hpp"

#include <gtest/gtest.h>

#include "algorithms/lsrc.hpp"
#include "bounds/checker.hpp"
#include "bounds/guarantees.hpp"
#include "bounds/lower_bounds.hpp"
#include "exact/bnb.hpp"
#include "generators/adversarial.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

Instance reserved_workload(std::uint64_t seed, std::size_t n = 30,
                           ProcCount m = 12) {
  WorkloadConfig config;
  config.n = n;
  config.m = m;
  config.alpha = Rational(1, 2);
  const Instance base = random_workload(config, seed);
  AlphaReservationConfig resa;
  resa.alpha = Rational(1, 2);
  return with_alpha_restricted_reservations(base, resa, seed + 77);
}

TEST(Portfolio, NeverWorseThanAnySingleOrder) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Instance instance = reserved_workload(seed);
    const Schedule best = PortfolioScheduler(2, seed).schedule(instance).value();
    ASSERT_TRUE(best.validate(instance).ok);
    for (const ListOrder order : all_list_orders()) {
      const Schedule single = LsrcScheduler(order, seed).schedule(instance).value();
      EXPECT_LE(best.makespan(instance), single.makespan(instance))
          << to_string(order) << " seed " << seed;
    }
  }
}

TEST(Portfolio, DefusesTheProp2Family) {
  // The portfolio tries LPT among its orders, which is optimal on the
  // adversarial family -- the worst case of a *fixed* bad order vanishes.
  const Prop2Family family = prop2_instance(6);
  const Schedule schedule = PortfolioScheduler().schedule(family.instance).value();
  EXPECT_EQ(schedule.makespan(family.instance), family.optimal_makespan);
}

TEST(Portfolio, Deterministic) {
  const Instance instance = reserved_workload(9);
  EXPECT_EQ(PortfolioScheduler(3, 5).schedule(instance).value(),
            PortfolioScheduler(3, 5).schedule(instance).value());
}

TEST(Portfolio, ZeroRestartsStillCoversStandardOrders) {
  const Instance instance = reserved_workload(10);
  const Schedule schedule = PortfolioScheduler(0, 1).schedule(instance).value();
  EXPECT_TRUE(schedule.validate(instance).ok);
}

TEST(Portfolio, InheritsGuarantees) {
  const Instance instance = reserved_workload(11);
  const Schedule schedule = PortfolioScheduler().schedule(instance).value();
  const GuaranteeReport report = check_guarantee(instance, schedule);
  EXPECT_NE(report.compliance, Compliance::kViolated);
}

TEST(LocalSearch, NeverWorseThanItsStartingOrder) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const Instance instance = reserved_workload(seed);
    const Schedule improved =
        LocalSearchScheduler(150, ListOrder::kSubmission, seed)
            .schedule(instance).value();
    const Schedule start = LsrcScheduler(ListOrder::kSubmission, seed)
                               .schedule(instance).value();
    ASSERT_TRUE(improved.validate(instance).ok);
    EXPECT_LE(improved.makespan(instance), start.makespan(instance));
  }
}

TEST(LocalSearch, FindsTheOptimumOnSmallInstances) {
  // With a decent budget, hill-climbing from LPT reaches the exact optimum
  // on small instances reasonably often; assert it gets within the Graham
  // bound and at least matches LPT.
  WorkloadConfig config;
  config.n = 7;
  config.m = 3;
  config.p_max = 9;
  const Instance instance = random_workload(config, 31);
  const Time optimum = optimal_makespan(instance);
  const Schedule schedule =
      LocalSearchScheduler(400, ListOrder::kLpt, 1).schedule(instance).value();
  EXPECT_GE(schedule.makespan(instance), optimum);
  EXPECT_LE(makespan_ratio(schedule.makespan(instance), optimum),
            graham_bound(instance.m()));
}

TEST(LocalSearch, DeterministicGivenSeedAndBudget) {
  const Instance instance = reserved_workload(41);
  EXPECT_EQ(LocalSearchScheduler(100, ListOrder::kLpt, 7).schedule(instance).value(),
            LocalSearchScheduler(100, ListOrder::kLpt, 7).schedule(instance).value());
}

TEST(LocalSearch, ZeroIterationsEqualsInitialOrder) {
  const Instance instance = reserved_workload(51);
  EXPECT_EQ(LocalSearchScheduler(0, ListOrder::kLpt, 1).schedule(instance).value(),
            LsrcScheduler(ListOrder::kLpt, 1).schedule(instance).value());
}

TEST(LocalSearch, TinyInstances) {
  const Instance empty(2, {});
  EXPECT_EQ(LocalSearchScheduler().schedule(empty).value().makespan(empty), 0);
  const Instance one(2, {Job{0, 1, 5, 0, ""}});
  EXPECT_EQ(LocalSearchScheduler().schedule(one).value().makespan(one), 5);
}

}  // namespace
}  // namespace resched
