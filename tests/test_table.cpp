#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rational.hpp"

namespace resched {
namespace {

TEST(Table, HeaderOnly) {
  Table table({"a", "bb"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| a | bb |"), std::string::npos);
  EXPECT_EQ(table.rows(), 0u);
}

TEST(Table, AlignsColumns) {
  Table table({"x", "value"});
  table.add_row({"longer", "1"});
  table.add_row({"s", "22"});
  const std::string out = table.to_string();
  // Every line has the same length.
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, MixedCellTypesViaAdd) {
  Table table({"name", "count", "ratio"});
  table.add("row", 42, 3.14159);
  EXPECT_EQ(table.rows(), 1u);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.1416"), std::string::npos);  // 4-digit default
}

TEST(Table, RationalCellsViaToString) {
  Table table({"bound"});
  table.add(Rational(31, 6));
  EXPECT_NE(table.to_string().find("31/6"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, PrintMatchesToString) {
  Table table({"h"});
  table.add_row({"v"});
  std::ostringstream os;
  table.print(os);
  EXPECT_EQ(os.str(), table.to_string());
}

}  // namespace
}  // namespace resched
