#include "util/require.hpp"

#include <gtest/gtest.h>

namespace resched {
namespace {

TEST(Require, PassingConditionIsSilent) {
  EXPECT_NO_THROW(RESCHED_REQUIRE(1 + 1 == 2));
  EXPECT_NO_THROW(RESCHED_REQUIRE_MSG(true, "never shown"));
  EXPECT_NO_THROW(RESCHED_CHECK(true));
}

TEST(Require, FailureThrowsInvalidArgument) {
  EXPECT_THROW(RESCHED_REQUIRE(1 == 2), std::invalid_argument);
  EXPECT_THROW(RESCHED_REQUIRE_MSG(false, "context"), std::invalid_argument);
}

TEST(Require, CheckThrowsLogicError) {
  EXPECT_THROW(RESCHED_CHECK(false), std::logic_error);
  EXPECT_THROW(RESCHED_CHECK_MSG(false, "internal"), std::logic_error);
}

TEST(Require, MessageContainsExpressionAndContext) {
  try {
    RESCHED_REQUIRE_MSG(2 < 1, "the context string");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("the context string"), std::string::npos);
    EXPECT_NE(what.find("test_require.cpp"), std::string::npos);
  }
}

TEST(Require, CheckMessageDistinguishesInvariant) {
  try {
    RESCHED_CHECK_MSG(false, "broke");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& error) {
    EXPECT_NE(std::string(error.what()).find("invariant violated"),
              std::string::npos);
  }
}

TEST(Require, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  RESCHED_REQUIRE((++evaluations, true));
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace resched
