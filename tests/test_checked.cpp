#include "util/checked.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace resched {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(Checked, AddBasic) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_add(-2, 3), 1);
  EXPECT_EQ(checked_add(kMax - 1, 1), kMax);
}

TEST(Checked, AddOverflowThrows) {
  EXPECT_THROW(checked_add(kMax, 1), std::overflow_error);
  EXPECT_THROW(checked_add(kMin, -1), std::overflow_error);
}

TEST(Checked, SubBasic) {
  EXPECT_EQ(checked_sub(5, 3), 2);
  EXPECT_EQ(checked_sub(kMin + 1, 1), kMin);
}

TEST(Checked, SubOverflowThrows) {
  EXPECT_THROW(checked_sub(kMin, 1), std::overflow_error);
  EXPECT_THROW(checked_sub(kMax, -1), std::overflow_error);
}

TEST(Checked, MulBasic) {
  EXPECT_EQ(checked_mul(6, 7), 42);
  EXPECT_EQ(checked_mul(-6, 7), -42);
  EXPECT_EQ(checked_mul(0, kMax), 0);
}

TEST(Checked, MulOverflowThrows) {
  EXPECT_THROW(checked_mul(kMax / 2 + 1, 2), std::overflow_error);
  EXPECT_THROW(checked_mul(kMin, -1), std::overflow_error);
}

TEST(Checked, NegHandlesIntMin) {
  EXPECT_EQ(checked_neg(5), -5);
  EXPECT_EQ(checked_neg(-5), 5);
  EXPECT_THROW(checked_neg(kMin), std::overflow_error);
}

TEST(Checked, FloorDivRoundsTowardNegativeInfinity) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 3), 2);
}

TEST(Checked, CeilDivRoundsTowardPositiveInfinity) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(7, -2), -3);
  EXPECT_EQ(ceil_div(-7, -2), 4);
  EXPECT_EQ(ceil_div(6, 3), 2);
}

TEST(Checked, DivisionByZeroThrows) {
  EXPECT_THROW(floor_div(1, 0), std::domain_error);
  EXPECT_THROW(ceil_div(1, 0), std::domain_error);
}

TEST(Checked, GcdNonNegative) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
}

// Floor/ceil division must be consistent: ceil(a/b) - floor(a/b) is 1 when b
// does not divide a and 0 otherwise.
TEST(Checked, FloorCeilConsistency) {
  for (std::int64_t a = -20; a <= 20; ++a) {
    for (std::int64_t b = -5; b <= 5; ++b) {
      if (b == 0) continue;
      const std::int64_t diff = ceil_div(a, b) - floor_div(a, b);
      EXPECT_EQ(diff, a % b == 0 ? 0 : 1) << "a=" << a << " b=" << b;
    }
  }
}

}  // namespace
}  // namespace resched
