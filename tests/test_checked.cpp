#include "util/checked.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "exact/three_partition.hpp"
#include "generators/adversarial.hpp"

namespace resched {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(Checked, AddBasic) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_add(-2, 3), 1);
  EXPECT_EQ(checked_add(kMax - 1, 1), kMax);
}

TEST(Checked, AddOverflowThrows) {
  EXPECT_THROW(checked_add(kMax, 1), std::overflow_error);
  EXPECT_THROW(checked_add(kMin, -1), std::overflow_error);
}

TEST(Checked, SubBasic) {
  EXPECT_EQ(checked_sub(5, 3), 2);
  EXPECT_EQ(checked_sub(kMin + 1, 1), kMin);
}

TEST(Checked, SubOverflowThrows) {
  EXPECT_THROW(checked_sub(kMin, 1), std::overflow_error);
  EXPECT_THROW(checked_sub(kMax, -1), std::overflow_error);
}

TEST(Checked, MulBasic) {
  EXPECT_EQ(checked_mul(6, 7), 42);
  EXPECT_EQ(checked_mul(-6, 7), -42);
  EXPECT_EQ(checked_mul(0, kMax), 0);
}

TEST(Checked, MulOverflowThrows) {
  EXPECT_THROW(checked_mul(kMax / 2 + 1, 2), std::overflow_error);
  EXPECT_THROW(checked_mul(kMin, -1), std::overflow_error);
}

TEST(Checked, NegHandlesIntMin) {
  EXPECT_EQ(checked_neg(5), -5);
  EXPECT_EQ(checked_neg(-5), 5);
  EXPECT_THROW(checked_neg(kMin), std::overflow_error);
}

TEST(Checked, FloorDivRoundsTowardNegativeInfinity) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 3), 2);
}

TEST(Checked, CeilDivRoundsTowardPositiveInfinity) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(7, -2), -3);
  EXPECT_EQ(ceil_div(-7, -2), 4);
  EXPECT_EQ(ceil_div(6, 3), 2);
}

TEST(Checked, DivisionByZeroThrows) {
  EXPECT_THROW(floor_div(1, 0), std::domain_error);
  EXPECT_THROW(ceil_div(1, 0), std::domain_error);
}

TEST(Checked, GcdNonNegative) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
}

// The Theorem 1 reduction computes B + 1, k (B + 1) and rho k (B + 1) from
// caller-supplied instances. These pin the checked_* routing: a well-formed
// 3-PARTITION instance whose target sits at the int64 boundary must fault
// loudly instead of wrapping into a bogus (and plausible-looking) reduction.
TEST(CheckedRouting, Theorem1ReductionHugeTargetThrows) {
  // k = 1, items {B - 2, 1, 1} sum to exactly B = INT64_MAX: well-formed,
  // but B + 1 overflows in the very first reduction step.
  ThreePartitionInstance partition;
  partition.items = {kMax - 2, 1, 1};
  partition.target = kMax;
  ASSERT_TRUE(partition.well_formed());
  EXPECT_THROW(theorem1_reduction(partition, 1), std::overflow_error);
}

TEST(CheckedRouting, Theorem1ReductionHugeRhoThrows) {
  // Moderate B, absurd rho: the gap-threshold product rho * k * (B + 1)
  // must throw rather than wrap.
  ThreePartitionInstance partition;
  partition.items = {5, 5, 5};
  partition.target = 15;
  ASSERT_TRUE(partition.well_formed());
  EXPECT_THROW(theorem1_reduction(partition, kMax / 8),
               std::overflow_error);
}

TEST(CheckedRouting, Theorem1ReductionNormalValuesUnchanged) {
  // The checked rewrite must not perturb in-range arithmetic: the Fig. 1
  // formulas k (B + 1) - 1 and rho k (B + 1) hold exactly.
  ThreePartitionInstance partition;
  partition.items = {5, 5, 5, 4, 5, 6};
  partition.target = 15;
  ASSERT_TRUE(partition.well_formed());
  const auto reduction = theorem1_reduction(partition, 3);
  EXPECT_EQ(reduction.k, 2);
  EXPECT_EQ(reduction.B, 15);
  EXPECT_EQ(reduction.opt_if_solvable, 2 * 16 - 1);
  EXPECT_EQ(reduction.gap_threshold, 3 * 2 * 16);
  EXPECT_EQ(reduction.instance.jobs().size(), 6u);
  EXPECT_EQ(reduction.instance.reservations().size(), 2u);
}

// Floor/ceil division must be consistent: ceil(a/b) - floor(a/b) is 1 when b
// does not divide a and 0 otherwise.
TEST(Checked, FloorCeilConsistency) {
  for (std::int64_t a = -20; a <= 20; ++a) {
    for (std::int64_t b = -5; b <= 5; ++b) {
      if (b == 0) continue;
      const std::int64_t diff = ceil_div(a, b) - floor_div(a, b);
      EXPECT_EQ(diff, a % b == 0 ? 0 : 1) << "a=" << a << " b=" << b;
    }
  }
}

}  // namespace
}  // namespace resched
