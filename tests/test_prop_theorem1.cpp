// Property suite for Theorem 1: scheduling with unrestricted reservations
// cannot be approximated. The 3-PARTITION reduction (Figure 1) is exercised
// in both directions, and the gap behaviour is demonstrated on the actual
// heuristics.
#include <gtest/gtest.h>

#include "algorithms/conservative_bf.hpp"
#include "algorithms/fcfs.hpp"
#include "algorithms/lsrc.hpp"
#include "bounds/lower_bounds.hpp"
#include "exact/bnb.hpp"
#include "generators/adversarial.hpp"

namespace resched {
namespace {

// Forward direction: a YES instance admits a schedule of makespan
// k(B+1) - 1, and B&B finds exactly that optimum.
class Theorem1Forward : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Forward, YesInstanceOptimumEqualsGapPacking) {
  Prng prng(GetParam());
  const ThreePartitionInstance partition =
      random_strict_yes_instance(3, 16, prng);
  const Theorem1Reduction reduction = theorem1_reduction(partition, 2);
  // Constructive: the known partition gives the optimal makespan.
  const ThreePartitionSolution solution = solve_three_partition(partition);
  ASSERT_TRUE(solution.solvable);
  const Schedule constructed =
      schedule_from_partition(reduction, solution.groups);
  ASSERT_TRUE(constructed.validate(reduction.instance).ok);
  EXPECT_EQ(constructed.makespan(reduction.instance),
            reduction.opt_if_solvable);
  // Exact solver agrees (9 unit-width jobs on one machine).
  EXPECT_EQ(optimal_makespan(reduction.instance),
            reduction.opt_if_solvable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Forward,
                         ::testing::Values(901, 902, 903, 904));

// Backward direction: ANY feasible schedule below the gap threshold encodes
// a valid partition -- including those produced by our heuristics, whenever
// they happen to beat the threshold.
class Theorem1Backward : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Backward, SubThresholdSchedulesEncodePartitions) {
  Prng prng(GetParam());
  const ThreePartitionInstance partition =
      random_strict_yes_instance(3, 20, prng);
  const Theorem1Reduction reduction = theorem1_reduction(partition, 2);
  for (const ListOrder order : all_list_orders()) {
    const Schedule schedule =
        LsrcScheduler(order, GetParam()).schedule(reduction.instance).value();
    ASSERT_TRUE(schedule.validate(reduction.instance).ok);
    const auto recovered =
        partition_from_schedule(reduction, partition, schedule);
    if (schedule.makespan(reduction.instance) < reduction.gap_threshold) {
      // The theorem's argument: sub-threshold => valid partition.
      ASSERT_TRUE(recovered.has_value()) << to_string(order);
      EXPECT_TRUE(is_valid_three_partition(partition, *recovered));
    } else {
      EXPECT_FALSE(recovered.has_value()) << to_string(order);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Backward,
                         ::testing::Values(911, 912, 913, 914, 915));

// The gap itself: whenever a heuristic misses the packing, its makespan
// explodes past the huge reservation -- the ratio is then at least rho + ~1,
// refuting any presumed rho-approximation. This drives bench_fig1.
TEST(Theorem1Gap, MissingThePackingCostsAtLeastRho) {
  Prng prng(77);
  int observed_misses = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const ThreePartitionInstance partition =
        random_strict_yes_instance(3, 24, prng);
    if (!solve_three_partition(partition).solvable) continue;
    const std::int64_t rho = 3;
    const Theorem1Reduction reduction = theorem1_reduction(partition, rho);
    const Schedule greedy = FcfsScheduler().schedule(reduction.instance).value();
    ASSERT_TRUE(greedy.validate(reduction.instance).ok);
    const Time makespan = greedy.makespan(reduction.instance);
    if (makespan >= reduction.gap_threshold) {
      ++observed_misses;
      // Past the last reservation: makespan > (rho+1) k (B+1) - something;
      // in ratio terms, at least rho times the optimum.
      const Rational ratio =
          makespan_ratio(makespan, reduction.opt_if_solvable);
      EXPECT_GE(ratio, Rational(rho));
    }
  }
  // FCFS in submission order essentially never solves 3-PARTITION by luck
  // on these instances; the gap must have been observed.
  EXPECT_GT(observed_misses, 0);
}

// n' = 1 variant: one full-width reservation right after a target makespan T
// turns "is OPT <= T?" into a gap question (second reduction of Theorem 1).
TEST(Theorem1SingleReservation, GapAmplifiesDecisionProblem) {
  // PARTITION-like rigid instance: durations {3,3,2,2,2} on 2 machines,
  // OPT = 6.
  const Instance rigid(2, {Job{0, 1, 3, 0, ""}, Job{1, 1, 3, 0, ""},
                           Job{2, 1, 2, 0, ""}, Job{3, 1, 2, 0, ""},
                           Job{4, 1, 2, 0, ""}});
  const Time target = 6;
  const Instance gapped = add_gap_reservation(rigid, target, 1000);
  // The optimum threads through the gap: still 6.
  EXPECT_EQ(optimal_makespan(gapped), target);
  // Any schedule that misses the perfect packing lands after the block:
  // makespan > 1000. LSRC with an adversarial order demonstrates the jump.
  const Schedule bad =
      LsrcScheduler(std::vector<JobId>{2, 3, 4, 0, 1}).schedule(gapped).value();
  ASSERT_TRUE(bad.validate(gapped).ok);
  EXPECT_GT(bad.makespan(gapped), 1000);
}

}  // namespace
}  // namespace resched
