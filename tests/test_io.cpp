#include "core/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace resched {
namespace {

Instance sample_instance() {
  return Instance(8,
                  {Job{0, 2, 10, 0, "alpha"}, Job{1, 4, 5, 3, "two words"},
                   Job{2, 1, 7, 0, ""}},
                  {Reservation{0, 3, 6, 2, "maint window"}});
}

TEST(NativeFormat, RoundTrip) {
  const Instance original = sample_instance();
  std::stringstream stream;
  save_instance(original, stream);
  const Instance loaded = load_instance(stream);
  EXPECT_EQ(loaded, original);
}

TEST(NativeFormat, PreservesQuotedNames) {
  const Instance original = sample_instance();
  std::stringstream stream;
  save_instance(original, stream);
  const Instance loaded = load_instance(stream);
  EXPECT_EQ(loaded.job(1).name, "two words");
  EXPECT_EQ(loaded.reservation(0).name, "maint window");
}

TEST(NativeFormat, SkipsCommentsAndBlanks) {
  std::istringstream is(
      "# a comment\n\nm 4\n# another\njob 0 2 3 0\n");
  const Instance instance = load_instance(is);
  EXPECT_EQ(instance.m(), 4);
  EXPECT_EQ(instance.n(), 1u);
}

TEST(NativeFormat, MissingMachineCountThrows) {
  std::istringstream is("job 0 1 1 0\n");
  EXPECT_THROW(load_instance(is), std::invalid_argument);
}

TEST(NativeFormat, UnknownRecordThrows) {
  std::istringstream is("m 2\nwat 1 2 3 4\n");
  EXPECT_THROW(load_instance(is), std::invalid_argument);
}

TEST(NativeFormat, MalformedIntegerThrows) {
  std::istringstream is("m 2\njob 0 x 1 0\n");
  EXPECT_THROW(load_instance(is), std::invalid_argument);
}

TEST(NativeFormat, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/resched_io_test.inst";
  const Instance original = sample_instance();
  save_instance_file(original, path);
  EXPECT_EQ(load_instance_file(path), original);
}

TEST(NativeFormat, MissingFileThrows) {
  EXPECT_THROW(load_instance_file("/nonexistent/nowhere.inst"),
               std::invalid_argument);
}

TEST(Swf, RoundTripJobsAndReservations) {
  const Instance original = sample_instance();
  std::stringstream stream;
  write_swf(original, stream);
  const Instance loaded = read_swf(stream);
  EXPECT_EQ(loaded.m(), original.m());
  ASSERT_EQ(loaded.n(), original.n());
  for (std::size_t i = 0; i < original.n(); ++i) {
    EXPECT_EQ(loaded.jobs()[i].q, original.jobs()[i].q);
    EXPECT_EQ(loaded.jobs()[i].p, original.jobs()[i].p);
    EXPECT_EQ(loaded.jobs()[i].release, original.jobs()[i].release);
  }
  ASSERT_EQ(loaded.n_reservations(), original.n_reservations());
  EXPECT_EQ(loaded.reservation(0).q, original.reservation(0).q);
  EXPECT_EQ(loaded.reservation(0).start, original.reservation(0).start);
}

TEST(Swf, ReadableByPlainSwfConsumers) {
  // The ;RESERVATION extension lives in comments: job lines alone must parse
  // as standard 18-column SWF.
  const Instance original = sample_instance();
  std::stringstream stream;
  write_swf(original, stream);
  std::string line;
  int job_lines = 0;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == ';') continue;
    std::istringstream fields(line);
    int count = 0;
    std::string field;
    while (fields >> field) ++count;
    EXPECT_EQ(count, 18);
    ++job_lines;
  }
  EXPECT_EQ(job_lines, 3);
}

TEST(Swf, MissingMaxProcsThrows) {
  std::istringstream is("1 0 -1 5 2 -1 -1 2 5 -1 -1 -1 -1 -1 -1 -1 -1 -1\n");
  EXPECT_THROW(read_swf(is), std::invalid_argument);
}

TEST(ScheduleCsv, RoundTrip) {
  const Instance instance = sample_instance();
  Schedule schedule(instance.n());
  schedule.set_start(0, 0);
  schedule.set_start(1, 10);
  schedule.set_start(2, 3);
  std::stringstream stream;
  save_schedule_csv(instance, schedule, stream);
  const Schedule loaded = load_schedule_csv(instance, stream);
  EXPECT_EQ(loaded, schedule);
}

TEST(ScheduleCsv, HeaderEnforced) {
  const Instance instance = sample_instance();
  std::istringstream is("not,a,header\n0,0,10\n");
  EXPECT_THROW(load_schedule_csv(instance, is), std::invalid_argument);
}

TEST(ScheduleCsv, EndColumnMatchesStartPlusDuration) {
  const Instance instance = sample_instance();
  Schedule schedule(instance.n());
  schedule.set_start(0, 2);
  schedule.set_start(1, 0);
  schedule.set_start(2, 0);
  std::stringstream stream;
  save_schedule_csv(instance, schedule, stream);
  const std::string text = stream.str();
  EXPECT_NE(text.find("0,2,12"), std::string::npos);  // p = 10
}

}  // namespace
}  // namespace resched
