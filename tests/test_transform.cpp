#include "generators/transform.hpp"

#include <gtest/gtest.h>

#include "algorithms/lsrc.hpp"
#include "core/availability.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

Instance staircase_instance(std::uint64_t seed = 1) {
  WorkloadConfig config;
  config.n = 12;
  config.m = 10;
  config.alpha = Rational(1, 2);
  const Instance base = random_workload(config, seed);
  StaircaseConfig stairs;
  stairs.steps = 3;
  stairs.max_initial = 5;
  return with_nonincreasing_reservations(base, stairs, seed + 100);
}

TEST(StaircaseDecomposition, ReconstructsProfile) {
  const Instance instance = staircase_instance();
  const StepProfile u = unavailability_profile(instance);
  const std::vector<Reservation> blocks = staircase_to_reservations(u);
  StepProfile rebuilt(0);
  for (const Reservation& block : blocks)
    rebuilt.add(block.start, block.end(), block.q);
  EXPECT_EQ(rebuilt, u);
  for (const Reservation& block : blocks) EXPECT_EQ(block.start, 0);
}

TEST(StaircaseDecomposition, RejectsNonMonotone) {
  StepProfile u(0);
  u.add(5, 10, 3);  // increases at 5
  EXPECT_THROW(staircase_to_reservations(u), std::invalid_argument);
}

TEST(StaircaseDecomposition, RejectsNonVanishing) {
  StepProfile u(2);  // constant 2 forever
  EXPECT_THROW(staircase_to_reservations(u), std::invalid_argument);
}

TEST(StaircaseDecomposition, EmptyProfileGivesNoBlocks) {
  EXPECT_TRUE(staircase_to_reservations(StepProfile(0)).empty());
}

TEST(Truncate, CapsMachineCountAtReference) {
  // U: 4 on [0,3), 2 on [3,6), 0 after (m = 8). Reference T = 4: m(T) = 6,
  // so I' has m' = 6 and U' = U - 2 clipped to [0, 4).
  const Instance instance(8, {Job{0, 2, 2, 0, ""}},
                          {Reservation{0, 2, 3, 0, ""},
                           Reservation{1, 2, 6, 0, ""}});
  const Instance truncated = truncate_availability(instance, 4);
  EXPECT_EQ(truncated.m(), 6);
  const StepProfile u = unavailability_profile(truncated);
  EXPECT_EQ(u.value_at(0), 2);  // was 4, minus U(4) = 2
  EXPECT_EQ(u.value_at(3), 0);
  EXPECT_EQ(u.value_at(5), 0);
  // Availability m'(t) equals the original m(t) for t <= T (the proof's
  // defining property).
  for (const Time t : {Time{0}, Time{1}, Time{2}, Time{3}})
    EXPECT_EQ(availability_at(truncated, t), availability_at(instance, t));
}

TEST(Truncate, RejectsIncreasingUnavailability) {
  const Instance instance(4, {Job{0, 1, 1, 0, ""}},
                          {Reservation{0, 2, 3, 5, ""}});
  EXPECT_THROW(truncate_availability(instance, 2), std::invalid_argument);
}

TEST(HeadJobs, ShapeAndIds) {
  const Instance instance = staircase_instance();
  const HeadJobTransform transform = reservations_to_head_jobs(instance);
  EXPECT_TRUE(transform.rigid.is_rigid_only());
  EXPECT_EQ(transform.rigid.n(),
            transform.head_ids.size() + instance.n());
  // job_map shifts original ids past the head block.
  for (std::size_t j = 0; j < instance.n(); ++j)
    EXPECT_EQ(transform.job_map[j],
              static_cast<JobId>(transform.head_ids.size() + j));
}

TEST(HeadJobs, HeadJobsReproduceUnavailabilityUnderLsrc) {
  const Instance instance = staircase_instance();
  const HeadJobTransform transform = reservations_to_head_jobs(instance);
  const Schedule schedule =
      LsrcScheduler(transform.head_first_list).schedule(transform.rigid).value();
  // Every head job starts at 0 (they sum to U(0) <= m).
  StepProfile head_usage(0);
  for (const JobId id : transform.head_ids) {
    EXPECT_EQ(schedule.start(id), 0);
    const Job& job = transform.rigid.job(id);
    head_usage.add(0, job.p, job.q);
  }
  EXPECT_EQ(head_usage, unavailability_profile(instance));
}

// The hinge of Proposition 1's proof: LSRC treats the reservations of I and
// the head jobs of I'' identically, so every original job receives the same
// start time.
class HeadJobEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeadJobEquivalence, LsrcSchedulesMatch) {
  const Instance instance = staircase_instance(GetParam());
  const Schedule direct = LsrcScheduler().schedule(instance).value();
  const HeadJobTransform transform = reservations_to_head_jobs(instance);
  const Schedule transformed =
      LsrcScheduler(transform.head_first_list).schedule(transform.rigid).value();
  ASSERT_TRUE(transformed.validate(transform.rigid).ok);
  for (const Job& job : instance.jobs()) {
    EXPECT_EQ(transformed.start(transform.job_map[static_cast<std::size_t>(
                  job.id)]),
              direct.start(job.id))
        << "job " << job.id << " diverged between I and I''";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeadJobEquivalence,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38));

}  // namespace
}  // namespace resched
