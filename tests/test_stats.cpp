#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace resched {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  const OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squares = 32.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  const std::vector<double> values{1.5, -2.0, 3.25, 7.0, 0.0, 4.5, -1.25};
  for (std::size_t i = 0; i < values.size(); ++i) {
    all.add(values[i]);
    (i < 3 ? left : right).add(values[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats stats;
  stats.add(1.0);
  stats.add(3.0);
  OnlineStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 2.0, 3.0}, 0.5), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, Interpolates) {
  // Sorted: 10 20 30 40; p25 lands exactly between ranks 0 and 1 at 0.75:
  // 10 + 0.75*(20-10) = 17.5.
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0, 30.0, 40.0}, 0.25), 17.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(Percentiles, MatchesSingleQuantileQueries) {
  // The batched sort-once overload must agree exactly with the one-q
  // overload for every requested quantile.
  const std::vector<double> values{5.0, 1.0, 9.0, 3.0, 7.0, 2.0};
  const double qs[] = {0.0, 0.25, 0.5, 0.9, 1.0};
  const std::vector<double> batch = percentiles(values, qs);
  ASSERT_EQ(batch.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(batch[i], percentile(values, qs[i])) << "q = " << qs[i];
}

TEST(Percentiles, UnsortedQuantilesKeepRequestOrder) {
  const std::vector<double> values{10.0, 20.0, 30.0, 40.0};
  const double qs[] = {1.0, 0.25, 0.0};
  const std::vector<double> batch = percentiles(values, qs);
  EXPECT_DOUBLE_EQ(batch[0], 40.0);
  EXPECT_DOUBLE_EQ(batch[1], 17.5);
  EXPECT_DOUBLE_EQ(batch[2], 10.0);
}

TEST(Percentiles, EmptyQuantileListIsEmptyResult) {
  EXPECT_TRUE(percentiles({1.0, 2.0}, {}).empty());
}

TEST(Percentiles, RejectsBadInput) {
  const double ok[] = {0.5};
  EXPECT_THROW((void)percentiles({}, ok), std::invalid_argument);
  const double bad[] = {0.5, -0.1};
  EXPECT_THROW((void)percentiles({1.0}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace resched
