#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace resched {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  return {args.begin(), args.end()};
}

TEST(Cli, DefaultsApplyWhenUnset) {
  CliParser cli("prog", "test");
  cli.add_option("n", "count", "42");
  const auto argv = argv_of({"prog"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("n"), 42);
  EXPECT_FALSE(cli.was_set("n"));
}

TEST(Cli, EqualsForm) {
  CliParser cli("prog", "test");
  cli.add_option("n", "count", "0");
  const auto argv = argv_of({"prog", "--n=7"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("n"), 7);
  EXPECT_TRUE(cli.was_set("n"));
}

TEST(Cli, SpaceForm) {
  CliParser cli("prog", "test");
  cli.add_option("name", "label", "");
  const auto argv = argv_of({"prog", "--name", "hello"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_string("name"), "hello");
}

TEST(Cli, Flags) {
  CliParser cli("prog", "test");
  cli.add_flag("verbose", "noise");
  const auto argv = argv_of({"prog", "--verbose"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, FlagDefaultsFalse) {
  CliParser cli("prog", "test");
  cli.add_flag("verbose", "noise");
  const auto argv = argv_of({"prog"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli("prog", "test");
  const auto argv = argv_of({"prog", "--nope=1"});
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("prog", "test");
  cli.add_option("n", "count", "0");
  const auto argv = argv_of({"prog", "--n"});
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Cli, TypeErrorsThrow) {
  CliParser cli("prog", "test");
  cli.add_option("n", "count", "0");
  const auto argv = argv_of({"prog", "--n=abc"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW((void)cli.get_int("n"), std::invalid_argument);
}

TEST(Cli, DoubleParsing) {
  CliParser cli("prog", "test");
  cli.add_option("x", "value", "0.5");
  const auto argv = argv_of({"prog", "--x=2.25"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 2.25);
}

TEST(Cli, PositionalCollected) {
  CliParser cli("prog", "test");
  cli.add_option("n", "count", "0");
  const auto argv = argv_of({"prog", "file1", "--n=1", "file2"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  EXPECT_EQ(cli.positional()[1], "file2");
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const auto argv = argv_of({"prog", "--help"});
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("options:"), std::string::npos);
}

TEST(Cli, UsageMentionsDeclaredOptions) {
  CliParser cli("prog", "does things");
  cli.add_option("alpha", "restriction parameter", "0.5");
  cli.add_flag("csv", "emit CSV");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("--csv"), std::string::npos);
  EXPECT_NE(usage.find("restriction parameter"), std::string::npos);
}

TEST(Cli, DuplicateDeclarationThrows) {
  CliParser cli("prog", "test");
  cli.add_option("n", "count", "0");
  EXPECT_THROW(cli.add_option("n", "again", "1"), std::invalid_argument);
}

TEST(Cli, UndeclaredQueryThrows) {
  CliParser cli("prog", "test");
  EXPECT_THROW(cli.get_string("ghost"), std::invalid_argument);
}

}  // namespace
}  // namespace resched
