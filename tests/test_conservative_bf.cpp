#include "algorithms/conservative_bf.hpp"

#include <gtest/gtest.h>

#include "algorithms/fcfs.hpp"
#include "generators/adversarial.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

TEST(ConservativeBf, BackfillsIntoHoles) {
  // Wide job 1 blocked behind job 0; narrow job 2 slides to t = 0.
  const Instance instance(
      2, {Job{0, 1, 10, 0, ""}, Job{1, 2, 1, 0, ""}, Job{2, 1, 1, 0, ""}});
  const Schedule schedule = ConservativeBackfillScheduler().schedule(instance).value();
  EXPECT_EQ(schedule.start(0), 0);
  EXPECT_EQ(schedule.start(1), 10);
  EXPECT_EQ(schedule.start(2), 0);  // overtakes without delaying job 1
}

TEST(ConservativeBf, NeverDelaysEarlierJobs) {
  // The schedule each prefix of jobs receives must be unchanged by the jobs
  // inserted after them (definition of conservative backfilling).
  WorkloadConfig config;
  config.n = 25;
  config.m = 8;
  const Instance full = random_workload(config, 33);
  const Schedule schedule = ConservativeBackfillScheduler().schedule(full).value();
  ASSERT_TRUE(schedule.validate(full).ok);
  for (std::size_t prefix = 1; prefix < full.n(); ++prefix) {
    std::vector<Job> jobs(full.jobs().begin(),
                          full.jobs().begin() + static_cast<long>(prefix));
    const Instance partial(full.m(), std::move(jobs));
    const Schedule partial_schedule =
        ConservativeBackfillScheduler().schedule(partial).value();
    for (JobId id = 0; id < static_cast<JobId>(prefix); ++id)
      ASSERT_EQ(partial_schedule.start(id), schedule.start(id))
          << "job " << id << " moved when later jobs were submitted";
  }
}

TEST(ConservativeBf, FixesTheFcfsBadFamily) {
  // Conservative backfilling packs the narrow jobs in parallel, achieving
  // the optimum on the family where FCFS degrades to ratio m.
  const FcfsBadFamily family = fcfs_bad_instance(6);
  const Schedule cbf = ConservativeBackfillScheduler().schedule(family.instance).value();
  ASSERT_TRUE(cbf.validate(family.instance).ok);
  EXPECT_EQ(cbf.makespan(family.instance), family.optimal_makespan);
  const Schedule fcfs = FcfsScheduler().schedule(family.instance).value();
  EXPECT_GT(fcfs.makespan(family.instance), cbf.makespan(family.instance));
}

TEST(ConservativeBf, RespectsReservationsAndReleases) {
  const Instance instance(3,
                          {Job{0, 3, 4, 0, ""}, Job{1, 1, 2, 5, ""}},
                          {Reservation{0, 3, 3, 4, ""}});
  const Schedule schedule = ConservativeBackfillScheduler().schedule(instance).value();
  ASSERT_TRUE(schedule.validate(instance).ok);
  EXPECT_EQ(schedule.start(0), 0);   // fits exactly before the reservation
  EXPECT_EQ(schedule.start(1), 7);   // released at 5, blocked until 7
}

TEST(ConservativeBf, NeverWorseThanFcfs) {
  // Earliest-fit insertion can only move jobs earlier than strict FCFS's
  // non-overtaking start times.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    WorkloadConfig config;
    config.n = 30;
    config.m = 12;
    const Instance instance = random_workload(config, seed);
    const Time cbf = ConservativeBackfillScheduler()
                         .schedule(instance).value()
                         .makespan(instance);
    const Time fcfs = FcfsScheduler().schedule(instance).value().makespan(instance);
    EXPECT_LE(cbf, fcfs) << "seed " << seed;
  }
}

}  // namespace
}  // namespace resched
