// Differential / property fuzz for the scenario subsystem, in the style of
// test_prop_step_profile:
//
//  * compile_scenario vs a naive per-tick interpreter (the compiler places
//    one breakpoint per intermediate level via ceil_div; the reference
//    evaluates the documented floor formula tick by tick -- two independent
//    implementations of the same staircase);
//  * parse(serialize(p)) == p over random valid programs, and canonical
//    serialization is a fixed point;
//  * skyline decomposition: the emitted rectangles stack back into the
//    exact unavailability profile for random in-range programs;
//  * wait_to_cross vs a naive tick scan over a random reference curve.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "scenario/scenario.hpp"
#include "scenario/scn_format.hpp"
#include "util/prng.hpp"

namespace resched {
namespace {

constexpr std::int64_t kMaxLevel = 12;

// Random program over levels [0, kMaxLevel]: ramps, soaks, jumps.
// `allow_waits` sprinkles in wait_to_cross steps for the reference fuzz.
[[nodiscard]] ScenarioProgram random_program(Prng& prng, bool allow_waits) {
  ScenarioProgram program;
  program.name = "fuzz";
  program.initial = prng.uniform_int(0, kMaxLevel);
  program.repeat = prng.uniform_int(1, 3);
  const int steps = static_cast<int>(prng.uniform_int(1, 6));
  for (int i = 0; i < steps; ++i) {
    const std::int64_t level = prng.uniform_int(0, kMaxLevel);
    const Time duration = prng.uniform_int(1, 40);
    switch (prng.uniform_int(0, allow_waits ? 3 : 2)) {
      case 0: program.steps.push_back(ramp_to(level, duration)); break;
      case 1: program.steps.push_back(soak_at(level, duration)); break;
      case 2: program.steps.push_back(jump_to(level)); break;
      default: program.steps.push_back(wait_to_cross(level)); break;
    }
  }
  return program;
}

// Naive interpreter: the level at tick x, replaying the program and
// evaluating ramps with the documented closed form
//   level(t0 + o) = L + sign * floor(|delta| * o / d)
// one tick at a time (the compiler never iterates over ticks).
[[nodiscard]] std::int64_t naive_value(const ScenarioProgram& program,
                                       Time x) {
  std::int64_t value = program.initial;
  std::int64_t level = program.initial;
  Time t = 0;
  const auto set_at = [&](Time at, std::int64_t v) {
    if (at <= x) value = v;
    level = v;
  };
  for (std::int64_t round = 0; round < program.repeat; ++round) {
    for (const ScenarioStep& step : program.steps) {
      switch (step.kind) {
        case ScenarioStepKind::kJumpTo:
          set_at(t, step.level);
          break;
        case ScenarioStepKind::kSoakAt:
          set_at(t, step.level);
          t += step.duration;
          break;
        case ScenarioStepKind::kRampTo: {
          const std::int64_t start = level;
          const std::int64_t delta = step.level - start;
          const std::int64_t sign = delta >= 0 ? 1 : -1;
          const std::int64_t magnitude = delta >= 0 ? delta : -delta;
          for (Time o = 1; o <= step.duration; ++o)
            set_at(t + o, start + sign * (magnitude * o / step.duration));
          t += step.duration;
          break;
        }
        case ScenarioStepKind::kWaitToCross:
          break;  // not generated for the reference-free fuzz
      }
    }
  }
  return value;
}

TEST(PropScenario, CompiledCurveMatchesTheNaiveInterpreter) {
  Prng prng(20260808);
  for (int round = 0; round < 120; ++round) {
    const ScenarioProgram program = random_program(prng, false);
    const CompiledScenario compiled = compile_scenario(program);
    // Bit-identical recompilation (pure function of the program).
    ASSERT_EQ(compiled, compile_scenario(program));
    for (Time x = 0; x <= compiled.horizon + 3; ++x)
      ASSERT_EQ(compiled.curve.value_at(x), naive_value(program, x))
          << "round " << round << " t=" << x << "\n"
          << serialize_scn(program);
    ASSERT_EQ(compiled.curve.final_value(),
              naive_value(program, compiled.horizon + 3));
  }
}

TEST(PropScenario, SerializeParseIsTheIdentityAndCanonicalIsAFixedPoint) {
  Prng prng(424243);
  for (int round = 0; round < 200; ++round) {
    const ScenarioProgram program = random_program(prng, true);
    const std::string text = serialize_scn(program);
    const ScenarioProgram reparsed = parse_scn(text);
    ASSERT_EQ(reparsed, program) << text;
    ASSERT_EQ(serialize_scn(reparsed), text);
    // And compilation of the reparsed program is bit-identical -- .scn
    // files carry the full semantics (skip wait programs: they need a
    // reference curve).
    const bool has_wait =
        std::any_of(program.steps.begin(), program.steps.end(),
                    [](const ScenarioStep& s) {
                      return s.kind == ScenarioStepKind::kWaitToCross;
                    });
    if (!has_wait)
      ASSERT_EQ(compile_scenario(reparsed), compile_scenario(program));
  }
}

TEST(PropScenario, DecompositionStacksBackIntoTheExactProfile) {
  Prng prng(97531);
  int nonempty = 0;
  for (int round = 0; round < 150; ++round) {
    const ScenarioProgram program = random_program(prng, false);
    const CompiledScenario compiled = compile_scenario(program);
    const StepProfile u = scenario_unavailability(compiled, kMaxLevel);
    const std::vector<Reservation> rectangles =
        unavailability_to_reservations(u);
    StepProfile rebuilt(0);
    for (const Reservation& r : rectangles)
      rebuilt.add(r.start, r.start + r.p, r.q);
    ASSERT_EQ(rebuilt, u) << serialize_scn(program);
    if (!rectangles.empty()) ++nonempty;
    for (std::size_t i = 0; i < rectangles.size(); ++i) {
      ASSERT_EQ(rectangles[i].id, static_cast<ReservationId>(i));
      ASSERT_GE(rectangles[i].q, 1);
      ASSERT_GE(rectangles[i].p, 1);
      if (i > 0) ASSERT_LE(rectangles[i - 1].start, rectangles[i].start);
    }
  }
  // The fuzz actually exercised the skyline stack, not just empty curves.
  EXPECT_GT(nonempty, 100);
}

TEST(PropScenario, WaitToCrossMatchesANaiveTickScan) {
  Prng prng(86420);
  int compiled_count = 0;
  for (int round = 0; round < 150; ++round) {
    // A random (wait-free) program supplies the reference curve.
    const CompiledScenario reference =
        compile_scenario(random_program(prng, false));
    ScenarioProgram program;
    program.name = "wait";
    program.initial = prng.uniform_int(0, kMaxLevel);
    const std::int64_t threshold = prng.uniform_int(0, kMaxLevel);
    program.steps = {wait_to_cross(threshold),
                     jump_to(prng.uniform_int(0, kMaxLevel))};
    CompiledScenario compiled;
    try {
      compiled = compile_scenario(program, &reference.curve);
    } catch (const std::invalid_argument&) {
      // The reference never crosses: verify the naive scan agrees that no
      // crossing exists before the curve goes flat.
      const bool below = reference.curve.value_at(0) < threshold;
      for (Time t = 0; t <= reference.horizon + 2; ++t)
        ASSERT_EQ(reference.curve.value_at(t) >= threshold, !below)
            << "t=" << t;
      continue;
    }
    ++compiled_count;
    // The naive scan: first tick on the other side of the threshold.
    const bool below = reference.curve.value_at(0) < threshold;
    Time expected = 0;
    while (below ? reference.curve.value_at(expected) < threshold
                 : reference.curve.value_at(expected) >= threshold)
      ++expected;
    ASSERT_EQ(compiled.horizon, expected) << "round " << round;
  }
  EXPECT_GT(compiled_count, 30);
}

}  // namespace
}  // namespace resched
