// Property suite for section 4.1 / Proposition 1: with non-increasing
// unavailability, C_LSRC <= (2 - 1/m(C*)) C*, proved through the I -> I' ->
// I'' transformation chain (Figure 2).
#include <gtest/gtest.h>

#include "algorithms/lsrc.hpp"
#include "bounds/checker.hpp"
#include "bounds/guarantees.hpp"
#include "bounds/lower_bounds.hpp"
#include "core/availability.hpp"
#include "exact/bnb.hpp"
#include "generators/reservations.hpp"
#include "generators/transform.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

Instance staircase_instance(std::uint64_t seed, std::size_t n, ProcCount m) {
  WorkloadConfig config;
  config.n = n;
  config.m = m;
  config.p_max = 8;
  const Instance base = random_workload(config, seed);
  StaircaseConfig stairs;
  stairs.steps = 3;
  stairs.max_initial = m / 2;
  stairs.max_step_duration = 10;
  return with_nonincreasing_reservations(base, stairs, seed + 2000);
}

// Exact: small instances, the refined bound 2 - 1/m(C*) against B&B optima.
class Prop1Exact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Prop1Exact, RefinedBoundAgainstExactOptimum) {
  const Instance instance = staircase_instance(GetParam(), 6, 6);
  ASSERT_TRUE(has_non_increasing_unavailability(instance));
  const Time optimum = optimal_makespan(instance);
  // m(C*): availability at the optimal makespan (m(t) is non-decreasing, so
  // this is the largest availability seen before C*).
  const ProcCount m_at_cstar = availability_at(instance, optimum);
  const Rational bound = nonincreasing_bound(m_at_cstar);
  for (const ListOrder order : all_list_orders()) {
    const Schedule schedule = LsrcScheduler(order, 17).schedule(instance).value();
    ASSERT_TRUE(schedule.validate(instance).ok);
    EXPECT_LE(makespan_ratio(schedule.makespan(instance), optimum), bound)
        << to_string(order) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop1Exact,
                         ::testing::Values(701, 702, 703, 704, 705, 706, 707,
                                           708));

// Larger instances: the weak form 2 - 1/m against the certified lower bound
// must never be *violated* (checker semantics).
class Prop1Large : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Prop1Large, WeakFormNeverViolated) {
  const Instance instance = staircase_instance(GetParam(), 70, 20);
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  const GuaranteeReport report = check_guarantee(instance, schedule);
  EXPECT_NE(report.compliance, Compliance::kViolated) << report.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop1Large,
                         ::testing::Values(801, 802, 803, 804, 805));

// The proof chain itself. Step I -> I': truncation at C* preserves the
// optimal value and availability before C*.
TEST(Prop1Chain, TruncationPreservesOptimum) {
  for (const std::uint64_t seed : {811u, 812u, 813u}) {
    const Instance instance = staircase_instance(seed, 5, 6);
    const Time optimum = optimal_makespan(instance);
    const Instance truncated = truncate_availability(instance, optimum);
    // Same availability up to C*.
    for (Time t = 0; t < optimum; ++t)
      ASSERT_EQ(availability_at(truncated, t), availability_at(instance, t));
    // Same optimal makespan (the proof's "both instances have the same C*").
    EXPECT_EQ(optimal_makespan(truncated), optimum) << "seed " << seed;
  }
}

// Step I' -> I'': LSRC with head-first list yields the identical schedule
// for the original jobs (covered in detail in test_transform; here on the
// truncated chain end to end).
TEST(Prop1Chain, EndToEndTransformationPreservesLsrcMakespan) {
  for (const std::uint64_t seed : {821u, 822u, 823u}) {
    const Instance instance = staircase_instance(seed, 8, 8);
    const Schedule direct = LsrcScheduler().schedule(instance).value();
    const HeadJobTransform transform = reservations_to_head_jobs(instance);
    const Schedule indirect =
        LsrcScheduler(transform.head_first_list).schedule(transform.rigid).value();
    Time original_jobs_makespan = 0;
    for (const Job& job : instance.jobs()) {
      const JobId mapped =
          transform.job_map[static_cast<std::size_t>(job.id)];
      original_jobs_makespan =
          std::max(original_jobs_makespan,
                   indirect.start(mapped) + job.p);
    }
    EXPECT_EQ(original_jobs_makespan, direct.makespan(instance))
        << "seed " << seed;
  }
}

// Theorem-2-on-I'' implies the Prop. 1 bound: the head jobs only add work,
// so the I'' optimum is at least the I optimum, and Theorem 2's guarantee on
// I'' transfers. Check the resulting inequality directly on small cases.
TEST(Prop1Chain, TransferredInequalityHolds) {
  for (const std::uint64_t seed : {831u, 832u}) {
    const Instance instance = staircase_instance(seed, 5, 6);
    const HeadJobTransform transform = reservations_to_head_jobs(instance);
    const Time opt_rigid = optimal_makespan(transform.rigid);
    const Schedule direct = LsrcScheduler().schedule(instance).value();
    // C_LSRC(I) = C_LSRC(I'') <= (2 - 1/m) C*(I'').
    const Rational bound = graham_bound(instance.m());
    EXPECT_LE(makespan_ratio(direct.makespan(instance), opt_rigid), bound);
  }
}

}  // namespace
}  // namespace resched
