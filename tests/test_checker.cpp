#include "bounds/checker.hpp"

#include <gtest/gtest.h>

#include "algorithms/fcfs.hpp"
#include "algorithms/lsrc.hpp"
#include "exact/bnb.hpp"
#include "generators/adversarial.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

TEST(Checker, RigidInstanceGetsGrahamGuarantee) {
  const Instance instance(4, {Job{0, 2, 3, 0, ""}, Job{1, 2, 3, 0, ""}});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  const GuaranteeReport report = check_guarantee(instance, schedule);
  EXPECT_TRUE(report.has_guarantee);
  EXPECT_EQ(report.bound, Rational(7, 4));
  EXPECT_NE(report.guarantee.find("Theorem 2"), std::string::npos);
  EXPECT_EQ(report.compliance, Compliance::kProven);
}

TEST(Checker, AlphaRestrictedGetsProp3Guarantee) {
  // m=8, reservation of 4 (alpha = 1/2), jobs q <= 4.
  const Instance instance(8, {Job{0, 4, 3, 0, ""}, Job{1, 2, 5, 0, ""}},
                          {Reservation{0, 4, 10, 4, ""}});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  const GuaranteeReport report = check_guarantee(instance, schedule);
  EXPECT_TRUE(report.has_guarantee);
  EXPECT_EQ(report.bound, Rational(4));  // 2 / (1/2)
  EXPECT_NE(report.guarantee.find("Prop. 3"), std::string::npos);
}

TEST(Checker, UnrestrictedReservationsHaveNoGuarantee) {
  // A full-machine reservation (alpha = 0) that is not non-increasing.
  const Instance instance(2, {Job{0, 1, 2, 0, ""}},
                          {Reservation{0, 2, 5, 3, ""}});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  const GuaranteeReport report = check_guarantee(instance, schedule);
  EXPECT_FALSE(report.has_guarantee);
  EXPECT_NE(report.guarantee.find("Theorem 1"), std::string::npos);
  EXPECT_EQ(report.compliance, Compliance::kInconclusive);
}

TEST(Checker, NonIncreasingGetsProp1WeakForm) {
  // Staircase reservations with a job too wide for alpha-restriction
  // (q = 6 > remaining 2 at peak).
  const Instance instance(8, {Job{0, 6, 3, 0, ""}},
                          {Reservation{0, 6, 4, 0, ""}});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  const GuaranteeReport report = check_guarantee(instance, schedule);
  EXPECT_TRUE(report.has_guarantee);
  EXPECT_NE(report.guarantee.find("Prop. 1"), std::string::npos);
  EXPECT_EQ(report.bound, Rational(15, 8));  // 2 - 1/8
}

TEST(Checker, InfeasibleScheduleIsViolated) {
  const Instance instance(2, {Job{0, 2, 2, 0, ""}, Job{1, 2, 2, 0, ""}});
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 0);
  const GuaranteeReport report = check_guarantee(instance, schedule);
  EXPECT_EQ(report.compliance, Compliance::kViolated);
  EXPECT_NE(report.detail.find("infeasible"), std::string::npos);
}

TEST(Checker, ExactReferenceEnablesViolationDetection) {
  // Hand the checker a fake "exact optimum" that makes the ratio exceed the
  // bound: with reference_is_exact it must report kViolated.
  const Instance instance(2, {Job{0, 1, 10, 0, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 100);  // terrible but feasible schedule
  const GuaranteeReport exact = check_guarantee(instance, schedule, Time{10});
  EXPECT_EQ(exact.compliance, Compliance::kViolated);
  // With only the lower bound the same situation is inconclusive.
  const GuaranteeReport lb = check_guarantee(instance, schedule);
  EXPECT_EQ(lb.compliance, Compliance::kInconclusive);
}

TEST(Checker, UsesExactOptimumWhenGiven) {
  const Instance instance(4, {Job{0, 2, 3, 0, ""}, Job{1, 2, 3, 0, ""}});
  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  const Time opt = optimal_makespan(instance);
  const GuaranteeReport report = check_guarantee(instance, schedule, opt);
  EXPECT_TRUE(report.reference_is_exact);
  EXPECT_EQ(report.reference, opt);
  EXPECT_EQ(report.compliance, Compliance::kProven);
}

TEST(Checker, ComplianceToString) {
  EXPECT_EQ(to_string(Compliance::kProven), "proven");
  EXPECT_EQ(to_string(Compliance::kInconclusive), "inconclusive");
  EXPECT_EQ(to_string(Compliance::kViolated), "VIOLATED");
}

TEST(Lemma1, HoldsOnLsrcSchedules) {
  const GrahamTightFamily family = graham_tight_instance(4);
  const Schedule schedule =
      LsrcScheduler(family.bad_order).schedule(family.instance).value();
  const Lemma1Report report = check_lemma1(family.instance, schedule);
  EXPECT_TRUE(report.holds);
}

TEST(Lemma1, DetectsViolationOnNonListSchedule) {
  // A deliberately wasteful schedule: two unit jobs placed far apart leave
  // the machine empty in between -- r(t) + r(t') = 2 <= m for the pair.
  const Instance instance(2, {Job{0, 1, 1, 0, ""}, Job{1, 1, 1, 0, ""}});
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 10);
  const Lemma1Report report = check_lemma1(instance, schedule);
  EXPECT_FALSE(report.holds);
  EXPECT_GE(report.t_prime, report.t + instance.p_max());
  EXPECT_LE(report.r_sum, instance.m());
}

TEST(Lemma1, TrivialWhenMakespanShort) {
  // makespan <= p_max: no admissible pair, lemma holds vacuously.
  const Instance instance(2, {Job{0, 2, 5, 0, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 0);
  EXPECT_TRUE(check_lemma1(instance, schedule).holds);
}

TEST(Lemma1, RejectsReservedInstances) {
  const Instance instance(2, {Job{0, 1, 1, 0, ""}},
                          {Reservation{0, 1, 1, 0, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 1);
  EXPECT_THROW((void)check_lemma1(instance, schedule), std::invalid_argument);
}

// Property: Lemma 1 holds for LSRC under every priority order on random
// rigid instances (it is a theorem about *any* list schedule).
class Lemma1Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1Property, HoldsForAllOrders) {
  WorkloadConfig config;
  config.n = 20;
  config.m = 8;
  config.p_max = 20;
  const Instance instance = random_workload(config, GetParam());
  for (const ListOrder order : all_list_orders()) {
    const Schedule schedule = LsrcScheduler(order, 7).schedule(instance).value();
    const Lemma1Report report = check_lemma1(instance, schedule);
    EXPECT_TRUE(report.holds)
        << to_string(order) << ": r(" << report.t << ") + r("
        << report.t_prime << ") = " << report.r_sum << " <= m";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Property,
                         ::testing::Values(301, 302, 303, 304, 305));

}  // namespace
}  // namespace resched
