#include "core/profile_allocator.hpp"

#include <gtest/gtest.h>

#include "core/availability.hpp"
#include "util/prng.hpp"

namespace resched {
namespace {

TEST(FreeProfile, RejectsNegativeCapacity) {
  StepProfile profile(1);
  profile.add(0, 3, -2);
  EXPECT_THROW(FreeProfile{profile}, std::invalid_argument);
}

TEST(FreeProfile, FitsAtConstantCapacity) {
  FreeProfile free{StepProfile(4)};
  EXPECT_TRUE(free.fits_at(0, 4, 10));
  EXPECT_FALSE(free.fits_at(0, 5, 1));
  EXPECT_TRUE(free.fits_at(1'000'000, 1, 1));
}

TEST(FreeProfile, FitsAtRespectsDips) {
  StepProfile profile(4);
  profile.add(5, 7, -3);  // capacity 1 on [5,7)
  FreeProfile free{profile};
  EXPECT_TRUE(free.fits_at(0, 2, 5));    // [0,5) untouched
  EXPECT_FALSE(free.fits_at(0, 2, 6));   // [0,6) touches the dip
  EXPECT_TRUE(free.fits_at(5, 1, 2));    // inside the dip, q = 1 fits
  EXPECT_FALSE(free.fits_at(6, 2, 1));   // [6,7) has only 1
  EXPECT_TRUE(free.fits_at(7, 4, 100));
}

TEST(FreeProfile, EarliestFitImmediate) {
  FreeProfile free{StepProfile(3)};
  EXPECT_EQ(free.earliest_fit(0, 3, 5), 0);
  EXPECT_EQ(free.earliest_fit(11, 1, 1), 11);
}

TEST(FreeProfile, EarliestFitSkipsDeficientSegment) {
  StepProfile profile(4);
  profile.add(2, 6, -4);  // zero capacity on [2,6)
  FreeProfile free{profile};
  // A job of length 3 from t=0 would hit [2,6); earliest is 6.
  EXPECT_EQ(free.earliest_fit(0, 1, 3), 6);
  // Length 2 fits exactly at [0,2).
  EXPECT_EQ(free.earliest_fit(0, 1, 2), 0);
  EXPECT_EQ(free.earliest_fit(1, 1, 2), 6);  // [1,3) overlaps the dip
}

TEST(FreeProfile, EarliestFitLandsOnCapacityIncrease) {
  StepProfile profile(5);
  profile.add(3, 8, -4);   // 1 on [3,8)
  profile.add(8, 12, -2);  // 3 on [8,12)
  FreeProfile free{profile};
  // q = 2, p = 4: blocked through [3,8); at 8 capacity rises to 3 and the
  // window [8,12) holds 3 >= 2.
  EXPECT_EQ(free.earliest_fit(0, 2, 4), 8);
  // q = 4, p = 1: 5 on [0,3) fits at t = 0 from t0 = 0; from t0 = 3 the
  // next fit is 12.
  EXPECT_EQ(free.earliest_fit(0, 4, 1), 0);
  EXPECT_EQ(free.earliest_fit(3, 4, 1), 12);
}

TEST(FreeProfile, EarliestFitImpossibleWidthThrows) {
  FreeProfile free{StepProfile(2)};
  EXPECT_THROW((void)free.earliest_fit(0, 3, 1), std::invalid_argument);
}

TEST(FreeProfile, CommitSubtractsAndUncommitRestores) {
  FreeProfile free{StepProfile(4)};
  free.commit(2, 3, 5);
  EXPECT_EQ(free.capacity_at(2), 1);
  EXPECT_EQ(free.capacity_at(6), 1);
  EXPECT_EQ(free.capacity_at(7), 4);
  EXPECT_FALSE(free.fits_at(0, 2, 5));
  free.uncommit(2, 3, 5);
  EXPECT_EQ(free.capacity_at(2), 4);
}

TEST(FreeProfile, CommitRequiresFit) {
  FreeProfile free{StepProfile(2)};
  free.commit(0, 2, 3);
  EXPECT_THROW(free.commit(1, 1, 1), std::invalid_argument);
}

TEST(FreeProfile, ForInstanceUsesAvailability) {
  const Instance instance(6, {Job{0, 1, 1, 0, ""}},
                          {Reservation{0, 4, 5, 2, ""}});
  const FreeProfile free = FreeProfile::for_instance(instance);
  EXPECT_EQ(free.capacity_at(0), 6);
  EXPECT_EQ(free.capacity_at(2), 2);
  EXPECT_EQ(free.capacity_at(7), 6);
}

// Differential property: earliest_fit agrees with a brute-force scan over
// every candidate start time on random small profiles.
class EarliestFitRandomized : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EarliestFitRandomized, AgreesWithBruteForce) {
  constexpr Time kHorizon = 48;
  Prng prng(GetParam());
  StepProfile profile(5);
  for (int i = 0; i < 10; ++i) {
    const Time a = prng.uniform_int(0, kHorizon - 1);
    const Time len = prng.uniform_int(1, 12);
    const std::int64_t delta = prng.uniform_int(-2, 0);
    if (profile.min_in(a, a + len) + delta >= 0)
      profile.add(a, a + len, delta);
  }
  FreeProfile free{profile};

  for (int trial = 0; trial < 60; ++trial) {
    const ProcCount q = prng.uniform_int(1, 5);
    const Time p = prng.uniform_int(1, 10);
    const Time t0 = prng.uniform_int(0, kHorizon);
    const Time got = free.earliest_fit(t0, q, p);
    // Brute force: first t >= t0 with min over [t, t+p) >= q; scanning past
    // the last possible breakpoint (kHorizon + max added length) is enough
    // because the profile is constant 5 beyond it.
    Time expected = kTimeInfinity;
    for (Time t = t0; t <= kHorizon + 13; ++t) {
      if (profile.min_in(t, t + p) >= q) {
        expected = t;
        break;
      }
    }
    ASSERT_EQ(got, expected) << "q=" << q << " p=" << p << " t0=" << t0;
    // And the returned start indeed fits.
    ASSERT_TRUE(free.fits_at(got, q, p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EarliestFitRandomized,
                         ::testing::Values(10, 11, 12, 13, 14, 15));

}  // namespace
}  // namespace resched
