#include "core/profile_allocator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "core/availability.hpp"
#include "util/prng.hpp"

namespace resched {
namespace {

TEST(FreeProfile, RejectsNegativeCapacity) {
  StepProfile profile(1);
  profile.add(0, 3, -2);
  EXPECT_THROW(FreeProfile{profile}, std::invalid_argument);
}

TEST(FreeProfile, FitsAtConstantCapacity) {
  FreeProfile free{StepProfile(4)};
  EXPECT_TRUE(free.fits_at(0, 4, 10));
  EXPECT_FALSE(free.fits_at(0, 5, 1));
  EXPECT_TRUE(free.fits_at(1'000'000, 1, 1));
}

TEST(FreeProfile, FitsAtRespectsDips) {
  StepProfile profile(4);
  profile.add(5, 7, -3);  // capacity 1 on [5,7)
  FreeProfile free{profile};
  EXPECT_TRUE(free.fits_at(0, 2, 5));    // [0,5) untouched
  EXPECT_FALSE(free.fits_at(0, 2, 6));   // [0,6) touches the dip
  EXPECT_TRUE(free.fits_at(5, 1, 2));    // inside the dip, q = 1 fits
  EXPECT_FALSE(free.fits_at(6, 2, 1));   // [6,7) has only 1
  EXPECT_TRUE(free.fits_at(7, 4, 100));
}

TEST(FreeProfile, EarliestFitImmediate) {
  FreeProfile free{StepProfile(3)};
  EXPECT_EQ(free.earliest_fit(0, 3, 5), 0);
  EXPECT_EQ(free.earliest_fit(11, 1, 1), 11);
}

TEST(FreeProfile, EarliestFitSkipsDeficientSegment) {
  StepProfile profile(4);
  profile.add(2, 6, -4);  // zero capacity on [2,6)
  FreeProfile free{profile};
  // A job of length 3 from t=0 would hit [2,6); earliest is 6.
  EXPECT_EQ(free.earliest_fit(0, 1, 3), 6);
  // Length 2 fits exactly at [0,2).
  EXPECT_EQ(free.earliest_fit(0, 1, 2), 0);
  EXPECT_EQ(free.earliest_fit(1, 1, 2), 6);  // [1,3) overlaps the dip
}

TEST(FreeProfile, EarliestFitLandsOnCapacityIncrease) {
  StepProfile profile(5);
  profile.add(3, 8, -4);   // 1 on [3,8)
  profile.add(8, 12, -2);  // 3 on [8,12)
  FreeProfile free{profile};
  // q = 2, p = 4: blocked through [3,8); at 8 capacity rises to 3 and the
  // window [8,12) holds 3 >= 2.
  EXPECT_EQ(free.earliest_fit(0, 2, 4), 8);
  // q = 4, p = 1: 5 on [0,3) fits at t = 0 from t0 = 0; from t0 = 3 the
  // next fit is 12.
  EXPECT_EQ(free.earliest_fit(0, 4, 1), 0);
  EXPECT_EQ(free.earliest_fit(3, 4, 1), 12);
}

TEST(FreeProfile, EarliestFitImpossibleWidthThrows) {
  FreeProfile free{StepProfile(2)};
  EXPECT_THROW((void)free.earliest_fit(0, 3, 1), std::invalid_argument);
}

TEST(FreeProfile, TentativeCommitSubtractsAndUncommitRestores) {
  FreeProfile free{StepProfile(4)};
  FreeProfile::CommitToken token = free.commit_tentative(2, 3, 5);
  EXPECT_TRUE(token.live());
  EXPECT_EQ(free.open_commits(), 1u);
  EXPECT_EQ(free.capacity_at(2), 1);
  EXPECT_EQ(free.capacity_at(6), 1);
  EXPECT_EQ(free.capacity_at(7), 4);
  EXPECT_FALSE(free.fits_at(0, 2, 5));
  // The legacy wrapper reverses the newest open tentative commit.
  free.uncommit(2, 3, 5);
  EXPECT_EQ(free.capacity_at(2), 4);
  EXPECT_EQ(free.open_commits(), 0u);
}

TEST(FreeProfile, RollbackAndAcceptResolveTokens) {
  FreeProfile free{StepProfile(4)};
  FreeProfile::CommitToken kept = free.commit_tentative(0, 2, 10);
  free.accept(std::move(kept));
  EXPECT_FALSE(kept.live());  // NOLINT(bugprone-use-after-move): asserted dead
  EXPECT_EQ(free.capacity_at(5), 2);
  EXPECT_EQ(free.open_commits(), 0u);

  FreeProfile::CommitToken probe = free.commit_tentative(3, 2, 4);
  EXPECT_EQ(free.capacity_at(4), 0);
  free.rollback(std::move(probe));
  EXPECT_EQ(free.capacity_at(4), 2);
  // The accepted commit stays in effect.
  EXPECT_EQ(free.capacity_at(9), 2);
  EXPECT_EQ(free.capacity_at(10), 4);
}

TEST(FreeProfile, MismatchedUncommitTripsInsteadOfInflatingCapacity) {
  // Regression: uncommit with arguments that never were (or no longer are)
  // a live commit used to blindly add capacity back, silently raising the
  // profile above the instance's availability. It now must reverse the
  // newest open tentative commit exactly, or trip RESCHED_CHECK.
  FreeProfile free{StepProfile(4)};
  // No open commit at all.
  EXPECT_THROW(free.uncommit(2, 3, 5), std::logic_error);
  EXPECT_EQ(free.capacity_at(2), 4) << "failed uncommit must not mutate";

  FreeProfile::CommitToken token = free.commit_tentative(2, 3, 5);
  // Wrong start / demand / duration each trip; profile stays committed.
  EXPECT_THROW(free.uncommit(3, 3, 5), std::logic_error);
  EXPECT_THROW(free.uncommit(2, 2, 5), std::logic_error);
  EXPECT_THROW(free.uncommit(2, 3, 6), std::logic_error);
  EXPECT_EQ(free.capacity_at(2), 1);
  // A permanent commit is not revocable either.
  free.accept(std::move(token));
  EXPECT_THROW(free.uncommit(2, 3, 5), std::logic_error);
  EXPECT_EQ(free.capacity_at(2), 1);
}

TEST(FreeProfile, TokensResolveNewestFirst) {
  FreeProfile free{StepProfile(8)};
  FreeProfile::CommitToken first = free.commit_tentative(0, 2, 4);
  FreeProfile::CommitToken second = free.commit_tentative(1, 3, 4);
  // Resolving the older token out of order trips the LIFO check (and
  // leaves it live: a failed resolve consumes nothing).
  EXPECT_THROW(free.rollback(std::move(first)), std::logic_error);
  EXPECT_THROW(free.accept(std::move(first)), std::logic_error);
  EXPECT_TRUE(first.live());  // NOLINT(bugprone-use-after-move)
  // Unwinding newest-first works.
  free.rollback(std::move(second));
  EXPECT_EQ(free.capacity_at(2), 6);
  EXPECT_EQ(free.open_commits(), 1u);
  // A dead token cannot resolve anything.
  EXPECT_THROW(free.rollback(std::move(second)), std::logic_error);
}

TEST(FreeProfile, CommitRequiresFit) {
  FreeProfile free{StepProfile(2)};
  free.commit(0, 2, 3);
  EXPECT_THROW(free.commit(1, 1, 1), std::invalid_argument);
}

TEST(FreeProfile, TentativeProbeLoopNeverRebuildsTheIndex) {
  // The acceptance criterion of the undo log: a tentative probe sequence
  // (commit -> wide windowed probe -> rollback) leaves the query-index
  // snapshot installed and its rebuild budget intact, so even far more
  // pairs than the budget trigger zero further O(s) rebuilds. Before the
  // undo log, each pair burned two budget units and the loop below would
  // rebuild hundreds of times.
  StepProfile capacity(64);
  for (Time t = 0; t < 6000; t += 10) capacity.add(t, t + 5, -(1 + (t / 10) % 3));
  FreeProfile free(capacity);
  ASSERT_GT(free.profile().segment_count(), 256u);
  // Warm the index with one wide probe.
  ASSERT_TRUE(free.fits_at(0, 1, 7000));
  const std::uint64_t builds_after_warmup = free.profile().index_build_count();
  Prng prng(2026);
  for (int probe = 0; probe < 4000; ++probe) {
    const Time t = prng.uniform_int(0, 5000);
    const ProcCount q = prng.uniform_int(1, 32);
    const Time p = prng.uniform_int(1, 200);
    if (!free.fits_at(t, q, p)) continue;
    FreeProfile::CommitToken token = free.commit_tentative(t, q, p);
    // Wide probe through the indexed descent (the head-reservation check).
    (void)free.fits_at(0, 1, 7000);
    free.rollback(std::move(token));
  }
  EXPECT_EQ(free.profile().index_build_count(), builds_after_warmup)
      << "tentative probes must not drop or rebuild the index snapshot";
}

TEST(FreeProfile, ForInstanceUsesAvailability) {
  const Instance instance(6, {Job{0, 1, 1, 0, ""}},
                          {Reservation{0, 4, 5, 2, ""}});
  const FreeProfile free = FreeProfile::for_instance(instance);
  EXPECT_EQ(free.capacity_at(0), 6);
  EXPECT_EQ(free.capacity_at(2), 2);
  EXPECT_EQ(free.capacity_at(7), 6);
}

// Differential property: earliest_fit agrees with a brute-force scan over
// every candidate start time on random small profiles.
class EarliestFitRandomized : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EarliestFitRandomized, AgreesWithBruteForce) {
  constexpr Time kHorizon = 48;
  Prng prng(GetParam());
  StepProfile profile(5);
  for (int i = 0; i < 10; ++i) {
    const Time a = prng.uniform_int(0, kHorizon - 1);
    const Time len = prng.uniform_int(1, 12);
    const std::int64_t delta = prng.uniform_int(-2, 0);
    if (profile.min_in(a, a + len) + delta >= 0)
      profile.add(a, a + len, delta);
  }
  FreeProfile free{profile};

  for (int trial = 0; trial < 60; ++trial) {
    const ProcCount q = prng.uniform_int(1, 5);
    const Time p = prng.uniform_int(1, 10);
    const Time t0 = prng.uniform_int(0, kHorizon);
    const Time got = free.earliest_fit(t0, q, p);
    // Brute force: first t >= t0 with min over [t, t+p) >= q; scanning past
    // the last possible breakpoint (kHorizon + max added length) is enough
    // because the profile is constant 5 beyond it.
    Time expected = kTimeInfinity;
    for (Time t = t0; t <= kHorizon + 13; ++t) {
      if (profile.min_in(t, t + p) >= q) {
        expected = t;
        break;
      }
    }
    ASSERT_EQ(got, expected) << "q=" << q << " p=" << p << " t0=" << t0;
    // And the returned start indeed fits.
    ASSERT_TRUE(free.fits_at(got, q, p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EarliestFitRandomized,
                         ::testing::Values(10, 11, 12, 13, 14, 15));

TEST(FreeProfileVersioned, CheckpointRewindRestoresPlanState) {
  FreeProfile free{StepProfile(8)};
  free.set_retain_accepted(true);
  const FreeProfile::Checkpoint before = free.checkpoint();

  // A plan in recording mode: permanent-API commits become frames too.
  free.commit_fitted(0, 3, 10);
  free.commit(5, 2, 4);
  FreeProfile::CommitToken probe = free.commit_tentative(12, 8, 2);
  free.accept(std::move(probe));
  EXPECT_EQ(free.open_commits(), 3u);
  EXPECT_EQ(free.capacity_at(6), 3);
  EXPECT_EQ(free.capacity_at(12), 0);

  free.rewind_to(before);
  EXPECT_EQ(free.open_commits(), 0u);
  EXPECT_EQ(free.capacity_at(0), 8);
  EXPECT_EQ(free.capacity_at(6), 8);
  EXPECT_EQ(free.capacity_at(12), 8);
  // Rewinding to the same checkpoint again is a no-op, not an error.
  free.rewind_to(before);
}

TEST(FreeProfileVersioned, RewindToMidPlanCheckpointUnwindsOnlyTheSuffix) {
  FreeProfile free{StepProfile(8)};
  free.set_retain_accepted(true);
  free.commit_fitted(0, 2, 10);
  const FreeProfile::Checkpoint mid = free.checkpoint();
  free.commit_fitted(0, 4, 5);
  EXPECT_EQ(free.capacity_at(0), 2);
  free.rewind_to(mid);
  EXPECT_EQ(free.capacity_at(0), 6) << "prefix frame must survive";
  EXPECT_EQ(free.open_commits(), 1u);
}

TEST(FreeProfileVersioned, PlanSinceListsTheRecordedDecisions) {
  FreeProfile free{StepProfile(8)};
  free.set_retain_accepted(true);
  const FreeProfile::Checkpoint before = free.checkpoint();
  free.commit_fitted(0, 3, 10);
  FreeProfile::CommitToken probe = free.commit_tentative(10, 2, 4);
  free.accept(std::move(probe));
  FreeProfile::CommitToken open = free.commit_tentative(20, 1, 1);

  const std::vector<FreeProfile::PlanStep> plan = free.plan_since(before);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], (FreeProfile::PlanStep{0, 3, 10, true}));
  EXPECT_EQ(plan[1], (FreeProfile::PlanStep{10, 2, 4, true}));
  EXPECT_EQ(plan[2], (FreeProfile::PlanStep{20, 1, 1, false}));
  free.rollback(std::move(open));
  EXPECT_EQ(free.plan_since(before).size(), 2u);
  free.rewind_to(before);
  EXPECT_TRUE(free.plan_since(before).empty());
}

TEST(FreeProfileVersioned, AcceptedFramesRefuseLegacyUncommit) {
  // uncommit() reverses tentative probes; a retained *accepted* frame is a
  // sealed plan decision that only rewind_to may unwind.
  FreeProfile free{StepProfile(4)};
  free.set_retain_accepted(true);
  FreeProfile::CommitToken token = free.commit_tentative(0, 2, 5);
  free.accept(std::move(token));
  EXPECT_THROW(free.uncommit(0, 2, 5), std::logic_error);
  EXPECT_EQ(free.capacity_at(0), 2) << "failed uncommit must not mutate";
}

TEST(FreeProfileVersioned, ToggleRetainRequiresEmptyStack) {
  FreeProfile free{StepProfile(4)};
  FreeProfile::CommitToken token = free.commit_tentative(0, 1, 1);
  EXPECT_THROW(free.set_retain_accepted(true), std::invalid_argument);
  free.rollback(std::move(token));
  free.set_retain_accepted(true);
  EXPECT_TRUE(free.retain_accepted());
}

TEST(FreeProfileVersioned, RewindRefusesToCrossPermanentMutations) {
  FreeProfile free{StepProfile(8)};
  free.set_retain_accepted(true);
  const FreeProfile::Checkpoint before = free.checkpoint();
  free.adjust_capacity(0, 10, -3);  // the world moved: not a plan frame
  EXPECT_THROW(free.rewind_to(before), std::logic_error);
  EXPECT_EQ(free.capacity_at(5), 5) << "failed rewind must not mutate";
}

TEST(FreeProfileVersioned, AdjustCapacityContracts) {
  FreeProfile free{StepProfile(4)};
  // Withdrawals must stay within the window's minimum free capacity.
  EXPECT_THROW(free.adjust_capacity(0, 10, -5), std::invalid_argument);
  free.adjust_capacity(2, 6, -4);
  EXPECT_EQ(free.capacity_at(3), 0);
  EXPECT_THROW(free.adjust_capacity(0, 4, -1), std::invalid_argument);
  // Restores lift the window back; a cancellation refund.
  free.adjust_capacity(2, 6, 4);
  EXPECT_EQ(free.capacity_at(3), 4);
  // Plans must be rewound before the world moves.
  FreeProfile::CommitToken token = free.commit_tentative(0, 1, 1);
  EXPECT_THROW(free.adjust_capacity(0, 1, -1), std::logic_error);
  free.rollback(std::move(token));
  EXPECT_THROW(free.adjust_capacity(3, 3, -1), std::invalid_argument);
}

TEST(FreeProfileVersioned, CompactHistoryPreservesTheLiveSuffix) {
  FreeProfile free{StepProfile(16)};
  for (Time t = 0; t < 100; t += 10) free.adjust_capacity(t, t + 5, -1);
  const std::size_t segments_before = free.profile().segment_count();
  const ProcCount at_now = free.capacity_at(52);
  const ProcCount later = free.capacity_at(75);
  const std::size_t removed = free.compact_history(52);
  EXPECT_GT(removed, 0u);
  EXPECT_LT(free.profile().segment_count(), segments_before);
  EXPECT_EQ(free.capacity_at(52), at_now);
  EXPECT_EQ(free.capacity_at(75), later);
  EXPECT_EQ(free.capacity_at(1000), 16);
  // A checkpoint taken before a compaction is no longer rewindable: the
  // coalescing is a permanent mutation.
  free.set_retain_accepted(true);
  const FreeProfile::Checkpoint before = free.checkpoint();
  ASSERT_GT(free.compact_history(60), 0u);
  EXPECT_THROW(free.rewind_to(before), std::logic_error);
  EXPECT_EQ(free.capacity_at(75), later);
}

// Differential twin fuzz: a long random interleaving of plan frames,
// checkpoints, rewinds and permanent mutations stays bit-identical to a
// naive twin that re-derives the profile from the surviving operations.
TEST(FreeProfileVersioned, CheckpointRewindTwinFuzz) {
  Prng prng(777);
  for (int round = 0; round < 20; ++round) {
    FreeProfile free{StepProfile(32)};
    free.set_retain_accepted(true);
    // The twin records every operation that is still in effect.
    struct Op {
      Time from = 0, to = 0;
      std::int64_t delta = 0;
    };
    std::vector<Op> permanent;
    std::vector<Op> frames;
    struct Mark {
      FreeProfile::Checkpoint cp;
      std::size_t frame_count = 0;
    };
    std::vector<Mark> marks;

    for (int step = 0; step < 120; ++step) {
      const int roll = static_cast<int>(prng.uniform_int(0, 9));
      const Time t = prng.uniform_int(0, 400);
      const ProcCount q = prng.uniform_int(1, 8);
      const Time p = prng.uniform_int(1, 40);
      if (roll < 4) {
        if (!free.fits_at(t, q, p)) continue;
        free.commit_fitted(t, q, p);
        frames.push_back(Op{t, t + p, -static_cast<std::int64_t>(q)});
      } else if (roll < 6) {
        marks.push_back(Mark{free.checkpoint(), frames.size()});
      } else if (roll < 8 && !marks.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            prng.uniform_int(0, static_cast<std::int64_t>(marks.size()) - 1));
        const Mark mark = marks[pick];
        free.rewind_to(mark.cp);
        frames.resize(mark.frame_count);
        marks.resize(pick + 1);
      } else if (frames.empty()) {
        // Permanent mutations require an empty frame stack; only attempt
        // one between plans.
        if (free.profile().min_in(t, t + p) < q) continue;
        free.adjust_capacity(t, t + p, -static_cast<std::int64_t>(q));
        permanent.push_back(Op{t, t + p, -static_cast<std::int64_t>(q)});
        marks.clear();  // checkpoints cannot cross a permanent mutation
      }
    }

    StepProfile twin(32);
    for (const Op& op : permanent) twin.add(op.from, op.to, op.delta);
    for (const Op& op : frames) twin.add(op.from, op.to, op.delta);
    for (Time t = 0; t <= 450; ++t)
      ASSERT_EQ(free.capacity_at(t), twin.value_at(t))
          << "round " << round << " t=" << t;
  }
}

}  // namespace
}  // namespace resched
