#include "algorithms/online_batch.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "algorithms/lsrc.hpp"
#include "bounds/lower_bounds.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

std::unique_ptr<Scheduler> lsrc() { return std::make_unique<LsrcScheduler>(); }

TEST(OnlineBatch, OfflineInstanceIsOneBatch) {
  const Instance instance(
      4, {Job{0, 2, 3, 0, ""}, Job{1, 2, 3, 0, ""}, Job{2, 4, 1, 0, ""}});
  OnlineBatchScheduler scheduler(lsrc());
  std::vector<BatchInfo> batches;
  const Schedule schedule = scheduler.schedule_with_batches(instance, batches).value();
  ASSERT_TRUE(schedule.validate(instance).ok);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].epoch, 0);
  EXPECT_EQ(batches[0].job_count, 3u);
}

TEST(OnlineBatch, ArrivalsDuringBatchWaitForCompletion) {
  // Job 1 arrives at t=1 while batch {job 0} runs until 10: it forms batch 2
  // starting at 10.
  const Instance instance(2, {Job{0, 2, 10, 0, ""}, Job{1, 2, 1, 1, ""}});
  OnlineBatchScheduler scheduler(lsrc());
  std::vector<BatchInfo> batches;
  const Schedule schedule = scheduler.schedule_with_batches(instance, batches).value();
  ASSERT_TRUE(schedule.validate(instance).ok);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(schedule.start(0), 0);
  EXPECT_EQ(schedule.start(1), 10);
  EXPECT_EQ(batches[1].epoch, 10);
}

TEST(OnlineBatch, IdleGapWhenNothingArrived) {
  // Nothing at t=0; first job arrives at 5.
  const Instance instance(2, {Job{0, 1, 2, 5, ""}});
  OnlineBatchScheduler scheduler(lsrc());
  const Schedule schedule = scheduler.schedule(instance).value();
  ASSERT_TRUE(schedule.validate(instance).ok);
  EXPECT_EQ(schedule.start(0), 5);
}

TEST(OnlineBatch, BatchesAreDisjointInTime) {
  WorkloadConfig config;
  config.n = 30;
  config.m = 8;
  config.mean_interarrival = 4.0;
  const Instance instance = random_workload(config, 71);
  OnlineBatchScheduler scheduler(lsrc());
  std::vector<BatchInfo> batches;
  const Schedule schedule = scheduler.schedule_with_batches(instance, batches).value();
  ASSERT_TRUE(schedule.validate(instance).ok);
  for (std::size_t b = 1; b < batches.size(); ++b)
    EXPECT_GE(batches[b].epoch, batches[b - 1].completion);
  std::size_t total = 0;
  for (const BatchInfo& batch : batches) total += batch.job_count;
  EXPECT_EQ(total, instance.n());
}

TEST(OnlineBatch, RespectsReservations) {
  const Instance instance(2, {Job{0, 2, 3, 0, ""}, Job{1, 2, 3, 2, ""}},
                          {Reservation{0, 2, 4, 8, ""}});
  OnlineBatchScheduler scheduler(lsrc());
  const Schedule schedule = scheduler.schedule(instance).value();
  EXPECT_TRUE(schedule.validate(instance).ok);
}

// The doubling argument: with a rho-approximate base algorithm the online
// makespan is at most 2 rho C*_offline. Against the certified offline lower
// bound and rho = 2 - 1/m this gives C_online <= 2 (2 - 1/m) LB.
TEST(OnlineBatch, DoublingGuaranteeAgainstLowerBound) {
  for (const std::uint64_t seed : {81u, 82u, 83u, 84u, 85u}) {
    WorkloadConfig config;
    config.n = 40;
    config.m = 8;
    config.mean_interarrival = 2.0;
    const Instance instance = random_workload(config, seed);
    OnlineBatchScheduler scheduler(lsrc());
    const Schedule schedule = scheduler.schedule(instance).value();
    ASSERT_TRUE(schedule.validate(instance).ok);
    const Time lb = makespan_lower_bound(instance);
    const double bound =
        2.0 * (2.0 - 1.0 / static_cast<double>(instance.m()));
    EXPECT_LE(static_cast<double>(schedule.makespan(instance)),
              bound * static_cast<double>(lb) + 1e-9)
        << "seed " << seed;
  }
}

TEST(OnlineBatch, HugeDurationsThrowInsteadOfOverflowing) {
  // Regression: batch completion used a raw `start + p`. A near-limit
  // duration job that starts after a short one pushes start + p past Time's
  // range -- that must surface as a typed overflow error from checked
  // arithmetic, never as signed-overflow UB.
  constexpr Time kHuge = std::numeric_limits<Time>::max() - 50;
  const Instance instance(
      1, {Job{0, 1, 100, 0, ""}, Job{1, 1, kHuge, 0, ""}});
  OnlineBatchScheduler scheduler(lsrc());
  EXPECT_THROW((void)scheduler.schedule(instance), std::overflow_error);
}

TEST(OnlineBatch, LargeButRepresentableEpochsStillSchedule) {
  // Just inside the checked boundary: the second batch opens at an epoch of
  // kTimeInfinity and completes at twice that without tripping the guard.
  const Instance instance(
      1, {Job{0, 1, kTimeInfinity, 0, ""}, Job{1, 1, kTimeInfinity, 1, ""}});
  OnlineBatchScheduler scheduler(lsrc());
  std::vector<BatchInfo> batches;
  const Schedule schedule =
      scheduler.schedule_with_batches(instance, batches).value();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[1].epoch, kTimeInfinity);
  EXPECT_EQ(batches[1].completion, 2 * kTimeInfinity);
  EXPECT_EQ(schedule.start(1), kTimeInfinity);
}

TEST(OnlineBatch, NameComposesBase) {
  OnlineBatchScheduler scheduler(lsrc());
  EXPECT_EQ(scheduler.name(), "online-batch(lsrc[submission])");
}

TEST(OnlineBatch, NullBaseRejected) {
  EXPECT_THROW(OnlineBatchScheduler(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace resched
