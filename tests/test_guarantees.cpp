#include "bounds/guarantees.hpp"

#include <gtest/gtest.h>

namespace resched {
namespace {

TEST(Guarantees, GrahamBound) {
  EXPECT_EQ(graham_bound(1), Rational(1));
  EXPECT_EQ(graham_bound(2), Rational(3, 2));
  EXPECT_EQ(graham_bound(10), Rational(19, 10));
  EXPECT_THROW((void)graham_bound(0), std::invalid_argument);
}

TEST(Guarantees, AlphaUpperBound) {
  EXPECT_EQ(alpha_upper_bound(Rational(1)), Rational(2));
  EXPECT_EQ(alpha_upper_bound(Rational(1, 2)), Rational(4));
  EXPECT_EQ(alpha_upper_bound(Rational(1, 3)), Rational(6));
  EXPECT_THROW((void)alpha_upper_bound(Rational(0)), std::invalid_argument);
  EXPECT_THROW((void)alpha_upper_bound(Rational(3, 2)), std::invalid_argument);
}

TEST(Guarantees, Prop2Ratio) {
  // k - 1 + 1/k; the paper's Figure 3 value at k = 6 is 31/6.
  EXPECT_EQ(prop2_ratio_for_k(6), Rational(31, 6));
  EXPECT_EQ(prop2_ratio_for_k(2), Rational(3, 2));
  EXPECT_EQ(prop2_ratio_for_k(3), Rational(7, 3));
  EXPECT_THROW((void)prop2_ratio_for_k(1), std::invalid_argument);
}

TEST(Guarantees, Prop2RatioMatchesClosedForm) {
  for (std::int64_t k = 2; k <= 20; ++k) {
    const Rational alpha(2, k);
    const Rational expected =
        Rational(2) / alpha - Rational(1) + alpha / Rational(2);
    EXPECT_EQ(prop2_ratio_for_k(k), expected) << "k = " << k;
  }
}

TEST(Guarantees, B1AtIntegerTwoOverAlpha) {
  // At alpha = 2/k the paper's B1 formula evaluates to:
  //   k - 1 + 1 / (floor((1 - 1/k) / (1/k)) + 1) = k - 1 + 1/k,
  // matching the constructive Prop. 2 ratio exactly.
  for (std::int64_t k = 2; k <= 12; ++k)
    EXPECT_EQ(lsrc_lower_bound_b1(Rational(2, k)), prop2_ratio_for_k(k))
        << "k = " << k;
}

TEST(Guarantees, B2AtIntegerTwoOverAlpha) {
  // B2(2/k) = k - (k-1)/k = k - 1 + 1/k as well: the two bounds coincide at
  // the constructive points (Figure 4's curves touch there).
  for (std::int64_t k = 2; k <= 12; ++k)
    EXPECT_EQ(lsrc_lower_bound_b2(Rational(2, k)), prop2_ratio_for_k(k))
        << "k = " << k;
}

TEST(Guarantees, B1DominatesB2Everywhere) {
  // "The bound B2 is a bit less precise than B1" -- B2 <= B1 on a dense
  // alpha grid.
  for (int i = 1; i <= 100; ++i) {
    const Rational alpha(i, 100);
    EXPECT_LE(lsrc_lower_bound_b2(alpha), lsrc_lower_bound_b1(alpha))
        << "alpha = " << alpha.to_string();
  }
}

TEST(Guarantees, UpperBoundDominatesLowerBounds) {
  // Figure 4: the 2/alpha upper bound lies above B1 (and hence B2).
  for (int i = 1; i <= 100; ++i) {
    const Rational alpha(i, 100);
    EXPECT_LE(lsrc_lower_bound_b1(alpha), alpha_upper_bound(alpha))
        << "alpha = " << alpha.to_string();
  }
}

TEST(Guarantees, BoundsDecreaseInAlpha) {
  // All curves of Figure 4 are non-increasing in alpha.
  for (int i = 1; i < 100; ++i) {
    const Rational a1(i, 100);
    const Rational a2(i + 1, 100);
    EXPECT_GE(alpha_upper_bound(a1), alpha_upper_bound(a2));
    EXPECT_GE(lsrc_lower_bound_b2(a1), lsrc_lower_bound_b2(a2));
  }
}

TEST(Guarantees, KnownFigure4Values) {
  // Spot values readable off Figure 4.
  EXPECT_EQ(alpha_upper_bound(Rational(1, 5)), Rational(10));
  EXPECT_EQ(lsrc_lower_bound_b2(Rational(1)), Rational(3, 2));
  EXPECT_EQ(lsrc_lower_bound_b1(Rational(1)), Rational(3, 2));
  // alpha = 3/4: ceil(2/alpha) = 3, B2 = 3 - 2*(3/4)/2 = 9/4.
  EXPECT_EQ(lsrc_lower_bound_b2(Rational(3, 4)), Rational(9, 4));
}

TEST(Guarantees, NonincreasingBound) {
  EXPECT_EQ(nonincreasing_bound(4), Rational(7, 4));
  EXPECT_EQ(nonincreasing_bound(1), Rational(1));
  EXPECT_THROW((void)nonincreasing_bound(0), std::invalid_argument);
}

TEST(Guarantees, NonincreasingRefinesGraham) {
  // m(C*) <= m implies 2 - 1/m(C*) <= 2 - 1/m.
  for (ProcCount m_at = 1; m_at <= 16; ++m_at)
    EXPECT_LE(nonincreasing_bound(m_at), graham_bound(16));
}

}  // namespace
}  // namespace resched
