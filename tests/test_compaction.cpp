#include "algorithms/compaction.hpp"

#include <gtest/gtest.h>

#include "algorithms/fcfs.hpp"
#include "algorithms/lsrc.hpp"
#include "algorithms/scheduler.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

TEST(Compaction, ShiftsAnArtificiallyDelayedSchedule) {
  const Instance instance(2, {Job{0, 1, 3, 0, ""}, Job{1, 1, 2, 0, ""}});
  Schedule padded(2);
  padded.set_start(0, 10);
  padded.set_start(1, 20);
  const CompactionResult result = compact_schedule(instance, padded);
  EXPECT_EQ(result.schedule.start(0), 0);
  EXPECT_EQ(result.schedule.start(1), 0);
  EXPECT_EQ(result.moved_jobs, 2);
  EXPECT_EQ(result.makespan_before, 22);
  EXPECT_EQ(result.makespan_after, 3);
}

TEST(Compaction, RespectsReleasesAndReservations) {
  const Instance instance(2, {Job{0, 2, 2, 5, ""}},
                          {Reservation{0, 2, 3, 8, ""}});
  Schedule late(1);
  late.set_start(0, 20);
  const CompactionResult result = compact_schedule(instance, late);
  // Earliest legal start: release 5, and [5,7) clears the reservation [8,11).
  EXPECT_EQ(result.schedule.start(0), 5);
  EXPECT_TRUE(result.schedule.validate(instance).ok);
}

TEST(Compaction, RejectsInfeasibleInput) {
  const Instance instance(1, {Job{0, 1, 2, 0, ""}, Job{1, 1, 2, 0, ""}});
  Schedule bad(2);
  bad.set_start(0, 0);
  bad.set_start(1, 1);
  EXPECT_THROW(compact_schedule(instance, bad), std::invalid_argument);
}

// LSRC schedules are active: compaction must be the identity on them, for
// every priority order (this is the dominance argument behind the exact
// solver, checked mechanically).
class CompactionOnLsrc : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompactionOnLsrc, LsrcSchedulesAreFixedPoints) {
  WorkloadConfig config;
  config.n = 30;
  config.m = 10;
  config.alpha = Rational(1, 2);
  const Instance base = random_workload(config, GetParam());
  AlphaReservationConfig resa;
  resa.alpha = Rational(1, 2);
  const Instance instance =
      with_alpha_restricted_reservations(base, resa, GetParam() + 3);
  for (const ListOrder order :
       {ListOrder::kSubmission, ListOrder::kLpt, ListOrder::kWidest}) {
    const Schedule schedule = LsrcScheduler(order, 5).schedule(instance).value();
    const CompactionResult result = compact_schedule(instance, schedule);
    EXPECT_EQ(result.moved_jobs, 0) << to_string(order);
    EXPECT_EQ(result.schedule, schedule) << to_string(order);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionOnLsrc,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// Safety across every scheduler and instance class: compaction never
// increases the makespan, output is always feasible, and compaction is
// idempotent.
class CompactionSafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompactionSafety, NeverWorseFeasibleIdempotent) {
  WorkloadConfig config;
  config.n = 25;
  config.m = 8;
  config.mean_interarrival = 2.0;
  const Instance instance = random_workload(config, GetParam());
  for (const char* name : {"fcfs", "conservative", "easy", "lsrc"}) {
    const Schedule schedule = make_scheduler(name)->schedule(instance).value();
    const CompactionResult once = compact_schedule(instance, schedule);
    ASSERT_TRUE(once.schedule.validate(instance).ok) << name;
    EXPECT_LE(once.makespan_after, once.makespan_before) << name;
    const CompactionResult twice = compact_schedule(instance, once.schedule);
    EXPECT_EQ(twice.moved_jobs, 0) << name << " (not idempotent)";
    EXPECT_EQ(twice.schedule, once.schedule) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionSafety,
                         ::testing::Values(11, 12, 13, 14, 15));

TEST(Compaction, EmptySchedule) {
  const Instance instance(3, {});
  const CompactionResult result =
      compact_schedule(instance, Schedule(0));
  EXPECT_EQ(result.makespan_after, 0);
  EXPECT_EQ(result.moved_jobs, 0);
}

}  // namespace
}  // namespace resched
