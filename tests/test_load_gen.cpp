#include "sim/load_gen.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace resched {
namespace {

LoadGenConfig default_config(WidthDistribution width) {
  LoadGenConfig config;
  config.m = 64;
  config.p_min = 1;
  config.p_max = 100;
  config.alpha = Rational(1, 2);
  config.width = width;
  return config;
}

std::vector<ArrivalSpec> draw(const LoadGenConfig& config, std::uint64_t seed,
                              double rate, int count) {
  LoadGen gen(config, seed);
  gen.set_rate(rate);
  std::vector<ArrivalSpec> arrivals;
  for (int i = 0; i < count; ++i) arrivals.push_back(gen.next());
  return arrivals;
}

// Exact fixed-seed arrival-sequence goldens, one per width distribution.
// These pin the generator bit-for-bit across platforms and refactors: any
// change to the draw order (e.g. reordering the width/duration draws) or to
// the shared draw_width helper shows up here, not as silently different
// service curves.
TEST(LoadGen, GoldenSequencePowersOfTwo) {
  const std::vector<ArrivalSpec> expected = {
      {241, 1, 3},  {1035, 32, 96}, {1047, 16, 1},
      {1080, 16, 12}, {1640, 1, 58}, {1804, 1, 3},
  };
  EXPECT_EQ(draw(default_config(WidthDistribution::kPowersOfTwo), 7, 5.0, 6),
            expected);
}

TEST(LoadGen, GoldenSequenceUniform) {
  const std::vector<ArrivalSpec> expected = {
      {241, 23, 3},  {1035, 10, 96}, {1047, 1, 1},
      {1080, 25, 12}, {1640, 27, 58}, {1804, 31, 3},
  };
  EXPECT_EQ(draw(default_config(WidthDistribution::kUniform), 7, 5.0, 6),
            expected);
}

TEST(LoadGen, GoldenSequenceMostlyNarrow) {
  const std::vector<ArrivalSpec> expected = {
      {241, 1, 3},   {1180, 1, 56}, {1284, 1, 2},
      {1843, 4, 58}, {1902, 2, 8},  {1940, 3, 20},
  };
  EXPECT_EQ(draw(default_config(WidthDistribution::kMostlyNarrow), 7, 5.0, 6),
            expected);
}

TEST(LoadGen, GoldenSequenceUniformRuntimes) {
  LoadGenConfig config;
  config.m = 16;
  config.p_min = 5;
  config.p_max = 9;
  config.log_uniform_p = false;
  const std::vector<ArrivalSpec> expected = {
      {3, 16, 6},  {8, 1, 5},   {16, 1, 5},
      {18, 16, 9}, {37, 16, 9}, {55, 16, 8},
  };
  EXPECT_EQ(draw(config, 11, 100.0, 6), expected);
}

TEST(LoadGen, DeterministicAcrossInstances) {
  const auto config = default_config(WidthDistribution::kPowersOfTwo);
  EXPECT_EQ(draw(config, 123, 10.0, 200), draw(config, 123, 10.0, 200));
  EXPECT_NE(draw(config, 123, 10.0, 200), draw(config, 124, 10.0, 200));
}

TEST(LoadGen, ArrivalsAreMonotone) {
  const auto arrivals =
      draw(default_config(WidthDistribution::kUniform), 3, 50.0, 500);
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    EXPECT_LE(arrivals[i - 1].time, arrivals[i].time);
}

TEST(LoadGen, ShapesRespectConfig) {
  auto config = default_config(WidthDistribution::kUniform);
  config.p_min = 3;
  config.p_max = 17;
  config.alpha = Rational(1, 4);  // q_cap = 16
  for (const ArrivalSpec& a : draw(config, 5, 20.0, 300)) {
    EXPECT_GE(a.p, 3);
    EXPECT_LE(a.p, 17);
    EXPECT_GE(a.q, 1);
    EXPECT_LE(a.q, 16);
  }
}

TEST(LoadGen, MeanInterarrivalTracksRate) {
  // 10 jobs/kilotick => 100-tick mean gap; check the empirical mean within
  // 15% over 4000 draws.
  const auto arrivals =
      draw(default_config(WidthDistribution::kPowersOfTwo), 9, 10.0, 4000);
  const double mean_gap =
      static_cast<double>(arrivals.back().time) /
      static_cast<double>(arrivals.size());
  EXPECT_NEAR(mean_gap, 100.0, 15.0);
}

TEST(LoadGen, SteppedRateContinuesTheClock) {
  // Raising the rate mid-stream must keep arrivals monotone and speed the
  // stream up, never restart it.
  LoadGen gen(default_config(WidthDistribution::kPowersOfTwo), 21);
  gen.set_rate(1.0);
  Time last = 0;
  for (int i = 0; i < 50; ++i) {
    const Time t = gen.next().time;
    EXPECT_GE(t, last);
    last = t;
  }
  gen.set_rate(100.0);
  EXPECT_DOUBLE_EQ(gen.rate(), 100.0);
  const Time before_step = last;
  for (int i = 0; i < 50; ++i) {
    const Time t = gen.next().time;
    EXPECT_GE(t, last);
    last = t;
  }
  // 50 draws at 100/kilotick average 500 ticks; the slow prefix took ~50k.
  EXPECT_LT(last - before_step, (last / 50) * 10 + 10000);
}

TEST(LoadGen, ClockSaturatesAtTimeInfinity) {
  // An absurdly slow rate overflows the double arrival clock past any
  // representable tick within a few draws; the generator must clamp to
  // kTimeInfinity instead of llround-UB (same contract as
  // random_workload).
  LoadGen gen(default_config(WidthDistribution::kUniform), 2);
  gen.set_rate(1e-300);
  ArrivalSpec spec = gen.next();
  EXPECT_EQ(spec.time, kTimeInfinity);
  spec = gen.next();  // stays pinned, still monotone
  EXPECT_EQ(spec.time, kTimeInfinity);
}

TEST(LoadGen, RejectsBadConfig) {
  LoadGenConfig config;
  config.p_min = 0;
  EXPECT_THROW(LoadGen(config, 1), std::invalid_argument);
  config = LoadGenConfig{};
  config.m = 0;
  EXPECT_THROW(LoadGen(config, 1), std::invalid_argument);
  LoadGen ok{LoadGenConfig{}, 1};
  EXPECT_THROW(ok.set_rate(0.0), std::invalid_argument);
  EXPECT_THROW(ok.set_rate(-2.0), std::invalid_argument);
}

}  // namespace
}  // namespace resched
