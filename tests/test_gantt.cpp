#include "core/gantt.hpp"

#include <gtest/gtest.h>

namespace resched {
namespace {

Instance demo_instance() {
  return Instance(3, {Job{0, 2, 4, 0, "a"}, Job{1, 1, 8, 0, "b"}},
                  {Reservation{0, 1, 3, 4, "maint"}});
}

Schedule demo_schedule() {
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 0);
  return schedule;
}

TEST(AsciiGantt, HasOneRowPerMachine) {
  const std::string art = ascii_gantt(demo_instance(), demo_schedule());
  // Three machine rows labelled 0..2.
  EXPECT_NE(art.find(" 0 |"), std::string::npos);
  EXPECT_NE(art.find(" 1 |"), std::string::npos);
  EXPECT_NE(art.find(" 2 |"), std::string::npos);
  EXPECT_EQ(art.find(" 3 |"), std::string::npos);
}

TEST(AsciiGantt, ShowsJobsReservationAndIdle) {
  const std::string art = ascii_gantt(demo_instance(), demo_schedule());
  EXPECT_NE(art.find('A'), std::string::npos);   // job 0
  EXPECT_NE(art.find('B'), std::string::npos);   // job 1
  EXPECT_NE(art.find('#'), std::string::npos);   // reservation
  EXPECT_NE(art.find('.'), std::string::npos);   // idle
}

TEST(AsciiGantt, LegendListsJobs) {
  const std::string art = ascii_gantt(demo_instance(), demo_schedule());
  EXPECT_NE(art.find("legend:"), std::string::npos);
  EXPECT_NE(art.find("A=J0(q=2,p=4)"), std::string::npos);
}

TEST(AsciiGantt, RowCapRespected) {
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i)
    jobs.push_back(Job{static_cast<JobId>(i), 1, 2, 0, ""});
  const Instance instance(100, std::move(jobs));
  Schedule schedule(4);
  for (JobId i = 0; i < 4; ++i) schedule.set_start(i, 0);
  GanttOptions options;
  options.max_rows = 8;
  const std::string art = ascii_gantt(instance, schedule, options);
  EXPECT_NE(art.find("more machines"), std::string::npos);
}

TEST(AsciiGantt, WidthControlsColumns) {
  GanttOptions options;
  options.width = 20;
  options.show_legend = false;
  const std::string art = ascii_gantt(demo_instance(), demo_schedule(),
                                      options);
  // Each machine row is " N |" + width chars + "|".
  std::size_t row_start = art.find(" 0 |");
  ASSERT_NE(row_start, std::string::npos);
  const std::size_t row_end = art.find('\n', row_start);
  EXPECT_EQ(row_end - row_start, 4u + 20u + 1u);
}

TEST(SvgGantt, WellFormedDocument) {
  const std::string svg = svg_gantt(demo_instance(), demo_schedule());
  EXPECT_EQ(svg.find("<svg"), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One tooltip per job plus one per reservation.
  EXPECT_NE(svg.find("<title>job 0"), std::string::npos);
  EXPECT_NE(svg.find("<title>job 1"), std::string::npos);
  EXPECT_NE(svg.find("<title>reservation 0"), std::string::npos);
  EXPECT_NE(svg.find("url(#hatch)"), std::string::npos);
}

TEST(SvgGantt, DeterministicOutput) {
  const std::string a = svg_gantt(demo_instance(), demo_schedule());
  const std::string b = svg_gantt(demo_instance(), demo_schedule());
  EXPECT_EQ(a, b);
}

TEST(Gantt, RejectsBadOptions) {
  GanttOptions options;
  options.width = 0;
  EXPECT_THROW(ascii_gantt(demo_instance(), demo_schedule(), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace resched
