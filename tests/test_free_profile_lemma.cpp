// Property test of the candidate-start lemma in profile_allocator.hpp.
//
// The lemma: for fixed committed capacity, earliest_fit(t0, q, p) always
// returns either t0 itself or a *capacity-increase breakpoint* of the free
// profile, and it is genuinely the earliest feasible start (no t in
// [t0, result) fits). Schedulers lean on this to only re-examine queues at
// capacity-increase events, so a counterexample here is a missed-start bug
// in every list/backfilling algorithm at once.
//
// Also checks that tentative commits unwind to the bit-identical profile,
// which is what branch-and-bound backtracking assumes. Undo is LIFO by
// contract (tokens resolve newest-first); both the token rollback and the
// checked legacy uncommit wrapper are exercised.
#include "core/profile_allocator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/step_profile.hpp"
#include "util/prng.hpp"

namespace resched {
namespace {

constexpr Time kHorizon = 160;

// Random non-negative capacity profile: m processors minus random
// reservations, never dipping below zero, tail capacity m.
StepProfile random_capacity(Prng& prng, ProcCount m) {
  StepProfile profile(m);
  const int reservations = static_cast<int>(prng.uniform_int(0, 24));
  for (int i = 0; i < reservations; ++i) {
    Time a = prng.uniform_int(0, kHorizon - 1);
    Time b = prng.uniform_int(1, kHorizon);
    if (a > b) std::swap(a, b);
    if (a == b) b = a + 1;
    const std::int64_t room = profile.min_in(a, b);
    if (room <= 0) continue;
    profile.add(a, b, -prng.uniform_int(1, room));
  }
  return profile;
}

bool is_capacity_increase_breakpoint(const StepProfile& profile, Time t) {
  if (t <= 0) return false;
  return profile.value_at(t) > profile.value_at(t - 1);
}

TEST(FreeProfileLemma, EarliestFitReturnsT0OrCapacityIncreaseBreakpoint) {
  Prng prng(1718);
  for (int round = 0; round < 200; ++round) {
    const ProcCount m = prng.uniform_int(1, 8);
    const FreeProfile free(random_capacity(prng, m));
    for (int query = 0; query < 16; ++query) {
      const Time t0 = prng.uniform_int(0, kHorizon);
      const ProcCount q = prng.uniform_int(1, m);
      const Time p = prng.uniform_int(1, 40);
      const Time t = free.earliest_fit(t0, q, p);

      // The result is feasible...
      ASSERT_TRUE(free.fits_at(t, q, p))
          << "t0=" << t0 << " q=" << q << " p=" << p << " -> t=" << t;
      // ...and it is t0 or an increase breakpoint (the lemma).
      ASSERT_TRUE(t == t0 || is_capacity_increase_breakpoint(free.profile(), t))
          << "earliest_fit returned t=" << t
          << " which is neither t0=" << t0
          << " nor a capacity-increase breakpoint";
      // ...and nothing earlier fits (brute force over integer starts; all
      // breakpoints are integers, so integer starts are exhaustive).
      ASSERT_LE(t, kHorizon + 1) << "fit must exist by the tail";
      for (Time s = t0; s < t; ++s)
        ASSERT_FALSE(free.fits_at(s, q, p))
            << "earliest_fit skipped feasible start s=" << s << " (t0=" << t0
            << " q=" << q << " p=" << p << " returned t=" << t << ")";
    }
  }
}

TEST(FreeProfileLemma, TentativeCommitsUnwindToIdenticalProfile) {
  Prng prng(9091);
  for (int round = 0; round < 120; ++round) {
    const ProcCount m = prng.uniform_int(2, 8);
    FreeProfile free(random_capacity(prng, m));
    const StepProfile snapshot = free.profile();

    // Stack a random batch of tentative commits at their earliest fits
    // (exactly the branch-and-bound shape), then unwind newest-first; the
    // profile must come back bit-identical. Alternate between the token
    // rollback and the checked legacy uncommit wrapper.
    struct Placed {
      Time t;
      ProcCount q;
      Time p;
      FreeProfile::CommitToken token;
    };
    std::vector<Placed> placed;
    const int jobs = static_cast<int>(prng.uniform_int(1, 10));
    for (int i = 0; i < jobs; ++i) {
      const ProcCount q = prng.uniform_int(1, m);
      const Time p = prng.uniform_int(1, 30);
      const Time t0 = prng.uniform_int(0, kHorizon);
      if (free.profile().final_value() < q) continue;
      const Time t = free.earliest_fit(t0, q, p);
      placed.push_back(Placed{t, q, p, free.commit_tentative(t, q, p)});
    }
    ASSERT_GE(free.profile().min_value(), 0)
        << "commit drove free capacity negative";
    ASSERT_EQ(free.open_commits(), placed.size());

    while (!placed.empty()) {
      Placed& job = placed.back();
      if (prng.chance(0.5)) {
        free.rollback(std::move(job.token));
      } else {
        free.uncommit(job.t, job.q, job.p);
      }
      placed.pop_back();
    }
    ASSERT_EQ(free.open_commits(), 0u);
    ASSERT_EQ(free.profile(), snapshot)
        << "tentative commits did not round-trip";
  }
}

TEST(FreeProfileLemma, CommitThenRequeryNeverFindsEarlierStart) {
  // Monotonicity under commitment: committing jobs can only delay (never
  // advance) the earliest fit of another job.
  Prng prng(5555);
  for (int round = 0; round < 100; ++round) {
    const ProcCount m = prng.uniform_int(2, 6);
    FreeProfile free(random_capacity(prng, m));
    const ProcCount q = prng.uniform_int(1, m);
    const Time p = prng.uniform_int(1, 25);
    const Time before = free.earliest_fit(0, q, p);

    const ProcCount cq = prng.uniform_int(1, m);
    const Time cp = prng.uniform_int(1, 25);
    const Time ct = free.earliest_fit(prng.uniform_int(0, kHorizon), cq, cp);
    free.commit(ct, cq, cp);

    const Time after = free.earliest_fit(0, q, p);
    ASSERT_GE(after, before);
  }
}

TEST(FreeProfileLemma, EarliestFitRejectsImpossibleJobs) {
  StepProfile capacity(4);
  capacity.add(10, 20, -4);  // full blackout window
  const FreeProfile free(capacity);
  // q above the eventual free capacity violates the precondition.
  EXPECT_THROW((void)free.earliest_fit(0, 5, 1), std::invalid_argument);
  // A job that straddles the blackout must wait for its end (a
  // capacity-increase breakpoint, per the lemma).
  EXPECT_EQ(free.earliest_fit(5, 1, 10), 20);
  // A job that fits before the blackout starts at t0.
  EXPECT_EQ(free.earliest_fit(0, 4, 10), 0);
}

}  // namespace
}  // namespace resched
