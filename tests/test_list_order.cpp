#include "algorithms/list_order.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace resched {
namespace {

Instance mixed_instance() {
  // Deliberately non-sorted in every attribute.
  return Instance(10, {
                          Job{0, 3, 5, 0, ""},   // area 15
                          Job{1, 1, 9, 0, ""},   // area 9
                          Job{2, 7, 2, 0, ""},   // area 14
                          Job{3, 2, 9, 0, ""},   // area 18 (p ties with 1)
                          Job{4, 5, 1, 0, ""},   // area 5
                      });
}

TEST(ListOrder, SubmissionIsIdentity) {
  const auto list = make_list(mixed_instance(), ListOrder::kSubmission);
  EXPECT_EQ(list, (std::vector<JobId>{0, 1, 2, 3, 4}));
}

TEST(ListOrder, LptSortsByDecreasingDuration) {
  const auto list = make_list(mixed_instance(), ListOrder::kLpt);
  // p: 9(id1), 9(id3), 5, 2, 1 -- stable tie-break by id.
  EXPECT_EQ(list, (std::vector<JobId>{1, 3, 0, 2, 4}));
}

TEST(ListOrder, SptSortsByIncreasingDuration) {
  const auto list = make_list(mixed_instance(), ListOrder::kSpt);
  EXPECT_EQ(list, (std::vector<JobId>{4, 2, 0, 1, 3}));
}

TEST(ListOrder, WidestSortsByDecreasingWidth) {
  const auto list = make_list(mixed_instance(), ListOrder::kWidest);
  EXPECT_EQ(list, (std::vector<JobId>{2, 4, 0, 3, 1}));
}

TEST(ListOrder, NarrowestSortsByIncreasingWidth) {
  const auto list = make_list(mixed_instance(), ListOrder::kNarrowest);
  EXPECT_EQ(list, (std::vector<JobId>{1, 3, 0, 4, 2}));
}

TEST(ListOrder, AreaOrders) {
  EXPECT_EQ(make_list(mixed_instance(), ListOrder::kMaxArea),
            (std::vector<JobId>{3, 0, 2, 1, 4}));
  EXPECT_EQ(make_list(mixed_instance(), ListOrder::kMinArea),
            (std::vector<JobId>{4, 1, 2, 0, 3}));
}

TEST(ListOrder, RandomIsSeededPermutation) {
  const auto a = make_list(mixed_instance(), ListOrder::kRandom, 7);
  const auto b = make_list(mixed_instance(), ListOrder::kRandom, 7);
  const auto c = make_list(mixed_instance(), ListOrder::kRandom, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // overwhelmingly likely for n = 5
  const auto identity = make_list(mixed_instance(), ListOrder::kSubmission);
  EXPECT_TRUE(std::is_permutation(a.begin(), a.end(), identity.begin()));
}

TEST(ListOrder, EveryOrderIsAPermutation) {
  const auto identity = make_list(mixed_instance(), ListOrder::kSubmission);
  for (const ListOrder order : all_list_orders()) {
    const auto list = make_list(mixed_instance(), order, 3);
    EXPECT_TRUE(std::is_permutation(list.begin(), list.end(),
                                    identity.begin()))
        << to_string(order);
  }
}

TEST(ListOrder, StringRoundTrip) {
  for (const ListOrder order : all_list_orders())
    EXPECT_EQ(list_order_from_string(to_string(order)), order);
  EXPECT_THROW((void)list_order_from_string("bogus"), std::invalid_argument);
}

TEST(ListOrder, EmptyInstance) {
  const Instance empty(4, {});
  EXPECT_TRUE(make_list(empty, ListOrder::kLpt).empty());
}

}  // namespace
}  // namespace resched
