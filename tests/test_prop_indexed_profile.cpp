// Differential fuzz suite for the segment-tree-indexed StepProfile and the
// FreeProfile built on top of it.
//
// The index (step_profile.hpp, invariants I1-I5) only engages on windows
// spanning more than kIndexedLeafCutoff segments, so unlike
// test_prop_step_profile (horizon 96) this suite drives profiles with many
// hundreds of segments: every query here exercises the lazily built tree,
// its incremental lazy range-adds, boundary-leaf recomputes and
// budget-triggered rebuilds against a naive dense-array model.
//
// Also re-asserts the candidate-start lemma of profile_allocator.hpp on the
// indexed path, checks canonical form after every commit/uncommit
// interleaving, and pins the strong exception guarantee of add(): an
// overflow mid-window must leave the profile untouched (the seed
// implementation applied partial deltas and left equal-value neighbours
// unmerged).
#include "core/profile_allocator.hpp"
#include "core/step_profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/prng.hpp"

namespace resched {
namespace {

void ExpectCanonical(const StepProfile& profile) {
  const auto segments = profile.segments();
  ASSERT_FALSE(segments.empty());
  EXPECT_EQ(segments.front().start, 0);
  EXPECT_EQ(segments.back().end, kTimeInfinity);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_LT(segments[i].start, segments[i].end);
    if (i + 1 < segments.size()) {
      EXPECT_EQ(segments[i].end, segments[i + 1].start);
      EXPECT_NE(segments[i].value, segments[i + 1].value)
          << "adjacent segments must have distinct values (canonical form)";
    }
  }
}

// Dense reference over integer ticks [0, horizon) plus an unbounded tail.
class DenseModel {
 public:
  DenseModel(Time horizon, std::int64_t initial)
      : horizon_(horizon),
        ticks_(static_cast<std::size_t>(horizon), initial),
        tail_(initial) {}

  void add(Time from, Time to, std::int64_t delta) {
    if (from >= to) return;
    for (Time t = from; t < std::min(to, horizon_); ++t)
      ticks_[static_cast<std::size_t>(t)] += delta;
    if (to >= kTimeInfinity) tail_ += delta;
  }

  [[nodiscard]] std::int64_t value_at(Time t) const {
    return t < horizon_ ? ticks_[static_cast<std::size_t>(t)] : tail_;
  }

  [[nodiscard]] std::int64_t min_in(Time from, Time to) const {
    std::int64_t result = value_at(from);
    for (Time t = from; t < std::min(to, horizon_); ++t)
      result = std::min(result, value_at(t));
    if (to > horizon_) result = std::min(result, tail_);
    return result;
  }

  [[nodiscard]] std::int64_t max_in(Time from, Time to) const {
    std::int64_t result = value_at(from);
    for (Time t = from; t < std::min(to, horizon_); ++t)
      result = std::max(result, value_at(t));
    if (to > horizon_) result = std::max(result, tail_);
    return result;
  }

  [[nodiscard]] Time first_below(Time from, Time to,
                                 std::int64_t threshold) const {
    for (Time t = from; t < std::min(to, horizon_); ++t)
      if (value_at(t) < threshold) return t;
    if (to > horizon_ && tail_ < threshold) return std::max(from, horizon_);
    return kTimeInfinity;
  }

  [[nodiscard]] Time first_at_least(Time from, std::int64_t threshold) const {
    for (Time t = from; t < horizon_; ++t)
      if (value_at(t) >= threshold) return t;
    if (tail_ >= threshold) return std::max(from, horizon_);
    return kTimeInfinity;
  }

  [[nodiscard]] std::int64_t integral(Time from, Time to) const {
    std::int64_t area = 0;
    for (Time t = from; t < to; ++t) area += value_at(t);
    return area;
  }

 private:
  Time horizon_;
  std::vector<std::int64_t> ticks_;
  std::int64_t tail_;
};

// Segment-walk reference for time_to_accumulate: replays the documented
// positive-rate accumulation over the public segment list, independent of
// the sum-augmented index (and of the hybrid scan/descent dispatch).
Time ref_time_to_accumulate(const StepProfile& profile, Time from,
                            std::int64_t target) {
  if (target == 0) return from;
  std::int64_t remaining = target;
  for (const auto& segment : profile.segments()) {
    if (segment.end <= from) continue;
    const Time seg_start = std::max(segment.start, from);
    const std::int64_t rate = segment.value;
    if (rate > 0) {
      const Time needed = (remaining + rate - 1) / rate;
      if (segment.end >= kTimeInfinity || needed <= segment.end - seg_start)
        return needed >= kTimeInfinity - seg_start ? kTimeInfinity
                                                  : seg_start + needed;
      remaining -= rate * (segment.end - seg_start);
    }
  }
  return kTimeInfinity;
}

// ---------------------------------------------------------------------------
// StepProfile at index scale.
// ---------------------------------------------------------------------------

TEST(PropIndexedProfile, WideProfilesMatchDenseModelThroughIncrementalIndex) {
  constexpr Time kHorizon = 4096;
  Prng prng(20260726);
  for (int round = 0; round < 8; ++round) {
    const std::int64_t initial = prng.uniform_int(0, 8);
    StepProfile profile(initial);
    DenseModel model(kHorizon, initial);
    for (int op = 0; op < 420; ++op) {
      // Mutation: mostly bounded windows, occasionally unbounded.
      Time a = prng.uniform_int(0, kHorizon - 1);
      Time b = prng.chance(0.05) ? kTimeInfinity
                                 : prng.uniform_int(1, kHorizon);
      if (b != kTimeInfinity && a > b) std::swap(a, b);
      if (a == b) b = a + 1;
      const std::int64_t delta = prng.uniform_int(-3, 3);
      profile.add(a, b, delta);
      model.add(a, b, delta);

      // One wide query (spans hundreds of segments -> tree descent) and one
      // narrow query (bounded scan) per mutation, so every intermediate
      // index state is checked.
      {
        const Time f = prng.uniform_int(0, kHorizon / 4);
        const Time t = prng.uniform_int(3 * kHorizon / 4, kHorizon + 64);
        ASSERT_EQ(profile.min_in(f, t), model.min_in(f, t))
            << "round " << round << " op " << op;
        ASSERT_EQ(profile.max_in(f, t), model.max_in(f, t));
        const std::int64_t threshold = prng.uniform_int(-2, 10);
        ASSERT_EQ(profile.first_below(f, t, threshold),
                  model.first_below(f, t, threshold))
            << "round " << round << " op " << op << " thr " << threshold;
        ASSERT_EQ(profile.first_at_least(f, threshold),
                  model.first_at_least(f, threshold));
        // Sum-augmented paths: wide integral = tree range-sum with scanned
        // boundary leaves; time_to_accumulate = positive-rate descent
        // (values here go negative, exercising the expand-on-negative
        // branch alongside the O(log s) skips).
        ASSERT_EQ(profile.integral(f, t), model.integral(f, t))
            << "round " << round << " op " << op;
        const std::int64_t target = prng.uniform_int(0, 4000);
        ASSERT_EQ(profile.time_to_accumulate(f, target),
                  ref_time_to_accumulate(profile, f, target))
            << "round " << round << " op " << op << " target " << target;
      }
      {
        const Time f = prng.uniform_int(0, kHorizon - 2);
        const Time t = f + prng.uniform_int(1, 64);
        ASSERT_EQ(profile.min_in(f, t), model.min_in(f, t));
        const std::int64_t threshold = prng.uniform_int(-2, 10);
        ASSERT_EQ(profile.first_below(f, t, threshold),
                  model.first_below(f, t, threshold));
        ASSERT_EQ(profile.integral(f, t), model.integral(f, t));
      }
    }
    ASSERT_GT(profile.segment_count(), 256u)
        << "fuzz profile too small to exercise the index";
    ASSERT_NO_FATAL_FAILURE(ExpectCanonical(profile));
    for (Time t = 0; t <= kHorizon + 2; ++t)
      ASSERT_EQ(profile.value_at(t), model.value_at(t)) << "at t=" << t;
  }
}

TEST(PropIndexedProfile, MinMaxInUnboundedWindowsMatchOnIndexedProfiles) {
  constexpr Time kHorizon = 4096;
  Prng prng(99);
  StepProfile profile(5);
  DenseModel model(kHorizon, 5);
  for (int op = 0; op < 600; ++op) {
    const Time a = prng.uniform_int(0, kHorizon - 2);
    // Clamp to the horizon: the dense model cannot track mass landing in
    // (kHorizon, kTimeInfinity).
    const Time b = std::min(a + prng.uniform_int(1, 32), kHorizon);
    const std::int64_t delta = prng.uniform_int(-2, 2);
    profile.add(a, b, delta);
    model.add(a, b, delta);
  }
  ASSERT_GT(profile.segment_count(), 256u);
  for (int query = 0; query < 200; ++query) {
    const Time f = prng.uniform_int(0, kHorizon);
    ASSERT_EQ(profile.min_in(f, kTimeInfinity), model.min_in(f, kTimeInfinity));
    ASSERT_EQ(profile.max_in(f, kTimeInfinity), model.max_in(f, kTimeInfinity));
    const std::int64_t threshold = prng.uniform_int(-2, 10);
    ASSERT_EQ(profile.first_below(f, kTimeInfinity, threshold),
              model.first_below(f, kTimeInfinity, threshold));
  }
}

TEST(PropIndexedProfile, FirstAtLeastInsideLastSnapshotLeafWithLongTail) {
  // Regression: with a valid index, query from a point strictly inside the
  // *last* snapshot leaf while more than kIndexedLeafCutoff real segments
  // follow it (incremental adds split far beyond the last snapshot
  // breakpoint). The first implementation read index_.times[lo_leaf + 1]
  // one past the end here (caught by ASan); the clipped scan must instead
  // treat the last leaf as unbounded.
  StepProfile profile(1000);
  // ~600 segments in [0, 6000] -> rebuild budget of ~600 incremental adds.
  for (Time t = 0; t < 6000; t += 10) profile.add(t, t + 5, 1 + (t / 10) % 3);
  // Build the index with a wide query.
  (void)profile.min_in(0, kTimeInfinity);
  // ~580 incremental adds entirely inside the last snapshot leaf
  // [6000, +inf): each is a boundary-partial update, staying within budget,
  // so the index remains valid while the tail grows far beyond the snapshot.
  for (Time t = 6100; t < 12000; t += 10) profile.add(t, t + 5, (t / 10) % 5);
  // The only capacity >= 1006 in the tail sits at t = 11990..11995
  // (1000 + 4 is the max of the periodic bumps; add a distinct spike).
  profile.add(11000, 11001, 500);
  EXPECT_EQ(profile.first_at_least(6050, 1400), 11000);
  EXPECT_EQ(profile.first_at_least(6050, 2000), kTimeInfinity);
  // Differential cross-check against a brute scan over the segment list.
  const auto segments = profile.segments();
  for (const std::int64_t threshold : {1001, 1003, 1004, 1400, 1501}) {
    Time expected = kTimeInfinity;
    for (const auto& segment : segments) {
      if (segment.end <= 6050 || segment.value < threshold) continue;
      expected = std::max<Time>(segment.start, 6050);
      break;
    }
    EXPECT_EQ(profile.first_at_least(6050, threshold), expected)
        << "threshold=" << threshold;
  }
}

TEST(PropIndexedProfile, TimeToAccumulateClampsThroughTheIndexedDescent) {
  // The kTimeInfinity clamp lived only in the linear walk before the sum
  // augmentation; this pins it on the tree path: several hundred segments
  // force the descent, and the rate-1 tail makes near-ceiling targets land
  // "past any horizon".
  StepProfile profile(0);
  for (Time t = 0; t < 4000; t += 10) profile.add(t, t + 5, 1 + (t / 10) % 3);
  profile.add(4000, kTimeInfinity, 1);
  (void)profile.min_in(0, kTimeInfinity);  // build the index
  ASSERT_GT(profile.segment_count(), 256u);

  // Finite crossing just past the fragmented prefix, through descent + tail.
  const std::int64_t prefix_area = profile.integral(0, 4000);
  EXPECT_EQ(profile.time_to_accumulate(0, prefix_area + 7), 4007);
  // Near-ceiling target over the rate-1 tail: clamps instead of overflowing.
  EXPECT_EQ(profile.time_to_accumulate(
                0, std::numeric_limits<std::int64_t>::max()),
            kTimeInfinity);
  // Exactly reaching the horizon is "never"; one tick earlier is finite.
  EXPECT_EQ(profile.time_to_accumulate(0, prefix_area + (kTimeInfinity - 4000)),
            kTimeInfinity);
  EXPECT_EQ(
      profile.time_to_accumulate(0, prefix_area + (kTimeInfinity - 4001)),
      kTimeInfinity - 1);
  // Cross-check both answers against the segment-walk reference.
  for (const std::int64_t target : {std::int64_t{1}, prefix_area,
                                    prefix_area + 12345}) {
    EXPECT_EQ(profile.time_to_accumulate(3, target),
              ref_time_to_accumulate(profile, 3, target))
        << "target=" << target;
  }
}

TEST(PropIndexedProfile, IntegralOverflowStillThrowsOnIndexedProfiles) {
  // Wide windows go through the 128-bit range sum; results that do not fit
  // int64 must still surface as std::overflow_error, profile intact.
  StepProfile profile(1'000'000'000'000ll);  // 1e12 per tick
  for (Time t = 0; t < 4000; t += 10) profile.add(t, t + 5, (t / 10) % 7);
  (void)profile.min_in(0, kTimeInfinity);
  ASSERT_GT(profile.segment_count(), 256u);
  std::int64_t expected = 0;
  for (const auto& segment : profile.segments_in(0, 4000))
    expected += segment.value * (segment.end - segment.start);
  EXPECT_EQ(profile.integral(0, 4000), expected);
  EXPECT_THROW((void)profile.integral(0, kTimeInfinity - 1),
               std::overflow_error);
  ASSERT_NO_FATAL_FAILURE(ExpectCanonical(profile));
}

// ---------------------------------------------------------------------------
// add(): strong exception guarantee (the uncommit canonical-form fix).
// ---------------------------------------------------------------------------

TEST(PropIndexedProfile, OverflowMidWindowLeavesProfileUntouchedAndCanonical) {
  constexpr std::int64_t kHuge = std::numeric_limits<std::int64_t>::max() - 2;
  StepProfile profile(0);
  profile.add(10, 20, 5);
  profile.add(20, 30, kHuge);
  const StepProfile snapshot = profile;
  // [20, 30) overflows; [0, 10) and [10, 20) were affected first. The seed
  // implementation applied partial deltas and left the split at t=30
  // unmerged; the strong guarantee requires a perfect rollback-free abort.
  EXPECT_THROW(profile.add(0, 40, 10), std::overflow_error);
  EXPECT_EQ(profile, snapshot);
  ASSERT_NO_FATAL_FAILURE(ExpectCanonical(profile));
  // The profile still answers queries correctly afterwards.
  EXPECT_EQ(profile.value_at(15), 5);
  EXPECT_EQ(profile.value_at(25), kHuge);
  EXPECT_EQ(profile.value_at(35), 0);
}

// ---------------------------------------------------------------------------
// FreeProfile differential fuzz on fragmented (indexed) capacity profiles.
// ---------------------------------------------------------------------------

TEST(PropIndexedProfile, FreeProfileOpsMatchDenseModelAndKeepCanonicalForm) {
  constexpr Time kHorizon = 512;    // reservations live here
  constexpr Time kModelSpan = 8192; // commits may stack far beyond kHorizon
  Prng prng(4242);
  for (int round = 0; round < 25; ++round) {
    const ProcCount m = prng.uniform_int(8, 48);
    StepProfile capacity(m);
    DenseModel model(kModelSpan, m);
    const int carves = static_cast<int>(prng.uniform_int(200, 320));
    for (int i = 0; i < carves; ++i) {
      Time a = prng.uniform_int(0, kHorizon - 1);
      Time b = a + prng.uniform_int(1, 24);
      b = std::min(b, kHorizon);
      const std::int64_t room = capacity.min_in(a, b);
      if (room <= 0) continue;
      const std::int64_t carve = prng.uniform_int(1, room);
      capacity.add(a, b, -carve);
      model.add(a, b, -carve);
    }
    FreeProfile free(capacity);

    struct Placed {
      Time t;
      ProcCount q;
      Time p;
      FreeProfile::CommitToken token;
    };
    std::vector<Placed> live;  // open tentative commits, oldest first
    for (int op = 0; op < 40; ++op) {
      const double roll = prng.uniform_real();
      if (roll < 0.5) {
        // Place a job at its earliest fit; differential + lemma checks.
        const ProcCount q = prng.uniform_int(1, m);
        const Time p = prng.chance(0.1) ? prng.uniform_int(64, 128)
                                        : prng.uniform_int(1, 24);
        const Time t0 = prng.uniform_int(0, kHorizon);
        const Time t = free.earliest_fit(t0, q, p);

        // Differential oracle: brute-force earliest fit over integer starts
        // (breakpoints are integral, so integer starts are exhaustive).
        Time brute = kTimeInfinity;
        for (Time s = t0; s + p < kModelSpan; ++s) {
          if (model.min_in(s, s + p) >= q) {
            brute = s;
            break;
          }
        }
        ASSERT_EQ(t, brute) << "t0=" << t0 << " q=" << q << " p=" << p;
        ASSERT_LT(t + p, kModelSpan) << "fuzz outgrew the dense model";
        // Candidate-start lemma on the indexed path.
        ASSERT_TRUE(t == t0 ||
                    free.profile().value_at(t) >
                        free.profile().value_at(t - 1))
            << "earliest_fit returned neither t0 nor a capacity-increase "
               "breakpoint (t0="
            << t0 << " t=" << t << ")";
        ASSERT_TRUE(free.fits_at(t, q, p));

        live.push_back(Placed{t, q, p, free.commit_tentative(t, q, p)});
        model.add(t, t + p, -q);
      } else if (roll < 0.75 && !live.empty()) {
        // Revoke the newest open commit (undo is LIFO by contract),
        // through the token half the time and through the checked legacy
        // uncommit wrapper the other half.
        Placed job = std::move(live.back());
        live.pop_back();
        if (prng.chance(0.5)) {
          free.rollback(std::move(job.token));
        } else {
          free.uncommit(job.t, job.q, job.p);
        }
        model.add(job.t, job.t + job.p, job.q);
      } else {
        // Pure queries.
        const Time t = prng.uniform_int(0, kHorizon);
        const ProcCount q = prng.uniform_int(1, m);
        const Time p = prng.uniform_int(1, 64);
        ASSERT_EQ(free.fits_at(t, q, p), model.min_in(t, t + p) >= q);
        ASSERT_EQ(free.capacity_at(t), model.value_at(t));
        const Time f = prng.uniform_int(0, kHorizon / 2);
        const Time to = prng.uniform_int(kHorizon, 2 * kHorizon);
        ASSERT_EQ(free.profile().first_below(f, to, q),
                  model.first_below(f, to, q));
      }
      ASSERT_NO_FATAL_FAILURE(ExpectCanonical(free.profile()));
      ASSERT_GE(free.profile().min_value(), 0);
    }

    // Unwinding every open commit newest-first drains back to the starting
    // profile bit-identically.
    while (!live.empty()) {
      Placed job = std::move(live.back());
      live.pop_back();
      free.rollback(std::move(job.token));
    }
    ASSERT_EQ(free.profile(), capacity);
  }
}

// ---------------------------------------------------------------------------
// Undo log: recorded add -> rollback differential fuzz vs a never-touched
// twin (segments AND observable index answers must come back bit-identical).
// ---------------------------------------------------------------------------

TEST(PropIndexedProfile, RecordedAddRollbackMatchesNeverTouchedTwin) {
  constexpr Time kHorizon = 4096;
  Prng prng(20260727);
  for (int round = 0; round < 6; ++round) {
    const std::int64_t initial = prng.uniform_int(4, 12);
    StepProfile subject(initial);
    StepProfile twin(initial);
    DenseModel model(kHorizon, initial);
    // Fragment both identically; the twin never sees a recorded add.
    for (int i = 0; i < 500; ++i) {
      const Time a = prng.uniform_int(0, kHorizon - 2);
      const Time b = a + prng.uniform_int(1, 24);
      const std::int64_t delta = prng.uniform_int(-2, 3);
      subject.add(a, b, delta);
      twin.add(a, b, delta);
      model.add(a, b, delta);
    }
    ASSERT_GT(subject.segment_count(), 256u);
    // Build both indexes before the probe episodes begin.
    ASSERT_EQ(subject.min_in(0, kTimeInfinity), twin.min_in(0, kTimeInfinity));

    const auto expect_observably_identical = [&](int episode) {
      ASSERT_EQ(subject, twin) << "segments diverged, episode " << episode;
      for (int query = 0; query < 6; ++query) {
        const Time f = prng.uniform_int(0, kHorizon / 2);
        const Time t = prng.chance(0.25)
                           ? kTimeInfinity
                           : prng.uniform_int(3 * kHorizon / 4, kHorizon + 64);
        ASSERT_EQ(subject.min_in(f, t), twin.min_in(f, t));
        ASSERT_EQ(subject.max_in(f, t), twin.max_in(f, t));
        const std::int64_t threshold = prng.uniform_int(-2, 14);
        ASSERT_EQ(subject.first_below(f, t, threshold),
                  twin.first_below(f, t, threshold));
        ASSERT_EQ(subject.first_at_least(f, threshold),
                  twin.first_at_least(f, threshold));
        if (t < kTimeInfinity) {
          ASSERT_EQ(subject.integral(f, t), twin.integral(f, t));
        }
        const std::int64_t target = prng.uniform_int(0, 4000);
        ASSERT_EQ(subject.time_to_accumulate(f, target),
                  twin.time_to_accumulate(f, target));
      }
    };

    for (int episode = 0; episode < 60; ++episode) {
      // Stack up to 4 recorded adds (nested, the backtracking shape),
      // querying the subject against the dense model while they are live,
      // then unwind newest-first.
      struct Recorded {
        Time a;
        Time b;
        std::int64_t delta;
        StepProfile::Undo undo;
      };
      std::vector<Recorded> stack;
      const int depth = static_cast<int>(prng.uniform_int(1, 4));
      for (int level = 0; level < depth; ++level) {
        Recorded rec;
        rec.a = prng.uniform_int(0, kHorizon - 2);
        // Occasionally an unbounded window: the kTimeInfinity clamp of the
        // right edge must survive recording and rollback.
        rec.b = prng.chance(0.15) ? kTimeInfinity
                                  : rec.a + prng.uniform_int(1, 64);
        rec.delta = prng.uniform_int(-3, 3);
        subject.add_recorded(rec.a, rec.b, rec.delta, rec.undo);
        model.add(rec.a, rec.b, rec.delta);
        ASSERT_EQ(rec.undo.live(), rec.delta != 0);
        stack.push_back(std::move(rec));

        // Wide query: exercises (and mid-sequence rebuilds, if a drop ever
        // happened) the index while tentative state is live.
        const Time f = prng.uniform_int(0, kHorizon / 2);
        const Time t = prng.uniform_int(3 * kHorizon / 4, kHorizon + 64);
        ASSERT_EQ(subject.min_in(f, t), model.min_in(f, t))
            << "round " << round << " episode " << episode;
        const std::int64_t threshold = prng.uniform_int(-2, 14);
        ASSERT_EQ(subject.first_below(f, t, threshold),
                  model.first_below(f, t, threshold));
      }
      while (!stack.empty()) {
        Recorded rec = std::move(stack.back());
        stack.pop_back();
        if (rec.undo.live()) subject.rollback(rec.undo);
        model.add(rec.a, rec.b, -rec.delta);
        ASSERT_FALSE(rec.undo.live());
      }
      ASSERT_NO_FATAL_FAILURE(ExpectCanonical(subject));
      if (episode % 10 == 0) {
        ASSERT_NO_FATAL_FAILURE(expect_observably_identical(episode));
      }
    }
    ASSERT_NO_FATAL_FAILURE(expect_observably_identical(-1));
    // The whole fuzz ran on warm snapshots: recorded add/rollback pairs are
    // budget-neutral, so the subject rebuilt its index no more often than
    // the untouched twin built its one.
    EXPECT_LE(subject.index_build_count(), twin.index_build_count() + 1);
  }
}

TEST(PropIndexedProfile, RollbackOutOfOrderTripsOnOverlapOnly) {
  StepProfile profile(10);
  for (Time t = 0; t < 2000; t += 10) profile.add(t, t + 5, (t / 10) % 4);

  // Non-overlapping recorded adds may unwind in any order.
  const StepProfile base = profile;
  StepProfile::Undo left;
  StepProfile::Undo right;
  profile.add_recorded(100, 200, -3, left);
  profile.add_recorded(1000, 1100, -2, right);
  profile.rollback(left);
  profile.rollback(right);
  EXPECT_EQ(profile, base);

  // Overlapping ones must unwind newest-first; reversing the older one
  // while the newer is live would corrupt the function, so it trips.
  StepProfile::Undo older;
  StepProfile::Undo newer;
  profile.add_recorded(100, 300, -1, older);
  profile.add_recorded(250, 400, -1, newer);
  EXPECT_THROW(profile.rollback(older), std::logic_error);
  // A failed rollback consumes nothing and mutates nothing: unwind the
  // blocking mutation and the older record works again.
  EXPECT_TRUE(older.live());
  profile.rollback(newer);
  profile.rollback(older);
  EXPECT_EQ(profile, base);

  // A dead record cannot roll back.
  EXPECT_THROW(profile.rollback(newer), std::logic_error);
}

TEST(PropIndexedProfile, RollbackTripsOnBoundaryInterferenceInsteadOfCorrupting) {
  // The checked state of a record is slightly wider than its mutation
  // window: the closed region [window_lo, to] plus the left neighbour's
  // value. Window-disjoint later mutations that touch only those
  // boundaries must trip the rollback loudly -- the alternative is a
  // silently non-canonical (or wrong) splice.

  {
    // A later add whose right edge coalesces across the record's
    // window_lo boundary: without the recorded-left-value anchor the
    // replay would accept and splice back an adjacent-equal pair.
    StepProfile profile(5);
    profile.add(50, kTimeInfinity, 4);   // {0:5},{50:9}
    profile.add(100, kTimeInfinity, -2); // {0:5},{50:9},{100:7}
    StepProfile::Undo undo;
    profile.add_recorded(150, 200, -2, undo);  // window_lo = 100
    profile.add(50, 100, -2);  // {50:7} now coalesces with {100:7}
    EXPECT_THROW(profile.rollback(undo), std::logic_error);
    EXPECT_TRUE(undo.live());
    // Unwind the interference and the record works again, canonically.
    profile.add(50, 100, 2);
    profile.rollback(undo);
    EXPECT_EQ(profile.value_at(160), 7);
    EXPECT_EQ(profile.segment_count(), 3u);
  }

  {
    // A later add starting exactly at the record's `to`: it shifts the
    // region's trailing piece, so the record is blocked until it unwinds.
    StepProfile profile(9);
    StepProfile::Undo undo;
    profile.add_recorded(150, 200, -2, undo);
    profile.add(200, 300, -1);
    EXPECT_THROW(profile.rollback(undo), std::logic_error);
    EXPECT_TRUE(undo.live());
    profile.add(200, 300, 1);
    profile.rollback(undo);
    EXPECT_EQ(profile, StepProfile(9));
  }

  {
    // A later add ending at the record's window_lo that changes the left
    // neighbour to the region's original leading value: splicing would
    // recreate an adjacent-equal pair, so it must trip.
    StepProfile profile(5);
    profile.add(100, kTimeInfinity, -2);  // {0:5},{100:3}
    StepProfile::Undo undo;
    profile.add_recorded(100, 200, -1, undo);  // {0:5},{100:2},{200:3}
    profile.add(0, 100, -2);                   // left neighbour 5 -> 3
    EXPECT_THROW(profile.rollback(undo), std::logic_error);
    profile.add(0, 100, 2);
    profile.rollback(undo);
    EXPECT_EQ(profile.value_at(150), 3);
  }
}

}  // namespace
}  // namespace resched
