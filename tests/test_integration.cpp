// End-to-end integration: every registered scheduler, on every instance
// class, through the whole pipeline -- schedule, validate, bound-check,
// machine-assign, simulate, serialise and back.
#include <gtest/gtest.h>

#include <sstream>

#include "algorithms/lsrc.hpp"
#include "algorithms/online_batch.hpp"
#include "algorithms/scheduler.hpp"
#include "bounds/checker.hpp"
#include "bounds/lower_bounds.hpp"
#include "core/gantt.hpp"
#include "core/io.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"
#include "sim/cluster_sim.hpp"

namespace resched {
namespace {

TEST(Registry, ExpectedSchedulersPresent) {
  const auto names = registered_schedulers();
  for (const char* expected :
       {"lsrc", "lsrc-lpt", "fcfs", "conservative", "easy", "shelf-ff",
        "shelf-nf", "portfolio", "local-search"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " missing from registry";
  }
  EXPECT_THROW(make_scheduler("nope"), std::invalid_argument);
}

TEST(Registry, FactoriesProduceWorkingSchedulers) {
  const Instance instance(4, {Job{0, 2, 3, 0, ""}, Job{1, 2, 2, 0, ""}});
  for (const auto& name : registered_schedulers()) {
    const auto scheduler = make_scheduler(name);
    const Schedule schedule = scheduler->schedule(instance).value();
    EXPECT_TRUE(schedule.validate(instance).ok) << name;
  }
}

struct PipelineCase {
  const char* label;
  std::uint64_t seed;
  bool with_reservations;
  bool online;
};

class FullPipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(FullPipeline, EveryOfflineSchedulerSurvivesTheWholeStack) {
  const PipelineCase param = GetParam();
  WorkloadConfig config;
  config.n = 35;
  config.m = 12;
  config.alpha = Rational(1, 2);
  if (param.online) config.mean_interarrival = 3.0;
  Instance instance = random_workload(config, param.seed);
  if (param.with_reservations) {
    AlphaReservationConfig resa;
    resa.alpha = Rational(1, 2);
    instance = with_alpha_restricted_reservations(instance, resa,
                                                  param.seed + 10);
  }

  for (const auto& name : registered_schedulers()) {
    const auto scheduler = make_scheduler(name);
    // Capability filtering instead of a hard-coded shelf special case: the
    // registry knows which schedulers cannot take this instance class.
    if (!scheduler->supports(instance)) {
      EXPECT_TRUE(name == "shelf-ff" || name == "shelf-nf")
          << name << " unexpectedly rejects " << param.label;
      continue;
    }

    SCOPED_TRACE(std::string(param.label) + " / " + name);
    const Schedule schedule = scheduler->schedule(instance).value();

    // 1. feasible;
    const ValidationResult valid = schedule.validate(instance);
    ASSERT_TRUE(valid.ok) << valid.error;
    // 2. never violates an applicable guarantee;
    const GuaranteeReport report = check_guarantee(instance, schedule);
    EXPECT_NE(report.compliance, Compliance::kViolated) << report.detail;
    // 3. maps to concrete machines;
    const MachineAssignment assignment = assign_machines(instance, schedule);
    EXPECT_TRUE(validate_assignment(instance, schedule, assignment).ok);
    // 4. replays on the simulated cluster;
    const SimulationResult sim = simulate_cluster(instance, schedule);
    EXPECT_LE(sim.peak_busy, instance.m());
    // 5. renders;
    EXPECT_FALSE(ascii_gantt(instance, schedule).empty());
    // 6. round-trips through CSV.
    std::stringstream csv;
    save_schedule_csv(instance, schedule, csv);
    EXPECT_EQ(load_schedule_csv(instance, csv), schedule);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Classes, FullPipeline,
    ::testing::Values(
        PipelineCase{"rigid_offline", 1001, false, false},
        PipelineCase{"reserved_offline", 1002, true, false},
        PipelineCase{"rigid_online", 1003, false, true},
        PipelineCase{"reserved_online", 1004, true, true}),
    [](const ::testing::TestParamInfo<PipelineCase>& param_info) {
      return std::string(param_info.param.label);
    });

TEST(Pipeline, InstanceRoundTripPreservesSchedulerBehaviour) {
  WorkloadConfig config;
  config.n = 20;
  config.m = 8;
  Instance original = random_workload(config, 2024);
  AlphaReservationConfig resa;
  resa.alpha = Rational(1, 2);
  original = with_alpha_restricted_reservations(original, resa, 42);

  std::stringstream stream;
  save_instance(original, stream);
  const Instance loaded = load_instance(stream);
  ASSERT_EQ(loaded, original);

  const Schedule a = LsrcScheduler().schedule(original).value();
  const Schedule b = LsrcScheduler().schedule(loaded).value();
  EXPECT_EQ(a, b);  // schedulers are pure functions of the instance
}

TEST(Pipeline, OnlineBatchComposesWithRegistrySchedulers) {
  WorkloadConfig config;
  config.n = 25;
  config.m = 8;
  config.mean_interarrival = 4.0;
  const Instance instance = random_workload(config, 3030);
  for (const char* base : {"lsrc", "fcfs", "conservative", "easy"}) {
    OnlineBatchScheduler scheduler(make_scheduler(base));
    const Schedule schedule = scheduler.schedule(instance).value();
    EXPECT_TRUE(schedule.validate(instance).ok) << base;
    // Batch epochs respect releases by construction; the makespan can never
    // undercut the certified offline lower bound.
    EXPECT_GE(schedule.makespan(instance), makespan_lower_bound(instance))
        << base;
  }
}

TEST(Pipeline, SchedulersAreDeterministic) {
  WorkloadConfig config;
  config.n = 30;
  config.m = 10;
  const Instance instance = random_workload(config, 4040);
  for (const auto& name : registered_schedulers()) {
    const Schedule a = make_scheduler(name)->schedule(instance).value();
    const Schedule b = make_scheduler(name)->schedule(instance).value();
    EXPECT_EQ(a, b) << name;
  }
}

}  // namespace
}  // namespace resched
