// Differential churn fuzz: the incremental replan path must stay
// bit-identical to a full re-solve, event by event, under randomized job
// streams and churn (cancellations, availability drops, reservation moves).
//
// Three layers:
//  * ChurnGen contract tests (validation, determinism, shape bounds).
//  * A direct replan-vs-schedule oracle on randomized live states, outside
//    the harness: build the absolute-time profile by hand, replan, and
//    compare against schedule() on the scratch translation. This pins the
//    time-translation invariance of every incremental-capable scheduler
//    with no service loop in between.
//  * Registry-wide harness fuzz: run_service_step with verify_incremental
//    (the loop RESCHED_CHECKs both paths per decision) plus an aggressive
//    churn stream, across every registered scheduler that advertises
//    incremental_replan. Accounting invariants close the loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "algorithms/scheduler.hpp"
#include "core/profile_allocator.hpp"
#include "generators/churn.hpp"
#include "sim/service_sim.hpp"
#include "util/prng.hpp"

namespace resched {
namespace {

ChurnConfig aggressive_churn() {
  ChurnConfig churn;
  churn.events_per_kilotick = 40.0;
  churn.max_drop_width = 6;
  churn.drop_duration_min = 10;
  churn.drop_duration_max = 200;
  churn.drop_lead_max = 120;
  churn.move_shift_max = 150;
  return churn;
}

TEST(ChurnGen, RejectsInvalidConfigs) {
  EXPECT_THROW(ChurnGen(ChurnConfig{}, 1), std::invalid_argument);
  ChurnConfig churn = aggressive_churn();
  churn.cancel_waiting_weight = -1.0;
  EXPECT_THROW(ChurnGen(churn, 1), std::invalid_argument);
  churn = aggressive_churn();
  churn.cancel_waiting_weight = 0.0;
  churn.cancel_running_weight = 0.0;
  churn.availability_drop_weight = 0.0;
  churn.reservation_move_weight = 0.0;
  EXPECT_THROW(ChurnGen(churn, 1), std::invalid_argument);
  churn = aggressive_churn();
  churn.drop_duration_min = 10;
  churn.drop_duration_max = 5;
  EXPECT_THROW(ChurnGen(churn, 1), std::invalid_argument);
}

TEST(ChurnGen, StreamIsDeterministicAndInBounds) {
  const ChurnConfig churn = aggressive_churn();
  ChurnGen a(churn, 99);
  ChurnGen b(churn, 99);
  ChurnGen c(churn, 100);
  bool any_difference = false;
  for (int i = 0; i < 500; ++i) {
    const ChurnEvent ea = a.next();
    const ChurnEvent eb = b.next();
    const ChurnEvent ec = c.next();
    EXPECT_EQ(ea, eb);
    any_difference = any_difference || !(ea == ec);
    EXPECT_GE(ea.gap, 1);
    EXPECT_GE(ea.width, 1);
    EXPECT_LE(ea.width, churn.max_drop_width);
    EXPECT_GE(ea.duration, churn.drop_duration_min);
    EXPECT_LE(ea.duration, churn.drop_duration_max);
    EXPECT_GE(ea.lead, 0);
    EXPECT_LE(ea.lead, churn.drop_lead_max);
    EXPECT_GE(ea.shift, -churn.move_shift_max);
    EXPECT_LE(ea.shift, churn.move_shift_max);
  }
  EXPECT_TRUE(any_difference) << "different seeds must diverge";
}

TEST(ChurnGen, KindNamesRoundTrip) {
  EXPECT_STREQ(to_string(ChurnKind::kCancelWaiting), "cancel_waiting");
  EXPECT_STREQ(to_string(ChurnKind::kCancelRunning), "cancel_running");
  EXPECT_STREQ(to_string(ChurnKind::kAvailabilityDrop), "availability_drop");
  EXPECT_STREQ(to_string(ChurnKind::kReservationMove), "reservation_move");
}

// ---- direct replan-vs-schedule oracle ------------------------------------

std::vector<std::string> incremental_schedulers() {
  std::vector<std::string> names;
  for (const SchedulerInfo& info : registered_scheduler_info())
    if (info.capabilities.incremental_replan &&
        info.capabilities.reservations)
      names.push_back(info.name);
  return names;
}

TEST(ReplanOracle, RegistryExposesIncrementalSchedulers) {
  const std::vector<std::string> names = incremental_schedulers();
  // The three production backfilling policies all share their core loop
  // between schedule() and replan().
  EXPECT_NE(std::find(names.begin(), names.end(), "easy"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "conservative"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "fcfs"), names.end());
}

TEST(ReplanOracle, ReplanMatchesScheduleOnRandomLiveStates) {
  constexpr ProcCount kM = 16;
  for (const std::string& name : incremental_schedulers()) {
    const auto scheduler = make_scheduler(name);
    Prng prng(4242);
    for (int trial = 0; trial < 60; ++trial) {
      const Time now = prng.uniform_int(0, 5000);

      // Random running jobs / availability windows relative to `now`.
      struct Block {
        Time start = 0, end = 0;
        ProcCount q = 1;
      };
      std::vector<Block> blocks;
      StepProfile capacity(kM);
      const int block_count = static_cast<int>(prng.uniform_int(0, 6));
      for (int b = 0; b < block_count; ++b) {
        const Time start = now + prng.uniform_int(0, 80);
        const Time end = start + prng.uniform_int(1, 120);
        const ProcCount q = static_cast<ProcCount>(prng.uniform_int(1, 4));
        if (capacity.min_in(start, end) < q) continue;
        capacity.add(start, end, -static_cast<std::int64_t>(q));
        blocks.push_back(Block{start, end, q});
      }

      // Random waiting queue; absolute releases <= now, FCFS order.
      const int k = static_cast<int>(prng.uniform_int(1, 12));
      std::vector<Job> queue;
      std::vector<Job> scratch_jobs;
      Time release = now > 200 ? now - 200 : 0;
      for (int j = 0; j < k; ++j) {
        const ProcCount q = static_cast<ProcCount>(prng.uniform_int(1, kM));
        const Time p = prng.uniform_int(1, 60);
        release = std::min<Time>(now, release + prng.uniform_int(0, 30));
        queue.push_back(Job{static_cast<JobId>(j), q, p, release, ""});
        scratch_jobs.push_back(Job{static_cast<JobId>(j), q, p, 0, ""});
      }

      // Scratch translation: blocks become reservations relative to now.
      std::vector<Reservation> held;
      ReservationId rid = 0;
      std::vector<Time> wakeups;
      for (const Block& block : blocks) {
        held.push_back(Reservation{rid++, block.q, block.end - block.start,
                                   block.start - now, ""});
        wakeups.push_back(block.end);
      }
      const Instance instance(kM, scratch_jobs, held);
      const Schedule expected = scheduler->schedule(instance).value();

      // Incremental: persistent absolute-time profile, plan recording on.
      FreeProfile free{capacity};
      free.set_retain_accepted(true);
      const FreeProfile::Checkpoint before = free.checkpoint();
      const Schedule got =
          scheduler->replan(ReplanRequest{free, queue, wakeups, kM, now});
      for (int j = 0; j < k; ++j) {
        ASSERT_EQ(got.start(static_cast<JobId>(j)),
                  expected.start(static_cast<JobId>(j)) + now)
            << name << " trial " << trial << " job " << j << " now " << now;
      }
      // The plan must be fully rewindable: nothing escaped the frames.
      free.rewind_to(before);
      for (const Block& block : blocks) {
        ASSERT_EQ(free.capacity_at(block.start),
                  capacity.value_at(block.start));
      }
      ASSERT_EQ(free.capacity_at(now), capacity.value_at(now));
    }
  }
}

// ---- registry-wide harness fuzz ------------------------------------------

LoadGenConfig fuzz_load() {
  LoadGenConfig load;
  load.m = 24;
  load.p_min = 1;
  load.p_max = 60;
  load.alpha = Rational(1, 2);
  return load;
}

ServiceConfig fuzz_config() {
  ServiceConfig config;
  config.phases = ServicePhases{30, 150, 30};
  config.dispatch_window = 48;
  config.bail_queue_depth = 2000;
  config.queue_sample_interval = 97;
  config.record_wall_latency = false;
  config.verify_incremental = true;  // oracle: both paths, per decision
  config.compact_interval = 257;     // force frequent history compaction
  config.churn = aggressive_churn();
  return config;
}

class ChurnDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnDifferential, IncrementalStaysBitIdenticalAcrossRegistry) {
  for (const std::string& name : incremental_schedulers()) {
    const auto scheduler = make_scheduler(name);
    for (const double rate : {40.0, 120.0, 400.0}) {
      const ServiceStepResult step = run_service_step(
          *scheduler, fuzz_load(), GetParam(), rate, fuzz_config());
      // verify_incremental ran the full re-solve oracle inside every
      // dispatch; reaching here means no decision diverged. Close the
      // accounting: every arrival completed, was canceled, or still waits.
      EXPECT_EQ(step.arrivals,
                step.completed + step.canceled + step.end_queue_depth)
          << name << " rate " << rate;
      EXPECT_EQ(step.decisions,
                step.decisions_incremental)
          << name << " rate " << rate;
      EXPECT_EQ(step.decisions_scratch, step.decisions_incremental)
          << "oracle mode runs both paths per decision";
      EXPECT_GT(step.decisions, 0u);
      EXPECT_EQ(step.snapshots_reused + 1,
                std::max<std::uint64_t>(1, step.decisions_incremental))
          << "every decision after the first reuses the live profile";
      EXPECT_GT(step.churn_events + step.churn_skipped, 0u)
          << "the churn chain must have fired";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(ChurnDifferential, ChurnStepsAreDeterministic) {
  const auto scheduler = make_scheduler("easy");
  ServiceConfig config = fuzz_config();
  const ServiceStepResult a =
      run_service_step(*scheduler, fuzz_load(), 21, 150.0, config);
  const ServiceStepResult b =
      run_service_step(*scheduler, fuzz_load(), 21, 150.0, config);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.churn_events, 0u);
}

TEST(ChurnDifferential, IncrementalDecisionsStayNearlyAllocationFreeUnderChurn) {
  // Allocation leg of the fuzz: even with aggressive churn forcing plan
  // rewinds, capacity mutations and compactions, the pure incremental path
  // must keep its timed decisions on the arena / pools / reused buffers.
  // decision_allocs is deterministic (heap traffic is a function of the
  // simulated state), so this is a hard pin, not a flaky heuristic.
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    for (const std::string& name : incremental_schedulers()) {
      ServiceConfig config = fuzz_config();
      config.verify_incremental = false;  // oracle re-solves would dominate
      config.incremental = true;
      const ServiceStepResult step = run_service_step(
          *make_scheduler(name), fuzz_load(), seed, 150.0, config);
      ASSERT_GT(step.decisions_measured, 50u) << name << " seed " << seed;
      EXPECT_LT(static_cast<double>(step.decision_allocs),
                1.0 * static_cast<double>(step.decisions_measured))
          << name << " seed " << seed
          << ": decision_allocs=" << step.decision_allocs << " over "
          << step.decisions_measured << " decisions";
    }
  }
}

TEST(ChurnDifferential, IncrementalAndScratchProduceTheSameService) {
  // Beyond per-decision start equality (verify mode), the two planning
  // paths must yield the same *service-level* outcome: identical job
  // streams, waits, responses and queue evolution.
  for (const std::string& name : incremental_schedulers()) {
    const auto scheduler = make_scheduler(name);
    ServiceConfig config = fuzz_config();
    config.verify_incremental = false;
    config.incremental = true;
    const ServiceStepResult inc =
        run_service_step(*scheduler, fuzz_load(), 77, 180.0, config);
    config.incremental = false;
    const ServiceStepResult scratch =
        run_service_step(*scheduler, fuzz_load(), 77, 180.0, config);
    EXPECT_EQ(inc.arrivals, scratch.arrivals) << name;
    EXPECT_EQ(inc.completed, scratch.completed) << name;
    EXPECT_EQ(inc.canceled, scratch.canceled) << name;
    EXPECT_EQ(inc.measured, scratch.measured) << name;
    EXPECT_EQ(inc.decisions, scratch.decisions) << name;
    EXPECT_EQ(inc.sim_end, scratch.sim_end) << name;
    EXPECT_EQ(inc.wait_ticks, scratch.wait_ticks) << name;
    EXPECT_EQ(inc.response_ticks, scratch.response_ticks) << name;
    EXPECT_EQ(inc.queue_depth, scratch.queue_depth) << name;
    EXPECT_EQ(inc.decisions_scratch, 0u) << name;
    EXPECT_EQ(scratch.decisions_incremental, 0u) << name;
    EXPECT_EQ(inc.decisions_incremental, scratch.decisions_scratch) << name;
  }
}

}  // namespace
}  // namespace resched
