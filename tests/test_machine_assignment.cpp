#include "core/machine_assignment.hpp"

#include <gtest/gtest.h>

#include "algorithms/lsrc.hpp"
#include "generators/reservations.hpp"
#include "generators/workload.hpp"

namespace resched {
namespace {

TEST(MachineAssignment, SimpleTwoJobs) {
  const Instance instance(3, {Job{0, 2, 4, 0, ""}, Job{1, 1, 4, 0, ""}});
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 0);
  const MachineAssignment assignment = assign_machines(instance, schedule);
  EXPECT_TRUE(validate_assignment(instance, schedule, assignment).ok);
  EXPECT_EQ(assignment.job_machines[0].size(), 2u);
  EXPECT_EQ(assignment.job_machines[1].size(), 1u);
}

TEST(MachineAssignment, ReservationsGetMachines) {
  const Instance instance(4, {Job{0, 2, 3, 0, ""}},
                          {Reservation{0, 2, 5, 0, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 0);
  const MachineAssignment assignment = assign_machines(instance, schedule);
  EXPECT_TRUE(validate_assignment(instance, schedule, assignment).ok);
  EXPECT_EQ(assignment.reservation_machines[0].size(), 2u);
  // Reservations acquire first at equal times: they get the lowest ids.
  EXPECT_EQ(assignment.reservation_machines[0][0], 0);
  EXPECT_EQ(assignment.reservation_machines[0][1], 1);
  EXPECT_EQ(assignment.job_machines[0][0], 2);
}

TEST(MachineAssignment, MachinesReusedAfterCompletion) {
  // Sequential full-width jobs share the same machines.
  const Instance instance(2, {Job{0, 2, 1, 0, ""}, Job{1, 2, 1, 0, ""}});
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 1);
  const MachineAssignment assignment = assign_machines(instance, schedule);
  EXPECT_TRUE(validate_assignment(instance, schedule, assignment).ok);
  EXPECT_EQ(assignment.job_machines[0], assignment.job_machines[1]);
}

TEST(MachineAssignment, RejectsInfeasibleSchedule) {
  const Instance instance(2, {Job{0, 2, 2, 0, ""}, Job{1, 2, 2, 0, ""}});
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 0);  // overload
  EXPECT_THROW(assign_machines(instance, schedule), std::invalid_argument);
}

TEST(MachineAssignment, ValidatorCatchesDoubleBooking) {
  const Instance instance(3, {Job{0, 1, 4, 0, ""}, Job{1, 1, 4, 0, ""}});
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 0);
  MachineAssignment assignment = assign_machines(instance, schedule);
  // Corrupt: both jobs on machine 0.
  assignment.job_machines[1] = assignment.job_machines[0];
  const ValidationResult result =
      validate_assignment(instance, schedule, assignment);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("double-booked"), std::string::npos);
}

TEST(MachineAssignment, ValidatorCatchesWrongCount) {
  const Instance instance(3, {Job{0, 2, 2, 0, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 0);
  MachineAssignment assignment = assign_machines(instance, schedule);
  assignment.job_machines[0].pop_back();
  EXPECT_FALSE(validate_assignment(instance, schedule, assignment).ok);
}

TEST(MachineAssignment, ValidatorCatchesOutOfRange) {
  const Instance instance(3, {Job{0, 1, 2, 0, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 0);
  MachineAssignment assignment = assign_machines(instance, schedule);
  assignment.job_machines[0][0] = 99;
  EXPECT_FALSE(validate_assignment(instance, schedule, assignment).ok);
}

// Property: every LSRC schedule on random instances (with reservations)
// admits a valid concrete machine assignment -- the constructive proof that
// counting feasibility suffices (non-contiguity claim of section 2.1).
class AssignmentProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssignmentProperty, LsrcSchedulesAlwaysAssignable) {
  WorkloadConfig config;
  config.n = 40;
  config.m = 16;
  config.alpha = Rational(1, 2);
  const Instance base = random_workload(config, GetParam());
  AlphaReservationConfig resa;
  resa.alpha = Rational(1, 2);
  resa.count = 4;
  const Instance instance =
      with_alpha_restricted_reservations(base, resa, GetParam() + 1);

  const Schedule schedule = LsrcScheduler().schedule(instance).value();
  ASSERT_TRUE(schedule.validate(instance).ok);
  const MachineAssignment assignment = assign_machines(instance, schedule);
  EXPECT_TRUE(validate_assignment(instance, schedule, assignment).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentProperty,
                         ::testing::Values(100, 101, 102, 103, 104));

}  // namespace
}  // namespace resched
