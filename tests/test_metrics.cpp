#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace resched {
namespace {

TEST(Metrics, EmptyInstance) {
  const Instance instance(2, {});
  const Schedule schedule(0);
  const ScheduleMetrics metrics = compute_metrics(instance, schedule);
  EXPECT_EQ(metrics.makespan, 0);
  EXPECT_DOUBLE_EQ(metrics.mean_wait, 0.0);
}

TEST(Metrics, SingleImmediateJob) {
  const Instance instance(2, {Job{0, 2, 4, 0, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 0);
  const ScheduleMetrics metrics = compute_metrics(instance, schedule);
  EXPECT_EQ(metrics.makespan, 4);
  EXPECT_DOUBLE_EQ(metrics.utilization, 1.0);
  EXPECT_DOUBLE_EQ(metrics.mean_wait, 0.0);
  EXPECT_EQ(metrics.max_wait, 0);
  EXPECT_DOUBLE_EQ(metrics.mean_bounded_slowdown, 1.0);
}

TEST(Metrics, WaitsMeasuredFromRelease) {
  const Instance instance(1, {Job{0, 1, 2, 3, ""}, Job{1, 1, 2, 0, ""}});
  Schedule schedule(2);
  schedule.set_start(1, 0);
  schedule.set_start(0, 5);  // released 3, waited 2
  const ScheduleMetrics metrics = compute_metrics(instance, schedule);
  EXPECT_DOUBLE_EQ(metrics.mean_wait, 1.0);  // (2 + 0) / 2
  EXPECT_EQ(metrics.max_wait, 2);
}

TEST(Metrics, BoundedSlowdownUsesTau) {
  // Short job (p = 1) waits 9: raw slowdown (9+1)/1 = 10; with tau = 10 the
  // bounded version is (9+1)/10 = 1.
  const Instance instance(1, {Job{0, 1, 1, 0, ""}, Job{1, 1, 9, 0, ""}});
  Schedule schedule(2);
  schedule.set_start(1, 0);
  schedule.set_start(0, 9);
  const ScheduleMetrics with_tau10 = compute_metrics(instance, schedule, 10);
  EXPECT_DOUBLE_EQ(with_tau10.max_bounded_slowdown, 1.0);
  const ScheduleMetrics with_tau1 = compute_metrics(instance, schedule, 1);
  EXPECT_DOUBLE_EQ(with_tau1.max_bounded_slowdown, 10.0);
}

TEST(Metrics, SlowdownFloorsAtOne) {
  const Instance instance(2, {Job{0, 1, 100, 0, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 0);
  const ScheduleMetrics metrics = compute_metrics(instance, schedule);
  EXPECT_DOUBLE_EQ(metrics.mean_bounded_slowdown, 1.0);
}

TEST(Metrics, UtilizationAccountsReservedArea) {
  // m=2 with 1 machine reserved over the whole horizon: available area in
  // [0,4) is 4, work is 4 -> utilization 1.
  const Instance instance(2, {Job{0, 1, 4, 0, ""}},
                          {Reservation{0, 1, 4, 0, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 0);
  EXPECT_DOUBLE_EQ(compute_metrics(instance, schedule).utilization, 1.0);
}

TEST(Metrics, RejectsInfeasibleSchedule) {
  const Instance instance(1, {Job{0, 1, 1, 0, ""}, Job{1, 1, 1, 0, ""}});
  Schedule schedule(2);
  schedule.set_start(0, 0);
  schedule.set_start(1, 0);
  EXPECT_THROW((void)compute_metrics(instance, schedule), std::invalid_argument);
}

TEST(Metrics, RejectsBadTau) {
  const Instance instance(1, {Job{0, 1, 1, 0, ""}});
  Schedule schedule(1);
  schedule.set_start(0, 0);
  EXPECT_THROW((void)compute_metrics(instance, schedule, 0), std::invalid_argument);
}

}  // namespace
}  // namespace resched
