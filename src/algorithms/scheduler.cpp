#include "algorithms/scheduler.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "algorithms/conservative_bf.hpp"
#include "algorithms/easy_bf.hpp"
#include "algorithms/fcfs.hpp"
#include "algorithms/lsrc.hpp"
#include "algorithms/portfolio.hpp"
#include "algorithms/shelf.hpp"
#include "util/require.hpp"

namespace resched {

std::string to_string(DomainReason reason) {
  switch (reason) {
    case DomainReason::kReservations:
      return "reservations";
    case DomainReason::kReleaseTimes:
      return "release-times";
    case DomainReason::kOther:
      return "other";
  }
  return "?";
}

const Schedule& ScheduleOutcome::value() const& {
  RESCHED_CHECK_MSG(ok(), "ScheduleOutcome::value() on a domain error: " +
                              std::get<DomainError>(result_).message);
  return std::get<Schedule>(result_);
}

Schedule ScheduleOutcome::value() && {
  RESCHED_CHECK_MSG(ok(), "ScheduleOutcome::value() on a domain error: " +
                              std::get<DomainError>(result_).message);
  return std::move(std::get<Schedule>(result_));
}

const DomainError& ScheduleOutcome::error() const {
  RESCHED_CHECK_MSG(!ok(), "ScheduleOutcome::error() on a schedule");
  return std::get<DomainError>(result_);
}

Schedule Scheduler::replan(const ReplanRequest& request) const {
  (void)request;
  fail_invariant("incremental_replan", __FILE__, __LINE__,
                 name() + " does not implement incremental replan "
                          "(capabilities().incremental_replan is false)");
}

std::optional<DomainError> Scheduler::out_of_domain(
    const Instance& instance) const {
  const Capabilities caps = capabilities();
  if (!caps.reservations && !instance.is_rigid_only())
    return DomainError{DomainReason::kReservations,
                       name() + " does not support reservations"};
  if (!caps.release_times && instance.has_release_times())
    return DomainError{DomainReason::kReleaseTimes,
                       name() + " does not support release times"};
  return std::nullopt;
}

namespace {

struct RegistryEntry {
  SchedulerFactory factory;
  std::string description;
  // Probed from one factory-made instance at registration time, so
  // metadata queries never instantiate schedulers again.
  Capabilities capabilities;
};

std::map<std::string, RegistryEntry>& registry() {
  static std::map<std::string, RegistryEntry> instance;
  return instance;
}

// Single insertion point: probes the capability set once, at registration.
void add_entry(std::map<std::string, RegistryEntry>& reg,
               const std::string& name, SchedulerFactory factory,
               std::string description) {
  RESCHED_REQUIRE_MSG(!reg.count(name),
                      "scheduler already registered: " + name);
  const Capabilities capabilities = factory()->capabilities();
  reg[name] =
      RegistryEntry{std::move(factory), std::move(description), capabilities};
}

// Built-ins are registered lazily and explicitly (static-initialiser
// registration inside a static library gets dropped by the linker for
// translation units nothing else references).
// resched-lint: hot-path-alloc-audited(one-time lazy registry build, cold) [function]
void ensure_builtins() {
  static const bool done = [] {
    auto& reg = registry();
    add_entry(reg, "lsrc",
              [] { return std::make_unique<LsrcScheduler>(
                       ListOrder::kSubmission); },
              "list scheduling (submission order), the paper's LSRC");
    add_entry(reg, "lsrc-lpt",
              [] { return std::make_unique<LsrcScheduler>(ListOrder::kLpt); },
              "list scheduling, longest processing time first");
    add_entry(reg, "fcfs", [] { return std::make_unique<FcfsScheduler>(); },
              "strict First Come First Served (non-overtaking)");
    add_entry(reg, "conservative",
              [] { return std::make_unique<ConservativeBackfillScheduler>(); },
              "conservative backfilling (no previously placed job delayed)");
    add_entry(reg, "easy",
              [] { return std::make_unique<EasyBackfillScheduler>(); },
              "EASY aggressive backfilling (head-only protection)");
    add_entry(reg, "shelf-ff",
              [] { return std::make_unique<ShelfScheduler>(
                       ShelfPolicy::kFirstFit); },
              "FFDH shelf packing (offline, rigid-only)");
    add_entry(reg, "shelf-nf",
              [] { return std::make_unique<ShelfScheduler>(
                       ShelfPolicy::kNextFit); },
              "NFDH shelf packing (offline, rigid-only)");
    add_entry(reg, "portfolio",
              [] { return std::make_unique<PortfolioScheduler>(); },
              "best LSRC schedule across priority orders");
    add_entry(reg, "local-search",
              [] { return std::make_unique<LocalSearchScheduler>(); },
              "hill-climbing over LSRC priority lists (seeded, budgeted)");
    return true;
  }();
  (void)done;
}

}  // namespace

void register_scheduler(const std::string& name, SchedulerFactory factory,
                        std::string description) {
  ensure_builtins();
  add_entry(registry(), name, std::move(factory), std::move(description));
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  ensure_builtins();
  const auto it = registry().find(name);
  RESCHED_REQUIRE_MSG(it != registry().end(), "unknown scheduler: " + name);
  return it->second.factory();
}

std::vector<std::string> registered_schedulers() {
  ensure_builtins();
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;
}

std::vector<SchedulerInfo> registered_scheduler_info() {
  ensure_builtins();
  std::vector<SchedulerInfo> out;
  out.reserve(registry().size());
  // Pure metadata read: capabilities were cached when the entry was
  // registered, so this never instantiates a scheduler.
  for (const auto& [name, entry] : registry())
    out.push_back(SchedulerInfo{name, entry.description, entry.capabilities});
  return out;
}

}  // namespace resched
