#include "algorithms/scheduler.hpp"

#include <algorithm>
#include <map>

#include "algorithms/conservative_bf.hpp"
#include "algorithms/easy_bf.hpp"
#include "algorithms/fcfs.hpp"
#include "algorithms/lsrc.hpp"
#include "algorithms/portfolio.hpp"
#include "algorithms/shelf.hpp"
#include "util/require.hpp"

namespace resched {

namespace {

std::map<std::string, SchedulerFactory>& registry() {
  static std::map<std::string, SchedulerFactory> instance;
  return instance;
}

// Built-ins are registered lazily and explicitly (static-initialiser
// registration inside a static library gets dropped by the linker for
// translation units nothing else references).
void ensure_builtins() {
  static const bool done = [] {
    auto& reg = registry();
    reg["lsrc"] = [] {
      return std::make_unique<LsrcScheduler>(ListOrder::kSubmission);
    };
    reg["lsrc-lpt"] = [] {
      return std::make_unique<LsrcScheduler>(ListOrder::kLpt);
    };
    reg["fcfs"] = [] { return std::make_unique<FcfsScheduler>(); };
    reg["conservative"] = [] {
      return std::make_unique<ConservativeBackfillScheduler>();
    };
    reg["easy"] = [] { return std::make_unique<EasyBackfillScheduler>(); };
    reg["shelf-ff"] = [] {
      return std::make_unique<ShelfScheduler>(ShelfPolicy::kFirstFit);
    };
    reg["shelf-nf"] = [] {
      return std::make_unique<ShelfScheduler>(ShelfPolicy::kNextFit);
    };
    reg["portfolio"] = [] { return std::make_unique<PortfolioScheduler>(); };
    reg["local-search"] = [] {
      return std::make_unique<LocalSearchScheduler>();
    };
    return true;
  }();
  (void)done;
}

}  // namespace

void register_scheduler(const std::string& name, SchedulerFactory factory) {
  ensure_builtins();
  RESCHED_REQUIRE_MSG(!registry().count(name),
                      "scheduler already registered: " + name);
  registry()[name] = std::move(factory);
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  ensure_builtins();
  const auto it = registry().find(name);
  RESCHED_REQUIRE_MSG(it != registry().end(), "unknown scheduler: " + name);
  return it->second();
}

std::vector<std::string> registered_schedulers() {
  ensure_builtins();
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

}  // namespace resched
