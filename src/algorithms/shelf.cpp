#include "algorithms/shelf.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

ShelfScheduler::ShelfScheduler(ShelfPolicy policy) : policy_(policy) {}

std::string ShelfScheduler::name() const {
  return policy_ == ShelfPolicy::kNextFit ? "shelf-nf" : "shelf-ff";
}

ScheduleOutcome ShelfScheduler::schedule(const Instance& instance) const {
  // Entry-point domain check: the only place a DomainError may originate.
  if (auto violation = out_of_domain(instance)) return *std::move(violation);

  Schedule schedule(instance.n());
  if (instance.n() == 0) return schedule;

  std::vector<JobId> order(instance.n());
  std::iota(order.begin(), order.end(), JobId{0});
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return instance.job(a).p > instance.job(b).p;
  });

  struct Shelf {
    Time start;
    Time height;          // duration of the tallest (first) job
    ProcCount remaining;  // processors still free on this shelf
  };
  std::vector<Shelf> shelves;

  for (const JobId id : order) {
    const Job& job = instance.job(id);
    Shelf* target = nullptr;
    if (policy_ == ShelfPolicy::kNextFit) {
      if (!shelves.empty() && shelves.back().remaining >= job.q)
        target = &shelves.back();
    } else {
      for (Shelf& shelf : shelves) {
        if (shelf.remaining >= job.q) {
          target = &shelf;
          break;
        }
      }
    }
    if (target == nullptr) {
      const Time start = shelves.empty()
                             ? 0
                             : checked_add(shelves.back().start,
                                           shelves.back().height);
      // Decreasing-duration order makes this first job the tallest.
      shelves.push_back(Shelf{start, job.p, instance.m()});
      target = &shelves.back();
    }
    schedule.set_start(id, target->start);
    // resched-lint: time-arith-audited(admitted q shrinks remaining; stays >= 0)
    target->remaining -= job.q;
  }
  return schedule;
}

}  // namespace resched
