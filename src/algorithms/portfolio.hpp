// Order-searching schedulers: the paper's conclusion asks which list
// priorities improve the 2/alpha constant. These two schedulers explore the
// order space at runtime instead of fixing one rule:
//
//  * PortfolioScheduler -- run LSRC under every standard priority order
//    (plus optional random restarts) and keep the best schedule. Never worse
//    than any single order; inherits every LSRC guarantee.
//  * LocalSearchScheduler -- hill-climb on the priority list with
//    swap/reinsert moves, seeded and budgeted; deterministic given (seed,
//    budget). Always returns a schedule at least as good as its starting
//    order's.
//
// Both are still list algorithms in the paper's sense (each produced
// schedule is an LSRC schedule for *some* list), so Theorem 2 / Prop. 1 /
// Prop. 3 apply verbatim to their output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algorithms/list_order.hpp"
#include "algorithms/scheduler.hpp"

namespace resched {

class PortfolioScheduler final : public Scheduler {
 public:
  // random_restarts extra shuffled orders are tried in addition to the
  // eight standard priority rules. extra_members names additional registry
  // schedulers whose output competes with the LSRC family; members whose
  // capabilities exclude the instance are skipped up front via supports()
  // (no throw-and-catch), so a heterogeneous portfolio degrades gracefully
  // on, say, a reserved instance that its shelf member cannot handle.
  explicit PortfolioScheduler(int random_restarts = 4, std::uint64_t seed = 1,
                              std::vector<std::string> extra_members = {});

  [[nodiscard]] ScheduleOutcome schedule(
      const Instance& instance) const override;
  [[nodiscard]] std::string name() const override { return "portfolio"; }
  // The LSRC core is unrestricted, so the portfolio is too: an extra member
  // that cannot handle the instance is skipped, never fatal.
  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{};
  }

 private:
  int random_restarts_;
  std::uint64_t seed_;
  std::vector<std::string> extra_members_;
};

class LocalSearchScheduler final : public Scheduler {
 public:
  // `iterations` candidate moves are evaluated; the search starts from the
  // given order (LPT by default, the paper's conjectured best rule).
  explicit LocalSearchScheduler(int iterations = 200,
                                ListOrder initial = ListOrder::kLpt,
                                std::uint64_t seed = 1);

  [[nodiscard]] ScheduleOutcome schedule(
      const Instance& instance) const override;
  [[nodiscard]] std::string name() const override { return "local-search"; }

 private:
  int iterations_;
  ListOrder initial_;
  std::uint64_t seed_;
};

}  // namespace resched
