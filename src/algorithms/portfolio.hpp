// Order-searching schedulers: the paper's conclusion asks which list
// priorities improve the 2/alpha constant. These two schedulers explore the
// order space at runtime instead of fixing one rule:
//
//  * PortfolioScheduler -- run LSRC under every standard priority order
//    (plus optional random restarts) and keep the best schedule. Never worse
//    than any single order; inherits every LSRC guarantee.
//  * LocalSearchScheduler -- hill-climb on the priority list with
//    swap/reinsert moves, seeded and budgeted; deterministic given (seed,
//    budget). Always returns a schedule at least as good as its starting
//    order's.
//
// Both are still list algorithms in the paper's sense (each produced
// schedule is an LSRC schedule for *some* list), so Theorem 2 / Prop. 1 /
// Prop. 3 apply verbatim to their output.
#pragma once

#include <cstdint>

#include "algorithms/list_order.hpp"
#include "algorithms/scheduler.hpp"

namespace resched {

class PortfolioScheduler final : public Scheduler {
 public:
  // random_restarts extra shuffled orders are tried in addition to the
  // eight standard priority rules.
  explicit PortfolioScheduler(int random_restarts = 4,
                              std::uint64_t seed = 1);

  [[nodiscard]] Schedule schedule(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override { return "portfolio"; }

 private:
  int random_restarts_;
  std::uint64_t seed_;
};

class LocalSearchScheduler final : public Scheduler {
 public:
  // `iterations` candidate moves are evaluated; the search starts from the
  // given order (LPT by default, the paper's conjectured best rule).
  explicit LocalSearchScheduler(int iterations = 200,
                                ListOrder initial = ListOrder::kLpt,
                                std::uint64_t seed = 1);

  [[nodiscard]] Schedule schedule(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override { return "local-search"; }

 private:
  int iterations_;
  ListOrder initial_;
  std::uint64_t seed_;
};

}  // namespace resched
