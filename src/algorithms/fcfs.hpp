// Strict First Come First Served (paper section 2.2).
//
// Jobs are considered in arrival order (release time, then submission
// index); each job starts at the earliest instant where it fits, *but never
// before the job ahead of it in the queue has started* (non-overtaking).
// This is the "perfectly understood by users" policy the paper describes,
// and the one with the pathological behaviour: a wide job at the head of the
// queue blocks everything behind it, which is why FCFS has no constant
// guarantee -- on fcfs_bad_instance(m) its makespan is ~m times optimal
// (experiment E5).
#pragma once

#include "algorithms/scheduler.hpp"

namespace resched {

class FcfsScheduler final : public Scheduler {
 public:
  // Unrestricted domain: the outcome is always a schedule.
  [[nodiscard]] ScheduleOutcome schedule(
      const Instance& instance) const override;
  // Incremental path: the same placement loop run against a persistent
  // absolute-time profile (see ReplanRequest in scheduler.hpp).
  [[nodiscard]] Schedule replan(const ReplanRequest& request) const override;
  [[nodiscard]] std::string name() const override { return "fcfs"; }
  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{.incremental_replan = true,
                        .append_only_replan = true};
  }
};

}  // namespace resched
