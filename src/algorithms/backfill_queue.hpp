// Event-indexed pending structures shared by the list/backfilling
// schedulers (lsrc.cpp, easy_bf.cpp).
//
// Both schedulers are event loops: at every capacity event t they walk
// their pending jobs in a fixed global order (priority-list rank for LSRC,
// FCFS arrival rank for EASY) and start whatever fits. The seed
// implementations rescanned the *whole* pending queue at every event --
// O(n) probes per event even though a job needing q processors cannot
// possibly start while free capacity at t is below q.
//
// BackfillQueue removes exactly that waste while reproducing the rescan's
// observable behavior bit-for-bit (the golden hashes in
// test_prop_scheduler_equiv pin this):
//
//   * pending jobs live in buckets keyed by their processor demand q, each
//     bucket sorted by the scheduler's rank;
//   * a capacity event opens a *pass*: the buckets whose threshold the
//     current free capacity reaches (q <= capacity at t) are merged
//     rank-order through a small binary heap, so candidates come out in
//     exactly the order the linear rescan would have examined them;
//   * a bucket whose head surfaces with q > capacity is retired for the
//     rest of the pass: the rescan would have probed each of its jobs only
//     to fail fits_at immediately (capacity at t is the minimum over the
//     job's window, so value-at-t below q already decides it). Capacity at
//     t never rises within a pass -- commits subtract, and the only
//     transient restore (EASY's tentative backfill) is unwound before the
//     next candidate is popped -- so retirement is permanent for the pass.
//
// Equivalence sketch: a pass examines precisely the pending jobs the
// rescan would have examined minus jobs that provably fail their capacity
// precheck, in the same order, against the same FreeProfile state;
// committed jobs and their commit order therefore coincide, and by
// induction over events the whole schedule does.
//
// EventTimes replaces the schedulers' raw std::priority_queue<Time> wake-up
// heap: release/completion collisions previously piled up as duplicate
// entries that each cost a heap pop; the ordered-set representation
// deduplicates on insert and consumes a whole stale prefix per advance.
#pragma once

#include <cstdint>
#include <iterator>
#include <optional>
#include <set>
#include <vector>

#include "core/arena.hpp"
#include "core/types.hpp"

namespace resched {

class BackfillQueue {
 public:
  struct Entry {
    JobId id;
    std::int64_t rank;  // global examination order; unique per job
    ProcCount q;
  };

  // max_q: largest processor demand that will ever be inserted (the
  // instance's machine count). With a scratch arena, every internal buffer
  // (buckets, merge heap, pass list) is bump-allocated from it -- the
  // replan hot path; null = plain counted heap (batch schedule()).
  explicit BackfillQueue(ProcCount max_q, Arena* scratch = nullptr);

  // Inserts a pending job. Must not be called while a pass is open.
  void insert(JobId id, std::int64_t rank, ProcCount q);

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  // Pass protocol, one pass per capacity event:
  //   queue.begin_pass();
  //   while (auto e = queue.next(capacity)) { ...; queue.keep() or take(); }
  //   queue.end_pass();
  // Every popped candidate must be answered with exactly one keep()/take()
  // before the next next() call. `capacity` is the caller-maintained free
  // capacity at the event time (decremented by q on every commit);
  // ignore_capacity pops the globally lowest-ranked job regardless of its
  // bucket's threshold (EASY's protected head).
  void begin_pass();
  [[nodiscard]] std::optional<Entry> next(std::int64_t capacity,
                                          bool ignore_capacity = false);
  void keep();
  void take();
  void end_pass();

 private:
  struct Bucket {
    explicit Bucket(Arena* scratch) : items(ArenaAlloc<Entry>(scratch)) {}
    ScratchVec<Entry> items;   // sorted by rank
    std::size_t read = 0;      // pass cursors: next candidate / survivor slot
    std::size_t write = 0;
    bool in_pass = false;
  };

  // Heap item: the head rank of a live bucket. Min-heap by rank (ranks are
  // unique, so the bucket index never tiebreaks).
  struct Head {
    std::int64_t rank;
    ProcCount q;
    friend bool operator>(const Head& a, const Head& b) {
      return a.rank > b.rank;
    }
  };

  void touch(Bucket& bucket, ProcCount q);

  ScratchVec<Bucket> buckets_;          // indexed by q, 0..max_q
  ScratchVec<Head> heap_;               // std::push_heap/pop_heap, min by rank
  ScratchVec<ProcCount> pass_qs_;       // buckets touched by the open pass
  std::size_t size_ = 0;
  ProcCount current_ = -1;              // bucket of the last popped candidate
  bool pass_open_ = false;
};

// Deduplicated min-queue of wake-up times for event-driven schedulers.
// With a scratch arena the set's nodes come from the bump allocator
// (erased nodes are not individually reclaimed -- the arena reset at the
// end of the decision takes them all); null = plain counted heap.
class EventTimes {
 public:
  explicit EventTimes(Arena* scratch = nullptr)
      : times_(std::less<Time>(), ArenaAlloc<Time>(scratch)) {}

  // Records a wake-up; duplicates coalesce.
  void push(Time t) { times_.insert(t); }

  // Smallest recorded time strictly greater than t, or kTimeInfinity.
  // Consumes everything up to and including the returned time.
  Time next_after(Time t) {
    const auto it = times_.upper_bound(t);
    if (it == times_.end()) {
      times_.clear();
      return kTimeInfinity;
    }
    const Time next = *it;
    times_.erase(times_.begin(), std::next(it));
    return next;
  }

 private:
  std::set<Time, std::less<Time>, ArenaAlloc<Time>> times_;
};

}  // namespace resched
