#include "algorithms/backfill_queue.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace resched {

BackfillQueue::BackfillQueue(ProcCount max_q, Arena* scratch)
    : buckets_(ArenaAlloc<Bucket>(scratch)),
      heap_(ArenaAlloc<Head>(scratch)),
      pass_qs_(ArenaAlloc<ProcCount>(scratch)) {
  RESCHED_REQUIRE_MSG(max_q >= 1, "backfill queue needs max_q >= 1");
  buckets_.reserve(static_cast<std::size_t>(max_q) + 1);
  for (std::size_t q = 0; q <= static_cast<std::size_t>(max_q); ++q)
    buckets_.emplace_back(scratch);
}

void BackfillQueue::insert(JobId id, std::int64_t rank, ProcCount q) {
  RESCHED_REQUIRE_MSG(!pass_open_, "insert during an open pass");
  RESCHED_REQUIRE(q >= 1 &&
                  static_cast<std::size_t>(q) < buckets_.size());
  Bucket& bucket = buckets_[static_cast<std::size_t>(q)];
  // Ranks arrive mostly in increasing order (release-sorted feeds), so the
  // binary search almost always lands at the back.
  const auto at = std::lower_bound(
      bucket.items.begin(), bucket.items.end(), rank,
      [](const Entry& entry, std::int64_t value) { return entry.rank < value; });
  bucket.items.insert(at, Entry{id, rank, q});
  ++size_;
}

void BackfillQueue::begin_pass() {
  RESCHED_REQUIRE_MSG(!pass_open_, "pass already open");
  pass_open_ = true;
  current_ = -1;
  heap_.clear();
  for (std::size_t q = 1; q < buckets_.size(); ++q) {
    if (buckets_[q].items.empty()) continue;
    heap_.push_back(Head{buckets_[q].items.front().rank,
                         static_cast<ProcCount>(q)});
  }
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

void BackfillQueue::touch(Bucket& bucket, ProcCount q) {
  if (!bucket.in_pass) {
    bucket.in_pass = true;
    bucket.read = 0;
    bucket.write = 0;
    pass_qs_.push_back(q);
  }
}

std::optional<BackfillQueue::Entry> BackfillQueue::next(
    std::int64_t capacity, bool ignore_capacity) {
  RESCHED_ASSERT(pass_open_ && current_ < 0);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const Head head = heap_.back();
    heap_.pop_back();
    Bucket& bucket = buckets_[static_cast<std::size_t>(head.q)];
    touch(bucket, head.q);
    if (!ignore_capacity && head.q > capacity) {
      // Retire the bucket for this pass: capacity at the event time cannot
      // come back up, so none of its jobs can start (see header sketch).
      continue;
    }
    current_ = head.q;
    return bucket.items[bucket.read];
  }
  return std::nullopt;
}

void BackfillQueue::keep() {
  RESCHED_ASSERT(pass_open_ && current_ >= 0);
  Bucket& bucket = buckets_[static_cast<std::size_t>(current_)];
  bucket.items[bucket.write++] = bucket.items[bucket.read++];
  if (bucket.read < bucket.items.size()) {
    heap_.push_back(Head{bucket.items[bucket.read].rank, current_});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  current_ = -1;
}

void BackfillQueue::take() {
  RESCHED_ASSERT(pass_open_ && current_ >= 0);
  Bucket& bucket = buckets_[static_cast<std::size_t>(current_)];
  ++bucket.read;
  --size_;
  if (bucket.read < bucket.items.size()) {
    heap_.push_back(Head{bucket.items[bucket.read].rank, current_});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  current_ = -1;
}

void BackfillQueue::end_pass() {
  RESCHED_REQUIRE_MSG(pass_open_ && current_ < 0,
                      "end_pass with an unanswered candidate");
  for (const ProcCount q : pass_qs_) {
    Bucket& bucket = buckets_[static_cast<std::size_t>(q)];
    // Survivors [write, read) were already compacted; shift the unexamined
    // tail [read, end) down next to them.
    if (bucket.write != bucket.read)
      bucket.items.erase(
          bucket.items.begin() + static_cast<std::ptrdiff_t>(bucket.write),
          bucket.items.begin() + static_cast<std::ptrdiff_t>(bucket.read));
    bucket.read = 0;
    bucket.write = 0;
    bucket.in_pass = false;
  }
  pass_qs_.clear();
  heap_.clear();
  pass_open_ = false;
}

}  // namespace resched
