// Schedule compaction: left-shifting to an active schedule.
//
// The correctness argument of the exact solver (exact/bnb.hpp) relies on
// the classical fact that any feasible schedule can be transformed, by
// repeatedly left-shifting jobs in non-decreasing start order, into an
// *active* schedule that is nowhere worse. This module implements exactly
// that transformation as a post-processing pass usable on ANY scheduler's
// output:
//
//   * the result is feasible whenever the input is,
//   * no job starts later than before (hence the makespan never grows),
//   * a fixed point is reached after one pass (shifting a job frees
//     capacity only to its right-shifted past, which re-shifting in start
//     order already exploited),
//   * LSRC schedules are already active: compaction leaves them unchanged
//     (property-tested).
//
// Useful to clean up hand-written or externally imported schedules, and as
// a test oracle for the active-schedule dominance argument itself.
#pragma once

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace resched {

struct CompactionResult {
  Schedule schedule;
  int moved_jobs = 0;     // jobs that shifted left
  Time makespan_before = 0;
  Time makespan_after = 0;
};

// Requires a fully scheduled, feasible schedule.
[[nodiscard]] CompactionResult compact_schedule(const Instance& instance,
                                                const Schedule& schedule);

}  // namespace resched
