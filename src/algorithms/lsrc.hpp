// LSRC: List Scheduling with Resource Constraints (Garey & Graham 1975),
// the algorithm the paper analyses.
//
// Semantics (paper sections 2.2 and 3.1): maintain a priority list of jobs.
// Whenever processors free up (t = 0, a job completes, a reservation ends),
// scan the not-yet-started jobs in list order and start every job that can
// run *for its entire duration* from the current instant -- i.e. q_i
// processors are free during all of [t, t + p_i) against both the running
// jobs and every reservation. This duration look-ahead is what feasibility
// in the reservation model requires (a job must never overlap a reservation
// that would overload the machine mid-execution).
//
// This equals the "most aggressive back-filling" variant of section 2.2: any
// job may overtake any other as long as it can start now.
//
// Correctness of the event loop: capacity only decreases when jobs start, so
// a single in-order pass per event is enough (starting one job can never make
// a previously skipped job fit). By the candidate-start lemma
// (profile_allocator.hpp), fits can only appear at capacity-increase
// breakpoints = completions and reservation ends, which are exactly the
// events the loop wakes on; release times are additional wake-ups in the
// online extension.
//
// Guarantees proved in the paper, all checked by tests/benches:
//   * no reservations:      C_LSRC <= (2 - 1/m) C*            (Theorem 2)
//   * non-increasing U:     C_LSRC <= (2 - 1/m(C*)) C*        (Prop. 1)
//   * alpha-restricted:     C_LSRC <= (2/alpha) C*            (Prop. 3)
//   * lower bound:          ratio can reach 2/alpha - 1 + alpha/2 (Prop. 2)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algorithms/list_order.hpp"
#include "algorithms/scheduler.hpp"

namespace resched {

class LsrcScheduler final : public Scheduler {
 public:
  explicit LsrcScheduler(ListOrder order = ListOrder::kSubmission,
                         std::uint64_t seed = 0);
  // Fixed explicit priority list (used by the adversarial instances, whose
  // lower bound needs a specific "bad" order).
  explicit LsrcScheduler(std::vector<JobId> explicit_list);

  // Unrestricted domain (release times and reservations are the algorithm's
  // native model), so the outcome is always a schedule; a malformed explicit
  // list is a precondition violation and throws.
  [[nodiscard]] ScheduleOutcome schedule(
      const Instance& instance) const override;
  [[nodiscard]] std::string name() const override;

  // One-shot run with an explicit list (priority = position in `list`).
  [[nodiscard]] static Schedule run(const Instance& instance,
                                    std::span<const JobId> list);

 private:
  ListOrder order_;
  std::uint64_t seed_;
  std::vector<JobId> explicit_list_;
  bool use_explicit_;
};

}  // namespace resched
