#include "algorithms/easy_bf.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <queue>
#include <vector>

#include "core/profile_allocator.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

Schedule EasyBackfillScheduler::schedule(const Instance& instance) const {
  Schedule schedule(instance.n());
  if (instance.n() == 0) return schedule;

  FreeProfile free = FreeProfile::for_instance(instance);

  std::vector<JobId> arrival(instance.n());
  std::iota(arrival.begin(), arrival.end(), JobId{0});
  std::stable_sort(arrival.begin(), arrival.end(), [&](JobId a, JobId b) {
    return instance.job(a).release < instance.job(b).release;
  });

  std::priority_queue<Time, std::vector<Time>, std::greater<>> events;
  for (const Reservation& resa : instance.reservations())
    events.push(resa.end());

  std::deque<JobId> waiting;  // released, not yet started, FCFS order
  std::size_t next_arrival = 0;
  Time t = instance.job(arrival[0]).release;
  // Feed releases as events too.
  for (const Job& job : instance.jobs())
    if (job.release > t) events.push(job.release);

  std::size_t started = 0;
  while (started < instance.n()) {
    while (next_arrival < arrival.size() &&
           instance.job(arrival[next_arrival]).release <= t)
      waiting.push_back(arrival[next_arrival++]);

    // Phase 1: start the head (and successive heads) while they fit now.
    while (!waiting.empty()) {
      const Job& head = instance.job(waiting.front());
      if (!free.fits_at(t, head.q, head.p)) break;
      free.commit(t, head.q, head.p);
      schedule.set_start(head.id, t);
      events.push(checked_add(t, head.p));
      waiting.pop_front();
      ++started;
    }

    // Phase 2: head blocked -> reserve its start, then backfill.
    if (!waiting.empty()) {
      const Job& head = instance.job(waiting.front());
      const Time head_start = free.earliest_fit(t, head.q, head.p);
      for (std::size_t i = 1; i < waiting.size(); ++i) {
        const Job& job = instance.job(waiting[i]);
        if (!free.fits_at(t, job.q, job.p)) continue;
        // Tentatively start; keep only if the head is not pushed back.
        free.commit(t, job.q, job.p);
        if (free.earliest_fit(t, head.q, head.p) > head_start) {
          free.uncommit(t, job.q, job.p);
          continue;
        }
        schedule.set_start(job.id, t);
        events.push(checked_add(t, job.p));
        waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(i));
        --i;  // re-examine this position
        ++started;
      }
    }

    if (started == instance.n()) break;

    Time next = kTimeInfinity;
    while (!events.empty()) {
      const Time candidate = events.top();
      events.pop();
      if (candidate > t) {
        next = candidate;
        break;
      }
    }
    RESCHED_CHECK_MSG(next < kTimeInfinity,
                      "EASY stalled: waiting jobs but no future event");
    t = next;
  }
  return schedule;
}

}  // namespace resched
