#include "algorithms/easy_bf.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "algorithms/backfill_queue.hpp"
#include "core/arena.hpp"
#include "core/profile_allocator.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {
namespace {

// Shared core of schedule() and replan(): EASY's event loop over an explicit
// job vector (ids == positions), a pre-seeded wake-up set and a start clock.
// schedule() calls it with a fresh profile, reservation-end events and
// t0 = 0; the incremental path calls it with the service's persistent
// absolute-time profile, the running-job/window wake-ups and t0 = now. The
// two are the same computation up to time translation, which is what keeps
// the incremental plan bit-identical to the full re-solve oracle.
Schedule easy_run(FreeProfile& free, ProcCount m, const std::vector<Job>& jobs,
                  EventTimes events, Time t0, Arena* scratch) {
  Schedule schedule(jobs.size(), scratch);
  if (jobs.empty()) return schedule;

  ScratchVec<JobId> arrival(jobs.size(), JobId{0}, ArenaAlloc<JobId>(scratch));
  std::iota(arrival.begin(), arrival.end(), JobId{0});
  // (release, id) is a total order, so this in-place sort produces exactly
  // the permutation a stable sort by release would -- without stable_sort's
  // unconditional heap-allocated merge buffer (one alloc per decision).
  std::sort(arrival.begin(), arrival.end(), [&](JobId a, JobId b) {
    const Time ra = jobs[static_cast<std::size_t>(a)].release;
    const Time rb = jobs[static_cast<std::size_t>(b)].release;
    if (ra != rb) return ra < rb;
    return a < b;
  });

  Time t = std::max(t0, jobs[static_cast<std::size_t>(arrival[0])].release);
  for (const Job& job : jobs)
    if (job.release > t) events.push(job.release);

  // Waiting jobs, event-indexed by processor demand; rank = arrival-order
  // position, so passes examine candidates in exactly the FCFS order the
  // seed's deque walk used.
  BackfillQueue waiting(m, scratch);
  std::size_t next_arrival = 0;
  std::size_t started = 0;
  while (started < jobs.size()) {
    while (next_arrival < arrival.size() &&
           jobs[static_cast<std::size_t>(arrival[next_arrival])].release <=
               t) {
      const Job& job = jobs[static_cast<std::size_t>(arrival[next_arrival])];
      waiting.insert(job.id, static_cast<std::int64_t>(next_arrival), job.q);
      ++next_arrival;
    }

    std::int64_t capacity = free.capacity_at(t);
    waiting.begin_pass();

    // Phase 1: start the head (and successive heads) while they fit now.
    // The head is the globally lowest-ranked waiting job regardless of its
    // bucket's capacity threshold, hence ignore_capacity.
    bool head_blocked = false;
    JobId head_id = -1;
    while (const auto candidate =
               waiting.next(capacity, /*ignore_capacity=*/true)) {
      const Job& head = jobs[static_cast<std::size_t>(candidate->id)];
      if (!free.fits_at(t, head.q, head.p)) {
        head_id = head.id;
        head_blocked = true;
        waiting.keep();
        break;
      }
      free.commit_fitted(t, head.q, head.p);
      schedule.set_start(head.id, t);
      events.push(checked_add(t, head.p));
      // resched-lint: time-arith-audited(admitted q keeps capacity in [0, m])
      capacity -= head.q;
      waiting.take();
      ++started;
    }

    // Phase 2: head blocked -> reserve its start, then backfill the rest in
    // FCFS order. Only buckets with q <= capacity wake up; the retired ones
    // would have failed fits_at outright.
    if (head_blocked) {
      const Job& head = jobs[static_cast<std::size_t>(head_id)];
      const Time head_start = free.earliest_fit(t, head.q, head.p);
      const Time head_end = checked_add(head_start, head.p);
      // Probe-window invariant: the head fits at head_start right now
      // (earliest_fit established it, and every accepted candidate below
      // re-establishes it). A candidate's commit only removes capacity on
      // its own window [t, t+p), so "head not pushed back" only needs the
      // windowed min over the *overlap* of that window with the head's
      // reservation window -- and a candidate ending at or before
      // head_start cannot push the head at all, so it commits outright
      // with no tentative machinery.
      while (const auto candidate = waiting.next(capacity)) {
        const Job& job = jobs[static_cast<std::size_t>(candidate->id)];
        if (!free.fits_at(t, job.q, job.p)) {
          waiting.keep();
          continue;
        }
        const Time job_end = checked_add(t, job.p);
        if (job_end > head_start) {
          // Tentatively start; keep only if the head is not pushed back
          // (the overlap min above). The token rollback restores the
          // touched segments in O(touched) and keeps the profile's query
          // index warm (no budget drain, no O(s) rebuild), so a long run
          // of rejected candidates stays cheap.
          FreeProfile::CommitToken token =
              free.commit_tentative(t, job.q, job.p);
          if (free.profile().first_below(head_start,
                                         std::min(head_end, job_end),
                                         head.q) != kTimeInfinity) {
            free.rollback(std::move(token));
            waiting.keep();
            continue;
          }
          free.accept(std::move(token));
        } else {
          free.commit_fitted(t, job.q, job.p);
        }
        schedule.set_start(job.id, t);
        events.push(job_end);
        // resched-lint: time-arith-audited(admitted q keeps capacity in [0, m])
        capacity -= job.q;
        waiting.take();
        ++started;
      }
    }
    waiting.end_pass();

    if (started == jobs.size()) break;

    const Time next = events.next_after(t);
    RESCHED_CHECK_MSG(next < kTimeInfinity,
                      "EASY stalled: waiting jobs but no future event");
    t = next;
  }
  return schedule;
}

}  // namespace

ScheduleOutcome EasyBackfillScheduler::schedule(
    const Instance& instance) const {
  if (instance.n() == 0) return Schedule(0);
  FreeProfile free = FreeProfile::for_instance(instance);
  EventTimes events;
  for (const Reservation& resa : instance.reservations())
    events.push(resa.end());
  return easy_run(free, instance.m(), instance.jobs(), std::move(events), 0,
                  nullptr);
}

Schedule EasyBackfillScheduler::replan(const ReplanRequest& request) const {
  EventTimes events(request.scratch);
  for (const Time wakeup : request.wakeups)
    if (wakeup > request.now) events.push(wakeup);
  return easy_run(request.free, request.m, request.queue, std::move(events),
                  request.now, request.scratch);
}

}  // namespace resched
