#include "algorithms/lsrc.hpp"

#include <algorithm>
#include <queue>

#include "core/profile_allocator.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

LsrcScheduler::LsrcScheduler(ListOrder order, std::uint64_t seed)
    : order_(order), seed_(seed), use_explicit_(false) {}

LsrcScheduler::LsrcScheduler(std::vector<JobId> explicit_list)
    : order_(ListOrder::kSubmission),
      seed_(0),
      explicit_list_(std::move(explicit_list)),
      use_explicit_(true) {}

std::string LsrcScheduler::name() const {
  if (use_explicit_) return "lsrc[explicit]";
  return "lsrc[" + to_string(order_) + "]";
}

Schedule LsrcScheduler::schedule(const Instance& instance) const {
  const std::vector<JobId> list =
      use_explicit_ ? explicit_list_ : make_list(instance, order_, seed_);
  return run(instance, list);
}

Schedule LsrcScheduler::run(const Instance& instance,
                            std::span<const JobId> list) {
  RESCHED_REQUIRE_MSG(list.size() == instance.n(),
                      "priority list must mention every job exactly once");
  {
    std::vector<bool> seen(instance.n(), false);
    for (const JobId id : list) {
      RESCHED_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < instance.n());
      RESCHED_REQUIRE_MSG(!seen[static_cast<std::size_t>(id)],
                          "duplicate job in priority list");
      seen[static_cast<std::size_t>(id)] = true;
    }
  }

  Schedule schedule(instance.n());
  if (instance.n() == 0) return schedule;

  FreeProfile free = FreeProfile::for_instance(instance);

  // Wake-up times: capacity increases (completions, reservation ends) and
  // job releases. A min-heap of candidate times; duplicates are harmless.
  std::priority_queue<Time, std::vector<Time>, std::greater<>> events;
  for (const Reservation& resa : instance.reservations())
    events.push(resa.end());
  Time t = kTimeInfinity;
  for (const Job& job : instance.jobs()) {
    if (job.release > 0) events.push(job.release);
    t = std::min(t, job.release);
  }

  // pending jobs in priority order.
  std::vector<JobId> pending(list.begin(), list.end());
  while (!pending.empty()) {
    // Single pass in priority order: start everything that fits now.
    std::vector<JobId> still_pending;
    still_pending.reserve(pending.size());
    for (const JobId id : pending) {
      const Job& job = instance.job(id);
      if (job.release <= t && free.fits_at(t, job.q, job.p)) {
        free.commit(t, job.q, job.p);
        schedule.set_start(id, t);
        events.push(checked_add(t, job.p));
      } else {
        still_pending.push_back(id);
      }
    }
    pending.swap(still_pending);
    if (pending.empty()) break;

    // Advance to the next wake-up strictly after t.
    Time next = kTimeInfinity;
    while (!events.empty()) {
      const Time candidate = events.top();
      events.pop();
      if (candidate > t) {
        next = candidate;
        break;
      }
    }
    RESCHED_CHECK_MSG(next < kTimeInfinity,
                      "LSRC stalled: pending jobs but no future event -- "
                      "instance must be infeasible");
    t = next;
  }
  return schedule;
}

}  // namespace resched
