#include "algorithms/lsrc.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "algorithms/backfill_queue.hpp"
#include "core/profile_allocator.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

LsrcScheduler::LsrcScheduler(ListOrder order, std::uint64_t seed)
    : order_(order), seed_(seed), use_explicit_(false) {}

LsrcScheduler::LsrcScheduler(std::vector<JobId> explicit_list)
    : order_(ListOrder::kSubmission),
      seed_(0),
      explicit_list_(std::move(explicit_list)),
      use_explicit_(true) {}

std::string LsrcScheduler::name() const {
  if (use_explicit_) return "lsrc[explicit]";
  return "lsrc[" + to_string(order_) + "]";
}

ScheduleOutcome LsrcScheduler::schedule(const Instance& instance) const {
  const std::vector<JobId> list =
      use_explicit_ ? explicit_list_ : make_list(instance, order_, seed_);
  return run(instance, list);
}

Schedule LsrcScheduler::run(const Instance& instance,
                            std::span<const JobId> list) {
  RESCHED_REQUIRE_MSG(list.size() == instance.n(),
                      "priority list must mention every job exactly once");
  {
    std::vector<bool> seen(instance.n(), false);
    for (const JobId id : list) {
      RESCHED_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < instance.n());
      RESCHED_REQUIRE_MSG(!seen[static_cast<std::size_t>(id)],
                          "duplicate job in priority list");
      seen[static_cast<std::size_t>(id)] = true;
    }
  }

  Schedule schedule(instance.n());
  if (instance.n() == 0) return schedule;

  FreeProfile free = FreeProfile::for_instance(instance);

  // Wake-up times: capacity increases (completions, reservation ends) and
  // job releases; EventTimes coalesces collisions.
  EventTimes events;
  for (const Reservation& resa : instance.reservations())
    events.push(resa.end());
  Time t = kTimeInfinity;
  for (const Job& job : instance.jobs()) {
    if (job.release > 0) events.push(job.release);
    t = std::min(t, job.release);
  }

  // Pending jobs, event-indexed by processor demand; rank = priority-list
  // position, so a pass examines them in exactly the list order the seed's
  // linear rescan used. Unreleased jobs stay out of the queue entirely (the
  // rescan re-skipped them at every event) and enter when t reaches their
  // release, via the release-sorted feed below.
  std::vector<std::int64_t> rank_of(instance.n());
  for (std::size_t r = 0; r < list.size(); ++r)
    rank_of[static_cast<std::size_t>(list[r])] = static_cast<std::int64_t>(r);
  std::vector<JobId> by_release(instance.n());
  std::iota(by_release.begin(), by_release.end(), JobId{0});
  std::sort(by_release.begin(), by_release.end(), [&](JobId a, JobId b) {
    const Time ra = instance.job(a).release;
    const Time rb = instance.job(b).release;
    return ra != rb ? ra < rb : a < b;
  });

  BackfillQueue pending(instance.m());
  std::size_t next_release = 0;
  std::size_t remaining = instance.n();
  while (remaining > 0) {
    while (next_release < by_release.size() &&
           instance.job(by_release[next_release]).release <= t) {
      const Job& job = instance.job(by_release[next_release++]);
      pending.insert(job.id, rank_of[static_cast<std::size_t>(job.id)],
                     job.q);
    }

    // Single pass in priority order: start everything that fits now. Only
    // buckets with q <= capacity wake up; the rest provably cannot start.
    std::int64_t capacity = free.capacity_at(t);
    pending.begin_pass();
    while (const auto candidate = pending.next(capacity)) {
      const Job& job = instance.job(candidate->id);
      if (free.fits_at(t, job.q, job.p)) {
        free.commit_fitted(t, job.q, job.p);
        schedule.set_start(job.id, t);
        events.push(checked_add(t, job.p));
        // resched-lint: time-arith-audited(admitted q keeps capacity in [0, m])
        capacity -= job.q;
        --remaining;
        pending.take();
      } else {
        pending.keep();
      }
    }
    pending.end_pass();
    if (remaining == 0) break;

    // Advance to the next wake-up strictly after t.
    const Time next = events.next_after(t);
    RESCHED_CHECK_MSG(next < kTimeInfinity,
                      "LSRC stalled: pending jobs but no future event -- "
                      "instance must be infeasible");
    t = next;
  }
  return schedule;
}

}  // namespace resched
