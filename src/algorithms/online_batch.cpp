#include "algorithms/online_batch.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

OnlineBatchScheduler::OnlineBatchScheduler(std::unique_ptr<Scheduler> base)
    : base_(std::move(base)) {
  RESCHED_REQUIRE(base_ != nullptr);
  RESCHED_REQUIRE_MSG(base_->capabilities().release_times,
                      "online-batch base scheduler must support release "
                      "times (batch jobs are pinned to the epoch)");
}

std::string OnlineBatchScheduler::name() const {
  return "online-batch(" + base_->name() + ")";
}

ScheduleOutcome OnlineBatchScheduler::schedule(const Instance& instance) const {
  std::vector<BatchInfo> batches;
  return schedule_with_batches(instance, batches);
}

ScheduleOutcome OnlineBatchScheduler::schedule_with_batches(
    const Instance& instance, std::vector<BatchInfo>& batches) const {
  batches.clear();
  // Entry-point domain check (both public entry points funnel through
  // here): the base's capability rejection surfaces as a typed
  // DomainError, never as a mid-batch invariant failure.
  if (auto violation = out_of_domain(instance)) return *std::move(violation);
  Schedule result(instance.n());
  if (instance.n() == 0) return result;

  std::vector<JobId> by_release(instance.n());
  std::iota(by_release.begin(), by_release.end(), JobId{0});
  std::stable_sort(by_release.begin(), by_release.end(), [&](JobId a, JobId b) {
    return instance.job(a).release < instance.job(b).release;
  });

  std::size_t consumed = 0;
  Time epoch = instance.job(by_release[0]).release;
  while (consumed < by_release.size()) {
    // Batch = everything released by the epoch. (The first batch may be
    // empty if nothing has arrived yet; then jump to the next release.)
    std::vector<JobId> batch_ids;
    while (consumed < by_release.size() &&
           instance.job(by_release[consumed]).release <= epoch)
      batch_ids.push_back(by_release[consumed++]);
    if (batch_ids.empty()) {
      epoch = instance.job(by_release[consumed]).release;
      continue;
    }

    // Sub-instance: same machine and reservations; batch jobs pinned to
    // start no earlier than the epoch (release = epoch).
    std::vector<Job> sub_jobs;
    sub_jobs.reserve(batch_ids.size());
    for (std::size_t i = 0; i < batch_ids.size(); ++i) {
      Job job = instance.job(batch_ids[i]);
      job.id = static_cast<JobId>(i);
      job.release = epoch;
      sub_jobs.push_back(std::move(job));
    }
    const Instance sub(instance.m(), std::move(sub_jobs),
                       instance.reservations());
    // In-domain by the entry check above (capabilities() is the base's),
    // so an error arm here would be an invariant violation -- value()
    // trips RESCHED_CHECK on it.
    const Schedule sub_schedule = base_->schedule(sub).value();
    const ValidationResult valid = sub_schedule.validate(sub);
    RESCHED_CHECK_MSG(valid.ok,
                      "base scheduler produced an infeasible batch "
                      "schedule: " + valid.error);

    Time batch_completion = epoch;
    for (std::size_t i = 0; i < batch_ids.size(); ++i) {
      const Time start = sub_schedule.start(static_cast<JobId>(i));
      result.set_start(batch_ids[i], start);
      batch_completion = std::max(
          batch_completion,
          checked_add(start, sub.job(static_cast<JobId>(i)).p));
    }
    batches.push_back(BatchInfo{epoch, batch_completion, batch_ids.size()});

    // Next batch only opens when the current one has fully completed.
    epoch = batch_completion;
  }
  return result;
}

}  // namespace resched
