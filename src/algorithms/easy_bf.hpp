// EASY (aggressive) backfilling (paper section 2.2).
//
// The queue is FCFS, but only the *head* job is protected: when the head
// cannot start, it receives a reservation at its earliest feasible start
// time, and any later job may backfill right now provided doing so does not
// push the head's reservation back. More aggressive than conservative
// backfilling (non-head jobs carry no protection and can be overtaken
// repeatedly), less aggressive than LSRC (which protects nobody). The
// bench/bench_online experiment shows the resulting ladder:
// FCFS >= conservative ~ EASY >= LSRC on trap instances.
#pragma once

#include "algorithms/scheduler.hpp"

namespace resched {

class EasyBackfillScheduler final : public Scheduler {
 public:
  // Unrestricted domain: the outcome is always a schedule.
  [[nodiscard]] ScheduleOutcome schedule(
      const Instance& instance) const override;
  // Incremental path: the same event loop run against a persistent
  // absolute-time profile (see ReplanRequest in scheduler.hpp).
  [[nodiscard]] Schedule replan(const ReplanRequest& request) const override;
  [[nodiscard]] std::string name() const override { return "easy"; }
  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{.incremental_replan = true};
  }
};

}  // namespace resched
