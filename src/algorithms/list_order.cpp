#include "algorithms/list_order.hpp"

#include <algorithm>
#include <numeric>

#include "util/prng.hpp"
#include "util/require.hpp"

namespace resched {

std::string to_string(ListOrder order) {
  switch (order) {
    case ListOrder::kSubmission: return "submission";
    case ListOrder::kLpt: return "lpt";
    case ListOrder::kSpt: return "spt";
    case ListOrder::kWidest: return "widest";
    case ListOrder::kNarrowest: return "narrowest";
    case ListOrder::kMaxArea: return "max-area";
    case ListOrder::kMinArea: return "min-area";
    case ListOrder::kRandom: return "random";
  }
  return "?";
}

ListOrder list_order_from_string(const std::string& name) {
  for (const ListOrder order : all_list_orders())
    if (to_string(order) == name) return order;
  throw std::invalid_argument("unknown list order: " + name);
}

std::vector<ListOrder> all_list_orders() {
  return {ListOrder::kSubmission, ListOrder::kLpt,     ListOrder::kSpt,
          ListOrder::kWidest,     ListOrder::kNarrowest,
          ListOrder::kMaxArea,    ListOrder::kMinArea, ListOrder::kRandom};
}

std::vector<JobId> make_list(const Instance& instance, ListOrder order,
                             std::uint64_t seed) {
  std::vector<JobId> ids(instance.n());
  std::iota(ids.begin(), ids.end(), JobId{0});

  const auto& jobs = instance.jobs();
  auto by = [&](auto key) {
    std::stable_sort(ids.begin(), ids.end(), [&](JobId a, JobId b) {
      return key(jobs[static_cast<std::size_t>(a)]) <
             key(jobs[static_cast<std::size_t>(b)]);
    });
  };

  switch (order) {
    case ListOrder::kSubmission:
      break;
    case ListOrder::kLpt:
      by([](const Job& j) { return -j.p; });
      break;
    case ListOrder::kSpt:
      by([](const Job& j) { return j.p; });
      break;
    case ListOrder::kWidest:
      by([](const Job& j) { return -j.q; });
      break;
    case ListOrder::kNarrowest:
      by([](const Job& j) { return j.q; });
      break;
    case ListOrder::kMaxArea:
      by([](const Job& j) { return -j.area(); });
      break;
    case ListOrder::kMinArea:
      by([](const Job& j) { return j.area(); });
      break;
    case ListOrder::kRandom: {
      Prng prng(seed);
      prng.shuffle(ids);
      break;
    }
  }
  return ids;
}

}  // namespace resched
