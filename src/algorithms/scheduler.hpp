// Scheduler interface and registry.
//
// A Scheduler is a pure function Instance -> Schedule (no hidden state, no
// randomness unless seeded through options), which is what makes the
// worst-case experiments reproducible. Concrete algorithms:
//
//   lsrc          -- list scheduling with resource constraints (the paper's
//                    LSRC; equals the most aggressive backfilling variant),
//   fcfs          -- strict First Come First Served (non-overtaking),
//   conservative  -- conservative backfilling,
//   easy          -- EASY (aggressive) backfilling,
//   shelf         -- NFDH shelf packing (no-reservation instances only),
//
// each available through the registry by name for sweep drivers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace resched {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Produces a feasible schedule for every job of the instance. Throws
  // std::invalid_argument when the instance is outside the algorithm's
  // domain (e.g. release times given to a strictly offline algorithm).
  [[nodiscard]] virtual Schedule schedule(const Instance& instance) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

// Global registry (populated at static-init time by each algorithm's .cpp).
void register_scheduler(const std::string& name, SchedulerFactory factory);
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const std::string& name);
[[nodiscard]] std::vector<std::string> registered_schedulers();

}  // namespace resched
