// Scheduler interface and registry (API v2).
//
// A Scheduler is a pure function Instance -> Schedule (no hidden state, no
// randomness unless seeded through options), which is what makes the
// worst-case experiments reproducible. Concrete algorithms:
//
//   lsrc          -- list scheduling with resource constraints (the paper's
//                    LSRC; equals the most aggressive backfilling variant),
//   fcfs          -- strict First Come First Served (non-overtaking),
//   conservative  -- conservative backfilling,
//   easy          -- EASY (aggressive) backfilling,
//   shelf         -- NFDH shelf packing (no-reservation instances only),
//
// each available through the registry by name for sweep drivers.
//
// ## Outcome semantics
//
// `schedule` returns a ScheduleOutcome: either a feasible schedule for every
// job of the instance, or a typed DomainError stating *why* the instance is
// outside the algorithm's domain (reason enum + human-readable message).
// Out-of-domain is a NORMAL result, produced only by explicit capability
// checks at the scheduler entry point -- a sweep over a heterogeneous
// registry consumes it without exception handling, and a campaign can count
// skip reasons instead of guessing.
//
// Everything else stays fatal: RESCHED_REQUIRE / RESCHED_CHECK failures
// anywhere below the entry point (malformed explicit priority lists,
// profile preconditions tripped three layers down, stalled event loops)
// throw std::invalid_argument / std::logic_error as before and are NEVER
// converted into a DomainError. A precondition violation inside a scheduler
// is a bug, not a skip.
//
// ## Capability introspection
//
// `capabilities()` declares the instance features an algorithm accepts, and
// `supports(instance)` / `out_of_domain(instance)` evaluate them against a
// concrete instance, so drivers filter up front instead of throw-and-catch.
// Capability matrix of the built-in registry:
//
//   scheduler      release times  reservations  deterministic
//   lsrc[,-lpt]        yes            yes            yes
//   fcfs               yes            yes            yes
//   conservative       yes            yes            yes
//   easy               yes            yes            yes
//   shelf-ff/-nf       no             no             yes
//   portfolio          yes            yes            yes (seeded restarts)
//   local-search       yes            yes            yes (seeded moves)
//
// (Availability windows are not a separate capability: the paper's
// transformation reduces a machine profile m(t) to reservations, and
// instances carry only reservations -- see generators/transform.hpp.)
//
// The registry carries per-scheduler metadata (name, description, and the
// capability set probed from a factory-made instance) through
// registered_scheduler_info(), powering `resched_tool list-schedulers`
// and capability-aware sweep drivers.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace resched {

// Why an instance is outside a scheduler's domain. Kept deliberately small:
// a reason is an instance *feature* the algorithm does not model.
enum class DomainReason {
  kReservations,  // instance has reservations, algorithm is rigid-only
  kReleaseTimes,  // instance is online, algorithm is strictly offline
  kOther,         // scheduler-specific restriction (see the message)
};
inline constexpr std::size_t kDomainReasonCount = 3;

[[nodiscard]] std::string to_string(DomainReason reason);

// Typed out-of-domain verdict: machine-readable reason + human message.
struct DomainError {
  DomainReason reason = DomainReason::kOther;
  std::string message;
};

// What instance features a scheduler accepts. Default-constructed =
// unrestricted (the common case; only shelf packers restrict anything).
struct Capabilities {
  bool release_times = true;  // accepts instances with release > 0
  bool reservations = true;   // accepts instances with reservations
  bool deterministic = true;  // pure function of the instance (seeds fixed)
  // Implements replan(): the algorithm can plan a waiting queue directly
  // against an externally maintained FreeProfile at an absolute clock, so a
  // resident service repairs its plan on churn events instead of rebuilding
  // instance + profile from scratch per decision. replan() must be
  // bit-identical (modulo the time translation) to schedule() on the
  // equivalent from-scratch instance -- pinned by the churn oracle fuzz.
  bool incremental_replan = false;
  // replan() is a pure FCFS fold: each queued job is planned exactly once,
  // in queue order, against the profile state left by its predecessors, and
  // never revisited. For such schedulers planning a queue suffix on the
  // profile that still holds the prefix's plan frames yields the same
  // starts as replanning the whole queue (earliest-fit results are stable
  // as `now` advances past nothing), so the service loop retains the plan
  // across pure-arrival decisions and replans only the appended jobs.
  // Event-loop algorithms (easy: a late arrival can backfill ahead of an
  // earlier job's pending decision) must leave this false.
  bool append_only_replan = false;
};

class Arena;
class FreeProfile;

// Input to Scheduler::replan -- the incremental path of the resident
// service (sim/service_sim.*). Semantics contract:
//  * `free` is the persistent remaining-capacity profile in ABSOLUTE time:
//    already-started jobs and availability windows are subtracted; history
//    before `now` is dead (never queried, possibly compacted).
//  * `queue` holds the waiting jobs in FCFS order with dense ids 0..k-1;
//    release is the absolute arrival tick, all <= now.
//  * `wakeups` are the future capacity-increase instants (> now): running
//    job completions and availability-window ends. Exactly the reservation
//    ends a from-scratch solve would see.
//  * The scheduler plans entirely through frames on `free` (the caller has
//    plan recording on and rewinds afterwards); returned starts are
//    absolute (>= now).
// Equivalence: replan(free, queue, wakeups, now) must equal
// schedule(instance) + now, where instance is the scratch translation
// (releases 0, running jobs and windows as reservations relative to now).
struct ReplanRequest {
  FreeProfile& free;
  const std::vector<Job>& queue;
  const std::vector<Time>& wakeups;
  ProcCount m = 1;  // cluster size (demand bound for the event structures)
  Time now = 0;
  // Order floor for append-mode suffix planning (append_only_replan): the
  // largest start already planned for jobs ahead of `queue`. Schedulers
  // whose placement chains on queue order (fcfs non-overtaking) must not
  // start any queued job before this instant; overtaking schedulers
  // (conservative) ignore it. 0 = no prefix.
  Time not_before = 0;
  // Decision-scoped bump allocator for the scheduler's transient state
  // (queues, event sets, the returned Schedule's start array). Owned and
  // reset by the caller between decisions; null = plain heap (the batch
  // schedule() path). Anything allocated from it must not outlive the
  // decision that produced it.
  Arena* scratch = nullptr;
};

// Result of Scheduler::schedule -- a schedule, or a typed domain rejection.
// Accessors enforce their side: value() on an error (or error() on a
// schedule) trips RESCHED_CHECK, because consulting the wrong side is a
// caller bug, not a recoverable state.
class ScheduleOutcome {
 public:
  /*implicit*/ ScheduleOutcome(Schedule schedule)
      : result_(std::move(schedule)) {}
  /*implicit*/ ScheduleOutcome(DomainError error) : result_(std::move(error)) {}

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<Schedule>(result_);
  }
  explicit operator bool() const noexcept { return ok(); }

  // The schedule; requires ok().
  [[nodiscard]] const Schedule& value() const&;
  [[nodiscard]] Schedule value() &&;
  // The domain rejection; requires !ok().
  [[nodiscard]] const DomainError& error() const;

 private:
  std::variant<Schedule, DomainError> result_;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Produces a feasible schedule for every job of the instance, or a
  // DomainError when the instance is outside the algorithm's domain (see
  // the outcome semantics above). Only entry-point capability checks may
  // produce the error arm; deeper precondition violations throw.
  [[nodiscard]] virtual ScheduleOutcome schedule(
      const Instance& instance) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  // Instance features this algorithm accepts. Default: unrestricted.
  [[nodiscard]] virtual Capabilities capabilities() const {
    return Capabilities{};
  }

  // Incremental replan entry point (see ReplanRequest). Only meaningful
  // when capabilities().incremental_replan is true; the default trips
  // RESCHED_CHECK. Implementations share their core loop with schedule()
  // so the two stay bit-identical by construction.
  [[nodiscard]] virtual Schedule replan(const ReplanRequest& request) const;

  // Evaluates capabilities() against a concrete instance: nullopt when the
  // instance is in-domain, otherwise the first violated capability as a
  // DomainError (the same one schedule() would return).
  [[nodiscard]] std::optional<DomainError> out_of_domain(
      const Instance& instance) const;
  [[nodiscard]] bool supports(const Instance& instance) const {
    return !out_of_domain(instance).has_value();
  }
};

using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

// Registry metadata: everything a sweep driver needs to decide whether (and
// how) to run a scheduler, without instantiating it per decision.
struct SchedulerInfo {
  std::string name;
  std::string description;
  Capabilities capabilities;
};

// Global registry (populated at static-init time by each algorithm's .cpp).
// The optional description is carried into registered_scheduler_info().
// Registration constructs one scheduler through `factory` to probe (and
// cache) its capability set; metadata queries afterwards never instantiate
// anything, so factories must be callable at registration time.
void register_scheduler(const std::string& name, SchedulerFactory factory,
                        std::string description = "");
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const std::string& name);
[[nodiscard]] std::vector<std::string> registered_schedulers();
// Name + description + capability set for every registered scheduler, in
// name order. Reads the metadata cached at registration time -- no
// scheduler is constructed, so drivers may call this per decision.
[[nodiscard]] std::vector<SchedulerInfo> registered_scheduler_info();

}  // namespace resched
