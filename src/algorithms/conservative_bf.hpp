// Conservative backfilling (paper section 2.2).
//
// Jobs are considered in arrival order; each is placed at the earliest
// instant where it fits *without delaying any previously placed job* --
// realised here by committing placements into the shared capacity profile,
// so a later job can only slide into genuinely free holes. A job may thus
// run before an earlier-submitted one, but only if the earlier one could not
// have started sooner anyway (the paper's definition, verbatim).
#pragma once

#include "algorithms/scheduler.hpp"

namespace resched {

class ConservativeBackfillScheduler final : public Scheduler {
 public:
  // Unrestricted domain: the outcome is always a schedule.
  [[nodiscard]] ScheduleOutcome schedule(
      const Instance& instance) const override;
  // Incremental path: the same placement loop run against a persistent
  // absolute-time profile (see ReplanRequest in scheduler.hpp).
  [[nodiscard]] Schedule replan(const ReplanRequest& request) const override;
  [[nodiscard]] std::string name() const override { return "conservative"; }
  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{.incremental_replan = true,
                        .append_only_replan = true};
  }
};

}  // namespace resched
