#include "algorithms/compaction.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/profile_allocator.hpp"
#include "util/require.hpp"

namespace resched {

CompactionResult compact_schedule(const Instance& instance,
                                  const Schedule& schedule) {
  const ValidationResult valid = schedule.validate(instance);
  RESCHED_REQUIRE_MSG(valid.ok, "compaction needs a feasible schedule: " +
                                    valid.error);
  CompactionResult result{Schedule(instance.n()), 0,
                          schedule.makespan(instance), 0};

  // Process jobs in non-decreasing original start order (ties by id) and
  // re-place each at its earliest fit against the jobs already re-placed.
  std::vector<JobId> order(instance.n());
  std::iota(order.begin(), order.end(), JobId{0});
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return schedule.start(a) < schedule.start(b);
  });

  FreeProfile free = FreeProfile::for_instance(instance);
  for (const JobId id : order) {
    const Job& job = instance.job(id);
    const Time start = free.earliest_fit(job.release, job.q, job.p);
    // Left shifts only: the original position is always available because
    // every job placed so far starts no later than it originally did, so
    // capacity at and after the original start can only have increased.
    RESCHED_CHECK_MSG(start <= schedule.start(id),
                      "compaction tried to move a job right");
    if (start < schedule.start(id)) ++result.moved_jobs;
    free.commit_fitted(start, job.q, job.p);
    result.schedule.set_start(id, start);
  }
  result.makespan_after = result.schedule.makespan(instance);
  RESCHED_CHECK(result.makespan_after <= result.makespan_before);
  return result;
}

}  // namespace resched
