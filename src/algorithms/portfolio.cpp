#include "algorithms/portfolio.hpp"

#include <utility>

#include "algorithms/lsrc.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"

namespace resched {

PortfolioScheduler::PortfolioScheduler(int random_restarts, std::uint64_t seed,
                                       std::vector<std::string> extra_members)
    : random_restarts_(random_restarts),
      seed_(seed),
      extra_members_(std::move(extra_members)) {
  RESCHED_REQUIRE(random_restarts >= 0);
  // Surface a misspelled member name here, not from inside schedule() mid
  // campaign (out-of-domain members are skipped at run time, but an
  // unknown name is a construction error).
  for (const std::string& member : extra_members_)
    (void)make_scheduler(member);
}

ScheduleOutcome PortfolioScheduler::schedule(const Instance& instance) const {
  Schedule best(instance.n());
  Time best_makespan = kTimeInfinity;
  auto consider = [&](const Schedule& candidate) {
    const Time makespan = candidate.makespan(instance);
    if (makespan < best_makespan) {
      best_makespan = makespan;
      best = candidate;
    }
  };
  for (const ListOrder order : all_list_orders())
    consider(LsrcScheduler(order, seed_).schedule(instance).value());
  Prng prng(seed_);
  for (int restart = 0; restart < random_restarts_; ++restart)
    consider(LsrcScheduler(ListOrder::kRandom, prng.fork_seed())
                 .schedule(instance)
                 .value());
  // Heterogeneous members: capability filtering up front, not mid-run
  // exception catching -- a member whose domain excludes the instance is
  // simply not a competitor here. The outcome check behind it covers what
  // supports() cannot see: a member may also reject with a
  // scheduler-specific DomainError (kOther) from inside schedule().
  for (const std::string& member : extra_members_) {
    const auto scheduler = make_scheduler(member);
    if (!scheduler->supports(instance)) continue;
    ScheduleOutcome outcome = scheduler->schedule(instance);
    if (!outcome.ok()) continue;
    consider(std::move(outcome).value());
  }
  return best;
}

LocalSearchScheduler::LocalSearchScheduler(int iterations, ListOrder initial,
                                           std::uint64_t seed)
    : iterations_(iterations), initial_(initial), seed_(seed) {
  RESCHED_REQUIRE(iterations >= 0);
}

ScheduleOutcome LocalSearchScheduler::schedule(const Instance& instance) const {
  std::vector<JobId> order = make_list(instance, initial_, seed_);
  Schedule best = LsrcScheduler(order).schedule(instance).value();
  Time best_makespan = best.makespan(instance);
  if (instance.n() < 2) return best;

  Prng prng(seed_);
  const auto n = static_cast<std::int64_t>(instance.n());
  for (int iteration = 0; iteration < iterations_; ++iteration) {
    std::vector<JobId> candidate = order;
    const auto i = static_cast<std::size_t>(prng.uniform_int(0, n - 1));
    const auto j = static_cast<std::size_t>(prng.uniform_int(0, n - 1));
    if (i == j) continue;
    if (prng.chance(0.5)) {
      std::swap(candidate[i], candidate[j]);
    } else {
      // Reinsert: move the job at i to position j.
      const JobId moved = candidate[i];
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(
                           j > i ? j - 1 : j),
                       moved);
    }
    Schedule attempt = LsrcScheduler(candidate).schedule(instance).value();
    const Time makespan = attempt.makespan(instance);
    if (makespan < best_makespan) {  // strict improvement: plain hill climb
      best_makespan = makespan;
      best = std::move(attempt);
      order = std::move(candidate);
    }
  }
  return best;
}

}  // namespace resched
