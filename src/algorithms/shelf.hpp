// Shelf (level-oriented) packing -- the paper conclusion's "partition on
// shelves" direction.
//
// Jobs are sorted by decreasing duration and packed onto shelves: a shelf is
// a set of jobs that start simultaneously and whose widths sum to at most m;
// its height is the duration of its first (tallest) job. Shelves are stacked
// back-to-back in time. Two shelf-selection policies:
//   * kNextFit  (NFDH): only the most recent shelf may receive the job;
//   * kFirstFit (FFDH): the earliest shelf with room receives the job.
// NFDH guarantees 2 OPT + p_max on strip packing, which carries over to
// non-contiguous rigid jobs (they are easier to pack); FFDH is never worse.
//
// Restricted to instances without reservations and without release times:
// shelves assume the full machine. Offered as a comparison baseline (E8).
#pragma once

#include "algorithms/scheduler.hpp"

namespace resched {

enum class ShelfPolicy { kNextFit, kFirstFit };

class ShelfScheduler final : public Scheduler {
 public:
  explicit ShelfScheduler(ShelfPolicy policy = ShelfPolicy::kFirstFit);

  // Returns a DomainError (kReservations / kReleaseTimes) on instances
  // outside the shelf model; never throws for domain reasons.
  [[nodiscard]] ScheduleOutcome schedule(
      const Instance& instance) const override;
  [[nodiscard]] std::string name() const override;
  // Offline rigid-only: shelves assume the whole machine from t = 0.
  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{.release_times = false, .reservations = false};
  }

 private:
  ShelfPolicy policy_;
};

}  // namespace resched
