#include "algorithms/fcfs.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/profile_allocator.hpp"
#include "util/require.hpp"

namespace resched {

ScheduleOutcome FcfsScheduler::schedule(const Instance& instance) const {
  Schedule schedule(instance.n());
  FreeProfile free = FreeProfile::for_instance(instance);

  std::vector<JobId> queue(instance.n());
  std::iota(queue.begin(), queue.end(), JobId{0});
  std::stable_sort(queue.begin(), queue.end(), [&](JobId a, JobId b) {
    return instance.job(a).release < instance.job(b).release;
  });

  Time previous_start = 0;
  for (const JobId id : queue) {
    const Job& job = instance.job(id);
    const Time ready = std::max(previous_start, job.release);
    const Time start = free.earliest_fit(ready, job.q, job.p);
    free.commit_fitted(start, job.q, job.p);
    schedule.set_start(id, start);
    previous_start = start;  // no later job may start before this one
  }
  return schedule;
}

}  // namespace resched
