#include "algorithms/fcfs.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/arena.hpp"
#include "core/profile_allocator.hpp"
#include "util/require.hpp"

namespace resched {
namespace {

// Shared core of schedule() and replan(): non-overtaking placement in
// arrival order, starting no sooner than max(t0, release, previous start).
// schedule() runs it with a fresh profile and t0 = 0; the incremental path
// runs it with the service's persistent absolute-time profile and t0 = now.
// `floor` seeds the non-overtaking chain for append-mode suffix planning:
// when `jobs` is the tail of a longer queue whose prefix is already planned
// on `free`, the chain must continue from the prefix's last start, not
// restart at t0 (append_only_replan in scheduler.hpp).
Schedule fcfs_run(FreeProfile& free, const std::vector<Job>& jobs, Time t0,
                  Time floor, Arena* scratch) {
  Schedule schedule(jobs.size(), scratch);
  ScratchVec<JobId> queue(jobs.size(), JobId{0}, ArenaAlloc<JobId>(scratch));
  std::iota(queue.begin(), queue.end(), JobId{0});
  // (release, id) is a total order, so this in-place sort produces exactly
  // the permutation a stable sort by release would -- without stable_sort's
  // unconditional heap-allocated merge buffer (one alloc per decision).
  std::sort(queue.begin(), queue.end(), [&](JobId a, JobId b) {
    const Time ra = jobs[static_cast<std::size_t>(a)].release;
    const Time rb = jobs[static_cast<std::size_t>(b)].release;
    if (ra != rb) return ra < rb;
    return a < b;
  });

  Time previous_start = std::max(t0, floor);
  for (const JobId id : queue) {
    const Job& job = jobs[static_cast<std::size_t>(id)];
    const Time ready = std::max(previous_start, job.release);
    const Time start = free.earliest_fit(ready, job.q, job.p);
    free.commit_fitted(start, job.q, job.p);
    schedule.set_start(id, start);
    previous_start = start;  // no later job may start before this one
  }
  return schedule;
}

}  // namespace

ScheduleOutcome FcfsScheduler::schedule(const Instance& instance) const {
  FreeProfile free = FreeProfile::for_instance(instance);
  return fcfs_run(free, instance.jobs(), 0, 0, nullptr);
}

Schedule FcfsScheduler::replan(const ReplanRequest& request) const {
  return fcfs_run(request.free, request.queue, request.now,
                  request.not_before, request.scratch);
}

}  // namespace resched
