// List priority orders.
//
// A list algorithm is parameterised by the order in which it considers ready
// jobs. The paper proves its bounds for *any* order ("the general list
// algorithm") and conjectures in its conclusion that sorting by decreasing
// durations improves the constant -- the priority-ablation experiment (E6)
// measures exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"

namespace resched {

enum class ListOrder {
  kSubmission,  // instance order (FCFS-like priority)
  kLpt,         // longest processing time first (decreasing p)
  kSpt,         // shortest processing time first (increasing p)
  kWidest,      // decreasing q
  kNarrowest,   // increasing q
  kMaxArea,     // decreasing q*p
  kMinArea,     // increasing q*p
  kRandom,      // seeded shuffle
};

[[nodiscard]] std::string to_string(ListOrder order);
[[nodiscard]] ListOrder list_order_from_string(const std::string& name);
[[nodiscard]] std::vector<ListOrder> all_list_orders();

// Returns job ids sorted by the given priority. All orders break ties by
// submission index, so they are total and deterministic; kRandom uses the
// seed.
[[nodiscard]] std::vector<JobId> make_list(const Instance& instance,
                                           ListOrder order,
                                           std::uint64_t seed = 0);

}  // namespace resched
