#include "algorithms/conservative_bf.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/profile_allocator.hpp"

namespace resched {

ScheduleOutcome ConservativeBackfillScheduler::schedule(
    const Instance& instance) const {
  Schedule schedule(instance.n());
  FreeProfile free = FreeProfile::for_instance(instance);

  std::vector<JobId> queue(instance.n());
  std::iota(queue.begin(), queue.end(), JobId{0});
  std::stable_sort(queue.begin(), queue.end(), [&](JobId a, JobId b) {
    return instance.job(a).release < instance.job(b).release;
  });

  for (const JobId id : queue) {
    const Job& job = instance.job(id);
    const Time start = free.earliest_fit(job.release, job.q, job.p);
    // The fit was just proven by earliest_fit; commit_fitted skips the
    // redundant windowed-min recheck on this hot placement path.
    free.commit_fitted(start, job.q, job.p);
    schedule.set_start(id, start);
  }
  return schedule;
}

}  // namespace resched
