#include "algorithms/conservative_bf.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/profile_allocator.hpp"

namespace resched {
namespace {

// Shared core of schedule() and replan(): place each job, in arrival order,
// at its earliest fit no sooner than max(t0, release). schedule() runs it
// with a fresh profile and t0 = 0; the incremental path runs it with the
// service's persistent absolute-time profile and t0 = now. Same computation
// up to time translation (the churn oracle fuzz pins the bit-identity).
Schedule conservative_run(FreeProfile& free, const std::vector<Job>& jobs,
                          Time t0) {
  Schedule schedule(jobs.size());
  std::vector<JobId> queue(jobs.size());
  std::iota(queue.begin(), queue.end(), JobId{0});
  std::stable_sort(queue.begin(), queue.end(), [&](JobId a, JobId b) {
    return jobs[static_cast<std::size_t>(a)].release <
           jobs[static_cast<std::size_t>(b)].release;
  });

  for (const JobId id : queue) {
    const Job& job = jobs[static_cast<std::size_t>(id)];
    const Time start =
        free.earliest_fit(std::max(t0, job.release), job.q, job.p);
    // The fit was just proven by earliest_fit; commit_fitted skips the
    // redundant windowed-min recheck on this hot placement path.
    free.commit_fitted(start, job.q, job.p);
    schedule.set_start(id, start);
  }
  return schedule;
}

}  // namespace

ScheduleOutcome ConservativeBackfillScheduler::schedule(
    const Instance& instance) const {
  FreeProfile free = FreeProfile::for_instance(instance);
  return conservative_run(free, instance.jobs(), 0);
}

Schedule ConservativeBackfillScheduler::replan(
    const ReplanRequest& request) const {
  return conservative_run(request.free, request.queue, request.now);
}

}  // namespace resched
