#include "algorithms/conservative_bf.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/arena.hpp"
#include "core/profile_allocator.hpp"

namespace resched {
namespace {

// Shared core of schedule() and replan(): place each job, in arrival order,
// at its earliest fit no sooner than max(t0, release). schedule() runs it
// with a fresh profile and t0 = 0; the incremental path runs it with the
// service's persistent absolute-time profile and t0 = now. Same computation
// up to time translation (the churn oracle fuzz pins the bit-identity).
Schedule conservative_run(FreeProfile& free, const std::vector<Job>& jobs,
                          Time t0, Arena* scratch) {
  Schedule schedule(jobs.size(), scratch);
  ScratchVec<JobId> queue(jobs.size(), JobId{0}, ArenaAlloc<JobId>(scratch));
  std::iota(queue.begin(), queue.end(), JobId{0});
  // (release, id) is a total order, so this in-place sort produces exactly
  // the permutation a stable sort by release would -- without stable_sort's
  // unconditional heap-allocated merge buffer (one alloc per decision).
  std::sort(queue.begin(), queue.end(), [&](JobId a, JobId b) {
    const Time ra = jobs[static_cast<std::size_t>(a)].release;
    const Time rb = jobs[static_cast<std::size_t>(b)].release;
    if (ra != rb) return ra < rb;
    return a < b;
  });

  for (const JobId id : queue) {
    const Job& job = jobs[static_cast<std::size_t>(id)];
    const Time start =
        free.earliest_fit(std::max(t0, job.release), job.q, job.p);
    // The fit was just proven by earliest_fit; commit_fitted skips the
    // redundant windowed-min recheck on this hot placement path.
    free.commit_fitted(start, job.q, job.p);
    schedule.set_start(id, start);
  }
  return schedule;
}

}  // namespace

ScheduleOutcome ConservativeBackfillScheduler::schedule(
    const Instance& instance) const {
  FreeProfile free = FreeProfile::for_instance(instance);
  return conservative_run(free, instance.jobs(), 0, nullptr);
}

Schedule ConservativeBackfillScheduler::replan(
    const ReplanRequest& request) const {
  return conservative_run(request.free, request.queue, request.now,
                          request.scratch);
}

}  // namespace resched
