// Batch-doubling online wrapper (paper section 2.1, citing Shmoys, Wein &
// Williamson).
//
// "Any off-line algorithm may be used in an on-line fashion, with a doubling
// factor for the performance ratio": jobs are grouped into successive
// batches; jobs arriving while a batch executes are only considered once the
// whole batch has finished. The wrapper turns any of our offline schedulers
// into an online one for instances with release times; with a
// rho-approximate base algorithm the resulting makespan is at most 2 rho
// times the optimal offline makespan (checked as a property test against the
// certified lower bound).
//
// Reservations are absolute calendar objects, so each batch sub-instance
// keeps the full reservation set and constrains its jobs to start no earlier
// than the batch epoch.
#pragma once

#include <memory>

#include "algorithms/scheduler.hpp"

namespace resched {

struct BatchInfo {
  Time epoch;            // instant the batch was formed
  Time completion;       // when its last job finishes
  std::size_t job_count;
};

class OnlineBatchScheduler final : public Scheduler {
 public:
  // Takes ownership of the base offline scheduler. The base algorithm must
  // support release times >= epoch (all of lsrc/fcfs/conservative/easy do;
  // shelf does not -- constructing the wrapper over it is a precondition
  // violation, surfaced through capabilities()).
  explicit OnlineBatchScheduler(std::unique_ptr<Scheduler> base);

  [[nodiscard]] ScheduleOutcome schedule(
      const Instance& instance) const override;
  [[nodiscard]] std::string name() const override;
  // Inherited from the base scheduler: a batch sub-instance keeps the full
  // reservation set and carries release times (= the batch epoch), so the
  // wrapper is exactly as capable as its base and requires the base to
  // accept release times.
  [[nodiscard]] Capabilities capabilities() const override {
    return base_->capabilities();
  }

  // Like schedule(), additionally reporting the batch structure (left
  // empty on a DomainError outcome).
  [[nodiscard]] ScheduleOutcome schedule_with_batches(
      const Instance& instance, std::vector<BatchInfo>& batches) const;

 private:
  std::unique_ptr<Scheduler> base_;
};

}  // namespace resched
