// Theorem-compliance checking for produced schedules.
//
// Given an (instance, schedule) pair, determine which of the paper's
// guarantees applies to the instance class, and verify the schedule against
// it. Verification is sound:
//  * with an exact optimum (small instances, B&B) a violated inequality is
//    reported kViolated -- this would falsify the implementation (or the
//    theorem);
//  * with only a certified lower bound, makespan <= bound * LB proves
//    compliance (kProven); otherwise the check is kInconclusive, never a
//    false alarm.
//
// Also implements a direct pointwise verification of the appendix's
// Lemma 1 on LSRC schedules (no-reservation instances):
//   forall t, t' in [0, C_max):  t' >= t + p_max  =>  r(t) + r(t') >= m + 1.
#pragma once

#include <optional>
#include <string>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "util/rational.hpp"

namespace resched {

enum class Compliance { kProven, kInconclusive, kViolated };

[[nodiscard]] std::string to_string(Compliance compliance);

struct GuaranteeReport {
  std::string guarantee;     // human-readable name, e.g. "2 - 1/m (Thm 2)"
  Rational bound{0};         // the multiplicative bound, 0 if none applies
  bool has_guarantee = false;
  Time makespan = 0;
  Time reference = 0;        // exact C* or certified lower bound
  bool reference_is_exact = false;
  Compliance compliance = Compliance::kInconclusive;
  std::string detail;
};

// exact_optimum: pass the B&B result when available; otherwise the certified
// lower bound is used as reference. The schedule must be feasible (checked;
// an infeasible schedule yields kViolated with an explanatory detail).
[[nodiscard]] GuaranteeReport check_guarantee(
    const Instance& instance, const Schedule& schedule,
    std::optional<Time> exact_optimum = std::nullopt);

struct Lemma1Report {
  bool holds = true;
  // Witness pair when violated.
  Time t = 0;
  Time t_prime = 0;
  std::int64_t r_sum = 0;
};

// Requires a feasible schedule on a no-reservation, no-release instance
// (Lemma 1's setting). Checks the implication at every breakpoint pair that
// matters (r is a step function, so finitely many candidates suffice).
[[nodiscard]] Lemma1Report check_lemma1(const Instance& instance,
                                        const Schedule& schedule);

}  // namespace resched
