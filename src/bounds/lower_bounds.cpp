#include "bounds/lower_bounds.hpp"

#include <algorithm>
#include <set>

#include "core/availability.hpp"
#include "core/profile_allocator.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

Time job_lower_bound(const Instance& instance) {
  if (instance.n() == 0) return 0;
  const FreeProfile free = FreeProfile::for_instance(instance);
  Time bound = 0;
  for (const Job& job : instance.jobs()) {
    const Time start = free.earliest_fit(job.release, job.q, job.p);
    bound = std::max(bound, checked_add(start, job.p));
  }
  return bound;
}

Time area_lower_bound(const Instance& instance) {
  if (instance.n() == 0) return 0;
  const StepProfile available = availability_profile(instance);
  return available.time_to_accumulate(0, instance.total_work());
}

Time release_area_lower_bound(const Instance& instance) {
  if (instance.n() == 0) return 0;
  const StepProfile available = availability_profile(instance);
  std::set<Time> releases;
  for (const Job& job : instance.jobs()) releases.insert(job.release);
  Time bound = 0;
  for (const Time release : releases) {
    std::int64_t work = 0;
    for (const Job& job : instance.jobs())
      if (job.release >= release) work = checked_add(work, job.area());
    bound = std::max(bound, available.time_to_accumulate(release, work));
  }
  return bound;
}

Time makespan_lower_bound(const Instance& instance) {
  return std::max({job_lower_bound(instance), area_lower_bound(instance),
                   release_area_lower_bound(instance)});
}

Rational makespan_ratio(Time achieved, Time reference) {
  RESCHED_REQUIRE_MSG(reference > 0, "ratio needs a positive reference");
  return Rational(achieved, reference);
}

}  // namespace resched
