#include "bounds/checker.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "core/availability.hpp"
#include "bounds/guarantees.hpp"
#include "bounds/lower_bounds.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

std::string to_string(Compliance compliance) {
  switch (compliance) {
    case Compliance::kProven: return "proven";
    case Compliance::kInconclusive: return "inconclusive";
    case Compliance::kViolated: return "VIOLATED";
  }
  return "?";
}

GuaranteeReport check_guarantee(const Instance& instance,
                                const Schedule& schedule,
                                std::optional<Time> exact_optimum) {
  GuaranteeReport report;

  const ValidationResult valid = schedule.validate(instance);
  if (!valid.ok) {
    report.compliance = Compliance::kViolated;
    report.detail = "infeasible schedule: " + valid.error;
    return report;
  }
  report.makespan = schedule.makespan(instance);

  // Which guarantee applies to this instance class? (Strongest first.)
  if (instance.is_rigid_only()) {
    report.guarantee = "C <= (2 - 1/m) C*  (Theorem 2)";
    report.bound = graham_bound(instance.m());
    report.has_guarantee = true;
  } else if (const auto alpha = best_alpha(instance); alpha.has_value()) {
    // Prefer the stronger of 2/alpha and, when U is non-increasing, the
    // Prop. 1 bound; both are valid when both apply.
    const Rational alpha_bound = alpha_upper_bound(*alpha);
    if (has_non_increasing_unavailability(instance)) {
      // m(C*) is unknown without C*, but m(t) is non-decreasing, so using
      // m(makespan) >= m(C*) would be unsound; use the always-weaker global
      // 2 - 1/m form which Prop. 1 implies.
      const Rational prop1_weak = graham_bound(instance.m());
      report.bound = std::min(alpha_bound, prop1_weak);
      report.guarantee = report.bound == prop1_weak
                             ? "C <= (2 - 1/m) C*  (Prop. 1, weak form)"
                             : "C <= (2/alpha) C*  (Prop. 3)";
    } else {
      report.bound = alpha_bound;
      report.guarantee = "C <= (2/alpha) C*  (Prop. 3)";
    }
    report.has_guarantee = true;
  } else if (has_non_increasing_unavailability(instance)) {
    report.guarantee = "C <= (2 - 1/m) C*  (Prop. 1, weak form)";
    report.bound = graham_bound(instance.m());
    report.has_guarantee = true;
  } else {
    report.guarantee = "none (unrestricted reservations, Theorem 1)";
    report.has_guarantee = false;
  }

  report.reference_is_exact = exact_optimum.has_value();
  report.reference = exact_optimum.has_value()
                         ? *exact_optimum
                         : makespan_lower_bound(instance);
  if (instance.n() == 0) {
    report.compliance = Compliance::kProven;
    report.detail = "empty job set";
    return report;
  }
  RESCHED_CHECK(report.reference > 0);

  if (!report.has_guarantee) {
    report.compliance = Compliance::kInconclusive;
    report.detail = "no finite guarantee exists for this instance class";
    return report;
  }

  const Rational ratio = makespan_ratio(report.makespan, report.reference);
  if (ratio <= report.bound) {
    report.compliance = Compliance::kProven;
    report.detail = "ratio " + ratio.to_string() + " <= bound " +
                    report.bound.to_string();
  } else if (report.reference_is_exact) {
    report.compliance = Compliance::kViolated;
    report.detail = "ratio " + ratio.to_string() + " vs exact C* exceeds " +
                    report.bound.to_string();
  } else {
    report.compliance = Compliance::kInconclusive;
    report.detail = "ratio vs lower bound " + ratio.to_string() +
                    " exceeds " + report.bound.to_string() +
                    " (reference is not exact)";
  }
  return report;
}

Lemma1Report check_lemma1(const Instance& instance, const Schedule& schedule) {
  RESCHED_REQUIRE_MSG(instance.is_rigid_only() && !instance.has_release_times(),
                      "Lemma 1 is stated for RIGIDSCHEDULING");
  const ValidationResult valid = schedule.validate(instance);
  RESCHED_REQUIRE_MSG(valid.ok, "Lemma 1 check needs a feasible schedule");

  Lemma1Report report;
  const Time makespan = schedule.makespan(instance);
  const Time p_max = instance.p_max();
  if (makespan <= p_max) return report;  // no admissible pair (t, t')

  const StepProfile usage = schedule.usage_profile(instance);

  // r(t) + min_{t' in [t + p_max, C)} r(t') >= m + 1 must hold for every
  // t in [0, C - p_max). Both r(t) and the suffix minimum are step functions
  // of t; their breakpoints are the usage breakpoints and the usage
  // breakpoints shifted left by p_max. Checking every such candidate t
  // covers all of [0, C - p_max).
  std::set<Time> candidates{0};
  for (const auto& segment : usage.segments_in(0, makespan)) {
    const Time window_end = checked_sub(makespan, p_max);
    if (segment.start < window_end) candidates.insert(segment.start);
    const Time shifted = checked_sub(segment.start, p_max);
    if (shifted >= 0 && shifted < window_end) candidates.insert(shifted);
  }

  for (const Time t : candidates) {
    const std::int64_t r_t = usage.value_at(t);
    const Time window_start = checked_add(t, p_max);
    const std::int64_t suffix_min = usage.min_in(window_start, makespan);
    if (checked_add(r_t, suffix_min) <= instance.m()) {
      report.holds = false;
      report.t = t;
      // Recover a witness t': the first point achieving the suffix minimum.
      report.t_prime = window_start;
      for (const auto& segment : usage.segments_in(window_start, makespan)) {
        if (segment.value == suffix_min) {
          report.t_prime = segment.start;
          break;
        }
      }
      report.r_sum = checked_add(r_t, suffix_min);
      return report;
    }
  }
  return report;
}

}  // namespace resched
