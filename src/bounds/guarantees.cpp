
#include "bounds/guarantees.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

Rational graham_bound(ProcCount m) {
  RESCHED_REQUIRE(m >= 1);
  return Rational(2) - Rational(1, m);
}

Rational alpha_upper_bound(const Rational& alpha) {
  RESCHED_REQUIRE_MSG(alpha > Rational(0) && alpha <= Rational(1),
                      "alpha must lie in (0, 1]");
  return Rational(2) / alpha;
}

Rational prop2_ratio_for_k(std::int64_t k) {
  RESCHED_REQUIRE_MSG(k >= 2, "Prop. 2 needs k >= 2 (alpha = 2/k <= 1)");
  // 2/alpha - 1 + alpha/2 with alpha = 2/k.
  return Rational(k) - Rational(1) + Rational(1, k);
}

Rational lsrc_lower_bound_b1(const Rational& alpha) {
  RESCHED_REQUIRE_MSG(alpha > Rational(0) && alpha <= Rational(1),
                      "alpha must lie in (0, 1]");
  const Rational two_over_alpha = Rational(2) / alpha;
  const Rational ceil_2a(two_over_alpha.ceil());
  const Rational half_alpha = alpha / Rational(2);
  // Denominator of the inner fraction: 1 - (alpha/2)(ceil(2/alpha) - 1).
  // Positive because ceil(2/alpha) - 1 < 2/alpha.
  const Rational inner_den =
      Rational(1) - half_alpha * (ceil_2a - Rational(1));
  RESCHED_CHECK(inner_den > Rational(0));
  const Rational inner = (Rational(1) - half_alpha) / inner_den;
  return ceil_2a - Rational(1) +
         Rational(1, checked_add(inner.floor(), 1));
}

Rational lsrc_lower_bound_b2(const Rational& alpha) {
  RESCHED_REQUIRE_MSG(alpha > Rational(0) && alpha <= Rational(1),
                      "alpha must lie in (0, 1]");
  const Rational two_over_alpha = Rational(2) / alpha;
  const Rational ceil_2a(two_over_alpha.ceil());
  return ceil_2a - (ceil_2a - Rational(1)) / two_over_alpha;
}

Rational nonincreasing_bound(ProcCount m_at_cstar) {
  RESCHED_REQUIRE(m_at_cstar >= 1);
  return Rational(2) - Rational(1, m_at_cstar);
}

}  // namespace resched
