// The paper's guarantee and bound curves, in exact rational arithmetic.
//
//   graham_bound(m)        = 2 - 1/m          (Theorem 2 / appendix)
//   alpha_upper_bound(a)   = 2/a              (Proposition 3)
//   prop2_ratio_for_k(k)   = 2/a - 1 + a/2    with a = 2/k  =  k - 1 + 1/k
//                                             (Proposition 2, Figure 3)
//   lsrc_lower_bound_b1(a) = B1 from section 4.2:
//       ceil(2/a) - 1 + 1 / ( floor( (1 - a/2) /
//                                    (1 - (a/2)(ceil(2/a) - 1)) ) + 1 )
//   lsrc_lower_bound_b2(a) = B2 = ceil(2/a) - (ceil(2/a) - 1) / (2/a)
//
// All functions take/return exact Rationals so Figure 4's curves and the
// test assertions are float-free; to_double() is applied only at print time.
#pragma once

#include "core/types.hpp"
#include "util/rational.hpp"

namespace resched {

// 2 - 1/m; requires m >= 1.
[[nodiscard]] Rational graham_bound(ProcCount m);

// 2/alpha; requires 0 < alpha <= 1.
[[nodiscard]] Rational alpha_upper_bound(const Rational& alpha);

// k - 1 + 1/k (the Prop. 2 ratio for alpha = 2/k); requires k >= 2.
[[nodiscard]] Rational prop2_ratio_for_k(std::int64_t k);

// B1(alpha); requires 0 < alpha <= 1.
[[nodiscard]] Rational lsrc_lower_bound_b1(const Rational& alpha);

// B2(alpha); requires 0 < alpha <= 1. Always <= B1 (weaker but simpler).
[[nodiscard]] Rational lsrc_lower_bound_b2(const Rational& alpha);

// 2 - 1/m_at_cstar (Proposition 1's refined bound); requires m_at_cstar >= 1.
[[nodiscard]] Rational nonincreasing_bound(ProcCount m_at_cstar);

}  // namespace resched
