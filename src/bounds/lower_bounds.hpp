// Certified lower bounds on the optimal makespan C*.
//
// Used by every ratio experiment on instances too large for the exact
// solver: any reported ratio C_alg / LB is then an upper bound on the true
// performance ratio, so guarantee checks based on it are sound ("proven" /
// "inconclusive", never falsely "violated").
//
// Three bounds, combined by max:
//  * job bound      -- each job alone needs earliest_fit(release) + p against
//                      the raw availability profile (generalises C* >= p_max
//                      to reservations and releases);
//  * area bound     -- the total work W(I) must fit into the free area:
//                      C* >= min { T : integral of m(t) over [0,T) >= W };
//  * release-area   -- same, restricted to work released from each release
//                      time r onward, accumulated from r.
#pragma once

#include "core/instance.hpp"
#include "util/rational.hpp"

namespace resched {

// The combined certified bound (max of the three bounds above). Always >= 1
// for a non-empty job set.
[[nodiscard]] Time makespan_lower_bound(const Instance& instance);

// Individual bounds (exposed for tests and for bound-quality reporting).
[[nodiscard]] Time job_lower_bound(const Instance& instance);
[[nodiscard]] Time area_lower_bound(const Instance& instance);
[[nodiscard]] Time release_area_lower_bound(const Instance& instance);

// achieved / reference as an exact rational. reference must be > 0.
[[nodiscard]] Rational makespan_ratio(Time achieved, Time reference);

}  // namespace resched
