// Scheduling-anomaly scanner.
//
// Graham's classical anomaly results (the 1966/1969 papers the appendix
// revisits) show that for list scheduling with precedence constraints,
// "improving" an instance -- removing a job, shortening a job, adding a
// processor -- can *increase* the makespan. In the paper's setting the jobs
// are independent, but they are RIGID (q_i > 1), and rigidity alone already
// recreates the anomalies: removal_anomaly_example() below is a five-job
// witness found with this scanner where deleting a job raises the LSRC
// makespan from 7 to 8 (the deletion frees processors for a wide job to
// start earlier, which cascades into delaying the long narrow job).
// Theorem 2 still caps the damage: any "improvement" can hurt by at most
// the factor 2 - 1/m (tested in test_anomalies.cpp).
//
// find_anomalies scans a concrete instance for witnesses under ANY
// scheduler: it applies every single-job removal, every halved duration and
// an extra machine, reschedules, and reports each change that increased the
// makespan. Useful as a diagnostic ("why did the queue get slower after
// that cancellation?") and as a property-test oracle.
#pragma once

#include <string>
#include <vector>

#include "algorithms/scheduler.hpp"
#include "core/instance.hpp"

namespace resched {

enum class AnomalyKind {
  kJobRemoval,       // deleting a job increased C_max
  kShorterDuration,  // reducing some p_i increased C_max
  kExtraMachine,     // adding one processor increased C_max
};

[[nodiscard]] std::string to_string(AnomalyKind kind);

struct Anomaly {
  AnomalyKind kind = AnomalyKind::kJobRemoval;
  JobId job = -1;            // affected job (removal / shorter-duration)
  Time new_duration = 0;     // for kShorterDuration
  Time makespan_before = 0;  // C_max on the original instance
  Time makespan_after = 0;   // C_max on the "improved" instance (larger!)
};

struct AnomalyScan {
  std::vector<Anomaly> anomalies;
  Time baseline = 0;
  [[nodiscard]] bool any() const noexcept { return !anomalies.empty(); }
};

// Offline and online instances supported; reservations are kept fixed.
// Precondition (throws std::invalid_argument): the instance is inside the
// scheduler's domain -- every perturbation preserves the reservation and
// release-time structure, so the perturbed instances then are too.
[[nodiscard]] AnomalyScan find_anomalies(const Instance& instance,
                                         const Scheduler& scheduler);

// Helper perturbations (exposed for tests and custom scans).
[[nodiscard]] Instance without_job(const Instance& instance, JobId victim);
[[nodiscard]] Instance with_shorter_job(const Instance& instance,
                                        JobId target, Time new_duration);
[[nodiscard]] Instance with_extra_machine(const Instance& instance);

// The documented witness: m = 3, jobs (q,p) = (1,3) (1,2) (2,1) (2,3)
// (1,5). LSRC (submission order) has makespan 7; removing job 1 raises it
// to 8. Verified in test_anomalies.cpp.
[[nodiscard]] Instance removal_anomaly_example();

}  // namespace resched
