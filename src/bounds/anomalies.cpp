#include "bounds/anomalies.hpp"

#include "util/require.hpp"

namespace resched {

std::string to_string(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kJobRemoval: return "job-removal";
    case AnomalyKind::kShorterDuration: return "shorter-duration";
    case AnomalyKind::kExtraMachine: return "extra-machine";
  }
  return "?";
}

Instance without_job(const Instance& instance, JobId victim) {
  RESCHED_REQUIRE(victim >= 0 &&
                  static_cast<std::size_t>(victim) < instance.n());
  std::vector<Job> jobs;
  jobs.reserve(instance.n() - 1);
  for (const Job& job : instance.jobs()) {
    if (job.id == victim) continue;
    Job copy = job;
    copy.id = static_cast<JobId>(jobs.size());
    jobs.push_back(std::move(copy));
  }
  return Instance(instance.m(), std::move(jobs), instance.reservations());
}

Instance with_shorter_job(const Instance& instance, JobId target,
                          Time new_duration) {
  RESCHED_REQUIRE(target >= 0 &&
                  static_cast<std::size_t>(target) < instance.n());
  RESCHED_REQUIRE(new_duration >= 1 &&
                  new_duration <= instance.job(target).p);
  std::vector<Job> jobs = instance.jobs();
  jobs[static_cast<std::size_t>(target)].p = new_duration;
  return Instance(instance.m(), std::move(jobs), instance.reservations());
}

Instance with_extra_machine(const Instance& instance) {
  return Instance(instance.m() + 1, instance.jobs(),
                  instance.reservations());
}

Instance removal_anomaly_example() {
  return Instance(3, {
                         Job{0, 1, 3, 0, "narrow3"},
                         Job{1, 1, 2, 0, "victim"},
                         Job{2, 2, 1, 0, "wide-short"},
                         Job{3, 2, 3, 0, "wide-long"},
                         Job{4, 1, 5, 0, "long-tail"},
                     });
}

AnomalyScan find_anomalies(const Instance& instance,
                           const Scheduler& scheduler) {
  // Boundary precondition, not a DomainError: an out-of-domain scan input
  // is user error here. supports() catches the capability reasons up
  // front; the unwrap below re-checks every outcome so a scheduler-specific
  // (kOther) rejection of the base or a perturbed instance also reads as a
  // precondition failure, not an internal invariant trip.
  RESCHED_REQUIRE_MSG(scheduler.supports(instance),
                      "anomaly scan: instance outside the domain of '" +
                          scheduler.name() + "'");
  const auto makespan_of = [&scheduler](const Instance& target) {
    ScheduleOutcome outcome = scheduler.schedule(target);
    RESCHED_REQUIRE_MSG(outcome.ok(),
                        "anomaly scan: '" + scheduler.name() +
                            "' rejected an instance: " +
                            outcome.error().message);
    return std::move(outcome).value().makespan(target);
  };
  AnomalyScan scan;
  if (instance.n() == 0) return scan;
  scan.baseline = makespan_of(instance);

  // 1. Job removals.
  for (const Job& job : instance.jobs()) {
    const Instance reduced = without_job(instance, job.id);
    const Time after = makespan_of(reduced);
    if (after > scan.baseline)
      scan.anomalies.push_back(
          {AnomalyKind::kJobRemoval, job.id, 0, scan.baseline, after});
  }

  // 2. Halved durations.
  for (const Job& job : instance.jobs()) {
    const Time shorter = job.p / 2;
    if (shorter < 1) continue;
    const Instance faster = with_shorter_job(instance, job.id, shorter);
    const Time after = makespan_of(faster);
    if (after > scan.baseline)
      scan.anomalies.push_back({AnomalyKind::kShorterDuration, job.id,
                                shorter, scan.baseline, after});
  }

  // 3. One extra machine.
  {
    const Instance wider = with_extra_machine(instance);
    const Time after = makespan_of(wider);
    if (after > scan.baseline)
      scan.anomalies.push_back(
          {AnomalyKind::kExtraMachine, -1, 0, scan.baseline, after});
  }
  return scan;
}

}  // namespace resched
