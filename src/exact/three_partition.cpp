#include "exact/three_partition.hpp"

#include <algorithm>
#include <numeric>

#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

bool ThreePartitionInstance::well_formed() const {
  if (items.empty() || items.size() % 3 != 0) return false;
  std::int64_t sum = 0;
  for (const std::int64_t item : items) {
    if (item <= 0) return false;
    sum = checked_add(sum, item);
  }
  return sum == checked_mul(static_cast<std::int64_t>(groups()), target);
}

namespace {

// Backtracking over items sorted by decreasing value. Sorting makes two
// prunings sound: equal values are adjacent (duplicate-combination skip),
// and the anchor (largest unused item) needs the *smallest* complements, so
// dead branches die early.
struct PartitionSearch {
  std::vector<std::int64_t> values;        // sorted descending
  std::vector<std::size_t> original_index; // values[i] == items[original_index[i]]
  std::int64_t target = 0;
  std::vector<bool> used;
  std::vector<std::vector<std::size_t>> groups;  // in sorted-space indices
  std::uint64_t nodes = 0;
  std::uint64_t node_limit = 0;
  bool aborted = false;

  bool solve() {
    if (aborted) return false;
    if (++nodes > node_limit) {
      aborted = true;
      return false;
    }
    // The first unused item anchors the next group: it must belong to some
    // group, so fixing it kills the k! group-order symmetry.
    std::size_t anchor = values.size();
    for (std::size_t i = 0; i < values.size(); ++i)
      if (!used[i]) {
        anchor = i;
        break;
      }
    if (anchor == values.size()) return true;

    used[anchor] = true;
    const std::int64_t remaining = checked_sub(target, values[anchor]);
    for (std::size_t j = anchor + 1; j < values.size(); ++j) {
      if (used[j] || values[j] >= remaining) continue;
      // Duplicate skip: an unused equal-valued predecessor was already tried
      // in this frame; choosing j instead is symmetric.
      if (j > anchor + 1 && values[j] == values[j - 1] && !used[j - 1])
        continue;
      const std::int64_t need = checked_sub(remaining, values[j]);
      if (need > values[j]) continue;  // partners are ordered: x_j >= x_l
      used[j] = true;
      for (std::size_t l = j + 1; l < values.size(); ++l) {
        if (used[l] || values[l] != need) continue;
        used[l] = true;
        groups.push_back({anchor, j, l});
        if (solve()) return true;
        groups.pop_back();
        used[l] = false;
        break;  // all unused items of value `need` are interchangeable
      }
      used[j] = false;
      if (aborted) break;
    }
    used[anchor] = false;
    return false;
  }
};

}  // namespace

ThreePartitionSolution solve_three_partition(
    const ThreePartitionInstance& instance, std::uint64_t node_limit) {
  RESCHED_REQUIRE_MSG(instance.well_formed(),
                      "malformed 3-PARTITION instance");
  PartitionSearch search;
  search.original_index.resize(instance.items.size());
  std::iota(search.original_index.begin(), search.original_index.end(),
            std::size_t{0});
  std::stable_sort(search.original_index.begin(), search.original_index.end(),
                   [&](std::size_t a, std::size_t b) {
                     return instance.items[a] > instance.items[b];
                   });
  search.values.reserve(instance.items.size());
  for (const std::size_t index : search.original_index)
    search.values.push_back(instance.items[index]);
  search.target = instance.target;
  search.used.assign(instance.items.size(), false);
  search.node_limit = node_limit;

  ThreePartitionSolution solution;
  solution.solvable = search.solve();
  RESCHED_REQUIRE_MSG(!search.aborted,
                      "3-PARTITION solver hit its node limit");
  if (solution.solvable) {
    for (const auto& group : search.groups) {
      std::vector<std::size_t> mapped;
      mapped.reserve(3);
      for (const std::size_t index : group)
        mapped.push_back(search.original_index[index]);
      solution.groups.push_back(std::move(mapped));
    }
  }
  return solution;
}

bool is_valid_three_partition(
    const ThreePartitionInstance& instance,
    const std::vector<std::vector<std::size_t>>& groups) {
  if (groups.size() != instance.groups()) return false;
  std::vector<bool> used(instance.items.size(), false);
  for (const auto& group : groups) {
    if (group.size() != 3) return false;
    std::int64_t sum = 0;
    for (const std::size_t index : group) {
      if (index >= instance.items.size() || used[index]) return false;
      used[index] = true;
      sum = checked_add(sum, instance.items[index]);
    }
    if (sum != instance.target) return false;
  }
  return std::all_of(used.begin(), used.end(), [](bool u) { return u; });
}

ThreePartitionInstance random_yes_instance(std::size_t k, std::int64_t B,
                                           Prng& prng) {
  RESCHED_REQUIRE(k >= 1 && B >= 3);
  ThreePartitionInstance instance;
  instance.target = B;
  for (std::size_t g = 0; g < k; ++g) {
    // Random 3-composition of B with parts >= 1.
    const std::int64_t a = prng.uniform_int(1, checked_sub(B, 2));
    const std::int64_t b = prng.uniform_int(1, checked_sub(checked_sub(B, a), 1));
    instance.items.push_back(a);
    instance.items.push_back(b);
    instance.items.push_back(checked_sub(checked_sub(B, a), b));
  }
  prng.shuffle(instance.items);
  return instance;
}

std::optional<ThreePartitionInstance> random_no_instance(std::size_t k,
                                                         std::int64_t B,
                                                         Prng& prng,
                                                         int attempts) {
  RESCHED_REQUIRE(k >= 2 && B >= 4);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    ThreePartitionInstance candidate = random_yes_instance(k, B, prng);
    // Move one unit between two items: the sum is preserved, solvability
    // usually is not (especially for small B).
    const std::int64_t last_item =
        checked_sub(static_cast<std::int64_t>(candidate.items.size()), 1);
    const auto from = static_cast<std::size_t>(prng.uniform_int(0, last_item));
    const auto to = static_cast<std::size_t>(prng.uniform_int(0, last_item));
    if (from == to || candidate.items[from] <= 1) continue;
    candidate.items[from] -= 1;
    candidate.items[to] += 1;
    if (!candidate.well_formed()) continue;
    if (!solve_three_partition(candidate).solvable) return candidate;
  }
  return std::nullopt;
}

}  // namespace resched
