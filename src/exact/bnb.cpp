#include "exact/bnb.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "bounds/lower_bounds.hpp"
#include "core/arena.hpp"
#include "core/profile_allocator.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

namespace {

struct SearchState {
  const Instance* instance = nullptr;
  FreeProfile free{StepProfile(0)};
  std::vector<bool> placed;
  std::vector<Time> starts;
  Time current_makespan = 0;

  Time best = kTimeInfinity;
  std::vector<Time> best_starts;
  std::uint64_t nodes = 0;
  std::uint64_t node_limit = 0;
  bool aborted = false;

  std::unordered_set<std::string> visited;

  // DFS-scoped scratch: each node's candidate list lives between a mark()
  // and the matching rewind(), so the whole search reuses a few warm chunks
  // instead of one heap vector per node. The LIFO marker discipline is the
  // recursion itself.
  Arena scratch;
};

// Lower bound for the remaining jobs against the current partial profile.
Time node_lower_bound(SearchState& state) {
  const Instance& instance = *state.instance;
  Time bound = state.current_makespan;
  std::int64_t remaining_work = 0;
  Time earliest_remaining_release = kTimeInfinity;
  for (const Job& job : instance.jobs()) {
    if (state.placed[static_cast<std::size_t>(job.id)]) continue;
    const Time start = state.free.earliest_fit(job.release, job.q, job.p);
    bound = std::max(bound, checked_add(start, job.p));
    remaining_work = checked_add(remaining_work, job.area());
    earliest_remaining_release =
        std::min(earliest_remaining_release, job.release);
  }
  if (remaining_work > 0) {
    bound = std::max(bound, state.free.profile().time_to_accumulate(
                                earliest_remaining_release, remaining_work));
  }
  return bound;
}

// State signature for memoisation: remaining set + committed profile.
std::string state_key(const SearchState& state) {
  std::string key;
  key.reserve(state.placed.size() + 64);
  for (const bool placed : state.placed) key += placed ? '1' : '0';
  key += '|';
  for (const auto& segment : state.free.profile().segments()) {
    key += std::to_string(segment.start);
    key += ':';
    key += std::to_string(segment.value);
    key += ';';
  }
  return key;
}

void dfs(SearchState& state) {
  if (state.aborted) return;
  if (++state.nodes > state.node_limit) {
    state.aborted = true;
    return;
  }

  const Instance& instance = *state.instance;
  const std::size_t n = instance.n();

  bool all_placed = true;
  for (std::size_t i = 0; i < n; ++i)
    if (!state.placed[i]) {
      all_placed = false;
      break;
    }
  if (all_placed) {
    if (state.current_makespan < state.best) {
      state.best = state.current_makespan;
      state.best_starts = state.starts;
    }
    return;
  }

  if (node_lower_bound(state) >= state.best) return;  // prune

  if (!state.visited.insert(state_key(state)).second) return;  // seen

  // Branch on one representative per identical (q, p, release) class.
  const Arena::Marker frame = state.scratch.mark();
  ScratchVec<JobId> candidates{ArenaAlloc<JobId>(&state.scratch)};
  for (std::size_t i = 0; i < n; ++i) {
    if (state.placed[i]) continue;
    const Job& job = instance.jobs()[i];
    bool duplicate = false;
    for (const JobId earlier : candidates) {
      const Job& other = instance.job(earlier);
      if (other.q == job.q && other.p == job.p &&
          other.release == job.release) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) candidates.push_back(static_cast<JobId>(i));
  }

  for (const JobId id : candidates) {
    const Job& job = instance.job(id);
    const Time start = state.free.earliest_fit(job.release, job.q, job.p);
    const Time completion = checked_add(start, job.p);
    if (completion >= state.best) continue;  // placing it can't improve

    // Tentative commit: the undo token reverts the placement in O(touched)
    // on backtrack, without the index churn (and silent-mismatch risk) of
    // the old blind uncommit. Tokens nest with the DFS, so the LIFO
    // discipline holds by construction.
    FreeProfile::CommitToken token =
        state.free.commit_tentative(start, job.q, job.p);
    state.placed[static_cast<std::size_t>(id)] = true;
    state.starts[static_cast<std::size_t>(id)] = start;
    const Time saved_makespan = state.current_makespan;
    state.current_makespan = std::max(state.current_makespan, completion);

    dfs(state);

    state.current_makespan = saved_makespan;
    state.placed[static_cast<std::size_t>(id)] = false;
    state.free.rollback(std::move(token));
    if (state.aborted) break;
  }
  state.scratch.rewind(frame);
}

}  // namespace

BnbResult branch_and_bound(const Instance& instance,
                           const BnbOptions& options) {
  BnbResult result{0, Schedule(instance.n()), 0, false};
  if (instance.n() == 0) {
    result.proven = true;
    return result;
  }

  SearchState state;
  state.instance = &instance;
  state.free = FreeProfile::for_instance(instance);
  state.placed.assign(instance.n(), false);
  state.starts.assign(instance.n(), 0);
  state.node_limit = options.node_limit;
  if (options.upper_bound_hint > 0)
    state.best = checked_add(options.upper_bound_hint, 1);

  dfs(state);

  result.nodes = state.nodes;
  result.proven = !state.aborted;
  if (state.best >= kTimeInfinity) {
    // Exhausted the node limit before completing even one schedule (or an
    // upper-bound hint below the true optimum excluded everything): report
    // an unproven empty result rather than a bogus optimum.
    RESCHED_CHECK_MSG(!result.proven || options.upper_bound_hint > 0,
                      "complete search found no schedule for a feasible "
                      "instance");
    result.proven = false;
    return result;
  }
  result.optimal = state.best;
  for (std::size_t i = 0; i < instance.n(); ++i)
    result.schedule.set_start(static_cast<JobId>(i), state.best_starts[i]);
  return result;
}

Time optimal_makespan(const Instance& instance, const BnbOptions& options) {
  const BnbResult result = branch_and_bound(instance, options);
  RESCHED_REQUIRE_MSG(result.proven,
                      "branch and bound hit its node limit; raise "
                      "BnbOptions::node_limit or shrink the instance");
  return result.optimal;
}

}  // namespace resched
