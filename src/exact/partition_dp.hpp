// Pseudo-polynomial exact algorithms for the weakly NP-hard special cases
// the paper points at (section 2.1, footnote 1: scheduling sequential tasks
// on two processors "is exactly PARTITION, and thus optimally solvable in
// pseudo-polynomial time").
//
//  * subset_sums       -- the reachable-sum bitset DP underlying PARTITION;
//  * two_machine_optimal -- exact C* for m = 2, unit-width (q = 1) jobs
//                          without reservations: the best split is the
//                          smallest reachable sum >= ceil(total/2);
//  * single_machine_gap_optimal -- exact C* for m = 1 unit-width jobs with
//                          reservations, by DP over (gap prefix, reachable
//                          duration subsets) -- the Theorem 1 setting. Being
//                          strongly NP-hard, it is exponential in the gap
//                          count in the worst case but pseudo-polynomial for
//                          a constant number of gaps, which is what the
//                          reduction experiments need.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"

namespace resched {

// All sums reachable by subsets of `values` up to and including `cap`.
// Index s of the result is true iff some subset sums to exactly s.
// O(n * cap / 64) time via a bitset sweep.
[[nodiscard]] std::vector<bool> subset_sums(
    const std::vector<std::int64_t>& values, std::int64_t cap);

// Exact optimal makespan for m = 2, all q_i = 1, no reservations, no
// releases. Throws std::invalid_argument outside this domain.
[[nodiscard]] Time two_machine_optimal(const Instance& instance);

}  // namespace resched
