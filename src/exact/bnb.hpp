// Exact optimal makespan via branch and bound.
//
// The search enumerates *active schedules* with the serial schedule-
// generation scheme: branch on which unplaced job comes next in a priority
// sequence, place it at its earliest feasible start against the committed
// profile. For independent rigid jobs with fixed unavailabilities (an RCPSP
// with a single renewable resource and no precedence), the classical
// active-schedule theorem applies: for any regular objective -- makespan
// included -- some serial-SGS permutation yields an optimal schedule, so
// searching permutations with earliest-fit placement is exact.
//
// Pruning:
//  * certified lower bound at every node (earliest-completion of remaining
//    jobs against the current profile + remaining-area bound),
//  * symmetry: identical (q, p, release) jobs are interchangeable -- only
//    the lowest-id representative of each class is branched on,
//  * memoisation on (remaining-set, committed-profile) states.
//
// Intended for reference optima on small instances (n <= ~10); the node
// limit makes larger calls fail loudly (`proven == false`) instead of
// silently hanging.
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace resched {

struct BnbOptions {
  std::uint64_t node_limit = 20'000'000;
  // Optional known upper bound (e.g. from LSRC) to seed pruning; 0 = none.
  Time upper_bound_hint = 0;
};

struct BnbResult {
  Time optimal = 0;       // best makespan found
  Schedule schedule;      // a schedule achieving it
  std::uint64_t nodes = 0;
  bool proven = false;    // true iff the search completed within the limit
};

[[nodiscard]] BnbResult branch_and_bound(const Instance& instance,
                                         const BnbOptions& options = {});

// Convenience: optimal makespan, throwing if the search is not proven.
[[nodiscard]] Time optimal_makespan(const Instance& instance,
                                    const BnbOptions& options = {});

}  // namespace resched
