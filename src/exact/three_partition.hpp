// 3-PARTITION: the NP-hard problem behind Theorem 1's reduction.
//
// Instance: 3k positive integers x_1..x_3k with sum k*B. Question: can they
// be split into k groups of exactly three elements, each summing to B?
// (The classical strong NP-hardness needs B/4 < x_i < B/2, which makes every
// B-sum group have exactly three elements; the solver enforces groups of
// three explicitly, so it is correct for arbitrary item sizes too.)
//
// The solver is exact backtracking with canonical-order pruning -- ample for
// the reduction experiments (k <= ~12). Generators produce YES instances by
// construction (random splits of B into three parts) and candidate NO
// instances (verified by the solver).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/prng.hpp"

namespace resched {

struct ThreePartitionInstance {
  std::vector<std::int64_t> items;  // size 3k
  std::int64_t target = 0;          // B

  [[nodiscard]] std::size_t groups() const { return items.size() / 3; }
  // Structural sanity: |items| = 3k > 0, items positive, sum = k * B.
  [[nodiscard]] bool well_formed() const;
};

struct ThreePartitionSolution {
  bool solvable = false;
  // groups[g] = indices of the three items in group g (only if solvable).
  std::vector<std::vector<std::size_t>> groups;
};

[[nodiscard]] ThreePartitionSolution solve_three_partition(
    const ThreePartitionInstance& instance,
    std::uint64_t node_limit = 50'000'000);

// Verifies a proposed grouping (used to cross-check schedules extracted from
// the Theorem 1 reduction).
[[nodiscard]] bool is_valid_three_partition(
    const ThreePartitionInstance& instance,
    const std::vector<std::vector<std::size_t>>& groups);

// A YES instance with k groups summing to B each: every group is a random
// 3-split of B (parts >= 1), shuffled. B must be >= 3.
[[nodiscard]] ThreePartitionInstance random_yes_instance(std::size_t k,
                                                         std::int64_t B,
                                                         Prng& prng);

// Searches for a NO instance with the same (k, B) shape by random
// perturbation of YES instances that preserves the total sum; returns
// nullopt if attempts are exhausted (more likely for large B where almost
// everything is solvable).
[[nodiscard]] std::optional<ThreePartitionInstance> random_no_instance(
    std::size_t k, std::int64_t B, Prng& prng, int attempts = 200);

}  // namespace resched
