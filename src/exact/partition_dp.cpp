#include "exact/partition_dp.hpp"

#include <algorithm>

#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

std::vector<bool> subset_sums(const std::vector<std::int64_t>& values,
                              std::int64_t cap) {
  RESCHED_REQUIRE(cap >= 0);
  // Packed 64-bit sweep: reachable |= reachable << v.
  const std::size_t words = static_cast<std::size_t>(cap) / 64 + 1;
  std::vector<std::uint64_t> bits(words, 0);
  bits[0] = 1;  // empty subset
  for (const std::int64_t value : values) {
    RESCHED_REQUIRE_MSG(value > 0, "subset_sums needs positive values");
    if (value > cap) continue;
    const auto shift = static_cast<std::size_t>(value);
    const std::size_t word_shift = shift / 64;
    const unsigned bit_shift = static_cast<unsigned>(shift % 64);
    for (std::size_t w = words; w-- > word_shift;) {
      std::uint64_t shifted = bits[w - word_shift] << bit_shift;
      if (bit_shift != 0 && w > word_shift)
        shifted |= bits[w - word_shift - 1] >> (64 - bit_shift);
      bits[w] |= shifted;
    }
  }
  std::vector<bool> reachable(static_cast<std::size_t>(cap) + 1, false);
  for (std::size_t s = 0; s <= static_cast<std::size_t>(cap); ++s)
    reachable[s] = (bits[s / 64] >> (s % 64)) & 1;
  return reachable;
}

Time two_machine_optimal(const Instance& instance) {
  RESCHED_REQUIRE_MSG(instance.m() == 2, "two_machine_optimal needs m = 2");
  RESCHED_REQUIRE_MSG(instance.is_rigid_only(),
                      "two_machine_optimal does not support reservations");
  RESCHED_REQUIRE_MSG(!instance.has_release_times(),
                      "two_machine_optimal does not support releases");
  std::vector<std::int64_t> durations;
  std::int64_t total = 0;
  for (const Job& job : instance.jobs()) {
    RESCHED_REQUIRE_MSG(job.q == 1, "two_machine_optimal needs q = 1 jobs");
    durations.push_back(job.p);
    total = checked_add(total, job.p);
  }
  if (durations.empty()) return 0;
  // The machine finishing last carries the larger half; minimise it by
  // finding the largest reachable sum <= floor(total / 2).
  const std::int64_t half = total / 2;
  const std::vector<bool> reachable = subset_sums(durations, half);
  std::int64_t best_small = 0;
  for (std::int64_t s = half; s >= 0; --s) {
    if (reachable[static_cast<std::size_t>(s)]) {
      best_small = s;
      break;
    }
  }
  return checked_sub(total, best_small);
}

}  // namespace resched
