// Memory subsystem for the decision hot path (ROADMAP item 5).
//
// Three pieces, used together by the service loop and the schedulers:
//
//  * note_alloc()/alloc_count() -- a thread-local heap-event counter. Every
//    instrumented allocation site in the library (SegStore spills, Arena
//    chunk grabs, ArenaAlloc heap fallbacks) calls note_alloc(), and the
//    bench/test binaries additionally replace the global operator new so
//    residual std-container allocations are counted too (bench/alloc_hook.cpp).
//    Instrumented sites allocate with std::malloc, which the global
//    operator-new hook never sees, so a heap event is counted exactly once.
//    The counter mirrors StepProfile::index_build_count(): cheap enough to
//    sample around every decision, precise enough to assert "this decision
//    performed zero heap allocations" in tests and CI.
//
//  * Arena -- a monotonic bump allocator with scope-reset semantics. One
//    arena backs all transient allocations inside a single schedule()/
//    replan() call: scratch job/queue vectors, backfill buckets, event sets,
//    the returned Schedule's start array. reset() rewinds the cursor but
//    keeps the chunks, so after the first few decisions warm it up, a
//    steady-state decision touches the heap zero times. mark()/rewind()
//    give LIFO frame discipline for DFS-style probe loops (exact/bnb.cpp).
//
//  * ArenaAlloc<T> -- a std::allocator adapter over Arena, with a null-arena
//    heap fallback so the same container types serve both batch paths
//    (no arena, plain heap) and service paths (decision arena). ScratchVec<T>
//    is the vector alias used at call sites.
//
// Deallocation through ArenaAlloc is a no-op when arena-backed; memory is
// reclaimed wholesale by reset(). Containers that erase and re-insert
// (e.g. the EventTimes set) therefore grow to their high-water mark within
// one decision scope -- bounded, and exactly the point: no per-node heap
// traffic inside the timed window.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <vector>

namespace resched {

// --- Thread-local allocation diagnostics -----------------------------------

// Records one heap allocation of `bytes` bytes on this thread's counter.
void note_alloc(std::size_t bytes) noexcept;

// Heap allocations noted on this thread since thread start. Sample before
// and after an operation; the delta is that operation's allocation count.
[[nodiscard]] std::uint64_t alloc_count() noexcept;

// Total bytes those allocations requested (diagnostic only).
[[nodiscard]] std::uint64_t alloc_bytes() noexcept;

// --- Arena ------------------------------------------------------------------

class Arena {
 public:
  Arena() noexcept = default;
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = delete;
  Arena& operator=(Arena&&) = delete;

  // Returns `bytes` bytes aligned to `align` (a power of two no larger
  // than alignof(std::max_align_t)). Never returns nullptr; a zero-byte
  // request still yields a unique, aligned pointer.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align);

  // Rewinds the cursor to the start, keeping every chunk for reuse. All
  // pointers previously handed out become invalid.
  void reset() noexcept;

  // LIFO scope marker for DFS probe loops: everything allocated after
  // mark() is released by rewind() to that marker. Only valid in strict
  // stack order (rewind to the most recent un-rewound marker first).
  struct Marker {
    std::size_t chunk = 0;
    std::size_t offset = 0;
  };
  [[nodiscard]] Marker mark() const noexcept {
    return Marker{active_, offset_};
  }
  void rewind(Marker m) noexcept {
    active_ = m.chunk;
    offset_ = m.offset;
  }

  // Diagnostics.
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept;

 private:
  struct Chunk {
    char* data = nullptr;
    std::size_t size = 0;
  };

  // Grabs a new chunk able to hold `bytes` and makes it active.
  void grow(std::size_t bytes);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // index of the chunk the cursor is in
  std::size_t offset_ = 0;  // bump cursor within chunks_[active_]
};

// --- ArenaAlloc -------------------------------------------------------------

// std::allocator adapter: arena-backed when constructed with a non-null
// Arena*, plain (counted) heap otherwise. Copy construction of a container
// deliberately does NOT inherit the arena (select_on_container_copy_
// construction returns a heap allocator): copies routinely outlive the
// decision scope. Moves steal the allocator with the buffer -- a moved-from-
// arena container must be consumed before the arena resets, which is exactly
// the lifetime of a Schedule returned from replan() into the service loop.
template <class T>
class ArenaAlloc {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::false_type;
  using is_always_equal = std::false_type;

  ArenaAlloc() noexcept = default;
  explicit ArenaAlloc(Arena* arena) noexcept : arena_(arena) {}
  template <class U>
  ArenaAlloc(const ArenaAlloc<U>& other) noexcept : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "ArenaAlloc does not support over-aligned types");
    const std::size_t bytes = n * sizeof(T);
    if (arena_ != nullptr)
      return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    void* p = std::malloc(bytes == 0 ? 1 : bytes);
    if (p == nullptr) throw std::bad_alloc();
    note_alloc(bytes);
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) std::free(p);
    // Arena memory is reclaimed wholesale by Arena::reset().
  }

  [[nodiscard]] ArenaAlloc select_on_container_copy_construction() const {
    return ArenaAlloc{};  // copies go to the heap; see class comment
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <class U>
  friend bool operator==(const ArenaAlloc& a, const ArenaAlloc<U>& b) {
    return a.arena() == b.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

// Scratch vector for transient per-decision data.
template <class T>
using ScratchVec = std::vector<T, ArenaAlloc<T>>;

}  // namespace resched
