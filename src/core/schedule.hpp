// A solution to an instance: a start time for every job (paper section 3.1).
//
// The schedule stores sigma_i per job; feasibility means
//   forall t:  sum_{i running at t} q_i  <=  m - U(t)
// and sigma_i >= release_i. Validation recomputes everything from scratch,
// independently of the scheduler that produced the schedule (defence in
// depth: schedulers maintain their own profiles, the validator rebuilds
// them).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/arena.hpp"
#include "core/instance.hpp"
#include "core/step_profile.hpp"

namespace resched {

struct ValidationResult {
  bool ok = true;
  std::string error;  // empty iff ok

  explicit operator bool() const noexcept { return ok; }
};

class Schedule {
 public:
  // A schedule over no jobs (default-constructible for result structs).
  Schedule() = default;
  // An empty schedule for n jobs (all unscheduled). With a scratch arena the
  // start array is bump-allocated from it (the replan hot path): such a
  // schedule must be consumed before the arena resets -- copying it (or
  // copy-assigning from it) lands on the plain heap, moving it keeps the
  // arena backing.
  explicit Schedule(std::size_t n_jobs, Arena* scratch = nullptr);

  void set_start(JobId job, Time start);
  [[nodiscard]] bool is_scheduled(JobId job) const;
  // Requires is_scheduled(job).
  [[nodiscard]] Time start(JobId job) const;
  [[nodiscard]] Time completion(const Instance& instance, JobId job) const;

  [[nodiscard]] std::size_t size() const noexcept { return starts_.size(); }
  [[nodiscard]] bool all_scheduled() const noexcept;

  // C_max = max_i (sigma_i + p_i); 0 when nothing is scheduled. Reservations
  // do not count toward the makespan (they are constraints, not work).
  [[nodiscard]] Time makespan(const Instance& instance) const;

  // r(t): processors used by scheduled jobs at time t (the appendix's r).
  [[nodiscard]] StepProfile usage_profile(const Instance& instance) const;

  // Full feasibility check; explains the first violation found.
  [[nodiscard]] ValidationResult validate(const Instance& instance) const;

  // Area available to the scheduler in [0, makespan) minus the work placed
  // there: integral of (m - U - r) over [0, C_max). Zero idle area means the
  // schedule keeps every available processor busy until C_max.
  [[nodiscard]] std::int64_t idle_area(const Instance& instance) const;

  // total_work / (available area in [0, C_max)); in [0, 1] for a feasible
  // schedule. 1.0 when the instance has no jobs.
  [[nodiscard]] double utilization(const Instance& instance) const;

  friend bool operator==(const Schedule&, const Schedule&) = default;

 private:
  std::vector<std::optional<Time>, ArenaAlloc<std::optional<Time>>> starts_;
};

}  // namespace resched
