#include "core/machine_assignment.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

namespace {

struct Event {
  Time time;
  bool is_release;     // releases processed before acquisitions at equal time
  bool is_reservation; // reservations acquire before jobs at equal time
  std::int32_t id;

  bool operator<(const Event& other) const {
    if (time != other.time) return time < other.time;
    if (is_release != other.is_release) return is_release;  // releases first
    if (is_reservation != other.is_reservation)
      return is_reservation;  // reservations acquire first
    return id < other.id;
  }
};

}  // namespace

MachineAssignment assign_machines(const Instance& instance,
                                  const Schedule& schedule) {
  const ValidationResult valid = schedule.validate(instance);
  RESCHED_REQUIRE_MSG(valid.ok, "cannot assign machines: " + valid.error);

  std::vector<Event> events;
  events.reserve(2 * (instance.n() + instance.n_reservations()));
  for (const Reservation& resa : instance.reservations()) {
    events.push_back({resa.start, false, true, resa.id});
    events.push_back({resa.end(), true, true, resa.id});
  }
  for (const Job& job : instance.jobs()) {
    const Time start = schedule.start(job.id);
    events.push_back({start, false, false, job.id});
    events.push_back({checked_add(start, job.p), true, false, job.id});
  }
  std::sort(events.begin(), events.end());

  std::set<MachineIndex> free;
  for (ProcCount r = 0; r < instance.m(); ++r)
    free.insert(static_cast<MachineIndex>(r));

  MachineAssignment out;
  out.job_machines.resize(instance.n());
  out.reservation_machines.resize(instance.n_reservations());

  auto machines_of = [&](const Event& ev) -> std::vector<MachineIndex>& {
    return ev.is_reservation
               ? out.reservation_machines[static_cast<std::size_t>(ev.id)]
               : out.job_machines[static_cast<std::size_t>(ev.id)];
  };

  for (const Event& ev : events) {
    if (ev.is_release) {
      for (const MachineIndex machine : machines_of(ev)) free.insert(machine);
      continue;
    }
    const ProcCount need = ev.is_reservation
                               ? instance.reservation(ev.id).q
                               : instance.job(ev.id).q;
    RESCHED_CHECK_MSG(static_cast<ProcCount>(free.size()) >= need,
                      "machine sweep ran out of processors despite a "
                      "capacity-feasible schedule");
    auto& target = machines_of(ev);
    target.clear();
    auto it = free.begin();
    for (ProcCount taken = 0; taken < need; ++taken) {
      target.push_back(*it);
      it = free.erase(it);
    }
  }
  return out;
}

ValidationResult validate_assignment(const Instance& instance,
                                     const Schedule& schedule,
                                     const MachineAssignment& assignment) {
  if (assignment.job_machines.size() != instance.n() ||
      assignment.reservation_machines.size() != instance.n_reservations())
    return {false, "assignment shape does not match instance"};

  // Per-occupant sanity: q distinct machines inside [0, m).
  auto check_set = [&](const std::vector<MachineIndex>& machines,
                       ProcCount q, const std::string& what) -> std::string {
    if (static_cast<ProcCount>(machines.size()) != q)
      return what + " got " + std::to_string(machines.size()) +
             " machines, needs " + std::to_string(q);
    std::set<MachineIndex> distinct(machines.begin(), machines.end());
    if (distinct.size() != machines.size())
      return what + " has duplicate machines";
    if (!machines.empty() &&
        (*distinct.begin() < 0 ||
         *distinct.rbegin() >= static_cast<MachineIndex>(instance.m())))
      return what + " uses a machine index outside [0, m)";
    return "";
  };
  for (const Job& job : instance.jobs()) {
    const std::string err =
        check_set(assignment.job_machines[static_cast<std::size_t>(job.id)],
                  job.q, "job " + std::to_string(job.id));
    if (!err.empty()) return {false, err};
  }
  for (const Reservation& resa : instance.reservations()) {
    const std::string err = check_set(
        assignment.reservation_machines[static_cast<std::size_t>(resa.id)],
        resa.q, "reservation " + std::to_string(resa.id));
    if (!err.empty()) return {false, err};
  }

  // Overlap check per machine: collect intervals and sweep.
  struct Use {
    Time start;
    Time end;
    std::string who;
  };
  std::map<MachineIndex, std::vector<Use>> uses;
  for (const Job& job : instance.jobs()) {
    if (!schedule.is_scheduled(job.id)) continue;
    const Time start = schedule.start(job.id);
    for (const MachineIndex machine :
         assignment.job_machines[static_cast<std::size_t>(job.id)])
      uses[machine].push_back(
          {start, checked_add(start, job.p), "job " + std::to_string(job.id)});
  }
  for (const Reservation& resa : instance.reservations()) {
    for (const MachineIndex machine :
         assignment.reservation_machines[static_cast<std::size_t>(resa.id)])
      uses[machine].push_back(
          {resa.start, resa.end(), "reservation " + std::to_string(resa.id)});
  }
  for (auto& [machine, list] : uses) {
    std::sort(list.begin(), list.end(),
              [](const Use& a, const Use& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i].start < list[i - 1].end)
        return {false, "machine " + std::to_string(machine) +
                           " double-booked: " + list[i - 1].who + " and " +
                           list[i].who};
    }
  }
  return {true, ""};
}

}  // namespace resched
