// StepProfile: an integer-valued piecewise-constant function of time on
// [0, +infinity).
//
// This is the single data structure underneath everything in resched:
// unavailability U(t), availability m(t) = m - U(t), schedule usage r(t) and
// the schedulers' free-capacity view all are StepProfiles. It supports point
// queries, range addition, windowed minima, area integrals and breakpoint
// iteration.
//
// Representation: a SegStore -- two parallel flat arrays (starts, values)
// sorted by start with small-buffer inline storage (core/seg_store.hpp); the
// value holds from its start (inclusive) to the next start (exclusive); the
// last segment extends to +infinity. Invariants: the first start is 0, and
// adjacent segments have distinct values (canonical form), so operator==
// means pointwise function equality. The SoA layout keeps the binary
// searches on a contiguous start array and the scan-heavy value walks on a
// contiguous value array; profiles of up to SegStore::kInlineSegments
// segments never touch the heap.
//
// Windowed queries (min_in / max_in / first_below / first_at_least) are the
// schedulers' per-placement hot path. Each starts as a bounded linear scan
// (faster than any descent while windows are short) and hands over to a
// lazily built min/max-augmented implicit segment tree, O(log s), once the
// window proves to span more than kIndexedLeafCutoff segments. The same
// tree carries a sum augmentation (per-node integral over the node's finite
// span, 128-bit), which turns `integral` into an O(log s) range-sum and
// `time_to_accumulate` into an O(log s) descent with exact linear scans on
// the at-most-two partially covered boundary leaves.
//
// Segment-tree index invariants (cache published as an immutable snapshot;
// steps_ stays authoritative):
//  I1. The index is built on demand from a snapshot of the breakpoints:
//      leaf j covers the time span [times[j], times[j+1]) (the last leaf
//      extends to +infinity). `times` never changes between rebuilds, even
//      as steps_ keeps splitting and coalescing, so a leaf's span can come
//      to contain several real segments.
//  I2. Node v covers a contiguous leaf range. Its stored min/max are exact
//      aggregates of the *current* function over that span, up to pending
//      lazy addends: true_agg(v) = stored(v) + sum of lazy[a] over strict
//      ancestors a of v. lazy[v] is an addend that applies to both children's
//      subtrees and is already folded into stored(v).
//  I3. add(from, to, delta) keeps the index exact incrementally: leaves
//      fully covered by [from, to) receive an O(log s) lazy range-add; the
//      at-most-two partially covered boundary leaves are recomputed exactly
//      by scanning steps_ over their spans. Adds beyond a per-build budget
//      (or structural churn on a small profile) drop the index, and the
//      next windowed query rebuilds it in O(s) -- O(1) amortized.
//  I4. Tree arithmetic saturates at the int64 extremes instead of wrapping
//      (padding leaves hold +/-inf sentinels). Saturation is exact for all
//      |values| < 2^62; checked segment arithmetic keeps real capacity
//      profiles far below that. Sum nodes are 128-bit and cannot saturate
//      silently: any sum overflow clears Index::sums_ok, and the sum-backed
//      queries fall back to the exact linear scan until the next rebuild
//      (min/max stay valid). The unbounded last leaf and the padding leaves
//      carry span length 0, so they contribute nothing to any range sum.
//  I5. Concurrent *const* reads of one profile from many threads are safe.
//      The index lives behind a std::atomic<Index*> snapshot slot: a const
//      query that needs it builds a fresh snapshot from steps_ and installs
//      it with a single compare-exchange (first builder wins; a losing
//      racer deletes its own build and adopts the installed one -- both
//      were derived from the same steps_, so they answer identically).
//      Readers never mutate an installed snapshot, and no reference
//      counting is needed: a snapshot is only deleted by add(), assignment
//      or destruction, all of which require exclusive access to the
//      profile (standard-library container rules), at which point no
//      reader can still hold it. This is what lets CampaignRunner share
//      one generated instance across its worker threads instead of
//      regenerating it.
//  I6. A rollback() of a recorded add is budget-neutral: the inverse patch
//      never consumes a rebuild-budget unit and refunds the unit the
//      recorded add spent (only to the very snapshot that spent it -- one
//      rebuilt mid-pair starts with a full budget and is not credited), so
//      a commit/rollback pair leaves the snapshot, its budget and the
//      amortization argument exactly where they were.
//      This is sound because the pair is structurally net-zero: rollback
//      restores the very segments the add displaced, so leaf spans hold no
//      more real segments after the pair than before it.
//
// add() provides the strong exception guarantee: it validates every affected
// segment's checked addition before the first structural change, so an
// overflowing add throws with the profile (and its canonical form) intact.
//
// Transactional mutation (undo log): add_recorded() performs an add and
// fills an opaque Undo record with the touched region -- the segments that
// existed over [window, to] before the add and the segments the add left
// there -- plus whether the index snapshot was patched in place (one rebuild
// budget unit) or dropped. rollback() then restores the region with a single
// splice in O(touched), *without* re-running add's probe/split/coalesce
// machinery, verifies against the recorded post-state that it really is
// reversing that mutation (a stale or out-of-order rollback trips
// RESCHED_CHECK instead of silently corrupting the function), and
// inverse-patches the index snapshot without consuming budget, refunding the
// unit the recorded add spent. A tentative probe sequence (add_recorded ->
// queries -> rollback) is therefore structurally net-zero: no budget drain,
// no index drop, no O(s) rebuild -- the backfilling schedulers' tentative
// commit/uncommit loops run entirely on warm snapshots. Undo records unwind
// newest-first (strict nesting, the shape backtracking search and tentative
// probes produce). Records whose *checked state* -- the closed region
// [window_lo, to] plus the value of the step immediately left of it -- was
// not touched by any still-live later mutation may also unwind out of
// order; anything else trips the rollback check. Note the checked state is
// slightly wider than the mutation window [from, to): a later add that
// merely coalesces across this record's region boundary, or shifts the
// region's trailing piece at `to`, blocks this record until it unwinds.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/seg_store.hpp"
#include "core/types.hpp"

namespace resched {

class StepProfile {
 public:
  struct Segment {
    Time start;  // inclusive
    Time end;    // exclusive; kTimeInfinity for the last segment
    std::int64_t value;
    friend bool operator==(const Segment&, const Segment&) = default;
  };

  // Constant function with the given value everywhere.
  explicit StepProfile(std::int64_t initial_value = 0);

  // Copies drop the query-index cache (it is rebuilt on demand; at 20k+
  // segments the cache is megabytes, and copy sites -- snapshots, minus()'s
  // negation -- rarely reuse it). Moves keep it. Hand-written because the
  // atomic snapshot slot is neither copyable nor movable itself; copy/move
  // require exclusive access to both operands (standard container rules).
  StepProfile(const StepProfile& other) : steps_(other.steps_) {}
  StepProfile& operator=(const StepProfile& other) {
    steps_ = other.steps_;
    drop_index();
    ++version_;
    return *this;
  }
  StepProfile(StepProfile&& other) noexcept
      : steps_(std::move(other.steps_)),
        index_(other.index_.exchange(nullptr, std::memory_order_relaxed)),
        index_builds_(other.index_builds_.load(std::memory_order_relaxed)),
        version_(other.version_) {}
  StepProfile& operator=(StepProfile&& other) noexcept {
    if (this != &other) {
      steps_ = std::move(other.steps_);
      delete index_.exchange(
          other.index_.exchange(nullptr, std::memory_order_relaxed),
          std::memory_order_relaxed);
      index_builds_.store(other.index_builds_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      version_ = other.version_;
    }
    return *this;
  }
  ~StepProfile() { drop_index(); }

  [[nodiscard]] std::int64_t value_at(Time t) const;

  // Adds delta on [from, to); no-op when from >= to. Times must be >= 0.
  // Strong exception guarantee: throws std::overflow_error with the profile
  // unchanged when any affected segment's value would overflow.
  void add(Time from, Time to, std::int64_t delta);

  // Opaque undo record for one recorded add (see the transactional-mutation
  // notes in the header comment). Default-constructed records are dead;
  // add_recorded arms them, rollback (or a fresh add_recorded) spends them.
  // Copy/move keep the usual value semantics; destroying a live record
  // simply makes its mutation permanent.
  class Undo {
   public:
    Undo() = default;
    [[nodiscard]] bool live() const noexcept { return live_; }

   private:
    friend class StepProfile;
    Time from_ = 0;
    Time to_ = 0;
    std::int64_t delta_ = 0;
    Time window_lo_ = 0;          // start of the segment containing from_
    // Value of the step left of window_lo_ at record time (valid iff
    // window_lo_ > 0). Anchors the coalesce replay in rollback(): if a
    // later mutation changed it, the rollback trips instead of splicing a
    // non-canonical (or wrong) region back.
    std::int64_t left_value_ = 0;
    // Snapshot the recorded add patched in place (nullptr when it found
    // none or dropped it). rollback() refunds the consumed budget unit
    // only to this exact snapshot, so a drop-and-rebuild between the pair
    // cannot over-credit a fresh snapshot that never spent it.
    const void* patched_index_ = nullptr;
    bool live_ = false;
    // The steps that covered [window_lo_, to_] before the add -- everything
    // the add could touch. The post-state is not stored: rollback replays
    // the add's transformation of these few steps to verify it is reversing
    // the right mutation, which keeps the recording cost on the (hot,
    // usually accepted) commit path to one small copy. A SegStore: undo
    // windows are nearly always a handful of segments, so the record stays
    // entirely inline (no heap traffic on the probe path).
    SegStore steps_;
  };

  // add() that additionally fills `undo` so rollback() can revert it in
  // O(touched). Reuses undo's buffer capacity, so a caller cycling one
  // record through a probe loop allocates only on its first (or widest)
  // commit. Same strong exception guarantee as add(): on overflow, throws
  // with the profile unchanged and `undo` left dead.
  void add_recorded(Time from, Time to, std::int64_t delta, Undo& undo);

  // Reverts the recorded add: splices the prior segments back (O(touched)
  // plus the vector shift), after RESCHED_CHECK-ing that the current
  // region still matches the recorded post-state -- reversing anything
  // other than the newest overlapping mutation is a caller bug, surfaced
  // loudly instead of corrupting the function. Restores the index snapshot
  // by exact inverse patching without consuming rebuild budget, refunding
  // the unit the recorded add spent.
  void rollback(Undo& undo);

  // Number of full O(s) index builds this profile has performed (diagnostic
  // for tests/benches; tentative probe loops must keep this flat). Copies
  // start at zero, moves carry the count.
  [[nodiscard]] std::uint64_t index_build_count() const noexcept {
    return index_builds_.load(std::memory_order_relaxed);
  }

  // Heap blocks the segment store has allocated (diagnostic, mirroring
  // index_build_count: copies start at zero, moves carry the count; probe
  // loops on a warmed profile must keep this flat). The thread-local
  // resched::alloc_count() sees the same events plus everything else.
  [[nodiscard]] std::uint64_t alloc_count() const noexcept {
    return steps_.alloc_count();
  }

  // Monotone mutation version: incremented by every successful state change
  // (add, add_recorded, rollback, compact_before, copy assignment). The O(1)
  // checkpoint primitive of the incremental-replan layer: two equal versions
  // of one live object guarantee no mutation happened in between, so a
  // caller holding a version can tell whether its derived state (plans,
  // deltas, caches) is still current without comparing segments. Copies
  // start at zero (a copy is a new history); moves carry the version.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  // Collapses every segment boundary strictly before t into one leading
  // segment carrying value_at(t); the function on [t, +inf) is unchanged,
  // the function on [0, t) is rewritten to the constant value_at(t). For
  // callers that advance a clock monotonically and never query the past
  // again (the resident service profile): dead history otherwise accumulates
  // one segment per completed job forever. Structural, so it drops the query
  // index. Returns the number of segments removed.
  std::size_t compact_before(Time t);

  // Minimum value over the window [from, to); requires from < to.
  [[nodiscard]] std::int64_t min_in(Time from, Time to) const;
  // Maximum value over the window [from, to); requires from < to.
  [[nodiscard]] std::int64_t max_in(Time from, Time to) const;

  // Earliest t in [from, to) with value_at(t) < threshold, or kTimeInfinity
  // if the window never dips below the threshold. Core query of the
  // earliest-fit search.
  [[nodiscard]] Time first_below(Time from, Time to,
                                 std::int64_t threshold) const;

  // Earliest t >= from with value_at(t) >= threshold, or kTimeInfinity.
  // Lets earliest_fit leap over an entire run of deficient segments in one
  // O(log s) descent instead of stepping breakpoint by breakpoint.
  [[nodiscard]] Time first_at_least(Time from, std::int64_t threshold) const;

  // Smallest breakpoint strictly greater than t, or kTimeInfinity if the
  // function is constant after t.
  [[nodiscard]] Time next_change_after(Time t) const;

  // Integral of the function over [from, to); throws std::overflow_error
  // when the (exact, 128-bit-accumulated) result does not fit in int64.
  // Requires from <= to and to < kTimeInfinity. O(log s) through the
  // sum-augmented index on wide windows.
  [[nodiscard]] std::int64_t integral(Time from, Time to) const;

  // Earliest T >= from such that integral(from, T) >= target (target >= 0),
  // where non-positive-rate stretches contribute nothing (the callers'
  // profiles -- capacities, availabilities -- are non-negative, and a
  // work-area target can never be paid off by negative rate). Unreachable
  // targets are reported as kTimeInfinity. O(log s) through the
  // sum-augmented index on non-negative profiles; nodes containing negative
  // values are expanded exactly instead of trusting their range sum.
  [[nodiscard]] Time time_to_accumulate(Time from, std::int64_t target) const;

  // True if the function never increases / never decreases over [0, +inf).
  [[nodiscard]] bool is_non_increasing() const noexcept;
  [[nodiscard]] bool is_non_decreasing() const noexcept;

  [[nodiscard]] std::int64_t min_value() const noexcept;
  [[nodiscard]] std::int64_t max_value() const noexcept;
  // Value of the unbounded final segment.
  [[nodiscard]] std::int64_t final_value() const noexcept;
  // Number of maximal constant segments (>= 1).
  [[nodiscard]] std::size_t segment_count() const noexcept;

  // All maximal segments, in order; the last has end == kTimeInfinity.
  [[nodiscard]] std::vector<Segment> segments() const;
  // Segments clipped to [from, to).
  [[nodiscard]] std::vector<Segment> segments_in(Time from, Time to) const;

  // Pointwise combination: this + other, this - other.
  [[nodiscard]] StepProfile plus(const StepProfile& other) const;
  [[nodiscard]] StepProfile minus(const StepProfile& other) const;

  // Pointwise function equality (canonical form makes it structural on the
  // segment vector; the index cache is explicitly not compared).
  friend bool operator==(const StepProfile& a, const StepProfile& b) {
    return a.steps_ == b.steps_;
  }

 private:
  // Profiles below this size answer windowed queries by linear scan; the
  // index only pays for itself once scans get long.
  static constexpr std::size_t kMinIndexedSegments = 32;
  // Windows spanning fewer index leaves than this are answered by linear
  // scan even on indexed profiles: a short contiguous scan beats the
  // pointer-chasing descent until a few hundred segments (measured in
  // bench_profile_ops; see BUILDING.md).
  static constexpr std::size_t kIndexedLeafCutoff = 256;

  // 128-bit accumulator for the sum augmentation: node integrals are exact
  // products value * span, whose partial sums can exceed 64 bits long
  // before the final clamped result does.
  using Wide = __int128;

  // Lazily built min/max/sum segment tree over a breakpoint snapshot; see
  // the invariants I1-I5 in the header comment. Published through the
  // atomic slot below; immutable while readable concurrently (I5).
  struct Index {
    std::vector<Time> times;        // snapshot breakpoints; times[0] == 0
    std::vector<std::int64_t> min;  // implicit tree, 2*cap entries
    std::vector<std::int64_t> max;
    std::vector<std::int64_t> lazy;
    std::vector<Wide> sum;   // integral over the node's finite span
    std::vector<Time> len;   // finite span length (last + padding leaves: 0)
    std::size_t cap = 0;     // power-of-two leaf capacity
    std::size_t budget = 0;  // incremental adds left before a rebuild
    // Cleared when a sum update would overflow 128 bits (adversarial values
    // only); integral/time_to_accumulate then fall back to exact scans
    // while min/max queries keep using the tree.
    bool sums_ok = false;
  };

  // Sorted by start; start(0) == 0; adjacent values distinct. The
  // snapshot slot owns its Index exclusively (null = no index): readers
  // install via compare-exchange (invariant I5); add(), assignment and the
  // destructor delete it under exclusive access. A raw atomic pointer, not
  // atomic<shared_ptr>: reader references cannot outlive the exclusive
  // operations that delete, so reference counting would buy nothing (and
  // libstdc++'s _Sp_atomic lock-bit protocol is opaque to TSan, which the
  // shared-read stress suite runs under).
  SegStore steps_;
  mutable std::atomic<Index*> index_{nullptr};
  // Diagnostic only (never compared, never part of function equality):
  // counts build_index runs, including builds a racing reader discarded.
  mutable std::atomic<std::uint64_t> index_builds_{0};
  // Mutation version (see version()). Plain integer: every increment site
  // requires exclusive access to the profile already.
  std::uint64_t version_ = 0;

  void drop_index() noexcept {
    delete index_.exchange(nullptr, std::memory_order_relaxed);
  }

  // Index of the segment containing t (t >= 0).
  [[nodiscard]] std::size_t index_of(Time t) const noexcept;
  // Ensures a breakpoint exists exactly at t; returns its index.
  std::size_t split_at(Time t);
  // Erases the step at index i if it duplicates its left neighbour's value.
  void coalesce_at(std::size_t i);

  // Linear-scan fallbacks (exact over [from, to) clipped to the function).
  // The *_at variants take the precomputed index_of(from) so hot callers
  // pay for one binary search, not two.
  [[nodiscard]] std::int64_t scan_min_at(std::size_t i, Time to) const;
  [[nodiscard]] std::int64_t scan_max_at(std::size_t i, Time to) const;
  [[nodiscard]] Time scan_first_below_at(std::size_t i, Time from, Time to,
                                         std::int64_t threshold) const;
  [[nodiscard]] Time scan_first_at_least_at(std::size_t i, Time from,
                                            std::int64_t threshold) const;
  [[nodiscard]] std::int64_t scan_min(Time from, Time to) const;
  [[nodiscard]] std::int64_t scan_max(Time from, Time to) const;
  [[nodiscard]] Time scan_first_below(Time from, Time to,
                                      std::int64_t threshold) const;
  [[nodiscard]] Time scan_first_at_least(Time from,
                                         std::int64_t threshold) const;
  // Exact 128-bit integral over [from, to) by linear scan (i =
  // index_of(from)); clears `ok` on 128-bit overflow instead of wrapping.
  [[nodiscard]] Wide scan_integral_at(std::size_t i, Time from, Time to,
                                      bool& ok) const;
  // Exact positive-rate accumulation across steps_[i..) from `cursor` until
  // `remaining` is paid off or `stop` (exclusive; kTimeInfinity = the whole
  // tail) is reached. Returns the crossing time, or kTimeInfinity with
  // `remaining` updated when the stop bound (or an all-deficient tail) is
  // hit first. This is the single place the ceil_div crossing rule and the
  // near-infinity clamp live; both scan and indexed paths end in it.
  [[nodiscard]] Time scan_accumulate(std::size_t i, Time cursor, Time stop,
                                     std::int64_t& remaining) const;

  // Indexed descents behind the public queries; require the window to span
  // more than one leaf. lo_idx = index_of(from).
  [[nodiscard]] std::int64_t indexed_min_in(Time from, Time to,
                                            std::size_t lo_idx) const;
  [[nodiscard]] std::int64_t indexed_max_in(Time from, Time to,
                                            std::size_t lo_idx) const;
  [[nodiscard]] Time indexed_first_below(Time from, Time to,
                                         std::int64_t threshold,
                                         std::size_t lo_idx) const;

  // ---- segment-tree index plumbing ----
  // Every helper below takes the Index explicitly: readers operate on the
  // snapshot they loaded (shared, const), add() on the one it owns
  // exclusively. Nothing touches the atomic slot but ensure_index and
  // index_apply_add.
  //
  // Builds a fresh snapshot from steps_ (O(s)).
  [[nodiscard]] std::unique_ptr<Index> build_index() const;
  // Returns the installed snapshot, building + installing one (single
  // compare-exchange, first builder wins) when the slot is empty. The
  // reference stays valid for the rest of the calling query (I5).
  [[nodiscard]] const Index& ensure_index() const;
  // Incremental maintenance hook, called at the end of a successful add().
  // Returns the snapshot it patched in place (one budget unit consumed),
  // or nullptr when there was no snapshot or it had to be dropped.
  const Index* index_apply_add(Time from, Time to, std::int64_t delta);
  // Inverse patch for rollback(): same leaf-window decomposition as
  // index_apply_add with -delta, but budget-neutral -- it never drops for
  // budget, never consumes a unit, and refunds the one the recorded add
  // spent (only to the very snapshot that spent it, undo.patched_index_).
  // Runs after the region splice, so the boundary-leaf recomputes read the
  // restored steps_.
  void index_rollback_patch(const Undo& undo);
  // Shared body of the two patchers: recomputes the window's partially
  // covered boundary leaves from steps_ and lazy range-adds delta over the
  // fully covered ones. Kept in one place so the forward and inverse
  // patches can never desynchronize.
  void index_patch_leaves(Index& ix, Time from, Time to,
                          std::int64_t delta) const;
  // Shared body of add()/add_recorded(); undo == nullptr means unrecorded.
  void add_impl(Time from, Time to, std::int64_t delta, Undo* undo);
  // Leaf j's time span is [times[j], index_leaf_end(j)).
  [[nodiscard]] static Time index_leaf_end(const Index& ix, std::size_t j);
  // Leaf containing time t.
  [[nodiscard]] static std::size_t index_leaf_of(const Index& ix, Time t);
  // How a window [from, to) decomposes onto the snapshot leaves: lo/hi are
  // the first/last leaves it intersects; a *_partial flag means the window
  // covers that edge leaf only partially. Shared by every indexed query and
  // by index_apply_add, so the boundary rules live in exactly one place.
  struct LeafWindow {
    std::size_t lo_leaf;
    std::size_t hi_leaf;
    bool left_partial;
    bool right_partial;
  };
  [[nodiscard]] static LeafWindow index_leaf_window(const Index& ix,
                                                    Time from, Time to);
  // Recomputes leaf j's min/max exactly from steps_ and pulls up.
  void index_recompute_leaf(Index& ix, std::size_t j) const;
  static void index_range_add(Index& ix, std::size_t node,
                              std::size_t node_lo, std::size_t node_hi,
                              std::size_t lo, std::size_t hi,
                              std::int64_t delta);
  [[nodiscard]] static std::int64_t index_range_min(
      const Index& ix, std::size_t node, std::size_t node_lo,
      std::size_t node_hi, std::size_t lo, std::size_t hi, std::int64_t acc);
  [[nodiscard]] static std::int64_t index_range_max(
      const Index& ix, std::size_t node, std::size_t node_lo,
      std::size_t node_hi, std::size_t lo, std::size_t hi, std::int64_t acc);
  // Leftmost leaf in [lo, hi] whose exact min is < threshold (kNoLeaf when
  // none) / whose exact max is >= threshold.
  static constexpr std::size_t kNoLeaf = static_cast<std::size_t>(-1);
  [[nodiscard]] static std::size_t index_first_leaf_below(
      const Index& ix, std::size_t node, std::size_t node_lo,
      std::size_t node_hi, std::size_t lo, std::size_t hi,
      std::int64_t threshold, std::int64_t acc);
  [[nodiscard]] static std::size_t index_first_leaf_at_least(
      const Index& ix, std::size_t node, std::size_t node_lo,
      std::size_t node_hi, std::size_t lo, std::size_t hi,
      std::int64_t threshold, std::int64_t acc);
  // Exact integral over the leaves [lo, hi] (full leaves only; boundary
  // partials are the caller's scans). acc = 128-bit sum of strict-ancestor
  // lazies. Clears `ok` instead of wrapping on 128-bit overflow.
  [[nodiscard]] static Wide index_range_sum(const Index& ix, std::size_t node,
                                            std::size_t node_lo,
                                            std::size_t node_hi,
                                            std::size_t lo, std::size_t hi,
                                            Wide acc, bool& ok);
  // time_to_accumulate descent over the full leaves [lo, hi]: skips nodes
  // whose (non-negative, so monotone) range sum stays below `remaining`,
  // expands nodes containing negative values, and finishes inside the
  // crossing leaf with the exact scan. Returns the crossing time or
  // kTimeInfinity with `remaining` updated. Clears `ok` on 128-bit
  // overflow (callers then redo the query by scan).
  [[nodiscard]] Time index_accumulate(const Index& ix, std::size_t node,
                                      std::size_t node_lo,
                                      std::size_t node_hi, std::size_t lo,
                                      std::size_t hi, std::int64_t acc,
                                      Wide acc_wide, std::int64_t& remaining,
                                      bool& ok) const;
};

}  // namespace resched
