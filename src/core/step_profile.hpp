// StepProfile: an integer-valued piecewise-constant function of time on
// [0, +infinity).
//
// This is the single data structure underneath everything in resched:
// unavailability U(t), availability m(t) = m - U(t), schedule usage r(t) and
// the schedulers' free-capacity view all are StepProfiles. It supports point
// queries, range addition, windowed minima, area integrals and breakpoint
// iteration, each in O(log s + k) for s segments and k touched segments.
//
// Representation: flat vector of {segment start, value} sorted by start; the
// value holds from its start (inclusive) to the next start (exclusive); the
// last segment extends to +infinity. Invariants: the first start is 0, and
// adjacent segments have distinct values (canonical form), so operator==
// means pointwise function equality. The flat layout keeps the hot queries
// (min_in / first_below / integral, which every scheduler issues per
// placement) on a single contiguous cache-friendly scan instead of chasing
// red-black tree nodes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace resched {

class StepProfile {
 public:
  struct Segment {
    Time start;  // inclusive
    Time end;    // exclusive; kTimeInfinity for the last segment
    std::int64_t value;
    friend bool operator==(const Segment&, const Segment&) = default;
  };

  // Constant function with the given value everywhere.
  explicit StepProfile(std::int64_t initial_value = 0);

  [[nodiscard]] std::int64_t value_at(Time t) const;

  // Adds delta on [from, to); no-op when from >= to. Times must be >= 0.
  void add(Time from, Time to, std::int64_t delta);

  // Minimum value over the window [from, to); requires from < to.
  [[nodiscard]] std::int64_t min_in(Time from, Time to) const;
  // Maximum value over the window [from, to); requires from < to.
  [[nodiscard]] std::int64_t max_in(Time from, Time to) const;

  // Earliest t in [from, to) with value_at(t) < threshold, or kTimeInfinity
  // if the window never dips below the threshold. Core query of the
  // earliest-fit search.
  [[nodiscard]] Time first_below(Time from, Time to,
                                 std::int64_t threshold) const;

  // Smallest breakpoint strictly greater than t, or kTimeInfinity if the
  // function is constant after t.
  [[nodiscard]] Time next_change_after(Time t) const;

  // Integral of the function over [from, to), overflow-checked.
  // Requires from <= to and to < kTimeInfinity.
  [[nodiscard]] std::int64_t integral(Time from, Time to) const;

  // Earliest T >= from such that integral(from, T) >= target (target >= 0).
  // Requires the final segment value to be positive (otherwise the target
  // may be unreachable, which is reported as kTimeInfinity).
  [[nodiscard]] Time time_to_accumulate(Time from, std::int64_t target) const;

  // True if the function never increases / never decreases over [0, +inf).
  [[nodiscard]] bool is_non_increasing() const noexcept;
  [[nodiscard]] bool is_non_decreasing() const noexcept;

  [[nodiscard]] std::int64_t min_value() const noexcept;
  [[nodiscard]] std::int64_t max_value() const noexcept;
  // Value of the unbounded final segment.
  [[nodiscard]] std::int64_t final_value() const noexcept;
  // Number of maximal constant segments (>= 1).
  [[nodiscard]] std::size_t segment_count() const noexcept;

  // All maximal segments, in order; the last has end == kTimeInfinity.
  [[nodiscard]] std::vector<Segment> segments() const;
  // Segments clipped to [from, to).
  [[nodiscard]] std::vector<Segment> segments_in(Time from, Time to) const;

  // Pointwise combination: this + other, this - other.
  [[nodiscard]] StepProfile plus(const StepProfile& other) const;
  [[nodiscard]] StepProfile minus(const StepProfile& other) const;

  friend bool operator==(const StepProfile&, const StepProfile&) = default;

 private:
  struct Step {
    Time start;  // inclusive; value holds until the next step's start
    std::int64_t value;
    friend bool operator==(const Step&, const Step&) = default;
  };

  // Sorted by start; front().start == 0; adjacent values distinct.
  std::vector<Step> steps_;

  // Index of the segment containing t (t >= 0).
  [[nodiscard]] std::size_t index_of(Time t) const noexcept;
  // Ensures a breakpoint exists exactly at t; returns its index.
  std::size_t split_at(Time t);
  // Erases the step at index i if it duplicates its left neighbour's value.
  void coalesce_at(std::size_t i);
};

}  // namespace resched
