#include "core/instance.hpp"

#include <algorithm>

#include "core/step_profile.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

std::int64_t Job::area() const { return checked_mul(q, p); }

Time Reservation::end() const { return checked_add(start, p); }

Instance::Instance(ProcCount m, std::vector<Job> jobs,
                   std::vector<Reservation> reservations)
    : m_(m), jobs_(std::move(jobs)), reservations_(std::move(reservations)) {
  RESCHED_REQUIRE_MSG(m_ >= 1, "instance needs at least one machine");
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const Job& job = jobs_[i];
    RESCHED_REQUIRE_MSG(job.id == static_cast<JobId>(i),
                        "job ids must be dense 0..n-1");
    RESCHED_REQUIRE_MSG(job.q >= 1 && job.q <= m_,
                        "job " + std::to_string(i) + " has q outside [1, m]");
    RESCHED_REQUIRE_MSG(job.p > 0,
                        "job " + std::to_string(i) + " has non-positive p");
    RESCHED_REQUIRE_MSG(job.release >= 0,
                        "job " + std::to_string(i) + " has negative release");
  }
  StepProfile unavailable(0);
  for (std::size_t i = 0; i < reservations_.size(); ++i) {
    const Reservation& resa = reservations_[i];
    RESCHED_REQUIRE_MSG(resa.id == static_cast<ReservationId>(i),
                        "reservation ids must be dense 0..n'-1");
    RESCHED_REQUIRE_MSG(
        resa.q >= 1 && resa.q <= m_,
        "reservation " + std::to_string(i) + " has q outside [1, m]");
    RESCHED_REQUIRE_MSG(
        resa.p > 0, "reservation " + std::to_string(i) + " has non-positive p");
    RESCHED_REQUIRE_MSG(
        resa.start >= 0, "reservation " + std::to_string(i) + " starts < 0");
    unavailable.add(resa.start, resa.end(), resa.q);
  }
  RESCHED_REQUIRE_MSG(unavailable.max_value() <= m_,
                      "reservations exceed machine capacity (infeasible "
                      "instance: U(t) > m)");
}

const Job& Instance::job(JobId id) const {
  RESCHED_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < jobs_.size());
  return jobs_[static_cast<std::size_t>(id)];
}

const Reservation& Instance::reservation(ReservationId id) const {
  RESCHED_REQUIRE(id >= 0 &&
                  static_cast<std::size_t>(id) < reservations_.size());
  return reservations_[static_cast<std::size_t>(id)];
}

std::int64_t Instance::total_work() const {
  std::int64_t work = 0;
  for (const Job& job : jobs_) work = checked_add(work, job.area());
  return work;
}

Time Instance::p_max() const noexcept {
  Time result = 0;
  for (const Job& job : jobs_) result = std::max(result, job.p);
  return result;
}

ProcCount Instance::q_max() const noexcept {
  ProcCount result = 0;
  for (const Job& job : jobs_) result = std::max(result, job.q);
  return result;
}

Time Instance::reservation_horizon() const noexcept {
  Time result = 0;
  for (const Reservation& resa : reservations_)
    result = std::max(result, checked_add(resa.start, resa.p));
  return result;
}

bool Instance::has_release_times() const noexcept {
  return std::any_of(jobs_.begin(), jobs_.end(),
                     [](const Job& job) { return job.release > 0; });
}

Instance Instance::with_job(ProcCount q, Time p, Time release,
                            std::string name) const {
  std::vector<Job> jobs = jobs_;
  jobs.push_back(Job{static_cast<JobId>(jobs.size()), q, p, release,
                     std::move(name)});
  return Instance(m_, std::move(jobs), reservations_);
}

}  // namespace resched
