#include "core/profile_allocator.hpp"

#include "core/availability.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

FreeProfile::FreeProfile(StepProfile free_capacity)
    : profile_(std::move(free_capacity)) {
  RESCHED_REQUIRE_MSG(profile_.min_value() >= 0,
                      "free capacity profile must be non-negative");
}

FreeProfile FreeProfile::for_instance(const Instance& instance) {
  return FreeProfile(availability_profile(instance));
}

ProcCount FreeProfile::capacity_at(Time t) const {
  return profile_.value_at(t);
}

bool FreeProfile::fits_at(Time t, ProcCount q, Time p) const {
  RESCHED_REQUIRE(t >= 0 && q >= 1 && p > 0);
  return profile_.min_in(t, checked_add(t, p)) >= q;
}

Time FreeProfile::earliest_fit(Time t0, ProcCount q, Time p) const {
  RESCHED_REQUIRE(t0 >= 0 && q >= 1 && p > 0);
  RESCHED_REQUIRE_MSG(
      profile_.final_value() >= q,
      "job can never fit: q exceeds the eventual free capacity");
  Time t = t0;
  while (true) {
    // First moment in the window where capacity dips below q.
    const Time deficient = profile_.first_below(t, checked_add(t, p), q);
    if (deficient == kTimeInfinity) return t;
    // The window can only become feasible once the deficient segment ends;
    // jump there and retry. Each jump lands on a breakpoint, and breakpoints
    // are finite, so this terminates (see candidate-start lemma in header).
    const Time resume = profile_.next_change_after(deficient);
    RESCHED_CHECK_MSG(resume > t, "earliest_fit failed to advance");
    t = resume;
  }
}

void FreeProfile::commit(Time t, ProcCount q, Time p) {
  RESCHED_REQUIRE_MSG(fits_at(t, q, p),
                      "commit of a job that does not fit at its start time");
  profile_.add(t, checked_add(t, p), -q);
}

void FreeProfile::uncommit(Time t, ProcCount q, Time p) {
  RESCHED_REQUIRE(t >= 0 && q >= 1 && p > 0);
  profile_.add(t, checked_add(t, p), q);
}

Time FreeProfile::next_change_after(Time t) const {
  return profile_.next_change_after(t);
}

}  // namespace resched
