#include "core/profile_allocator.hpp"

#include <algorithm>
#include <utility>

#include "core/availability.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

namespace {
// Floor of the frame-pool cap: enough for probe loops and shallow plans
// even before the open-stack high-water mark has been established.
constexpr std::size_t kMinPoolFrames = 8;
}  // namespace

FreeProfile::FreeProfile(StepProfile free_capacity)
    : profile_(std::move(free_capacity)) {
  RESCHED_REQUIRE_MSG(profile_.min_value() >= 0,
                      "free capacity profile must be non-negative");
}

FreeProfile FreeProfile::for_instance(const Instance& instance) {
  return FreeProfile(availability_profile(instance));
}

ProcCount FreeProfile::capacity_at(Time t) const {
  return profile_.value_at(t);
}

bool FreeProfile::fits_at(Time t, ProcCount q, Time p) const {
  RESCHED_REQUIRE(t >= 0 && q >= 1 && p > 0);
  // Equivalent to min_in(t, t+p) >= q, but bails out at the first deficient
  // segment (and descends the index on wide windows).
  return profile_.first_below(t, checked_add(t, p), q) == kTimeInfinity;
}

Time FreeProfile::earliest_fit(Time t0, ProcCount q, Time p) const {
  RESCHED_REQUIRE(t0 >= 0 && q >= 1 && p > 0);
  RESCHED_REQUIRE_MSG(
      profile_.final_value() >= q,
      "job can never fit: q exceeds the eventual free capacity");
  Time t = t0;
  while (true) {
    // First moment in the window where capacity dips below q; an O(log s)
    // tree descent on indexed profiles.
    const Time deficient = profile_.first_below(t, checked_add(t, p), q);
    if (deficient == kTimeInfinity) return t;
    // The window can only become feasible once capacity comes back up to q;
    // leap over the entire deficient run in one descent. The landing point
    // is a capacity-increase breakpoint (value < q just before it, >= q at
    // it), so the candidate-start lemma in the header still holds, and the
    // result is unchanged: the old breakpoint-by-breakpoint walk stopped at
    // exactly this position. final_value() >= q makes the leap finite, and
    // finitely many breakpoints make the loop terminate.
    const Time resume = profile_.first_at_least(deficient, q);
    RESCHED_CHECK_MSG(resume > t && resume != kTimeInfinity,
                      "earliest_fit failed to advance");
    t = resume;
  }
}

void FreeProfile::push_frame(Time t, ProcCount q, Time p, bool accepted) {
  OpenCommit frame;
  if (!frame_pool_.empty()) {
    // Recycle a whole retired frame: its undo record keeps the buffer
    // capacity of the widest window it ever held, so a warmed-up
    // plan/rewind cycle opens frames without touching the heap.
    frame = std::move(frame_pool_.back());
    frame_pool_.pop_back();
  } else {
    ++frame_misses_;
  }
  frame.serial = ++next_serial_;
  frame.t = t;
  frame.q = q;
  frame.p = p;
  frame.accepted = accepted;
  profile_.add_recorded(t, checked_add(t, p), -q, frame.undo);
  open_.push_back(std::move(frame));
  open_high_water_ = std::max(open_high_water_, open_.size());
}

void FreeProfile::commit(Time t, ProcCount q, Time p) {
  RESCHED_REQUIRE_MSG(fits_at(t, q, p),
                      "commit of a job that does not fit at its start time");
  if (retain_accepted_) {
    push_frame(t, q, p, /*accepted=*/true);
    return;
  }
  profile_.add(t, checked_add(t, p), -q);
  ++permanent_mutations_;
}

void FreeProfile::commit_fitted(Time t, ProcCount q, Time p) {
  RESCHED_ASSERT(fits_at(t, q, p));
  RESCHED_REQUIRE(t >= 0 && q >= 1 && p > 0);
  if (retain_accepted_) {
    push_frame(t, q, p, /*accepted=*/true);
    return;
  }
  profile_.add(t, checked_add(t, p), -q);
  ++permanent_mutations_;
}

FreeProfile::CommitToken FreeProfile::commit_tentative(Time t, ProcCount q,
                                                       Time p) {
  RESCHED_ASSERT(fits_at(t, q, p));
  RESCHED_REQUIRE(t >= 0 && q >= 1 && p > 0);
  push_frame(t, q, p, /*accepted=*/false);
  return CommitToken(next_serial_);
}

void FreeProfile::resolve_top(bool keep) {
  OpenCommit& top = open_.back();
  if (!keep) profile_.rollback(top.undo);
  // Adaptive cap: a rewind of the deepest plan ever carried recycles every
  // frame; anything past that depth would be dead weight.
  if (frame_pool_.size() < std::max(kMinPoolFrames, open_high_water_))
    frame_pool_.push_back(std::move(top));
  open_.pop_back();
}

void FreeProfile::rollback(CommitToken&& token) {
  RESCHED_CHECK_MSG(token.live_, "rollback of a dead commit token");
  RESCHED_CHECK_MSG(!open_.empty() && open_.back().serial == token.serial_,
                    "commit tokens resolve newest-first: this token is not "
                    "the newest open tentative commit");
  token.live_ = false;
  resolve_top(/*keep=*/false);
}

void FreeProfile::accept(CommitToken&& token) {
  RESCHED_CHECK_MSG(token.live_, "accept of a dead commit token");
  RESCHED_CHECK_MSG(!open_.empty() && open_.back().serial == token.serial_,
                    "commit tokens resolve newest-first: this token is not "
                    "the newest open tentative commit");
  token.live_ = false;
  if (retain_accepted_) {
    // Plan-recording mode: seal the decision but keep the frame (and its
    // undo) so rewind_to can invalidate the whole plan suffix later.
    open_.back().accepted = true;
    return;
  }
  resolve_top(/*keep=*/true);
  ++permanent_mutations_;
}

void FreeProfile::rewind_to(const Checkpoint& checkpoint) {
  RESCHED_CHECK_MSG(
      permanent_mutations_ == checkpoint.permanent,
      "rewind_to across a permanent capacity mutation: the checkpoint "
      "predates an adjust_capacity / unretained commit / compact_history");
  RESCHED_CHECK_MSG(
      open_.size() >= checkpoint.depth && next_serial_ >= checkpoint.serial,
      "rewind_to target is ahead of this profile's state");
  while (open_.size() > checkpoint.depth) {
    RESCHED_CHECK_MSG(open_.back().serial > checkpoint.serial,
                      "frame stack does not match the rewind checkpoint");
    resolve_top(/*keep=*/false);
  }
}

std::vector<FreeProfile::PlanStep> FreeProfile::plan_since(
    const Checkpoint& checkpoint) const {
  RESCHED_CHECK_MSG(open_.size() >= checkpoint.depth,
                    "plan_since checkpoint is ahead of this profile's state");
  std::vector<PlanStep> steps;
  steps.reserve(open_.size() - checkpoint.depth);
  for (std::size_t i = checkpoint.depth; i < open_.size(); ++i) {
    RESCHED_CHECK_MSG(open_[i].serial > checkpoint.serial,
                      "frame stack does not match the plan_since checkpoint");
    steps.push_back(
        PlanStep{open_[i].t, open_[i].q, open_[i].p, open_[i].accepted});
  }
  return steps;
}

void FreeProfile::set_retain_accepted(bool on) {
  RESCHED_REQUIRE_MSG(open_.empty(),
                      "toggling plan recording with open frames");
  retain_accepted_ = on;
}

void FreeProfile::adjust_capacity(Time from, Time to, std::int64_t delta) {
  RESCHED_REQUIRE(from >= 0 && to > from);
  RESCHED_CHECK_MSG(open_.empty(),
                    "adjust_capacity with open plan frames: rewind first");
  if (delta == 0) return;
  if (delta < 0)
    RESCHED_REQUIRE_MSG(
        profile_.min_in(from, to) >= -delta,
        "capacity adjustment would drive free capacity negative");
  profile_.add(from, to, delta);
  ++permanent_mutations_;
}

std::size_t FreeProfile::compact_history(Time t) {
  RESCHED_CHECK_MSG(open_.empty(),
                    "compact_history with open plan frames: rewind first");
  const std::size_t removed = profile_.compact_before(t);
  if (removed > 0) ++permanent_mutations_;
  return removed;
}

void FreeProfile::uncommit(Time t, ProcCount q, Time p) {
  RESCHED_REQUIRE(t >= 0 && q >= 1 && p > 0);
  // Checked wrapper over the undo log: an uncommit that does not reverse
  // the newest open tentative commit would add capacity that was never
  // allocated -- silently lifting the profile above the instance's
  // availability. Fail loudly instead.
  RESCHED_CHECK_MSG(!open_.empty(),
                    "uncommit with no open tentative commit to reverse");
  const OpenCommit& top = open_.back();
  RESCHED_CHECK_MSG(!top.accepted,
                    "uncommit would reverse an accepted plan decision; only "
                    "rewind_to may unwind those");
  RESCHED_CHECK_MSG(
      top.t == t && top.q == q && top.p == p,
      "uncommit(t, q, p) does not match the newest open tentative commit");
  resolve_top(/*keep=*/false);
}

Time FreeProfile::next_change_after(Time t) const {
  return profile_.next_change_after(t);
}

}  // namespace resched
