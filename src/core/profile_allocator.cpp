#include "core/profile_allocator.hpp"

#include "core/availability.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

FreeProfile::FreeProfile(StepProfile free_capacity)
    : profile_(std::move(free_capacity)) {
  RESCHED_REQUIRE_MSG(profile_.min_value() >= 0,
                      "free capacity profile must be non-negative");
}

FreeProfile FreeProfile::for_instance(const Instance& instance) {
  return FreeProfile(availability_profile(instance));
}

ProcCount FreeProfile::capacity_at(Time t) const {
  return profile_.value_at(t);
}

bool FreeProfile::fits_at(Time t, ProcCount q, Time p) const {
  RESCHED_REQUIRE(t >= 0 && q >= 1 && p > 0);
  // Equivalent to min_in(t, t+p) >= q, but bails out at the first deficient
  // segment (and descends the index on wide windows).
  return profile_.first_below(t, checked_add(t, p), q) == kTimeInfinity;
}

Time FreeProfile::earliest_fit(Time t0, ProcCount q, Time p) const {
  RESCHED_REQUIRE(t0 >= 0 && q >= 1 && p > 0);
  RESCHED_REQUIRE_MSG(
      profile_.final_value() >= q,
      "job can never fit: q exceeds the eventual free capacity");
  Time t = t0;
  while (true) {
    // First moment in the window where capacity dips below q; an O(log s)
    // tree descent on indexed profiles.
    const Time deficient = profile_.first_below(t, checked_add(t, p), q);
    if (deficient == kTimeInfinity) return t;
    // The window can only become feasible once capacity comes back up to q;
    // leap over the entire deficient run in one descent. The landing point
    // is a capacity-increase breakpoint (value < q just before it, >= q at
    // it), so the candidate-start lemma in the header still holds, and the
    // result is unchanged: the old breakpoint-by-breakpoint walk stopped at
    // exactly this position. final_value() >= q makes the leap finite, and
    // finitely many breakpoints make the loop terminate.
    const Time resume = profile_.first_at_least(deficient, q);
    RESCHED_CHECK_MSG(resume > t && resume != kTimeInfinity,
                      "earliest_fit failed to advance");
    t = resume;
  }
}

void FreeProfile::commit(Time t, ProcCount q, Time p) {
  RESCHED_REQUIRE_MSG(fits_at(t, q, p),
                      "commit of a job that does not fit at its start time");
  profile_.add(t, checked_add(t, p), -q);
}

void FreeProfile::uncommit(Time t, ProcCount q, Time p) {
  RESCHED_REQUIRE(t >= 0 && q >= 1 && p > 0);
  profile_.add(t, checked_add(t, p), q);
}

Time FreeProfile::next_change_after(Time t) const {
  return profile_.next_change_after(t);
}

}  // namespace resched
