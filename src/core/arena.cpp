#include "core/arena.hpp"

#include <cstring>

#include "util/require.hpp"

namespace resched {

namespace {

thread_local std::uint64_t g_alloc_count = 0;
thread_local std::uint64_t g_alloc_bytes = 0;

constexpr std::size_t kFirstChunkBytes = 1 << 12;  // 4 KiB
constexpr std::size_t kMaxChunkBytes = 1 << 20;    // growth cap per chunk

}  // namespace

void note_alloc(std::size_t bytes) noexcept {
  ++g_alloc_count;
  g_alloc_bytes += bytes;
}

std::uint64_t alloc_count() noexcept { return g_alloc_count; }

std::uint64_t alloc_bytes() noexcept { return g_alloc_bytes; }

Arena::~Arena() {
  for (const Chunk& chunk : chunks_) std::free(chunk.data);
}

void Arena::reset() noexcept {
  active_ = 0;
  offset_ = 0;
}

std::size_t Arena::capacity_bytes() const noexcept {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.size;
  return total;
}

void Arena::grow(std::size_t bytes) {
  // Reuse a retained chunk if the next one fits the request; otherwise
  // allocate a new chunk with geometric growth so a warmed-up arena
  // settles into a handful of chunks regardless of request pattern.
  while (active_ + 1 < chunks_.size()) {
    ++active_;
    offset_ = 0;
    if (chunks_[active_].size >= bytes) return;
  }
  std::size_t size = chunks_.empty() ? kFirstChunkBytes
                                     : std::min(chunks_.back().size * 2,
                                                kMaxChunkBytes);
  if (size < bytes) size = bytes;
  char* data = static_cast<char*>(std::malloc(size));
  RESCHED_CHECK_MSG(data != nullptr, "arena chunk allocation failed");
  note_alloc(size);
  chunks_.push_back(Chunk{data, size});
  active_ = chunks_.size() - 1;
  offset_ = 0;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  RESCHED_CHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                    "arena alignment must be a power of two");
  RESCHED_CHECK_MSG(align <= alignof(std::max_align_t),
                    "arena does not support over-aligned requests");
  if (bytes == 0) bytes = 1;
  if (chunks_.empty()) grow(bytes);
  std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
  if (aligned + bytes > chunks_[active_].size) {
    grow(bytes);
    aligned = 0;  // fresh chunks are max_align_t-aligned (malloc)
  }
  offset_ = aligned + bytes;
  return chunks_[active_].data + aligned;
}

}  // namespace resched
