#include "core/step_profile.hpp"

#include <algorithm>

#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

StepProfile::StepProfile(std::int64_t initial_value) {
  steps_.push_back(Step{Time{0}, initial_value});
}

std::size_t StepProfile::index_of(Time t) const noexcept {
  // Last index whose start is <= t; the front start of 0 and t >= 0 make the
  // "- 1" safe.
  const auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](Time value, const Step& step) { return value < step.start; });
  return static_cast<std::size_t>(it - steps_.begin()) - 1;
}

std::int64_t StepProfile::value_at(Time t) const {
  RESCHED_REQUIRE_MSG(t >= 0, "profile queried at negative time");
  return steps_[index_of(t)].value;
}

std::size_t StepProfile::split_at(Time t) {
  const std::size_t i = index_of(t);
  if (steps_[i].start == t) return i;
  steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                Step{t, steps_[i].value});
  return i + 1;
}

void StepProfile::coalesce_at(std::size_t i) {
  if (i == 0 || i >= steps_.size()) return;
  if (steps_[i].value == steps_[i - 1].value)
    steps_.erase(steps_.begin() + static_cast<std::ptrdiff_t>(i));
}

void StepProfile::add(Time from, Time to, std::int64_t delta) {
  RESCHED_REQUIRE_MSG(from >= 0, "profile add with negative start");
  if (from >= to || delta == 0) return;
  const std::size_t first = split_at(from);
  // Split the right edge only for finite windows; [from, kTimeInfinity)
  // means "from `from` onwards".
  const std::size_t last =
      (to >= kTimeInfinity) ? steps_.size() : split_at(to);
  for (std::size_t i = first; i < last; ++i)
    steps_[i].value = checked_add(steps_[i].value, delta);
  // Interior neighbours shifted by the same delta stay distinct, so only the
  // two window edges can need merging. Right edge first: erasing there does
  // not move `first`.
  coalesce_at(last);
  coalesce_at(first);
}

std::int64_t StepProfile::min_in(Time from, Time to) const {
  RESCHED_REQUIRE_MSG(from < to, "empty window in min_in");
  RESCHED_REQUIRE(from >= 0);
  std::size_t i = index_of(from);
  std::int64_t result = steps_[i].value;
  for (++i; i < steps_.size() && steps_[i].start < to; ++i)
    result = std::min(result, steps_[i].value);
  return result;
}

std::int64_t StepProfile::max_in(Time from, Time to) const {
  RESCHED_REQUIRE_MSG(from < to, "empty window in max_in");
  RESCHED_REQUIRE(from >= 0);
  std::size_t i = index_of(from);
  std::int64_t result = steps_[i].value;
  for (++i; i < steps_.size() && steps_[i].start < to; ++i)
    result = std::max(result, steps_[i].value);
  return result;
}

Time StepProfile::first_below(Time from, Time to,
                              std::int64_t threshold) const {
  RESCHED_REQUIRE(from >= 0);
  if (from >= to) return kTimeInfinity;
  std::size_t i = index_of(from);
  if (steps_[i].value < threshold) return from;
  for (++i; i < steps_.size() && steps_[i].start < to; ++i)
    if (steps_[i].value < threshold) return steps_[i].start;
  return kTimeInfinity;
}

Time StepProfile::next_change_after(Time t) const {
  RESCHED_REQUIRE(t >= 0);
  const std::size_t i = index_of(t);
  return i + 1 < steps_.size() ? steps_[i + 1].start : kTimeInfinity;
}

std::int64_t StepProfile::integral(Time from, Time to) const {
  RESCHED_REQUIRE(from >= 0 && from <= to);
  RESCHED_REQUIRE_MSG(to < kTimeInfinity, "integral over unbounded window");
  if (from == to) return 0;
  std::int64_t area = 0;
  std::size_t i = index_of(from);
  Time cursor = from;
  while (cursor < to) {
    const Time seg_end =
        (i + 1 < steps_.size()) ? std::min(steps_[i + 1].start, to) : to;
    area = checked_add(area, checked_mul(steps_[i].value, seg_end - cursor));
    cursor = seg_end;
    ++i;
  }
  return area;
}

Time StepProfile::time_to_accumulate(Time from, std::int64_t target) const {
  RESCHED_REQUIRE(from >= 0 && target >= 0);
  if (target == 0) return from;
  std::int64_t remaining = target;
  std::size_t i = index_of(from);
  Time cursor = from;
  while (true) {
    const bool is_last = (i + 1 == steps_.size());
    const Time seg_end = is_last ? kTimeInfinity : steps_[i + 1].start;
    const std::int64_t rate = steps_[i].value;
    if (rate > 0) {
      const Time needed = ceil_div(remaining, rate);
      if (seg_end >= kTimeInfinity || needed <= seg_end - cursor) {
        // cursor + needed can exceed INT64_MAX (e.g. target near the int64
        // ceiling over a rate-1 tail); mathematically that is simply "past
        // any horizon", so clamp instead of tripping the overflow check.
        return needed >= kTimeInfinity - cursor ? kTimeInfinity
                                                : cursor + needed;
      }
      remaining -= checked_mul(rate, seg_end - cursor);
    }
    if (is_last) return kTimeInfinity;  // rate <= 0 forever
    cursor = seg_end;
    ++i;
  }
}

bool StepProfile::is_non_increasing() const noexcept {
  for (std::size_t i = 1; i < steps_.size(); ++i)
    if (steps_[i].value > steps_[i - 1].value) return false;
  return true;
}

bool StepProfile::is_non_decreasing() const noexcept {
  for (std::size_t i = 1; i < steps_.size(); ++i)
    if (steps_[i].value < steps_[i - 1].value) return false;
  return true;
}

std::int64_t StepProfile::min_value() const noexcept {
  std::int64_t result = steps_.front().value;
  for (const Step& step : steps_) result = std::min(result, step.value);
  return result;
}

std::int64_t StepProfile::max_value() const noexcept {
  std::int64_t result = steps_.front().value;
  for (const Step& step : steps_) result = std::max(result, step.value);
  return result;
}

std::int64_t StepProfile::final_value() const noexcept {
  return steps_.back().value;
}

std::size_t StepProfile::segment_count() const noexcept {
  return steps_.size();
}

std::vector<StepProfile::Segment> StepProfile::segments() const {
  std::vector<Segment> out;
  out.reserve(steps_.size());
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const Time end =
        (i + 1 < steps_.size()) ? steps_[i + 1].start : kTimeInfinity;
    out.push_back(Segment{steps_[i].start, end, steps_[i].value});
  }
  return out;
}

std::vector<StepProfile::Segment> StepProfile::segments_in(Time from,
                                                           Time to) const {
  RESCHED_REQUIRE(from >= 0 && from <= to);
  std::vector<Segment> out;
  if (from == to) return out;
  std::size_t i = index_of(from);
  Time cursor = from;
  while (cursor < to && i < steps_.size()) {
    const Time seg_end =
        (i + 1 < steps_.size()) ? std::min(steps_[i + 1].start, to) : to;
    out.push_back(Segment{cursor, seg_end, steps_[i].value});
    cursor = seg_end;
    ++i;
  }
  return out;
}

StepProfile StepProfile::plus(const StepProfile& other) const {
  StepProfile result(0);
  result.steps_.clear();
  result.steps_.reserve(steps_.size() + other.steps_.size());
  std::size_t a = 0;
  std::size_t b = 0;
  std::int64_t va = steps_.front().value;
  std::int64_t vb = other.steps_.front().value;
  // Merge the two breakpoint sets; emitted starts are strictly increasing.
  while (a < steps_.size() || b < other.steps_.size()) {
    Time t;
    if (b == other.steps_.size() ||
        (a < steps_.size() && steps_[a].start <= other.steps_[b].start)) {
      t = steps_[a].start;
      va = steps_[a].value;
      if (b < other.steps_.size() && other.steps_[b].start == t)
        vb = other.steps_[b++].value;
      ++a;
    } else {
      t = other.steps_[b].start;
      vb = other.steps_[b++].value;
    }
    const std::int64_t v = checked_add(va, vb);
    if (result.steps_.empty() || result.steps_.back().value != v)
      result.steps_.push_back(Step{t, v});
  }
  return result;
}

StepProfile StepProfile::minus(const StepProfile& other) const {
  StepProfile negated = other;
  for (Step& step : negated.steps_) step.value = checked_neg(step.value);
  return plus(negated);
}

}  // namespace resched
