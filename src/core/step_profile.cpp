#include "core/step_profile.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

namespace {

// Saturating arithmetic for the index (invariant I4): padding leaves hold
// +/-inf sentinels, so tree math must clamp instead of wrapping. Exact for
// all |values| < 2^62.
std::int64_t sat_add(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t r = 0;
  if (!__builtin_add_overflow(a, b, &r)) return r;
  return b > 0 ? std::numeric_limits<std::int64_t>::max()
               : std::numeric_limits<std::int64_t>::min();
}

std::int64_t sat_sub(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t r = 0;
  if (!__builtin_sub_overflow(a, b, &r)) return r;
  return b < 0 ? std::numeric_limits<std::int64_t>::max()
               : std::numeric_limits<std::int64_t>::min();
}

// 128-bit checked helpers for the sum augmentation. A single int64 * int64
// product always fits (|v| * |len| < 2^126), so only additions can
// overflow; they report it instead of wrapping and the caller degrades to
// the exact linear scan (Index::sums_ok).
using Wide = __int128;

[[nodiscard]] bool wide_add(Wide& a, Wide b) noexcept {
  return !__builtin_add_overflow(a, b, &a);
}

Wide wide_mul(std::int64_t a, Time b) noexcept {
  return static_cast<Wide>(a) * static_cast<Wide>(b);
}

// Accumulated-lazy times span products: the lazy sum itself is wider than
// int64, so this multiply needs a real overflow check.
[[nodiscard]] bool wide_mul_add(Wide& acc, Wide a, Wide b) noexcept {
  Wide product = 0;
  if (__builtin_mul_overflow(a, b, &product)) return false;
  return !__builtin_add_overflow(acc, product, &acc);
}

constexpr std::int64_t kInt64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kInt64Max = std::numeric_limits<std::int64_t>::max();

}  // namespace

StepProfile::StepProfile(std::int64_t initial_value) {
  steps_.push_back(Time{0}, initial_value);
}

std::size_t StepProfile::index_of(Time t) const noexcept {
  // Last index whose start is <= t; the front start of 0 and t >= 0 make the
  // "- 1" safe.
  return steps_.upper_bound_start(t) - 1;
}

std::int64_t StepProfile::value_at(Time t) const {
  RESCHED_REQUIRE_MSG(t >= 0, "profile queried at negative time");
  return steps_.value(index_of(t));
}

std::size_t StepProfile::split_at(Time t) {
  const std::size_t i = index_of(t);
  if (steps_.start(i) == t) return i;
  steps_.insert(i + 1, t, steps_.value(i));
  return i + 1;
}

void StepProfile::coalesce_at(std::size_t i) {
  if (i == 0 || i >= steps_.size()) return;
  if (steps_.value(i) == steps_.value(i - 1)) steps_.erase(i);
}

void StepProfile::add(Time from, Time to, std::int64_t delta) {
  add_impl(from, to, delta, nullptr);
}

void StepProfile::add_recorded(Time from, Time to, std::int64_t delta,
                               Undo& undo) {
  add_impl(from, to, delta, &undo);
}

void StepProfile::add_impl(Time from, Time to, std::int64_t delta,
                           Undo* undo) {
  RESCHED_REQUIRE_MSG(from >= 0, "profile add with negative start");
  if (undo != nullptr) {
    // Disarm first: on a no-op or a thrown overflow the record stays dead.
    undo->live_ = false;
    undo->steps_.clear();
  }
  if (from >= to || delta == 0) return;
  // Strong exception guarantee: probe every affected segment's checked
  // addition before the first structural change. Without this, an overflow
  // mid-window would throw with partial deltas applied and the split
  // breakpoints uncoalesced -- a silently non-canonical profile.
  const std::size_t region = index_of(from);
  for (std::size_t i = region; i < steps_.size() && steps_.start(i) < to; ++i)
    (void)checked_add(steps_.value(i), delta);
  if (undo != nullptr) {
    // Everything the add can touch -- value shifts, the two edge splits and
    // the two edge coalesces -- lives in the steps whose start falls in
    // [window_lo, to], where window_lo is the start of the segment
    // containing `from`; steps outside stay bit-identical. Record them.
    undo->from_ = from;
    undo->to_ = to;
    undo->delta_ = delta;
    undo->window_lo_ = steps_.start(region);
    undo->left_value_ = region > 0 ? steps_.value(region - 1) : 0;
    const std::size_t prior_end =
        (to >= kTimeInfinity) ? steps_.size() : index_of(to) + 1;
    undo->steps_.assign_range(steps_, region, prior_end);
  }
  // split_at(from), with the binary search already paid for by the probe.
  std::size_t first = region;
  if (steps_.start(region) != from) {
    steps_.insert(region + 1, from, steps_.value(region));
    first = region + 1;
  }
  // Split the right edge only for finite windows; [from, kTimeInfinity)
  // means "from `from` onwards".
  const std::size_t last =
      (to >= kTimeInfinity) ? steps_.size() : split_at(to);
  // Validated above: the split pieces carry the same values that were probed.
  for (std::size_t i = first; i < last; ++i) steps_.add_value(i, delta);
  // Interior neighbours shifted by the same delta stay distinct, so only the
  // two window edges can need merging. Right edge first: erasing there does
  // not move `first`.
  coalesce_at(last);
  coalesce_at(first);
  if (undo != nullptr) {
    undo->patched_index_ = index_apply_add(from, to, delta);
    undo->live_ = true;
  } else {
    (void)index_apply_add(from, to, delta);
  }
  ++version_;
}

void StepProfile::rollback(Undo& undo) {
  RESCHED_CHECK_MSG(undo.live_, "rollback of a dead or spent undo record");
  // Locate the recorded region in the current store. The first step with
  // start >= window_lo begins it (the step at window_lo itself may have
  // been coalesced away by the recorded add); the first step with
  // start > to ends it.
  const std::size_t lo = steps_.lower_bound_start(undo.window_lo_);
  const std::size_t hi =
      (undo.to_ >= kTimeInfinity) ? steps_.size() : index_of(undo.to_) + 1;
  // The region must be exactly what the recorded add left there: anything
  // else means a later overlapping mutation is still in effect (or the
  // record belongs to another profile) and "reverting" would corrupt the
  // function -- the silent capacity inflation this layer exists to kill.
  // Verified by replaying the add's transformation of the few recorded
  // steps (split at the window edges, shift by delta, coalesce into the
  // recorded left neighbour) against the current region. The left
  // neighbour's value is checked against the record first: it anchors the
  // coalesce replay, and a later mutation that changed it (e.g. one that
  // coalesced across this record's window_lo boundary) would otherwise
  // make the replay accept -- and splice back -- a non-canonical region.
  // A failed rollback consumes nothing: undo the blocking mutation first
  // and the record is usable again.
  const SegStore& prior = undo.steps_;
  bool matches = hi >= lo && hi <= steps_.size();
  const bool have_left = undo.window_lo_ > 0;
  if (have_left)
    matches = matches && lo > 0 && steps_.value(lo - 1) == undo.left_value_;
  else
    matches = matches && lo == 0;
  std::size_t cursor = lo;
  bool left_known = have_left;
  std::int64_t left_value = undo.left_value_;
  const auto expect = [&](Time start, std::int64_t value) {
    if (left_known && value == left_value) return;  // coalesced left
    if (cursor >= hi || steps_.start(cursor) != start ||
        steps_.value(cursor) != value) {
      matches = false;
      return;
    }
    ++cursor;
    left_known = true;
    left_value = value;
  };
  // Leading unmodified piece of the split segment containing `from`.
  if (undo.from_ > undo.window_lo_) expect(prior.start(0), prior.value(0));
  // The shifted pieces over [from, to).
  for (std::size_t j = 0; j < prior.size() && matches; ++j) {
    if (prior.start(j) >= undo.to_) break;
    expect(std::max(prior.start(j), undo.from_),
        // resched-lint: time-arith-audited(verify-mode replay of a checked-path delta)
           prior.value(j) + undo.delta_);
  }
  // Trailing unmodified piece from `to` on (the last recorded step is the
  // one containing -- or starting at -- `to`).
  if (undo.to_ < kTimeInfinity) expect(undo.to_, prior.back_value());
  if (cursor != hi) matches = false;
  RESCHED_CHECK_MSG(matches,
                    "rollback does not reverse the newest mutation of its "
                    "region");
  undo.live_ = false;
  // Splice the prior steps back in: one capacity check plus one memmove per
  // array (SegStore::replace_range), never add's probe/split/coalesce path.
  steps_.replace_range(lo, hi, prior);
  index_rollback_patch(undo);
  ++version_;
}

std::size_t StepProfile::compact_before(Time t) {
  RESCHED_REQUIRE_MSG(t >= 0, "compact_before with negative time");
  const std::size_t i = index_of(t);
  if (i == 0) return 0;
  // The suffix [i, ...) already starts with the segment containing t;
  // promoting it to cover [0, t) keeps canonical form (its value differs
  // from its right neighbour's by the invariant on steps_).
  steps_.erase(0, i);
  steps_.set_start(0, 0);
  drop_index();
  ++version_;
  return i;
}

// ---------------------------------------------------------------------------
// Linear-scan query fallbacks (exact; used below kMinIndexedSegments and for
// the partial boundary leaves of indexed queries). Each hoists the SoA value
// array once and streams it contiguously -- the scan-heavy leaf walks this
// layout exists for.
// ---------------------------------------------------------------------------

std::int64_t StepProfile::scan_min_at(std::size_t i, Time to) const {
  const Time* times = steps_.times_data();
  const std::int64_t* values = steps_.values_data();
  std::int64_t result = values[i];
  for (++i; i < steps_.size() && times[i] < to; ++i)
    result = std::min(result, values[i]);
  return result;
}

std::int64_t StepProfile::scan_max_at(std::size_t i, Time to) const {
  const Time* times = steps_.times_data();
  const std::int64_t* values = steps_.values_data();
  std::int64_t result = values[i];
  for (++i; i < steps_.size() && times[i] < to; ++i)
    result = std::max(result, values[i]);
  return result;
}

Time StepProfile::scan_first_below_at(std::size_t i, Time from, Time to,
                                      std::int64_t threshold) const {
  const Time* times = steps_.times_data();
  const std::int64_t* values = steps_.values_data();
  if (values[i] < threshold) return from;
  for (++i; i < steps_.size() && times[i] < to; ++i)
    if (values[i] < threshold) return times[i];
  return kTimeInfinity;
}

Time StepProfile::scan_first_at_least_at(std::size_t i, Time from,
                                         std::int64_t threshold) const {
  const Time* times = steps_.times_data();
  const std::int64_t* values = steps_.values_data();
  if (values[i] >= threshold) return from;
  for (++i; i < steps_.size(); ++i)
    if (values[i] >= threshold) return times[i];
  return kTimeInfinity;
}

std::int64_t StepProfile::scan_min(Time from, Time to) const {
  return scan_min_at(index_of(from), to);
}

std::int64_t StepProfile::scan_max(Time from, Time to) const {
  return scan_max_at(index_of(from), to);
}

Time StepProfile::scan_first_below(Time from, Time to,
                                   std::int64_t threshold) const {
  return scan_first_below_at(index_of(from), from, to, threshold);
}

Time StepProfile::scan_first_at_least(Time from,
                                      std::int64_t threshold) const {
  return scan_first_at_least_at(index_of(from), from, threshold);
}

StepProfile::Wide StepProfile::scan_integral_at(std::size_t i, Time from,
                                                Time to, bool& ok) const {
  Wide area = 0;
  Time cursor = from;
  while (cursor < to) {
    const Time seg_end =
        (i + 1 < steps_.size()) ? std::min(steps_.start(i + 1), to) : to;
    // resched-lint: time-arith-audited(wide_add/wide_mul detect 128-bit overflow here)
    if (!wide_add(area, wide_mul(steps_.value(i), seg_end - cursor)))
      ok = false;
    cursor = seg_end;
    ++i;
  }
  return area;
}

Time StepProfile::scan_accumulate(std::size_t i, Time cursor, Time stop,
                                  std::int64_t& remaining) const {
  while (true) {
    if (cursor >= stop) return kTimeInfinity;  // bound hit; remaining updated
    const bool is_last = (i + 1 == steps_.size());
    const Time seg_end =
        std::min(is_last ? kTimeInfinity : steps_.start(i + 1), stop);
    const std::int64_t rate = steps_.value(i);
    if (rate > 0) {
      const Time needed = ceil_div(remaining, rate);
      // resched-lint: time-arith-audited(seg_end < kTimeInfinity here; the span fits int64)
      if (seg_end >= kTimeInfinity || needed <= seg_end - cursor) {
        // cursor + needed can exceed INT64_MAX (e.g. target near the int64
        // ceiling over a rate-1 tail); mathematically that is simply "past
        // any horizon", so clamp instead of tripping the overflow check.
        // resched-lint: time-arith-audited(guarded by this very kTimeInfinity comparison)
        return needed >= kTimeInfinity - cursor ? kTimeInfinity
        // resched-lint: time-arith-audited(reached only when needed < kTimeInfinity - cursor)
                                                : cursor + needed;
      }
      // Never overflows: the subtraction only runs when rate * len <
      // remaining <= INT64_MAX (a crossing segment returned above).
      // resched-lint: time-arith-audited(rate * span < remaining <= INT64_MAX on this branch)
      remaining -= checked_mul(rate, seg_end - cursor);
    }
    if (seg_end >= kTimeInfinity) return kTimeInfinity;  // deficient tail
    cursor = seg_end;
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Segment-tree index (invariants I1-I5 in the header).
// ---------------------------------------------------------------------------

std::unique_ptr<StepProfile::Index> StepProfile::build_index() const {
  index_builds_.fetch_add(1, std::memory_order_relaxed);
  auto out = std::make_unique<Index>();
  Index& ix = *out;
  const std::size_t leaves = steps_.size();
  // SoA payoff: the breakpoint snapshot is one contiguous copy, and the
  // leaf fill below streams the value array without striding over starts.
  const Time* times = steps_.times_data();
  const std::int64_t* values = steps_.values_data();
  ix.times.assign(times, times + leaves);
  ix.cap = std::bit_ceil(leaves);
  ix.min.assign(2 * ix.cap, std::numeric_limits<std::int64_t>::max());
  ix.max.assign(2 * ix.cap, std::numeric_limits<std::int64_t>::min());
  ix.lazy.assign(2 * ix.cap, 0);
  // Sum augmentation: len is the finite span length under each node; the
  // unbounded last leaf and the padding leaves carry 0 so they never
  // contribute to a range sum (invariant I4).
  ix.sum.assign(2 * ix.cap, 0);
  ix.len.assign(2 * ix.cap, 0);
  ix.sums_ok = true;
  for (std::size_t i = 0; i < leaves; ++i) {
    ix.min[ix.cap + i] = values[i];
    ix.max[ix.cap + i] = values[i];
    if (i + 1 < leaves) {
      ix.len[ix.cap + i] = times[i + 1] - times[i];
      ix.sum[ix.cap + i] = wide_mul(values[i], ix.len[ix.cap + i]);
    }
  }
  for (std::size_t v = ix.cap - 1; v >= 1; --v) {
    ix.min[v] = std::min(ix.min[2 * v], ix.min[2 * v + 1]);
    ix.max[v] = std::max(ix.max[2 * v], ix.max[2 * v + 1]);
    ix.len[v] = ix.len[2 * v] + ix.len[2 * v + 1];
    ix.sum[v] = ix.sum[2 * v];
    if (!wide_add(ix.sum[v], ix.sum[2 * v + 1])) ix.sums_ok = false;
  }
  // Amortization: after ~s incremental adds a boundary leaf's span may hold
  // enough real segments that recompute scans stop being cheap; an O(s)
  // rebuild every Theta(s) adds keeps everything O(1) amortized.
  ix.budget = std::max<std::size_t>(64, leaves);
  return out;
}

const StepProfile::Index& StepProfile::ensure_index() const {
  Index* snap = index_.load(std::memory_order_acquire);
  if (snap) return *snap;
  std::unique_ptr<Index> built = build_index();
  // Install with a single compare-exchange: the first builder wins, and a
  // losing racer deletes its own build and adopts the winner's snapshot
  // (invariant I5 -- both were built from the same steps_, which cannot
  // change while const reads are in flight, so they answer identically).
  Index* expected = nullptr;
  if (index_.compare_exchange_strong(expected, built.get(),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire))
    return *built.release();
  return *expected;
}

Time StepProfile::index_leaf_end(const Index& ix, std::size_t j) {
  return j + 1 < ix.times.size() ? ix.times[j + 1] : kTimeInfinity;
}

std::size_t StepProfile::index_leaf_of(const Index& ix, Time t) {
  const auto it = std::upper_bound(ix.times.begin(), ix.times.end(), t);
  return static_cast<std::size_t>(it - ix.times.begin()) - 1;
}

StepProfile::LeafWindow StepProfile::index_leaf_window(const Index& ix,
                                                       Time from, Time to) {
  LeafWindow window{};
  window.lo_leaf = index_leaf_of(ix, from);
  window.left_partial = from > ix.times[window.lo_leaf];
  if (to >= kTimeInfinity) {
    // [from, +inf) covers the unbounded last leaf in full.
    window.hi_leaf = ix.times.size() - 1;
    window.right_partial = false;
  } else {
    window.hi_leaf = index_leaf_of(ix, to);
    if (ix.times[window.hi_leaf] == to) {
      // to > from >= times[lo_leaf] makes hi_leaf >= lo_leaf + 1 here.
      window.hi_leaf -= 1;
      window.right_partial = false;
    } else {
      window.right_partial = index_leaf_end(ix, window.hi_leaf) > to;
    }
  }
  return window;
}

void StepProfile::index_recompute_leaf(Index& ix, std::size_t j) const {
  const Time end = index_leaf_end(ix, j);
  const Time* times = steps_.times_data();
  const std::int64_t* values = steps_.values_data();
  std::size_t i = index_of(ix.times[j]);
  std::int64_t lo = values[i];
  std::int64_t hi = values[i];
  // Exact integral over the leaf span. The unbounded last leaf has finite
  // length 0 by invariant I4, so its sum stays 0 regardless of content.
  Wide area = 0;
  if (end < kTimeInfinity) {
    bool ok = true;
    area = scan_integral_at(i, ix.times[j], end, ok);
    if (!ok) ix.sums_ok = false;
  }
  for (++i; i < steps_.size() && times[i] < end; ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  // Descend to the leaf, accumulating the pending lazy of strict ancestors;
  // the stored leaf value must exclude it (invariant I2).
  std::size_t node = 1;
  std::size_t node_lo = 0;
  std::size_t node_hi = ix.cap - 1;
  std::int64_t acc = 0;
  Wide acc_wide = 0;
  while (node_lo != node_hi) {
    acc = sat_add(acc, ix.lazy[node]);
    if (!wide_add(acc_wide, static_cast<Wide>(ix.lazy[node])))
      ix.sums_ok = false;
    const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
    if (j <= mid) {
      node = 2 * node;
      node_hi = mid;
    } else {
      node = 2 * node + 1;
      node_lo = mid + 1;
    }
  }
  ix.min[node] = sat_sub(lo, acc);
  ix.max[node] = sat_sub(hi, acc);
  ix.sum[node] = area;
  if (!wide_mul_add(ix.sum[node], -acc_wide, static_cast<Wide>(ix.len[node])))
    ix.sums_ok = false;
  while (node > 1) {
    node /= 2;
    ix.min[node] = sat_add(std::min(ix.min[2 * node], ix.min[2 * node + 1]),
                           ix.lazy[node]);
    ix.max[node] = sat_add(std::max(ix.max[2 * node], ix.max[2 * node + 1]),
                           ix.lazy[node]);
    ix.sum[node] = ix.sum[2 * node];
    if (!wide_add(ix.sum[node], ix.sum[2 * node + 1]) ||
        !wide_add(ix.sum[node], wide_mul(ix.lazy[node], ix.len[node])))
      ix.sums_ok = false;
  }
}

void StepProfile::index_range_add(Index& ix, std::size_t node,
                                  std::size_t node_lo, std::size_t node_hi,
                                  std::size_t lo, std::size_t hi,
                                  std::int64_t delta) {
  if (hi < node_lo || node_hi < lo) return;
  if (lo <= node_lo && node_hi <= hi) {
    ix.min[node] = sat_add(ix.min[node], delta);
    ix.max[node] = sat_add(ix.max[node], delta);
    if (!wide_add(ix.sum[node], wide_mul(delta, ix.len[node])))
      ix.sums_ok = false;
    if (node_lo != node_hi) ix.lazy[node] = sat_add(ix.lazy[node], delta);
    return;
  }
  const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
  index_range_add(ix, 2 * node, node_lo, mid, lo, hi, delta);
  index_range_add(ix, 2 * node + 1, mid + 1, node_hi, lo, hi, delta);
  ix.min[node] = sat_add(std::min(ix.min[2 * node], ix.min[2 * node + 1]),
                         ix.lazy[node]);
  ix.max[node] = sat_add(std::max(ix.max[2 * node], ix.max[2 * node + 1]),
                         ix.lazy[node]);
  ix.sum[node] = ix.sum[2 * node];
  if (!wide_add(ix.sum[node], ix.sum[2 * node + 1]) ||
      !wide_add(ix.sum[node], wide_mul(ix.lazy[node], ix.len[node])))
    ix.sums_ok = false;
}

void StepProfile::index_patch_leaves(Index& ix, Time from, Time to,
                                     std::int64_t delta) const {
  const LeafWindow window = index_leaf_window(ix, from, to);
  // A leaf is recomputed iff the window covers it only partially; that is
  // the lone leaf itself when the whole window sits inside one leaf.
  const bool lo_partial =
      window.left_partial ||
      (window.lo_leaf == window.hi_leaf && window.right_partial);
  const bool hi_partial =
      window.right_partial && window.hi_leaf != window.lo_leaf;
  if (lo_partial) index_recompute_leaf(ix, window.lo_leaf);
  if (hi_partial) index_recompute_leaf(ix, window.hi_leaf);
  const std::ptrdiff_t full_lo =
      static_cast<std::ptrdiff_t>(window.lo_leaf) + (lo_partial ? 1 : 0);
  const std::ptrdiff_t full_hi =
      static_cast<std::ptrdiff_t>(window.hi_leaf) - (hi_partial ? 1 : 0);
  if (full_lo <= full_hi)
    index_range_add(ix, 1, 0, ix.cap - 1, static_cast<std::size_t>(full_lo),
                    static_cast<std::size_t>(full_hi), delta);
}

const StepProfile::Index* StepProfile::index_apply_add(Time from, Time to,
                                                       std::int64_t delta) {
  // add() implies exclusive access (invariant I5): no reader holds the
  // snapshot while a mutation runs, so patching it in place is safe and
  // keeps the index warm across the add stream.
  Index* const snap = index_.load(std::memory_order_relaxed);
  if (snap == nullptr) return nullptr;
  if (steps_.size() < kMinIndexedSegments || snap->budget == 0) {
    drop_index();
    return nullptr;
  }
  --snap->budget;
  index_patch_leaves(*snap, from, to, delta);
  return snap;
}

void StepProfile::index_rollback_patch(const Undo& undo) {
  // Same exclusive-access argument as index_apply_add. The snapshot seen
  // here may postdate the recorded add (a const query built it from the
  // post-state mid-probe); the patch below is exact for any snapshot, since
  // boundary leaves are recomputed from the (already restored) steps_ and
  // fully covered leaves receive the exact inverse lazy addend.
  Index* const snap = index_.load(std::memory_order_relaxed);
  if (snap == nullptr) return;
  if (steps_.size() < kMinIndexedSegments) {
    drop_index();
    return;
  }
  if (undo.delta_ == kInt64Min) {
    // -delta is unrepresentable, so an exact inverse lazy-add is not
    // possible; such magnitudes exceed the tree's exact range anyway
    // (invariant I4). Rebuild from the restored segments instead.
    drop_index();
    return;
  }
  // Budget-neutral (invariant I6): no unit consumed, and the unit the
  // recorded add spent is refunded -- but only to the very snapshot that
  // spent it; a snapshot rebuilt mid-pair starts with a full budget and
  // must not be over-credited.
  if (snap == undo.patched_index_) ++snap->budget;
  index_patch_leaves(*snap, undo.from_, undo.to_, -undo.delta_);
}

std::int64_t StepProfile::index_range_min(const Index& ix, std::size_t node,
                                          std::size_t node_lo,
                                          std::size_t node_hi, std::size_t lo,
                                          std::size_t hi, std::int64_t acc) {
  if (hi < node_lo || node_hi < lo)
    return std::numeric_limits<std::int64_t>::max();
  if (lo <= node_lo && node_hi <= hi) return sat_add(ix.min[node], acc);
  const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
  const std::int64_t child_acc = sat_add(acc, ix.lazy[node]);
  return std::min(
      index_range_min(ix, 2 * node, node_lo, mid, lo, hi, child_acc),
      index_range_min(ix, 2 * node + 1, mid + 1, node_hi, lo, hi, child_acc));
}

std::int64_t StepProfile::index_range_max(const Index& ix, std::size_t node,
                                          std::size_t node_lo,
                                          std::size_t node_hi, std::size_t lo,
                                          std::size_t hi, std::int64_t acc) {
  if (hi < node_lo || node_hi < lo)
    return std::numeric_limits<std::int64_t>::min();
  if (lo <= node_lo && node_hi <= hi) return sat_add(ix.max[node], acc);
  const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
  const std::int64_t child_acc = sat_add(acc, ix.lazy[node]);
  return std::max(
      index_range_max(ix, 2 * node, node_lo, mid, lo, hi, child_acc),
      index_range_max(ix, 2 * node + 1, mid + 1, node_hi, lo, hi, child_acc));
}

std::size_t StepProfile::index_first_leaf_below(
    const Index& ix, std::size_t node, std::size_t node_lo,
    std::size_t node_hi, std::size_t lo, std::size_t hi,
    std::int64_t threshold, std::int64_t acc) {
  if (hi < node_lo || node_hi < lo) return kNoLeaf;
  if (sat_add(ix.min[node], acc) >= threshold) return kNoLeaf;
  if (node_lo == node_hi) return node_lo;
  const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
  const std::int64_t child_acc = sat_add(acc, ix.lazy[node]);
  const std::size_t left = index_first_leaf_below(ix, 2 * node, node_lo, mid,
                                                  lo, hi, threshold,
                                                  child_acc);
  if (left != kNoLeaf) return left;
  return index_first_leaf_below(ix, 2 * node + 1, mid + 1, node_hi, lo, hi,
                                threshold, child_acc);
}

std::size_t StepProfile::index_first_leaf_at_least(
    const Index& ix, std::size_t node, std::size_t node_lo,
    std::size_t node_hi, std::size_t lo, std::size_t hi,
    std::int64_t threshold, std::int64_t acc) {
  if (hi < node_lo || node_hi < lo) return kNoLeaf;
  if (sat_add(ix.max[node], acc) < threshold) return kNoLeaf;
  if (node_lo == node_hi) return node_lo;
  const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
  const std::int64_t child_acc = sat_add(acc, ix.lazy[node]);
  const std::size_t left = index_first_leaf_at_least(
      ix, 2 * node, node_lo, mid, lo, hi, threshold, child_acc);
  if (left != kNoLeaf) return left;
  return index_first_leaf_at_least(ix, 2 * node + 1, mid + 1, node_hi, lo,
                                   hi, threshold, child_acc);
}

StepProfile::Wide StepProfile::index_range_sum(const Index& ix,
                                               std::size_t node,
                                               std::size_t node_lo,
                                               std::size_t node_hi,
                                               std::size_t lo, std::size_t hi,
                                               Wide acc, bool& ok) {
  if (hi < node_lo || node_hi < lo) return 0;
  if (lo <= node_lo && node_hi <= hi) {
    Wide result = ix.sum[node];
    if (!wide_mul_add(result, acc, static_cast<Wide>(ix.len[node])))
      ok = false;
    return result;
  }
  const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
  Wide child_acc = acc;
  if (!wide_add(child_acc, static_cast<Wide>(ix.lazy[node]))) ok = false;
  Wide result =
      index_range_sum(ix, 2 * node, node_lo, mid, lo, hi, child_acc, ok);
  if (!wide_add(result, index_range_sum(ix, 2 * node + 1, mid + 1, node_hi,
                                        lo, hi, child_acc, ok)))
    ok = false;
  return result;
}

Time StepProfile::index_accumulate(const Index& ix, std::size_t node,
                                   std::size_t node_lo, std::size_t node_hi,
                                   std::size_t lo, std::size_t hi,
                                   std::int64_t acc, Wide acc_wide,
                                   std::int64_t& remaining, bool& ok) const {
  if (hi < node_lo || node_hi < lo || !ok) return kTimeInfinity;
  const bool covered = lo <= node_lo && node_hi <= hi;
  if (covered && sat_add(ix.min[node], acc) >= 0) {
    // Non-negative span: the positive-rate accumulation equals the range
    // sum and the running total is monotone, so the whole node can be
    // consumed (or identified as containing the crossing) in O(1).
    Wide total = ix.sum[node];
    if (!wide_mul_add(total, acc_wide, static_cast<Wide>(ix.len[node]))) {
      ok = false;
      return kTimeInfinity;
    }
    if (total < static_cast<Wide>(remaining)) {
      // total >= 0 and < remaining <= INT64_MAX: the narrowing is exact.
      // resched-lint: time-arith-audited(total < remaining <= INT64_MAX: narrowing is exact)
      remaining -= static_cast<std::int64_t>(total);
      return kTimeInfinity;
    }
    if (node_lo == node_hi) {
      const Time found =
          scan_accumulate(index_of(ix.times[node_lo]), ix.times[node_lo],
                          index_leaf_end(ix, node_lo), remaining);
      RESCHED_CHECK_MSG(found != kTimeInfinity,
                        "index/leaf disagreement in time_to_accumulate");
      return found;
    }
  } else if (node_lo == node_hi) {
    // Leaf containing negative values: its range sum under-counts the
    // positive-rate accumulation, so walk the real segments instead.
    return scan_accumulate(index_of(ix.times[node_lo]), ix.times[node_lo],
                           index_leaf_end(ix, node_lo), remaining);
  }
  const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
  const std::int64_t child_acc = sat_add(acc, ix.lazy[node]);
  Wide child_wide = acc_wide;
  if (!wide_add(child_wide, static_cast<Wide>(ix.lazy[node]))) {
    ok = false;
    return kTimeInfinity;
  }
  const Time left = index_accumulate(ix, 2 * node, node_lo, mid, lo, hi,
                                     child_acc, child_wide, remaining, ok);
  if (left != kTimeInfinity || !ok) return left;
  return index_accumulate(ix, 2 * node + 1, mid + 1, node_hi, lo, hi,
                          child_acc, child_wide, remaining, ok);
}

// ---------------------------------------------------------------------------
// Windowed queries: indexed descent with linear-scan boundary leaves.
// ---------------------------------------------------------------------------

std::int64_t StepProfile::min_in(Time from, Time to) const {
  RESCHED_REQUIRE_MSG(from < to, "empty window in min_in");
  RESCHED_REQUIRE(from >= 0);
  // Bounded scan: answer narrow windows at exactly the flat-array cost and
  // fall through to the tree only when the window proves wide. The at most
  // kIndexedLeafCutoff wasted visits are dwarfed by what the descent saves.
  const Time* times = steps_.times_data();
  const std::int64_t* values = steps_.values_data();
  const std::size_t lo_idx = index_of(from);
  const std::size_t scan_stop =
      std::min(steps_.size(), lo_idx + kIndexedLeafCutoff + 1);
  std::int64_t result = values[lo_idx];
  std::size_t i = lo_idx + 1;
  for (; i < scan_stop && times[i] < to; ++i)
    result = std::min(result, values[i]);
  if (i == steps_.size() || times[i] >= to) return result;
  // Wide window: resume with the tree from where the scan stopped, so the
  // scanned prefix is not wasted work.
  return std::min(result, indexed_min_in(times[i], to, i));
}

std::int64_t StepProfile::indexed_min_in(Time from, Time to,
                                         std::size_t lo_idx) const {
  const Index& ix = ensure_index();
  const LeafWindow window = index_leaf_window(ix, from, to);
  if (window.lo_leaf == window.hi_leaf) return scan_min_at(lo_idx, to);
  std::int64_t result = std::numeric_limits<std::int64_t>::max();
  if (window.left_partial)
    result = scan_min_at(lo_idx, index_leaf_end(ix, window.lo_leaf));
  if (window.right_partial)
    result = std::min(result, scan_min(ix.times[window.hi_leaf], to));
  const std::ptrdiff_t full_lo = static_cast<std::ptrdiff_t>(window.lo_leaf) +
                                 (window.left_partial ? 1 : 0);
  const std::ptrdiff_t full_hi = static_cast<std::ptrdiff_t>(window.hi_leaf) -
                                 (window.right_partial ? 1 : 0);
  if (full_lo <= full_hi)
    result = std::min(
        result, index_range_min(ix, 1, 0, ix.cap - 1,
                                static_cast<std::size_t>(full_lo),
                                static_cast<std::size_t>(full_hi), 0));
  return result;
}

std::int64_t StepProfile::max_in(Time from, Time to) const {
  RESCHED_REQUIRE_MSG(from < to, "empty window in max_in");
  RESCHED_REQUIRE(from >= 0);
  const Time* times = steps_.times_data();
  const std::int64_t* values = steps_.values_data();
  const std::size_t lo_idx = index_of(from);
  const std::size_t scan_stop =
      std::min(steps_.size(), lo_idx + kIndexedLeafCutoff + 1);
  std::int64_t result = values[lo_idx];
  std::size_t i = lo_idx + 1;
  for (; i < scan_stop && times[i] < to; ++i)
    result = std::max(result, values[i]);
  if (i == steps_.size() || times[i] >= to) return result;
  return std::max(result, indexed_max_in(times[i], to, i));
}

std::int64_t StepProfile::indexed_max_in(Time from, Time to,
                                         std::size_t lo_idx) const {
  const Index& ix = ensure_index();
  const LeafWindow window = index_leaf_window(ix, from, to);
  if (window.lo_leaf == window.hi_leaf) return scan_max_at(lo_idx, to);
  std::int64_t result = std::numeric_limits<std::int64_t>::min();
  if (window.left_partial)
    result = scan_max_at(lo_idx, index_leaf_end(ix, window.lo_leaf));
  if (window.right_partial)
    result = std::max(result, scan_max(ix.times[window.hi_leaf], to));
  const std::ptrdiff_t full_lo = static_cast<std::ptrdiff_t>(window.lo_leaf) +
                                 (window.left_partial ? 1 : 0);
  const std::ptrdiff_t full_hi = static_cast<std::ptrdiff_t>(window.hi_leaf) -
                                 (window.right_partial ? 1 : 0);
  if (full_lo <= full_hi)
    result = std::max(
        result, index_range_max(ix, 1, 0, ix.cap - 1,
                                static_cast<std::size_t>(full_lo),
                                static_cast<std::size_t>(full_hi), 0));
  return result;
}

Time StepProfile::first_below(Time from, Time to,
                              std::int64_t threshold) const {
  RESCHED_REQUIRE(from >= 0);
  if (from >= to) return kTimeInfinity;
  const Time* times = steps_.times_data();
  const std::int64_t* values = steps_.values_data();
  const std::size_t lo_idx = index_of(from);
  if (values[lo_idx] < threshold) return from;
  const std::size_t scan_stop =
      std::min(steps_.size(), lo_idx + kIndexedLeafCutoff + 1);
  std::size_t i = lo_idx + 1;
  for (; i < scan_stop && times[i] < to; ++i)
    if (values[i] < threshold) return times[i];
  if (i == steps_.size() || times[i] >= to) return kTimeInfinity;
  // The scanned prefix is clean; the tree takes over from the stop point.
  return indexed_first_below(times[i], to, threshold, i);
}

Time StepProfile::indexed_first_below(Time from, Time to,
                                      std::int64_t threshold,
                                      std::size_t lo_idx) const {
  const Index& ix = ensure_index();
  const LeafWindow window = index_leaf_window(ix, from, to);
  if (window.lo_leaf == window.hi_leaf)
    return scan_first_below_at(lo_idx, from, to, threshold);
  if (window.left_partial) {
    const Time r = scan_first_below_at(
        lo_idx, from, index_leaf_end(ix, window.lo_leaf), threshold);
    if (r != kTimeInfinity) return r;
  }
  const std::ptrdiff_t full_lo = static_cast<std::ptrdiff_t>(window.lo_leaf) +
                                 (window.left_partial ? 1 : 0);
  const std::ptrdiff_t full_hi = static_cast<std::ptrdiff_t>(window.hi_leaf) -
                                 (window.right_partial ? 1 : 0);
  if (full_lo <= full_hi) {
    const std::size_t j = index_first_leaf_below(
        ix, 1, 0, ix.cap - 1, static_cast<std::size_t>(full_lo),
        static_cast<std::size_t>(full_hi), threshold, 0);
    if (j != kNoLeaf) {
      const Time r =
          scan_first_below(ix.times[j], index_leaf_end(ix, j), threshold);
      RESCHED_CHECK_MSG(r != kTimeInfinity,
                        "index/leaf disagreement in first_below");
      return r;
    }
  }
  if (window.right_partial) {
    const Time r = scan_first_below(ix.times[window.hi_leaf], to, threshold);
    if (r != kTimeInfinity) return r;
  }
  return kTimeInfinity;
}

Time StepProfile::first_at_least(Time from, std::int64_t threshold) const {
  RESCHED_REQUIRE(from >= 0);
  const std::size_t lo_idx = index_of(from);
  if (steps_.size() - lo_idx <= kIndexedLeafCutoff)
    return scan_first_at_least_at(lo_idx, from, threshold);
  const Index& ix = ensure_index();
  const LeafWindow window = index_leaf_window(ix, from, kTimeInfinity);
  if (window.left_partial) {
    // Clipped scan over the remainder of the leaf. index_leaf_end is
    // kTimeInfinity when `from` sits inside the last snapshot leaf (which
    // holds many real segments after incremental splits beyond the last
    // snapshot breakpoint), so the scan then covers the whole tail.
    const Time* times = steps_.times_data();
    const std::int64_t* values = steps_.values_data();
    std::size_t i = lo_idx;
    if (values[i] >= threshold) return from;
    const Time end = index_leaf_end(ix, window.lo_leaf);
    for (++i; i < steps_.size() && times[i] < end; ++i)
      if (values[i] >= threshold) return times[i];
    if (window.lo_leaf == window.hi_leaf) return kTimeInfinity;
  }
  const std::size_t full_lo = window.lo_leaf + (window.left_partial ? 1 : 0);
  const std::size_t j = index_first_leaf_at_least(
      ix, 1, 0, ix.cap - 1, full_lo, window.hi_leaf, threshold, 0);
  if (j == kNoLeaf) return kTimeInfinity;
  const Time r = scan_first_at_least(ix.times[j], threshold);
  RESCHED_CHECK_MSG(r < index_leaf_end(ix, j),
                    "index/leaf disagreement in first_at_least");
  return r;
}

Time StepProfile::next_change_after(Time t) const {
  RESCHED_REQUIRE(t >= 0);
  const std::size_t i = index_of(t);
  return i + 1 < steps_.size() ? steps_.start(i + 1) : kTimeInfinity;
}

std::int64_t StepProfile::integral(Time from, Time to) const {
  RESCHED_REQUIRE(from >= 0 && from <= to);
  RESCHED_REQUIRE_MSG(to < kTimeInfinity, "integral over unbounded window");
  if (from == to) return 0;
  // Bounded scan first (the same hybrid as min_in): short windows never pay
  // for the tree, wide ones hand the rest of the window to the range sum.
  const std::size_t lo_idx = index_of(from);
  const std::size_t scan_stop =
      std::min(steps_.size(), lo_idx + kIndexedLeafCutoff + 1);
  const Time scan_end = (scan_stop < steps_.size())
                            ? std::min(steps_.start(scan_stop), to)
                            : to;
  bool ok = true;
  Wide area = scan_integral_at(lo_idx, from, scan_end, ok);
  if (scan_end < to) {
    const Index& ix = ensure_index();
    if (!ix.sums_ok) {
      // Adversarial magnitudes defeated the 128-bit node sums; the linear
      // scan stays exact.
      if (!wide_add(area, scan_integral_at(scan_stop, scan_end, to, ok)))
        ok = false;
    } else {
      const LeafWindow window = index_leaf_window(ix, scan_end, to);
      if (window.lo_leaf == window.hi_leaf) {
        if (!wide_add(area, scan_integral_at(scan_stop, scan_end, to, ok)))
          ok = false;
      } else {
        if (window.left_partial &&
            !wide_add(area, scan_integral_at(
                                scan_stop, scan_end,
                                index_leaf_end(ix, window.lo_leaf), ok)))
          ok = false;
        const std::ptrdiff_t full_lo =
            static_cast<std::ptrdiff_t>(window.lo_leaf) +
            (window.left_partial ? 1 : 0);
        const std::ptrdiff_t full_hi =
            static_cast<std::ptrdiff_t>(window.hi_leaf) -
            (window.right_partial ? 1 : 0);
        if (full_lo <= full_hi &&
            !wide_add(area,
                      index_range_sum(ix, 1, 0, ix.cap - 1,
                                      static_cast<std::size_t>(full_lo),
                                      static_cast<std::size_t>(full_hi), 0,
                                      ok)))
          ok = false;
        if (window.right_partial) {
          const Time edge = ix.times[window.hi_leaf];
          if (!wide_add(area,
                        scan_integral_at(index_of(edge), edge, to, ok)))
            ok = false;
        }
      }
    }
  }
  if (!ok || area > static_cast<Wide>(kInt64Max) ||
      area < static_cast<Wide>(kInt64Min))
    throw std::overflow_error("profile integral overflows int64");
  return static_cast<std::int64_t>(area);
}

Time StepProfile::time_to_accumulate(Time from, std::int64_t target) const {
  RESCHED_REQUIRE(from >= 0 && target >= 0);
  if (target == 0) return from;
  std::int64_t remaining = target;
  // Bounded scan first: crossings within a few hundred segments (and all
  // small profiles) never touch the tree.
  const std::size_t lo_idx = index_of(from);
  const std::size_t scan_stop =
      std::min(steps_.size(), lo_idx + kIndexedLeafCutoff + 1);
  const Time scan_end =
      (scan_stop < steps_.size()) ? steps_.start(scan_stop) : kTimeInfinity;
  const Time found = scan_accumulate(lo_idx, from, scan_end, remaining);
  if (found != kTimeInfinity || scan_stop == steps_.size()) return found;
  const Index& ix = ensure_index();
  if (!ix.sums_ok)
    return scan_accumulate(scan_stop, scan_end, kTimeInfinity, remaining);
  const std::size_t leaves = ix.times.size();
  std::size_t leaf = index_leaf_of(ix, scan_end);
  if (leaf + 1 >= leaves) {
    // Already inside the unbounded last snapshot leaf; only the exact tail
    // walk knows how to clamp near kTimeInfinity.
    return scan_accumulate(scan_stop, scan_end, kTimeInfinity, remaining);
  }
  if (scan_end > ix.times[leaf]) {
    // Finish the partially entered leaf before the tree takes over.
    const Time leaf_end = index_leaf_end(ix, leaf);
    const Time r = scan_accumulate(scan_stop, scan_end, leaf_end, remaining);
    if (r != kTimeInfinity) return r;
    ++leaf;
  }
  // O(log s) descent over the full leaves; the unbounded last leaf is
  // excluded (its range sum is 0 by construction) and handled by the exact
  // tail walk below.
  bool ok = true;
  if (leaf + 1 < leaves) {
    const Time r = index_accumulate(ix, 1, 0, ix.cap - 1, leaf, leaves - 2,
                                    0, 0, remaining, ok);
    if (!ok) {
      std::int64_t redo = target;
      return scan_accumulate(lo_idx, from, kTimeInfinity, redo);
    }
    if (r != kTimeInfinity) return r;
  }
  const Time tail_start = ix.times[leaves - 1];
  return scan_accumulate(index_of(tail_start), tail_start, kTimeInfinity,
                         remaining);
}

bool StepProfile::is_non_increasing() const noexcept {
  const std::int64_t* values = steps_.values_data();
  for (std::size_t i = 1; i < steps_.size(); ++i)
    if (values[i] > values[i - 1]) return false;
  return true;
}

bool StepProfile::is_non_decreasing() const noexcept {
  const std::int64_t* values = steps_.values_data();
  for (std::size_t i = 1; i < steps_.size(); ++i)
    if (values[i] < values[i - 1]) return false;
  return true;
}

std::int64_t StepProfile::min_value() const noexcept {
  const std::int64_t* values = steps_.values_data();
  std::int64_t result = values[0];
  for (std::size_t i = 1; i < steps_.size(); ++i)
    result = std::min(result, values[i]);
  return result;
}

std::int64_t StepProfile::max_value() const noexcept {
  const std::int64_t* values = steps_.values_data();
  std::int64_t result = values[0];
  for (std::size_t i = 1; i < steps_.size(); ++i)
    result = std::max(result, values[i]);
  return result;
}

std::int64_t StepProfile::final_value() const noexcept {
  return steps_.back_value();
}

std::size_t StepProfile::segment_count() const noexcept {
  return steps_.size();
}

std::vector<StepProfile::Segment> StepProfile::segments() const {
  std::vector<Segment> out;
  out.reserve(steps_.size());
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const Time end =
        (i + 1 < steps_.size()) ? steps_.start(i + 1) : kTimeInfinity;
    out.push_back(Segment{steps_.start(i), end, steps_.value(i)});
  }
  return out;
}

std::vector<StepProfile::Segment> StepProfile::segments_in(Time from,
                                                           Time to) const {
  RESCHED_REQUIRE(from >= 0 && from <= to);
  std::vector<Segment> out;
  if (from == to) return out;
  std::size_t i = index_of(from);
  Time cursor = from;
  while (cursor < to && i < steps_.size()) {
    const Time seg_end =
        (i + 1 < steps_.size()) ? std::min(steps_.start(i + 1), to) : to;
    out.push_back(Segment{cursor, seg_end, steps_.value(i)});
    cursor = seg_end;
    ++i;
  }
  return out;
}

StepProfile StepProfile::plus(const StepProfile& other) const {
  StepProfile result(0);
  result.steps_.clear();
  result.steps_.reserve(steps_.size() + other.steps_.size());
  std::size_t a = 0;
  std::size_t b = 0;
  std::int64_t va = steps_.value(0);
  std::int64_t vb = other.steps_.value(0);
  // Merge the two breakpoint sets; emitted starts are strictly increasing.
  while (a < steps_.size() || b < other.steps_.size()) {
    Time t;
    if (b == other.steps_.size() ||
        (a < steps_.size() && steps_.start(a) <= other.steps_.start(b))) {
      t = steps_.start(a);
      va = steps_.value(a);
      if (b < other.steps_.size() && other.steps_.start(b) == t)
        vb = other.steps_.value(b++);
      ++a;
    } else {
      t = other.steps_.start(b);
      vb = other.steps_.value(b++);
    }
    const std::int64_t v = checked_add(va, vb);
    if (result.steps_.empty() || result.steps_.back_value() != v)
      result.steps_.push_back(t, v);
  }
  return result;
}

StepProfile StepProfile::minus(const StepProfile& other) const {
  StepProfile negated = other;  // copying drops the (now stale) index cache
  std::int64_t* values = negated.steps_.values_data();
  for (std::size_t i = 0; i < negated.steps_.size(); ++i)
    values[i] = checked_neg(values[i]);
  return plus(negated);
}

}  // namespace resched
