#include "core/step_profile.hpp"

#include <algorithm>

#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

StepProfile::StepProfile(std::int64_t initial_value) {
  steps_.emplace(Time{0}, initial_value);
}

std::int64_t StepProfile::value_at(Time t) const {
  RESCHED_REQUIRE_MSG(t >= 0, "profile queried at negative time");
  auto it = steps_.upper_bound(t);
  --it;  // safe: key 0 always present and t >= 0
  return it->second;
}

std::map<Time, std::int64_t>::iterator StepProfile::split_at(Time t) {
  auto it = steps_.lower_bound(t);
  if (it != steps_.end() && it->first == t) return it;
  --it;  // segment containing t
  return steps_.emplace_hint(std::next(it), t, it->second);
}

void StepProfile::coalesce() {
  auto it = steps_.begin();
  while (it != steps_.end()) {
    auto next = std::next(it);
    if (next != steps_.end() && next->second == it->second) {
      steps_.erase(next);
    } else {
      ++it;
    }
  }
}

void StepProfile::add(Time from, Time to, std::int64_t delta) {
  RESCHED_REQUIRE_MSG(from >= 0, "profile add with negative start");
  if (from >= to || delta == 0) return;
  auto first = split_at(from);
  // Split the right edge only for finite windows; [from, kTimeInfinity)
  // means "from `from` onwards".
  auto last = (to >= kTimeInfinity) ? steps_.end() : split_at(to);
  for (auto it = first; it != last; ++it)
    it->second = checked_add(it->second, delta);
  coalesce();
}

std::int64_t StepProfile::min_in(Time from, Time to) const {
  RESCHED_REQUIRE_MSG(from < to, "empty window in min_in");
  RESCHED_REQUIRE(from >= 0);
  auto it = steps_.upper_bound(from);
  --it;
  std::int64_t result = it->second;
  for (++it; it != steps_.end() && it->first < to; ++it)
    result = std::min(result, it->second);
  return result;
}

std::int64_t StepProfile::max_in(Time from, Time to) const {
  RESCHED_REQUIRE_MSG(from < to, "empty window in max_in");
  RESCHED_REQUIRE(from >= 0);
  auto it = steps_.upper_bound(from);
  --it;
  std::int64_t result = it->second;
  for (++it; it != steps_.end() && it->first < to; ++it)
    result = std::max(result, it->second);
  return result;
}

Time StepProfile::first_below(Time from, Time to,
                              std::int64_t threshold) const {
  RESCHED_REQUIRE(from >= 0);
  if (from >= to) return kTimeInfinity;
  auto it = steps_.upper_bound(from);
  --it;
  if (it->second < threshold) return from;
  for (++it; it != steps_.end() && it->first < to; ++it)
    if (it->second < threshold) return it->first;
  return kTimeInfinity;
}

Time StepProfile::next_change_after(Time t) const {
  RESCHED_REQUIRE(t >= 0);
  const auto it = steps_.upper_bound(t);
  return it == steps_.end() ? kTimeInfinity : it->first;
}

std::int64_t StepProfile::integral(Time from, Time to) const {
  RESCHED_REQUIRE(from >= 0 && from <= to);
  RESCHED_REQUIRE_MSG(to < kTimeInfinity, "integral over unbounded window");
  if (from == to) return 0;
  std::int64_t area = 0;
  auto it = steps_.upper_bound(from);
  --it;
  Time cursor = from;
  while (cursor < to) {
    auto next = std::next(it);
    const Time seg_end = (next == steps_.end()) ? to : std::min(next->first, to);
    area = checked_add(area, checked_mul(it->second, seg_end - cursor));
    cursor = seg_end;
    it = next;
  }
  return area;
}

Time StepProfile::time_to_accumulate(Time from, std::int64_t target) const {
  RESCHED_REQUIRE(from >= 0 && target >= 0);
  if (target == 0) return from;
  std::int64_t remaining = target;
  auto it = steps_.upper_bound(from);
  --it;
  Time cursor = from;
  while (true) {
    auto next = std::next(it);
    const Time seg_end = (next == steps_.end()) ? kTimeInfinity : next->first;
    const std::int64_t rate = it->second;
    if (rate > 0) {
      const Time needed = ceil_div(remaining, rate);
      if (seg_end >= kTimeInfinity || needed <= seg_end - cursor)
        return checked_add(cursor, needed) > kTimeInfinity ? kTimeInfinity
                                                           : cursor + needed;
      remaining -= checked_mul(rate, seg_end - cursor);
    }
    if (next == steps_.end()) return kTimeInfinity;  // rate <= 0 forever
    cursor = seg_end;
    it = next;
  }
}

bool StepProfile::is_non_increasing() const noexcept {
  std::int64_t prev = steps_.begin()->second;
  for (const auto& [t, v] : steps_) {
    if (v > prev) return false;
    prev = v;
  }
  return true;
}

bool StepProfile::is_non_decreasing() const noexcept {
  std::int64_t prev = steps_.begin()->second;
  for (const auto& [t, v] : steps_) {
    if (v < prev) return false;
    prev = v;
  }
  return true;
}

std::int64_t StepProfile::min_value() const noexcept {
  std::int64_t result = steps_.begin()->second;
  for (const auto& [t, v] : steps_) result = std::min(result, v);
  return result;
}

std::int64_t StepProfile::max_value() const noexcept {
  std::int64_t result = steps_.begin()->second;
  for (const auto& [t, v] : steps_) result = std::max(result, v);
  return result;
}

std::int64_t StepProfile::final_value() const noexcept {
  return steps_.rbegin()->second;
}

std::size_t StepProfile::segment_count() const noexcept {
  return steps_.size();
}

std::vector<StepProfile::Segment> StepProfile::segments() const {
  std::vector<Segment> out;
  out.reserve(steps_.size());
  for (auto it = steps_.begin(); it != steps_.end(); ++it) {
    const auto next = std::next(it);
    out.push_back(Segment{it->first,
                          next == steps_.end() ? kTimeInfinity : next->first,
                          it->second});
  }
  return out;
}

std::vector<StepProfile::Segment> StepProfile::segments_in(Time from,
                                                           Time to) const {
  RESCHED_REQUIRE(from >= 0 && from <= to);
  std::vector<Segment> out;
  if (from == to) return out;
  auto it = steps_.upper_bound(from);
  --it;
  Time cursor = from;
  while (cursor < to && it != steps_.end()) {
    const auto next = std::next(it);
    const Time seg_end =
        (next == steps_.end()) ? to : std::min<Time>(next->first, to);
    out.push_back(Segment{cursor, seg_end, it->second});
    cursor = seg_end;
    it = next;
  }
  return out;
}

StepProfile StepProfile::plus(const StepProfile& other) const {
  StepProfile result(0);
  result.steps_.clear();
  auto a = steps_.begin();
  auto b = other.steps_.begin();
  std::int64_t va = a->second;
  std::int64_t vb = b->second;
  // Merge the two breakpoint sets.
  while (a != steps_.end() || b != other.steps_.end()) {
    Time t;
    if (b == other.steps_.end() || (a != steps_.end() && a->first <= b->first)) {
      t = a->first;
      va = a->second;
      if (b != other.steps_.end() && b->first == t) {
        vb = b->second;
        ++b;
      }
      ++a;
    } else {
      t = b->first;
      vb = b->second;
      ++b;
    }
    result.steps_[t] = checked_add(va, vb);
  }
  result.coalesce();
  return result;
}

StepProfile StepProfile::minus(const StepProfile& other) const {
  StepProfile negated = other;
  for (auto& [t, v] : negated.steps_) v = checked_neg(v);
  return plus(negated);
}

}  // namespace resched
