// An advance reservation: a block of processors unavailable to the scheduler
// (paper section 3.1).
//
// Reservation j withdraws q processors during [start, start + p). The
// scheduler cannot move it; the set of reservations induces the
// unavailability step function U(t) = sum of q over active reservations.
// An instance is feasible iff U(t) <= m for all t.
#pragma once

#include <string>

#include "core/types.hpp"

namespace resched {

struct Reservation {
  ReservationId id = 0;
  ProcCount q = 1;  // processors reserved (1 <= q <= m)
  Time p = 1;       // duration (> 0)
  Time start = 0;   // fixed start time (>= 0)
  std::string name;

  [[nodiscard]] Time end() const;  // start + p, overflow-checked

  friend bool operator==(const Reservation&, const Reservation&) = default;
};

}  // namespace resched
