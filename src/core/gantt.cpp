#include "core/gantt.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "util/checked.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace resched {

namespace {

// Occupancy interval on one machine. kind: 0 = job, 1 = reservation.
struct Span {
  Time start;
  Time end;
  int kind;
  std::int32_t id;
};

char job_letter(std::int32_t id) {
  constexpr char upper[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  constexpr char lower[] = "abcdefghijklmnopqrstuvwxyz";
  const int slot = static_cast<int>(id % 52);
  return slot < 26 ? upper[slot] : lower[slot - 26];
}

std::vector<std::vector<Span>> per_machine_spans(
    const Instance& instance, const Schedule& schedule,
    const MachineAssignment& assignment) {
  std::vector<std::vector<Span>> rows(
      static_cast<std::size_t>(instance.m()));
  for (const Job& job : instance.jobs()) {
    if (!schedule.is_scheduled(job.id)) continue;
    const Time start = schedule.start(job.id);
    for (const MachineIndex machine :
         assignment.job_machines[static_cast<std::size_t>(job.id)])
      rows[static_cast<std::size_t>(machine)].push_back(
          {start, checked_add(start, job.p), 0, job.id});
  }
  for (const Reservation& resa : instance.reservations()) {
    for (const MachineIndex machine :
         assignment.reservation_machines[static_cast<std::size_t>(resa.id)])
      rows[static_cast<std::size_t>(machine)].push_back(
          {resa.start, resa.end(), 1, resa.id});
  }
  for (auto& row : rows)
    std::sort(row.begin(), row.end(),
              [](const Span& a, const Span& b) { return a.start < b.start; });
  return rows;
}

Time render_horizon(const Instance& instance, const Schedule& schedule) {
  return std::max<Time>(1, std::max(schedule.makespan(instance),
                                    instance.reservation_horizon()));
}

std::string color_for_job(std::int32_t id) {
  // Golden-angle hue walk: visually distinct neighbours, deterministic.
  const int hue = static_cast<int>((static_cast<unsigned>(id) * 137U) % 360U);
  return "hsl(" + std::to_string(hue) + ",70%,60%)";
}

}  // namespace

std::string ascii_gantt(const Instance& instance, const Schedule& schedule,
                        const GanttOptions& options) {
  RESCHED_REQUIRE(options.width > 0 && options.max_rows > 0);
  const MachineAssignment assignment = assign_machines(instance, schedule);
  const auto rows = per_machine_spans(instance, schedule, assignment);
  const Time horizon = render_horizon(instance, schedule);
  const int width = options.width;

  std::ostringstream out;
  out << "time 0.." << horizon << " on m=" << instance.m()
      << " machines ('#'=reservation, '.'=idle)\n";
  const std::size_t shown = std::min<std::size_t>(
      rows.size(), static_cast<std::size_t>(options.max_rows));
  for (std::size_t machine = 0; machine < shown; ++machine) {
    out << (machine < 10 ? " " : "") << machine << " |";
    for (int col = 0; col < width; ++col) {
      // Bucket [b0, b1) in time units.
      const Time b0 = checked_mul(horizon, col) / width;
      const Time b1 = std::max<Time>(checked_add(b0, 1),
                                     checked_mul(horizon, col + 1) / width);
      // Pick the span with the largest overlap with the bucket.
      Time best_overlap = 0;
      char symbol = '.';
      for (const Span& span : rows[machine]) {
        if (span.start >= b1) break;
        const Time overlap =
            checked_sub(std::min(span.end, b1), std::max(span.start, b0));
        if (overlap > best_overlap) {
          best_overlap = overlap;
          symbol = span.kind == 1 ? '#' : job_letter(span.id);
        }
      }
      out << symbol;
    }
    out << "|\n";
  }
  if (shown < rows.size())
    out << "   ... (" << rows.size() - shown << " more machines)\n";
  if (options.show_legend && !instance.jobs().empty()) {
    out << "legend:";
    const std::size_t legend_cap = 26;
    for (const Job& job : instance.jobs()) {
      if (static_cast<std::size_t>(job.id) >= legend_cap) {
        out << " ...";
        break;
      }
      out << ' ' << job_letter(job.id) << "=J" << job.id << "(q=" << job.q
          << ",p=" << job.p << ")";
    }
    out << '\n';
  }
  return out.str();
}

std::string svg_gantt(const Instance& instance, const Schedule& schedule,
                      const GanttOptions& options) {
  const MachineAssignment assignment = assign_machines(instance, schedule);
  const auto rows = per_machine_spans(instance, schedule, assignment);
  const Time horizon = render_horizon(instance, schedule);
  const int row_height = options.svg_row_height;
  const int chart_width = options.svg_width;
  const int label_gutter = 40;
  const int height = static_cast<int>(instance.m()) * row_height + 30;

  auto x_of = [&](Time t) {
    return label_gutter +
           static_cast<double>(t) / static_cast<double>(horizon) *
               (chart_width - label_gutter - 10);
  };

  std::ostringstream out;
  out << "<svg xmlns='http://www.w3.org/2000/svg' width='" << chart_width
      << "' height='" << height << "'>\n";
  out << "  <defs><pattern id='hatch' width='6' height='6' "
         "patternTransform='rotate(45)' patternUnits='userSpaceOnUse'>"
         "<rect width='6' height='6' fill='#cccccc'/>"
         "<line x1='0' y1='0' x2='0' y2='6' stroke='#888888' "
         "stroke-width='2'/></pattern></defs>\n";
  out << "  <rect width='100%' height='100%' fill='white'/>\n";

  for (std::size_t machine = 0; machine < rows.size(); ++machine) {
    const double y = static_cast<double>(machine) * row_height + 20;
    out << "  <text x='2' y='" << y + row_height * 0.75
        << "' font-size='9' fill='#444'>m" << machine << "</text>\n";
    for (const Span& span : rows[machine]) {
      const double x0 = x_of(span.start);
      const double x1 = x_of(span.end);
      const std::string fill =
          span.kind == 1 ? "url(#hatch)" : color_for_job(span.id);
      out << "  <rect x='" << format_double(x0, 2) << "' y='"
          << format_double(y, 2) << "' width='"
          << format_double(std::max(0.5, x1 - x0), 2) << "' height='"
          << row_height - 1 << "' fill='" << fill
          << "' stroke='#333' stroke-width='0.4'>"
          << "<title>"
          << (span.kind == 1 ? "reservation " : "job ") << span.id
          << " [" << span.start << "," << span.end << ")</title></rect>\n";
    }
  }
  // Time axis.
  out << "  <line x1='" << label_gutter << "' y1='" << height - 8
      << "' x2='" << chart_width - 10 << "' y2='" << height - 8
      << "' stroke='#333'/>\n";
  out << "  <text x='" << label_gutter << "' y='" << height - 0.5
      << "' font-size='9'>0</text>\n";
  out << "  <text x='" << chart_width - 40 << "' y='" << height - 0.5
      << "' font-size='9'>" << horizon << "</text>\n";
  out << "</svg>\n";
  return out.str();
}

}  // namespace resched
