// Mapping a capacity-feasible schedule onto concrete machines.
//
// The model deliberately ignores contiguity (paper section 2.1): processors
// are identical and fully connected, so a schedule is feasible iff the
// *count* constraint holds at every instant. This module constructively
// proves that claim for every schedule we produce: a left-to-right sweep over
// events always finds enough free machine indices, yielding an explicit
// machine set per job and per reservation. The assignment is what the Gantt
// renderers and the cluster simulator consume.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace resched {

using MachineIndex = std::int32_t;

struct MachineAssignment {
  // job_machines[i] = sorted machine indices used by job i.
  std::vector<std::vector<MachineIndex>> job_machines;
  // reservation_machines[j] = sorted machine indices pinned by reservation j.
  std::vector<std::vector<MachineIndex>> reservation_machines;
};

// Requires schedule.validate(instance). Deterministic: machines are assigned
// smallest-index-first in event order (ties: releases before acquisitions,
// reservations before jobs, lower id first).
[[nodiscard]] MachineAssignment assign_machines(const Instance& instance,
                                                const Schedule& schedule);

// Independent checker: every job/reservation got exactly q distinct machines
// in [0, m), and no machine is used by two occupants at once.
[[nodiscard]] ValidationResult validate_assignment(
    const Instance& instance, const Schedule& schedule,
    const MachineAssignment& assignment);

}  // namespace resched
