// Fundamental scalar types of the scheduling model.
//
// Time is measured in 64-bit integer ticks. The paper's instances are
// rational with small denominators (e.g. the Fig. 3 adversary uses durations
// 1/k), so generators emit the scaled-integer equivalent -- exactly as the
// paper itself does when it prints the alpha = 1/3 instance scaled by k = 6
// (C* = 6, C_LSRC = 31). Integer ticks make feasibility checks exact and
// schedules hashable; exact ratios are computed with util/rational.hpp.
#pragma once

#include <cstdint>
#include <limits>

namespace resched {

using Time = std::int64_t;
// Processor counts are 64-bit as well: work areas (q * p) flow through the
// same checked arithmetic as times.
using ProcCount = std::int64_t;
// Index of a job inside its Instance (dense, 0-based).
using JobId = std::int32_t;
// Index of a reservation inside its Instance (dense, 0-based).
using ReservationId = std::int32_t;

// A time safely above every horizon we can construct, yet far enough from
// INT64_MAX that adding a duration to it cannot overflow.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max() / 4;

}  // namespace resched
