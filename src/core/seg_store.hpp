// SegStore: the segment storage engine under StepProfile (ROADMAP item 5).
//
// Structure-of-arrays with small-buffer optimization. Starts and values live
// in two parallel contiguous int64 arrays instead of an array of {start,
// value} pairs:
//
//  * SoA -- the profile hot paths are asymmetric: binary searches
//    (index_of, rollback's lower_bound) touch only starts, while the
//    scan-heavy leaf walks of the windowed queries and the index rebuild
//    stream only values. Splitting the arrays halves the cache traffic of
//    both, and build_index's breakpoint snapshot becomes one memcpy.
//  * SBO -- profiles of up to kInlineSegments segments live entirely inside
//    the object: the thousands of short-lived profiles churn repair and
//    backfill probes create never touch the heap. The inline capacity was
//    picked by instrumentation (see BUILDING.md "Memory subsystem"): the
//    service workloads' undo records are nearly always <= 6 segments, while
//    persistent profiles spill immediately regardless of N -- so N covers
//    the undo/probe population without bloating every profile.
//
// Heap spills allocate with std::malloc + note_alloc(), never operator new,
// so binaries with the global alloc hook (bench/alloc_hook.cpp) count each
// heap event exactly once. A store never shrinks its heap block; capacity
// is the high-water mark, which is exactly what the steady-state service
// decision needs to stay allocation-free.
//
// The API is deliberately primitive -- indices, not iterators -- because
// StepProfile is its only intended client and every operation maps to one
// memmove/memcpy over the two arrays.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

#include "core/arena.hpp"
#include "core/types.hpp"

namespace resched {

class SegStore {
 public:
  // Inline capacity, sized from measurement (see the header comment).
  static constexpr std::size_t kInlineSegments = 8;

  SegStore() noexcept = default;

  SegStore(const SegStore& other) { assign_range(other, 0, other.size_); }

  SegStore& operator=(const SegStore& other) {
    if (this != &other) assign_range(other, 0, other.size_);
    return *this;
  }

  SegStore(SegStore&& other) noexcept { steal(other); }

  SegStore& operator=(SegStore&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~SegStore() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

  [[nodiscard]] Time start(std::size_t i) const noexcept { return times_[i]; }
  [[nodiscard]] std::int64_t value(std::size_t i) const noexcept {
    return values_[i];
  }
  void set_start(std::size_t i, Time t) noexcept { times_[i] = t; }
  void set_value(std::size_t i, std::int64_t v) noexcept { values_[i] = v; }
  void add_value(std::size_t i, std::int64_t delta) noexcept {
    // resched-lint: time-arith-audited(heights capacity-bounded; deltas validated upstream)
    values_[i] += delta;
  }
  [[nodiscard]] std::int64_t back_value() const noexcept {
    return values_[size_ - 1];
  }

  // Contiguous SoA views; valid until the next capacity change.
  [[nodiscard]] const Time* times_data() const noexcept { return times_; }
  [[nodiscard]] const std::int64_t* values_data() const noexcept {
    return values_;
  }
  [[nodiscard]] std::int64_t* values_data() noexcept { return values_; }

  void clear() noexcept { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  void push_back(Time t, std::int64_t v) {
    if (size_ == cap_) grow(size_ + 1);
    times_[size_] = t;
    values_[size_] = v;
    ++size_;
  }

  void insert(std::size_t pos, Time t, std::int64_t v) {
    if (size_ == cap_) grow(size_ + 1);
    const std::size_t tail = size_ - pos;
    std::memmove(times_ + pos + 1, times_ + pos, tail * sizeof(Time));
    std::memmove(values_ + pos + 1, values_ + pos,
                 tail * sizeof(std::int64_t));
    times_[pos] = t;
    values_[pos] = v;
    ++size_;
  }

  void erase(std::size_t pos) { erase(pos, pos + 1); }

  // Erases [lo, hi).
  void erase(std::size_t lo, std::size_t hi) {
    const std::size_t tail = size_ - hi;
    std::memmove(times_ + lo, times_ + hi, tail * sizeof(Time));
    std::memmove(values_ + lo, values_ + hi, tail * sizeof(std::int64_t));
    size_ -= hi - lo;
  }

  // Replaces contents with src's [lo, hi) slice. Reuses capacity.
  void assign_range(const SegStore& src, std::size_t lo, std::size_t hi) {
    const std::size_t n = hi - lo;
    if (n > cap_) grow(n);
    std::memcpy(times_, src.times_ + lo, n * sizeof(Time));
    std::memcpy(values_, src.values_ + lo, n * sizeof(std::int64_t));
    size_ = n;
  }

  // Splices src (all of it) over this store's [lo, hi): one capacity check
  // plus at most one memmove per array. The rollback primitive.
  void replace_range(std::size_t lo, std::size_t hi, const SegStore& src) {
    const std::size_t n = src.size_;
    const std::size_t new_size = size_ - (hi - lo) + n;
    if (new_size > cap_) grow(new_size);
    const std::size_t tail = size_ - hi;
    std::memmove(times_ + lo + n, times_ + hi, tail * sizeof(Time));
    std::memmove(values_ + lo + n, values_ + hi,
                 tail * sizeof(std::int64_t));
    std::memcpy(times_ + lo, src.times_, n * sizeof(Time));
    std::memcpy(values_ + lo, src.values_, n * sizeof(std::int64_t));
    size_ = new_size;
  }

  // First index whose start is > t (== std::upper_bound on the starts).
  [[nodiscard]] std::size_t upper_bound_start(Time t) const noexcept {
    return static_cast<std::size_t>(
        std::upper_bound(times_, times_ + size_, t) - times_);
  }

  // First index whose start is >= t (== std::lower_bound on the starts).
  [[nodiscard]] std::size_t lower_bound_start(Time t) const noexcept {
    return static_cast<std::size_t>(
        std::lower_bound(times_, times_ + size_, t) - times_);
  }

  // Heap blocks this store has allocated (diagnostic; mirrors
  // index_build_count's semantics: copies start at zero, moves carry it).
  [[nodiscard]] std::uint64_t alloc_count() const noexcept { return allocs_; }

  friend bool operator==(const SegStore& a, const SegStore& b) noexcept {
    return a.size_ == b.size_ &&
           std::memcmp(a.times_, b.times_, a.size_ * sizeof(Time)) == 0 &&
           std::memcmp(a.values_, b.values_,
                       a.size_ * sizeof(std::int64_t)) == 0;
  }

 private:
  [[nodiscard]] bool inline_store() const noexcept {
    return times_ == inline_times_;
  }

  void release() noexcept {
    if (!inline_store()) std::free(times_);
  }

  // Move support: steal other's heap block, or memcpy its inline contents;
  // other is left empty on its inline buffer either way.
  void steal(SegStore& other) noexcept {
    size_ = other.size_;
    allocs_ = other.allocs_;
    if (other.inline_store()) {
      cap_ = kInlineSegments;
      times_ = inline_times_;
      values_ = inline_values_;
      std::memcpy(inline_times_, other.inline_times_,
                  size_ * sizeof(Time));
      std::memcpy(inline_values_, other.inline_values_,
                  size_ * sizeof(std::int64_t));
    } else {
      cap_ = other.cap_;
      times_ = other.times_;
      values_ = other.values_;
      other.cap_ = kInlineSegments;
      other.times_ = other.inline_times_;
      other.values_ = other.inline_values_;
    }
    other.size_ = 0;
    other.allocs_ = 0;
  }

  void grow(std::size_t need) {
    std::size_t new_cap = cap_ * 2;
    if (new_cap < need) new_cap = need;
    // One block, times first then values: a single allocation per spill.
    auto* block = static_cast<std::int64_t*>(
        std::malloc(2 * new_cap * sizeof(std::int64_t)));
    if (block == nullptr) throw std::bad_alloc();
    note_alloc(2 * new_cap * sizeof(std::int64_t));
    ++allocs_;
    std::memcpy(block, times_, size_ * sizeof(Time));
    std::memcpy(block + new_cap, values_, size_ * sizeof(std::int64_t));
    release();
    times_ = block;
    values_ = block + new_cap;
    cap_ = new_cap;
  }

  std::size_t size_ = 0;
  std::size_t cap_ = kInlineSegments;
  Time* times_ = inline_times_;
  std::int64_t* values_ = inline_values_;
  std::uint64_t allocs_ = 0;
  Time inline_times_[kInlineSegments];
  std::int64_t inline_values_[kInlineSegments];
};

}  // namespace resched
