// FreeProfile: the schedulers' mutable view of remaining capacity.
//
// Starts from the instance's availability m(t) = m - U(t) and is decremented
// as jobs are committed. All list/backfilling algorithms are expressed with
// three queries:
//
//   fits_at(t, q, p)      -- can a (q, p) job run in [t, t+p)?
//   earliest_fit(t0,q,p)  -- first start >= t0 where it can,
//   commit(t, q, p)       -- allocate it.
//
// Candidate-start lemma (used by earliest_fit and by LSRC's event loop):
// for fixed committed capacity, the set {t : fits_at(t, q, p)} is a finite
// union of left-closed intervals whose left endpoints are either t0 or
// *capacity-increase breakpoints* of the profile. Proof sketch: fits_at
// fails iff the window [t, t+p) meets a deficient segment (capacity < q);
// sliding t right past a deficient segment first becomes possible exactly at
// the segment's right edge, which is a breakpoint where capacity rises.
// Hence earliest_fit only ever returns t0 or an increase breakpoint, and a
// scheduler that re-examines its queue at capacity-increase events (job
// completions, reservation ends) never misses a feasible start.
//
// ## Tentative commits (transactional allocation)
//
// Backfilling's inner loop is speculative: commit a candidate, test whether
// a protected job is pushed back, revert if so; branch-and-bound backtracks
// the same way. commit_tentative() makes that pattern first-class: it
// subtracts the job and returns an opaque CommitToken whose undo record
// (StepProfile's undo log) reverts the allocation in O(touched segments) --
// no re-run of add's split/coalesce path, no index-snapshot drop, no budget
// drain, so arbitrarily long probe loops never trigger an O(s) index
// rebuild. A token must be resolved exactly once, newest-first:
//
//   rollback(token)  -- revert the allocation,
//   accept(token)    -- keep it, discarding the undo state in O(1).
//
// Tokens are strictly nested (LIFO), which is exactly the shape tentative
// probes and depth-first backtracking produce; resolving any other token
// trips RESCHED_CHECK. The legacy uncommit(t, q, p) remains as a checked
// wrapper: it must name exactly the newest open tentative commit, which it
// then rolls back. An uncommit that does not reverse a live commit used to
// silently inflate free capacity above the instance's availability --
// the classic backfilling state-corruption bug -- and now fails loudly.
//
// Complexity: fits_at and each earliest_fit probe are O(log s) on fragmented
// profiles through StepProfile's lazily built min/max segment-tree index;
// earliest_fit leaps over whole runs of deficient segments per iteration
// (first_at_least), so placements no longer rescan the profile linearly.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/step_profile.hpp"

namespace resched {

class FreeProfile {
 public:
  // Opaque handle to one open tentative commit. Move-only; a
  // default-constructed or resolved token is dead. Every live token must be
  // resolved (rollback or accept) before any older token -- destroying one
  // unresolved leaves its undo frame open and the next resolution will
  // trip the LIFO check.
  class CommitToken {
   public:
    CommitToken() = default;
    CommitToken(CommitToken&& other) noexcept
        : serial_(other.serial_), live_(other.live_) {
      other.live_ = false;
    }
    CommitToken& operator=(CommitToken&& other) noexcept {
      serial_ = other.serial_;
      live_ = other.live_;
      other.live_ = false;
      return *this;
    }
    CommitToken(const CommitToken&) = delete;
    CommitToken& operator=(const CommitToken&) = delete;
    ~CommitToken() = default;

    [[nodiscard]] bool live() const noexcept { return live_; }

   private:
    friend class FreeProfile;
    explicit CommitToken(std::uint64_t serial) noexcept
        : serial_(serial), live_(true) {}
    std::uint64_t serial_ = 0;
    bool live_ = false;
  };

  // View over an explicit capacity profile (must be non-negative).
  explicit FreeProfile(StepProfile free_capacity);

  // Capacity view of an instance before any job is placed.
  [[nodiscard]] static FreeProfile for_instance(const Instance& instance);

  [[nodiscard]] ProcCount capacity_at(Time t) const;

  // True iff min capacity over [t, t+p) is >= q. p > 0, q >= 1, t >= 0.
  [[nodiscard]] bool fits_at(Time t, ProcCount q, Time p) const;

  // Smallest t >= t0 with fits_at(t, q, p). Always terminates: requires
  // q <= final free capacity (capacity after every reservation and committed
  // job has ended), which holds for any valid job of the instance.
  [[nodiscard]] Time earliest_fit(Time t0, ProcCount q, Time p) const;

  // Permanently subtracts q over [t, t+p). Requires fits_at(t, q, p),
  // re-verified here (always on).
  void commit(Time t, ProcCount q, Time p);

  // commit() for callers whose t was just produced by earliest_fit (or an
  // explicit fits_at): the precondition holds by construction, so the
  // redundant windowed-min recheck is a Debug-only RESCHED_ASSERT. This is
  // the schedulers' hot placement path; misuse is still caught downstream
  // by Schedule::validate and the campaign oracle.
  void commit_fitted(Time t, ProcCount q, Time p);

  // Tentatively subtracts q over [t, t+p) and opens an undo frame; the
  // returned token resolves it via rollback() or accept(). Same
  // by-construction precondition (and Debug-only recheck) as
  // commit_fitted. O(touched) to record; the frame's buffers are recycled
  // across probes, so a reject/retry loop stops allocating after warm-up.
  [[nodiscard]] CommitToken commit_tentative(Time t, ProcCount q, Time p);

  // Reverts the newest open tentative commit, which must be the one the
  // token names (RESCHED_CHECK otherwise). O(touched segments); never
  // drops or rebuilds the profile's query index (invariant I6 in
  // step_profile.hpp).
  void rollback(CommitToken&& token);

  // Seals the newest open tentative commit (same LIFO check): the
  // allocation becomes permanent and its undo state is discarded in O(1).
  void accept(CommitToken&& token);

  // Legacy inverse of commit_tentative, kept for callers that identify the
  // allocation by value instead of by token: RESCHED_CHECKs that
  // (t, q, p) is exactly the newest open tentative commit and rolls it
  // back. With no open commit -- or mismatched arguments -- this trips
  // instead of silently raising capacity above the availability.
  void uncommit(Time t, ProcCount q, Time p);

  // Number of open (unresolved) tentative commits.
  [[nodiscard]] std::size_t open_commits() const noexcept {
    return open_.size();
  }

  // Smallest breakpoint > t, or kTimeInfinity (event-driven scheduling).
  [[nodiscard]] Time next_change_after(Time t) const;

  [[nodiscard]] const StepProfile& profile() const noexcept {
    return profile_;
  }

 private:
  // One open tentative commit: identity for the checked wrappers plus the
  // undo record that reverts it.
  struct OpenCommit {
    std::uint64_t serial = 0;
    Time t = 0;
    ProcCount q = 0;
    Time p = 0;
    StepProfile::Undo undo;
  };

  // Pops the top frame (rolling the profile back unless `keep`), recycling
  // its undo buffer.
  void resolve_top(bool keep);

  StepProfile profile_;
  std::vector<OpenCommit> open_;
  // Retired undo records, kept for their buffer capacity so probe loops
  // stop allocating; bounded small.
  std::vector<StepProfile::Undo> spare_;
  std::uint64_t next_serial_ = 0;
};

}  // namespace resched
