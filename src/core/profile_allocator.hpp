// FreeProfile: the schedulers' mutable view of remaining capacity.
//
// Starts from the instance's availability m(t) = m - U(t) and is decremented
// as jobs are committed. All list/backfilling algorithms are expressed with
// three queries:
//
//   fits_at(t, q, p)      -- can a (q, p) job run in [t, t+p)?
//   earliest_fit(t0,q,p)  -- first start >= t0 where it can,
//   commit(t, q, p)       -- allocate it.
//
// Candidate-start lemma (used by earliest_fit and by LSRC's event loop):
// for fixed committed capacity, the set {t : fits_at(t, q, p)} is a finite
// union of left-closed intervals whose left endpoints are either t0 or
// *capacity-increase breakpoints* of the profile. Proof sketch: fits_at
// fails iff the window [t, t+p) meets a deficient segment (capacity < q);
// sliding t right past a deficient segment first becomes possible exactly at
// the segment's right edge, which is a breakpoint where capacity rises.
// Hence earliest_fit only ever returns t0 or an increase breakpoint, and a
// scheduler that re-examines its queue at capacity-increase events (job
// completions, reservation ends) never misses a feasible start.
//
// ## Tentative commits (transactional allocation)
//
// Backfilling's inner loop is speculative: commit a candidate, test whether
// a protected job is pushed back, revert if so; branch-and-bound backtracks
// the same way. commit_tentative() makes that pattern first-class: it
// subtracts the job and returns an opaque CommitToken whose undo record
// (StepProfile's undo log) reverts the allocation in O(touched segments) --
// no re-run of add's split/coalesce path, no index-snapshot drop, no budget
// drain, so arbitrarily long probe loops never trigger an O(s) index
// rebuild. A token must be resolved exactly once, newest-first:
//
//   rollback(token)  -- revert the allocation,
//   accept(token)    -- keep it, discarding the undo state in O(1).
//
// Tokens are strictly nested (LIFO), which is exactly the shape tentative
// probes and depth-first backtracking produce; resolving any other token
// trips RESCHED_CHECK. The legacy uncommit(t, q, p) remains as a checked
// wrapper: it must name exactly the newest open tentative commit, which it
// then rolls back. An uncommit that does not reverse a live commit used to
// silently inflate free capacity above the instance's availability --
// the classic backfilling state-corruption bug -- and now fails loudly.
//
// Complexity: fits_at and each earliest_fit probe are O(log s) on fragmented
// profiles through StepProfile's lazily built min/max segment-tree index;
// earliest_fit leaps over whole runs of deficient segments per iteration
// (first_at_least), so placements no longer rescan the profile linearly.
//
// ## Versioned plans (checkpoint / rewind -- the incremental-replan substrate)
//
// A resident service re-plans on every arrival/completion event. Rebuilding
// the capacity profile from scratch per decision is the dominant cost; the
// alternative is to keep ONE long-lived FreeProfile (absolute time) and let
// each plan run directly on it, then unwind the plan's speculative
// allocations before the next event. Three pieces make that safe:
//
//   checkpoint()            -- O(1) snapshot of the plan frontier: the frame
//                              stack depth, the commit serial and the
//                              underlying StepProfile::version().
//   set_retain_accepted(on) -- plan-recording mode: commit/commit_fitted
//                              open a recorded frame instead of mutating
//                              unrecorded, and accept() keeps its frame (undo
//                              intact) instead of discarding it. Every
//                              mutation a scheduler makes while planning is
//                              therefore on the frame stack.
//   rewind_to(checkpoint)   -- rolls the frame stack back to the checkpoint
//                              depth, newest-first, in O(touched) per frame
//                              with the query index kept warm (invariant I6
//                              in step_profile.hpp): the whole plan suffix is
//                              invalidated without an O(s) rebuild. Verifies
//                              through the profile version that nothing but
//                              frames mutated since the checkpoint.
//
// plan_since(checkpoint) reads the delta between the checkpoint's version
// and now as the ordered list of (t, q, p) allocations -- the decisions a
// repair loop inspects to find the committed head of a plan.
//
// Permanent world changes (a job actually starting, churn: cancellations
// freeing capacity, availability drops, reservation moves) go through
// adjust_capacity(), which requires an empty frame stack: plans are always
// rewound before the world moves, so a checkpoint can never span a
// permanent mutation (rewind_to checks this and trips loudly).
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/step_profile.hpp"

namespace resched {

class FreeProfile {
 public:
  // Opaque handle to one open tentative commit. Move-only; a
  // default-constructed or resolved token is dead. Every live token must be
  // resolved (rollback or accept) before any older token -- destroying one
  // unresolved leaves its undo frame open and the next resolution will
  // trip the LIFO check.
  class CommitToken {
   public:
    CommitToken() = default;
    CommitToken(CommitToken&& other) noexcept
        : serial_(other.serial_), live_(other.live_) {
      other.live_ = false;
    }
    CommitToken& operator=(CommitToken&& other) noexcept {
      serial_ = other.serial_;
      live_ = other.live_;
      other.live_ = false;
      return *this;
    }
    CommitToken(const CommitToken&) = delete;
    CommitToken& operator=(const CommitToken&) = delete;
    ~CommitToken() = default;

    [[nodiscard]] bool live() const noexcept { return live_; }

   private:
    friend class FreeProfile;
    explicit CommitToken(std::uint64_t serial) noexcept
        : serial_(serial), live_(true) {}
    std::uint64_t serial_ = 0;
    bool live_ = false;
  };

  // View over an explicit capacity profile (must be non-negative).
  explicit FreeProfile(StepProfile free_capacity);

  // Capacity view of an instance before any job is placed.
  [[nodiscard]] static FreeProfile for_instance(const Instance& instance);

  [[nodiscard]] ProcCount capacity_at(Time t) const;

  // True iff min capacity over [t, t+p) is >= q. p > 0, q >= 1, t >= 0.
  [[nodiscard]] bool fits_at(Time t, ProcCount q, Time p) const;

  // Smallest t >= t0 with fits_at(t, q, p). Always terminates: requires
  // q <= final free capacity (capacity after every reservation and committed
  // job has ended), which holds for any valid job of the instance.
  [[nodiscard]] Time earliest_fit(Time t0, ProcCount q, Time p) const;

  // Permanently subtracts q over [t, t+p). Requires fits_at(t, q, p),
  // re-verified here (always on).
  void commit(Time t, ProcCount q, Time p);

  // commit() for callers whose t was just produced by earliest_fit (or an
  // explicit fits_at): the precondition holds by construction, so the
  // redundant windowed-min recheck is a Debug-only RESCHED_ASSERT. This is
  // the schedulers' hot placement path; misuse is still caught downstream
  // by Schedule::validate and the campaign oracle.
  void commit_fitted(Time t, ProcCount q, Time p);

  // Tentatively subtracts q over [t, t+p) and opens an undo frame; the
  // returned token resolves it via rollback() or accept(). Same
  // by-construction precondition (and Debug-only recheck) as
  // commit_fitted. O(touched) to record; the frame's buffers are recycled
  // across probes, so a reject/retry loop stops allocating after warm-up.
  [[nodiscard]] CommitToken commit_tentative(Time t, ProcCount q, Time p);

  // Reverts the newest open tentative commit, which must be the one the
  // token names (RESCHED_CHECK otherwise). O(touched segments); never
  // drops or rebuilds the profile's query index (invariant I6 in
  // step_profile.hpp).
  void rollback(CommitToken&& token);

  // Seals the newest open tentative commit (same LIFO check): the
  // allocation becomes permanent and its undo state is discarded in O(1).
  void accept(CommitToken&& token);

  // O(1) snapshot of the plan frontier; see the header notes. A checkpoint
  // taken on one FreeProfile must only be passed back to that object.
  struct Checkpoint {
    std::uint64_t serial = 0;    // next commit serial at checkpoint time
    std::size_t depth = 0;       // frame-stack depth at checkpoint time
    std::uint64_t version = 0;   // StepProfile::version() at checkpoint time
    std::uint64_t permanent = 0; // permanent mutations seen at checkpoint time
  };
  [[nodiscard]] Checkpoint checkpoint() const noexcept {
    return Checkpoint{next_serial_, open_.size(), profile_.version(),
                      permanent_mutations_};
  }

  // Rolls the frame stack back to the checkpoint's depth, newest-first
  // (accepted-retained frames included), leaving the profile bit-identical
  // to its checkpoint state with the query index warm. Trips RESCHED_CHECK
  // if any permanent mutation (adjust_capacity, non-retained commit,
  // compact_history) happened since the checkpoint -- those cannot be
  // rewound -- or if the stack is already below the checkpoint depth.
  void rewind_to(const Checkpoint& checkpoint);

  // One allocation recorded on the frame stack since a checkpoint.
  struct PlanStep {
    Time t = 0;
    ProcCount q = 0;
    Time p = 0;
    bool accepted = false;
    friend bool operator==(const PlanStep&, const PlanStep&) = default;
  };
  // The delta between the checkpoint's version and now: every still-open
  // frame recorded since, oldest first. O(frames since).
  [[nodiscard]] std::vector<PlanStep> plan_since(
      const Checkpoint& checkpoint) const;

  // Plan-recording mode: while on, commit()/commit_fitted() open recorded
  // frames and accept() retains its frame with the undo intact, so
  // rewind_to can unwind a whole plan. Toggling requires an empty stack.
  void set_retain_accepted(bool on);
  [[nodiscard]] bool retain_accepted() const noexcept {
    return retain_accepted_;
  }

  // Permanent capacity mutation (a job starting for real; churn events:
  // cancellation refunds, availability drops, reservation moves). delta < 0
  // withdraws capacity over [from, to), delta > 0 restores it. Requires an
  // empty frame stack -- plans must be rewound before the world moves --
  // and, for withdrawals, that the window can afford it (min capacity over
  // the window stays >= 0).
  void adjust_capacity(Time from, Time to, std::int64_t delta);

  // Forwards StepProfile::compact_before: coalesces dead history strictly
  // before t (the service loop's monotone clock). Requires an empty frame
  // stack. Returns the number of segments removed.
  std::size_t compact_history(Time t);

  // Legacy inverse of commit_tentative, kept for callers that identify the
  // allocation by value instead of by token: RESCHED_CHECKs that
  // (t, q, p) is exactly the newest open tentative commit and rolls it
  // back. With no open commit -- or mismatched arguments -- this trips
  // instead of silently raising capacity above the availability.
  void uncommit(Time t, ProcCount q, Time p);

  // Number of open (unresolved) tentative commits.
  [[nodiscard]] std::size_t open_commits() const noexcept {
    return open_.size();
  }

  // Heap blocks attributable to this view: the segment store's spills plus
  // every frame the pool failed to recycle (frame_misses). A steady-state
  // probe/plan loop on a warmed-up profile must keep this flat -- the
  // bench-smoke budget gate and the fuzz suites assert exactly that.
  [[nodiscard]] std::uint64_t alloc_count() const noexcept {
    return profile_.alloc_count() + frame_misses_;
  }

  // Frames push_frame constructed from scratch because the recycle pool was
  // empty (diagnostic; the adaptive pool keeps this at the warm-up cost:
  // one per unit of peak frame-stack depth).
  [[nodiscard]] std::uint64_t frame_misses() const noexcept {
    return frame_misses_;
  }

  // Smallest breakpoint > t, or kTimeInfinity (event-driven scheduling).
  [[nodiscard]] Time next_change_after(Time t) const;

  [[nodiscard]] const StepProfile& profile() const noexcept {
    return profile_;
  }

 private:
  // One open tentative commit: identity for the checked wrappers plus the
  // undo record that reverts it. `accepted` marks a frame accept() retained
  // in plan-recording mode: sealed as a decision, still rewindable.
  struct OpenCommit {
    std::uint64_t serial = 0;
    Time t = 0;
    ProcCount q = 0;
    Time p = 0;
    bool accepted = false;
    StepProfile::Undo undo;
  };

  // Pops the top frame (rolling the profile back unless `keep`), recycling
  // its undo buffer.
  void resolve_top(bool keep);
  // Opens a recorded frame for a validated allocation; shared by
  // commit_tentative and the retain-mode permanent commits.
  void push_frame(Time t, ProcCount q, Time p, bool accepted);

  StepProfile profile_;
  std::vector<OpenCommit> open_;
  // Retired frames, kept whole (undo buffer included) so probe loops and
  // plan/rewind cycles stop allocating once warm. Capped adaptively at
  // max(kMinPoolFrames, peak open-stack depth): a full rewind of the
  // deepest plan this profile has ever carried can recycle every frame,
  // while a shallow prober never hoards more than a handful.
  std::vector<OpenCommit> frame_pool_;
  // High-water mark of open_.size(); sets the pool cap.
  std::size_t open_high_water_ = 0;
  // push_frame pool misses (see frame_misses()).
  std::uint64_t frame_misses_ = 0;
  std::uint64_t next_serial_ = 0;
  // Count of non-rewindable mutations (adjust_capacity, non-retained
  // commits, compact_history); rewind_to refuses to cross one.
  std::uint64_t permanent_mutations_ = 0;
  bool retain_accepted_ = false;
};

}  // namespace resched
