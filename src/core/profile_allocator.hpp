// FreeProfile: the schedulers' mutable view of remaining capacity.
//
// Starts from the instance's availability m(t) = m - U(t) and is decremented
// as jobs are committed. All list/backfilling algorithms are expressed with
// three queries:
//
//   fits_at(t, q, p)      -- can a (q, p) job run in [t, t+p)?
//   earliest_fit(t0,q,p)  -- first start >= t0 where it can,
//   commit(t, q, p)       -- allocate it.
//
// Candidate-start lemma (used by earliest_fit and by LSRC's event loop):
// for fixed committed capacity, the set {t : fits_at(t, q, p)} is a finite
// union of left-closed intervals whose left endpoints are either t0 or
// *capacity-increase breakpoints* of the profile. Proof sketch: fits_at
// fails iff the window [t, t+p) meets a deficient segment (capacity < q);
// sliding t right past a deficient segment first becomes possible exactly at
// the segment's right edge, which is a breakpoint where capacity rises.
// Hence earliest_fit only ever returns t0 or an increase breakpoint, and a
// scheduler that re-examines its queue at capacity-increase events (job
// completions, reservation ends) never misses a feasible start.
//
// Complexity: fits_at and each earliest_fit probe are O(log s) on fragmented
// profiles through StepProfile's lazily built min/max segment-tree index;
// earliest_fit leaps over whole runs of deficient segments per iteration
// (first_at_least), so placements no longer rescan the profile linearly.
#pragma once

#include "core/instance.hpp"
#include "core/step_profile.hpp"

namespace resched {

class FreeProfile {
 public:
  // View over an explicit capacity profile (must be non-negative).
  explicit FreeProfile(StepProfile free_capacity);

  // Capacity view of an instance before any job is placed.
  [[nodiscard]] static FreeProfile for_instance(const Instance& instance);

  [[nodiscard]] ProcCount capacity_at(Time t) const;

  // True iff min capacity over [t, t+p) is >= q. p > 0, q >= 1, t >= 0.
  [[nodiscard]] bool fits_at(Time t, ProcCount q, Time p) const;

  // Smallest t >= t0 with fits_at(t, q, p). Always terminates: requires
  // q <= final free capacity (capacity after every reservation and committed
  // job has ended), which holds for any valid job of the instance.
  [[nodiscard]] Time earliest_fit(Time t0, ProcCount q, Time p) const;

  // Subtracts q over [t, t+p). Requires fits_at(t, q, p).
  void commit(Time t, ProcCount q, Time p);

  // Inverse of commit (used by branch-and-bound backtracking).
  void uncommit(Time t, ProcCount q, Time p);

  // Smallest breakpoint > t, or kTimeInfinity (event-driven scheduling).
  [[nodiscard]] Time next_change_after(Time t) const;

  [[nodiscard]] const StepProfile& profile() const noexcept {
    return profile_;
  }

 private:
  StepProfile profile_;
};

}  // namespace resched
