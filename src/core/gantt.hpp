// Gantt chart rendering (the paper's Figures 1-3 are Gantt charts).
//
// ASCII output is for terminals and tests; SVG output is for reports. Both
// operate on a concrete machine assignment so what is drawn is exactly the
// packing that was validated.
#pragma once

#include <string>

#include "core/instance.hpp"
#include "core/machine_assignment.hpp"
#include "core/schedule.hpp"

namespace resched {

struct GanttOptions {
  int width = 80;        // time columns (ASCII) / pixels per full span (SVG)
  int max_rows = 64;     // cap on machine rows rendered (ASCII)
  bool show_legend = true;
  int svg_row_height = 14;
  int svg_width = 960;
};

// One row per machine (lowest index at top), one column per time bucket.
// Jobs render as letters (A..Z, a..z cycling by job id), reservations as '#',
// idle time as '.'. A bucket shows the occupant covering the largest part of
// the bucket on that machine.
[[nodiscard]] std::string ascii_gantt(const Instance& instance,
                                      const Schedule& schedule,
                                      const GanttOptions& options = {});

// Standalone SVG document. Jobs get deterministic colors from their id;
// reservations are hatched gray.
[[nodiscard]] std::string svg_gantt(const Instance& instance,
                                    const Schedule& schedule,
                                    const GanttOptions& options = {});

}  // namespace resched
