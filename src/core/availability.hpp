// Availability analysis of an instance (paper sections 3.1 and 4).
//
// Reservations induce the unavailability step function
//   U(t) = sum_{j active at t} q_j
// and the availability m(t) = m - U(t). This module builds both profiles and
// classifies instances:
//  * feasibility (U <= m; enforced at Instance construction, re-checkable),
//  * non-increasing reservations (section 4.1's restriction: U non-increasing),
//  * alpha-restriction (section 4.2): U(t) <= (1-alpha) m and q_i <= alpha m.
#pragma once

#include <optional>

#include "core/instance.hpp"
#include "core/step_profile.hpp"
#include "util/rational.hpp"

namespace resched {

// U(t): reserved processors over time.
[[nodiscard]] StepProfile unavailability_profile(const Instance& instance);

// m(t) = m - U(t): processors the scheduler may use over time.
[[nodiscard]] StepProfile availability_profile(const Instance& instance);

// Section 4.1 restriction: U non-increasing (equivalently m(t) non-
// decreasing). Instances with no reservations qualify trivially.
[[nodiscard]] bool has_non_increasing_unavailability(const Instance& instance);

// min_t m(t): the guaranteed-available processor count.
[[nodiscard]] ProcCount min_availability(const Instance& instance);

// m(T) where T is the given time -- used by Proposition 1's refined bound
// 2 - 1/m(C*).
[[nodiscard]] ProcCount availability_at(const Instance& instance, Time t);

// Largest fraction of the machine ever reserved: max_t U(t) / m.
[[nodiscard]] Rational max_reserved_fraction(const Instance& instance);

// Largest fraction of the machine any single job needs: max_i q_i / m.
[[nodiscard]] Rational max_job_fraction(const Instance& instance);

// True iff the instance satisfies the alpha-RESASCHEDULING constraints for
// this alpha: U(t) <= (1-alpha) m for all t, and q_i <= alpha m for all i.
// alpha must lie in (0, 1].
[[nodiscard]] bool is_alpha_restricted(const Instance& instance,
                                       const Rational& alpha);

// The largest alpha for which is_alpha_restricted holds, i.e.
// 1 - max_reserved_fraction, provided every job fits under it; nullopt when
// the instance is not alpha-restricted for any alpha (some job is wider than
// the processors left free at the peak reservation). Larger alpha gives the
// stronger 2/alpha guarantee, so this is the alpha to report.
[[nodiscard]] std::optional<Rational> best_alpha(const Instance& instance);

}  // namespace resched
