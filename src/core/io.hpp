// Instance and schedule (de)serialization.
//
// Two formats:
//  * native ("# resched instance v1"): loss-free round-trip of m, jobs
//    (q, p, release, name) and reservations (q, p, start, name);
//  * SWF (Standard Workload Format, Feitelson's Parallel Workloads Archive):
//    the community format for rigid-job traces. Jobs map onto the standard
//    18-column records (submit time, runtime, allocated processors);
//    reservations -- which SWF has no record type for -- travel in header
//    comment lines of the form ";RESERVATION id q p start", so a resched SWF
//    file is still readable by any stock SWF consumer (comments are skipped).
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace resched {

// Native format.
void save_instance(const Instance& instance, std::ostream& os);
[[nodiscard]] Instance load_instance(std::istream& is);
void save_instance_file(const Instance& instance, const std::string& path);
[[nodiscard]] Instance load_instance_file(const std::string& path);

// SWF with the ;RESERVATION extension.
void write_swf(const Instance& instance, std::ostream& os);
[[nodiscard]] Instance read_swf(std::istream& is);

// Schedule as CSV: header "job,start,end" then one row per scheduled job.
void save_schedule_csv(const Instance& instance, const Schedule& schedule,
                       std::ostream& os);
[[nodiscard]] Schedule load_schedule_csv(const Instance& instance,
                                         std::istream& is);

}  // namespace resched
