// A rigid parallel job: the unit of work of RIGIDSCHEDULING /
// RESASCHEDULING (paper section 2.1).
//
// A job j requires exactly q processors (any subset of the cluster --
// allocation is non-contiguous) for p consecutive time units, without
// preemption. `release` extends the paper's offline model to the online
// setting of section 2.1 (r_j = 0 recovers the offline problem); offline
// algorithms require all releases to be zero and reject otherwise.
#pragma once

#include <string>

#include "core/types.hpp"

namespace resched {

struct Job {
  JobId id = 0;
  ProcCount q = 1;   // processors required (1 <= q <= m)
  Time p = 1;        // processing time (> 0)
  Time release = 0;  // earliest start (0 in the offline model)
  std::string name;  // optional label for traces / Gantt charts

  [[nodiscard]] std::int64_t area() const;  // q * p, overflow-checked

  friend bool operator==(const Job&, const Job&) = default;
};

}  // namespace resched
