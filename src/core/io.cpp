
#include "core/io.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace resched {

namespace {

// Quotes a name for the native format (names may contain spaces).
std::string quote(const std::string& name) {
  std::string out = "\"";
  for (const char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

std::string unquote(std::string_view text) {
  std::string out;
  if (text.size() >= 2 && text.front() == '"' && text.back() == '"')
    text = text.substr(1, text.size() - 2);
  bool escape = false;
  for (const char c : text) {
    if (escape) {
      out += c;
      escape = false;
    } else if (c == '\\') {
      escape = true;
    } else {
      out += c;
    }
  }
  return out;
}

std::int64_t parse_int(const std::string& token, const std::string& context) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("malformed integer '" + token + "' in " +
                                context);
  }
}

}  // namespace

void save_instance(const Instance& instance, std::ostream& os) {
  os << "# resched instance v1\n";
  os << "m " << instance.m() << "\n";
  for (const Job& job : instance.jobs()) {
    os << "job " << job.id << ' ' << job.q << ' ' << job.p << ' '
       << job.release;
    if (!job.name.empty()) os << ' ' << quote(job.name);
    os << "\n";
  }
  for (const Reservation& resa : instance.reservations()) {
    os << "resa " << resa.id << ' ' << resa.q << ' ' << resa.p << ' '
       << resa.start;
    if (!resa.name.empty()) os << ' ' << quote(resa.name);
    os << "\n";
  }
}

Instance load_instance(std::istream& is) {
  ProcCount m = 0;
  bool saw_m = false;
  std::vector<Job> jobs;
  std::vector<Reservation> reservations;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::string context = "line " + std::to_string(line_no);
    // Split into at most 5 leading fields; the 6th (name) may contain spaces.
    const auto fields = split_ws(trimmed);
    RESCHED_REQUIRE_MSG(!fields.empty(), "empty record at " + context);
    if (fields[0] == "m") {
      RESCHED_REQUIRE_MSG(fields.size() == 2, "bad m record at " + context);
      m = parse_int(fields[1], context);
      saw_m = true;
    } else if (fields[0] == "job" || fields[0] == "resa") {
      RESCHED_REQUIRE_MSG(fields.size() >= 5,
                          "record needs id q p time at " + context);
      const auto id = parse_int(fields[1], context);
      const auto q = parse_int(fields[2], context);
      const auto p = parse_int(fields[3], context);
      const auto t = parse_int(fields[4], context);
      std::string name;
      if (fields.size() > 5) {
        // Recover the raw tail after the fifth whitespace-separated token
        // (preserves embedded spaces in quoted names).
        std::size_t pos = 0;
        for (int token = 0; token < 5; ++token) {
          while (pos < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[pos])))
            ++pos;
          while (pos < line.size() &&
                 !std::isspace(static_cast<unsigned char>(line[pos])))
            ++pos;
        }
        name = unquote(trim(std::string_view(line).substr(pos)));
      }
      if (fields[0] == "job") {
        jobs.push_back(
            Job{static_cast<JobId>(id), q, p, t, std::move(name)});
      } else {
        reservations.push_back(Reservation{static_cast<ReservationId>(id), q,
                                           p, t, std::move(name)});
      }
    } else {
      throw std::invalid_argument("unknown record '" + fields[0] + "' at " +
                                  context);
    }
  }
  RESCHED_REQUIRE_MSG(saw_m, "instance file lacks an 'm' record");
  return Instance(m, std::move(jobs), std::move(reservations));
}

void save_instance_file(const Instance& instance, const std::string& path) {
  std::ofstream os(path);
  RESCHED_REQUIRE_MSG(os.good(), "cannot open for writing: " + path);
  save_instance(instance, os);
}

Instance load_instance_file(const std::string& path) {
  std::ifstream is(path);
  RESCHED_REQUIRE_MSG(is.good(), "cannot open for reading: " + path);
  return load_instance(is);
}

void write_swf(const Instance& instance, std::ostream& os) {
  os << "; SWF trace written by resched\n";
  os << "; MaxProcs: " << instance.m() << "\n";
  for (const Reservation& resa : instance.reservations())
    os << ";RESERVATION " << resa.id << ' ' << resa.q << ' ' << resa.p << ' '
       << resa.start << "\n";
  // 18 standard SWF fields; unknown values are -1. We use:
  //  1 job number (1-based per SWF convention), 2 submit, 4 run time,
  //  5 allocated processors, 8 requested processors.
  for (const Job& job : instance.jobs()) {
    os << (job.id + 1) << ' ' << job.release << " -1 " << job.p << ' '
       << job.q << " -1 -1 " << job.q << ' ' << job.p
       << " -1 -1 -1 -1 -1 -1 -1 -1 -1\n";
  }
}

Instance read_swf(std::istream& is) {
  ProcCount m = -1;
  std::vector<Job> jobs;
  std::vector<Reservation> reservations;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    const std::string context = "line " + std::to_string(line_no);
    if (trimmed.front() == ';') {
      const auto fields = split_ws(trimmed.substr(1));
      if (!fields.empty() && fields[0] == "RESERVATION") {
        RESCHED_REQUIRE_MSG(fields.size() == 5,
                            "bad ;RESERVATION line at " + context);
        reservations.push_back(Reservation{
            static_cast<ReservationId>(parse_int(fields[1], context)),
            parse_int(fields[2], context), parse_int(fields[3], context),
            parse_int(fields[4], context), ""});
      } else if (fields.size() >= 2 && fields[0] == "MaxProcs:") {
        m = parse_int(fields[1], context);
      }
      continue;
    }
    const auto fields = split_ws(trimmed);
    RESCHED_REQUIRE_MSG(fields.size() >= 8,
                        "SWF record too short at " + context);
    const auto number = parse_int(fields[0], context);
    const auto submit = parse_int(fields[1], context);
    const auto runtime = parse_int(fields[3], context);
    auto procs = parse_int(fields[4], context);
    if (procs <= 0) procs = parse_int(fields[7], context);  // requested
    jobs.push_back(Job{static_cast<JobId>(checked_sub(number, 1)), procs,
                       runtime,
                       submit < 0 ? 0 : submit, ""});
  }
  RESCHED_REQUIRE_MSG(m >= 1, "SWF lacks a '; MaxProcs:' header");
  return Instance(m, std::move(jobs), std::move(reservations));
}

void save_schedule_csv(const Instance& instance, const Schedule& schedule,
                       std::ostream& os) {
  os << "job,start,end\n";
  for (const Job& job : instance.jobs()) {
    if (!schedule.is_scheduled(job.id)) continue;
    const Time start = schedule.start(job.id);
    os << job.id << ',' << start << ',' << checked_add(start, job.p) << "\n";
  }
}

Schedule load_schedule_csv(const Instance& instance, std::istream& is) {
  Schedule schedule(instance.n());
  std::string line;
  bool header_seen = false;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (!header_seen) {
      RESCHED_REQUIRE_MSG(trimmed == "job,start,end",
                          "schedule CSV lacks expected header");
      header_seen = true;
      continue;
    }
    const std::string context = "line " + std::to_string(line_no);
    const auto fields = split(trimmed, ',');
    RESCHED_REQUIRE_MSG(fields.size() == 3, "bad CSV row at " + context);
    const auto job = parse_int(fields[0], context);
    const auto start = parse_int(fields[1], context);
    schedule.set_start(static_cast<JobId>(job), start);
  }
  return schedule;
}

}  // namespace resched
