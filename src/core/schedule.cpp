#include "core/schedule.hpp"

#include <algorithm>

#include "core/availability.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

Schedule::Schedule(std::size_t n_jobs, Arena* scratch)
    : starts_(n_jobs, ArenaAlloc<std::optional<Time>>(scratch)) {}

void Schedule::set_start(JobId job, Time start) {
  RESCHED_REQUIRE(job >= 0 && static_cast<std::size_t>(job) < starts_.size());
  RESCHED_REQUIRE_MSG(start >= 0, "job start must be >= 0");
  starts_[static_cast<std::size_t>(job)] = start;
}

bool Schedule::is_scheduled(JobId job) const {
  RESCHED_REQUIRE(job >= 0 && static_cast<std::size_t>(job) < starts_.size());
  return starts_[static_cast<std::size_t>(job)].has_value();
}

Time Schedule::start(JobId job) const {
  RESCHED_REQUIRE(is_scheduled(job));
  return *starts_[static_cast<std::size_t>(job)];
}

Time Schedule::completion(const Instance& instance, JobId job) const {
  return checked_add(start(job), instance.job(job).p);
}

bool Schedule::all_scheduled() const noexcept {
  return std::all_of(starts_.begin(), starts_.end(),
                     [](const auto& s) { return s.has_value(); });
}

Time Schedule::makespan(const Instance& instance) const {
  RESCHED_REQUIRE_MSG(starts_.size() == instance.n(),
                      "schedule size does not match instance");
  Time result = 0;
  for (std::size_t i = 0; i < starts_.size(); ++i) {
    if (!starts_[i].has_value()) continue;
    result = std::max(
        result, checked_add(*starts_[i], instance.jobs()[i].p));
  }
  return result;
}

StepProfile Schedule::usage_profile(const Instance& instance) const {
  RESCHED_REQUIRE(starts_.size() == instance.n());
  StepProfile usage(0);
  for (std::size_t i = 0; i < starts_.size(); ++i) {
    if (!starts_[i].has_value()) continue;
    const Job& job = instance.jobs()[i];
    usage.add(*starts_[i], checked_add(*starts_[i], job.p), job.q);
  }
  return usage;
}

ValidationResult Schedule::validate(const Instance& instance) const {
  if (starts_.size() != instance.n())
    return {false, "schedule covers " + std::to_string(starts_.size()) +
                       " jobs but instance has " + std::to_string(instance.n())};
  for (std::size_t i = 0; i < starts_.size(); ++i) {
    if (!starts_[i].has_value())
      return {false, "job " + std::to_string(i) + " is not scheduled"};
    const Job& job = instance.jobs()[i];
    if (*starts_[i] < job.release)
      return {false, "job " + std::to_string(i) + " starts at " +
                         std::to_string(*starts_[i]) + " before its release " +
                         std::to_string(job.release)};
  }
  // Capacity: usage + unavailability must never exceed m.
  const StepProfile load =
      usage_profile(instance).plus(unavailability_profile(instance));
  if (load.max_value() > instance.m()) {
    // Locate the first overloaded moment for the error message.
    for (const auto& seg : load.segments()) {
      if (seg.value > instance.m())
        return {false,
                "capacity exceeded: " + std::to_string(seg.value) + " > m = " +
                    std::to_string(instance.m()) + " during [" +
                    std::to_string(seg.start) + ", " +
                    std::to_string(seg.end) + ")"};
    }
  }
  return {true, ""};
}

std::int64_t Schedule::idle_area(const Instance& instance) const {
  const Time horizon = makespan(instance);
  if (horizon == 0) return 0;
  const std::int64_t available =
      availability_profile(instance).integral(0, horizon);
  std::int64_t placed = 0;
  for (std::size_t i = 0; i < starts_.size(); ++i) {
    if (!starts_[i].has_value()) continue;
    placed = checked_add(placed, instance.jobs()[i].area());
  }
  return checked_sub(available, placed);
}

double Schedule::utilization(const Instance& instance) const {
  const Time horizon = makespan(instance);
  if (horizon == 0) return 1.0;
  const std::int64_t available =
      availability_profile(instance).integral(0, horizon);
  if (available == 0) return 1.0;
  return static_cast<double>(instance.total_work()) /
         static_cast<double>(available);
}

}  // namespace resched
