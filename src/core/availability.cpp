#include "core/availability.hpp"

#include "util/require.hpp"

namespace resched {

StepProfile unavailability_profile(const Instance& instance) {
  StepProfile profile(0);
  for (const Reservation& resa : instance.reservations())
    profile.add(resa.start, resa.end(), resa.q);
  return profile;
}

StepProfile availability_profile(const Instance& instance) {
  StepProfile profile(instance.m());
  for (const Reservation& resa : instance.reservations())
    profile.add(resa.start, resa.end(), -resa.q);
  return profile;
}

bool has_non_increasing_unavailability(const Instance& instance) {
  return unavailability_profile(instance).is_non_increasing();
}

ProcCount min_availability(const Instance& instance) {
  return availability_profile(instance).min_value();
}

ProcCount availability_at(const Instance& instance, Time t) {
  return availability_profile(instance).value_at(t);
}

Rational max_reserved_fraction(const Instance& instance) {
  return Rational(unavailability_profile(instance).max_value(), instance.m());
}

Rational max_job_fraction(const Instance& instance) {
  return Rational(instance.q_max(), instance.m());
}

bool is_alpha_restricted(const Instance& instance, const Rational& alpha) {
  RESCHED_REQUIRE_MSG(alpha > Rational(0) && alpha <= Rational(1),
                      "alpha must lie in (0, 1]");
  // U(t) <= (1 - alpha) m  <=>  max_reserved_fraction <= 1 - alpha.
  if (max_reserved_fraction(instance) > Rational(1) - alpha) return false;
  // q_i <= alpha m  <=>  max_job_fraction <= alpha.
  return max_job_fraction(instance) <= alpha;
}

std::optional<Rational> best_alpha(const Instance& instance) {
  const Rational alpha = Rational(1) - max_reserved_fraction(instance);
  if (alpha <= Rational(0)) return std::nullopt;  // fully reserved at some t
  if (max_job_fraction(instance) > alpha) return std::nullopt;
  return alpha;
}

}  // namespace resched
