// A problem instance of RESASCHEDULING (and of RIGIDSCHEDULING when it has
// no reservations): m identical processors, n rigid jobs, n' reservations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "core/reservation.hpp"
#include "core/types.hpp"

namespace resched {

class Instance {
 public:
  // The trivial instance: one machine, no jobs, no reservations. Exists so
  // that result structs holding an Instance stay default-constructible.
  Instance() : m_(1) {}

  // Validates on construction (throws std::invalid_argument):
  //  * m >= 1,
  //  * jobs: 1 <= q <= m, p > 0, release >= 0, ids dense 0..n-1,
  //  * reservations: 1 <= q <= m, p > 0, start >= 0, ids dense 0..n'-1,
  //  * the reservations alone fit on the machine (U(t) <= m everywhere).
  Instance(ProcCount m, std::vector<Job> jobs,
           std::vector<Reservation> reservations = {});

  [[nodiscard]] ProcCount m() const noexcept { return m_; }
  [[nodiscard]] const std::vector<Job>& jobs() const noexcept { return jobs_; }
  [[nodiscard]] const std::vector<Reservation>& reservations() const noexcept {
    return reservations_;
  }
  [[nodiscard]] std::size_t n() const noexcept { return jobs_.size(); }
  [[nodiscard]] std::size_t n_reservations() const noexcept {
    return reservations_.size();
  }
  [[nodiscard]] const Job& job(JobId id) const;
  [[nodiscard]] const Reservation& reservation(ReservationId id) const;

  // Sum over jobs of q * p (the W(I) of the appendix), overflow-checked.
  [[nodiscard]] std::int64_t total_work() const;
  // max p_j; 0 for an empty job set.
  [[nodiscard]] Time p_max() const noexcept;
  // max q_j; 0 for an empty job set.
  [[nodiscard]] ProcCount q_max() const noexcept;
  // Latest reservation end (0 if none): beyond it the machine is fully free.
  [[nodiscard]] Time reservation_horizon() const noexcept;
  // True iff some job has release > 0 (instance is online, not offline).
  [[nodiscard]] bool has_release_times() const noexcept;
  // True iff the instance has no reservations (pure RIGIDSCHEDULING).
  [[nodiscard]] bool is_rigid_only() const noexcept {
    return reservations_.empty();
  }

  // Returns a copy with one extra job appended (id assigned automatically).
  [[nodiscard]] Instance with_job(ProcCount q, Time p, Time release = 0,
                                  std::string name = "") const;

  friend bool operator==(const Instance&, const Instance&) = default;

 private:
  ProcCount m_;
  std::vector<Job> jobs_;
  std::vector<Reservation> reservations_;
};

}  // namespace resched
