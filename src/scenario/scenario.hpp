// Scenario programs: a typed step DSL for availability / intensity curves.
//
// A ScenarioProgram is a small imperative program over a single integer
// level: ramp to a target over a duration, soak at a level, jump
// instantaneously, or wait for a *reference* curve to cross a threshold
// (after osPID's ospProfile step encoding -- STEP_RAMP_TO_SETPOINT /
// STEP_SOAK_AT_VALUE / STEP_JUMP_TO_SETPOINT / STEP_WAIT_TO_CROSS). It
// compiles deterministically into the repo's universal StepProfile
// representation, from which two consumers feed:
//
//  * availability programs: the compiled curve is m(t), the processors the
//    scheduler may use; scenario_instance() turns m - m(t) into the
//    equivalent reservation set (the paper's availability-to-reservations
//    reduction, generalized to arbitrary staircases), and
//    sim/service harnesses apply the same rectangles as availability
//    windows (scenario/matrix.hpp);
//  * intensity programs: the compiled curve drives generators (the daily
//    arrival cycle in generators/workload.*).
//
// Programs live in committed .scn text files (scenario/scn_format.hpp,
// round-trip exact), so experiment scenarios are reviewable artifacts
// instead of code-shaped knobs. Compilation is a pure function of
// (program, reference): same program, bit-identical StepProfile, pinned by
// the differential fuzz in tests/test_prop_scenario.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/step_profile.hpp"

namespace resched {

enum class ScenarioStepKind {
  kRampTo,       // linear (discretized) move to `level` over `duration`
  kSoakAt,       // hold `level` for `duration` ticks
  kJumpTo,       // set `level` instantaneously (no time advance)
  kWaitToCross,  // advance time until the reference curve crosses `level`
};

[[nodiscard]] std::string to_string(ScenarioStepKind kind);

struct ScenarioStep {
  ScenarioStepKind kind = ScenarioStepKind::kJumpTo;
  // Target level (ramp/jump/soak) or threshold (wait_to_cross).
  std::int64_t level = 0;
  // Ticks the step spans; meaningful for kRampTo / kSoakAt only (>= 1).
  Time duration = 0;

  friend bool operator==(const ScenarioStep&, const ScenarioStep&) = default;
};

// Step factories, so program literals read like the .scn text.
[[nodiscard]] ScenarioStep ramp_to(std::int64_t target, Time duration);
[[nodiscard]] ScenarioStep soak_at(std::int64_t level, Time duration);
[[nodiscard]] ScenarioStep jump_to(std::int64_t level);
[[nodiscard]] ScenarioStep wait_to_cross(std::int64_t threshold);

struct ScenarioProgram {
  // Identifier: [A-Za-z0-9_.-]+, non-empty (it is a .scn token).
  std::string name;
  // Level before the first step.
  std::int64_t initial = 0;
  // The step list runs this many times back to back (>= 1).
  std::int64_t repeat = 1;
  std::vector<ScenarioStep> steps;

  friend bool operator==(const ScenarioProgram&,
                         const ScenarioProgram&) = default;
};

// Structural validation (name token, repeat >= 1, per-step duration rules);
// throws std::invalid_argument naming the offending step. compile_scenario
// and serialize_scn call this first.
void validate_program(const ScenarioProgram& program);

struct CompiledScenario {
  // The level as a function of time; constant (the final level) after
  // `horizon`.
  StepProfile curve{0};
  // Where the program ended: the sum of all step durations and waits.
  Time horizon = 0;

  friend bool operator==(const CompiledScenario&,
                         const CompiledScenario&) = default;
};

// Compiles the program into its level curve. Deterministic: the result is a
// pure function of (program, *reference). A ramp of |delta| levels over d
// ticks is the exact integer staircase
//   level(t0 + o) = L + sign(delta) * floor(|delta| * o / d),   0 <= o <= d,
// so it starts at L, lands exactly on the target at t0 + d, and every
// intermediate level holds for floor-or-ceil(d / |delta|) ticks.
// kWaitToCross advances the cursor to the first instant the reference curve
// reaches the other side of the threshold (>= threshold when currently
// below it, < threshold when currently at-or-above), which lets an
// availability program synchronize with a load curve (brownouts). Throws
// std::invalid_argument when a wait step has no reference (nullptr) or the
// reference never crosses.
[[nodiscard]] CompiledScenario compile_scenario(
    const ScenarioProgram& program, const StepProfile* reference = nullptr);

// Pointwise minimum of two step functions (compose a maintenance window
// over a daily availability base: the effective machine is the min).
[[nodiscard]] StepProfile min_profile(const StepProfile& a,
                                      const StepProfile& b);

// Decomposes a non-negative staircase with final value 0 into reservation
// rectangles whose stacked sum reproduces it exactly. Generalizes
// generators/transform.hpp's staircase_to_reservations (which requires a
// non-increasing profile) to arbitrary shapes via a skyline stack: a rise
// opens a block, a fall closes the most recent blocks first (splitting the
// top block when the fall is partial). Rectangles are sorted by
// (start, p, q) and given dense ids; throws std::invalid_argument when the
// profile dips negative or never returns to 0.
[[nodiscard]] std::vector<Reservation> unavailability_to_reservations(
    const StepProfile& unavailability);

// U(t) = m - curve(t) on [0, horizon), 0 afterwards (the program is over;
// the machine is whole again, so every job remains schedulable). Requires
// the curve to stay within [0, m] before the horizon; throws
// std::invalid_argument otherwise.
[[nodiscard]] StepProfile scenario_unavailability(
    const CompiledScenario& compiled, ProcCount m);

// The compiled availability program as a ready instance: jobs plus the
// reservation set equivalent to the program's unavailability.
[[nodiscard]] Instance scenario_instance(ProcCount m, std::vector<Job> jobs,
                                         const CompiledScenario& compiled);

// ---- stock programs ------------------------------------------------------
// The committed tests/data/*.scn fixtures serialize exactly these (pinned
// by tests/test_scenario.cpp), so the scenario matrix and the text files
// can never drift apart.

// The diurnal *intensity* curve of generators/workload.cpp's daily cycle,
// in percent (trough 10, peak 110), one day of `ticks_per_day` ticks.
// compile_scenario(...).curve is bit-identical to
// daily_intensity_profile(ticks_per_day).
[[nodiscard]] ScenarioProgram daily_intensity_program(Time ticks_per_day);

// Availability programs over an m-processor machine (horizon in ticks):
// three days of interactive daytime pressure (lose a quarter of the
// machine over working hours),
[[nodiscard]] ScenarioProgram daily_availability_program(ProcCount m);
// a half-machine maintenance window mid-run,
[[nodiscard]] ScenarioProgram maintenance_program(ProcCount m);
// a brownout: shed half the machine while the (reference) intensity curve
// is at its peak -- compile with the daily intensity curve as reference,
[[nodiscard]] ScenarioProgram brownout_program(ProcCount m);
// a flash-crowd reservation storm: four bursts each grabbing 3/4 of the
// machine at an instant,
[[nodiscard]] ScenarioProgram flash_crowd_program(ProcCount m);
// a slow drain to a quarter of the machine and back,
[[nodiscard]] ScenarioProgram ramp_program(ProcCount m);
// and the control: the whole machine, no reservations at all.
[[nodiscard]] ScenarioProgram soak_program(ProcCount m);

}  // namespace resched
