// Tolerant reader for the Standard Workload Format (SWF) used by the
// Parallel Workloads Archive -- the trace lineage behind the EASY/CBF
// evaluations in PAPERS.md.
//
// An SWF file is `; Key: Value` header directives followed by one job per
// line, 18 whitespace-separated integer fields (missing values are -1).
// Field mapping into the repo's Instance model:
//
//   field  1 (job number)      -> Job::name
//   field  2 (submit time)     -> Job::release   (clamped to >= 0)
//   field  4 (run time)        -> Job::p         (fallback: field 9,
//                                 requested time; both <= 0 skips the line)
//   field  5 (allocated procs) -> Job::q         (fallback: field 8,
//                                 requested procs; both <= 0 skips; values
//                                 above MaxProcs are clamped down)
//   field 11 (status)          -> 0 (failed) / 5 (cancelled) skip the line
//                                 unless options.include_cancelled
//
// Real archive files are messy: lines with fewer than 11 fields,
// unparsable numbers, zero/negative runtimes, jobs wider than the machine.
// The reader never throws on record content -- each dropped line is
// accounted for in skipped_by_reason, and out-of-range values saturate via
// util/checked-style clamps (counted in clamped_procs / clamped_times).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/instance.hpp"

namespace resched {

enum class SwfSkipReason {
  kTruncated,           // fewer than 11 fields
  kBadInteger,          // a needed field did not parse as a number
  kNonPositiveRuntime,  // run time and requested time both <= 0
  kNonPositiveProcs,    // allocated and requested processors both <= 0
  kCancelled,           // status 0 (failed) or 5 (cancelled)
};
inline constexpr std::size_t kSwfSkipReasonCount = 5;

[[nodiscard]] std::string to_string(SwfSkipReason reason);

struct SwfReadOptions {
  // Machine size when the trace has no `; MaxProcs:` header (0 = infer
  // from the widest parsed job).
  ProcCount default_max_procs = 0;
  // Keep failed/cancelled records (status 0 or 5) instead of skipping.
  bool include_cancelled = false;
  // Stop after this many parsed jobs (0 = no limit).
  std::size_t max_jobs = 0;

  friend bool operator==(const SwfReadOptions&, const SwfReadOptions&) =
      default;
};

struct SwfTrace {
  // Machine size: header MaxProcs, else options.default_max_procs, else
  // the widest parsed job.
  ProcCount max_procs = 0;
  // Kept jobs, ids dense in file order.
  std::vector<Job> jobs;
  // Data lines kept / dropped (parsed + skipped = data lines seen).
  std::uint64_t parsed = 0;
  std::uint64_t skipped = 0;
  std::array<std::uint64_t, kSwfSkipReasonCount> skipped_by_reason{};
  // Saturating-clamp counters: q clamped down to max_procs, negative
  // submit times clamped up to 0 (plus any time clamped to the 2^40 cap).
  std::uint64_t clamped_procs = 0;
  std::uint64_t clamped_times = 0;
  // `; Key: Value` header directives, in the order-independent map form.
  std::map<std::string, std::string> directives;

  // The trace as a schedulable instance (no reservations; compose with a
  // scenario program via scenario_instance for availability).
  [[nodiscard]] Instance to_instance() const;

  // "parsed=5 skipped=5 (truncated=1 bad-integer=1 ...)" for logs/tools.
  [[nodiscard]] std::string skip_summary() const;
};

// Parsers (named *_swf_trace: core/io.hpp's read_swf is the strict reader
// for resched's own round-trip files; this family is the tolerant one for
// foreign archive traces). parse_swf_trace consumes a string,
// read_swf_trace a stream. load_swf_trace throws std::runtime_error when
// the file cannot be opened; record-level problems never throw (see
// skipped_by_reason).
[[nodiscard]] SwfTrace parse_swf_trace(std::string_view text,
                                       const SwfReadOptions& options = {});
[[nodiscard]] SwfTrace read_swf_trace(std::istream& in,
                                      const SwfReadOptions& options = {});
[[nodiscard]] SwfTrace load_swf_trace(const std::string& path,
                                      const SwfReadOptions& options = {});

}  // namespace resched
