#include "scenario/matrix.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

#include "generators/workload.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace resched {

namespace {

[[nodiscard]] std::vector<Job> scenario_jobs(const ScenarioSpec& spec,
                                             std::uint64_t seed) {
  switch (spec.workload) {
    case ScenarioWorkload::kRandom: {
      WorkloadConfig config;
      config.n = spec.n;
      config.m = spec.m;
      config.p_min = spec.p_min;
      config.p_max = spec.p_max;
      config.alpha = spec.alpha;
      config.mean_interarrival = spec.mean_interarrival;
      return random_workload(config, seed).jobs();
    }
    case ScenarioWorkload::kDailyCycle: {
      DailyCycleConfig config;
      config.n = spec.n;
      config.m = spec.m;
      config.p_min = spec.p_min;
      config.p_max = spec.p_max;
      config.alpha = spec.alpha;
      return daily_cycle_workload(config, seed).jobs();
    }
    case ScenarioWorkload::kBlocking:
      return blocking_workload(spec.m, spec.blocking_pairs,
                               spec.blocking_long_p);
    case ScenarioWorkload::kTrace:
      return spec.trace_jobs;
  }
  RESCHED_CHECK_MSG(false, "unknown scenario workload kind");
  return {};
}

}  // namespace

std::vector<Job> blocking_workload(ProcCount m, std::size_t pairs,
                                   Time long_p) {
  RESCHED_REQUIRE_MSG(m >= 1 && pairs >= 1 && long_p >= 1,
                      "blocking workload needs m, pairs, long_p >= 1");
  std::vector<Job> jobs;
  jobs.reserve(2 * pairs);
  for (std::size_t k = 0; k < pairs; ++k) {
    Job narrow;
    narrow.id = static_cast<JobId>(jobs.size());
    narrow.q = 1;
    narrow.p = long_p;
    narrow.name = tag("narrow", static_cast<std::int64_t>(k));
    jobs.push_back(std::move(narrow));
    Job wide;
    wide.id = static_cast<JobId>(jobs.size());
    wide.q = m;
    wide.p = 1;
    wide.name = tag("wide", static_cast<std::int64_t>(k));
    jobs.push_back(std::move(wide));
  }
  return jobs;
}

std::string to_string(CellVerdict verdict) {
  switch (verdict) {
    case CellVerdict::kHeld: return "held";
    case CellVerdict::kViolated: return "VIOLATED";
    case CellVerdict::kOutOfDomain: return "out-of-domain";
    case CellVerdict::kInconclusive: return "inconclusive";
  }
  return "?";
}

const ScenarioCell& ScenarioMatrixResult::cell(std::size_t row,
                                               std::size_t col) const {
  RESCHED_REQUIRE(row < scenarios.size() && col < schedulers.size());
  return cells[row * schedulers.size() + col];
}

Table ScenarioMatrixResult::survival_table() const {
  std::vector<std::string> headers{"scenario"};
  headers.insert(headers.end(), schedulers.begin(), schedulers.end());
  Table table(std::move(headers));
  for (std::size_t row = 0; row < scenarios.size(); ++row) {
    std::vector<std::string> cells_row{scenarios[row]};
    for (std::size_t col = 0; col < schedulers.size(); ++col)
      cells_row.push_back(to_string(cell(row, col).verdict));
    table.add_row(std::move(cells_row));
  }
  return table;
}

std::string ScenarioMatrixResult::to_csv() const {
  std::ostringstream out;
  out << "scenario,scheduler,verdict,scheduled,skipped,proven,violated,"
         "inconclusive,none,cmax.mean\n";
  for (std::size_t row = 0; row < scenarios.size(); ++row) {
    for (std::size_t col = 0; col < schedulers.size(); ++col) {
      const ScenarioCell& c = cell(row, col);
      char cmax[32];
      std::snprintf(cmax, sizeof(cmax), "%.6g", c.campaign.makespan.mean());
      out << c.scenario << ',' << c.campaign.scheduler << ','
          << to_string(c.verdict) << ',' << c.campaign.scheduled << ','
          << c.campaign.skipped << ',' << c.campaign.guarantee_proven << ','
          << c.campaign.guarantee_violated << ','
          << c.campaign.guarantee_inconclusive << ','
          << c.campaign.guarantee_none << ',' << cmax << '\n';
    }
  }
  return out.str();
}

ScenarioMatrixResult run_scenario_matrix(const std::vector<ScenarioSpec>& specs,
                                         const ScenarioMatrixConfig& config) {
  RESCHED_REQUIRE_MSG(!specs.empty(), "scenario matrix needs scenarios");
  const std::vector<std::string> names = config.schedulers.empty()
                                            ? registered_schedulers()
                                            : config.schedulers;
  RESCHED_REQUIRE_MSG(!names.empty(), "scenario matrix needs schedulers");

  // One seed per scenario, forked sequentially up front: each scenario's
  // campaign is a pure function of its own seed, independent of how many
  // threads ran the previous one.
  std::vector<std::uint64_t> seeds(specs.size());
  {
    Prng master(config.seed);
    for (std::uint64_t& seed : seeds) seed = master.fork_seed();
  }

  ScenarioMatrixResult out;
  out.schedulers = names;
  out.instances = config.instances;
  out.cells.reserve(specs.size() * names.size());

  for (std::size_t row = 0; row < specs.size(); ++row) {
    const ScenarioSpec& spec = specs[row];
    const std::string label =
        spec.name.empty() ? spec.program.name : spec.name;
    out.scenarios.push_back(label);

    // Compile once per scenario; every instance shares the reservation set.
    StepProfile reference_curve{0};
    const StepProfile* reference = nullptr;
    if (spec.reference.has_value()) {
      reference_curve = compile_scenario(*spec.reference).curve;
      reference = &reference_curve;
    }
    const CompiledScenario compiled = compile_scenario(spec.program, reference);
    const std::vector<Reservation> reservations =
        unavailability_to_reservations(
            scenario_unavailability(compiled, spec.m));

    CampaignConfig campaign;
    campaign.instances = config.instances;
    campaign.seed = seeds[row];
    campaign.threads = config.threads;
    campaign.schedulers = names;
    campaign.tau = config.tau;
    campaign.validate = config.validate;
    campaign.share_instances = config.share_instances;
    campaign.check_guarantees = true;
    campaign.guarantee_exact_n = config.guarantee_exact_n;

    const CampaignResult result = run_campaign(
        [&spec, &reservations](std::size_t, std::uint64_t seed) {
          return Instance(spec.m, scenario_jobs(spec, seed), reservations);
        },
        campaign);

    for (const CampaignCell& campaign_cell : result.cells) {
      ScenarioCell cell;
      cell.scenario = label;
      cell.campaign = campaign_cell;
      if (campaign_cell.scheduled == 0 && campaign_cell.skipped > 0) {
        cell.verdict = CellVerdict::kOutOfDomain;
      } else if (campaign_cell.guarantee_violated > 0) {
        cell.verdict = CellVerdict::kViolated;
      } else if (campaign_cell.scheduled > 0 &&
                 campaign_cell.guarantee_proven == campaign_cell.scheduled) {
        cell.verdict = CellVerdict::kHeld;
      } else {
        cell.verdict = CellVerdict::kInconclusive;
      }
      out.cells.push_back(std::move(cell));
    }
  }
  return out;
}

std::vector<ScenarioSpec> stock_scenarios(ProcCount m) {
  RESCHED_REQUIRE_MSG(m >= 4, "stock scenarios need m >= 4");
  std::vector<ScenarioSpec> specs;

  {
    // The diurnal availability program over the diurnal arrival workload:
    // the closest thing to a production day.
    ScenarioSpec spec;
    spec.program = daily_availability_program(m);
    spec.workload = ScenarioWorkload::kDailyCycle;
    spec.m = m;
    spec.n = 48;
    spec.p_max = 240;
    specs.push_back(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.program = maintenance_program(m);
    spec.m = m;
    specs.push_back(std::move(spec));
  }
  {
    // Brownout synchronizes with the intensity curve via wait_to_cross.
    ScenarioSpec spec;
    spec.program = brownout_program(m);
    spec.reference = daily_intensity_program(1440);
    spec.m = m;
    specs.push_back(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.program = flash_crowd_program(m);
    spec.m = m;
    spec.alpha = Rational{1, 4};
    specs.push_back(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.program = ramp_program(m);
    spec.m = m;
    spec.alpha = Rational{1, 4};
    specs.push_back(std::move(spec));
  }
  {
    // The control scenario: whole machine, no reservations -- which is
    // exactly where the blocking workload exposes fcfs (VIOLATED) while
    // the list schedulers keep Graham's bound (held), and where the
    // shelf algorithms are finally inside their domain.
    ScenarioSpec spec;
    spec.program = soak_program(m);
    spec.workload = ScenarioWorkload::kBlocking;
    spec.m = m;
    specs.push_back(std::move(spec));
  }
  return specs;
}

ScenarioSpec trace_scenario(const SwfTrace& trace, std::string name) {
  RESCHED_REQUIRE_MSG(!trace.jobs.empty(),
                      "trace has no schedulable job records");
  RESCHED_REQUIRE(trace.max_procs >= 1);
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.program = soak_program(trace.max_procs);
  spec.workload = ScenarioWorkload::kTrace;
  spec.m = trace.max_procs;
  spec.trace_jobs = trace.jobs;
  return spec;
}

std::vector<ScenarioSpec> stock_scenarios(ProcCount m, const SwfTrace& trace) {
  std::vector<ScenarioSpec> specs = stock_scenarios(m);
  specs.push_back(trace_scenario(trace));
  return specs;
}

std::vector<AvailabilityWindow> scenario_windows(
    const CompiledScenario& compiled, ProcCount m) {
  std::vector<AvailabilityWindow> windows;
  for (const Reservation& rectangle : unavailability_to_reservations(
           scenario_unavailability(compiled, m)))
    windows.push_back(AvailabilityWindow{
        rectangle.start, rectangle.end(), rectangle.q});
  return windows;
}

ServiceStepResult run_scenario_service_step(
    const Scheduler& scheduler, const ScenarioProgram& program,
    const std::optional<ScenarioProgram>& reference, const LoadGenConfig& load,
    std::uint64_t seed, double rate, ServiceConfig config) {
  StepProfile reference_curve{0};
  const StepProfile* reference_ptr = nullptr;
  if (reference.has_value()) {
    reference_curve = compile_scenario(*reference).curve;
    reference_ptr = &reference_curve;
  }
  const CompiledScenario compiled = compile_scenario(program, reference_ptr);
  config.availability = scenario_windows(compiled, load.m);
  return run_service_step(scheduler, load, seed, rate, config);
}

}  // namespace resched
