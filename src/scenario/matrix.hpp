// ScenarioMatrix: sweep scenario programs x the scheduler registry in one
// campaign and report which of the paper's guarantees survive where.
//
// A ScenarioSpec pairs an availability program (compiled once, decomposed
// once into the equivalent reservation set) with a workload source: the
// parametric generators, the daily arrival cycle, a fixed blocking workload
// (the FCFS worst case below), or a pre-parsed trace (scenario/swf_reader).
// run_scenario_matrix runs one guarantee-checking run_campaign per scenario
// and derives a verdict per (scenario, scheduler) cell:
//
//   held           every scheduled instance proved its bound
//   VIOLATED       some schedule exceeded a bound with an exact reference
//   out-of-domain  the scheduler rejected every instance (DomainError)
//   inconclusive   anything else: lower-bound checks that neither prove
//                  nor falsify, or instance classes with no finite
//                  guarantee at all (Theorem 1)
//
// Determinism: scenario campaigns run one after another, each internally
// parallel with run_campaign's bit-reproducibility contract, and the
// per-scenario seeds are forked sequentially up front -- so the whole
// matrix is a pure function of (specs, config), never of the thread count.
//
// The same compiled program also feeds the resident service harness:
// scenario_windows() turns its unavailability rectangles into
// ServiceConfig::availability, and run_scenario_service_step runs one
// fixed-rate step under the scenario's curve.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "scenario/swf_reader.hpp"
#include "sim/campaign.hpp"
#include "sim/service_sim.hpp"
#include "util/rational.hpp"
#include "util/table.hpp"

namespace resched {

enum class ScenarioWorkload {
  kRandom,      // random_workload with the spec's shape parameters
  kDailyCycle,  // daily_cycle_workload (release times follow the diurnal curve)
  kBlocking,    // blocking_workload(m, pairs, long_p) -- deterministic
  kTrace,       // the spec's fixed trace_jobs (e.g. from an SWF file)
};

// Alternating narrow-long / full-width jobs, all released at 0, ids
// interleaved (n1 w1 n2 w2 ...): `pairs` jobs of (q=1, p=long_p) and
// `pairs` of (q=m, p=1). A non-overtaking scheduler (fcfs) serializes every
// pair -- makespan pairs*(long_p+1) -- while the optimum packs all narrows
// in parallel: pairs + long_p. The ratio approaches 2 + long_p for many
// pairs, sailing past Graham's 2 - 1/m: the survival report's built-in
// guarantee-violation witness (list-scheduling bounds do not survive
// queue-order scheduling).
[[nodiscard]] std::vector<Job> blocking_workload(ProcCount m,
                                                 std::size_t pairs,
                                                 Time long_p);

struct ScenarioSpec {
  // Row label; defaults to program.name when empty.
  std::string name;
  // The availability program; its compiled curve becomes the reservation
  // set every instance of this scenario carries.
  ScenarioProgram program;
  // Reference curve for the program's wait_to_cross steps (compiled
  // without a reference itself).
  std::optional<ScenarioProgram> reference;

  ScenarioWorkload workload = ScenarioWorkload::kRandom;
  ProcCount m = 32;
  // kRandom / kDailyCycle shape parameters.
  std::size_t n = 32;
  Time p_min = 1;
  Time p_max = 60;
  Rational alpha{1, 2};
  // kRandom only: 0 = offline (no release times).
  double mean_interarrival = 0.0;
  // kBlocking parameters.
  std::size_t blocking_pairs = 4;
  Time blocking_long_p = 4;
  // kTrace: the fixed job list (every instance identical).
  std::vector<Job> trace_jobs;
};

struct ScenarioMatrixConfig {
  std::size_t instances = 8;
  std::uint64_t seed = 1;
  std::size_t threads = 0;  // forwarded to each run_campaign
  // Empty = the full registry (resolved once; fixes the column order).
  std::vector<std::string> schedulers;
  // Instances up to this size get exact B&B references (see CampaignConfig).
  std::size_t guarantee_exact_n = 9;
  Time tau = 10;
  bool validate = true;
  bool share_instances = true;
};

enum class CellVerdict { kHeld, kViolated, kOutOfDomain, kInconclusive };

[[nodiscard]] std::string to_string(CellVerdict verdict);

struct ScenarioCell {
  std::string scenario;
  CampaignCell campaign;  // metrics + guarantee tallies for this cell
  CellVerdict verdict = CellVerdict::kInconclusive;
};

struct ScenarioMatrixResult {
  std::vector<std::string> scenarios;   // row labels, spec order
  std::vector<std::string> schedulers;  // column labels, resolved order
  // Row-major: cells[row * schedulers.size() + col].
  std::vector<ScenarioCell> cells;
  std::size_t instances = 0;

  [[nodiscard]] const ScenarioCell& cell(std::size_t row,
                                         std::size_t col) const;
  // scenario x scheduler grid of verdicts.
  [[nodiscard]] Table survival_table() const;
  // Long form, one line per cell: scenario,scheduler,verdict,scheduled,
  // skipped,proven,violated,inconclusive,none,cmax.mean
  [[nodiscard]] std::string to_csv() const;
};

[[nodiscard]] ScenarioMatrixResult run_scenario_matrix(
    const std::vector<ScenarioSpec>& specs, const ScenarioMatrixConfig& config);

// The six committed scenario programs x stock workloads over an
// m-processor machine (tests/data/*.scn serialize exactly these programs).
[[nodiscard]] std::vector<ScenarioSpec> stock_scenarios(ProcCount m);

// A parsed SWF trace as a fixed-workload scenario row: whole machine
// (soak program over trace.max_procs), every instance the identical
// trace_jobs list. Requires a non-empty trace. tests/data/pwa_sample.swf
// is the committed sample row.
[[nodiscard]] ScenarioSpec trace_scenario(const SwfTrace& trace,
                                          std::string name = "trace");

// The stock matrix plus the trace row; the trace's own machine size wins
// for that row, so the matrix mixes machine widths on purpose.
[[nodiscard]] std::vector<ScenarioSpec> stock_scenarios(ProcCount m,
                                                        const SwfTrace& trace);

// A compiled availability program as service-harness windows: one
// AvailabilityWindow per unavailability rectangle.
[[nodiscard]] std::vector<AvailabilityWindow> scenario_windows(
    const CompiledScenario& compiled, ProcCount m);

// One fixed-rate resident-service step under the scenario's availability
// curve: compiles the program (against the compiled reference, when given),
// installs the windows into `config`, and runs run_service_step.
[[nodiscard]] ServiceStepResult run_scenario_service_step(
    const Scheduler& scheduler, const ScenarioProgram& program,
    const std::optional<ScenarioProgram>& reference, const LoadGenConfig& load,
    std::uint64_t seed, double rate, ServiceConfig config);

}  // namespace resched
