#include "scenario/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "util/checked.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace resched {

namespace {

[[nodiscard]] bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

[[noreturn]] void bad_program(const std::string& message) {
  throw std::invalid_argument("scenario program: " + message);
}

}  // namespace

std::string to_string(ScenarioStepKind kind) {
  switch (kind) {
    case ScenarioStepKind::kRampTo: return "ramp_to";
    case ScenarioStepKind::kSoakAt: return "soak_at";
    case ScenarioStepKind::kJumpTo: return "jump_to";
    case ScenarioStepKind::kWaitToCross: return "wait_to_cross";
  }
  return "?";
}

ScenarioStep ramp_to(std::int64_t target, Time duration) {
  return ScenarioStep{ScenarioStepKind::kRampTo, target, duration};
}

ScenarioStep soak_at(std::int64_t level, Time duration) {
  return ScenarioStep{ScenarioStepKind::kSoakAt, level, duration};
}

ScenarioStep jump_to(std::int64_t level) {
  return ScenarioStep{ScenarioStepKind::kJumpTo, level, 0};
}

ScenarioStep wait_to_cross(std::int64_t threshold) {
  return ScenarioStep{ScenarioStepKind::kWaitToCross, threshold, 0};
}

void validate_program(const ScenarioProgram& program) {
  if (program.name.empty()) bad_program("name must be non-empty");
  for (const char c : program.name)
    if (!valid_name_char(c))
      bad_program("name '" + program.name +
                  "' has characters outside [A-Za-z0-9_.-]");
  if (program.repeat < 1) bad_program("repeat must be >= 1");
  for (std::size_t i = 0; i < program.steps.size(); ++i) {
    const ScenarioStep& step = program.steps[i];
    const bool timed = step.kind == ScenarioStepKind::kRampTo ||
                       step.kind == ScenarioStepKind::kSoakAt;
    if (timed && step.duration < 1)
      bad_program("step " + std::to_string(i + 1) + " (" +
                  to_string(step.kind) + ") needs a duration >= 1");
    if (!timed && step.duration != 0)
      bad_program("step " + std::to_string(i + 1) + " (" +
                  to_string(step.kind) + ") takes no duration");
  }
}

CompiledScenario compile_scenario(const ScenarioProgram& program,
                                  const StepProfile* reference) {
  validate_program(program);
  CompiledScenario out;
  out.curve = StepProfile(program.initial);
  Time t = 0;
  std::int64_t level = program.initial;

  // Every level change is an add on [at, +inf): the curve is built
  // left-to-right, so each add appends at (or near) the tail and the whole
  // compile stays linear in the number of change points.
  const auto set_level = [&](Time at, std::int64_t value) {
    if (value == level) return;
    out.curve.add(at, kTimeInfinity, checked_sub(value, level));
    level = value;
  };

  for (std::int64_t round = 0; round < program.repeat; ++round) {
    for (const ScenarioStep& step : program.steps) {
      switch (step.kind) {
        case ScenarioStepKind::kJumpTo:
          set_level(t, step.level);
          break;
        case ScenarioStepKind::kSoakAt:
          set_level(t, step.level);
          t = checked_add(t, step.duration);
          break;
        case ScenarioStepKind::kRampTo: {
          const std::int64_t delta = checked_sub(step.level, level);
          if (delta == 0) {
            t = checked_add(t, step.duration);
            break;
          }
          const std::int64_t sign = delta > 0 ? 1 : -1;
          const std::int64_t magnitude = sign > 0 ? delta : checked_neg(delta);
          // level(t + o) = L + sign * floor(magnitude * o / d): step k
          // becomes active at offset ceil(k * d / magnitude), and the final
          // step lands exactly at o = d.
          for (std::int64_t k = 1; k <= magnitude; ++k) {
            const Time offset =
                ceil_div(checked_mul(k, step.duration), magnitude);
            out.curve.add(checked_add(t, offset), kTimeInfinity, sign);
          }
          level = step.level;
          t = checked_add(t, step.duration);
          break;
        }
        case ScenarioStepKind::kWaitToCross: {
          if (reference == nullptr)
            bad_program("wait_to_cross needs a reference curve");
          const std::int64_t at_cursor = reference->value_at(t);
          const Time crossed =
              at_cursor < step.level
                  ? reference->first_at_least(t, step.level)
                  : reference->first_below(t, kTimeInfinity, step.level);
          if (crossed == kTimeInfinity)
            bad_program("wait_to_cross " + std::to_string(step.level) +
                        ": the reference never crosses after t=" +
                        std::to_string(t));
          t = crossed;
          break;
        }
      }
    }
  }
  out.horizon = t;
  return out;
}

StepProfile min_profile(const StepProfile& a, const StepProfile& b) {
  StepProfile out(std::min(a.value_at(0), b.value_at(0)));
  std::int64_t current = std::min(a.value_at(0), b.value_at(0));
  Time t = 0;
  while (true) {
    const Time next = std::min(a.next_change_after(t), b.next_change_after(t));
    if (next == kTimeInfinity) break;
    const std::int64_t value = std::min(a.value_at(next), b.value_at(next));
    if (value != current) {
      out.add(next, kTimeInfinity, checked_sub(value, current));
      current = value;
    }
    t = next;
  }
  return out;
}

std::vector<Reservation> unavailability_to_reservations(
    const StepProfile& unavailability) {
  // Skyline stack: a rise opens a block at its height delta, a fall closes
  // the most recent blocks first (LIFO nesting keeps every emitted
  // rectangle maximal in its own layer). The sum of the emitted rectangles
  // reproduces the staircase exactly -- pinned by the round-trip fuzz.
  struct Block {
    Time start;
    std::int64_t height;
  };
  std::vector<Block> open;
  std::vector<Reservation> out;
  std::int64_t previous = 0;
  for (const StepProfile::Segment& segment : unavailability.segments()) {
    if (segment.value < 0)
      throw std::invalid_argument(
          "unavailability_to_reservations: profile dips below 0 at t=" +
          std::to_string(segment.start));
    if (segment.value > previous) {
      open.push_back(
          Block{segment.start, checked_sub(segment.value, previous)});
    } else if (segment.value < previous) {
      std::int64_t fall = checked_sub(previous, segment.value);
      while (fall > 0) {
        Block& top = open.back();
        const std::int64_t take = std::min(top.height, fall);
        out.push_back(Reservation{0, static_cast<ProcCount>(take),
                                  checked_sub(segment.start, top.start),
                                  top.start, ""});
        top.height = checked_sub(top.height, take);
        if (top.height == 0) open.pop_back();
        fall = checked_sub(fall, take);
      }
    }
    previous = segment.value;
  }
  if (previous != 0 || !open.empty())
    throw std::invalid_argument(
        "unavailability_to_reservations: profile never returns to 0 "
        "(reservations must be finite)");
  std::sort(out.begin(), out.end(),
            [](const Reservation& a, const Reservation& b) {
              return std::tie(a.start, a.p, a.q) < std::tie(b.start, b.p, b.q);
            });
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].id = static_cast<ReservationId>(i);
    out[i].name = tag("scn", static_cast<std::int64_t>(i));
  }
  return out;
}

StepProfile scenario_unavailability(const CompiledScenario& compiled,
                                    ProcCount m) {
  RESCHED_REQUIRE_MSG(m >= 1, "machine size must be >= 1");
  StepProfile u(0);
  if (compiled.horizon == 0) return u;
  if (compiled.curve.min_in(0, compiled.horizon) < 0 ||
      compiled.curve.max_in(0, compiled.horizon) > m)
    throw std::invalid_argument(
        "scenario availability leaves [0, m] before the horizon");
  for (const StepProfile::Segment& segment :
       compiled.curve.segments_in(0, compiled.horizon)) {
    const std::int64_t withdrawn = checked_sub(m, segment.value);
    if (withdrawn != 0) u.add(segment.start, segment.end, withdrawn);
  }
  return u;
}

Instance scenario_instance(ProcCount m, std::vector<Job> jobs,
                           const CompiledScenario& compiled) {
  return Instance(
      m, std::move(jobs),
      unavailability_to_reservations(scenario_unavailability(compiled, m)));
}

// ---- stock programs ------------------------------------------------------

ScenarioProgram daily_intensity_program(Time ticks_per_day) {
  RESCHED_REQUIRE_MSG(ticks_per_day >= 24,
                      "a day needs at least one tick per hour");
  // The kHourly curve of generators/workload.cpp, in percent. Hour h spans
  // [ceil(h * tpd / 24), ceil((h+1) * tpd / 24)) -- exactly the floor
  // mapping hour(t) = t * 24 / tpd the generator uses.
  static constexpr std::int64_t kHourlyPercent[24] = {
      20, 15, 10,  10,  10,  15, 30, 50, 80, 100, 110, 100,
      90, 100, 110, 110, 100, 90, 70, 60, 50, 40,  30,  25};
  ScenarioProgram program;
  program.name = "daily_intensity";
  program.initial = kHourlyPercent[0];
  for (int hour = 0; hour < 24; ++hour) {
    const Time begin = ceil_div(checked_mul(hour, ticks_per_day), 24);
    const Time end = ceil_div(checked_mul(hour + 1, ticks_per_day), 24);
    if (end > begin)
      program.steps.push_back(
          soak_at(kHourlyPercent[hour], checked_sub(end, begin)));
  }
  return program;
}

ScenarioProgram daily_availability_program(ProcCount m) {
  RESCHED_REQUIRE(m >= 4);
  // Night: whole machine. Working day: interactive users hold a quarter.
  // One day = 1440 ticks, three days.
  const std::int64_t daytime = checked_sub(m, m / 4);
  ScenarioProgram program;
  program.name = "daily_cycle";
  program.initial = m;
  program.repeat = 3;
  program.steps = {
      soak_at(m, 480),         // 00h-08h: night, fully available
      ramp_to(daytime, 120),   // 08h-10h: interactive load ramps in
      soak_at(daytime, 600),   // 10h-20h: working hours
      ramp_to(m, 120),         // 20h-22h: drains out
      soak_at(m, 120),         // 22h-24h: night again
  };
  return program;
}

ScenarioProgram maintenance_program(ProcCount m) {
  RESCHED_REQUIRE(m >= 2);
  ScenarioProgram program;
  program.name = "maintenance";
  program.initial = m;
  program.steps = {
      soak_at(m, 400),
      jump_to(m / 2),      // half the machine goes down for maintenance
      soak_at(m / 2, 200),
      jump_to(m),
      soak_at(m, 400),
  };
  return program;
}

ScenarioProgram brownout_program(ProcCount m) {
  RESCHED_REQUIRE(m >= 2);
  // Compiled against the daily intensity curve: shed half the machine
  // while demand is at its peak (>= 100%), restore once it falls off.
  ScenarioProgram program;
  program.name = "brownout";
  program.initial = m;
  program.steps = {
      wait_to_cross(100),   // demand reaches the peak plateau
      ramp_to(m / 2, 60),   // shed to half machine over an hour
      wait_to_cross(100),   // demand falls back under the plateau
      ramp_to(m, 60),
      soak_at(m, 240),
  };
  return program;
}

ScenarioProgram flash_crowd_program(ProcCount m) {
  RESCHED_REQUIRE(m >= 4);
  // A storm of reservations grabs three quarters of the machine in an
  // instant, four times in a row.
  ScenarioProgram program;
  program.name = "flash_crowd";
  program.initial = m;
  program.repeat = 4;
  program.steps = {
      soak_at(m, 200),
      jump_to(m / 4),
      soak_at(m / 4, 50),
      jump_to(m),
  };
  return program;
}

ScenarioProgram ramp_program(ProcCount m) {
  RESCHED_REQUIRE(m >= 4);
  ScenarioProgram program;
  program.name = "ramp";
  program.initial = m;
  program.steps = {
      ramp_to(m / 4, 300),
      soak_at(m / 4, 100),
      ramp_to(m, 300),
      soak_at(m, 100),
  };
  return program;
}

ScenarioProgram soak_program(ProcCount m) {
  RESCHED_REQUIRE(m >= 1);
  ScenarioProgram program;
  program.name = "soak";
  program.initial = m;
  program.steps = {soak_at(m, 1000)};
  return program;
}

}  // namespace resched
