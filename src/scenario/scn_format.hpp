// Text format for scenario programs (.scn files).
//
// Canonical form, round-trip exact (parse -> serialize -> parse is the
// identity, and serialize(parse(file)) reproduces a canonical file byte for
// byte):
//
//   # comment
//   scenario daily_cycle
//   initial 32
//   repeat 3
//     soak_at 32 480
//     ramp_to 24 120
//     soak_at 24 600
//     ramp_to 32 120
//     soak_at 32 120
//   end
//
// `repeat` is omitted when 1. Step lines are indented two spaces. Blank
// lines and `#` comments are allowed anywhere and dropped by the parser
// (canonical serialization emits none). Errors carry the 1-based line and
// column of the offending token.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "scenario/scenario.hpp"

namespace resched {

class ScnParseError : public std::runtime_error {
 public:
  ScnParseError(std::string message, std::size_t line, std::size_t column)
      : std::runtime_error(std::to_string(line) + ":" +
                           std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

// Parses one scenario program from text. Throws ScnParseError on malformed
// input (unknown directive, bad integer, missing end, trailing garbage).
[[nodiscard]] ScenarioProgram parse_scn(std::string_view text);

// Stream / file front-ends for parse_scn. load_scn throws
// std::runtime_error when the file cannot be opened.
[[nodiscard]] ScenarioProgram read_scn(std::istream& in);
[[nodiscard]] ScenarioProgram load_scn(const std::string& path);

// Canonical text for the program (validates first). parse_scn(serialize_scn
// (p)) == p for every valid program.
[[nodiscard]] std::string serialize_scn(const ScenarioProgram& program);
void save_scn(const ScenarioProgram& program, const std::string& path);

}  // namespace resched
