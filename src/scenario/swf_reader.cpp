#include "scenario/swf_reader.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace resched {

namespace {

// Times beyond ~2^40 ticks are archive noise (34 years at 1-second
// resolution); clamp instead of overflowing downstream arithmetic.
constexpr Time kTimeCap = Time{1} << 40;

// SWF fields are integers, but archives occasionally carry "123.0" or
// scientific notation; accept anything that round-trips through a double.
[[nodiscard]] std::optional<std::int64_t> parse_field(std::string_view text) {
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc() && ptr == end) return value;
  try {
    std::size_t consumed = 0;
    const double real = std::stod(std::string(text), &consumed);
    if (consumed != text.size() || !std::isfinite(real)) return std::nullopt;
    if (real >= 9.2e18 || real <= -9.2e18) return std::nullopt;
    return std::llround(real);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

struct TimeClamp {
  Time value;
  bool clamped;
};

[[nodiscard]] TimeClamp clamp_time(std::int64_t raw) {
  if (raw < 0) return {0, true};
  if (raw > kTimeCap) return {kTimeCap, true};
  return {raw, false};
}

}  // namespace

std::string to_string(SwfSkipReason reason) {
  switch (reason) {
    case SwfSkipReason::kTruncated: return "truncated";
    case SwfSkipReason::kBadInteger: return "bad-integer";
    case SwfSkipReason::kNonPositiveRuntime: return "nonpositive-runtime";
    case SwfSkipReason::kNonPositiveProcs: return "nonpositive-procs";
    case SwfSkipReason::kCancelled: return "cancelled";
  }
  return "?";
}

SwfTrace parse_swf_trace(std::string_view text, const SwfReadOptions& options) {
  SwfTrace trace;
  ProcCount header_max_procs = 0;

  const auto skip = [&trace](SwfSkipReason reason) {
    ++trace.skipped;
    ++trace.skipped_by_reason[static_cast<std::size_t>(reason)];
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == ';') {
      // `; Key: Value` directives; other comment lines (e.g. the archive's
      // free-form notes) are ignored.
      const std::string_view body = trim(line.substr(1));
      const std::size_t colon = body.find(':');
      if (colon == std::string_view::npos) continue;
      const std::string key{trim(body.substr(0, colon))};
      const std::string value{trim(body.substr(colon + 1))};
      if (key.empty()) continue;
      trace.directives[key] = value;
      if (key == "MaxProcs")
        if (const auto parsed = parse_field(value); parsed && *parsed > 0)
          header_max_procs = *parsed;
      continue;
    }

    if (options.max_jobs != 0 && trace.jobs.size() >= options.max_jobs) break;

    const std::vector<std::string> fields = split_ws(line);
    if (fields.size() < 11) {
      skip(SwfSkipReason::kTruncated);
      continue;
    }

    const auto job_number = parse_field(fields[0]);
    const auto submit = parse_field(fields[1]);
    const auto run_time = parse_field(fields[3]);
    const auto alloc_procs = parse_field(fields[4]);
    const auto req_procs = parse_field(fields[7]);
    const auto req_time = parse_field(fields[8]);
    const auto status = parse_field(fields[10]);
    if (!job_number || !submit || !run_time || !alloc_procs || !req_procs ||
        !req_time || !status) {
      skip(SwfSkipReason::kBadInteger);
      continue;
    }

    if (!options.include_cancelled && (*status == 0 || *status == 5)) {
      skip(SwfSkipReason::kCancelled);
      continue;
    }

    std::int64_t p_raw = *run_time > 0 ? *run_time : *req_time;
    if (p_raw <= 0) {
      skip(SwfSkipReason::kNonPositiveRuntime);
      continue;
    }
    std::int64_t q_raw = *alloc_procs > 0 ? *alloc_procs : *req_procs;
    if (q_raw <= 0) {
      skip(SwfSkipReason::kNonPositiveProcs);
      continue;
    }

    const TimeClamp release = clamp_time(*submit);
    if (release.clamped) ++trace.clamped_times;
    if (p_raw > kTimeCap) {
      p_raw = kTimeCap;
      ++trace.clamped_times;
    }

    Job job;
    job.id = static_cast<JobId>(trace.jobs.size());
    job.q = q_raw;
    job.p = p_raw;
    job.release = release.value;
    job.name = "swf" + std::to_string(*job_number);
    trace.jobs.push_back(std::move(job));
    ++trace.parsed;
  }

  trace.max_procs = header_max_procs > 0 ? header_max_procs
                                         : options.default_max_procs;
  if (trace.max_procs == 0)
    for (const Job& job : trace.jobs)
      trace.max_procs = std::max(trace.max_procs, job.q);
  if (trace.max_procs == 0) trace.max_procs = 1;

  for (Job& job : trace.jobs)
    if (job.q > trace.max_procs) {
      job.q = trace.max_procs;
      ++trace.clamped_procs;
    }
  return trace;
}

SwfTrace read_swf_trace(std::istream& in, const SwfReadOptions& options) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_swf_trace(buffer.str(), options);
}

SwfTrace load_swf_trace(const std::string& path, const SwfReadOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open SWF trace: " + path);
  return read_swf_trace(in, options);
}

Instance SwfTrace::to_instance() const {
  return Instance(max_procs, jobs, {});
}

std::string SwfTrace::skip_summary() const {
  std::ostringstream out;
  out << "parsed=" << parsed << " skipped=" << skipped;
  if (skipped > 0) {
    out << " (";
    bool first = true;
    for (std::size_t i = 0; i < kSwfSkipReasonCount; ++i) {
      if (skipped_by_reason[i] == 0) continue;
      if (!first) out << " ";
      out << to_string(static_cast<SwfSkipReason>(i)) << "="
          << skipped_by_reason[i];
      first = false;
    }
    out << ")";
  }
  return out.str();
}

}  // namespace resched
