#include "scenario/scn_format.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace resched {

namespace {

struct Token {
  std::string_view text;
  std::size_t column;  // 1-based
};

// Splits a line into whitespace-separated tokens, recording where each one
// starts. A `#` outside a token ends the line (comments).
[[nodiscard]] std::vector<Token> tokenize(std::string_view line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '#') break;
    const std::size_t begin = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    tokens.push_back(Token{line.substr(begin, i - begin), begin + 1});
  }
  return tokens;
}

[[nodiscard]] std::int64_t parse_int(const Token& token, std::size_t line_no,
                                     const char* what) {
  std::int64_t value = 0;
  const char* begin = token.text.data();
  const char* end = begin + token.text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end)
    throw ScnParseError(std::string("expected an integer ") + what +
                            ", got '" + std::string(token.text) + "'",
                        line_no, token.column);
  return value;
}

void expect_arity(const std::vector<Token>& tokens, std::size_t line_no,
                  std::size_t want) {
  if (tokens.size() > want)
    throw ScnParseError("unexpected trailing token '" +
                            std::string(tokens[want].text) + "'",
                        line_no, tokens[want].column);
  if (tokens.size() < want)
    throw ScnParseError("'" + std::string(tokens[0].text) + "' needs " +
                            std::to_string(want - 1) + " argument(s), got " +
                            std::to_string(tokens.size() - 1),
                        line_no, tokens[0].column);
}

}  // namespace

ScenarioProgram parse_scn(std::string_view text) {
  ScenarioProgram program;
  enum class State { kBeforeScenario, kHeader, kDone };
  State state = State::kBeforeScenario;
  bool saw_initial = false;
  bool saw_repeat = false;
  std::size_t line_no = 0;
  std::size_t end_line = 0;

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::vector<Token> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const Token& head = tokens[0];

    if (state == State::kDone)
      throw ScnParseError("content after 'end'", line_no, head.column);

    if (head.text == "scenario") {
      if (state != State::kBeforeScenario)
        throw ScnParseError("duplicate 'scenario' directive", line_no,
                            head.column);
      expect_arity(tokens, line_no, 2);
      program.name = std::string(tokens[1].text);
      state = State::kHeader;
      continue;
    }
    if (state == State::kBeforeScenario)
      throw ScnParseError("expected 'scenario <name>' first, got '" +
                              std::string(head.text) + "'",
                          line_no, head.column);

    if (head.text == "initial") {
      if (saw_initial)
        throw ScnParseError("duplicate 'initial'", line_no, head.column);
      if (!program.steps.empty())
        throw ScnParseError("'initial' must come before the steps", line_no,
                            head.column);
      expect_arity(tokens, line_no, 2);
      program.initial = parse_int(tokens[1], line_no, "level");
      saw_initial = true;
    } else if (head.text == "repeat") {
      if (saw_repeat)
        throw ScnParseError("duplicate 'repeat'", line_no, head.column);
      if (!program.steps.empty())
        throw ScnParseError("'repeat' must come before the steps", line_no,
                            head.column);
      expect_arity(tokens, line_no, 2);
      program.repeat = parse_int(tokens[1], line_no, "count");
      saw_repeat = true;
    } else if (head.text == "ramp_to") {
      expect_arity(tokens, line_no, 3);
      program.steps.push_back(
          ramp_to(parse_int(tokens[1], line_no, "level"),
                  parse_int(tokens[2], line_no, "duration")));
    } else if (head.text == "soak_at") {
      expect_arity(tokens, line_no, 3);
      program.steps.push_back(
          soak_at(parse_int(tokens[1], line_no, "level"),
                  parse_int(tokens[2], line_no, "duration")));
    } else if (head.text == "jump_to") {
      expect_arity(tokens, line_no, 2);
      program.steps.push_back(jump_to(parse_int(tokens[1], line_no, "level")));
    } else if (head.text == "wait_to_cross") {
      expect_arity(tokens, line_no, 2);
      program.steps.push_back(
          wait_to_cross(parse_int(tokens[1], line_no, "threshold")));
    } else if (head.text == "end") {
      expect_arity(tokens, line_no, 1);
      state = State::kDone;
      end_line = line_no;
    } else {
      throw ScnParseError("unknown directive '" + std::string(head.text) + "'",
                          line_no, head.column);
    }
  }

  if (state == State::kBeforeScenario)
    throw ScnParseError("missing 'scenario <name>' header", line_no, 1);
  if (state != State::kDone)
    throw ScnParseError("missing 'end'", line_no, 1);
  try {
    validate_program(program);
  } catch (const std::invalid_argument& ex) {
    throw ScnParseError(ex.what(), end_line, 1);
  }
  return program;
}

ScenarioProgram read_scn(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scn(buffer.str());
}

ScenarioProgram load_scn(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file: " + path);
  return read_scn(in);
}

std::string serialize_scn(const ScenarioProgram& program) {
  validate_program(program);
  std::ostringstream out;
  out << "scenario " << program.name << "\n";
  out << "initial " << program.initial << "\n";
  if (program.repeat != 1) out << "repeat " << program.repeat << "\n";
  for (const ScenarioStep& step : program.steps) {
    out << "  " << to_string(step.kind) << " " << step.level;
    if (step.kind == ScenarioStepKind::kRampTo ||
        step.kind == ScenarioStepKind::kSoakAt)
      out << " " << step.duration;
    out << "\n";
  }
  out << "end\n";
  return out.str();
}

void save_scn(const ScenarioProgram& program, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write scenario file: " + path);
  out << serialize_scn(program);
}

}  // namespace resched
