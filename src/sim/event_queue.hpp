// Stable time-ordered event queue for the discrete-event kernel.
//
// Events at equal times fire in insertion order (a monotone sequence number
// breaks ties), which makes simulations deterministic regardless of heap
// internals.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "util/require.hpp"

namespace resched {

template <typename Payload>
class EventQueue {
 public:
  void push(Time time, Payload payload) {
    RESCHED_REQUIRE(time >= 0);
    heap_.push(Entry{time, next_seq_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] Time next_time() const {
    RESCHED_REQUIRE(!heap_.empty());
    return heap_.top().time;
  }

  // Removes and returns the earliest event (FIFO among equal times).
  [[nodiscard]] std::pair<Time, Payload> pop() {
    RESCHED_REQUIRE(!heap_.empty());
    // Moving out of the top element before pop() is safe: the heap property
    // is not consulted again before the element is removed. This keeps
    // move-only payloads (e.g. std::function, unique_ptr) supported.
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    return {top.time, std::move(top.payload)};
  }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    Payload payload;
    // std::priority_queue is a max-heap; invert for earliest-first.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  std::priority_queue<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace resched
