// Resident cluster service: schedulers under sustained open-loop traffic.
//
// Every other driver in the repo is batch-mode (build instance -> schedule
// -> exit). This harness runs the cluster as a long-lived service on the
// sim/des kernel: an open-loop LoadGen feeds arrivals, and the scheduler
// under test is re-invoked on each arrival/completion/churn event over a
// rolling window of the waiting queue. Jobs the scheduler places at "now"
// start immediately; everything else keeps waiting for the next event. That
// is exactly how EASY/conservative run in production batch systems --
// re-plan on event, commit only the head of the plan.
//
// ## Incremental re-planning (ROADMAP item 2)
//
// Two planning paths produce bit-identical schedules:
//
//  * scratch  -- per decision, build an Instance: waiting window as jobs,
//    running jobs and availability windows as reservations relative to now,
//    and call Scheduler::schedule(). O(running + windows) profile rebuild
//    per decision.
//  * incremental -- keep ONE FreeProfile in absolute time for the whole
//    step. Churn windows are permanent capacity adjustments; planned jobs
//    live in retained plan frames above an O(1) checkpoint. Schedulers
//    that advertise append_only_replan (pure arrival-order folds: fcfs,
//    conservative) keep the plan across decisions -- a started job's
//    occupancy simply stays in its frame, and a decision re-solves only
//    the jobs that arrived since the plan was built (suffix repair).
//    Event-loop schedulers (easy) re-solve the window per decision on the
//    warm profile. Either way, plan upkeep -- rewinding frames, making
//    started-job occupancy permanent, compacting dead history -- runs
//    AFTER the decision's latency sample (settle(): respond first, then
//    reclaim), and preferentially at idle instants.
//
// Equivalence is structural -- replan() shares its core loop with
// schedule(), differing only by a time translation -- and enforced: with
// ServiceConfig::verify_incremental both paths run per decision and any
// start-time divergence trips RESCHED_CHECK (the churn differential fuzz in
// tests/test_churn_fuzz.cpp drives this across the whole registry).
//
// ## Churn
//
// An optional deterministic churn stream (generators/churn.hpp) perturbs
// the step mid-flight: waiting/running jobs are canceled, availability
// drops withdraw processors for a window, and pending windows are moved.
// Every applied event invalidates the current plan and triggers a repair
// dispatch. Cancelled measure-phase jobs are accounted separately so the
// measurement window still closes.
//
// A step runs three phases in the mutated-client style (SNIPPETS.md):
// warmup jobs prime the pipeline, measure jobs contribute samples, cooldown
// jobs hold the pressure while measurement drains. Recorded per step, all
// through the log-bucketed LatencyRecorder:
//   * scheduler-decision latency (wall-clock ns per re-plan invocation in
//     the measure window),
//   * job wait and response times (simulated ticks -- deterministic),
//   * queue depth over time (sampled every queue_sample_interval ticks; the
//     sampler chain is anchored at simulation start and guaranteed to leave
//     at least one sample whenever the step has a measure phase, even if
//     the backlog bail aborts the step during warmup).
//
// A sweep raises the offered rate from step_size to step_stop in step_size
// increments (exact integer step indices -- no accumulated floating-point
// drift) and reports the saturation knee: the first step whose queue growth
// diverges -- the backlog trips bail_queue_depth, or the sustained
// completion rate falls below saturation_fraction of the offered rate.
//
// Determinism: with record_wall_latency off, a step's entire result is a
// pure function of (scheduler, load config, seed, rate, churn config) --
// pinned by tests/test_service_sim.cpp. Wall-clock decision latency is
// inherently run-to-run noisy; everything else never is.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/scheduler.hpp"
#include "core/types.hpp"
#include "generators/churn.hpp"
#include "sim/latency_recorder.hpp"
#include "sim/load_gen.hpp"

namespace resched {

// Sample phases, counted in jobs (the open-loop analogue of mutated's
// pre_samples / samples / post_samples).
struct ServicePhases {
  std::uint64_t warmup = 200;
  std::uint64_t measure = 1000;
  std::uint64_t cooldown = 200;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return warmup + measure + cooldown;
  }
};

// A planned availability withdrawal: `width` processors are gone over
// [start, end). This is the service-side form of a scenario program's
// unavailability rectangles (scenario/matrix.hpp compiles programs into
// these); unlike churn drops they are known at step start, so the scheduler
// plans around them from the first decision.
struct AvailabilityWindow {
  Time start = 0;
  Time end = 0;
  ProcCount width = 0;

  friend bool operator==(const AvailabilityWindow&,
                         const AvailabilityWindow&) = default;
};

struct ServiceConfig {
  ServicePhases phases;
  // Rolling dispatch window: at most this many head-of-queue jobs are handed
  // to the scheduler per decision. Bounds per-event cost at saturation
  // (a real backfill lookahead), so a diverging queue cannot make one
  // decision O(backlog).
  std::size_t dispatch_window = 128;
  // Backlog bail-out: beyond this waiting-queue depth the step aborts and is
  // marked saturated (queue growth has clearly diverged).
  std::size_t bail_queue_depth = 5000;
  // Queue-depth sampling period (simulated ticks); the chain runs from
  // simulation start until measurement finishes, recording only samples
  // that fall inside the open measure window.
  Time queue_sample_interval = 500;
  // Saturation test: sustained completion rate below this fraction of the
  // offered rate marks the step saturated.
  double saturation_fraction = 0.95;
  // Wall-clock timing of each scheduler decision (steady_clock). Off =>
  // decision_ns stays empty and the whole result is deterministic.
  bool record_wall_latency = true;
  // Plan via Scheduler::replan on the persistent profile when the scheduler
  // advertises capabilities().incremental_replan; schedulers without the
  // capability fall back to the scratch path per decision.
  bool incremental = true;
  // Oracle mode: run BOTH paths per decision and RESCHED_CHECK that the
  // incremental plan equals the scratch plan shifted by now. Requires an
  // incremental-capable scheduler. Used by the differential churn fuzz.
  bool verify_incremental = false;
  // Dead plan history is coalesced (FreeProfile::compact_history) once
  // this many simulated ticks pass -- or sooner, after a fixed completion
  // budget, since each completion strands ~2 dead segments -- keeping the
  // persistent profile O(active horizon) instead of O(jobs ever started).
  // For append-capable schedulers this is also the retained plan's rebase
  // cadence: dropping the plan forces one full window re-solve, so the
  // interval bounds both the frame stack and the history drag. Compaction
  // runs outside the timed decision window (at idle when possible).
  Time compact_interval = 256;
  // Optional churn stream; ChurnConfig{} (rate 0) disables it.
  ChurnConfig churn;
  // Planned availability windows applied at step start (width >= 1,
  // end > start >= 0; overlapping windows must fit within m together --
  // checked at step start). Both planning paths see them: the persistent
  // profile loses the capacity permanently, and the scratch path rebuilds
  // them as reservations relative to now.
  std::vector<AvailabilityWindow> availability;
};

struct ServiceStepResult {
  double offered_rate = 0.0;  // jobs per kilotick
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  std::uint64_t canceled = 0;   // jobs removed by churn (waiting or running)
  std::uint64_t measured = 0;   // measure-phase jobs fully served
  std::uint64_t decisions = 0;  // scheduler invocations, all phases
  // Scheduler invocations whose wall latency falls inside the open measure
  // window -- decision_ns.count() equals this when record_wall_latency is
  // on. `decisions` above always counts every phase.
  std::uint64_t decisions_measured = 0;
  // Heap allocations performed inside measure-window decisions (sum over
  // the same windows decision_ns times): the delta of resched::alloc_count()
  // across the timed region. Deterministic -- heap traffic is a pure
  // function of the simulated state -- so it participates in the full
  // result equality pin. Steady-state incremental decisions target zero.
  std::uint64_t decision_allocs = 0;
  std::size_t peak_queue_depth = 0;
  std::size_t end_queue_depth = 0;
  Time sim_end = 0;

  // Incremental-path accounting (zero when the scratch path planned).
  std::uint64_t decisions_incremental = 0;  // decisions via replan()
  std::uint64_t decisions_scratch = 0;      // decisions via schedule()
  std::uint64_t snapshots_reused = 0;   // decisions reusing the live profile
  std::uint64_t suffix_jobs_replanned = 0;  // sum of re-solved window sizes
  std::uint64_t plan_frames_rewound = 0;    // frames unwound by rewind_to
  std::uint64_t history_compactions = 0;    // compact_history calls
  std::uint64_t compacted_segments = 0;     // segments they removed
  // Dispatches deferred because a same-tick completion had not drained yet
  // (the completion event at this tick re-dispatches with true capacity).
  std::uint64_t deferred_dispatches = 0;

  // Planned availability windows applied at step start (the scenario
  // program's rectangles; see ServiceConfig::availability).
  std::uint64_t scenario_windows = 0;

  // Churn accounting.
  std::uint64_t churn_events = 0;          // events applied
  std::uint64_t churn_skipped = 0;         // events with no feasible target
  std::uint64_t churn_cancel_waiting = 0;
  std::uint64_t churn_cancel_running = 0;
  std::uint64_t churn_drops = 0;
  std::uint64_t churn_moves = 0;

  LatencyRecorder wait_ticks;      // start - arrival, measure phase only
  LatencyRecorder response_ticks;  // completion - arrival, measure phase
  LatencyRecorder queue_depth;     // waiting-queue depth over measure window
  LatencyRecorder decision_ns;     // wall ns per decision in measure window

  double sustained_rate = 0.0;  // measured completions per kilotick
  bool saturated = false;

  friend bool operator==(const ServiceStepResult&,
                         const ServiceStepResult&) = default;
};

// Runs one fixed-rate step. The scheduler must accept reservations (running
// jobs are modeled as such); throws std::invalid_argument otherwise.
// `rate` is in jobs per kilotick.
[[nodiscard]] ServiceStepResult run_service_step(const Scheduler& scheduler,
                                                 const LoadGenConfig& load,
                                                 std::uint64_t seed,
                                                 double rate,
                                                 const ServiceConfig& config);

struct ServiceSweepResult {
  std::vector<ServiceStepResult> steps;  // rate = step_size * (i + 1)
  int knee_index = -1;                   // first saturated step, -1 if none

  [[nodiscard]] bool has_knee() const noexcept { return knee_index >= 0; }
  // Offered rate at the knee; requires has_knee().
  [[nodiscard]] double knee_rate() const;
};

// Number of steps a sweep with these parameters runs: the largest n with
// n * step_size <= step_stop, computed once from an exact integer step
// count (no per-iteration float accumulation; a half-ulp shortfall in
// step_stop/step_size still yields the intended final step).
[[nodiscard]] std::size_t service_sweep_step_count(double step_size,
                                                   double step_stop);

// Stepped saturation sweep: rates step_size, 2*step_size, ... up to
// step_stop (inclusive). Each step reuses the same derived seed, so every
// scheduler in a comparison faces an identical arrival sequence per rate.
[[nodiscard]] ServiceSweepResult run_service_sweep(const Scheduler& scheduler,
                                                   const LoadGenConfig& load,
                                                   std::uint64_t seed,
                                                   double step_size,
                                                   double step_stop,
                                                   const ServiceConfig& config);

}  // namespace resched
