// Resident cluster service: schedulers under sustained open-loop traffic.
//
// Every other driver in the repo is batch-mode (build instance -> schedule
// -> exit). This harness runs the cluster as a long-lived service on the
// sim/des kernel: an open-loop LoadGen feeds arrivals, and the scheduler
// under test is re-invoked *incrementally* on each arrival/completion event
// over a rolling window of the waiting queue, with the currently running
// jobs presented as reservations pinning their remaining occupancy. Jobs the
// scheduler places at "now" start immediately; everything else keeps
// waiting for the next event. That is exactly how EASY/conservative run in
// production batch systems -- re-plan on event, commit only the head of the
// plan.
//
// A step runs three phases in the mutated-client style (SNIPPETS.md):
// warmup jobs prime the pipeline, measure jobs contribute samples, cooldown
// jobs hold the pressure while measurement drains. Recorded per step, all
// through the log-bucketed LatencyRecorder:
//   * scheduler-decision latency (wall-clock ns per re-plan invocation),
//   * job wait and response times (simulated ticks -- deterministic),
//   * queue depth over time (sampled every queue_sample_interval ticks of
//     the measure window by a self-rescheduling DES event).
//
// A sweep raises the offered rate from step_size to step_stop in step_size
// increments and reports the saturation knee: the first step whose queue
// growth diverges -- the backlog trips bail_queue_depth, or the sustained
// completion rate falls below saturation_fraction of the offered rate.
//
// Determinism: with record_wall_latency off, a step's entire result is a
// pure function of (scheduler, load config, seed, rate) -- pinned by
// tests/test_service_sim.cpp. Wall-clock decision latency is inherently
// run-to-run noisy; everything else never is.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/scheduler.hpp"
#include "core/types.hpp"
#include "sim/latency_recorder.hpp"
#include "sim/load_gen.hpp"

namespace resched {

// Sample phases, counted in jobs (the open-loop analogue of mutated's
// pre_samples / samples / post_samples).
struct ServicePhases {
  std::uint64_t warmup = 200;
  std::uint64_t measure = 1000;
  std::uint64_t cooldown = 200;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return warmup + measure + cooldown;
  }
};

struct ServiceConfig {
  ServicePhases phases;
  // Rolling dispatch window: at most this many head-of-queue jobs are handed
  // to the scheduler per decision. Bounds per-event cost at saturation
  // (a real backfill lookahead), so a diverging queue cannot make one
  // decision O(backlog).
  std::size_t dispatch_window = 128;
  // Backlog bail-out: beyond this waiting-queue depth the step aborts and is
  // marked saturated (queue growth has clearly diverged).
  std::size_t bail_queue_depth = 5000;
  // Queue-depth sampling period (simulated ticks) during the measure window.
  Time queue_sample_interval = 500;
  // Saturation test: sustained completion rate below this fraction of the
  // offered rate marks the step saturated.
  double saturation_fraction = 0.95;
  // Wall-clock timing of each scheduler decision (steady_clock). Off =>
  // decision_ns stays empty and the whole result is deterministic.
  bool record_wall_latency = true;
};

struct ServiceStepResult {
  double offered_rate = 0.0;  // jobs per kilotick
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  std::uint64_t measured = 0;   // measure-phase jobs fully served
  std::uint64_t decisions = 0;  // scheduler invocations (all phases)
  std::size_t peak_queue_depth = 0;
  std::size_t end_queue_depth = 0;
  Time sim_end = 0;

  LatencyRecorder wait_ticks;      // start - arrival, measure phase only
  LatencyRecorder response_ticks;  // completion - arrival, measure phase
  LatencyRecorder queue_depth;     // waiting-queue depth over measure window
  LatencyRecorder decision_ns;     // wall ns per decision in measure window

  double sustained_rate = 0.0;  // measured completions per kilotick
  bool saturated = false;

  friend bool operator==(const ServiceStepResult&,
                         const ServiceStepResult&) = default;
};

// Runs one fixed-rate step. The scheduler must accept reservations (running
// jobs are modeled as such); throws std::invalid_argument otherwise.
// `rate` is in jobs per kilotick.
[[nodiscard]] ServiceStepResult run_service_step(const Scheduler& scheduler,
                                                 const LoadGenConfig& load,
                                                 std::uint64_t seed,
                                                 double rate,
                                                 const ServiceConfig& config);

struct ServiceSweepResult {
  std::vector<ServiceStepResult> steps;  // rate = step_size * (i + 1)
  int knee_index = -1;                   // first saturated step, -1 if none

  [[nodiscard]] bool has_knee() const noexcept { return knee_index >= 0; }
  // Offered rate at the knee; requires has_knee().
  [[nodiscard]] double knee_rate() const;
};

// Stepped saturation sweep: rates step_size, 2*step_size, ... up to
// step_stop (inclusive). Each step reuses the same derived seed, so every
// scheduler in a comparison faces an identical arrival sequence per rate.
[[nodiscard]] ServiceSweepResult run_service_sweep(const Scheduler& scheduler,
                                                   const LoadGenConfig& load,
                                                   std::uint64_t seed,
                                                   double step_size,
                                                   double step_stop,
                                                   const ServiceConfig& config);

}  // namespace resched
