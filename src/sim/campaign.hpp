// CampaignRunner: fan a generator-driven set of instances across schedulers
// on a thread pool, with bit-reproducible results.
//
// The sweep drivers (examples/campaign, bench_campaign) all share the same
// shape: generate N seeded instances, run every scheduler on each, aggregate
// ScheduleMetrics per scheduler. run_campaign is that engine. The work unit
// is one (instance, scheduler) pair, so a registry mixing a ~100x-slower
// scheduler (local-search) with cheap ones load-balances at scheduler
// granularity instead of serializing the tail behind one worker's whole
// instance. Determinism contract: the result is a pure function of
// (generator, config) -- never of the thread count, of scheduling order, or
// of the instance-sharing mode. This holds because
//   * each instance index gets its own PRNG seed, derived sequentially from
//     the master seed before any thread starts;
//   * an (instance, scheduler) task either regenerates its instance from
//     that per-index seed (share_instances = false) or reads the one
//     instance generated for its index (share_instances = true); both modes
//     hand the scheduler the same bits, so the aggregates are identical;
//   * per-task metrics land in a preallocated (instance, scheduler) slot
//     written by exactly one worker, and aggregation runs single-threaded
//     afterwards in (scheduler, instance) order.
//
// Sharing is safe because every read of a generated instance is const, and
// the one lazily cached structure underneath it (StepProfile's query index)
// publishes itself as an atomically installed snapshot -- invariant I5 in
// core/step_profile.hpp. Regeneration is kept as the default only because
// it is the seed behavior; share_instances skips instances-x-schedulers
// redundant generator runs and is the mode to use at production scale.
//
// Domain handling: schedulers report out-of-domain instances through the
// typed DomainError arm of ScheduleOutcome, which the runner counts per
// reason (CampaignCell::skipped_by_reason). Nothing is caught around
// schedule(): a RESCHED_REQUIRE / RESCHED_CHECK violation deep inside a
// scheduler propagates and aborts the whole campaign -- a tripped
// precondition is a bug to surface, not a skip to tally.
//
// Wall-clock timings are recorded per scheduler but excluded from
// to_table(false), which the determinism test compares across thread counts
// and sharing modes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "algorithms/scheduler.hpp"
#include "core/instance.hpp"
#include "core/types.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace resched {

// Builds the index-th instance of the campaign from its derived seed. Must
// be thread-safe for concurrent calls with distinct indices (pure functions
// of (index, seed) trivially are).
using InstanceGenerator =
    std::function<Instance(std::size_t index, std::uint64_t seed)>;

struct CampaignConfig {
  std::size_t instances = 16;
  std::uint64_t seed = 1;
  // 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  // Empty = every scheduler in the registry.
  std::vector<std::string> schedulers;
  // Bounded-slowdown threshold passed to compute_metrics.
  Time tau = 10;
  // Re-validate every schedule against the instance (differential oracle for
  // the scheduler + profile stack); throws on the first violation.
  bool validate = true;
  // true: generate each instance once -- on first touch, under a
  // per-instance std::call_once, so generation overlaps the task phase
  // instead of running behind a pregeneration barrier -- and let every
  // scheduler task read it shared; false: regenerate per task (seed
  // behavior). Aggregates are bit-identical either way.
  bool share_instances = false;
  // Run bounds/check_guarantee on every produced schedule and tally the
  // compliance verdicts per scheduler (the scenario-matrix survival
  // report). Off by default: it costs a makespan_lower_bound per task.
  bool check_guarantees = false;
  // With check_guarantees: instances of at most this many jobs (and no
  // release times) get an exact B&B reference, so a bound breach is a
  // definite kViolated instead of kInconclusive. 0 = lower bounds only.
  std::size_t guarantee_exact_n = 0;
};

// Aggregates over the instances one scheduler handled.
struct CampaignCell {
  std::string scheduler;
  std::size_t scheduled = 0;  // instances inside the algorithm's domain
  std::size_t skipped = 0;    // DomainError rejections (sum of the below)
  // Skip counts bucketed by DomainReason (index = enum value).
  std::array<std::size_t, kDomainReasonCount> skipped_by_reason{};
  OnlineStats makespan;
  OnlineStats utilization;
  OnlineStats mean_wait;
  OnlineStats max_wait;
  OnlineStats mean_bounded_slowdown;
  double seconds = 0.0;  // wall-clock inside schedule(), summed

  // Guarantee-compliance tallies over the scheduled instances (populated
  // only when CampaignConfig::check_guarantees is set; they sum to
  // `scheduled` then). `guarantee_none` counts instances whose class has
  // no finite guarantee at all (Theorem 1's unrestricted reservations).
  std::size_t guarantee_proven = 0;
  std::size_t guarantee_violated = 0;
  std::size_t guarantee_inconclusive = 0;
  std::size_t guarantee_none = 0;

  // Human-readable reason breakdown, e.g. "reservations=3 release-times=1";
  // empty when nothing was skipped.
  [[nodiscard]] std::string skip_reasons() const;
};

struct CampaignResult {
  std::size_t instances = 0;
  std::vector<CampaignCell> cells;  // one per scheduler, in request order

  // Aggregated metrics table; include_timing adds the (non-deterministic)
  // schedules/sec column.
  [[nodiscard]] Table to_table(bool include_timing = true) const;
};

[[nodiscard]] CampaignResult run_campaign(const InstanceGenerator& generator,
                                          const CampaignConfig& config);

}  // namespace resched
