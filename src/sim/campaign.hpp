// CampaignRunner: fan a generator-driven set of instances across schedulers
// on a thread pool, with bit-reproducible results.
//
// The sweep drivers (examples/campaign, bench_campaign) all share the same
// shape: generate N seeded instances, run every scheduler on each, aggregate
// ScheduleMetrics per scheduler. run_campaign is that engine. The work unit
// is one (instance, scheduler) pair, so a registry mixing a ~100x-slower
// scheduler (local-search) with cheap ones load-balances at scheduler
// granularity instead of serializing the tail behind one worker's whole
// instance. Determinism contract: the result is a pure function of
// (generator, config) -- never of the thread count or of scheduling order.
// This holds because
//   * each instance index gets its own PRNG seed, derived sequentially from
//     the master seed before any thread starts;
//   * every (instance, scheduler) task regenerates its instance from that
//     per-index seed, so each task owns its data (StepProfile's lazy query
//     index also makes shared const profiles unsafe to read concurrently --
//     regeneration sidesteps that entirely);
//   * per-task metrics land in a preallocated (instance, scheduler) slot
//     written by exactly one worker, and aggregation runs single-threaded
//     afterwards in (scheduler, instance) order.
//
// Wall-clock timings are recorded per scheduler but excluded from
// to_table(false), which the determinism test compares across thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace resched {

// Builds the index-th instance of the campaign from its derived seed. Must
// be thread-safe for concurrent calls with distinct indices (pure functions
// of (index, seed) trivially are).
using InstanceGenerator =
    std::function<Instance(std::size_t index, std::uint64_t seed)>;

struct CampaignConfig {
  std::size_t instances = 16;
  std::uint64_t seed = 1;
  // 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  // Empty = every scheduler in the registry.
  std::vector<std::string> schedulers;
  // Bounded-slowdown threshold passed to compute_metrics.
  Time tau = 10;
  // Re-validate every schedule against the instance (differential oracle for
  // the scheduler + profile stack); throws on the first violation.
  bool validate = true;
};

// Aggregates over the instances one scheduler handled.
struct CampaignCell {
  std::string scheduler;
  std::size_t scheduled = 0;  // instances inside the algorithm's domain
  std::size_t skipped = 0;    // std::invalid_argument (domain) rejections
  OnlineStats makespan;
  OnlineStats utilization;
  OnlineStats mean_wait;
  OnlineStats max_wait;
  OnlineStats mean_bounded_slowdown;
  double seconds = 0.0;  // wall-clock inside schedule(), summed
};

struct CampaignResult {
  std::size_t instances = 0;
  std::vector<CampaignCell> cells;  // one per scheduler, in request order

  // Aggregated metrics table; include_timing adds the (non-deterministic)
  // schedules/sec column.
  [[nodiscard]] Table to_table(bool include_timing = true) const;
};

[[nodiscard]] CampaignResult run_campaign(const InstanceGenerator& generator,
                                          const CampaignConfig& config);

}  // namespace resched
