
#include "sim/metrics.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"
#include <algorithm>

namespace resched {

ScheduleMetrics compute_metrics(const Instance& instance,
                                const Schedule& schedule, Time tau) {
  RESCHED_REQUIRE(tau >= 1);
  const ValidationResult valid = schedule.validate(instance);
  RESCHED_REQUIRE_MSG(valid.ok, "metrics need a feasible schedule: " +
                                    valid.error);
  ScheduleMetrics metrics;
  metrics.makespan = schedule.makespan(instance);
  metrics.utilization = schedule.utilization(instance);
  if (instance.n() == 0) return metrics;

  double wait_sum = 0.0;
  double slowdown_sum = 0.0;
  for (const Job& job : instance.jobs()) {
    const Time wait = checked_sub(schedule.start(job.id), job.release);
    wait_sum += static_cast<double>(wait);
    metrics.max_wait = std::max(metrics.max_wait, wait);
    const double denom = static_cast<double>(std::max(job.p, tau));
    const double slowdown =
        std::max(1.0, static_cast<double>(checked_add(wait, job.p)) / denom);
    slowdown_sum += slowdown;
    metrics.max_bounded_slowdown =
        std::max(metrics.max_bounded_slowdown, slowdown);
  }
  const double n = static_cast<double>(instance.n());
  metrics.mean_wait = wait_sum / n;
  metrics.mean_bounded_slowdown = slowdown_sum / n;
  return metrics;
}

}  // namespace resched
