// Open-loop load generator for the resident cluster service.
//
// Modeled on the `mutated` client lineage (SNIPPETS.md): arrivals follow a
// Poisson process at a configurable offered rate, *independent of service
// progress* -- the generator never waits for the cluster, which is what
// exposes a scheduler's saturation point instead of measuring coordinated
// omission. Job shapes reuse the generators/workload distributions
// (log-uniform or uniform runtimes, shared draw_width widths, alpha-capped),
// so service-harness traffic and the batch campaigns sample the same
// populations.
//
// Rates are expressed in jobs per kilotick (1000 simulated ticks); a sweep
// steps the rate by `step_size` up to `step_stop` (see sim/service_sim.hpp).
// Everything is deterministic given (config, seed): fixed-seed arrival
// sequences are pinned by goldens in tests/test_load_gen.cpp.
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "generators/workload.hpp"
#include "util/prng.hpp"

namespace resched {

struct LoadGenConfig {
  ProcCount m = 64;            // cluster size the widths are drawn against
  Time p_min = 1;              // service-time bounds (ticks)
  Time p_max = 100;
  bool log_uniform_p = true;   // false: uniform runtimes
  WidthDistribution width = WidthDistribution::kPowersOfTwo;
  Rational alpha{1};           // width cap: q <= alpha * m
};

// One generated arrival: absolute arrival tick plus the job's shape.
struct ArrivalSpec {
  Time time = 0;
  ProcCount q = 1;
  Time p = 1;

  friend bool operator==(const ArrivalSpec&, const ArrivalSpec&) = default;
};

class LoadGen {
 public:
  // Validates the config (throws std::invalid_argument). The stream is a
  // pure function of (config, seed, rate sequence).
  LoadGen(const LoadGenConfig& config, std::uint64_t seed);

  // Sets the offered rate for subsequent arrivals, in jobs per kilotick
  // (> 0). The arrival clock continues from where it is: a stepped sweep
  // raises the rate mid-stream without restarting the process.
  void set_rate(double jobs_per_kilotick);
  [[nodiscard]] double rate() const noexcept { return rate_; }

  // Draws the next arrival. The exponential inter-arrival gap saturates
  // against kTimeInfinity (the clock clamps instead of overflowing).
  [[nodiscard]] ArrivalSpec next();

  // Ticks of simulated time per offered job at the current rate.
  [[nodiscard]] double mean_interarrival() const noexcept {
    return 1000.0 / rate_;
  }

 private:
  LoadGenConfig config_;
  ProcCount q_cap_;
  Prng prng_;
  double rate_ = 1.0;
  double arrival_clock_ = 0.0;
};

}  // namespace resched
