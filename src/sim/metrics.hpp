// Schedule quality metrics beyond the makespan.
//
// The paper's criterion is C_max, but its practical discussion (FCFS
// starvation, aggressive backfilling trading fairness for utilisation) is
// about waiting: these metrics quantify that trade-off in the online
// experiments (E5/E10).
#pragma once

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace resched {

struct ScheduleMetrics {
  Time makespan = 0;
  double utilization = 0.0;       // work / available area in [0, C_max)
  double mean_wait = 0.0;         // avg (start - release)
  Time max_wait = 0;
  // Bounded slowdown: max(1, (wait + p) / max(p, tau)); the standard metric
  // for "small jobs should not starve behind big ones".
  double mean_bounded_slowdown = 0.0;
  double max_bounded_slowdown = 0.0;
};

// Requires a fully scheduled, feasible schedule. tau is the bounded-slowdown
// threshold (default 10 ticks).
[[nodiscard]] ScheduleMetrics compute_metrics(const Instance& instance,
                                              const Schedule& schedule,
                                              Time tau = 10);

}  // namespace resched
