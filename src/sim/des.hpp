// Minimal discrete-event simulation kernel.
//
// A thin deterministic clock + handler queue. The schedulers that need
// event-driven execution (EASY, the online batch wrapper) have their own
// specialised loops for clarity; this kernel backs the cluster simulator and
// is the extension point for users who want to script their own scenarios
// (see examples/online_cluster.cpp).
#pragma once

#include <functional>

#include "sim/event_queue.hpp"

namespace resched {

class Simulation {
 public:
  using Handler = std::function<void(Simulation&)>;

  // Schedules a handler at an absolute time >= now().
  void at(Time time, Handler handler);
  // Schedules a handler `delay` ticks from now.
  void after(Time delay, Handler handler);

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  // Runs every event with time <= horizon (all events when unbounded).
  // Handlers may schedule further events. Returns the final clock value:
  // after a bounded run (horizon < kTimeInfinity) the clock rests exactly at
  // the bound even if no event fired there, so stepped callers can resume
  // phase-by-phase; an unbounded drain leaves it at the last fired event.
  Time run(Time horizon = kTimeInfinity);

 private:
  Time now_ = 0;
  EventQueue<Handler> queue_;
};

}  // namespace resched
