#include "sim/campaign.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "bounds/checker.hpp"
#include "core/schedule.hpp"
#include "exact/bnb.hpp"
#include "sim/metrics.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"

namespace resched {

namespace {

// One (instance, scheduler) outcome, written by exactly one worker.
struct TaskResult {
  bool scheduled = false;
  bool skipped = false;  // DomainError from the scheduler entry point
  DomainReason reason = DomainReason::kOther;
  ScheduleMetrics metrics;
  double seconds = 0.0;
  // check_guarantees mode: the compliance verdict for this schedule.
  bool guarantee_checked = false;
  bool has_guarantee = false;
  Compliance compliance = Compliance::kInconclusive;
};

std::size_t resolve_threads(std::size_t requested, std::size_t task_count) {
  const std::size_t hardware = std::thread::hardware_concurrency();
  std::size_t threads = requested ? requested : (hardware ? hardware : 1);
  return std::min(threads, std::max<std::size_t>(task_count, 1));
}

// Runs body(0..count) across `threads` workers pulling from a shared
// counter; rethrows the first exception after every worker has drained.
// Task pickup order is irrelevant to the result by construction (each task
// writes its own slot), so this is determinism-neutral.
template <typename Body>
void parallel_for(std::size_t threads, std::size_t count, const Body& body) {
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto worker = [&]() noexcept {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t task = next.fetch_add(1, std::memory_order_relaxed);
      if (task >= count) return;
      try {
        body(task);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace

CampaignResult run_campaign(const InstanceGenerator& generator,
                            const CampaignConfig& config) {
  RESCHED_REQUIRE_MSG(generator != nullptr,
                      "campaign needs an instance generator");
  const std::vector<std::string> names =
      config.schedulers.empty() ? registered_schedulers() : config.schedulers;
  RESCHED_REQUIRE_MSG(!names.empty(), "campaign needs at least one scheduler");
  // Surface unknown scheduler names before spawning any thread.
  for (const std::string& name : names) (void)make_scheduler(name);

  // One deterministic seed per instance index, derived sequentially from the
  // master seed before any worker starts; which thread runs which index can
  // then never influence the data.
  std::vector<std::uint64_t> seeds(config.instances);
  {
    Prng master(config.seed);
    for (std::uint64_t& seed : seeds) seed = master.fork_seed();
  }

  // share_instances: one generator run per index instead of one per task.
  // No pregeneration barrier: the first task to touch index i generates it
  // under that instance's once_flag while workers on other indices keep
  // scheduling, so generation overlaps the task phase instead of
  // serializing ahead of it. Later tasks on i read the one built instance
  // const-shared, which StepProfile's snapshot index makes safe (I5).
  // call_once's "turns" semantics also keep a throwing generator exact:
  // the flag stays unset and the exception aborts the campaign as before.
  // Determinism is untouched -- the instance is a pure function of
  // (i, seeds[i]) no matter which worker builds it.
  std::vector<Instance> shared;
  std::deque<std::once_flag> shared_once;
  if (config.share_instances) {
    shared.resize(config.instances);
    // deque: once_flag is immovable, and the container never resizes after
    // this point.
    shared_once.resize(config.instances);
  }
  const auto shared_instance = [&](std::size_t i) -> const Instance& {
    std::call_once(shared_once[i],
                   [&] { shared[i] = generator(i, seeds[i]); });
    return shared[i];
  };

  std::vector<std::vector<TaskResult>> results(
      config.instances, std::vector<TaskResult>(names.size()));
  // Work unit = one (instance, scheduler) pair, not one instance: a
  // registry mixing a ~100x-slower scheduler (local-search) with cheap
  // ones would otherwise serialize the tail behind whichever worker drew
  // the slow scheduler's whole instance. The (i, s) result slot is written
  // by exactly one worker.
  const std::size_t task_count = config.instances * names.size();
  parallel_for(
      resolve_threads(config.threads, task_count), task_count,
      [&](std::size_t task) {
        const std::size_t i = task / names.size();
        const std::size_t s = task % names.size();
        // Share mode reads (generating on first touch) the per-index
        // instance; regenerate mode builds its own, whose lifetime must
        // span the whole task.
        std::optional<Instance> regenerated;
        const Instance& instance =
            config.share_instances
                ? shared_instance(i)
                : regenerated.emplace(generator(i, seeds[i]));
        TaskResult& slot = results[i][s];
        const auto scheduler = make_scheduler(names[s]);
        // resched-lint: determinism-audited(wall-latency telemetry only; never feeds schedules)
        const auto start = std::chrono::steady_clock::now();
        // No exception handling here on purpose: only the typed DomainError
        // arm means "outside the domain". A precondition tripped anywhere
        // inside the scheduler stack propagates through parallel_for and
        // aborts the campaign.
        ScheduleOutcome outcome = scheduler->schedule(instance);
        if (!outcome.ok()) {
          slot.skipped = true;
          slot.reason = outcome.error().reason;
          return;
        }
        slot.seconds = std::chrono::duration<double>(
        // resched-lint: determinism-audited(wall-latency telemetry only; never feeds schedules)
                           std::chrono::steady_clock::now() - start)
                           .count();
        const Schedule schedule = std::move(outcome).value();
        if (config.validate) {
          const ValidationResult check = schedule.validate(instance);
          RESCHED_CHECK_MSG(check.ok, "campaign: scheduler '" + names[s] +
                                          "' produced an infeasible "
                                          "schedule: " +
                                          check.error);
        }
        slot.metrics = compute_metrics(instance, schedule, config.tau);
        slot.scheduled = true;
        if (config.check_guarantees) {
          // An exact reference turns a bound breach into a definite
          // kViolated; it is worth a B&B only on tiny instances. Release
          // times are outside the B&B's model, so those fall back to the
          // certified lower bound (still sound: ratio <= bound proves).
          std::optional<Time> exact;
          if (instance.n() > 0 && instance.n() <= config.guarantee_exact_n &&
              !instance.has_release_times()) {
            const BnbResult bnb = branch_and_bound(
                instance, BnbOptions{.upper_bound_hint = slot.metrics.makespan});
            if (bnb.proven) exact = bnb.optimal;
          }
          const GuaranteeReport report =
              check_guarantee(instance, schedule, exact);
          slot.guarantee_checked = true;
          slot.has_guarantee = report.has_guarantee;
          slot.compliance = report.compliance;
        }
      });

  // Single-threaded aggregation in (scheduler, instance) order: OnlineStats
  // accumulation order is fixed, so the result is bit-identical for any
  // thread count.
  CampaignResult out;
  out.instances = config.instances;
  out.cells.resize(names.size());
  for (std::size_t s = 0; s < names.size(); ++s) {
    CampaignCell& cell = out.cells[s];
    cell.scheduler = names[s];
    for (std::size_t i = 0; i < config.instances; ++i) {
      const TaskResult& slot = results[i][s];
      if (!slot.scheduled) {
        // Every unscheduled slot must carry a typed DomainError: the
        // worker either scheduled, recorded a rejection, or threw (which
        // aborted the campaign before aggregation). Anything else would
        // silently corrupt the per-reason breakdown.
        RESCHED_CHECK_MSG(slot.skipped,
                          "campaign: unscheduled task without a domain "
                          "rejection (scheduler '" + names[s] + "')");
        ++cell.skipped;
        ++cell.skipped_by_reason[static_cast<std::size_t>(slot.reason)];
        continue;
      }
      ++cell.scheduled;
      if (slot.guarantee_checked) {
        if (!slot.has_guarantee) {
          ++cell.guarantee_none;
        } else if (slot.compliance == Compliance::kProven) {
          ++cell.guarantee_proven;
        } else if (slot.compliance == Compliance::kViolated) {
          ++cell.guarantee_violated;
        } else {
          ++cell.guarantee_inconclusive;
        }
      }
      cell.makespan.add(static_cast<double>(slot.metrics.makespan));
      cell.utilization.add(slot.metrics.utilization);
      cell.mean_wait.add(slot.metrics.mean_wait);
      cell.max_wait.add(static_cast<double>(slot.metrics.max_wait));
      cell.mean_bounded_slowdown.add(slot.metrics.mean_bounded_slowdown);
      cell.seconds += slot.seconds;
    }
  }
  return out;
}

std::string CampaignCell::skip_reasons() const {
  std::string out;
  for (std::size_t r = 0; r < kDomainReasonCount; ++r) {
    if (skipped_by_reason[r] == 0) continue;
    if (!out.empty()) out += ' ';
    out += to_string(static_cast<DomainReason>(r)) + "=" +
           std::to_string(skipped_by_reason[r]);
  }
  return out;
}

Table CampaignResult::to_table(bool include_timing) const {
  std::vector<std::string> headers{"scheduler",  "ok",       "skip",
                                   "cmax.mean",  "cmax.max", "util.mean",
                                   "wait.mean",  "wait.max", "bsld.mean"};
  if (include_timing) headers.push_back("sched/s");
  Table table(std::move(headers));
  for (const CampaignCell& cell : cells) {
    std::vector<std::string> row{
        cell.scheduler,
        std::to_string(cell.scheduled),
        std::to_string(cell.skipped)};
    const auto fmt = [](double v) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.4g", v);
      return std::string(buffer);
    };
    row.push_back(fmt(cell.makespan.mean()));
    row.push_back(fmt(cell.makespan.max()));
    row.push_back(fmt(cell.utilization.mean()));
    row.push_back(fmt(cell.mean_wait.mean()));
    row.push_back(fmt(cell.max_wait.max()));
    row.push_back(fmt(cell.mean_bounded_slowdown.mean()));
    if (include_timing)
      row.push_back(fmt(cell.seconds > 0.0
                            ? static_cast<double>(cell.scheduled) /
                                  cell.seconds
                            : 0.0));
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace resched
