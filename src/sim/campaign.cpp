#include "sim/campaign.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "algorithms/scheduler.hpp"
#include "core/schedule.hpp"
#include "sim/metrics.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"

namespace resched {

namespace {

// One (instance, scheduler) outcome, written by exactly one worker.
struct TaskResult {
  bool scheduled = false;
  ScheduleMetrics metrics;
  double seconds = 0.0;
};

}  // namespace

CampaignResult run_campaign(const InstanceGenerator& generator,
                            const CampaignConfig& config) {
  RESCHED_REQUIRE_MSG(generator != nullptr,
                      "campaign needs an instance generator");
  const std::vector<std::string> names =
      config.schedulers.empty() ? registered_schedulers() : config.schedulers;
  RESCHED_REQUIRE_MSG(!names.empty(), "campaign needs at least one scheduler");
  // Surface unknown scheduler names before spawning any thread.
  for (const std::string& name : names) (void)make_scheduler(name);

  // One deterministic seed per instance index, derived sequentially from the
  // master seed before any worker starts; which thread runs which index can
  // then never influence the data.
  std::vector<std::uint64_t> seeds(config.instances);
  {
    Prng master(config.seed);
    for (std::uint64_t& seed : seeds) seed = master.fork_seed();
  }

  std::vector<std::vector<TaskResult>> results(
      config.instances, std::vector<TaskResult>(names.size()));
  // Work unit = one (instance, scheduler) pair, not one instance: a
  // registry mixing a ~100x-slower scheduler (local-search) with cheap
  // ones would otherwise serialize the tail behind whichever worker drew
  // the slow scheduler's whole instance. Each task regenerates its
  // instance from the per-index seed, so tasks stay data-independent (and
  // StepProfile's lazy query index never sees a concurrent const read);
  // the (i, s) result slot is written by exactly one worker either way.
  const std::size_t task_count = config.instances * names.size();
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  const auto worker = [&]() noexcept {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t task = next.fetch_add(1, std::memory_order_relaxed);
      if (task >= task_count) return;
      const std::size_t i = task / names.size();
      const std::size_t s = task % names.size();
      try {
        const Instance instance = generator(i, seeds[i]);
        TaskResult& slot = results[i][s];
        const auto scheduler = make_scheduler(names[s]);
        const auto start = std::chrono::steady_clock::now();
        Schedule schedule;
        try {
          schedule = scheduler->schedule(instance);
        } catch (const std::invalid_argument&) {
          continue;  // outside the algorithm's domain; stays skipped
        }
        slot.seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        if (config.validate) {
          const ValidationResult check = schedule.validate(instance);
          RESCHED_CHECK_MSG(check.ok, "campaign: scheduler '" + names[s] +
                                          "' produced an infeasible "
                                          "schedule: " +
                                          check.error);
        }
        slot.metrics = compute_metrics(instance, schedule, config.tau);
        slot.scheduled = true;
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t hardware = std::thread::hardware_concurrency();
  std::size_t threads = config.threads ? config.threads
                                       : (hardware ? hardware : 1);
  threads = std::min(threads, std::max<std::size_t>(task_count, 1));
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }
  if (error) std::rethrow_exception(error);

  // Single-threaded aggregation in (scheduler, instance) order: OnlineStats
  // accumulation order is fixed, so the result is bit-identical for any
  // thread count.
  CampaignResult out;
  out.instances = config.instances;
  out.cells.resize(names.size());
  for (std::size_t s = 0; s < names.size(); ++s) {
    CampaignCell& cell = out.cells[s];
    cell.scheduler = names[s];
    for (std::size_t i = 0; i < config.instances; ++i) {
      const TaskResult& slot = results[i][s];
      if (!slot.scheduled) {
        ++cell.skipped;
        continue;
      }
      ++cell.scheduled;
      cell.makespan.add(static_cast<double>(slot.metrics.makespan));
      cell.utilization.add(slot.metrics.utilization);
      cell.mean_wait.add(slot.metrics.mean_wait);
      cell.max_wait.add(static_cast<double>(slot.metrics.max_wait));
      cell.mean_bounded_slowdown.add(slot.metrics.mean_bounded_slowdown);
      cell.seconds += slot.seconds;
    }
  }
  return out;
}

Table CampaignResult::to_table(bool include_timing) const {
  std::vector<std::string> headers{"scheduler",  "ok",       "skip",
                                   "cmax.mean",  "cmax.max", "util.mean",
                                   "wait.mean",  "wait.max", "bsld.mean"};
  if (include_timing) headers.push_back("sched/s");
  Table table(std::move(headers));
  for (const CampaignCell& cell : cells) {
    std::vector<std::string> row{
        cell.scheduler,
        std::to_string(cell.scheduled),
        std::to_string(cell.skipped)};
    const auto fmt = [](double v) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.4g", v);
      return std::string(buffer);
    };
    row.push_back(fmt(cell.makespan.mean()));
    row.push_back(fmt(cell.makespan.max()));
    row.push_back(fmt(cell.utilization.mean()));
    row.push_back(fmt(cell.mean_wait.mean()));
    row.push_back(fmt(cell.max_wait.max()));
    row.push_back(fmt(cell.mean_bounded_slowdown.mean()));
    if (include_timing)
      row.push_back(fmt(cell.seconds > 0.0
                            ? static_cast<double>(cell.scheduled) /
                                  cell.seconds
                            : 0.0));
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace resched
