#include "sim/load_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace resched {

LoadGen::LoadGen(const LoadGenConfig& config, std::uint64_t seed)
    : config_(config),
      q_cap_(std::max<ProcCount>(
          1, (config.alpha * Rational(config.m)).floor())),
      prng_(seed) {
  RESCHED_REQUIRE(config.m >= 1);
  RESCHED_REQUIRE(config.p_min >= 1 && config.p_min <= config.p_max);
  RESCHED_REQUIRE(config.alpha > Rational(0) && config.alpha <= Rational(1));
}

void LoadGen::set_rate(double jobs_per_kilotick) {
  RESCHED_REQUIRE_MSG(jobs_per_kilotick > 0.0,
                      "offered rate must be positive");
  rate_ = jobs_per_kilotick;
}

ArrivalSpec LoadGen::next() {
  // Exponential gap at the current rate; the clock saturates at
  // kTimeInfinity rather than overflowing llround (same contract as
  // random_workload's Poisson release times).
  const double u = prng_.uniform_real();
  arrival_clock_ += -mean_interarrival() * std::log(1.0 - u);
  ArrivalSpec spec;
  spec.time = saturating_ticks(arrival_clock_);
  spec.p = config_.log_uniform_p
               ? prng_.log_uniform_int(config_.p_min, config_.p_max)
               : prng_.uniform_int(config_.p_min, config_.p_max);
  spec.q = draw_width(prng_, config_.width, q_cap_);
  return spec;
}

}  // namespace resched
