#include "sim/service_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "core/arena.hpp"
#include "core/instance.hpp"
#include "core/profile_allocator.hpp"
#include "sim/des.hpp"
#include "util/checked.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"

namespace resched {
namespace {

constexpr int kWarmup = 0;
constexpr int kMeasure = 1;
constexpr int kCooldown = 2;

// Completion budget for history compaction: every completion strands ~2
// dead segments behind the clock, so compaction also fires after this many
// completions even when ServiceConfig::compact_interval ticks have not
// elapsed (a saturated step can see hundreds of completions per interval).
constexpr std::uint64_t kCompactCompletionBudget = 32;

// Salt folded into the step seed for the churn stream, so churn draws are
// independent of the arrival draws under the same seed.
constexpr std::uint64_t kChurnSeedSalt = 0x6368'7572'6e21'7331ULL;

struct ServiceJob {
  Time arrival = 0;
  ProcCount q = 1;
  Time p = 1;
  int phase = kWarmup;
};

// An active churn availability window: `width` processors withdrawn over
// [start, end). Kept (also) outside the profile so the scratch path can
// rebuild them as reservations and moves can find future windows.
struct ChurnWindow {
  Time start = 0;
  Time end = 0;
  ProcCount width = 0;
};

// One fixed-rate service step: owns the DES, the queue, the persistent
// capacity profile and the recorders.
class ServiceLoop {
 public:
  ServiceLoop(const Scheduler& scheduler, const LoadGenConfig& load,
              std::uint64_t seed, double rate, const ServiceConfig& config)
      : scheduler_(scheduler),
        config_(config),
        m_(load.m),
        use_replan_((config.incremental || config.verify_incremental) &&
                    scheduler.capabilities().incremental_replan),
        append_replan_(use_replan_ &&
                       scheduler.capabilities().append_only_replan),
        maintain_profile_(use_replan_ || config.churn.enabled() ||
                          !config.availability.empty()),
        gen_(load, seed),
        free_(StepProfile(static_cast<std::int64_t>(load.m))) {
    gen_.set_rate(rate);
    result_.offered_rate = rate;
    jobs_.reserve(config.phases.total());
    if (maintain_profile_) free_.set_retain_accepted(true);
    if (config.churn.enabled())
      churn_.emplace(config.churn, seed ^ kChurnSeedSalt);
  }

  ServiceStepResult run() {
    if (config_.phases.total() > 0) {
      apply_availability();
      schedule_next_arrival();
      // Sampler lifecycle: anchored at simulation start (not at the first
      // measure arrival), so a warmup-phase backlog bail can never leave
      // the chain unscheduled; it dies when measurement closes.
      if (config_.phases.measure > 0) schedule_queue_sample();
      if (churn_.has_value()) schedule_next_churn();
      sim_.run();
    }
    RESCHED_CHECK_MSG(busy_ == 0, "machines still busy after service drain");
    result_.end_queue_depth = waiting_.size();
    result_.sim_end = sim_.now();
    result_.measured = measured_done_;
    if (measured_done_ > 0) {
      // resched-lint: time-arith-audited(phases keep measure_end_ >= measure_begin_)
      const Time span = std::max<Time>(1, measure_end_ - measure_begin_);
      result_.sustained_rate =
          static_cast<double>(measured_done_) * 1000.0 /
          static_cast<double>(span);
    }
    if (config_.phases.measure > 0 && !result_.saturated) {
      // Queue growth diverged if measurement could not finish (bail aborted
      // the step; churn-canceled measure jobs are accounted, not blamed) or
      // completions fell behind the offered rate.
      result_.saturated =
          measured_done_ + measure_canceled_ < config_.phases.measure ||
          result_.sustained_rate <
              config_.saturation_fraction * result_.offered_rate;
    }
    return std::move(result_);
  }

 private:
  // resched-lint: determinism-audited(wall-latency percentiles only; sim time is the tick clock)
  using WallClock = std::chrono::steady_clock;
  // Running jobs keyed by arrival index: cancellation erases the record and
  // the stale completion event finds nothing. A sorted vector, not a map:
  // the population is bounded by what fits on m processors, inserts happen
  // inside the timed decision window (a map would pay one node allocation
  // per started job there, a vector reuses its high-water capacity), and
  // iteration stays in ascending key order -- the churn cancel pick and the
  // scratch-path reservation order depend on exactly that.
  struct RunningRec {
    Time end = 0;
    ProcCount q = 1;
  };
  using RunningVec = std::vector<std::pair<std::uint64_t, RunningRec>>;

  [[nodiscard]] RunningVec::iterator find_running(std::uint64_t index) {
    const auto it = std::lower_bound(
        running_.begin(), running_.end(), index,
        [](const auto& entry, std::uint64_t key) { return entry.first < key; });
    if (it != running_.end() && it->first == index) return it;
    return running_.end();
  }

  [[nodiscard]] int phase_of(std::uint64_t index) const noexcept {
    if (index < config_.phases.warmup) return kWarmup;
    if (index < config_.phases.warmup + config_.phases.measure)
      return kMeasure;
    return kCooldown;
  }

  // Measurement closes when every measure-phase job is accounted for --
  // served or churn-canceled (without the canceled term a canceled measure
  // job would hold the window open forever).
  [[nodiscard]] bool measure_finished() const noexcept {
    return measured_done_ + measure_canceled_ >= config_.phases.measure;
  }

  // Measurement window: open from the first measure-phase arrival until the
  // last measure-phase job is accounted.
  [[nodiscard]] bool in_measure() const noexcept {
    return measure_begin_ >= 0 && !measure_finished();
  }

  [[nodiscard]] bool drained() const noexcept {
    return emitted_ == config_.phases.total() && waiting_.empty() &&
           running_.empty();
  }

  void schedule_next_arrival() {
    if (aborted_ || emitted_ >= config_.phases.total()) return;
    const ArrivalSpec spec = gen_.next();
    const std::uint64_t index = emitted_++;
    sim_.at(std::max(spec.time, sim_.now()),
            [this, spec, index](Simulation&) { on_arrival(spec, index); });
  }

  void on_arrival(const ArrivalSpec& spec, std::uint64_t index) {
    if (aborted_) return;
    RESCHED_CHECK_MSG(index == jobs_.size(), "arrivals fired out of order");
    jobs_.push_back(
        ServiceJob{sim_.now(), spec.q, spec.p, phase_of(index)});
    waiting_.push_back(index);
    ++result_.arrivals;
    result_.peak_queue_depth =
        std::max(result_.peak_queue_depth, waiting_.size());
    if (jobs_.back().phase == kMeasure && measure_begin_ < 0) {
      measure_begin_ = sim_.now();
      result_.queue_depth.record(
          static_cast<std::int64_t>(waiting_.size()));
    }
    if (waiting_.size() > config_.bail_queue_depth) {
      // Divergence bail-out: stop the arrival chain and all dispatching;
      // already-running jobs drain, the backlog stays as evidence. The
      // queue_depth guarantee: a step with a measure phase always leaves at
      // least one sample, even when the bail hits during warmup.
      aborted_ = true;
      result_.saturated = true;
      if (config_.phases.measure > 0 && result_.queue_depth.count() == 0) {
        result_.queue_depth.record(
            static_cast<std::int64_t>(waiting_.size()));
      }
      return;
    }
    schedule_next_arrival();
    dispatch();
  }

  void on_complete(std::uint64_t index) {
    const auto it = find_running(index);
    if (it == running_.end()) return;  // churn-canceled; stale event
    const ServiceJob& job = jobs_[index];
    // resched-lint: time-arith-audited(busy_ tracks admitted q; stays in [0, m])
    busy_ -= job.q;
    running_.erase(it);
    ++result_.completed;
    ++completions_since_compact_;
    if (job.phase == kMeasure) {
      result_.response_ticks.record(checked_sub(sim_.now(), job.arrival));
      ++measured_done_;
      measure_end_ = sim_.now();
    }
    if (aborted_) return;
    dispatch();
  }

  void schedule_queue_sample() {
    sim_.after(config_.queue_sample_interval, [this](Simulation&) {
      if (aborted_ || measure_finished()) return;  // chain dies
      if (in_measure())
        result_.queue_depth.record(
            static_cast<std::int64_t>(waiting_.size()));
      schedule_queue_sample();
    });
  }

  // ---- churn -------------------------------------------------------------

  void schedule_next_churn() {
    const ChurnEvent event = churn_->next();
    sim_.after(event.gap, [this, event](Simulation&) {
      if (aborted_ || drained()) return;  // chain dies with the step
      apply_churn(event);
      schedule_next_churn();
    });
  }

  void note_canceled(const ServiceJob& job) {
    ++result_.canceled;
    if (job.phase == kMeasure) ++measure_canceled_;
  }

  void apply_churn(const ChurnEvent& event) {
    const Time now = sim_.now();
    // Every churn kind either mutates the world profile (which requires an
    // empty plan stack and changes what a re-solve would produce) or edits
    // the waiting queue under the retained plan's feet: the plan suffix it
    // invalidates is rewound here, and the next dispatch replans it.
    drop_retained();
    purge_windows(now);
    switch (event.kind) {
      case ChurnKind::kCancelWaiting: {
        if (waiting_.empty()) break;
        const std::size_t pos =
            static_cast<std::size_t>(event.pick % waiting_.size());
        note_canceled(jobs_[waiting_[pos]]);
        waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(pos));
        ++result_.churn_events;
        ++result_.churn_cancel_waiting;
        dispatch();  // repair: the queue suffix changed
        return;
      }
      case ChurnKind::kCancelRunning: {
        // Eligible: completion strictly in the future (a job ending at this
        // exact tick is effectively done; its event fires this tick).
        // Collected in ascending-key order (running_ is key-sorted), so the
        // pick is bit-identical to the old std::map iteration.
        // resched-lint: hot-path-alloc-audited(rare churn event, not per-decision)
        std::vector<std::size_t> eligible;
        for (std::size_t i = 0; i < running_.size(); ++i)
          if (running_[i].second.end > now) eligible.push_back(i);
        if (eligible.empty()) break;
        const auto it =
            running_.begin() +
            static_cast<std::ptrdiff_t>(eligible[event.pick % eligible.size()]);
        const RunningRec rec = it->second;
        note_canceled(jobs_[it->first]);
        // resched-lint: time-arith-audited(busy_ tracks admitted q; stays in [0, m])
        busy_ -= rec.q;
        running_.erase(it);  // the pending completion event becomes a no-op
        if (maintain_profile_)
          free_.adjust_capacity(now, rec.end,
                                static_cast<std::int64_t>(rec.q));
        ++result_.churn_events;
        ++result_.churn_cancel_running;
        dispatch();  // repair: capacity rose at now
        return;
      }
      case ChurnKind::kAvailabilityDrop: {
        const Time start = checked_add(now, event.lead);
        const Time end = checked_add(start, event.duration);
        // Clamp the width to what the window can afford: running jobs (and
        // earlier windows) already hold their processors.
        const std::int64_t width =
            std::min<std::int64_t>(event.width, free_.profile().min_in(start, end));
        if (width <= 0) break;
        free_.adjust_capacity(start, end, -width);
        windows_.push_back(
            ChurnWindow{start, end, static_cast<ProcCount>(width)});
        schedule_window_end(end);
        ++result_.churn_events;
        ++result_.churn_drops;
        dispatch();  // repair: the plan horizon lost capacity
        return;
      }
      case ChurnKind::kReservationMove: {
        // resched-lint: hot-path-alloc-audited(rare churn event, not per-decision)
        std::vector<std::size_t> future;
        for (std::size_t i = 0; i < windows_.size(); ++i)
          if (windows_[i].start > now) future.push_back(i);
        if (future.empty()) break;
        ChurnWindow& window = windows_[future[event.pick % future.size()]];
        // resched-lint: time-arith-audited(windows are built with end >= start)
        const Time duration = window.end - window.start;
        free_.adjust_capacity(window.start, window.end,
                              static_cast<std::int64_t>(window.width));
        // resched-lint: time-arith-audited(generator-bounded shift, clamped below)
        Time moved = window.start + event.shift;
        // resched-lint: time-arith-audited(sim clock is horizon-bounded)
        if (moved <= now) moved = now + 1;
        const Time moved_end = checked_add(moved, duration);
        if (free_.profile().min_in(moved, moved_end) >= window.width) {
          free_.adjust_capacity(moved, moved_end,
                                -static_cast<std::int64_t>(window.width));
          window.start = moved;
          window.end = moved_end;
          schedule_window_end(moved_end);
          ++result_.churn_events;
          ++result_.churn_moves;
          dispatch();  // repair: capacity moved in time
        } else {
          // Infeasible at the shifted position: restore the original
          // window (always fits -- it was just vacated) and skip.
          free_.adjust_capacity(window.start, window.end,
                                -static_cast<std::int64_t>(window.width));
          ++result_.churn_skipped;
        }
        return;
      }
    }
    ++result_.churn_skipped;  // no eligible target for this event
  }

  // Planned (scenario) availability windows, applied once before the first
  // arrival. They ride the exact churn-drop machinery -- permanent capacity
  // withdrawal on the persistent profile, a windows_ record for the scratch
  // path's reservation rebuild, a wakeup at each window end -- but unlike
  // drops they are part of the step's contract: an infeasible window (the
  // stack would dip below zero processors) is a configuration error, not a
  // skip.
  void apply_availability() {
    for (const AvailabilityWindow& window : config_.availability) {
      RESCHED_REQUIRE_MSG(window.width >= 1 && window.start >= 0 &&
                              window.end > window.start,
                          "availability window needs width >= 1 and "
                          "end > start >= 0");
      RESCHED_REQUIRE_MSG(
          free_.profile().min_in(window.start, window.end) >= window.width,
          "availability windows exceed the machine where they overlap");
      free_.adjust_capacity(window.start, window.end,
                            -static_cast<std::int64_t>(window.width));
      windows_.push_back(ChurnWindow{window.start, window.end, window.width});
      schedule_window_end(window.end);
      ++result_.scenario_windows;
    }
  }

  // A window's end is a capacity-increase instant with no natural DES
  // event; without this a blocked job could wait past its feasible start
  // until the next arrival/completion (or forever).
  void schedule_window_end(Time end) {
    sim_.at(end, [this](Simulation&) {
      if (!aborted_) dispatch();
    });
  }

  void purge_windows(Time now) {
    std::erase_if(windows_,
                  [now](const ChurnWindow& w) { return w.end <= now; });
  }

  // ---- planning ----------------------------------------------------------

  // Coalesce dead plan history behind the clock and re-warm the query
  // index (compact_history drops it; the throwaway probe rebuilds it here
  // so no timed decision pays the rebuild). Callers gate the cadence.
  void compact_now(Time now) {
    last_compact_ = now;
    completions_since_compact_ = 0;
    const std::size_t removed = free_.compact_history(now);
    if (removed > 0) {
      ++result_.history_compactions;
      result_.compacted_segments += removed;
    }
    static_cast<void>(free_.profile().min_in(now, checked_add(now, 1)));
  }

  [[nodiscard]] bool compact_due(Time now, Time threshold) const {
    // resched-lint: time-arith-audited(monotonic sim clock: now >= last_compact_)
    return now - last_compact_ >= threshold ||
           completions_since_compact_ >= kCompactCompletionBudget;
  }

  // Fills the persistent wakeups_ buffer (capacity reused across
  // decisions; a fresh vector here would be one heap event per decision).
  const std::vector<Time>& collect_wakeups(Time now) {
    wakeups_.clear();
    for (const auto& [index, rec] : running_) wakeups_.push_back(rec.end);
    for (const ChurnWindow& w : windows_)
      if (w.end > now) wakeups_.push_back(w.end);
    return wakeups_;
  }

  // Rewind the retained plan's frames off the persistent profile
  // (O(touched), index stays warm) and forget its starts. Called whenever
  // an event invalidates the plan suffix: a churn mutation (it needs the
  // empty stack for adjust_capacity and changes what a re-solve would
  // produce), a queue edit, or the periodic compaction rebase. Jobs that
  // started *under* the plan were living inside their plan frames; the
  // rewind takes their occupancy with it, so it is re-applied permanently
  // here (only the [now, end) remainder -- earlier history is dead).
  void drop_retained() {
    if (!retained_live_) return;
    result_.plan_frames_rewound +=
        free_.open_commits() - retained_plan_.base.depth;
    free_.rewind_to(retained_plan_.base);
    retained_live_ = false;
    retained_plan_.starts.clear();  // capacity survives for the next plan
    const Time now = sim_.now();
    for (const std::uint64_t index : framed_) {
      const auto it = find_running(index);
      if (it == running_.end() || it->second.end <= now) continue;
      free_.adjust_capacity(now, it->second.end,
                            -static_cast<std::int64_t>(it->second.q));
    }
    framed_.clear();
  }

  // Append-mode suffix repair: plan only the jobs that arrived since the
  // retained plan, on the profile that still holds the prefix's frames.
  // Valid exactly for append_only_replan schedulers (FCFS folds): the
  // prefix's re-solve is bit-identical to the retained plan, so only the
  // suffix is new work. `not_before` continues fcfs's non-overtaking chain.
  void append_suffix(Time now, std::size_t planned, std::size_t k) {
    window_jobs_.clear();
    for (std::size_t j = planned; j < k; ++j) {
      const ServiceJob& job = jobs_[waiting_[j]];
      window_jobs_.push_back(Job{static_cast<JobId>(j - planned), job.q,
                                 job.p, job.arrival, ""});
    }
    const std::vector<Time>& wakeups = collect_wakeups(now);
    const Time floor = std::max(
        now, retained_plan_.starts.empty() ? now
                                           : retained_plan_.starts.back());
    const Schedule plan = scheduler_.replan(ReplanRequest{
        free_, window_jobs_, wakeups, m_, now, floor, &decision_arena_});
    for (std::size_t j = planned; j < k; ++j)
      retained_plan_.starts.push_back(
          plan.start(static_cast<JobId>(j - planned)));
    result_.suffix_jobs_replanned += k - planned;
  }

  // Incremental path: plan directly on the persistent absolute-time
  // profile. Append-capable schedulers keep their plan frames open across
  // decisions and replan only the arrived suffix; the rest replan the
  // window each decision (checkpoint -> replan -> rewind, index kept
  // warm). Returned starts are absolute and aligned with the window.
  const std::vector<Time>& plan_incremental(Time now, std::size_t k) {
    // The retained plan survives starts and completions outright; settle()
    // rebases it (drop + compact, after the latency sample) once the
    // compaction deadline passes, so the frame stack and the dead history
    // stay bounded and the next decision here re-solves the full window.
    if (append_replan_ && retained_live_) {
      const std::size_t planned = retained_plan_.starts.size();
      RESCHED_CHECK_MSG(planned <= k,
                        "retained plan outlived a queue shrink");
      if (planned < k) append_suffix(now, planned, k);
      return retained_plan_.starts;
    }
    drop_retained();
    retained_plan_.starts.clear();
    window_jobs_.clear();
    for (std::size_t j = 0; j < k; ++j) {
      const ServiceJob& job = jobs_[waiting_[j]];
      window_jobs_.push_back(
          Job{static_cast<JobId>(j), job.q, job.p, job.arrival, ""});
    }
    const std::vector<Time>& wakeups = collect_wakeups(now);
    retained_plan_.base = free_.checkpoint();
    const Schedule plan = scheduler_.replan(ReplanRequest{
        free_, window_jobs_, wakeups, m_, now, now, &decision_arena_});
    result_.suffix_jobs_replanned += k;
    for (std::size_t j = 0; j < k; ++j)
      retained_plan_.starts.push_back(plan.start(static_cast<JobId>(j)));
    // Retain for every scheduler: append-capable ones reuse the plan on
    // later decisions; the rest have it rewound by settle() right after
    // this decision's latency sample -- the rewind prepares the NEXT
    // decision and does not belong in this one's timed window.
    retained_live_ = true;
    return retained_plan_.starts;
  }

  // Scratch path: translate the live state into a fresh Instance relative
  // to now (running jobs and churn windows as reservations) and full-solve.
  Schedule plan_scratch(Time now, std::size_t k) {
    // resched-lint: hot-path-alloc-audited(scratch full-solve, non-incremental schedulers only)
    std::vector<Job> window;
    window.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      const ServiceJob& job = jobs_[waiting_[j]];
      window.push_back(Job{static_cast<JobId>(j), job.q, job.p, 0, ""});
    }
    // resched-lint: hot-path-alloc-audited(scratch full-solve, non-incremental schedulers only)
    std::vector<Reservation> held;
    held.reserve(running_.size() + windows_.size());
    ReservationId rid = 0;
    for (const auto& [index, rec] : running_) {
      // Strictly positive by the same-tick drain in dispatch(): a job
      // completing at this exact tick is never presented as a phantom
      // one-tick reservation.
      const Time remaining = checked_sub(rec.end, now);
      held.push_back(Reservation{rid++, rec.q, remaining, 0, ""});
    }
    for (const ChurnWindow& w : windows_) {
      if (w.end <= now) continue;
      const Time from = std::max(w.start, now);
      held.push_back(Reservation{rid++, w.width, checked_sub(w.end, from),
                                 checked_sub(from, now), ""});
    }
    const Instance instance(m_, std::move(window), std::move(held));
    return scheduler_.schedule(instance).value();
  }

  // Re-plan on event: hand the scheduler the head of the waiting queue,
  // then commit exactly the jobs it placed at the current instant.
  void dispatch() {
    const Time now = sim_.now();
    if (waiting_.empty()) {
      // Idle-time rebase: when a compaction is due (or due soon -- half
      // the interval, so an arrival landing just past the deadline cannot
      // force it into a timed decision) and there is nothing to plan,
      // dropping the retained frames and compacting here is almost free,
      // and the next arrival rebuilds a plan for a near-empty queue.
      // Under sustained pressure the queue never empties and the
      // in-decision rebase in plan_incremental() fires instead, where the
      // scratch alternative it replaces is expensive anyway. This keeps
      // the periodic rebase spike out of the sub-saturation decision tail.
      if (use_replan_ && profile_live_ &&
          compact_due(now, config_.compact_interval / 2)) {
        drop_retained();
        compact_now(now);
      }
      return;
    }
    // Same-tick completion drain: if any running job ends at this exact
    // tick but its completion event has not fired yet, defer -- that event
    // re-dispatches with the processors truly free. This removes both the
    // phantom one-tick reservation and any transient over-busy planning.
    for (const auto& [index, rec] : running_) {
      if (rec.end == now) {
        ++result_.deferred_dispatches;
        return;
      }
    }
    // Scope reset: everything the previous decision bump-allocated is dead
    // by contract (ReplanRequest::scratch), so the arena rewinds to empty
    // while keeping its chunks -- steady-state decisions reuse warm memory.
    decision_arena_.reset();
    const bool time_it = config_.record_wall_latency;
    const std::uint64_t allocs_begin = alloc_count();
    const WallClock::time_point wall_begin =
        time_it ? WallClock::now() : WallClock::time_point{};

    const std::size_t k = std::min(waiting_.size(), config_.dispatch_window);
    purge_windows(now);

    head_.clear();  // window positions starting now
    if (use_replan_) {
      const std::vector<Time>& starts = plan_incremental(now, k);
      ++result_.decisions_incremental;
      if (profile_live_) ++result_.snapshots_reused;
      profile_live_ = true;
      if (config_.verify_incremental) {
        // Full re-solve oracle per decision. With a retained plan this is
        // the strongest form of the append-equivalence claim: the prefix
        // starts were computed at an earlier instant and must still match
        // a from-scratch solve at this one.
        const Schedule oracle = plan_scratch(now, k);
        ++result_.decisions_scratch;
        for (std::size_t j = 0; j < k; ++j) {
          RESCHED_CHECK_MSG(
              starts[j] ==
                  checked_add(oracle.start(static_cast<JobId>(j)), now),
              "incremental replan diverged from the full re-solve oracle");
        }
      }
      for (std::size_t j = 0; j < k; ++j)
        if (starts[j] == now) head_.push_back(j);
    } else {
      const Schedule plan = plan_scratch(now, k);
      ++result_.decisions_scratch;
      for (std::size_t j = 0; j < k; ++j)
        if (plan.start(static_cast<JobId>(j)) == 0) head_.push_back(j);
    }
    ++result_.decisions;

    for (auto pos = head_.rbegin(); pos != head_.rend(); ++pos) {
      start_job(waiting_[*pos]);
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(*pos));
      // The retained plan tracks the queue: the started job leaves both.
      // Its occupancy stays behind in its plan frame (see start_job), so
      // the remaining starts are untouched -- a re-solve of the remaining
      // queue sees the identical profile.
      if (retained_live_)
        retained_plan_.starts.erase(retained_plan_.starts.begin() +
                                    static_cast<std::ptrdiff_t>(*pos));
    }

    if (in_measure()) {
      ++result_.decisions_measured;
      result_.decision_allocs += alloc_count() - allocs_begin;
      if (time_it) {
        result_.decision_ns.record(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                WallClock::now() - wall_begin)
                .count());
      }
    }
    settle(now);
  }

  // Post-decision maintenance, outside the timed window. The decision's
  // output is complete once the heads have started; rewinding a
  // non-append scheduler's plan frames and compacting dead history only
  // prepare the profile for the NEXT decision, so they run after the
  // latency sample (deferred reclamation -- respond first, clean up
  // before the next event). Append-capable schedulers keep their plan and
  // rebase here only when the compaction deadline has passed.
  void settle(Time now) {
    if (!use_replan_) return;
    if (append_replan_) {
      // The plan is kept across decisions; dropping it forces the next
      // decision to re-solve the whole window, so rebase only at the
      // compaction deadline.
      // resched-lint: time-arith-audited(monotonic sim clock: now >= last_compact_)
      if (now - last_compact_ < config_.compact_interval) return;
      drop_retained();
      compact_now(now);
      return;
    }
    // Non-append schedulers re-solve every decision anyway: reclaim the
    // plan frames immediately, and compact as soon as any completion has
    // stranded dead history (each completion leaves ~2 dead segments, and
    // every live one drags each backfill splice of the next re-solve; the
    // compaction itself is a single untimed splice, far cheaper).
    drop_retained();
    if (completions_since_compact_ > 0 ||
        // resched-lint: time-arith-audited(monotonic sim clock: now >= last_compact_)
        now - last_compact_ >= config_.compact_interval)
      compact_now(now);
  }

  void start_job(std::uint64_t index) {
    const ServiceJob& job = jobs_[index];
    // resched-lint: time-arith-audited(busy_ tracks admitted q; stays in [0, m])
    busy_ += job.q;
    RESCHED_CHECK_MSG(busy_ <= m_, "service dispatch exceeded capacity");
    if (job.phase == kMeasure)
      result_.wait_ticks.record(checked_sub(sim_.now(), job.arrival));
    const Time completion = checked_add(sim_.now(), job.p);
    const auto at = std::lower_bound(
        running_.begin(), running_.end(), index,
        [](const auto& entry, std::uint64_t key) { return entry.first < key; });
    running_.insert(at, {index, RunningRec{completion, job.q}});
    if (retained_live_) {
      // Started under a retained plan: the job's occupancy [now, completion)
      // is already subtracted by its own plan frame, so the start mutates
      // nothing. drop_retained() re-applies the remainder permanently when
      // the plan eventually dies.
      framed_.push_back(index);
    } else if (maintain_profile_) {
      // The start is a permanent world change: occupancy [now, completion)
      // leaves the profile by natural expiry, so a normal completion needs
      // no mutation at all.
      free_.adjust_capacity(sim_.now(), completion,
                            -static_cast<std::int64_t>(job.q));
    }
    sim_.at(completion, [this, index](Simulation&) { on_complete(index); });
  }

  const Scheduler& scheduler_;
  const ServiceConfig& config_;
  const ProcCount m_;
  const bool use_replan_;
  // FCFS-fold schedulers (append_only_replan) keep plan frames open across
  // decisions; pure-arrival dispatches then replan only the new suffix.
  const bool append_replan_;
  // The persistent profile is maintained whenever the incremental path or
  // churn needs it; pure scratch steps skip the bookkeeping entirely.
  const bool maintain_profile_;
  LoadGen gen_;
  Simulation sim_;
  FreeProfile free_;  // persistent absolute-time capacity, plan-recording on
  std::optional<ChurnGen> churn_;
  std::vector<ChurnWindow> windows_;  // active/future availability drops
  std::vector<ServiceJob> jobs_;      // indexed by arrival order
  std::deque<std::uint64_t> waiting_;  // job indices, arrival order
  RunningVec running_;
  ProcCount busy_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t measured_done_ = 0;
  std::uint64_t measure_canceled_ = 0;
  Time measure_begin_ = -1;
  Time measure_end_ = 0;
  Time last_compact_ = 0;
  std::uint64_t completions_since_compact_ = 0;
  // The live plan of an append-capable scheduler: frames still open on
  // free_, absolute starts aligned with waiting_[0..starts.size()).
  // A persistent member guarded by retained_live_ rather than an optional:
  // the starts buffer's capacity survives drop/retain cycles, so the
  // steady-state decision never reallocates it.
  struct RetainedPlan {
    FreeProfile::Checkpoint base;
    std::vector<Time> starts;
  };
  RetainedPlan retained_plan_;
  bool retained_live_ = false;
  // Decision-scoped bump allocator handed to the scheduler through
  // ReplanRequest::scratch; reset (chunks kept) at each dispatch entry.
  Arena decision_arena_;
  // Per-decision scratch buffers: cleared and refilled each decision, the
  // high-water capacity is reused so the timed window stays allocation-free.
  std::vector<std::size_t> head_;
  std::vector<Job> window_jobs_;
  std::vector<Time> wakeups_;
  // Jobs started while a plan was retained: their occupancy lives in plan
  // frames, not in the permanent profile, until drop_retained() rebases it.
  std::vector<std::uint64_t> framed_;
  bool profile_live_ = false;  // a prior decision left the profile warm
  bool aborted_ = false;
  ServiceStepResult result_;
};

}  // namespace

ServiceStepResult run_service_step(const Scheduler& scheduler,
                                   const LoadGenConfig& load,
                                   std::uint64_t seed, double rate,
                                   const ServiceConfig& config) {
  RESCHED_REQUIRE_MSG(rate > 0.0, "offered rate must be positive");
  RESCHED_REQUIRE(config.dispatch_window >= 1);
  RESCHED_REQUIRE(config.queue_sample_interval >= 1);
  RESCHED_REQUIRE(config.compact_interval >= 1);
  RESCHED_REQUIRE(config.saturation_fraction > 0.0 &&
                  config.saturation_fraction <= 1.0);
  RESCHED_REQUIRE_MSG(scheduler.capabilities().reservations,
                      "service harness models running jobs as reservations; "
                      "the scheduler must accept them");
  RESCHED_REQUIRE_MSG(!config.verify_incremental ||
                          scheduler.capabilities().incremental_replan,
                      "verify_incremental requires a scheduler with "
                      "capabilities().incremental_replan");
  ServiceLoop loop(scheduler, load, seed, rate, config);
  return loop.run();
}

double ServiceSweepResult::knee_rate() const {
  RESCHED_REQUIRE(has_knee());
  return steps[static_cast<std::size_t>(knee_index)].offered_rate;
}

std::size_t service_sweep_step_count(double step_size, double step_stop) {
  RESCHED_REQUIRE(step_size > 0.0 && step_stop >= step_size);
  // Exact integer step count, computed once: the old per-iteration
  // `step_size * (i + 1) > step_stop * (1 + eps)` accumulated float error
  // across the sweep and could gain or lose the final step.
  return static_cast<std::size_t>(
      std::floor(step_stop / step_size + 1e-9));
}

ServiceSweepResult run_service_sweep(const Scheduler& scheduler,
                                     const LoadGenConfig& load,
                                     std::uint64_t seed, double step_size,
                                     double step_stop,
                                     const ServiceConfig& config) {
  const std::size_t n = service_sweep_step_count(step_size, step_stop);
  ServiceSweepResult sweep;
  sweep.steps.reserve(n);
  Prng root(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double rate = step_size * static_cast<double>(i + 1);
    // The step seed comes from the root stream alone, so every scheduler
    // swept with the same (seed, step_size) faces identical arrivals.
    const std::uint64_t step_seed = root.fork_seed();
    ServiceStepResult step =
        run_service_step(scheduler, load, step_seed, rate, config);
    if (step.saturated && sweep.knee_index < 0)
      sweep.knee_index = static_cast<int>(i);
    sweep.steps.push_back(std::move(step));
  }
  return sweep;
}

}  // namespace resched
