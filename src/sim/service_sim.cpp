#include "sim/service_sim.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "sim/des.hpp"
#include "util/checked.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"

namespace resched {
namespace {

constexpr int kWarmup = 0;
constexpr int kMeasure = 1;
constexpr int kCooldown = 2;

struct ServiceJob {
  Time arrival = 0;
  ProcCount q = 1;
  Time p = 1;
  int phase = kWarmup;
};

// One fixed-rate service step: owns the DES, the queue and the recorders.
class ServiceLoop {
 public:
  ServiceLoop(const Scheduler& scheduler, const LoadGenConfig& load,
              std::uint64_t seed, double rate, const ServiceConfig& config)
      : scheduler_(scheduler), config_(config), m_(load.m), gen_(load, seed) {
    gen_.set_rate(rate);
    result_.offered_rate = rate;
    jobs_.reserve(config.phases.total());
  }

  ServiceStepResult run() {
    if (config_.phases.total() > 0) {
      schedule_next_arrival();
      sim_.run();
    }
    RESCHED_CHECK_MSG(busy_ == 0, "machines still busy after service drain");
    result_.end_queue_depth = waiting_.size();
    result_.sim_end = sim_.now();
    result_.measured = measured_done_;
    if (measured_done_ > 0) {
      const Time span = std::max<Time>(1, measure_end_ - measure_begin_);
      result_.sustained_rate =
          static_cast<double>(measured_done_) * 1000.0 /
          static_cast<double>(span);
    }
    if (config_.phases.measure > 0 && !result_.saturated) {
      // Queue growth diverged if measurement could not finish (bail aborted
      // the step) or completions fell behind the offered rate.
      result_.saturated =
          measured_done_ < config_.phases.measure ||
          result_.sustained_rate <
              config_.saturation_fraction * result_.offered_rate;
    }
    return std::move(result_);
  }

 private:
  using WallClock = std::chrono::steady_clock;
  using Running = std::multimap<Time, ProcCount>;  // completion tick -> width

  [[nodiscard]] int phase_of(std::uint64_t index) const noexcept {
    if (index < config_.phases.warmup) return kWarmup;
    if (index < config_.phases.warmup + config_.phases.measure)
      return kMeasure;
    return kCooldown;
  }

  // Measurement window: open from the first measure-phase arrival until the
  // last measure-phase completion.
  [[nodiscard]] bool in_measure() const noexcept {
    return measure_begin_ >= 0 && measured_done_ < config_.phases.measure;
  }

  void schedule_next_arrival() {
    if (aborted_ || emitted_ >= config_.phases.total()) return;
    const ArrivalSpec spec = gen_.next();
    const std::uint64_t index = emitted_++;
    sim_.at(std::max(spec.time, sim_.now()),
            [this, spec, index](Simulation&) { on_arrival(spec, index); });
  }

  void on_arrival(const ArrivalSpec& spec, std::uint64_t index) {
    if (aborted_) return;
    RESCHED_CHECK_MSG(index == jobs_.size(), "arrivals fired out of order");
    jobs_.push_back(
        ServiceJob{sim_.now(), spec.q, spec.p, phase_of(index)});
    waiting_.push_back(index);
    ++result_.arrivals;
    result_.peak_queue_depth =
        std::max(result_.peak_queue_depth, waiting_.size());
    if (jobs_.back().phase == kMeasure && measure_begin_ < 0) {
      measure_begin_ = sim_.now();
      result_.queue_depth.record(
          static_cast<std::int64_t>(waiting_.size()));
      schedule_queue_sample();
    }
    if (waiting_.size() > config_.bail_queue_depth) {
      // Divergence bail-out: stop the arrival chain and all dispatching;
      // already-running jobs drain, the backlog stays as evidence.
      aborted_ = true;
      result_.saturated = true;
      return;
    }
    schedule_next_arrival();
    dispatch();
  }

  void on_complete(Running::iterator it, std::uint64_t index) {
    const ServiceJob& job = jobs_[index];
    busy_ -= job.q;
    running_.erase(it);
    ++result_.completed;
    if (job.phase == kMeasure) {
      result_.response_ticks.record(checked_sub(sim_.now(), job.arrival));
      ++measured_done_;
      measure_end_ = sim_.now();
    }
    if (aborted_) return;
    dispatch();
  }

  void schedule_queue_sample() {
    sim_.after(config_.queue_sample_interval, [this](Simulation&) {
      if (aborted_ || !in_measure()) return;
      result_.queue_depth.record(static_cast<std::int64_t>(waiting_.size()));
      schedule_queue_sample();
    });
  }

  // Re-plan on event: hand the scheduler the head of the waiting queue with
  // running jobs pinned as reservations (relative times, "now" = 0), then
  // commit exactly the jobs it placed at the current instant.
  void dispatch() {
    if (waiting_.empty()) return;
    const bool time_it = config_.record_wall_latency;
    const WallClock::time_point wall_begin =
        time_it ? WallClock::now() : WallClock::time_point{};

    const Time now = sim_.now();
    const std::size_t k = std::min(waiting_.size(), config_.dispatch_window);
    std::vector<Job> window;
    window.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      const ServiceJob& job = jobs_[waiting_[j]];
      window.push_back(Job{static_cast<JobId>(j), job.q, job.p, 0, ""});
    }
    std::vector<Reservation> held;
    held.reserve(running_.size());
    ReservationId rid = 0;
    for (const auto& [end, q] : running_) {
      // A job completing at this exact tick has its event still pending;
      // clamp its remaining occupancy to one tick rather than emit p = 0.
      held.push_back(
          Reservation{rid++, q, std::max<Time>(1, checked_sub(end, now)), 0,
                      ""});
    }
    const Instance instance(m_, std::move(window), std::move(held));
    const Schedule plan = scheduler_.schedule(instance).value();
    ++result_.decisions;

    std::vector<std::size_t> head;  // window positions starting now
    for (std::size_t j = 0; j < k; ++j)
      if (plan.start(static_cast<JobId>(j)) == 0) head.push_back(j);
    for (auto pos = head.rbegin(); pos != head.rend(); ++pos) {
      start_job(waiting_[*pos]);
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(*pos));
    }

    if (time_it && in_measure()) {
      result_.decision_ns.record(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              WallClock::now() - wall_begin)
              .count());
    }
  }

  void start_job(std::uint64_t index) {
    const ServiceJob& job = jobs_[index];
    busy_ += job.q;
    RESCHED_CHECK_MSG(busy_ <= m_, "service dispatch exceeded capacity");
    if (job.phase == kMeasure)
      result_.wait_ticks.record(checked_sub(sim_.now(), job.arrival));
    const Time completion = checked_add(sim_.now(), job.p);
    const auto it = running_.emplace(completion, job.q);
    sim_.at(completion,
            [this, it, index](Simulation&) { on_complete(it, index); });
  }

  const Scheduler& scheduler_;
  const ServiceConfig& config_;
  const ProcCount m_;
  LoadGen gen_;
  Simulation sim_;
  std::vector<ServiceJob> jobs_;    // indexed by arrival order
  std::deque<std::uint64_t> waiting_;  // job indices, arrival order
  Running running_;
  ProcCount busy_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t measured_done_ = 0;
  Time measure_begin_ = -1;
  Time measure_end_ = 0;
  bool aborted_ = false;
  ServiceStepResult result_;
};

}  // namespace

ServiceStepResult run_service_step(const Scheduler& scheduler,
                                   const LoadGenConfig& load,
                                   std::uint64_t seed, double rate,
                                   const ServiceConfig& config) {
  RESCHED_REQUIRE_MSG(rate > 0.0, "offered rate must be positive");
  RESCHED_REQUIRE(config.dispatch_window >= 1);
  RESCHED_REQUIRE(config.queue_sample_interval >= 1);
  RESCHED_REQUIRE(config.saturation_fraction > 0.0 &&
                  config.saturation_fraction <= 1.0);
  RESCHED_REQUIRE_MSG(scheduler.capabilities().reservations,
                      "service harness models running jobs as reservations; "
                      "the scheduler must accept them");
  ServiceLoop loop(scheduler, load, seed, rate, config);
  return loop.run();
}

double ServiceSweepResult::knee_rate() const {
  RESCHED_REQUIRE(has_knee());
  return steps[static_cast<std::size_t>(knee_index)].offered_rate;
}

ServiceSweepResult run_service_sweep(const Scheduler& scheduler,
                                     const LoadGenConfig& load,
                                     std::uint64_t seed, double step_size,
                                     double step_stop,
                                     const ServiceConfig& config) {
  RESCHED_REQUIRE(step_size > 0.0 && step_stop >= step_size);
  ServiceSweepResult sweep;
  Prng root(seed);
  for (std::size_t i = 0;; ++i) {
    const double rate = step_size * static_cast<double>(i + 1);
    if (rate > step_stop * (1.0 + 1e-9)) break;
    // The step seed comes from the root stream alone, so every scheduler
    // swept with the same (seed, step_size) faces identical arrivals.
    const std::uint64_t step_seed = root.fork_seed();
    ServiceStepResult step =
        run_service_step(scheduler, load, step_seed, rate, config);
    if (step.saturated && sweep.knee_index < 0)
      sweep.knee_index = static_cast<int>(i);
    sweep.steps.push_back(std::move(step));
  }
  return sweep;
}

}  // namespace resched
