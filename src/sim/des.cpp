#include "sim/des.hpp"

#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

void Simulation::at(Time time, Handler handler) {
  RESCHED_REQUIRE_MSG(time >= now_, "cannot schedule an event in the past");
  queue_.push(time, std::move(handler));
}

void Simulation::after(Time delay, Handler handler) {
  RESCHED_REQUIRE(delay >= 0);
  at(checked_add(now_, delay), std::move(handler));
}

Time Simulation::run(Time horizon) {
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    auto [time, handler] = queue_.pop();
    RESCHED_CHECK_MSG(time >= now_, "event queue went back in time");
    now_ = time;
    handler(*this);
  }
  // A bounded run leaves the clock at the bound, not at whatever event
  // happened to fire last: phase-stepped callers (warmup -> measure loops,
  // fixed-interval samplers) re-enter with now() == horizon and may schedule
  // the next phase relative to it. Unbounded drains keep the classic
  // "last event time" result.
  if (horizon < kTimeInfinity && horizon > now_) now_ = horizon;
  return now_;
}

}  // namespace resched
