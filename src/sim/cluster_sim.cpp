#include "sim/cluster_sim.hpp"

#include <algorithm>
#include <ostream>

#include "sim/des.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

namespace {
const char* kind_name(TraceEntry::Kind kind) {
  switch (kind) {
    case TraceEntry::Kind::kJobStart: return "job_start";
    case TraceEntry::Kind::kJobEnd: return "job_end";
    case TraceEntry::Kind::kReservationStart: return "resa_start";
    case TraceEntry::Kind::kReservationEnd: return "resa_end";
  }
  return "?";
}
}  // namespace

SimulationResult simulate_cluster(const Instance& instance,
                                  const Schedule& schedule) {
  SimulationResult result;
  result.metrics = compute_metrics(instance, schedule);
  result.assignment = assign_machines(instance, schedule);
  const ValidationResult assignment_ok =
      validate_assignment(instance, schedule, result.assignment);
  RESCHED_CHECK_MSG(assignment_ok.ok, assignment_ok.error);

  // Live machine state: which occupant (if any) holds each machine.
  std::vector<bool> busy(static_cast<std::size_t>(instance.m()), false);
  ProcCount busy_count = 0;

  Simulation sim;
  auto acquire = [&](const std::vector<MachineIndex>& machines,
                     TraceEntry::Kind kind, std::int32_t id, Time when) {
    result.trace.push_back({when, kind, id});
    for (const MachineIndex machine : machines) {
      RESCHED_CHECK_MSG(!busy[static_cast<std::size_t>(machine)],
                        "machine acquired twice");
      busy[static_cast<std::size_t>(machine)] = true;
    }
    // resched-lint: time-arith-audited(counts distinct machines; bounded by m)
    busy_count += static_cast<ProcCount>(machines.size());
    result.peak_busy = std::max(result.peak_busy, busy_count);
  };
  auto release = [&](const std::vector<MachineIndex>& machines,
                     TraceEntry::Kind kind, std::int32_t id, Time when) {
    result.trace.push_back({when, kind, id});
    for (const MachineIndex machine : machines) {
      RESCHED_CHECK_MSG(busy[static_cast<std::size_t>(machine)],
                        "idle machine released");
      busy[static_cast<std::size_t>(machine)] = false;
    }
    // resched-lint: time-arith-audited(counts distinct machines; bounded by m)
    busy_count -= static_cast<ProcCount>(machines.size());
  };

  // Order within one instant: releases fire before acquisitions; the event
  // queue is FIFO among equal (time, phase), so we schedule ends with an
  // earlier insertion phase by posting all ends first per entity.
  for (const Reservation& resa : instance.reservations()) {
    const auto& machines =
        result.assignment.reservation_machines[static_cast<std::size_t>(
            resa.id)];
    sim.at(resa.end(), [&, machines, id = resa.id](Simulation& s) {
      release(machines, TraceEntry::Kind::kReservationEnd, id, s.now());
    });
  }
  for (const Job& job : instance.jobs()) {
    const Time end = checked_add(schedule.start(job.id), job.p);
    const auto& machines =
        result.assignment.job_machines[static_cast<std::size_t>(job.id)];
    sim.at(end, [&, machines, id = job.id](Simulation& s) {
      release(machines, TraceEntry::Kind::kJobEnd, id, s.now());
    });
  }
  for (const Reservation& resa : instance.reservations()) {
    const auto& machines =
        result.assignment.reservation_machines[static_cast<std::size_t>(
            resa.id)];
    sim.at(resa.start, [&, machines, id = resa.id](Simulation& s) {
      acquire(machines, TraceEntry::Kind::kReservationStart, id, s.now());
    });
  }
  for (const Job& job : instance.jobs()) {
    const auto& machines =
        result.assignment.job_machines[static_cast<std::size_t>(job.id)];
    sim.at(schedule.start(job.id), [&, machines, id = job.id](Simulation& s) {
      acquire(machines, TraceEntry::Kind::kJobStart, id, s.now());
    });
  }
  sim.run();

  RESCHED_CHECK_MSG(busy_count == 0, "machines still busy after simulation");
  std::stable_sort(result.trace.begin(), result.trace.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.time < b.time;
                   });
  return result;
}

void write_trace_csv(const std::vector<TraceEntry>& trace, std::ostream& os) {
  os << "time,event,id\n";
  for (const TraceEntry& entry : trace)
    os << entry.time << ',' << kind_name(entry.kind) << ',' << entry.id
       << "\n";
}

}  // namespace resched
