// Bounded-error latency / queue-depth histogram for the service harness.
//
// HdrHistogram-shaped log-bucketed counts over non-negative int64 samples:
// values below 2^kSubBits are recorded exactly, every larger octave is split
// into 2^kSubBits sub-buckets, so a reported quantile is within a relative
// error of 2^-(kSubBits+1) (< 0.8% at kSubBits = 6) of the true sample.
// Recording is O(1) and sort-free (a percentile query walks the fixed bucket
// array), memory is a fixed ~29 KiB regardless of sample count, and two
// recorders merge by adding counts -- exactly what an open-loop harness
// needs for millions of per-decision samples where keeping (let alone
// sorting) the raw stream would dominate the measurement.
//
// The unit is the caller's: the service loop records scheduler-decision
// wall-clock nanoseconds, simulated wait/response ticks, and queue depths
// through the same type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace resched {

class LatencyRecorder {
 public:
  // 64 exact values + 64 sub-buckets per octave.
  static constexpr int kSubBits = 6;

  LatencyRecorder();

  // Records one sample; negative values clamp to 0.
  void record(std::int64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  // Exact extremes and mean of the recorded stream (not bucketed).
  // min()/max() require count() > 0.
  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::int64_t max() const;
  [[nodiscard]] double mean() const noexcept;

  // Value at quantile q in [0, 1] (closest-rank over the bucket walk, bucket
  // midpoint as representative, clamped into [min(), max()] so q = 0 / 1 are
  // exact). Requires count() > 0.
  [[nodiscard]] std::int64_t percentile(double q) const;
  // All requested quantiles in one bucket walk; results[i] matches qs[i]
  // (qs need not be sorted).
  [[nodiscard]] std::vector<std::int64_t> percentiles(
      std::span<const double> qs) const;

  // Adds every sample of `other` into this recorder (count-wise; extremes
  // and sums pool exactly).
  void merge(const LatencyRecorder& other) noexcept;

  void reset() noexcept;

  // Recorders with identical streams compare equal (used by the determinism
  // suites to assert bit-identical service aggregates).
  friend bool operator==(const LatencyRecorder&,
                         const LatencyRecorder&) = default;

 private:
  [[nodiscard]] static std::size_t bucket_index(std::int64_t value) noexcept;
  [[nodiscard]] static std::int64_t bucket_low(std::size_t index) noexcept;
  [[nodiscard]] static std::int64_t bucket_mid(std::size_t index) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  // Exact running sum; int64 samples over uint64 counts cannot overflow 128
  // bits within any feasible run length.
  __int128 sum_ = 0;
};

}  // namespace resched
