// Cluster execution simulator.
//
// Replays a schedule on a concrete cluster through the DES kernel: machines
// are acquired at job starts and returned at completions, reservations pin
// their machines over their windows, and every acquisition is re-checked
// against the live machine state (defence in depth -- this is a third,
// independent validation of feasibility after Schedule::validate and the
// machine-assignment sweep). Produces a per-job execution trace for the
// examples and the online experiments.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/instance.hpp"
#include "core/machine_assignment.hpp"
#include "core/schedule.hpp"
#include "sim/metrics.hpp"

namespace resched {

struct TraceEntry {
  enum class Kind { kJobStart, kJobEnd, kReservationStart, kReservationEnd };
  Time time = 0;
  Kind kind = Kind::kJobStart;
  std::int32_t id = 0;  // job or reservation id
};

struct SimulationResult {
  std::vector<TraceEntry> trace;  // time-ordered
  ScheduleMetrics metrics;
  MachineAssignment assignment;
  // Highest simultaneous machine usage observed (jobs + reservations).
  ProcCount peak_busy = 0;
};

// Requires a fully scheduled, feasible schedule; throws on any internal
// inconsistency (double acquisition, release of an idle machine).
[[nodiscard]] SimulationResult simulate_cluster(const Instance& instance,
                                                const Schedule& schedule);

// Trace as CSV: "time,event,id".
void write_trace_csv(const std::vector<TraceEntry>& trace, std::ostream& os);

}  // namespace resched
