#include "sim/latency_recorder.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "util/require.hpp"

namespace resched {

namespace {
constexpr std::int64_t kSub = std::int64_t{1} << LatencyRecorder::kSubBits;
// Largest index: INT64_MAX has exponent 62, shift 62 - kSubBits, plus a full
// sub-bucket's worth of entries.
constexpr std::size_t kBucketCount =
    static_cast<std::size_t>(kSub + (62 - LatencyRecorder::kSubBits + 1) * kSub);
}  // namespace

LatencyRecorder::LatencyRecorder() : buckets_(kBucketCount, 0) {}

std::size_t LatencyRecorder::bucket_index(std::int64_t value) noexcept {
  if (value < kSub) return static_cast<std::size_t>(value);
  const int exponent =
      63 - std::countl_zero(static_cast<std::uint64_t>(value));
  const int shift = exponent - kSubBits;
  // resched-lint: time-arith-audited(exponent/sub-bucket math bounded by 64 + kSub)
  const std::int64_t sub = (value >> shift) - kSub;
  // resched-lint: time-arith-audited(exponent/sub-bucket math bounded by 64 + kSub)
  return static_cast<std::size_t>(kSub + shift * kSub + sub);
}

std::int64_t LatencyRecorder::bucket_low(std::size_t index) noexcept {
  const auto i = static_cast<std::int64_t>(index);
  if (i < kSub) return i;
  const std::int64_t shift = (i - kSub) / kSub;
  const std::int64_t sub = (i - kSub) % kSub;
  // resched-lint: time-arith-audited(inverse bucket map; shift < 64, sub < kSub)
  return (kSub + sub) << shift;
}

std::int64_t LatencyRecorder::bucket_mid(std::size_t index) noexcept {
  const auto i = static_cast<std::int64_t>(index);
  if (i < kSub) return i;  // exact region: width 1
  const std::int64_t shift = (i - kSub) / kSub;
  // resched-lint: time-arith-audited(inverse bucket map; shift < 64)
  return bucket_low(index) + ((std::int64_t{1} << shift) >> 1);
}

void LatencyRecorder::record(std::int64_t value) noexcept {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  // resched-lint: time-arith-audited(int64 ns sum; saturating it takes centuries)
  sum_ += value;
  ++buckets_[bucket_index(value)];
}

std::int64_t LatencyRecorder::min() const {
  RESCHED_REQUIRE(count_ > 0);
  return min_;
}

std::int64_t LatencyRecorder::max() const {
  RESCHED_REQUIRE(count_ > 0);
  return max_;
}

double LatencyRecorder::mean() const noexcept {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::int64_t LatencyRecorder::percentile(double q) const {
  const double qs[] = {q};
  return percentiles(qs)[0];
}

std::vector<std::int64_t> LatencyRecorder::percentiles(
    std::span<const double> qs) const {
  RESCHED_REQUIRE(count_ > 0);
  for (const double q : qs) RESCHED_REQUIRE(q >= 0.0 && q <= 1.0);

  // Closest-rank targets, resolved in ascending order over one bucket walk.
  std::vector<std::size_t> order(qs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return qs[a] < qs[b]; });

  std::vector<std::int64_t> results(qs.size(), 0);
  // `cumulative` counts the samples strictly before `bucket`; each target
  // lands on the first bucket whose running total reaches it. Ascending
  // targets make the walk a single pass.
  std::uint64_t cumulative = 0;
  std::size_t bucket = 0;
  for (const std::size_t qi : order) {
    const auto target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(qs[qi] * static_cast<double>(count_))));
    while (cumulative + buckets_[bucket] < target) {
      cumulative += buckets_[bucket];
      ++bucket;
    }
    results[qi] = std::clamp(bucket_mid(bucket), min_, max_);
  }
  return results;
}

void LatencyRecorder::merge(const LatencyRecorder& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
}

void LatencyRecorder::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0;
}

}  // namespace resched
