#include "generators/churn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/types.hpp"
#include "generators/workload.hpp"

namespace resched {

const char* to_string(ChurnKind kind) noexcept {
  switch (kind) {
    case ChurnKind::kCancelWaiting:
      return "cancel_waiting";
    case ChurnKind::kCancelRunning:
      return "cancel_running";
    case ChurnKind::kAvailabilityDrop:
      return "availability_drop";
    case ChurnKind::kReservationMove:
      return "reservation_move";
  }
  return "unknown";
}

ChurnGen::ChurnGen(const ChurnConfig& config, std::uint64_t seed)
    : config_(config), prng_(seed) {
  if (!config.enabled()) {
    throw std::invalid_argument("ChurnGen requires a positive event rate");
  }
  auto check_weight = [](double w, const char* what) {
    if (!(w >= 0.0)) {
      throw std::invalid_argument(std::string("negative churn weight: ") +
                                  what);
    }
  };
  check_weight(config.cancel_waiting_weight, "cancel_waiting");
  check_weight(config.cancel_running_weight, "cancel_running");
  check_weight(config.availability_drop_weight, "availability_drop");
  check_weight(config.reservation_move_weight, "reservation_move");
  total_weight_ = config.cancel_waiting_weight + config.cancel_running_weight +
                  config.availability_drop_weight +
                  config.reservation_move_weight;
  if (!(total_weight_ > 0.0)) {
    throw std::invalid_argument("all churn kind weights are zero");
  }
  if (config.max_drop_width < 1) {
    throw std::invalid_argument("max_drop_width must be >= 1");
  }
  if (config.drop_duration_min < 1 ||
      config.drop_duration_min > config.drop_duration_max) {
    throw std::invalid_argument("invalid drop duration range");
  }
  if (config.drop_lead_max < 0) {
    throw std::invalid_argument("drop_lead_max must be >= 0");
  }
  if (config.move_shift_max < 0) {
    throw std::invalid_argument("move_shift_max must be >= 0");
  }
}

ChurnEvent ChurnGen::next() {
  ChurnEvent event;

  // Exponential inter-event gap at the configured rate, floored to one tick
  // so consecutive events always advance the service clock.
  const double u = prng_.uniform_real();
  const double mean_gap = 1000.0 / config_.events_per_kilotick;
  const double gap = -mean_gap * std::log(1.0 - u);
  event.gap = std::max<Time>(1, saturating_ticks(gap));

  // Kind by relative weight.
  const double roll = prng_.uniform_real() * total_weight_;
  double edge = config_.cancel_waiting_weight;
  if (roll < edge) {
    event.kind = ChurnKind::kCancelWaiting;
  } else if (roll < (edge += config_.cancel_running_weight)) {
    event.kind = ChurnKind::kCancelRunning;
  } else if (roll < (edge += config_.availability_drop_weight)) {
    event.kind = ChurnKind::kAvailabilityDrop;
  } else {
    event.kind = ChurnKind::kReservationMove;
  }

  // All shape fields are drawn unconditionally so the stream's draw count
  // per event is fixed: consumers that skip an event (no eligible target)
  // stay aligned with consumers that apply it.
  event.pick = prng_.next_u64();
  event.width = static_cast<ProcCount>(
      prng_.uniform_int(1, static_cast<std::int64_t>(config_.max_drop_width)));
  event.duration = prng_.uniform_int(config_.drop_duration_min,
                                     config_.drop_duration_max);
  event.lead = config_.drop_lead_max == 0
                   ? 0
                   : prng_.uniform_int(0, config_.drop_lead_max);
  event.shift = config_.move_shift_max == 0
                    ? 0
                    : prng_.uniform_int(-config_.move_shift_max,
                                        config_.move_shift_max);
  return event;
}

}  // namespace resched
