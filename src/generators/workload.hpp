// Parametric random rigid-job workloads.
//
// The paper evaluates worst cases analytically; the empirical companions
// (experiments E6/E7/E10) need realistic-ish synthetic workloads. The
// defaults follow the parallel-workload-modelling folklore: log-uniform
// runtimes (heavy tail) and power-of-two widths ("jobs ask for 2^i nodes"),
// both standard observations from the Parallel Workloads Archive literature.
#pragma once

#include <cstdint>
#include <optional>

#include "core/instance.hpp"
#include "core/step_profile.hpp"
#include "util/rational.hpp"

namespace resched {

enum class WidthDistribution {
  kUniform,      // q ~ U[1, q_cap]
  kPowersOfTwo,  // q = 2^i, i ~ U, capped at q_cap
  kMostlyNarrow, // 80% q ~ U[1, max(1, q_cap/8)], 20% q ~ U[1, q_cap]
};

struct WorkloadConfig {
  std::size_t n = 50;
  ProcCount m = 64;
  Time p_min = 1;
  Time p_max = 100;
  bool log_uniform_p = true;  // false: uniform
  WidthDistribution width = WidthDistribution::kPowersOfTwo;
  // Upper bound on q as a fraction of m (alpha of section 4.2): q <= alpha*m.
  Rational alpha{1};
  // Mean inter-arrival time; 0 disables release times (offline instance).
  double mean_interarrival = 0.0;
};

class Prng;

// One job-width draw from `width` capped at q_cap (>= 1). Shared by every
// generator (random_workload, daily_cycle_workload, sim/load_gen) so the
// distributions cannot drift apart; consumes the same Prng stream the
// inlined switch used to, so fixed-seed draws are unchanged.
[[nodiscard]] ProcCount draw_width(Prng& prng, WidthDistribution width,
                                   ProcCount q_cap);

// Rounds a tick count held in a double to Time, saturating: values at or
// above kTimeInfinity (and NaN) clamp to kTimeInfinity, negatives to 0 --
// large accumulated Poisson clocks must clamp, not overflow llround into UB.
[[nodiscard]] Time saturating_ticks(double ticks);

// Deterministic given (config, seed).
[[nodiscard]] Instance random_workload(const WorkloadConfig& config,
                                       std::uint64_t seed);

// Daily-cycle arrival model (Feitelson-style): submission intensity follows
// a diurnal curve -- low at night, peaking mid-morning and mid-afternoon --
// repeated over `days` days of `ticks_per_day` ticks. Jobs are drawn with
// the same duration/width distributions as WorkloadConfig. This is the
// "production trace"-shaped synthetic workload for the online experiments.
struct DailyCycleConfig {
  std::size_t n = 200;
  ProcCount m = 64;
  int days = 3;
  Time ticks_per_day = 1440;  // minutes
  Time p_min = 1;
  Time p_max = 240;
  WidthDistribution width = WidthDistribution::kPowersOfTwo;
  Rational alpha{1};
  // Optional one-day intensity curve in arbitrary non-negative units,
  // queried at t % ticks_per_day and normalized by its maximum. Unset =
  // daily_intensity_profile(ticks_per_day), the built-in diurnal shape.
  // This is how scenario programs drive the generator: compile an
  // intensity program (scenario/scenario.hpp) and install its curve here.
  std::optional<StepProfile> intensity;
};

// The built-in diurnal intensity curve as an integer step function over one
// day: percent of peak-hour pressure (trough 10, peak 110), hour h active
// on [ceil(h * tpd / 24), ceil((h+1) * tpd / 24)) -- exactly the floor
// mapping hour(t) = t * 24 / tpd the rejection sampler uses. Bit-identical
// to compile_scenario(daily_intensity_program(tpd)).curve.
[[nodiscard]] StepProfile daily_intensity_profile(Time ticks_per_day);

[[nodiscard]] Instance daily_cycle_workload(const DailyCycleConfig& config,
                                            std::uint64_t seed);

}  // namespace resched
