// The instance transformations of Proposition 1's proof (Figure 2).
//
// For instances with non-increasing unavailability U the paper argues in two
// steps:
//   I  -> I'  : cap the machine count at m(T) (availability at a reference
//               time T, in the proof T = C*) while keeping m(t) for t <= T;
//   I' -> I'' : replace the (non-increasing) reservations by k-1 ordinary
//               rigid jobs -- step j of the staircase becomes a job with
//               q = U_j - U_{j+1} and p = t_{j+1} -- placed at the *head* of
//               the priority list, so LSRC starts them all at time 0 and
//               reproduces the original unavailability exactly.
//
// Both transformations are implemented verbatim and tested: LSRC on I''
// (head jobs first) gives every original job the same start time as LSRC on
// I, which is the hinge of the proof.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/step_profile.hpp"

namespace resched {

// Decomposes a non-increasing step function that eventually reaches 0 into
// stacked blocks [0, t_j) x q_j (all starting at t = 0). Requires
// profile.is_non_increasing() and final value 0.
[[nodiscard]] std::vector<Reservation> staircase_to_reservations(
    const StepProfile& unavailability);

// I -> I': new machine count m' = m(T); unavailability becomes
// U'(t) = U(t) - U(T) for t < T and 0 afterwards. Requires non-increasing
// unavailability. Jobs are copied unchanged (jobs with q > m' would make I'
// invalid; the proof applies it with T = C*, where every job fits by
// feasibility of the optimal schedule).
[[nodiscard]] Instance truncate_availability(const Instance& instance,
                                             Time reference);

struct HeadJobTransform {
  // I'': no reservations; job ids 0..h-1 are the head (ex-reservation) jobs,
  // ids h..h+n-1 are the original jobs shifted by h.
  Instance rigid;
  std::vector<JobId> head_ids;
  // A full priority list: head jobs first, then the original jobs in their
  // original order. Feeding this to LsrcScheduler reproduces LSRC-on-I.
  std::vector<JobId> head_first_list;
  // Mapping: original job id j -> id in `rigid` (= h + j).
  std::vector<JobId> job_map;
};

// I' -> I''. Requires non-increasing unavailability.
[[nodiscard]] HeadJobTransform reservations_to_head_jobs(
    const Instance& instance);

}  // namespace resched
