#include "generators/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/checked.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"

namespace resched {

ProcCount draw_width(Prng& prng, WidthDistribution width, ProcCount q_cap) {
  RESCHED_REQUIRE(q_cap >= 1);
  switch (width) {
    case WidthDistribution::kUniform:
      return prng.uniform_int(1, q_cap);
    case WidthDistribution::kPowersOfTwo: {
      int max_exp = 0;
      while ((ProcCount{1} << (max_exp + 1)) <= q_cap) ++max_exp;
      return ProcCount{1} << prng.uniform_int(0, max_exp);
    }
    case WidthDistribution::kMostlyNarrow: {
      const ProcCount narrow_cap = std::max<ProcCount>(1, q_cap / 8);
      return prng.chance(0.8) ? prng.uniform_int(1, narrow_cap)
                              : prng.uniform_int(1, q_cap);
    }
  }
  RESCHED_CHECK_MSG(false, "unknown width distribution");
  return 1;
}

Time saturating_ticks(double ticks) {
  if (!(ticks < static_cast<double>(kTimeInfinity))) return kTimeInfinity;
  if (!(ticks > 0.0)) return 0;
  return static_cast<Time>(std::llround(ticks));
}

Instance random_workload(const WorkloadConfig& config, std::uint64_t seed) {
  RESCHED_REQUIRE(config.m >= 1);
  RESCHED_REQUIRE(config.p_min >= 1 && config.p_min <= config.p_max);
  RESCHED_REQUIRE(config.alpha > Rational(0) && config.alpha <= Rational(1));

  // q_cap = floor(alpha * m), at least 1.
  const ProcCount q_cap = std::max<ProcCount>(
      1, (config.alpha * Rational(config.m)).floor());

  Prng prng(seed);
  std::vector<Job> jobs;
  jobs.reserve(config.n);
  double arrival_clock = 0.0;

  for (std::size_t i = 0; i < config.n; ++i) {
    const Time p = config.log_uniform_p
                       ? prng.log_uniform_int(config.p_min, config.p_max)
                       : prng.uniform_int(config.p_min, config.p_max);

    const ProcCount q = draw_width(prng, config.width, q_cap);

    Time release = 0;
    if (config.mean_interarrival > 0.0) {
      // Exponential inter-arrival (Poisson process), rounded to ticks.
      // n * mean_interarrival can grow the clock past what llround can
      // represent; saturating_ticks clamps at kTimeInfinity instead.
      const double u = prng.uniform_real();
      arrival_clock +=
          -config.mean_interarrival * std::log(1.0 - u);
      release = saturating_ticks(arrival_clock);
    }

    jobs.push_back(Job{static_cast<JobId>(i), q, p, release, ""});
  }
  return Instance(config.m, std::move(jobs));
}

StepProfile daily_intensity_profile(Time ticks_per_day) {
  RESCHED_REQUIRE(ticks_per_day >= 24);
  // Relative hourly intensity (0h..23h) in percent of the mid-morning /
  // mid-afternoon peaks: night trough, peaks at 10h and 15h -- the
  // canonical bimodal shape of the Parallel Workloads Archive traces.
  static constexpr std::int64_t kHourlyPercent[24] = {
      20, 15, 10,  10,  10,  15, 30, 50, 80, 100, 110, 100,
      90, 100, 110, 110, 100, 90, 70, 60, 50, 40,  30,  25};
  StepProfile curve(kHourlyPercent[0]);
  std::int64_t level = kHourlyPercent[0];
  for (int hour = 1; hour < 24; ++hour) {
    if (kHourlyPercent[hour] == level) continue;
    // hour(t) = t * 24 / tpd (floor) reaches `hour` first at
    // ceil(hour * tpd / 24).
    curve.add(ceil_div(checked_mul(hour, ticks_per_day), 24), kTimeInfinity,
              checked_sub(kHourlyPercent[hour], level));
    level = kHourlyPercent[hour];
  }
  return curve;
}

Instance daily_cycle_workload(const DailyCycleConfig& config,
                              std::uint64_t seed) {
  RESCHED_REQUIRE(config.m >= 1 && config.days >= 1);
  RESCHED_REQUIRE(config.ticks_per_day >= 24);
  RESCHED_REQUIRE(config.p_min >= 1 && config.p_min <= config.p_max);
  RESCHED_REQUIRE(config.alpha > Rational(0) && config.alpha <= Rational(1));

  const StepProfile curve = config.intensity.has_value()
                                ? *config.intensity
                                : daily_intensity_profile(config.ticks_per_day);
  RESCHED_REQUIRE_MSG(curve.min_in(0, config.ticks_per_day) >= 0 &&
                          curve.max_in(0, config.ticks_per_day) > 0,
                      "intensity curve must be non-negative with a positive "
                      "peak over one day");
  const auto peak =
      static_cast<double>(curve.max_in(0, config.ticks_per_day));

  Prng prng(seed);
  const ProcCount q_cap = std::max<ProcCount>(
      1, (config.alpha * Rational(config.m)).floor());

  // Draw arrival instants by rejection against the intensity envelope, then
  // sort: equivalent to an inhomogeneous Poisson process conditioned on n
  // arrivals.
  std::vector<Time> arrivals;
  arrivals.reserve(config.n);
  const Time horizon =
      checked_mul(static_cast<Time>(config.days), config.ticks_per_day);
  while (arrivals.size() < config.n) {
    const Time t = prng.uniform_int(0, checked_sub(horizon, 1));
    const auto intensity =
        static_cast<double>(curve.value_at(t % config.ticks_per_day));
    if (prng.uniform_real() * peak < intensity) arrivals.push_back(t);
  }
  std::sort(arrivals.begin(), arrivals.end());

  std::vector<Job> jobs;
  jobs.reserve(config.n);
  for (std::size_t i = 0; i < config.n; ++i) {
    const Time p = prng.log_uniform_int(config.p_min, config.p_max);
    const ProcCount q = draw_width(prng, config.width, q_cap);
    jobs.push_back(Job{static_cast<JobId>(i), q, p, arrivals[i], ""});
  }
  return Instance(config.m, std::move(jobs));
}

}  // namespace resched
