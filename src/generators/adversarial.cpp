#include "generators/adversarial.hpp"

#include <algorithm>
#include <numeric>

#include "util/checked.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace resched {

Prop2Family prop2_instance(std::int64_t k) {
  RESCHED_REQUIRE_MSG(k >= 2, "Prop. 2 family needs k >= 2");
  Prop2Family family;
  family.k = k;
  const std::int64_t km1 = checked_sub(k, 1);
  const ProcCount m = checked_mul(checked_mul(k, k), km1);  // k^2 (k-1)

  // All times scaled by k relative to the paper's text (which uses p = 1/k
  // and p = 1): first set p = 1, second set p = k, reservation starts at k.
  std::vector<Job> jobs;
  // Set 1: k narrow-short jobs, q = (k-1)^2, p = 1 (ids 0..k-1).
  for (std::int64_t i = 0; i < k; ++i)
    jobs.push_back(Job{static_cast<JobId>(i), checked_mul(km1, km1), 1, 0,
                       tag("short", i)});
  // Set 2: k-1 wide-long jobs, q = k(k-1)+1, p = k (ids k..2k-2).
  for (std::int64_t i = 0; i < km1; ++i)
    jobs.push_back(Job{static_cast<JobId>(checked_add(k, i)),
                       checked_add(checked_mul(k, km1), 1), k, 0,
                       tag("wide", i)});

  std::vector<Reservation> reservations;
  // One reservation of (1 - alpha) m = k(k-1)(k-2) processors starting at
  // t = k (the scaled t = 1). Its duration only needs to cover the LSRC
  // horizon; we follow the paper's generous 2/alpha = k time units, scaled.
  const ProcCount resa_q = checked_mul(checked_mul(k, km1), checked_sub(k, 2));
  if (resa_q > 0) {
    reservations.push_back(
        Reservation{0, resa_q, checked_mul(2, checked_mul(k, k)), k, "resa"});
  }
  family.instance = Instance(m, std::move(jobs), std::move(reservations));

  // Bad list order: set 1 first, then set 2 (submission order).
  family.bad_order.resize(family.instance.n());
  std::iota(family.bad_order.begin(), family.bad_order.end(), JobId{0});

  // Constructive optimum (paper: C* = 1, scaled to k): the k-1 wide jobs all
  // start at 0; the k short jobs chain on one block of (k-1)^2 processors.
  Schedule optimal(family.instance.n());
  for (std::int64_t i = 0; i < k; ++i)
    optimal.set_start(static_cast<JobId>(i), i);  // shorts at 0, 1, ..., k-1
  for (std::int64_t i = 0; i < km1; ++i)
    optimal.set_start(static_cast<JobId>(checked_add(k, i)), 0);
  family.optimal_schedule = std::move(optimal);
  family.optimal_makespan = k;
  // 1/k + (k - 1), scaled by k.
  family.lsrc_makespan = checked_add(1, checked_mul(k, km1));
  return family;
}

GrahamTightFamily graham_tight_instance(ProcCount m) {
  RESCHED_REQUIRE_MSG(m >= 2, "Graham tight family needs m >= 2");
  GrahamTightFamily family;
  std::vector<Job> jobs;
  const std::int64_t shorts = checked_mul(m, checked_sub(m, 1));
  for (std::int64_t i = 0; i < shorts; ++i)
    jobs.push_back(Job{static_cast<JobId>(i), 1, 1, 0, ""});
  jobs.push_back(Job{static_cast<JobId>(shorts), 1, m, 0, "long"});
  family.instance = Instance(m, std::move(jobs));
  family.bad_order.resize(family.instance.n());
  std::iota(family.bad_order.begin(), family.bad_order.end(), JobId{0});
  family.optimal_makespan = m;
  family.lsrc_makespan = checked_sub(checked_mul(2, m), 1);
  return family;
}

FcfsBadFamily fcfs_bad_instance(ProcCount m) {
  RESCHED_REQUIRE_MSG(m >= 2, "FCFS bad family needs m >= 2");
  FcfsBadFamily family;
  const Time long_p = checked_mul(m, m);
  std::vector<Job> jobs;
  for (ProcCount i = 0; i < m; ++i) {
    const std::int64_t even = checked_mul(2, i);
    jobs.push_back(Job{static_cast<JobId>(even), 1, long_p, 0,
                       tag("L", i)});
    jobs.push_back(Job{static_cast<JobId>(checked_add(even, 1)), m, 1, 0,
                       tag("W", i)});
  }
  family.instance = Instance(m, std::move(jobs));
  family.optimal_makespan = checked_add(long_p, m);       // m^2 + m
  family.fcfs_makespan = checked_mul(m, checked_add(long_p, 1));  // m (m^2 + 1)
  return family;
}

Instance cbf_trap_instance(std::int64_t rounds, ProcCount m,
                           Time narrow_duration) {
  RESCHED_REQUIRE(rounds >= 1 && m >= 2 && narrow_duration >= 2);
  std::vector<Job> jobs;
  for (std::int64_t i = 0; i < rounds; ++i) {
    const Time even = checked_mul(2, i);
    const Time odd = checked_add(even, 1);
    jobs.push_back(Job{static_cast<JobId>(even), 1, narrow_duration, even,
                       tag("F", i)});
    jobs.push_back(Job{static_cast<JobId>(odd), m, 1, odd,
                       tag("G", i)});
  }
  return Instance(m, std::move(jobs));
}

Theorem1Reduction theorem1_reduction(const ThreePartitionInstance& partition,
                                     std::int64_t rho) {
  RESCHED_REQUIRE_MSG(partition.well_formed(),
                      "malformed 3-PARTITION instance");
  RESCHED_REQUIRE(rho >= 1);
  Theorem1Reduction reduction;
  reduction.k = static_cast<std::int64_t>(partition.groups());
  reduction.B = partition.target;
  reduction.rho = rho;
  const std::int64_t k = reduction.k;
  const std::int64_t B = reduction.B;
  const Time bp1 = checked_add(B, 1);

  std::vector<Job> jobs;
  for (std::size_t i = 0; i < partition.items.size(); ++i)
    jobs.push_back(Job{static_cast<JobId>(i), 1, partition.items[i], 0, ""});

  // Reservations at r_j = j (B+1) - 1 for j = 1..k, length 1 except the
  // last, whose length is rho k (B+1) + 1 so that it ends at
  // (rho + 1) k (B + 1) (paper Fig. 1).
  std::vector<Reservation> reservations;
  for (std::int64_t j = 1; j <= k; ++j) {
    const Time start = checked_sub(checked_mul(j, bp1), 1);
    const Time length =
        (j < k) ? 1
                : checked_add(checked_mul(rho, checked_mul(k, bp1)), 1);
    reservations.push_back(
        Reservation{static_cast<ReservationId>(checked_sub(j, 1)), 1,
                                       length, start, ""});
  }
  reduction.instance = Instance(1, std::move(jobs), std::move(reservations));
  reduction.opt_if_solvable = checked_sub(checked_mul(k, bp1), 1);
  reduction.gap_threshold = checked_mul(rho, checked_mul(k, bp1));
  return reduction;
}

Schedule schedule_from_partition(
    const Theorem1Reduction& reduction,
    const std::vector<std::vector<std::size_t>>& groups) {
  const Instance& instance = reduction.instance;
  Schedule schedule(instance.n());
  RESCHED_REQUIRE_MSG(groups.size() == static_cast<std::size_t>(reduction.k),
                      "partition has the wrong number of groups");
  const Time bp1 = checked_add(reduction.B, 1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    // Gap g spans [g (B+1), g (B+1) + B): B free time units.
    const Time gap_begin = checked_mul(static_cast<Time>(g), bp1);
    Time cursor = gap_begin;
    for (const std::size_t item : groups[g]) {
      const Job& job = instance.job(static_cast<JobId>(item));
      schedule.set_start(job.id, cursor);
      cursor = checked_add(cursor, job.p);
    }
    RESCHED_CHECK_MSG(cursor <= checked_add(gap_begin, reduction.B),
                      "group overflows its gap: not a valid partition");
  }
  return schedule;
}

std::optional<std::vector<std::vector<std::size_t>>> partition_from_schedule(
    const Theorem1Reduction& reduction, const ThreePartitionInstance& partition,
    const Schedule& schedule) {
  const Instance& instance = reduction.instance;
  if (!schedule.validate(instance).ok) return std::nullopt;
  if (schedule.makespan(instance) >= reduction.gap_threshold)
    return std::nullopt;

  // Every job must lie inside one inter-reservation gap; bucket by gap index.
  const Time bp1 = checked_add(reduction.B, 1);
  std::vector<std::vector<std::size_t>> groups(
      static_cast<std::size_t>(reduction.k));
  for (const Job& job : instance.jobs()) {
    const Time start = schedule.start(job.id);
    const std::int64_t gap = start / bp1;
    if (gap < 0 || gap >= reduction.k) return std::nullopt;
    // Must fit inside the free part of the gap.
    const Time gap_begin = checked_mul(gap, bp1);
    if (start < gap_begin ||
        checked_add(start, job.p) > checked_add(gap_begin, reduction.B))
      return std::nullopt;
    groups[static_cast<std::size_t>(gap)].push_back(
        static_cast<std::size_t>(job.id));
  }
  if (!is_valid_three_partition(partition, groups)) return std::nullopt;
  return groups;
}

ThreePartitionInstance random_strict_yes_instance(std::size_t k,
                                                  std::int64_t B, Prng& prng) {
  RESCHED_REQUIRE_MSG(B >= 13, "strict items need B >= 13");
  ThreePartitionInstance instance;
  instance.target = B;
  const std::int64_t lo = checked_add(B / 4, 1);    // smallest integer > B/4
  const std::int64_t hi = checked_sub(B, 1) / 2;      // largest integer < B/2
  RESCHED_CHECK(lo <= hi);
  for (std::size_t g = 0; g < k; ++g) {
    // Rejection-sample a 3-composition with every part in [lo, hi].
    while (true) {
      const std::int64_t a = prng.uniform_int(lo, hi);
      const std::int64_t b = prng.uniform_int(lo, hi);
      const std::int64_t c = checked_sub(checked_sub(B, a), b);
      if (c < lo || c > hi) continue;
      instance.items.push_back(a);
      instance.items.push_back(b);
      instance.items.push_back(c);
      break;
    }
  }
  prng.shuffle(instance.items);
  return instance;
}

Instance add_gap_reservation(const Instance& base, Time gap_start,
                             Time gap_length) {
  RESCHED_REQUIRE(gap_start >= 0 && gap_length >= 1);
  RESCHED_REQUIRE_MSG(base.reservation_horizon() <= gap_start,
                      "gap reservation must not overlap existing ones");
  std::vector<Reservation> reservations = base.reservations();
  reservations.push_back(
      Reservation{static_cast<ReservationId>(reservations.size()), base.m(),
                  gap_length, gap_start, "gap"});
  return Instance(base.m(), base.jobs(), std::move(reservations));
}

}  // namespace resched
