#include "generators/reservations.hpp"

#include <algorithm>

#include "core/availability.hpp"
#include "util/checked.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"

namespace resched {

Instance with_alpha_restricted_reservations(
    const Instance& base, const AlphaReservationConfig& config,
    std::uint64_t seed) {
  RESCHED_REQUIRE(config.alpha > Rational(0) && config.alpha <= Rational(1));
  RESCHED_REQUIRE(config.horizon >= 1 && config.max_duration >= 1);

  // Cap on reserved processors at any instant: floor((1 - alpha) m).
  const ProcCount cap =
      ((Rational(1) - config.alpha) * Rational(base.m())).floor();
  std::vector<Reservation> reservations = base.reservations();
  if (cap >= 1) {
    Prng prng(seed);
    StepProfile reserved(0);
    for (const Reservation& resa : reservations)
      reserved.add(resa.start, resa.end(), resa.q);
    for (std::size_t i = 0; i < config.count; ++i) {
      const Time start = prng.uniform_int(0, checked_sub(config.horizon, 1));
      const Time duration = prng.uniform_int(1, config.max_duration);
      const Time finish = checked_add(start, duration);
      const ProcCount room = checked_sub(cap, reserved.max_in(start, finish));
      if (room < 1) continue;  // would breach the cap; drop this candidate
      const ProcCount q = prng.uniform_int(1, room);
      reserved.add(start, finish, q);
      reservations.push_back(
          Reservation{static_cast<ReservationId>(reservations.size()), q,
                      duration, start, ""});
    }
  }
  return Instance(base.m(), base.jobs(), std::move(reservations));
}

Instance with_nonincreasing_reservations(const Instance& base,
                                         const StaircaseConfig& config,
                                         std::uint64_t seed) {
  RESCHED_REQUIRE(config.steps >= 1 && config.max_step_duration >= 1);
  const ProcCount peak_cap =
      config.max_initial > 0 ? config.max_initial : base.m() - 1;
  RESCHED_REQUIRE_MSG(peak_cap >= 1 && peak_cap < base.m(),
                      "staircase peak must leave at least one processor");

  Prng prng(seed);
  // Build the staircase as nested reservations, all starting at 0: the
  // longest has the smallest height. Heights h_1 >= h_2 >= ... (cumulative),
  // durations d_1 <= d_2 <= ...
  std::vector<Reservation> reservations = base.reservations();
  const std::size_t steps = config.steps;
  // Draw `steps` level drops that sum to <= peak_cap.
  std::vector<ProcCount> drops(steps, 0);
  ProcCount remaining = peak_cap;
  for (std::size_t s = 0; s < steps && remaining > 0; ++s) {
    drops[s] = prng.uniform_int(1, std::max<ProcCount>(
                                       1, remaining / static_cast<ProcCount>(
                                              steps - s)));
    remaining = checked_sub(remaining, drops[s]);
  }
  Time duration = 0;
  for (std::size_t s = 0; s < steps; ++s) {
    duration = checked_add(duration, prng.uniform_int(1, config.max_step_duration));
    if (drops[s] == 0) continue;
    // Block s spans [0, duration) with height drops[s]; stacking all blocks
    // yields U(0) = sum(drops), decreasing as blocks end.
    reservations.push_back(
        Reservation{static_cast<ReservationId>(reservations.size()), drops[s],
                    duration, 0, ""});
  }
  Instance result(base.m(), base.jobs(), std::move(reservations));
  RESCHED_CHECK(has_non_increasing_unavailability(result));
  return result;
}

Instance with_periodic_maintenance(const Instance& base, ProcCount q,
                                   Time phase, Time period, Time length,
                                   std::size_t count) {
  RESCHED_REQUIRE(q >= 1 && q <= base.m());
  RESCHED_REQUIRE(period >= 1 && length >= 1 && length <= period);
  RESCHED_REQUIRE(phase >= 0);
  std::vector<Reservation> reservations = base.reservations();
  for (std::size_t i = 0; i < count; ++i) {
    reservations.push_back(Reservation{
        static_cast<ReservationId>(reservations.size()), q, length,
        checked_add(phase, checked_mul(static_cast<Time>(i), period)),
        "maintenance"});
  }
  return Instance(base.m(), base.jobs(), std::move(reservations));
}

}  // namespace resched
