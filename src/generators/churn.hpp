// Churn events: the ways a live cluster's world changes out from under an
// already-committed plan.
//
// The paper's reservation model is static -- a schedule is built once
// against a fixed availability profile. Production batch systems (the
// EASY/CBF lineage in PAPERS.md) live under churn instead: jobs are
// cancelled while queued or running, machines drop out mid-horizon, and
// maintenance reservations are moved. This header models that event stream
// for the resident service harness (sim/service_sim.*) and for the
// differential churn fuzz (tests/test_churn_fuzz.cpp): each event
// invalidates a suffix of the current plan, and the incremental replan path
// must repair it bit-identically to a full re-solve.
//
// ChurnGen is an open-loop generator in the LoadGen mold: exponential
// inter-event gaps at a configurable rate, event kinds drawn by weight, and
// all shape parameters (drop width/duration, move shift, target selector)
// drawn up front so the stream is a pure function of (config, seed) --
// independent of what the consumer does with each event.
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "util/prng.hpp"

namespace resched {

enum class ChurnKind {
  kCancelWaiting,      // a queued job is withdrawn before it ever starts
  kCancelRunning,      // a running job is killed; its processors free now
  kAvailabilityDrop,   // w processors leave for a window [now, now + d)
  kReservationMove,    // a pending availability window is shifted in time
};

[[nodiscard]] const char* to_string(ChurnKind kind) noexcept;

struct ChurnConfig {
  // Offered churn rate, events per kilotick; 0 disables churn entirely.
  double events_per_kilotick = 0.0;
  // Relative kind weights (>= 0, not all zero when enabled).
  double cancel_waiting_weight = 1.0;
  double cancel_running_weight = 1.0;
  double availability_drop_weight = 1.0;
  double reservation_move_weight = 1.0;
  // Availability-drop shape: width in [1, max_drop_width] processors
  // (clamped by the consumer to what the cluster can afford), duration in
  // [drop_duration_min, drop_duration_max] ticks, starting lead in
  // [0, drop_lead_max] ticks ahead of the event (lead > 0 creates pending
  // windows, the targets reservation moves shift around).
  ProcCount max_drop_width = 4;
  Time drop_duration_min = 50;
  Time drop_duration_max = 500;
  Time drop_lead_max = 200;
  // Reservation-move shape: the window start is shifted by a draw in
  // [-move_shift_max, +move_shift_max] (consumer clamps to feasibility).
  Time move_shift_max = 200;

  [[nodiscard]] bool enabled() const noexcept {
    return events_per_kilotick > 0.0;
  }
};

// One drawn event. `gap` is the inter-event time in ticks (>= 1); the shape
// fields are always populated (the consumer reads the ones its kind uses).
// `pick` selects the target (waiting index, running job, movable window) via
// modulo on the consumer side, so the stream stays consumer-independent.
struct ChurnEvent {
  ChurnKind kind = ChurnKind::kCancelWaiting;
  Time gap = 1;
  std::uint64_t pick = 0;
  ProcCount width = 1;     // availability drops
  Time duration = 1;       // availability drops
  Time lead = 0;           // availability drops: window starts at now + lead
  Time shift = 0;          // reservation moves (signed)

  friend bool operator==(const ChurnEvent&, const ChurnEvent&) = default;
};

class ChurnGen {
 public:
  // Validates the config (throws std::invalid_argument). Requires
  // config.enabled(): a disabled config has no stream to draw.
  ChurnGen(const ChurnConfig& config, std::uint64_t seed);

  // Draws the next event; deterministic in (config, seed, call index).
  [[nodiscard]] ChurnEvent next();

 private:
  ChurnConfig config_;
  double total_weight_ = 0.0;
  Prng prng_;
};

}  // namespace resched
