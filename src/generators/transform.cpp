#include "generators/transform.hpp"

#include <numeric>

#include "core/availability.hpp"
#include "util/checked.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace resched {

std::vector<Reservation> staircase_to_reservations(
    const StepProfile& unavailability) {
  RESCHED_REQUIRE_MSG(unavailability.is_non_increasing(),
                      "staircase decomposition needs non-increasing U");
  RESCHED_REQUIRE_MSG(unavailability.final_value() == 0,
                      "staircase must eventually reach 0");
  std::vector<Reservation> blocks;
  const auto segments = unavailability.segments();
  // Segment j holds value V_j on [s_j, s_{j+1}); the drop V_j - V_{j+1}
  // becomes a block spanning [0, s_{j+1}).
  for (std::size_t j = 0; j + 1 < segments.size(); ++j) {
    const std::int64_t drop =
        checked_sub(segments[j].value, segments[j + 1].value);
    RESCHED_CHECK(drop > 0);  // canonical segments + non-increasing
    blocks.push_back(Reservation{static_cast<ReservationId>(blocks.size()),
                                 drop, segments[j].end, 0,
                                 tag("step", static_cast<std::int64_t>(j))});
  }
  return blocks;
}

Instance truncate_availability(const Instance& instance, Time reference) {
  RESCHED_REQUIRE(reference >= 0);
  RESCHED_REQUIRE_MSG(has_non_increasing_unavailability(instance),
                      "truncation transform needs non-increasing U");
  const StepProfile unavailable = unavailability_profile(instance);
  const std::int64_t u_ref = unavailable.value_at(reference);
  const ProcCount m_prime = checked_sub(instance.m(), u_ref);
  RESCHED_REQUIRE_MSG(m_prime >= 1, "no machine available at the reference");

  // U'(t) = min(U(t), ...) - u_ref clipped to [0, reference); since U is
  // non-increasing, U(t) >= u_ref for t <= reference.
  StepProfile truncated(0);
  for (const auto& segment : unavailable.segments_in(0, reference)) {
    const std::int64_t excess = checked_sub(segment.value, u_ref);
    if (excess > 0) truncated.add(segment.start, segment.end, excess);
  }
  return Instance(m_prime, instance.jobs(),
                  staircase_to_reservations(truncated));
}

HeadJobTransform reservations_to_head_jobs(const Instance& instance) {
  RESCHED_REQUIRE_MSG(has_non_increasing_unavailability(instance),
                      "head-job transform needs non-increasing U");
  const std::vector<Reservation> blocks =
      staircase_to_reservations(unavailability_profile(instance));

  HeadJobTransform out;
  std::vector<Job> jobs;
  jobs.reserve(blocks.size() + instance.n());
  for (const Reservation& block : blocks) {
    const JobId id = static_cast<JobId>(jobs.size());
    jobs.push_back(Job{id, block.q, block.p, 0, tag("head", id)});
    out.head_ids.push_back(id);
  }
  const JobId offset = static_cast<JobId>(jobs.size());
  out.job_map.reserve(instance.n());
  for (const Job& original : instance.jobs()) {
    Job copy = original;
    copy.id = static_cast<JobId>(offset + original.id);
    out.job_map.push_back(copy.id);
    jobs.push_back(std::move(copy));
  }
  out.rigid = Instance(instance.m(), std::move(jobs));
  out.head_first_list.resize(out.rigid.n());
  std::iota(out.head_first_list.begin(), out.head_first_list.end(), JobId{0});
  return out;
}

}  // namespace resched
