// The paper's constructed instances, in exact scaled-integer form.
//
//  * prop2_instance(k)       -- Proposition 2 / Figure 3: the alpha = 2/k
//                               family where LSRC with a bad list order is
//                               exactly (2/alpha - 1 + alpha/2) = k - 1 + 1/k
//                               times optimal. Times are scaled by k (as in
//                               the paper's own figure: k = 6 gives C* = 6,
//                               C_LSRC = 31).
//  * graham_tight_instance(m)-- the classical family on which LSRC with a
//                               bad order approaches Theorem 2's 2 - 1/m.
//  * fcfs_bad_instance(m)    -- section 2.2's "optimal ~1, FCFS ~m" family.
//  * cbf_trap_instance(...)  -- release-time family separating the
//                               backfilling ladder (FCFS >> conservative ~
//                               EASY > LSRC).
//  * theorem1_reduction(...) -- Figure 1: the 3-PARTITION -> RESASCHEDULING
//                               (m = 1) gap reduction of Theorem 1, with the
//                               schedule <-> partition converters used to
//                               verify both directions of the proof.
//  * add_gap_reservation(...)-- the n' = 1 reduction shape: one full-width
//                               reservation right after a target makespan
//                               turns any makespan question into a gap.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "exact/three_partition.hpp"

namespace resched {

struct Prop2Family {
  Instance instance;
  std::vector<JobId> bad_order;   // list order realising the lower bound
  Schedule optimal_schedule;      // constructive optimum (validates)
  Time optimal_makespan = 0;      // = k (scaled)
  Time lsrc_makespan = 0;         // = k^2 - k + 1 (scaled)
  std::int64_t k = 0;             // alpha = 2/k
};

// Requires k >= 2 (k = 2 is the degenerate alpha = 1 case, which needs no
// reservation). m = k^2 (k - 1).
[[nodiscard]] Prop2Family prop2_instance(std::int64_t k);

struct GrahamTightFamily {
  Instance instance;
  std::vector<JobId> bad_order;  // shorts before the long job
  Time optimal_makespan = 0;     // = m
  Time lsrc_makespan = 0;        // = 2m - 1
};

// Requires m >= 2. m(m-1) unit jobs + one length-m job, all q = 1.
[[nodiscard]] GrahamTightFamily graham_tight_instance(ProcCount m);

struct FcfsBadFamily {
  Instance instance;
  Time optimal_makespan = 0;  // = m^2 + m
  Time fcfs_makespan = 0;     // = m (m^2 + 1)
};

// Requires m >= 2. Submission order alternates narrow-long / full-width
// jobs; strict FCFS serialises every pair.
[[nodiscard]] FcfsBadFamily fcfs_bad_instance(ProcCount m);

// Online trap: rounds of (narrow F released at 2i, full-width G released at
// 2i+1). Conservative/EASY protect the G's at bounded cost; strict FCFS
// serialises; LSRC starves the G's and stays near optimal. Requires
// m >= 2, rounds >= 1, narrow_duration >= 2.
[[nodiscard]] Instance cbf_trap_instance(std::int64_t rounds, ProcCount m,
                                         Time narrow_duration);

struct Theorem1Reduction {
  Instance instance;          // m = 1, 3k jobs, k reservations
  std::int64_t k = 0;
  std::int64_t B = 0;
  std::int64_t rho = 0;
  Time opt_if_solvable = 0;   // k (B + 1) - 1
  // Any schedule strictly below this threshold fits every job between the
  // reservations and therefore encodes a valid 3-partition.
  Time gap_threshold = 0;     // rho * k * (B + 1)
};

// Figure 1's construction. rho >= 1 plays the role of the hypothetical
// approximation guarantee being refuted.
[[nodiscard]] Theorem1Reduction theorem1_reduction(
    const ThreePartitionInstance& partition, std::int64_t rho);

// Schedules group l's three jobs inside gap l (requires a valid partition).
[[nodiscard]] Schedule schedule_from_partition(
    const Theorem1Reduction& reduction,
    const std::vector<std::vector<std::size_t>>& groups);

// Inverse direction of the proof: a feasible schedule with makespan below
// the gap threshold yields a valid 3-partition; nullopt otherwise.
[[nodiscard]] std::optional<std::vector<std::vector<std::size_t>>>
partition_from_schedule(const Theorem1Reduction& reduction,
                        const ThreePartitionInstance& partition,
                        const Schedule& schedule);

// Strict-item YES instance for the reduction experiments: every item lies in
// (B/4, B/2), so any B-sum group has exactly three items. Requires B >= 13.
[[nodiscard]] ThreePartitionInstance random_strict_yes_instance(
    std::size_t k, std::int64_t B, Prng& prng);

// n' = 1 reduction shape: appends one reservation of all m processors on
// [gap_start, gap_start + gap_length) to the instance.
[[nodiscard]] Instance add_gap_reservation(const Instance& base,
                                           Time gap_start, Time gap_length);

}  // namespace resched
