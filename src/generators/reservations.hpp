// Reservation-pattern generators for the three instance classes the paper
// analyses: alpha-restricted (section 4.2), non-increasing (section 4.1) and
// structured/periodic patterns (maintenance windows -- the practical shape
// reservations take on production clusters).
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "util/rational.hpp"

namespace resched {

struct AlphaReservationConfig {
  std::size_t count = 5;
  Time horizon = 200;     // reservations start within [0, horizon)
  Time max_duration = 50;
  // Reservation cap: U(t) <= (1 - alpha) * m at all times.
  Rational alpha{1, 2};
};

// Adds random reservations to the jobs of `base`, never exceeding the
// (1-alpha)m cap (candidates that would are narrowed or dropped, so the
// result may have fewer than `count` reservations). The result is
// alpha-restricted provided base's jobs satisfy q <= alpha*m -- generate
// them with WorkloadConfig::alpha.
[[nodiscard]] Instance with_alpha_restricted_reservations(
    const Instance& base, const AlphaReservationConfig& config,
    std::uint64_t seed);

struct StaircaseConfig {
  std::size_t steps = 4;       // distinct unavailability levels
  ProcCount max_initial = 0;   // peak U(0); default (0) = m - 1
  Time max_step_duration = 50;
};

// Non-increasing unavailability: a staircase U(0) >= U(t1) >= ... >= 0
// realised as nested reservations all starting at t = 0 (section 4.1's
// shape, Fig. 2 left).
[[nodiscard]] Instance with_nonincreasing_reservations(
    const Instance& base, const StaircaseConfig& config, std::uint64_t seed);

// Periodic maintenance: `count` reservations of `q` processors and duration
// `length`, starting at phase, phase+period, ... (deterministic).
[[nodiscard]] Instance with_periodic_maintenance(const Instance& base,
                                                 ProcCount q, Time phase,
                                                 Time period, Time length,
                                                 std::size_t count);

}  // namespace resched
