// Deterministic pseudo-random number generation.
//
// Every randomized component of resched (workload generators, random list
// orders, reservation placement) takes an explicit seed and uses this
// generator, so experiments are reproducible bit-for-bit across platforms --
// unlike std::uniform_int_distribution, whose output is implementation
// defined. The engine is xoshiro256** seeded through SplitMix64 (Blackman &
// Vigna), with rejection-sampled bounded draws.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace resched {

class Prng {
 public:
  explicit Prng(std::uint64_t seed) noexcept;

  // Raw 64 uniform bits.
  std::uint64_t next_u64() noexcept;

  // Uniform in [lo, hi] inclusive; requires lo <= hi. Unbiased (rejection
  // sampling).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform_real() noexcept;

  // Uniform double in [lo, hi); requires lo < hi.
  double uniform_real(double lo, double hi);

  // Log-uniform integer in [lo, hi], lo >= 1: exp(U(ln lo, ln hi)) rounded,
  // clamped into range. Standard heavy-tail model for job runtimes.
  std::int64_t log_uniform_int(std::int64_t lo, std::int64_t hi);

  // Bernoulli draw.
  bool chance(double probability);

  // Fisher-Yates shuffle (deterministic given the engine state).
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
        // resched-lint: time-arith-audited(Fisher-Yates has i >= 2, so i - 1 is exact)
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& values) {
    shuffle(std::span<T>(values));
  }

  // Derives an independent child seed (for fan-out into parallel tasks).
  std::uint64_t fork_seed() noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace resched
