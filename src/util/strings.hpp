// Small string helpers shared by I/O, CLI and table code.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace resched {

// Splits on a single character; keeps empty fields ("a,,b" -> 3 fields).
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

// Splits on runs of whitespace; drops empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view text);

[[nodiscard]] std::string_view trim(std::string_view text);

[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

// Fixed-precision double formatting ("%.*f").
[[nodiscard]] std::string format_double(double value, int precision);

// prefix + decimal n ("job", 7 -> "job7"). Generators label jobs this way;
// written with append rather than an operator+ chain, which GCC 12
// misdiagnoses under -O2 -Werror=restrict when inlined (PR105651).
[[nodiscard]] std::string tag(std::string_view prefix, std::int64_t n);

}  // namespace resched
