// Minimal command-line parser for the example binaries and sweep runners.
//
// Supports --key=value, --key value and boolean --flag forms, with typed
// accessors carrying defaults. Unknown options are an error (fail fast rather
// than silently ignoring a typo'd parameter in an experiment).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace resched {

class CliParser {
 public:
  CliParser(std::string program_name, std::string description);

  // Declares an option; `help` is shown by usage(). Declared options may be
  // queried with the typed getters below.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value = "");
  void add_flag(const std::string& name, const std::string& help);

  // Parses argv. Returns false (after printing usage) if --help was given.
  // Throws std::invalid_argument on unknown/malformed options.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] bool was_set(const std::string& name) const;

  // Positional arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  struct Option {
    std::string help;
    std::string default_value;
    bool is_flag = false;
    std::optional<std::string> value;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;  // declaration order for usage()
  std::vector<std::string> positional_;

  const Option& find(const std::string& name) const;
};

}  // namespace resched
