#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace resched {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) fields.emplace_back(text.substr(start, i - start));
  }
  return fields;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string tag(std::string_view prefix, std::int64_t n) {
  std::string out(prefix);
  out += std::to_string(n);
  return out;
}

}  // namespace resched
