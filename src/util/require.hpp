// Precondition / invariant checking for the resched library.
//
// The library follows the C++ Core Guidelines convention (I.5/I.6): interface
// preconditions are enforced at the boundary and violations are programming
// errors. We throw std::invalid_argument (user-facing input) or
// std::logic_error (internal invariant) so tests can assert on them; hot
// inner loops use RESCHED_ASSERT which compiles out in NDEBUG builds.
#pragma once

#include <stdexcept>
#include <string>

namespace resched {

[[noreturn]] inline void fail_requirement(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  throw std::invalid_argument(std::string("requirement failed: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : (": " + msg)));
}

[[noreturn]] inline void fail_invariant(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw std::logic_error(std::string("invariant violated: ") + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (": " + msg)));
}

}  // namespace resched

// Boundary precondition: always on.
#define RESCHED_REQUIRE(expr)                                         \
  do {                                                                \
    if (!(expr)) ::resched::fail_requirement(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define RESCHED_REQUIRE_MSG(expr, msg)                                \
  do {                                                                \
    if (!(expr)) ::resched::fail_requirement(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// Internal invariant: always on (schedulers are cheap relative to the cost of
// silently producing an infeasible schedule).
#define RESCHED_CHECK(expr)                                           \
  do {                                                                \
    if (!(expr)) ::resched::fail_invariant(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define RESCHED_CHECK_MSG(expr, msg)                                  \
  do {                                                                \
    if (!(expr)) ::resched::fail_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// Hot-path assertion, compiled out in NDEBUG.
#ifdef NDEBUG
#define RESCHED_ASSERT(expr) ((void)0)
#else
#define RESCHED_ASSERT(expr) RESCHED_CHECK(expr)
#endif
