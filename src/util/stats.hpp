// Streaming and batch summary statistics for experiment harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace resched {

// Welford's online algorithm: numerically stable single-pass mean/variance.
class OnlineStats {
 public:
  void add(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  // Pools two accumulators (Chan et al. parallel combination).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Percentile with linear interpolation between closest ranks; q in [0, 1].
// Copies and sorts internally (batch use only). Requires non-empty input.
// Asking for several quantiles of one sample set? Use percentiles() below:
// this overload pays a full copy + sort per call.
[[nodiscard]] double percentile(std::vector<double> values, double q);

// All requested quantiles of one sample set for a single sort: returns
// results[i] = percentile of qs[i] (qs need not be sorted). Requires
// non-empty values and every q in [0, 1]. Hot paths with streaming samples
// should prefer the log-bucketed sim/latency_recorder.hpp instead -- this
// still copies the batch once.
[[nodiscard]] std::vector<double> percentiles(std::vector<double> values,
                                              std::span<const double> qs);

}  // namespace resched
