// Streaming and batch summary statistics for experiment harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace resched {

// Welford's online algorithm: numerically stable single-pass mean/variance.
class OnlineStats {
 public:
  void add(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  // Pools two accumulators (Chan et al. parallel combination).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Percentile with linear interpolation between closest ranks; q in [0, 1].
// Copies and sorts internally (batch use only). Requires non-empty input.
[[nodiscard]] double percentile(std::vector<double> values, double q);

}  // namespace resched
