// Leveled stderr logging.
//
// The library itself logs nothing in normal operation (pure functions);
// generators and the simulation kernel emit INFO/DEBUG breadcrumbs guarded by
// the global level so long sweeps can be traced when debugging.
#pragma once

#include <sstream>
#include <string>

namespace resched {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; defaults to kWarn so tests stay quiet.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);
}

}  // namespace resched

#define RESCHED_LOG(level, expr)                                      \
  do {                                                                \
    if (static_cast<int>(level) >=                                    \
        static_cast<int>(::resched::log_level())) {                   \
      std::ostringstream resched_log_stream;                          \
      resched_log_stream << expr;                                     \
      ::resched::detail::emit(level, resched_log_stream.str());       \
    }                                                                 \
  } while (false)

#define RESCHED_DEBUG(expr) RESCHED_LOG(::resched::LogLevel::kDebug, expr)
#define RESCHED_INFO(expr) RESCHED_LOG(::resched::LogLevel::kInfo, expr)
#define RESCHED_WARN(expr) RESCHED_LOG(::resched::LogLevel::kWarn, expr)
#define RESCHED_ERROR(expr) RESCHED_LOG(::resched::LogLevel::kError, expr)
