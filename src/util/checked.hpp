// Overflow-checked 64-bit integer arithmetic.
//
// All schedule times in resched are int64 ticks; adversarial instances scale
// quadratically in their parameters (e.g. fcfs_bad_instance uses durations
// ~m^2), so intermediate products can overflow silently with plain int64.
// Every arithmetic step that could overflow goes through these helpers, which
// throw std::overflow_error instead of yielding UB.
#pragma once

#include <cstdint>
#include <numeric>
#include <stdexcept>

namespace resched {

inline std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r))
    throw std::overflow_error("int64 addition overflow");
  return r;
}

inline std::int64_t checked_sub(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_sub_overflow(a, b, &r))
    throw std::overflow_error("int64 subtraction overflow");
  return r;
}

inline std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r))
    throw std::overflow_error("int64 multiplication overflow");
  return r;
}

// Negation of INT64_MIN overflows; make it explicit.
inline std::int64_t checked_neg(std::int64_t a) { return checked_sub(0, a); }

// Floor division with sign-correct semantics (C++ '/' truncates toward zero).
// INT64_MIN / -1 is the one overflowing quotient; route it through
// checked_neg so it throws instead of invoking UB.
inline std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  if (b == 0) throw std::domain_error("division by zero");
  if (b == -1) return checked_neg(a);
  std::int64_t q = a / b;
  std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

// Ceiling division with sign-correct semantics.
inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  if (b == 0) throw std::domain_error("division by zero");
  if (b == -1) return checked_neg(a);
  std::int64_t q = a / b;
  std::int64_t r = a % b;
  return (r != 0 && ((r < 0) == (b < 0))) ? q + 1 : q;
}

// gcd that is safe for negative inputs (result is always non-negative).
inline std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  // |INT64_MIN| is not representable; reduce via modulo first.
  if (a == INT64_MIN) a = a % (b == 0 ? 1 : b);
  if (b == INT64_MIN) b = b % (a == 0 ? 1 : a);
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  return std::gcd(a, b);
}

}  // namespace resched
