// Aligned console tables.
//
// The benchmark binaries print each paper table/figure as a plain-text table
// before running google-benchmark timings; this keeps the reproduction output
// greppable and diffable (EXPERIMENTS.md quotes these tables verbatim).
#pragma once

#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace resched {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Row length must match the header length.
  void add_row(std::vector<std::string> cells);

  // Convenience: converts each cell with to_string-like formatting.
  template <typename... Cells>
  void add(const Cells&... cells) {
    add_row({cell_to_string(cells)...});
  }

  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  static std::string cell_to_string(const std::string& s) { return s; }
  static std::string cell_to_string(const char* s) { return s; }
  static std::string cell_to_string(double v);
  template <typename T>
  static std::string cell_to_string(const T& v) {
    if constexpr (std::is_integral_v<T>) {
      return std::to_string(v);
    } else {
      return to_string_adl(v);
    }
  }
  template <typename T>
  static std::string to_string_adl(const T& v) {
    return v.to_string();
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace resched
