#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/require.hpp"
#include "util/strings.hpp"

namespace resched {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RESCHED_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  RESCHED_REQUIRE_MSG(cells.size() == headers_.size(),
                      "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::cell_to_string(double v) { return format_double(v, 4); }

// resched-lint: hot-path-alloc-audited(diagnostic rendering, cold) [function]
std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << "|";
  for (const std::size_t w : widths) out << std::string(w + 2, '-') << "|";
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace resched
