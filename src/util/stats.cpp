#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace resched {

void OnlineStats::add(double value) noexcept {
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {
// Closest-rank interpolation over an already sorted sample set.
double sorted_percentile(const std::vector<double>& sorted, double q) {
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return sorted[lo];
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

double percentile(std::vector<double> values, double q) {
  const double qs[] = {q};
  return percentiles(std::move(values), qs)[0];
}

std::vector<double> percentiles(std::vector<double> values,
                                std::span<const double> qs) {
  RESCHED_REQUIRE(!values.empty());
  for (const double q : qs) RESCHED_REQUIRE(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  std::vector<double> results;
  results.reserve(qs.size());
  for (const double q : qs) results.push_back(sorted_percentile(values, q));
  return results;
}

}  // namespace resched
