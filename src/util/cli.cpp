#include "util/cli.hpp"

#include <iostream>
#include <stdexcept>

#include "util/require.hpp"
#include "util/strings.hpp"

namespace resched {

CliParser::CliParser(std::string program_name, std::string description)
    : program_(std::move(program_name)), description_(std::move(description)) {}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  RESCHED_REQUIRE_MSG(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{help, default_value, /*is_flag=*/false, {}};
  order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  RESCHED_REQUIRE_MSG(!options_.count(name), "duplicate flag: " + name);
  options_[name] = Option{help, "false", /*is_flag=*/true, {}};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    if (it == options_.end())
      throw std::invalid_argument("unknown option --" + name + "\n" + usage());
    if (it->second.is_flag) {
      if (has_value)
        throw std::invalid_argument("flag --" + name + " takes no value");
      it->second.value = "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc)
        throw std::invalid_argument("option --" + name + " needs a value");
      value = argv[++i];
    }
    it->second.value = value;
  }
  return true;
}

const CliParser::Option& CliParser::find(const std::string& name) const {
  const auto it = options_.find(name);
  RESCHED_REQUIRE_MSG(it != options_.end(), "undeclared option: " + name);
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Option& opt = find(name);
  return opt.value.value_or(opt.default_value);
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string text = get_string(name);
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name +
                                " expects an integer, got '" + text + "'");
  }
}

double CliParser::get_double(const std::string& name) const {
  const std::string text = get_string(name);
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name +
                                " expects a number, got '" + text + "'");
  }
}

bool CliParser::get_flag(const std::string& name) const {
  return get_string(name) == "true";
}

bool CliParser::was_set(const std::string& name) const {
  return find(name).value.has_value();
}

std::string CliParser::usage() const {
  std::string out = program_ + " - " + description_ + "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    out += "  --" + name;
    if (!opt.is_flag) out += "=<value> (default: " + opt.default_value + ")";
    out += "\n      " + opt.help + "\n";
  }
  out += "  --help\n      show this message\n";
  return out;
}

}  // namespace resched
