// Exact rational arithmetic over checked 64-bit integers.
//
// Used wherever the paper's analysis is exact: performance ratios
// (C_LSRC / C*), guarantee curves (2 - 1/m, 2/alpha, B1, B2) and the
// closed-form optima of the adversarial instances. Keeping these in exact
// arithmetic lets tests assert e.g. ratio == 31/6 for the paper's Figure 3
// instance instead of comparing doubles.
//
// Invariant: den > 0 and gcd(|num|, den) == 1 (canonical form), so operator==
// is plain member comparison and Rational is usable as a map key.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace resched {

class Rational {
 public:
  constexpr Rational() noexcept : num_(0), den_(1) {}
  // Implicit from integers on purpose: bounds code reads naturally
  // (e.g. `Rational(2) - Rational(1, m)`).
  constexpr Rational(std::int64_t value) noexcept : num_(value), den_(1) {}
  Rational(std::int64_t numerator, std::int64_t denominator);

  [[nodiscard]] constexpr std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const noexcept { return den_; }

  [[nodiscard]] Rational operator-() const;
  Rational& operator+=(const Rational& other);
  Rational& operator-=(const Rational& other);
  Rational& operator*=(const Rational& other);
  Rational& operator/=(const Rational& other);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  friend bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

  [[nodiscard]] double to_double() const noexcept;
  // Canonical "p/q" (or just "p" when q == 1).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] Rational abs() const;
  // Largest integer <= value / smallest integer >= value.
  [[nodiscard]] std::int64_t floor() const;
  [[nodiscard]] std::int64_t ceil() const;
  [[nodiscard]] bool is_integer() const noexcept { return den_ == 1; }

  // Parses "p", "p/q" or a plain decimal like "0.25". Throws on malformed
  // input.
  static Rational parse(const std::string& text);

 private:
  std::int64_t num_;
  std::int64_t den_;
  void normalize();
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace resched
