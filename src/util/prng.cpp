#include "util/prng.hpp"

#include <cmath>

#include "util/require.hpp"

namespace resched {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Prng::Prng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Prng::next_u64() noexcept {
  // xoshiro256** core step.
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Prng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RESCHED_REQUIRE(lo <= hi);
  const std::uint64_t range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling: draw until below the largest multiple of `range`.
  const std::uint64_t limit = UINT64_MAX - (UINT64_MAX % range + 1) % range;
  std::uint64_t draw = next_u64();
  while (draw > limit) draw = next_u64();
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   draw % range);
}

double Prng::uniform_real() noexcept {
  // 53 uniform mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Prng::uniform_real(double lo, double hi) {
  RESCHED_REQUIRE(lo < hi);
  return lo + (hi - lo) * uniform_real();
}

std::int64_t Prng::log_uniform_int(std::int64_t lo, std::int64_t hi) {
  RESCHED_REQUIRE(lo >= 1 && lo <= hi);
  if (lo == hi) return lo;
  const double u =
      uniform_real(std::log(static_cast<double>(lo)),
                   std::log(static_cast<double>(hi) + 1.0));
  auto value = static_cast<std::int64_t>(std::floor(std::exp(u)));
  if (value < lo) value = lo;
  if (value > hi) value = hi;
  return value;
}

bool Prng::chance(double probability) {
  RESCHED_REQUIRE(probability >= 0.0 && probability <= 1.0);
  return uniform_real() < probability;
}

std::uint64_t Prng::fork_seed() noexcept { return next_u64(); }

}  // namespace resched
