#include "util/rational.hpp"

#include <ostream>
#include <stdexcept>

#include "util/checked.hpp"
#include "util/require.hpp"

namespace resched {

Rational::Rational(std::int64_t numerator, std::int64_t denominator)
    : num_(numerator), den_(denominator) {
  RESCHED_REQUIRE_MSG(denominator != 0, "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = checked_neg(num_);
    den_ = checked_neg(den_);
  }
  const std::int64_t g = gcd64(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checked_neg(num_);
  r.den_ = den_;
  return r;
}

Rational& Rational::operator+=(const Rational& other) {
  // Reduce cross terms first to delay overflow: a/b + c/d with g = gcd(b, d)
  // = (a*(d/g) + c*(b/g)) / (b/g*d).
  const std::int64_t g = gcd64(den_, other.den_);
  const std::int64_t lhs = checked_mul(num_, other.den_ / g);
  const std::int64_t rhs = checked_mul(other.num_, den_ / g);
  num_ = checked_add(lhs, rhs);
  den_ = checked_mul(den_ / g, other.den_);
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& other) { return *this += -other; }

Rational& Rational::operator*=(const Rational& other) {
  // Cross-cancel before multiplying to keep intermediates small.
  const std::int64_t g1 = gcd64(num_, other.den_);
  const std::int64_t g2 = gcd64(other.num_, den_);
  num_ = checked_mul(num_ / g1, other.num_ / g2);
  den_ = checked_mul(den_ / g2, other.den_ / g1);
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& other) {
  RESCHED_REQUIRE_MSG(other.num_ != 0, "rational division by zero");
  Rational inverse;
  inverse.num_ = other.den_;
  inverse.den_ = other.num_;
  if (inverse.den_ < 0) {
    inverse.num_ = checked_neg(inverse.num_);
    inverse.den_ = checked_neg(inverse.den_);
  }
  return *this *= inverse;
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // a/b <=> c/d  iff  a*d <=> c*b (denominators positive by invariant).
  const std::int64_t lhs = checked_mul(a.num_, b.den_);
  const std::int64_t rhs = checked_mul(b.num_, a.den_);
  return lhs <=> rhs;
}

double Rational::to_double() const noexcept {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::abs() const { return num_ < 0 ? -*this : *this; }

std::int64_t Rational::floor() const { return floor_div(num_, den_); }

std::int64_t Rational::ceil() const { return ceil_div(num_, den_); }

Rational Rational::parse(const std::string& text) {
  RESCHED_REQUIRE_MSG(!text.empty(), "empty rational literal");
  const auto slash = text.find('/');
  try {
    if (slash != std::string::npos) {
      const std::int64_t p = std::stoll(text.substr(0, slash));
      const std::int64_t q = std::stoll(text.substr(slash + 1));
      return Rational(p, q);
    }
    const auto dot = text.find('.');
    if (dot == std::string::npos) return Rational(std::stoll(text));
    // Decimal: sign * (int_part + frac_part / 10^k).
    std::string digits = text.substr(0, dot) + text.substr(dot + 1);
    const std::size_t frac_len = text.size() - dot - 1;
    RESCHED_REQUIRE_MSG(frac_len > 0, "trailing decimal point");
    std::int64_t den = 1;
    for (std::size_t i = 0; i < frac_len; ++i) den = checked_mul(den, 10);
    return Rational(std::stoll(digits), den);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("malformed rational literal: " + text);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("rational literal out of range: " + text);
  }
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace resched
